(** Execution context — one value bundling everything a long-running
    analysis needs about {e how} to run: the process card, the domain
    pool width, and the cache and telemetry switches.

    Before this module, every entry point grew its own ad-hoc [?jobs]
    (and would have grown [?cache] and [?telemetry] next); callers had to
    thread three loose knobs through every layer.  A [Ctx.t] is built
    once — normally by the CLI from its flags — and passed as [?ctx] to
    [Core.Flow.run_all], [Comdiac.Montecarlo.run] and
    [Comdiac.Robustness.run].  The old [?jobs] parameters remain as
    deprecated overrides so existing callers compile unchanged.

    The context is plain data (plus one atomic cancellation token) and
    safe to share across domains; {!scope} applies the switch fields as
    {e context-local} bindings ({!Obs.Fluid}: domain-local storage with
    the process global as fallback), so nested scopes behave like
    dynamic binding and two scopes with conflicting switches can run
    concurrently on different domains — the job server's executors —
    without observing each other.  Resolution order for every switch:
    explicit override > ctx binding > global > built-in default. *)

type t = {
  proc : Technology.Process.t;  (** technology the analysis runs on *)
  jobs : int option;
      (** domain-pool width; [None] = {!Par.Pool.default_jobs} *)
  chunk : int option;
      (** pool chunk size; [None] = the pool's cost-aware adaptive
          choice.  Pinning it makes chunk boundaries (and hence
          telemetry) reproducible across runs. *)
  cache : bool option;
      (** force memo caches on/off; [None] = leave {!Cache.Config} alone *)
  telemetry : bool option;
      (** force telemetry on/off; [None] = leave {!Obs.Config} alone *)
  backend : Sim.Stamps.backend option;
      (** linear-solver backend for every analysis in scope; [None] =
          leave {!Sim.Stamps.default_backend} alone *)
  label : string option;
      (** when set, {!scope} wraps the work in a root [exec] span named
          [label], so profiler paths and flamegraphs group everything
          under one run (e.g. ["synth:miller_ota"]) *)
  deadline : float option;
      (** absolute {!Obs.Clock.monotonic_s} instant after which
          {!check_deadline} raises — the cooperative per-request timeout
          of the job server.  [None] = no deadline. *)
  cancel : bool Atomic.t;
      (** cooperative cancellation token: once set, {!check_deadline}
          raises at its next poll, exactly as if the deadline had moved
          to now.  The job server shares this token with its [cancel]
          wire request; sharing one token across contexts makes them
          cancel together. *)
  seed : int option;
      (** base RNG seed for every stochastic analysis in scope (Monte
          Carlo draws, optimizer starts); [None] = the [LOSAC_SEED]
          environment variable, then the built-in default (42).  Each
          analysis still derives independent per-sample SplitMix64
          streams from this one base value, so two analyses sharing a
          context do not correlate. *)
}

val make :
  ?jobs:int -> ?chunk:int -> ?cache:bool -> ?telemetry:bool ->
  ?backend:Sim.Stamps.backend ->
  ?label:string ->
  ?deadline:float ->
  ?cancel:bool Atomic.t ->
  ?seed:int ->
  Technology.Process.t -> t
(** [make proc] is a context with all switches at their defaults (and a
    fresh, unset cancellation token unless [?cancel] supplies a shared
    one). *)

val with_timeout : float option -> t -> t
(** [with_timeout (Some t) ctx] sets [ctx.deadline] to now + [t]
    seconds; [None] leaves the context unchanged. *)

val cancelled : t option -> bool
(** Whether the context's cancellation token is set ([false] without a
    context). *)

val check_deadline : ?analysis:string -> t option -> unit
(** Raise [Sim.Sim_error.Deadline_exceeded (analysis, overshoot)] when
    the context's deadline has passed {e or} its cancellation token is
    set (overshoot [0.] — cancellation is "deadline moved to now"); a
    no-op without a context or a deadline.  Analyses call this at safe
    interruption boundaries —
    between Monte Carlo samples, corner points and sizing/layout
    iterations — so a timed-out request is abandoned cooperatively
    (never mid-solve) and surfaces as {!Sim.Sim_error.Timeout} through
    the [_result] entry points.  Cheap enough for per-sample use (one
    clock read). *)

val jobs : ?override:int -> t option -> int option
(** Resolve the pool width to pass to {!Par.Pool} combinators: an
    explicit [?jobs] argument wins over [ctx.jobs]; [None] defers to the
    pool's own default. *)

val chunk : ?override:int -> t option -> int option
(** Resolve the pool chunk size the same way; [None] defers to the
    pool's adaptive planner. *)

val seed : ?override:int -> t option -> int
(** Resolve the RNG seed the same way as every other switch: explicit
    [?seed] argument > [ctx.seed] > the [LOSAC_SEED] environment
    variable > 42.  This is what makes `losac optimize`, `losac job mc`
    and `bench` reproducible from the command line: the same resolved
    seed always produces bit-identical results at any jobs count. *)

val proc : ?override:Technology.Process.t -> t option -> Technology.Process.t
(** Resolve the process: an explicit [~proc] argument wins over
    [ctx.proc].  Raises [Invalid_argument] when neither is given —
    entry points keep [?proc] optional only so that pre-[Ctx] call
    sites still compile. *)

val scope : t option -> (unit -> 'a) -> ('a, exn) result
(** [scope ctx f] runs [f] with the context's cache, telemetry and
    backend switches bound {e context-locally} on the calling domain
    ([None] fields leave the outer binding or global visible), restored
    afterwards even on exceptions.  Nothing global is written: globals
    are unchanged during and after the scope, and concurrent scopes
    with conflicting switches are isolated (the pool propagates the
    bindings to worker domains per batch).  The result is returned as
    [Ok]/[Error] so callers can re-raise outside the scope; use {!run}
    for the raising variant. *)

val run : t option -> (unit -> 'a) -> 'a
(** {!scope} that re-raises. *)

(** Execution context — one value bundling everything a long-running
    analysis needs about {e how} to run: the process card, the domain
    pool width, and the cache and telemetry switches.

    Before this module, every entry point grew its own ad-hoc [?jobs]
    (and would have grown [?cache] and [?telemetry] next); callers had to
    thread three loose knobs through every layer.  A [Ctx.t] is built
    once — normally by the CLI from its flags — and passed as [?ctx] to
    [Core.Flow.run_all], [Comdiac.Montecarlo.run] and
    [Comdiac.Robustness.run].  The old [?jobs] parameters remain as
    deprecated overrides so existing callers compile unchanged.

    The context is immutable plain data and safe to share across
    domains; {!scope} applies the switch fields by saving and restoring
    the corresponding global flags around a closure, so nested scopes
    behave like dynamic binding. *)

type t = {
  proc : Technology.Process.t;  (** technology the analysis runs on *)
  jobs : int option;
      (** domain-pool width; [None] = {!Par.Pool.default_jobs} *)
  chunk : int option;
      (** pool chunk size; [None] = the pool's cost-aware adaptive
          choice.  Pinning it makes chunk boundaries (and hence
          telemetry) reproducible across runs. *)
  cache : bool option;
      (** force memo caches on/off; [None] = leave {!Cache.Config} alone *)
  telemetry : bool option;
      (** force telemetry on/off; [None] = leave {!Obs.Config} alone *)
  backend : Sim.Stamps.backend option;
      (** linear-solver backend for every analysis in scope; [None] =
          leave {!Sim.Stamps.default_backend} alone *)
  label : string option;
      (** when set, {!scope} wraps the work in a root [exec] span named
          [label], so profiler paths and flamegraphs group everything
          under one run (e.g. ["synth:miller_ota"]) *)
  deadline : float option;
      (** absolute {!Obs.Clock.monotonic_s} instant after which
          {!check_deadline} raises — the cooperative per-request timeout
          of the job server.  [None] = no deadline. *)
}

val make :
  ?jobs:int -> ?chunk:int -> ?cache:bool -> ?telemetry:bool ->
  ?backend:Sim.Stamps.backend ->
  ?label:string ->
  ?deadline:float ->
  Technology.Process.t -> t
(** [make proc] is a context with all switches at their defaults. *)

val with_timeout : float option -> t -> t
(** [with_timeout (Some t) ctx] sets [ctx.deadline] to now + [t]
    seconds; [None] leaves the context unchanged. *)

val check_deadline : ?analysis:string -> t option -> unit
(** Raise [Sim.Sim_error.Deadline_exceeded (analysis, overshoot)] when
    the context's deadline has passed; a no-op without a context or a
    deadline.  Analyses call this at safe interruption boundaries —
    between Monte Carlo samples, corner points and sizing/layout
    iterations — so a timed-out request is abandoned cooperatively
    (never mid-solve) and surfaces as {!Sim.Sim_error.Timeout} through
    the [_result] entry points.  Cheap enough for per-sample use (one
    clock read). *)

val jobs : ?override:int -> t option -> int option
(** Resolve the pool width to pass to {!Par.Pool} combinators: an
    explicit [?jobs] argument wins over [ctx.jobs]; [None] defers to the
    pool's own default. *)

val chunk : ?override:int -> t option -> int option
(** Resolve the pool chunk size the same way; [None] defers to the
    pool's adaptive planner. *)

val proc : ?override:Technology.Process.t -> t option -> Technology.Process.t
(** Resolve the process: an explicit [~proc] argument wins over
    [ctx.proc].  Raises [Invalid_argument] when neither is given —
    entry points keep [?proc] optional only so that pre-[Ctx] call
    sites still compile. *)

val scope : t option -> (unit -> 'a) -> ('a, exn) result
(** [scope ctx f] runs [f] with the context's cache and telemetry
    switches applied ([None] fields leave the globals untouched),
    restoring the previous values afterwards even on exceptions.  The
    result is returned as [Ok]/[Error] so callers can re-raise outside
    the scope; use {!run} for the raising variant. *)

val run : t option -> (unit -> 'a) -> 'a
(** {!scope} that re-raises. *)

type t = {
  proc : Technology.Process.t;
  jobs : int option;
  chunk : int option;
  cache : bool option;
  telemetry : bool option;
  backend : Sim.Stamps.backend option;
  label : string option;
}

let make ?jobs ?chunk ?cache ?telemetry ?backend ?label proc =
  { proc; jobs; chunk; cache; telemetry; backend; label }

let jobs ?override ctx =
  match override with
  | Some _ -> override
  | None -> ( match ctx with Some c -> c.jobs | None -> None)

let chunk ?override ctx =
  match override with
  | Some _ -> override
  | None -> ( match ctx with Some c -> c.chunk | None -> None)

let proc ?override ctx =
  match (override, ctx) with
  | Some p, _ -> p
  | None, Some c -> c.proc
  | None, None ->
    invalid_arg "Ctx.proc: no process given (pass ~proc or ~ctx)"

let scope ctx f =
  match ctx with
  | None -> ( try Ok (f ()) with e -> Error e)
  | Some c ->
    let with_opt apply o k =
      match o with None -> k () | Some v -> apply v k
    in
    with_opt Cache.Config.with_enabled c.cache @@ fun () ->
    with_opt Obs.Config.with_enabled c.telemetry @@ fun () ->
    with_opt Sim.Stamps.with_default_backend c.backend @@ fun () ->
    let labelled () =
      match c.label with
      | None -> f ()
      | Some l -> Obs.Trace.with_span ~cat:"exec" l f
    in
    ( try Ok (labelled ()) with e -> Error e)

let run ctx f =
  match scope ctx f with Ok v -> v | Error e -> raise e

type t = {
  proc : Technology.Process.t;
  jobs : int option;
  chunk : int option;
  cache : bool option;
  telemetry : bool option;
  backend : Sim.Stamps.backend option;
  label : string option;
  deadline : float option;
}

let make ?jobs ?chunk ?cache ?telemetry ?backend ?label ?deadline proc =
  { proc; jobs; chunk; cache; telemetry; backend; label; deadline }

let with_timeout timeout_s ctx =
  match timeout_s with
  | None -> ctx
  | Some t -> { ctx with deadline = Some (Obs.Clock.monotonic_s () +. t) }

let check_deadline ?(analysis = "exec") ctx =
  match ctx with
  | None -> ()
  | Some { deadline = None; _ } -> ()
  | Some { deadline = Some d; _ } ->
    let now = Obs.Clock.monotonic_s () in
    if now > d then raise (Sim.Sim_error.Deadline_exceeded (analysis, now -. d))

let jobs ?override ctx =
  match override with
  | Some _ -> override
  | None -> ( match ctx with Some c -> c.jobs | None -> None)

let chunk ?override ctx =
  match override with
  | Some _ -> override
  | None -> ( match ctx with Some c -> c.chunk | None -> None)

let proc ?override ctx =
  match (override, ctx) with
  | Some p, _ -> p
  | None, Some c -> c.proc
  | None, None ->
    invalid_arg "Ctx.proc: no process given (pass ~proc or ~ctx)"

let scope ctx f =
  match ctx with
  | None -> ( try Ok (f ()) with e -> Error e)
  | Some c ->
    let with_opt apply o k =
      match o with None -> k () | Some v -> apply v k
    in
    with_opt Cache.Config.with_enabled c.cache @@ fun () ->
    with_opt Obs.Config.with_enabled c.telemetry @@ fun () ->
    with_opt Sim.Stamps.with_default_backend c.backend @@ fun () ->
    let labelled () =
      match c.label with
      | None -> f ()
      | Some l -> Obs.Trace.with_span ~cat:"exec" l f
    in
    ( try Ok (labelled ()) with e -> Error e)

let run ctx f =
  match scope ctx f with Ok v -> v | Error e -> raise e

type t = {
  proc : Technology.Process.t;
  jobs : int option;
  chunk : int option;
  cache : bool option;
  telemetry : bool option;
  backend : Sim.Stamps.backend option;
  label : string option;
  deadline : float option;
  cancel : bool Atomic.t;
  seed : int option;
}

let make ?jobs ?chunk ?cache ?telemetry ?backend ?label ?deadline ?cancel ?seed
    proc =
  let cancel = match cancel with Some c -> c | None -> Atomic.make false in
  { proc; jobs; chunk; cache; telemetry; backend; label; deadline; cancel;
    seed }

let with_timeout timeout_s ctx =
  match timeout_s with
  | None -> ctx
  | Some t -> { ctx with deadline = Some (Obs.Clock.monotonic_s () +. t) }

let cancelled ctx =
  match ctx with None -> false | Some c -> Atomic.get c.cancel

let check_deadline ?(analysis = "exec") ctx =
  match ctx with
  | None -> ()
  | Some c ->
    (* A cancellation token behaves as "deadline moved to now": the same
       safe interruption points that poll the deadline observe it, and
       it surfaces through the same [Deadline_exceeded] path. *)
    if Atomic.get c.cancel then
      raise (Sim.Sim_error.Deadline_exceeded (analysis, 0.));
    (match c.deadline with
     | None -> ()
     | Some d ->
       let now = Obs.Clock.monotonic_s () in
       if now > d then
         raise (Sim.Sim_error.Deadline_exceeded (analysis, now -. d)))

let jobs ?override ctx =
  match override with
  | Some _ -> override
  | None -> ( match ctx with Some c -> c.jobs | None -> None)

let chunk ?override ctx =
  match override with
  | Some _ -> override
  | None -> ( match ctx with Some c -> c.chunk | None -> None)

let default_seed = 42

let seed ?override ctx =
  match override with
  | Some s -> s
  | None ->
    (match (match ctx with Some c -> c.seed | None -> None) with
     | Some s -> s
     | None ->
       (* the environment is the outermost binding: it lets `bench` and
          scripted runs be re-seeded without touching any call site *)
       (match Sys.getenv_opt "LOSAC_SEED" with
        | Some s ->
          (match int_of_string_opt (String.trim s) with
           | Some v -> v
           | None -> default_seed)
        | None -> default_seed))

let proc ?override ctx =
  match (override, ctx) with
  | Some p, _ -> p
  | None, Some c -> c.proc
  | None, None ->
    invalid_arg "Ctx.proc: no process given (pass ~proc or ~ctx)"

let scope ctx f =
  match ctx with
  | None -> ( try Ok (f ()) with e -> Error e)
  | Some c ->
    let with_opt apply o k =
      match o with None -> k () | Some v -> apply v k
    in
    (* Each switch binds context-locally (domain-local fluids), so two
       scopes with conflicting flags can run concurrently on different
       domains without observing each other; [None] fields leave the
       outer binding (or the process global) visible.  [Par.Pool]
       re-installs these bindings around every chunk it runs for us. *)
    with_opt Cache.Config.with_enabled c.cache @@ fun () ->
    with_opt Obs.Config.with_enabled c.telemetry @@ fun () ->
    with_opt Sim.Stamps.with_default_backend c.backend @@ fun () ->
    let labelled () =
      match c.label with
      | None -> f ()
      | Some l -> Obs.Trace.with_span ~cat:"exec" l f
    in
    ( try Ok (labelled ()) with e -> Error e)

let run ctx f =
  match scope ctx f with Ok v -> v | Error e -> raise e

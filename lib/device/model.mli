(** MOS compact models.

    Two model kinds are provided, selected at run time so that the sizing
    tool and the simulator always evaluate the *same* equations (the paper
    credits much of COMDIAC's accuracy to sharing transistor models with the
    simulator):

    - {!Level1}: classical square-law with channel-length modulation and
      body effect, extended with an EKV-style smooth weak-inversion
      interpolation so that the DC Newton solver sees a C1 characteristic.
    - {!Bsim_lite}: Level-1 structure with short-channel corrections —
      vertical-field mobility degradation (theta), velocity saturation
      (ecrit) folded into an effective KP, and Vth roll-off with L.

    All equations are written in NMOS polarity with positive [vgs], [vds],
    [vbs <= 0] for reverse body bias; PMOS callers flip signs (see
    {!Electrical.mos_type_sign}).  Negative [vds] is handled by the
    source/drain symmetry swap so that Newton iterations may evaluate the
    model anywhere. *)

type kind = Level1 | Bsim_lite

val kind_to_string : kind -> string

type bias = { vgs : float; vds : float; vbs : float }

type region = Cutoff | Weak | Triode | Saturation

val region_to_string : region -> string

type eval = {
  ids : float;   (** drain current, A (negative when vds < 0) *)
  gm : float;    (** dIds/dVgs, S *)
  gds : float;   (** dIds/dVds, S *)
  gmb : float;   (** dIds/dVbs, S *)
  vth : float;   (** threshold at this body bias, V *)
  veff : float;  (** vgs - vth, V *)
  vdsat : float; (** saturation voltage, V *)
  region : region;
}

val threshold :
  kind -> Technology.Electrical.mos_params -> l:float -> vbs:float -> float
(** Threshold voltage including body effect (and Vth roll-off for
    {!Bsim_lite}). *)

val slope_factor :
  Technology.Electrical.mos_params -> vbs:float -> float
(** Weak-inversion slope factor n = 1 + gamma / (2 sqrt(phi - vbs)). *)

val smooth_overdrive : n:float -> float -> float
(** [smooth_overdrive ~n veff] is the EKV-style smooth effective
    overdrive: [veff] in strong inversion, an exponential with slope
    [1/(n vt)] below threshold.  Equals the model's [vdsat].  Exposed for
    the LUT builder ({!Lut}). *)

val drain_current :
  kind -> Technology.Electrical.mos_params ->
  w:float -> l:float -> bias -> float
(** Large-signal drain current.  Smooth in all terminal voltages. *)

val evaluate :
  kind -> Technology.Electrical.mos_params ->
  w:float -> l:float -> bias -> eval
(** Current plus small-signal conductances (central-difference derivatives
    of {!drain_current}, 1 uV step).

    Evaluations are memoized in a content-addressed cache
    ([device.eval] in {!Cache.Memo.registry}) keyed by the full input —
    model card (including mismatch perturbations), geometry and bias — so
    repeated operating points cost a hash lookup.  The cache stores the
    exact computed record: results are bit-identical with caching on or
    off ({!Cache.Config}). *)

val evaluate_exact :
  kind -> Technology.Electrical.mos_params ->
  w:float -> l:float -> bias -> eval
(** {!evaluate} without the memo — used by benchmarks to measure the
    uncached cost, and by the LUT builder. *)

val w_for_current :
  kind -> Technology.Electrical.mos_params ->
  l:float -> ids:float -> bias -> float
(** Width giving drain current [ids] at the given bias — exact inversion
    since Ids is proportional to W.  This is the inner step of the sizing
    tool's "simple monotonic numerical iterations". *)

val vgs_for_current :
  kind -> Technology.Electrical.mos_params ->
  w:float -> l:float -> ids:float -> vds:float -> vbs:float -> float
(** Gate-source voltage at which the device carries [ids]; bracketed search
    over [vth - 0.5, vth + 3] V.  Raises [Phys.Numerics.No_convergence] when
    [ids] is not reachable. *)

module E = Technology.Electrical
module P = Technology.Process

(* Reference width for the normalized samples: ids, gm and gmb are exactly
   proportional to W in both model kinds, so any value works. *)
let w_ref = 1e-6

(* Grid axes: Veff from deep subthreshold to strong inversion in 10 mV
   steps, L log-spaced from Lmin to 20 um.  Bilinear error shrinks
   quadratically in the step, and at this density the optimizer's
   LUT-tier candidate ranking tracks the exact plan closely (see the
   trust guard and bench opt's front-agreement record). *)
let veff_axis () = Array.init 181 (fun i -> -0.3 +. (0.01 *. float_of_int i))

let l_axis proc =
  let lmin = P.lmin proc in
  let lmax = 20e-6 in
  let n = 49 in
  let ratio = lmax /. lmin in
  Array.init n (fun i ->
    lmin *. (ratio ** (float_of_int i /. float_of_int (n - 1))))

(* One sample: evaluate the exact model at vbs = 0, safely in saturation,
   and strip the width and CLM factors so they can be re-applied in closed
   form at interpolation time. *)
let sample kind p veff l =
  let vth = Model.threshold kind p ~l ~vbs:0.0 in
  let n = Model.slope_factor p ~vbs:0.0 in
  let vdsat = Model.smooth_overdrive ~n veff in
  let vds = vdsat +. 0.3 in
  let e =
    Model.evaluate_exact kind p ~w:w_ref ~l
      { Model.vgs = vth +. veff; vds; vbs = 0.0 }
  in
  let lambda = p.E.clm_coeff /. l in
  let clm = 1.0 +. (lambda *. vds) in
  let norm = 1.0 /. (w_ref *. clm) in
  [| e.Model.ids *. norm; e.Model.gm *. norm; e.Model.gmb *. norm |]

(* Grids are immutable once built; the store is a plain mutexed table (not
   a Cache.Memo) so LUT mode keeps working when the memo caches are
   disabled. *)
let tables : (P.t * Model.kind * E.mos_type, Cache.Lut.t) Hashtbl.t =
  Hashtbl.create 8

(* Visited-cell bitmap per table, indexed like the grid cells ((nx-1) *
   (ny-1) interpolation cells).  Marking is a single racy byte store —
   worst case a concurrent mark is lost for one evaluation, which only
   under-reports the trust sample; bytes never tear. *)
let visited : (P.t * Model.kind * E.mos_type, Bytes.t) Hashtbl.t =
  Hashtbl.create 8

let tables_mutex = Mutex.create ()

let card proc mtype =
  match mtype with
  | E.Nmos -> proc.P.electrical.E.nmos
  | E.Pmos -> proc.P.electrical.E.pmos

let table proc kind mtype =
  let key = (proc, kind, mtype) in
  match
    Mutex.protect tables_mutex (fun () -> Hashtbl.find_opt tables key)
  with
  | Some t -> t
  | None ->
    (* build outside the lock: ~2000 exact evaluations *)
    let p = card proc mtype in
    let t =
      Cache.Lut.build
        ~name:
          (Printf.sprintf "device.op.%s.%s.%s" proc.P.name
             (Model.kind_to_string kind)
             (match mtype with E.Nmos -> "nmos" | E.Pmos -> "pmos"))
        ~xs:(veff_axis ()) ~ys:(l_axis proc)
        ~f:(fun veff l -> sample kind p veff l)
    in
    Mutex.protect tables_mutex (fun () ->
      match Hashtbl.find_opt tables key with
      | Some existing -> existing  (* another domain won the race *)
      | None ->
        Hashtbl.replace tables key t;
        let nx, ny = Cache.Lut.grid_size t in
        Hashtbl.replace visited key (Bytes.make ((nx - 1) * (ny - 1)) '\000');
        t)

(* Last-table cache for the sizing-plan hot loop, which hammers one
   (process, kind, polarity) pair with thousands of evaluations: skip the
   mutexed hashtable (and the axis copy {!Cache.Lut.xs} makes) on repeat
   lookups.  Tables, bitmaps and axis snapshots are immutable once
   published, and process records are shared constants, so physical
   equality on the key is a safe (conservative) fast path and a stale
   slot only costs the mutexed lookup again. *)
type slot = {
  key : P.t * Model.kind * E.mos_type;
  t : Cache.Lut.t;
  bits : Bytes.t;
  ny1 : int;  (* interpolation cells per veff row, = ny - 1 *)
}

let hot : slot option Atomic.t = Atomic.make None

let lookup proc kind mtype =
  match Atomic.get hot with
  | Some ({ key = p, k, m; _ } as s) when p == proc && k = kind && m = mtype ->
    s
  | _ ->
    let t = table proc kind mtype in
    let bits =
      Mutex.protect tables_mutex (fun () ->
        Hashtbl.find visited (proc, kind, mtype))
    in
    let _, ny = Cache.Lut.grid_size t in
    let s = { key = (proc, kind, mtype); t; bits; ny1 = ny - 1 } in
    Atomic.set hot (Some s);
    s

let mark_cell s ix iy =
  let idx = (ix * s.ny1) + iy in
  if Bytes.get s.bits idx = '\000' then Bytes.set s.bits idx '\001'

let mark_visited s veff l =
  let ix, iy = Cache.Lut.locate s.t veff l in
  mark_cell s ix iy

let tables_built () =
  Mutex.protect tables_mutex (fun () -> Hashtbl.length tables)

let vt_thermal = Phys.Const.thermal_voltage Phys.Const.room_temperature

type trust = {
  tables : int;
  cells_visited : int;
  max_rel_err : float;
}

(* Sample each visited interpolation cell at its centre and compare the
   bilinear reconstruction against a fresh exact-model sample (the same
   width-normalized quantities the grid stores).  Only cells a run has
   actually exercised are checked, so the reported disagreement reflects
   the operating regions the workload visited, not the grid's worst
   corner.  The result is published as the [cache.lut.max_rel_err] and
   [cache.lut.visited_cells] gauges. *)
let trust_check () =
  let snapshot =
    Mutex.protect tables_mutex (fun () ->
      Hashtbl.fold
        (fun key t acc ->
          match Hashtbl.find_opt visited key with
          | None -> acc
          | Some bits -> (key, t, Bytes.copy bits) :: acc)
        tables [])
  in
  let cells = ref 0 and worst = ref 0.0 in
  List.iter
    (fun ((proc, kind, mtype), t, bits) ->
      let p = card proc mtype in
      let xs = Cache.Lut.xs t and ys = Cache.Lut.ys t in
      let ny = Array.length ys in
      let n = Bytes.length bits in
      for idx = 0 to n - 1 do
        if Bytes.get bits idx <> '\000' then begin
          incr cells;
          let ix = idx / (ny - 1) and iy = idx mod (ny - 1) in
          let veff = 0.5 *. (xs.(ix) +. xs.(ix + 1)) in
          let l = 0.5 *. (ys.(iy) +. ys.(iy + 1)) in
          let interp = Cache.Lut.eval t veff l in
          let exact = sample kind p veff l in
          (* ids and gm; gmb tracks gm and adds nothing to the bound *)
          for k = 0 to 1 do
            let e = exact.(k) in
            let err = Float.abs (interp.(k) -. e) /. (Float.abs e +. 1e-18) in
            if err > !worst then worst := err
          done
        end
      done)
    snapshot;
  let r =
    { tables = List.length snapshot; cells_visited = !cells;
      max_rel_err = (if !cells = 0 then 0.0 else !worst) }
  in
  if Obs.Config.enabled () then begin
    Obs.Metrics.set "cache.lut.visited_cells" (float_of_int r.cells_visited);
    Obs.Metrics.set "cache.lut.max_rel_err" r.max_rel_err
  end;
  r

(* LUT-consistent inversions.  A sizing plan that interpolates its
   forward evaluations from the grid must invert the *same* interpolant:
   mixing exact-model Newton inversions with interpolated forward evals
   makes the plan internally inconsistent, and the fixed-point iteration
   amplifies the O(grid error) mismatch into feasibility flips near the
   convergence boundary.  Both inversions below are exact inverses of
   {!eval}'s closed form (ids linear in W; piecewise-linear in veff at
   fixed L), and they are total — out-of-grid targets extrapolate the end
   segment instead of raising, leaving feasibility decisions to the
   plan's own constraints. *)

let w_for_current proc kind ~mtype ~l ~ids bias =
  let s = lookup proc kind mtype in
  let p = card proc mtype in
  let vth = Model.threshold kind p ~l ~vbs:bias.Model.vbs in
  let veff = bias.Model.vgs -. vth in
  let ix, iy = Cache.Lut.locate s.t veff l in
  mark_cell s ix iy;
  let lambda = p.E.clm_coeff /. l in
  let clm = 1.0 +. (lambda *. bias.Model.vds) in
  let den = Cache.Lut.eval1_at s.t 0 ~ix ~iy veff l *. clm in
  (* subthreshold currents are tiny but positive; guard the division so a
     degenerate candidate yields an absurd width (and fails the plan's
     own checks) rather than a division by zero *)
  ids /. Float.max den 1e-12

let vgs_for_current proc kind ~mtype ~w ~l ~ids ~vds ~vbs =
  let s = lookup proc kind mtype in
  let p = card proc mtype in
  let vth = Model.threshold kind p ~l ~vbs in
  let lambda = p.E.clm_coeff /. l in
  let clm = 1.0 +. (lambda *. vds) in
  (* target width-normalized current; [eval] computes
     ids = out0(veff, l) * w * clm.  out0 is increasing and piecewise
     linear in veff at fixed l, so the interpolant inverts in closed form
     (end segments extrapolate beyond the grid). *)
  let target = ids /. (Float.max w 1e-12 *. clm) in
  let veff = Cache.Lut.invert_x s.t 0 l target in
  mark_visited s veff l;
  vth +. veff

let eval proc kind dev bias =
  let s = lookup proc kind dev.Mos.mtype in
  let t = s.t in
  (* the device's own (mismatch-perturbed) card: exact threshold, exact
     slope factor; the table's curves are indexed by the resulting veff *)
  let p = Mos.params proc dev in
  let l = dev.Mos.l in
  let vth = Model.threshold kind p ~l ~vbs:bias.Model.vbs in
  let veff = bias.Model.vgs -. vth in
  let ix, iy = Cache.Lut.locate t veff l in
  mark_cell s ix iy;
  let out = Array.make (Cache.Lut.outputs t) 0.0 in
  Cache.Lut.eval_into_at t out ~ix ~iy veff l;
  let lambda = p.E.clm_coeff /. l in
  let clm = 1.0 +. (lambda *. bias.Model.vds) in
  (* beta_scale is already folded into the card's u0 by [Mos.params], but
     the table was built from the unperturbed card — apply it here *)
  let scale = dev.Mos.w *. dev.Mos.beta_scale in
  let ids0 = out.(0) *. scale in
  let n = Model.slope_factor p ~vbs:bias.Model.vbs in
  let vdsat = Model.smooth_overdrive ~n veff in
  let region =
    if veff < -3.0 *. n *. vt_thermal then Model.Cutoff
    else if veff < 3.0 *. n *. vt_thermal then Model.Weak
    else if Float.abs bias.Model.vds < vdsat then Model.Triode
    else Model.Saturation
  in
  {
    Model.ids = ids0 *. clm;
    gm = out.(1) *. scale *. clm;
    gds = ids0 *. lambda;
    gmb = out.(2) *. scale *. clm;
    vth;
    veff;
    vdsat;
    region;
  }

module E = Technology.Electrical
module P = Technology.Process

(* Reference width for the normalized samples: ids, gm and gmb are exactly
   proportional to W in both model kinds, so any value works. *)
let w_ref = 1e-6

(* Grid axes: Veff from deep subthreshold to strong inversion in 20 mV
   steps, L log-spaced from Lmin to 20 um. *)
let veff_axis () = Array.init 91 (fun i -> -0.3 +. (0.02 *. float_of_int i))

let l_axis proc =
  let lmin = P.lmin proc in
  let lmax = 20e-6 in
  let n = 25 in
  let ratio = lmax /. lmin in
  Array.init n (fun i ->
    lmin *. (ratio ** (float_of_int i /. float_of_int (n - 1))))

(* One sample: evaluate the exact model at vbs = 0, safely in saturation,
   and strip the width and CLM factors so they can be re-applied in closed
   form at interpolation time. *)
let sample kind p veff l =
  let vth = Model.threshold kind p ~l ~vbs:0.0 in
  let n = Model.slope_factor p ~vbs:0.0 in
  let vdsat = Model.smooth_overdrive ~n veff in
  let vds = vdsat +. 0.3 in
  let e =
    Model.evaluate_exact kind p ~w:w_ref ~l
      { Model.vgs = vth +. veff; vds; vbs = 0.0 }
  in
  let lambda = p.E.clm_coeff /. l in
  let clm = 1.0 +. (lambda *. vds) in
  let norm = 1.0 /. (w_ref *. clm) in
  [| e.Model.ids *. norm; e.Model.gm *. norm; e.Model.gmb *. norm |]

(* Grids are immutable once built; the store is a plain mutexed table (not
   a Cache.Memo) so LUT mode keeps working when the memo caches are
   disabled. *)
let tables : (P.t * Model.kind * E.mos_type, Cache.Lut.t) Hashtbl.t =
  Hashtbl.create 8

let tables_mutex = Mutex.create ()

let card proc mtype =
  match mtype with
  | E.Nmos -> proc.P.electrical.E.nmos
  | E.Pmos -> proc.P.electrical.E.pmos

let table proc kind mtype =
  let key = (proc, kind, mtype) in
  match
    Mutex.protect tables_mutex (fun () -> Hashtbl.find_opt tables key)
  with
  | Some t -> t
  | None ->
    (* build outside the lock: ~2000 exact evaluations *)
    let p = card proc mtype in
    let t =
      Cache.Lut.build
        ~name:
          (Printf.sprintf "device.op.%s.%s.%s" proc.P.name
             (Model.kind_to_string kind)
             (match mtype with E.Nmos -> "nmos" | E.Pmos -> "pmos"))
        ~xs:(veff_axis ()) ~ys:(l_axis proc)
        ~f:(fun veff l -> sample kind p veff l)
    in
    Mutex.protect tables_mutex (fun () ->
      match Hashtbl.find_opt tables key with
      | Some existing -> existing  (* another domain won the race *)
      | None ->
        Hashtbl.replace tables key t;
        t)

let tables_built () =
  Mutex.protect tables_mutex (fun () -> Hashtbl.length tables)

let vt_thermal = Phys.Const.thermal_voltage Phys.Const.room_temperature

let eval proc kind dev bias =
  let t = table proc kind dev.Mos.mtype in
  (* the device's own (mismatch-perturbed) card: exact threshold, exact
     slope factor; the table's curves are indexed by the resulting veff *)
  let p = Mos.params proc dev in
  let l = dev.Mos.l in
  let vth = Model.threshold kind p ~l ~vbs:bias.Model.vbs in
  let veff = bias.Model.vgs -. vth in
  let out = Cache.Lut.eval t veff l in
  let lambda = p.E.clm_coeff /. l in
  let clm = 1.0 +. (lambda *. bias.Model.vds) in
  (* beta_scale is already folded into the card's u0 by [Mos.params], but
     the table was built from the unperturbed card — apply it here *)
  let scale = dev.Mos.w *. dev.Mos.beta_scale in
  let ids0 = out.(0) *. scale in
  let n = Model.slope_factor p ~vbs:bias.Model.vbs in
  let vdsat = Model.smooth_overdrive ~n veff in
  let region =
    if veff < -3.0 *. n *. vt_thermal then Model.Cutoff
    else if veff < 3.0 *. n *. vt_thermal then Model.Weak
    else if Float.abs bias.Model.vds < vdsat then Model.Triode
    else Model.Saturation
  in
  {
    Model.ids = ids0 *. clm;
    gm = out.(1) *. scale *. clm;
    gds = ids0 *. lambda;
    gmb = out.(2) *. scale *. clm;
    vth;
    veff;
    vdsat;
    region;
  }

type t = {
  eval : Model.eval;
  caps : Caps.t;
  geom : Folding.geom;
  bias : Model.bias;
}

(* Caps + geometry assembly shared by the exact and LUT paths. *)
let finish proc dev bias eval =
  let vdb_rev = Float.abs (bias.Model.vds -. bias.Model.vbs) in
  let vsb_rev = Float.abs bias.Model.vbs in
  let caps =
    Caps.of_operating_point proc dev.Mos.mtype ~w:dev.Mos.w ~l:dev.Mos.l
      ~style:dev.Mos.style ~region:eval.Model.region ~vdb_rev ~vsb_rev
  in
  let caps =
    (* When the extractor supplies as-drawn diffusions, recompute the
       junction terms from them. *)
    match dev.Mos.diffusion with
    | None -> caps
    | Some g ->
      let p = Mos.params proc dev in
      let module E = Technology.Electrical in
      let junction ~area ~perim ~vrev =
        Caps.junction_cap ~cj:p.E.cj ~cjsw:p.E.cjsw ~mj:p.E.mj
          ~mjsw:p.E.mjsw ~pb:p.E.pb ~area ~perim ~vrev
      in
      { caps with
        Caps.cdb = junction ~area:g.Folding.ad ~perim:g.Folding.pd ~vrev:vdb_rev;
        Caps.csb = junction ~area:g.Folding.as_ ~perim:g.Folding.ps ~vrev:vsb_rev }
  in
  { eval; caps; geom = Mos.diffusion_geom proc dev; bias }

let compute proc kind dev bias =
  let p = Mos.params proc dev in
  let eval = Model.evaluate kind p ~w:dev.Mos.w ~l:dev.Mos.l bias in
  finish proc dev bias eval

let compute_lut proc kind dev bias =
  finish proc dev bias (Lut.eval proc kind dev bias)

let ft t =
  t.eval.Model.gm /. (2.0 *. Float.pi *. Caps.total_gate t.caps)

let intrinsic_gain t = t.eval.Model.gm /. t.eval.Model.gds

let pp fmt t =
  let e = t.eval in
  Format.fprintf fmt
    "ids=%s gm=%s gds=%s vth=%.3f V veff=%.3f V vdsat=%.3f V %s [%a]"
    (Phys.Units.to_si_string "A" e.Model.ids)
    (Phys.Units.to_si_string "S" e.Model.gm)
    (Phys.Units.to_si_string "S" e.Model.gds)
    e.Model.vth e.Model.veff e.Model.vdsat
    (Model.region_to_string e.Model.region)
    Caps.pp t.caps

(** Precomputed operating-point lookup tables — the opt-in fast path for
    MOS evaluation ("Accelerating OTA Circuit Design" makes device
    evaluation the cheapest step of sizing by tabulating it).

    Per (process, model kind, device polarity) a {!Cache.Lut} grid over
    {b (Veff, L)} is built lazily on first use and cached for the life of
    the process; corners and analysis temperatures produce distinct
    process records and therefore distinct grids.  Each grid point stores
    width-normalized saturation-region quantities (ids, gm, gmb per metre
    of W with the channel-length-modulation factor divided out), sampled
    from {!Model.evaluate_exact} at vbs = 0.

    {!eval} then reconstructs a {!Model.eval} record analytically:
    threshold (with body effect and mismatch shift) is computed exactly,
    the tabulated curves are interpolated bilinearly at (veff, L), and
    width, current-factor mismatch and CLM are applied in closed form
    (gds = ids0 W lambda).

    {b Accuracy.}  This is an approximation, valid for saturated devices
    at small reverse body bias: unlike {!Memo}-cached evaluation it is
    {e not} bit-identical to {!Model.evaluate}.  It is therefore never
    wired into the simulator or the sizing plans implicitly — callers opt
    in via {!Op.compute_lut}, and [bench cache] reports its speedup and
    worst-case error against the exact model. *)

val eval :
  Technology.Process.t -> Model.kind -> Mos.t -> Model.bias -> Model.eval
(** LUT-interpolated operating point of [dev] at [bias] (NMOS-convention
    voltages, like {!Op.compute}).  Builds the per-process grid on first
    use. *)

val w_for_current :
  Technology.Process.t -> Model.kind ->
  mtype:Technology.Electrical.mos_type -> l:float -> ids:float ->
  Model.bias -> float
(** LUT-consistent width inversion: the width for which {!eval} at this
    bias returns exactly [ids] (ids is linear in W in the interpolant).
    Total — degenerate targets yield extreme widths, never an
    exception. *)

val vgs_for_current :
  Technology.Process.t -> Model.kind ->
  mtype:Technology.Electrical.mos_type -> w:float -> l:float ->
  ids:float -> vds:float -> vbs:float -> float
(** LUT-consistent gate-voltage inversion: solves the interpolated
    width-normalized current curve (piecewise linear in veff at fixed L)
    in closed form, extrapolating the end segments beyond the grid.
    A plan that interpolates its forward evaluations must use these
    inversions — mixing exact Newton inversions with interpolated
    forward evaluations makes the plan internally inconsistent. *)

val table :
  Technology.Process.t -> Model.kind -> Technology.Electrical.mos_type ->
  Cache.Lut.t
(** The underlying grid (built lazily, shared across domains). *)

val tables_built : unit -> int
(** Number of distinct grids built so far (diagnostics). *)

type trust = {
  tables : int;          (** grids built *)
  cells_visited : int;   (** interpolation cells any {!eval} touched *)
  max_rel_err : float;
      (** worst relative ids/gm disagreement between the bilinear
          reconstruction and a fresh exact-model sample at the centres of
          the visited cells; [0.0] when nothing was visited *)
}

val trust_check : unit -> trust
(** The LUT trust guard: re-sample the exact model at the centre of every
    grid cell this process has actually interpolated from and report the
    worst relative disagreement.  Cost is one exact evaluation per
    visited cell (bounded by the workload's operating-region coverage,
    not the grid size).  Publishes the [cache.lut.max_rel_err] and
    [cache.lut.visited_cells] gauges when telemetry is on; surfaced by
    [losac stats]. *)

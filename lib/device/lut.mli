(** Precomputed operating-point lookup tables — the opt-in fast path for
    MOS evaluation ("Accelerating OTA Circuit Design" makes device
    evaluation the cheapest step of sizing by tabulating it).

    Per (process, model kind, device polarity) a {!Cache.Lut} grid over
    {b (Veff, L)} is built lazily on first use and cached for the life of
    the process; corners and analysis temperatures produce distinct
    process records and therefore distinct grids.  Each grid point stores
    width-normalized saturation-region quantities (ids, gm, gmb per metre
    of W with the channel-length-modulation factor divided out), sampled
    from {!Model.evaluate_exact} at vbs = 0.

    {!eval} then reconstructs a {!Model.eval} record analytically:
    threshold (with body effect and mismatch shift) is computed exactly,
    the tabulated curves are interpolated bilinearly at (veff, L), and
    width, current-factor mismatch and CLM are applied in closed form
    (gds = ids0 W lambda).

    {b Accuracy.}  This is an approximation, valid for saturated devices
    at small reverse body bias: unlike {!Memo}-cached evaluation it is
    {e not} bit-identical to {!Model.evaluate}.  It is therefore never
    wired into the simulator or the sizing plans implicitly — callers opt
    in via {!Op.compute_lut}, and [bench cache] reports its speedup and
    worst-case error against the exact model. *)

val eval :
  Technology.Process.t -> Model.kind -> Mos.t -> Model.bias -> Model.eval
(** LUT-interpolated operating point of [dev] at [bias] (NMOS-convention
    voltages, like {!Op.compute}).  Builds the per-process grid on first
    use. *)

val table :
  Technology.Process.t -> Model.kind -> Technology.Electrical.mos_type ->
  Cache.Lut.t
(** The underlying grid (built lazily, shared across domains). *)

val tables_built : unit -> int
(** Number of distinct grids built so far (diagnostics). *)

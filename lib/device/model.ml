module E = Technology.Electrical

type kind = Level1 | Bsim_lite

let kind_to_string = function Level1 -> "level1" | Bsim_lite -> "bsim-lite"

type bias = { vgs : float; vds : float; vbs : float }

type region = Cutoff | Weak | Triode | Saturation

let region_to_string = function
  | Cutoff -> "cutoff"
  | Weak -> "weak"
  | Triode -> "triode"
  | Saturation -> "saturation"

type eval = {
  ids : float;
  gm : float;
  gds : float;
  gmb : float;
  vth : float;
  veff : float;
  vdsat : float;
  region : region;
}

let vt_thermal = Phys.Const.thermal_voltage Phys.Const.room_temperature

(* The helpers below carry [@inline] so the Newton stamping loop — which
   evaluates every device on every iterate — pays no cross-function float
   boxing.  Inlining preserves the floating-point operation sequence
   exactly, so results stay bit-identical. *)

(* Clamp the junction potential so body effect stays defined for mildly
   forward body bias encountered during Newton iterations. *)
let[@inline] phi_minus_vbs p vbs = Float.max 0.05 (p.E.phi -. vbs)

let[@inline] slope_factor p ~vbs =
  1.0 +. p.E.gamma /. (2.0 *. sqrt (phi_minus_vbs p vbs))

let[@inline] threshold kind p ~l ~vbs =
  let body = p.E.gamma *. (sqrt (phi_minus_vbs p vbs) -. sqrt p.E.phi) in
  let rolloff =
    match kind with
    | Level1 -> 0.0
    | Bsim_lite -> p.E.dvt_l *. exp (-.l /. p.E.lt)
  in
  p.E.vto +. body -. rolloff

(* EKV-style smooth overdrive: equals vgs - vth in strong inversion and an
   exponential with slope 1/(n vt) below threshold, giving a C-infinity
   current characteristic through the weak/moderate inversion transition. *)
let[@inline] smooth_overdrive ~n veff =
  let a = 2.0 *. n *. vt_thermal in
  let x = veff /. a in
  if x > 40.0 then veff else a *. log1p (exp x)

let[@inline] kp_effective kind p ~l veffs =
  let kp = E.kp p in
  match kind with
  | Level1 -> kp
  | Bsim_lite ->
    let mobility = 1.0 +. p.E.theta *. veffs in
    let vsat = 1.0 +. veffs /. (p.E.ecrit *. l) in
    kp /. (mobility *. vsat)

(* Forward current with vds >= 0.  The (1 + lambda vds) factor multiplies
   both regions (as SPICE Level 1 does) so the characteristic stays
   continuous at vdsat. *)
let[@inline] ids_forward kind p ~w ~l { vgs; vds; vbs } =
  let n = slope_factor p ~vbs in
  let vth = threshold kind p ~l ~vbs in
  let veffs = smooth_overdrive ~n (vgs -. vth) in
  let kp_eff = kp_effective kind p ~l veffs in
  let beta = kp_eff *. w /. l in
  let lambda = p.E.clm_coeff /. l in
  let clm = 1.0 +. lambda *. vds in
  let vdsat = veffs in
  if vds >= vdsat then 0.5 *. beta /. n *. veffs *. veffs *. clm
  else beta /. n *. (veffs -. 0.5 *. vds) *. vds *. clm

let[@inline] drain_current kind p ~w ~l bias =
  if bias.vds >= 0.0 then ids_forward kind p ~w ~l bias
  else
    (* source/drain swap: with roles exchanged the controlling voltages are
       vgd and vbd. *)
    let swapped =
      { vgs = bias.vgs -. bias.vds;
        vds = -.bias.vds;
        vbs = bias.vbs -. bias.vds }
    in
    -.ids_forward kind p ~w ~l swapped

let evaluate_exact kind p ~w ~l bias =
  let h = 1e-6 in
  let f b = drain_current kind p ~w ~l b in
  let ids = f bias in
  let gm =
    (f { bias with vgs = bias.vgs +. h } -. f { bias with vgs = bias.vgs -. h })
    /. (2.0 *. h)
  in
  let gds =
    (f { bias with vds = bias.vds +. h } -. f { bias with vds = bias.vds -. h })
    /. (2.0 *. h)
  in
  let gmb =
    (f { bias with vbs = bias.vbs +. h } -. f { bias with vbs = bias.vbs -. h })
    /. (2.0 *. h)
  in
  let vth = threshold kind p ~l ~vbs:bias.vbs in
  let n = slope_factor p ~vbs:bias.vbs in
  let veff = bias.vgs -. vth in
  let vdsat = smooth_overdrive ~n veff in
  let region =
    if veff < -3.0 *. n *. vt_thermal then Cutoff
    else if veff < 3.0 *. n *. vt_thermal then Weak
    else if Float.abs bias.vds < vdsat then Triode
    else Saturation
  in
  { ids; gm; gds; gmb; vth; veff; vdsat; region }

(* Content-addressed memo over the full operating-point evaluation — the
   hot path of the sizing plans, which revisit the same designed bias
   points over and over.  The key covers everything the result depends
   on (model card incl. mismatch perturbations, geometry, bias), so a
   hit is bit-identical to recomputation.  The Newton stamps call
   [evaluate_exact] instead: their biases are fresh on almost every
   iterate, and a memo there is pure churn. *)
let eval_memo : (kind * E.mos_params * float * float * bias, eval) Cache.Memo.t =
  Cache.Memo.create ~name:"device.eval" ~shards:16 ~capacity:(1 lsl 17) ()

let evaluate kind p ~w ~l bias =
  if not (Cache.Config.enabled ()) then evaluate_exact kind p ~w ~l bias
  else
    Cache.Memo.find_or_compute eval_memo
      (kind, p, w, l, bias)
      (fun () -> evaluate_exact kind p ~w ~l bias)

let w_for_current kind p ~l ~ids bias =
  assert (ids > 0.0);
  let unit_w = 1e-6 in
  let i1 = drain_current kind p ~w:unit_w ~l bias in
  if i1 <= 0.0 then
    raise (Phys.Numerics.No_convergence "w_for_current: zero current at bias");
  ids /. i1 *. unit_w

let vgs_for_current kind p ~w ~l ~ids ~vds ~vbs =
  assert (ids > 0.0);
  let vth = threshold kind p ~l ~vbs in
  let f vgs = drain_current kind p ~w ~l { vgs; vds; vbs } -. ids in
  Phys.Numerics.brent ~tol:1e-12 ~f (vth -. 0.5) (vth +. 3.0)

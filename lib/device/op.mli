(** A full device operating point: large-signal evaluation, small-signal
    conductances and capacitances, plus the noise densities — everything
    the sizing equations and the simulator stamps need. *)

type t = {
  eval : Model.eval;
  caps : Caps.t;
  geom : Folding.geom;
  bias : Model.bias;  (** NMOS-convention (positive) biases *)
}

val compute :
  Technology.Process.t -> Model.kind -> Mos.t -> Model.bias -> t
(** [compute proc kind dev bias] evaluates [dev] at [bias], where [bias]
    is expressed in the device's own polarity convention (all voltages
    positive for a normally-biased device, vbs as reverse magnitude
    negative).  Junction reverse biases are taken as |vdb| and |vsb| with
    vdb = vds - vbs and vsb = -vbs. *)

val compute_lut :
  Technology.Process.t -> Model.kind -> Mos.t -> Model.bias -> t
(** Like {!compute} but evaluates the model through the interpolated
    operating-point tables of {!Lut} instead of {!Model.evaluate}.  Fast
    but approximate (saturation-region fit, vbs = 0 grid) — opt-in only;
    never used implicitly by the simulator or the sizing plans.  The
    capacitance and geometry assembly is shared with {!compute}. *)

val ft : t -> float
(** Transit frequency gm / (2 pi (cgs + cgd + cgb)). *)

val intrinsic_gain : t -> float
(** gm / gds. *)

val pp : Format.formatter -> t -> unit

module FC = Comdiac.Folded_cascode
(* bound before [Par] below shadows the par library *)
module Pool = Par.Pool
module Par = Comdiac.Parasitics
module Plan = Cairo_layout.Plan
module El = Netlist.Element

type case = Case1 | Case2 | Case3 | Case4

let all_cases = [ Case1; Case2; Case3; Case4 ]

let case_label = function
  | Case1 -> "case 1"
  | Case2 -> "case 2"
  | Case3 -> "case 3"
  | Case4 -> "case 4"

let case_description = function
  | Case1 -> "sizing with no layout capacitances (neither diffusion nor routing)"
  | Case2 ->
    "sizing with diffusion capacitance assuming single transistor folds \
     and no routing capacitance"
  | Case3 ->
    "sizing with exact diffusion capacitance from the layout tool, \
     neglecting routing capacitances"
  | Case4 -> "sizing considering all layout parasitics"

type result = {
  case : case;
  design : FC.design;
  synthesized : Comdiac.Performance.t;
  extracted : Comdiac.Performance.t;
  layout_calls : int;
  sizing_passes : int;
  trajectory : float list;
  report : Plan.report;
  elapsed : float;
}

(* Post-layout netlist view: devices folded and grid-snapped as drawn, with
   as-drawn junction geometry; routing and well caps to ground; coupling
   capacitors between neighbouring routed nets. *)
let extracted_amp proc design report =
  let amp = design.FC.amp in
  let styles = report.Plan.device_styles in
  let drains = report.Plan.device_drains in
  let amp =
    Comdiac.Amp.map_devices
      (fun dev ->
        let name = dev.Device.Mos.name in
        let dev =
          match List.assoc_opt name styles with
          | Some style -> Device.Mos.with_style style dev
          | None -> dev
        in
        let dev = Device.Mos.snap_to_grid proc dev in
        match List.assoc_opt name drains with
        | Some geom -> { dev with Device.Mos.diffusion = Some geom }
        | None -> dev)
      amp
  in
  let ground_caps =
    List.filter_map
      (fun (s : Plan.net_summary) ->
        let c = s.Plan.routing_cap +. s.Plan.well_cap in
        if c > 0.0 then Some (s.Plan.net, c) else None)
      report.Plan.nets
  in
  let amp = Comdiac.Amp.with_node_caps ground_caps amp in
  (* coupling capacitors, deduplicated by unordered net pair *)
  let couplings =
    List.concat_map
      (fun (s : Plan.net_summary) ->
        List.map (fun (other, c) -> ((min s.Plan.net other, max s.Plan.net other), c))
          s.Plan.coupling)
      report.Plan.nets
    |> List.sort_uniq compare
  in
  let coupling_elements =
    List.map
      (fun ((a, b), c) ->
        El.Capacitor { name = Printf.sprintf "cc_%s_%s" a b; p = a; n = b; c })
      couplings
  in
  { amp with Comdiac.Amp.devices = amp.Comdiac.Amp.devices @ coupling_elements }

(* Lightweight GBW check: offset-nulled AC unity-gain frequency only. *)
let measured_gbw ~proc ~kind ~spec amp =
  let tb = Comdiac.Testbench.make ~proc ~kind ~spec amp in
  Comdiac.Testbench.gbw tb

(* Coarse memo over the whole calibrated sizing: the result is a pure
   function of (process, kind, spec, assumed parasitics), and the
   sizing<->layout loop re-enters with recurring parasitic vectors (the
   converged fixed point, warm re-runs of a whole case). *)
let sizing_memo :
    ( Technology.Process.t * Device.Model.kind * Comdiac.Spec.t
      * Comdiac.Parasitics.t,
      FC.design * int )
    Cache.Memo.t =
  Cache.Memo.create ~name:"flow.sizing" ~shards:4 ~capacity:512 ()

let size_calibrated ~proc ~kind ~spec ~parasitics =
  Cache.Memo.find_or_compute sizing_memo (proc, kind, spec, parasitics)
  @@ fun () ->
  let target = spec.Comdiac.Spec.gbw in
  let rec go gbw_internal passes =
    let spec' = { spec with Comdiac.Spec.gbw = gbw_internal } in
    let design = FC.size ~proc ~kind ~spec:spec' ~parasitics in
    if passes >= 4 then (design, passes)
    else
      match measured_gbw ~proc ~kind ~spec design.FC.amp with
      | None -> (design, passes)
      | Some fu ->
        if Float.abs (fu -. target) <= 0.01 *. target then (design, passes)
        else go (gbw_internal *. target /. fu) (passes + 1)
  in
  go target 1

(* The parasitic-mode layout plan is a pure function of (process, layout
   options, design): the sizing<->layout loop of every case re-plans the
   same intermediate designs (cases 3 and 4 share the first iterations,
   and Monte Carlo / corner reruns repeat whole trajectories), so the
   report is memoized.  The generation-mode call at the end of [run] is
   never cached — it is executed once per flow and emits the full cell. *)
let parasitic_plan_memo :
    (Technology.Process.t * Layout_bridge.options * FC.design, Plan.report)
    Cache.Memo.t =
  Cache.Memo.create ~name:"flow.parasitic_plan" ~shards:8 ~capacity:1024 ()

let parasitics_for_case ~case report =
  match case with
  | Case1 -> Par.none
  | Case2 -> Par.single_fold
  | Case3 -> Layout_bridge.parasitics_of_report ~include_routing:false report
  | Case4 -> Layout_bridge.parasitics_of_report ~include_routing:true report

let run ?(options = Layout_bridge.default_options) ?ctx ?proc ~kind ~spec case
    =
  let proc = Ctx.proc ?override:proc ctx in
  Ctx.run ctx @@ fun () ->
  Obs.Trace.with_span ~cat:"flow"
    ~args:[ ("case", Obs.Trace.Str (case_label case)) ]
    "flow.run"
  @@ fun () ->
  let t0 = Obs.Clock.monotonic_s () in
  let layout_calls = ref 0 in
  let sizing_passes = ref 0 in
  (* per-layout-call movement of the parasitic vector: the convergence
     trajectory of the sizing<->layout loop, newest last *)
  let trajectory = ref [] in
  let size parasitics =
    Obs.Trace.with_span ~cat:"flow" "flow.sizing" @@ fun () ->
    (* cooperative timeout: honoured between sizing/layout iterations *)
    Ctx.check_deadline ~analysis:"flow" ctx;
    let design, passes = size_calibrated ~proc ~kind ~spec ~parasitics in
    sizing_passes := !sizing_passes + passes;
    if (Obs.Config.enabled ()) then begin
      Obs.Metrics.add "flow.sizing_passes" (float_of_int passes);
      Obs.Trace.add_arg "passes" (Obs.Trace.Int passes)
    end;
    design
  in
  let parasitic_call design =
    Ctx.check_deadline ~analysis:"flow" ctx;
    incr layout_calls;
    Obs.Trace.with_span ~cat:"flow"
      ~args:[ ("index", Obs.Trace.Int !layout_calls);
              ("mode", Obs.Trace.Str "parasitic_only") ]
      "flow.layout_call"
      (fun () ->
        Cache.Memo.find_or_compute parasitic_plan_memo (proc, options, design)
          (fun () ->
            Layout_bridge.call_layout ~mode:Plan.Parasitic_only proc design
              options))
  in
  let record_delta d =
    trajectory := d :: !trajectory;
    if (Obs.Config.enabled ()) then Obs.Metrics.observe "flow.parasitic_delta" d
  in
  let design =
    match case with
    | Case1 -> size Par.none
    | Case2 -> size Par.single_fold
    | Case3 | Case4 ->
      (* the layout-oriented loop of Fig. 1b: first sizing assumes one
         fold per transistor, then layout information is fed back until
         the calculated parasitics remain unchanged *)
      let rec loop design parasitics iter =
        if iter >= 8 then design
        else begin
          let report = parasitic_call design in
          let parasitics' = parasitics_for_case ~case report in
          let delta = Par.max_distance parasitics parasitics' in
          record_delta delta;
          if delta < 0.02 then design
          else loop (size parasitics') parasitics' (iter + 1)
        end
      in
      let d0 = size Par.single_fold in
      loop d0 Par.single_fold 0
  in
  (* final call in generation mode *)
  let report =
    Obs.Trace.with_span ~cat:"flow"
      ~args:[ ("mode", Obs.Trace.Str "generation") ]
      "flow.layout_call"
      (fun () ->
        Layout_bridge.call_layout ~mode:Plan.Generation proc design options)
  in
  let tb_synth = Comdiac.Testbench.make ~proc ~kind ~spec design.FC.amp in
  let synthesized =
    Obs.Trace.with_span ~cat:"flow" "flow.verify_synthesized" (fun () ->
      Comdiac.Testbench.performance tb_synth)
  in
  let amp_ext = extracted_amp proc design report in
  let tb_ext = Comdiac.Testbench.make ~proc ~kind ~spec amp_ext in
  let extracted =
    Obs.Trace.with_span ~cat:"flow" "flow.verify_extracted" (fun () ->
      Comdiac.Testbench.performance tb_ext)
  in
  if (Obs.Config.enabled ()) then begin
    Obs.Metrics.add "flow.layout_calls" (float_of_int !layout_calls);
    Obs.Trace.add_arg "layout_calls" (Obs.Trace.Int !layout_calls);
    Obs.Trace.add_arg "sizing_passes" (Obs.Trace.Int !sizing_passes)
  end;
  {
    case;
    design;
    synthesized;
    extracted;
    layout_calls = !layout_calls;
    sizing_passes = !sizing_passes;
    trajectory = List.rev !trajectory;
    report;
    elapsed = Obs.Clock.monotonic_s () -. t0;
  }

let run_all ?options ?ctx ?jobs ?proc ~kind ~spec () =
  (* the four Table-1 cases are independent end-to-end syntheses *)
  let proc = Ctx.proc ?override:proc ctx in
  let jobs = Ctx.jobs ?override:jobs ctx in
  let chunk = Ctx.chunk ctx in
  Ctx.run ctx @@ fun () ->
  (* Each case is an entire synthesis flow: expensive — one per chunk.
     Only the deadline is threaded into the per-case contexts: the
     switch fields were already applied by [Ctx.run] above, and
     re-applying them inside pool workers would mutate the global flags
     concurrently.  A switch-free context is inert under [Ctx.run]. *)
  let case_ctx =
    match ctx with
    | Some { Ctx.deadline = Some d; _ } -> Some (Ctx.make ~deadline:d proc)
    | Some _ | None -> None
  in
  Pool.map ?jobs ?chunk ~cost:Pool.Expensive
    (fun case -> run ?options ?ctx:case_ctx ~proc ~kind ~spec case)
    all_cases

(* [Error] instead of raised simulator failures: what the job server
   calls so analysis outcomes are data, never caught exceptions. *)
let classify ~analysis f =
  match f () with
  | v -> Ok v
  | exception e ->
    (match Sim.Sim_error.of_exn ~analysis e with
     | Some err -> Error err
     | None -> raise e)

let run_result ?options ?ctx ?proc ~kind ~spec case =
  classify ~analysis:"flow" (fun () -> run ?options ?ctx ?proc ~kind ~spec case)

let run_all_result ?options ?ctx ?jobs ?proc ~kind ~spec () =
  classify ~analysis:"flow" (fun () ->
    run_all ?options ?ctx ?jobs ?proc ~kind ~spec ())

(** The traditional design flow of paper Fig. 1(a): size with no layout
    knowledge, generate the full layout, extract, simulate, and — when the
    extracted performance misses the specification — re-size against the
    extracted parasitics and repeat.  Each iteration pays for a complete
    layout generation and a full extracted-netlist verification, which is
    the cost the layout-oriented flow (Fig. 1b) avoids by calling the
    layout tool in its cheap parasitic-calculation mode. *)

type iteration = {
  index : int;
  gbw : float;
  pm : float;
  met : bool;
}

type result = {
  design : Comdiac.Folded_cascode.design;
  extracted : Comdiac.Performance.t;
  iterations : iteration list;   (** in order *)
  full_layouts : int;            (** generation-mode layout runs *)
  extracted_simulations : int;   (** full verification passes *)
  converged : bool;
  elapsed : float;               (** wall-clock seconds *)
}

val run :
  ?options:Layout_bridge.options ->
  ?max_iterations:int ->
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Comdiac.Spec.t ->
  unit -> result
(** Iterate until the extracted GBW is within 2% of the target and the
    extracted phase margin within 1 degree of the specification, or
    [max_iterations] (default 8) is reached. *)

module FC = Comdiac.Folded_cascode
module Par = Comdiac.Parasitics
module Plan = Cairo_layout.Plan

type iteration = {
  index : int;
  gbw : float;
  pm : float;
  met : bool;
}

type result = {
  design : FC.design;
  extracted : Comdiac.Performance.t;
  iterations : iteration list;
  full_layouts : int;
  extracted_simulations : int;
  converged : bool;
  elapsed : float;
}

let meets spec perf =
  let target = spec.Comdiac.Spec.gbw in
  Float.abs (perf.Comdiac.Performance.gbw -. target) <= 0.02 *. target
  && perf.Comdiac.Performance.phase_margin
     >= spec.Comdiac.Spec.phase_margin -. 1.0

let run ?(options = Layout_bridge.default_options) ?(max_iterations = 8) ~proc
    ~kind ~spec () =
  Obs.Trace.with_span ~cat:"flow" "traditional.run" @@ fun () ->
  let t0 = Obs.Clock.monotonic_s () in
  let full_layouts = ref 0 in
  let sims = ref 0 in
  let rec loop parasitics gbw_internal iters index =
    Obs.Trace.with_span ~cat:"flow"
      ~args:[ ("index", Obs.Trace.Int index) ]
      "traditional.iteration"
    @@ fun () ->
    (* re-size against whatever the designer knows so far *)
    let spec' = { spec with Comdiac.Spec.gbw = gbw_internal } in
    let design = FC.size ~proc ~kind ~spec:spec' ~parasitics in
    (* full layout generation and extraction - the expensive step *)
    incr full_layouts;
    let report =
      Obs.Trace.with_span ~cat:"flow" "traditional.full_layout" (fun () ->
        Layout_bridge.call_layout ~mode:Plan.Generation proc design options)
    in
    let amp_ext = Flow.extracted_amp proc design report in
    incr sims;
    let tb = Comdiac.Testbench.make ~proc ~kind ~spec amp_ext in
    let perf = Comdiac.Testbench.performance tb in
    let it =
      {
        index;
        gbw = perf.Comdiac.Performance.gbw;
        pm = perf.Comdiac.Performance.phase_margin;
        met = meets spec perf;
      }
    in
    if (Obs.Config.enabled ()) then begin
      (* relative GBW error after each full layout: the traditional
         flow's convergence trajectory, comparable to the layout-oriented
         flow's [flow.parasitic_delta] series *)
      Obs.Metrics.observe "traditional.gbw_error"
        (Float.abs (it.gbw -. spec.Comdiac.Spec.gbw)
         /. spec.Comdiac.Spec.gbw);
      Obs.Trace.add_arg "gbw" (Obs.Trace.Float it.gbw);
      Obs.Trace.add_arg "pm" (Obs.Trace.Float it.pm);
      Obs.Trace.add_arg "met" (Obs.Trace.Bool it.met)
    end;
    let iters = it :: iters in
    if it.met || index >= max_iterations then
      (design, perf, List.rev iters, it.met)
    else begin
      (* compensate: adopt the extracted parasitics and correct the GBW
         target by the observed shortfall *)
      let parasitics' = Layout_bridge.parasitics_of_report report in
      let gbw_internal' =
        gbw_internal *. spec.Comdiac.Spec.gbw /. Float.max 1e3 perf.Comdiac.Performance.gbw
      in
      loop parasitics' gbw_internal' iters (index + 1)
    end
  in
  let design, extracted, iterations, converged =
    loop Par.none spec.Comdiac.Spec.gbw [] 1
  in
  if (Obs.Config.enabled ()) then
    Obs.Metrics.add "traditional.full_layouts" (float_of_int !full_layouts);
  {
    design;
    extracted;
    iterations;
    full_layouts = !full_layouts;
    extracted_simulations = !sims;
    converged;
    elapsed = Obs.Clock.monotonic_s () -. t0;
  }

(* Re-export: the context lives in [lib/exec] so that the sizing library
   (which cannot depend on core) can consume it too; [Core.Ctx] is the
   canonical name user code is expected to use.  See Exec.Ctx for docs. *)
include Exec.Ctx

(** The layout-oriented synthesis flow (paper Fig. 1b) and the Table-1
    experiment cases.

    For every case the flow produces both the {e synthesized} performance
    (the sizing tool's view: the schematic annotated with whatever
    parasitics the case assumes, evaluated by the verification-by-
    simulation interface) and the {e extracted} performance (the layout is
    generated, parasitics extracted — fold-exact diffusion, routing,
    coupling and well capacitances, grid-snapped widths — and the
    resulting netlist simulated), i.e. the bracketed values of Table 1. *)

type case = Case1 | Case2 | Case3 | Case4

val all_cases : case list
val case_label : case -> string
val case_description : case -> string

type result = {
  case : case;
  design : Comdiac.Folded_cascode.design;
  synthesized : Comdiac.Performance.t;
  extracted : Comdiac.Performance.t;
  layout_calls : int;      (** parasitic-mode calls before convergence *)
  sizing_passes : int;
  trajectory : float list;
  (** parasitic-vector movement (relative max distance) observed at each
      parasitic-mode layout call, in call order — the convergence
      trajectory of the sizing↔layout loop.  Empty for cases 1 and 2.
      Also recorded in telemetry as the [flow.parasitic_delta] series. *)
  report : Cairo_layout.Plan.report;  (** final generation-mode report *)
  elapsed : float;         (** wall-clock seconds for the whole case *)
}

val extracted_amp :
  Technology.Process.t ->
  Comdiac.Folded_cascode.design ->
  Cairo_layout.Plan.report ->
  Comdiac.Amp.t
(** The post-layout view of the amp: grid-snapped folded devices with
    as-drawn diffusion, routing/well capacitance to ground per net and
    explicit coupling capacitors between neighbouring nets. *)

val size_calibrated :
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Comdiac.Spec.t ->
  parasitics:Comdiac.Parasitics.t ->
  Comdiac.Folded_cascode.design * int
(** Sizing with the paper's outer GBW iteration: the sized amp (with its
    assumed parasitics) is evaluated by simulation and the internal GBW
    target rescaled until the evaluated value meets the specification;
    returns the design and the number of sizing passes. *)

val run :
  ?options:Layout_bridge.options ->
  ?ctx:Ctx.t ->
  ?proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Comdiac.Spec.t ->
  case -> result
(** One end-to-end synthesis.  The process comes from [~proc] if given,
    else from [ctx.proc] ([Invalid_argument] when neither is supplied —
    [?proc] is optional only for compatibility with pre-{!Ctx} call
    sites).  [ctx]'s cache/telemetry switches are applied for the
    duration of the call. *)

val run_all :
  ?options:Layout_bridge.options ->
  ?ctx:Ctx.t ->
  ?jobs:int ->
  ?proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Comdiac.Spec.t ->
  unit -> result list
(** All four cases, in case order, run across the {!Par.Pool} domain
    pool.  Pool width resolution: [?jobs] (deprecated override), then
    [ctx.jobs], then {!Par.Pool.default_jobs}.  Each case is an
    independent synthesis, so the results are identical to four
    sequential {!run} calls. *)

val run_result :
  ?options:Layout_bridge.options ->
  ?ctx:Ctx.t ->
  ?proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Comdiac.Spec.t ->
  case -> (result, Sim.Sim_error.t) Stdlib.result
(** {!run} with simulator failures (no convergence, singular matrix,
    deadline exceeded) returned as [Error] instead of raised — the
    entry point the job server uses.  [ctx]'s deadline (if any) is
    checked cooperatively at every sizing pass and layout call. *)

val run_all_result :
  ?options:Layout_bridge.options ->
  ?ctx:Ctx.t ->
  ?jobs:int ->
  ?proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Comdiac.Spec.t ->
  unit -> (result list, Sim.Sim_error.t) Stdlib.result
(** {!run_all} as a [result]; the first failing case aborts the batch. *)

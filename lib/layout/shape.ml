type choice =
  | Variant of int
  | Compose of int * int

type point = { w : int; h : int; choice : choice }

type t = point array

(* Keep only Pareto-optimal points: sort by (w, h) and drop any point whose
   height is not strictly below every narrower point's height. *)
let pareto pts =
  let sorted =
    List.sort
      (fun a b -> if a.w = b.w then compare a.h b.h else compare a.w b.w)
      pts
  in
  let rec keep acc best_h = function
    | [] -> List.rev acc
    | p :: rest ->
      if p.h < best_h then keep (p :: acc) p.h rest else keep acc best_h rest
  in
  Array.of_list (keep [] max_int sorted)

let of_variants variants =
  pareto (List.mapi (fun i (w, h) -> { w; h; choice = Variant i }) variants)

(* Stockmeyer's linear merge.  Both inputs are Pareto frontiers (widths
   strictly increasing, heights strictly decreasing), so the frontier of
   the composition is a single two-pointer walk instead of the O(n * m)
   all-pairs cross product.

   For the horizontal composition (w = w1 + w2, h = max h1 h2) the walk
   starts at the narrowest pair and repeatedly advances the child whose
   current height realises the max — advancing the other child would grow
   the width without lowering the height, which is dominated.  Equal
   heights advance both: keeping either child back yields the same height
   at a larger width.  Any two distinct pairs with identical (w, h) are
   both dominated by a third pair, so the surviving points have unique
   generating pairs and the merge reproduces the all-pairs result exactly,
   choices included (the test suite checks this structurally against a
   cross-product oracle). *)
let combine_h a b =
  let n = Array.length a and m = Array.length b in
  let acc = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < n && !j < m do
    let pa = a.(!i) and pb = b.(!j) in
    acc := { w = pa.w + pb.w; h = max pa.h pb.h; choice = Compose (!i, !j) }
           :: !acc;
    if pa.h > pb.h then incr i
    else if pb.h > pa.h then incr j
    else begin
      incr i;
      incr j
    end
  done;
  Array.of_list (List.rev !acc)

(* Vertical composition is the same walk with the roles of width and
   height swapped: start from the widest (lowest) pair and retreat the
   child realising the max width. *)
let combine_v a b =
  let n = Array.length a and m = Array.length b in
  let acc = ref [] in
  let i = ref (n - 1) and j = ref (m - 1) in
  while !i >= 0 && !j >= 0 do
    let pa = a.(!i) and pb = b.(!j) in
    acc := { w = max pa.w pb.w; h = pa.h + pb.h; choice = Compose (!i, !j) }
           :: !acc;
    if pa.w > pb.w then decr i
    else if pb.w > pa.w then decr j
    else begin
      decr i;
      decr j
    end
  done;
  Array.of_list !acc

let points t = Array.to_list t

let best ?max_w ?max_h ?aspect t =
  let ok p =
    (match max_w with Some m -> p.w <= m | None -> true)
    && (match max_h with Some m -> p.h <= m | None -> true)
    &&
    match aspect with
    | None -> true
    | Some (lo, hi) ->
      let r = float_of_int p.w /. float_of_int (max 1 p.h) in
      r >= lo && r <= hi
  in
  let besti = ref None in
  Array.iteri
    (fun i p ->
      if ok p then
        match !besti with
        | None -> besti := Some i
        | Some j ->
          let area q = q.w * q.h in
          if area p < area t.(j) then besti := Some i)
    t;
  !besti

let is_pareto t =
  let n = Array.length t in
  let rec go i =
    i >= n - 1
    || (t.(i).w < t.(i + 1).w && t.(i).h > t.(i + 1).h && go (i + 1))
  in
  go 0

module L = Technology.Layer
module P = Technology.Process
module E = Technology.Electrical
module F = Device.Folding
module G = Geometry

type group =
  | Single of { spec : Motif.spec; allowed_folds : int list }
  | Matched_singles of { specs : Motif.spec list; allowed_folds : int list }
  | Matched_pair of { spec : Pair.spec; allowed_folds : int list }
  | Mirror of { spec : Stack.spec; unit_scales : int list }

let group_name = function
  | Single { spec; _ } -> spec.Motif.dev.Device.Mos.name
  | Matched_singles { specs; _ } ->
    String.concat "/"
      (List.map (fun s -> s.Motif.dev.Device.Mos.name) specs)
  | Matched_pair { spec; _ } -> spec.Pair.a_name ^ "/" ^ spec.Pair.b_name
  | Mirror { spec = s; _ } ->
    String.concat ":" (List.map (fun e -> e.Stack.el_name) s.Stack.elements)

type floorplan = group Slicing.t

type mode = Parasitic_only | Generation

type net_summary = {
  net : string;
  routing_cap : float;
  coupling : (string * float) list;
  well_cap : float;
}

let net_total s =
  s.routing_cap +. s.well_cap
  +. List.fold_left (fun acc (_, c) -> acc +. c) 0.0 s.coupling

(* One realised variant of a group: cell plus electrical annotations. *)
type variant = {
  v_cell : Cell.t;
  v_styles : (string * F.style) list;
  v_drains : (string * F.geom) list;
  v_well_net : string option;  (* net loaded by the n-well junction *)
}

let well_net_of_mtype mtype b_net =
  match mtype with E.Nmos -> None | E.Pmos -> Some b_net

let generate_variants proc group =
  match group with
  | Single { spec; allowed_folds } ->
    let folds = if allowed_folds = [] then [ 1 ] else allowed_folds in
    List.map
      (fun nf ->
        let style = { F.nf; drain_internal = true } in
        let dev = Device.Mos.with_style style spec.Motif.dev in
        let r = Motif.generate proc { spec with Motif.dev } in
        let name = dev.Device.Mos.name in
        {
          v_cell = r.Motif.cell;
          v_styles = [ (name, style) ];
          v_drains = [ (name, r.Motif.drawn_geom) ];
          v_well_net =
            well_net_of_mtype dev.Device.Mos.mtype spec.Motif.b_net;
        })
      folds
  | Matched_singles { specs; allowed_folds } ->
    let folds = if allowed_folds = [] then [ 1 ] else allowed_folds in
    let gap = 3 (* active spacing between the abutted motifs, lambda *) in
    List.map
      (fun nf ->
        let style = { F.nf; drain_internal = true } in
        let results =
          List.map
            (fun mspec ->
              let dev = Device.Mos.with_style style mspec.Motif.dev in
              (dev.Device.Mos.name,
               Motif.generate proc { mspec with Motif.dev },
               mspec))
            specs
        in
        (* abut the motif cells left to right *)
        let _, cell =
          List.fold_left
            (fun (x, acc) (_, r, _) ->
              let w, _ = Cell.size r.Motif.cell in
              (x + w + gap, Cell.translate ~dx:x ~dy:0 r.Motif.cell :: acc))
            (0, []) results
        in
        let merged = Cell.normalize (Cell.merge "matched" (List.rev cell)) in
        {
          v_cell = merged;
          v_styles = List.map (fun (name, _, _) -> (name, style)) results;
          v_drains =
            List.map (fun (name, r, _) -> (name, r.Motif.drawn_geom)) results;
          v_well_net =
            (match specs with
             | mspec :: _ ->
               well_net_of_mtype mspec.Motif.dev.Device.Mos.mtype
                 mspec.Motif.b_net
             | [] -> None);
        })
      folds
  | Matched_pair { spec; allowed_folds } ->
    let folds = if allowed_folds = [] then [ spec.Pair.nf ] else allowed_folds in
    let folds =
      match spec.Pair.style with
      | Pair.Common_centroid -> List.filter (fun nf -> nf mod 2 = 0) folds
      | Pair.Interdigitated -> folds
    in
    let folds = if folds = [] then [ 2 ] else folds in
    List.map
      (fun nf ->
        let spec = { spec with Pair.nf } in
        let r = Pair.generate proc spec in
        let style = { F.nf; drain_internal = true } in
        {
          v_cell = r.Pair.cell;
          v_styles = [ (spec.Pair.a_name, style); (spec.Pair.b_name, style) ];
          v_drains =
            [ (spec.Pair.a_name, r.Pair.geom_a); (spec.Pair.b_name, r.Pair.geom_b) ];
          v_well_net = well_net_of_mtype spec.Pair.mtype spec.Pair.bulk_net;
        })
      folds
  | Mirror { spec; unit_scales } ->
    let scales = if unit_scales = [] then [ 1 ] else unit_scales in
    let realise spec =
      let r = Stack.generate proc spec in
      let total_units =
        List.fold_left (fun acc e -> acc + e.Stack.units) 0 spec.Stack.elements
      in
      let source = r.Stack.source_diffusion in
      let geom_of e =
        let d =
          try List.assoc e.Stack.el_name r.Stack.drain_diffusion
          with Not_found -> { Stack.area = 0.0; perim = 0.0 }
        in
        let share =
          float_of_int e.Stack.units /. float_of_int (max 1 total_units)
        in
        {
          F.ad = d.Stack.area;
          as_ = source.Stack.area *. share;
          pd = d.Stack.perim;
          ps = source.Stack.perim *. share;
          finger_w = spec.Stack.unit_w;
          drain_strips = max 1 (e.Stack.units / 2);
          source_strips = (e.Stack.units / 2) + 1;
        }
      in
      {
        v_cell = r.Stack.cell;
        v_styles =
          List.map
            (fun e ->
              (e.Stack.el_name, { F.nf = e.Stack.units; drain_internal = false }))
            spec.Stack.elements;
        v_drains =
          List.map (fun e -> (e.Stack.el_name, geom_of e)) spec.Stack.elements;
        v_well_net = well_net_of_mtype spec.Stack.mtype spec.Stack.bulk_net;
      }
    in
    let scaled k =
      {
        spec with
        Stack.elements =
          List.map
            (fun e -> { e with Stack.units = e.Stack.units * k })
            spec.Stack.elements;
        unit_w = spec.Stack.unit_w /. float_of_int k;
      }
    in
    List.map (fun k -> realise (scaled k)) scales

(* The shape-curve source: all realised variants of a device group are a
   pure function of (process, group) — the group already pins the device
   cards, matching style and candidate fold counts — so the per-fold
   Motif/Pair/Stack generation is memoized.  Repeated area optimisations
   over the same floorplan (every Monte Carlo sample, every corner) then
   reduce to Pareto merges of cached curves. *)
let variants_memo : (P.t * group, variant list) Cache.Memo.t =
  Cache.Memo.create ~name:"cairo.variants" ~shards:8 ~capacity:4096 ()

let variants_of_group proc group =
  Cache.Memo.find_or_compute variants_memo (proc, group) (fun () ->
    generate_variants proc group)

type report = {
  device_styles : (string * F.style) list;
  device_drains : (string * F.geom) list;
  nets : net_summary list;
  total_w : int;
  total_h : int;
  cell : Cell.t option;
  group_cells : (string * Cell.t) list;
}

let well_cap proc cell =
  let area_lambda2 = Cell.layer_area cell L.Nwell in
  if area_lambda2 = 0 then 0.0
  else begin
    let lam = proc.P.lambda in
    let area = float_of_int area_lambda2 *. lam *. lam in
    (* perimeter approximation: the wells drawn by the generators are
       rectangles; sum their perimeters *)
    let perim =
      List.fold_left
        (fun acc r ->
          if r.G.layer = L.Nwell then
            acc + (2 * (G.width r + G.height r))
          else acc)
        0 cell.Cell.rects
    in
    (proc.P.electrical.E.nwell_cap_area *. area)
    +. (proc.P.electrical.E.nwell_cap_perim *. float_of_int perim *. lam)
  end

let run ?max_w ?max_h ?aspect ~mode ~nets proc floorplan =
  Obs.Trace.with_span ~cat:"cairo"
    ~args:
      [ ("mode",
         Obs.Trace.Str
           (match mode with
            | Parasitic_only -> "parasitic_only"
            | Generation -> "generation")) ]
    "cairo.plan.run"
  @@ fun () ->
  if (Obs.Config.enabled ()) then begin
    Obs.Metrics.incr "cairo.plan.calls";
    Obs.Metrics.incr
      (match mode with
       | Parasitic_only -> "cairo.plan.parasitic_calls"
       | Generation -> "cairo.plan.generation_calls")
  end;
  (* annotate leaves with eagerly generated variants *)
  let rec to_variant_tree = function
    | Slicing.Leaf (g, _) ->
      let vs = variants_of_group proc g in
      assert (vs <> []);
      if (Obs.Config.enabled ()) then
        Obs.Metrics.add "cairo.plan.variants_generated"
          (float_of_int (List.length vs));
      let boxes = List.map (fun v -> Cell.size v.v_cell) vs in
      Slicing.Leaf ((g, Array.of_list vs), boxes)
    | Slicing.H (a, b) -> Slicing.H (to_variant_tree a, to_variant_tree b)
    | Slicing.V (a, b) -> Slicing.V (to_variant_tree a, to_variant_tree b)
  in
  let vtree = to_variant_tree floorplan in
  match Slicing.optimize ?max_w ?max_h ?aspect vtree with
  | None -> failwith "Plan.run: no floorplan satisfies the shape constraint"
  | Some (placements, (w, h)) ->
    let chosen =
      List.map
        (fun p ->
          let g, vs = p.Slicing.payload in
          (g, vs.(p.Slicing.variant), p))
        placements
    in
    let device_styles = List.concat_map (fun (_, v, _) -> v.v_styles) chosen in
    let device_drains = List.concat_map (fun (_, v, _) -> v.v_drains) chosen in
    let placed_cells =
      List.map
        (fun (g, v, p) ->
          ( group_name g,
            Cell.translate ~dx:p.Slicing.x ~dy:p.Slicing.y v.v_cell ))
        chosen
    in
    let placed = Cell.merge "floorplan" (List.map snd placed_cells) in
    let routing = Route.route proc ~placed ~nets in
    (* per-net summaries: routing + coupling + well junctions *)
    let well_caps =
      List.filter_map
        (fun (g, v, _) ->
          match v.v_well_net with
          | None -> None
          | Some net -> Some (net, well_cap proc v.v_cell, group_name g))
        chosen
    in
    let net_names =
      List.sort_uniq compare
        (List.map (fun (r : Route.net_request) -> r.Route.net) nets
         @ List.map (fun (n, _, _) -> n) well_caps)
    in
    let summaries =
      List.map
        (fun net ->
          let wire =
            List.find_opt (fun (w : Route.net_wire) -> w.Route.net = net)
              routing.Route.wires
          in
          let routing_cap, coupling =
            match wire with
            | Some w -> (w.Route.cap_ground, w.Route.coupling)
            | None -> (0.0, [])
          in
          let well =
            List.fold_left
              (fun acc (n, c, _) -> if n = net then acc +. c else acc)
              0.0 well_caps
          in
          { net; routing_cap; coupling; well_cap = well })
        net_names
    in
    let total_h = h + routing.Route.channel_height + proc.P.rules.Technology.Rules.metal2_space in
    if (Obs.Config.enabled ()) then begin
      Obs.Trace.add_arg "total_w" (Obs.Trace.Int w);
      Obs.Trace.add_arg "total_h" (Obs.Trace.Int total_h);
      Obs.Metrics.set "cairo.plan.last_area_lambda2"
        (float_of_int (w * total_h))
    end;
    let cell =
      match mode with
      | Parasitic_only -> None
      | Generation ->
        Some
          (Cell.normalize
             (Cell.merge "layout" [ placed; routing.Route.cell ]))
    in
    {
      device_styles;
      device_drains;
      nets = summaries;
      total_w = w;
      total_h;
      cell;
      group_cells = placed_cells;
    }

let find_net report net = List.find_opt (fun s -> s.net = net) report.nets

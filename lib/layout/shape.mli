(** Shape functions for slicing-structure area optimisation (Stockmeyer).
    A shape function is the Pareto frontier of realisable (width, height)
    boxes of a module; composing two modules horizontally or vertically
    merges the frontiers.  Each point remembers how it was obtained so the
    chosen floorplan can be realised top-down. *)

type choice =
  | Variant of int            (** leaf: index into the variant list *)
  | Compose of int * int      (** indices into the two children's points *)

type point = { w : int; h : int; choice : choice }

type t = point array
(** Sorted by increasing width, strictly decreasing height (Pareto). *)

val of_variants : (int * int) list -> t
(** Leaf shape function from realisable (w, h) variants; dominated
    variants are pruned but their indices are preserved in [choice]. *)

val combine_h : t -> t -> t
(** Side-by-side: w = w1 + w2, h = max h1 h2.  Linear-time Stockmeyer
    merge of the two frontiers (equivalent to the all-pairs cross product
    followed by Pareto pruning, choices included). *)

val combine_v : t -> t -> t
(** Stacked: w = max w1 w2, h = h1 + h2.  Same merge with the roles of
    width and height swapped. *)

val points : t -> point list

val best :
  ?max_w:int -> ?max_h:int -> ?aspect:float * float -> t -> int option
(** Index of the minimum-area point satisfying all given constraints
    ([aspect] is a (min, max) range on w/h).  [None] when no point
    fits. *)

val is_pareto : t -> bool
(** For tests: widths strictly increase and heights strictly decrease. *)

type 'a t =
  | Leaf of 'a * (int * int) list
  | H of 'a t * 'a t
  | V of 'a t * 'a t

type 'a placement = {
  payload : 'a;
  variant : int;
  x : int;
  y : int;
  w : int;
  h : int;
}

(* Annotated tree caching each node's shape function so realisation can
   walk back down. *)
type 'a ann =
  | ALeaf of 'a * Shape.t
  | AH of 'a ann * 'a ann * Shape.t
  | AV of 'a ann * 'a ann * Shape.t

let shape_of = function
  | ALeaf (_, s) | AH (_, _, s) | AV (_, _, s) -> s

let rec annotate = function
  | Leaf (p, variants) ->
    assert (variants <> []);
    ALeaf (p, Shape.of_variants variants)
  | H (a, b) ->
    let aa = annotate a and ab = annotate b in
    AH (aa, ab, Shape.combine_h (shape_of aa) (shape_of ab))
  | V (a, b) ->
    let aa = annotate a and ab = annotate b in
    AV (aa, ab, Shape.combine_v (shape_of aa) (shape_of ab))

let shape_function t = shape_of (annotate t)

(* Realise point [i] of the annotated node at (x, y), accumulating leaf
   placements.  Children are aligned to the bottom-left of their slice. *)
let rec realize node i ~x ~y acc =
  let s = shape_of node in
  let pt = s.(i) in
  match (node, pt.Shape.choice) with
  | ALeaf (payload, _), Shape.Variant v ->
    { payload; variant = v; x; y; w = pt.Shape.w; h = pt.Shape.h } :: acc
  | AH (a, b, _), Shape.Compose (ia, ib) ->
    let wa = (shape_of a).(ia).Shape.w in
    let acc = realize a ia ~x ~y acc in
    realize b ib ~x:(x + wa) ~y acc
  | AV (a, b, _), Shape.Compose (ia, ib) ->
    let ha = (shape_of a).(ia).Shape.h in
    let acc = realize a ia ~x ~y acc in
    realize b ib ~x ~y:(y + ha) acc
  | ALeaf _, Shape.Compose _ | (AH _ | AV _), Shape.Variant _ ->
    assert false

(* telemetry: tree nodes and the size of every cached shape function *)
let rec count_ann = function
  | ALeaf (_, s) -> (1, Array.length s)
  | AH (a, b, s) | AV (a, b, s) ->
    let na, pa = count_ann a and nb, pb = count_ann b in
    (1 + na + nb, Array.length s + pa + pb)

let optimize ?max_w ?max_h ?aspect t =
  Obs.Trace.with_span ~cat:"cairo" "slicing.optimize" @@ fun () ->
  let ann = annotate t in
  let s = shape_of ann in
  if (Obs.Config.enabled ()) then begin
    let nodes, points = count_ann ann in
    Obs.Metrics.incr "cairo.slicing.optimizations";
    Obs.Metrics.add "cairo.slicing.tree_nodes" (float_of_int nodes);
    Obs.Metrics.add "cairo.slicing.shape_points" (float_of_int points);
    Obs.Trace.add_arg "tree_nodes" (Obs.Trace.Int nodes);
    Obs.Trace.add_arg "shape_points" (Obs.Trace.Int points);
    Obs.Trace.add_arg "root_points" (Obs.Trace.Int (Array.length s))
  end;
  match Shape.best ?max_w ?max_h ?aspect s with
  | None -> None
  | Some i ->
    let pt = s.(i) in
    let placements = List.rev (realize ann i ~x:0 ~y:0 []) in
    if (Obs.Config.enabled ()) then begin
      let aspect_ratio =
        float_of_int pt.Shape.w /. float_of_int (max 1 pt.Shape.h)
      in
      Obs.Metrics.set "cairo.slicing.chosen_aspect" aspect_ratio;
      Obs.Trace.add_arg "w" (Obs.Trace.Int pt.Shape.w);
      Obs.Trace.add_arg "h" (Obs.Trace.Int pt.Shape.h);
      Obs.Trace.add_arg "aspect" (Obs.Trace.Float aspect_ratio)
    end;
    Some (placements, (pt.Shape.w, pt.Shape.h))

(* accumulator-passing traversal: linear in the number of nodes, where
   repeated [leaves a @ leaves b] was quadratic on left-deep trees *)
let leaves t =
  let rec go t acc =
    match t with
    | Leaf (p, _) -> p :: acc
    | H (a, b) | V (a, b) -> go a (go b acc)
  in
  go t []

let enumerate_area_brute_force t =
  (* Returns min area over all combinations by enumerating full (w, h)
     sets per node. *)
  let rec boxes = function
    | Leaf (_, variants) -> variants
    | H (a, b) ->
      List.concat_map
        (fun (wa, ha) ->
          List.map (fun (wb, hb) -> (wa + wb, max ha hb)) (boxes b))
        (boxes a)
    | V (a, b) ->
      List.concat_map
        (fun (wa, ha) ->
          List.map (fun (wb, hb) -> (max wa wb, ha + hb)) (boxes b))
        (boxes a)
  in
  List.fold_left (fun acc (w, h) -> min acc (w * h)) max_int (boxes t)

module El = Netlist.Element
module E = Technology.Electrical
module P = Technology.Process
module M = Device.Model
module F = Device.Folding

type design = {
  amp : Amp.t;
  i1 : float;
  i2 : float;
  veff_in : float;
  veff_tail : float;
  veff_nsink : float;
  veff_ncasc : float;
  veff_psrc : float;
  veff_pcasc : float;
  l_casc : float;
  predicted_gbw : float;
  predicted_pm : float;
  predicted_gain_db : float;
  iterations : int;
}

let device_names =
  [ "P1"; "P2"; "TAIL"; "P3"; "P4"; "P3C"; "P4C"; "N1C"; "N2C"; "N5"; "N6" ]

let net_of_drain = function
  | "P1" -> "n1"
  | "P2" -> "n2"
  | "TAIL" -> "tail"
  | "P3" -> "n4l"
  | "P4" -> "n4r"
  | "P3C" -> "n3"
  | "P4C" -> "out"
  | "N1C" -> "n3"
  | "N2C" -> "out"
  | "N5" -> "n1"
  | "N6" -> "n2"
  | name -> invalid_arg ("Folded_cascode.net_of_drain: " ^ name)

(* Zero diffusion: lets the "no layout capacitances" view (case 1) simulate
   with junction capacitances suppressed while gate capacitances remain. *)
let zero_geom w =
  { F.ad = 0.0; as_ = 0.0; pd = 0.0; ps = 0.0;
    finger_w = w; drain_strips = 1; source_strips = 1 }

(* Saturation margin added on top of Veff when placing internal nodes. *)
let sat_margin = 0.12

type sizes = {
  w_in : float;
  w_tail : float;
  w_nsink : float;
  w_ncasc : float;
  w_psrc : float;
  w_pcasc : float;
  l_in : float;
  l_tail : float;
  l_nsink : float;
  l_psrc : float;
  l_cascode : float;
}

let rad_to_deg = 180.0 /. Float.pi

type knobs = {
  veff_in : float option;
  veff_tail : float option;
  veff_nsink : float option;
  veff_psrc : float option;
  i2_ratio : float option;
  l_mult : float option;
}

let no_knobs =
  { veff_in = None; veff_tail = None; veff_nsink = None; veff_psrc = None;
    i2_ratio = None; l_mult = None }

type dev_eval = Exact_model | Lut_model

let size_with ?(knobs = no_knobs) ?(dev_eval = Exact_model) ~proc ~kind ~spec
    ~parasitics () =
  Obs.Trace.with_span ~cat:"comdiac" "comdiac.size.folded_cascode" @@ fun () ->
  (match Spec.validate spec with
   | Ok () -> ()
   | Error msg -> failwith ("Folded_cascode.size: " ^ msg));
  let nmos = proc.P.electrical.E.nmos and pmos = proc.P.electrical.E.pmos in
  let vdd = spec.Spec.vdd in
  let out_lo, out_hi = spec.Spec.output_range in
  let _, icm_hi = spec.Spec.icmr in
  let vcm = Spec.input_common_mode spec in
  let out_q = Spec.output_quiescent spec in
  let knob k plan = match k with Some v -> v | None -> plan in
  (* 1. fix the operating point: effective gate voltages from the range
     constraints (two stacked devices must fit inside each margin); a
     knob overrides the plan's own choice — the optimizer's search
     variables enter exactly here, everything downstream follows *)
  let veff_nsink = knob knobs.veff_nsink (Float.max 0.12 (0.85 *. out_lo /. 2.0)) in
  let veff_ncasc = veff_nsink in
  let veff_psrc =
    knob knobs.veff_psrc (Float.max 0.15 (0.85 *. (vdd -. out_hi) /. 2.0))
  in
  let veff_pcasc = veff_psrc in
  (* input pair: the high end of the ICM range must leave room for
     vgs_in + veff_tail below the supply *)
  let headroom = vdd -. icm_hi -. pmos.E.vto in
  if headroom < 0.2 then
    failwith "Folded_cascode.size: input common-mode range too high for supply";
  let veff_in = knob knobs.veff_in (Float.min 0.20 (0.35 *. headroom)) in
  let veff_tail =
    knob knobs.veff_tail (Float.min 0.35 (0.55 *. (headroom -. veff_in)))
  in
  let lmin = P.lmin proc in
  (* multiplying by the default 1.0 is bit-exact, so the no-knobs path
     reproduces the original plan identically *)
  let l_scale = knob knobs.l_mult 1.0 in
  let l_in = 2.0 *. lmin *. l_scale in
  let l_tail = 2.0 *. lmin *. l_scale in
  let l_nsink = 2.0 *. lmin *. l_scale in
  let l_psrc = 2.0 *. lmin *. l_scale in
  (* intended node voltages *)
  let v_n1 = veff_nsink +. sat_margin in
  let v_n4 = vdd -. (veff_psrc +. sat_margin) in
  (* device construction helper: applies the parasitic view *)
  let mk name mtype w l =
    let dev = Device.Mos.make ~name ~mtype ~w ~l () in
    let dev = Parasitics.apply_to_device parasitics dev in
    match parasitics.Parasitics.diffusion with
    | Parasitics.No_diffusion ->
      { dev with Device.Mos.diffusion = Some (zero_geom w) }
    | Parasitics.Assume_single_fold | Parasitics.Layout_exact -> dev
  in
  (* width for a drain current at a chosen overdrive *)
  let width_for mtype ~l ~veff ~ids ~vds ~vbs =
    let p = match mtype with E.Nmos -> nmos | E.Pmos -> pmos in
    let vth = M.threshold kind p ~l ~vbs in
    let bias = { M.vgs = vth +. veff; vds; vbs } in
    match dev_eval with
    | Exact_model -> M.w_for_current kind p ~l ~ids bias
    | Lut_model ->
      (* invert the interpolant, not the exact model: the LUT plan must
         be internally consistent or the fixed point amplifies the grid
         error into feasibility flips *)
      Device.Lut.w_for_current proc kind ~mtype ~l ~ids bias
  in
  let op_of dev ~ids:_ ~vgs ~vds ~vbs =
    match dev_eval with
    | Exact_model -> Device.Op.compute proc kind dev { M.vgs; vds; vbs }
    | Lut_model -> Device.Op.compute_lut proc kind dev { M.vgs; vds; vbs }
  in
  (* one full evaluation of the design plan at a given cascode length,
     branch-current ratio and assumed output parasitic capacitance *)
  let cload = spec.Spec.cload in
  let evaluate_plan ~cout_par ~l_casc ~i2_ratio =
    (* one width/length evaluation pass over every device of the plan *)
    if (Obs.Config.enabled ()) then Obs.Metrics.incr "comdiac.fc.plan_evals";
    let gm1 = 2.0 *. Float.pi *. spec.Spec.gbw *. (cload +. cout_par) in
    (* input-pair width directly from the required gm using the actual
       model (the square-law gm = 2 Id / Veff heuristic under-sizes once
       mobility degradation bites); both gm and Id scale linearly in W *)
    let vds_in = vcm +. pmos.E.vto +. veff_in -. v_n1 in
    let w_unit = 1e-6 in
    let eval_in =
      let bias = { M.vgs = pmos.E.vto +. veff_in; vds = vds_in; vbs = 0.0 } in
      match dev_eval with
      | Exact_model -> M.evaluate kind pmos ~w:w_unit ~l:l_in bias
      | Lut_model ->
        Device.Lut.eval proc kind
          (Device.Mos.make ~name:"P1" ~mtype:E.Pmos ~w:w_unit ~l:l_in ())
          bias
    in
    let w_in = gm1 /. eval_in.M.gm *. w_unit in
    let i1 = eval_in.M.ids *. (w_in /. w_unit) in
    let i2 = i2_ratio *. i1 in
    let isink = i1 +. i2 in
    let w_tail =
      width_for E.Pmos ~l:l_tail ~veff:veff_tail ~ids:(2.0 *. i1)
        ~vds:(vdd -. (vcm +. pmos.E.vto +. veff_in)) ~vbs:0.0
    in
    let w_nsink =
      width_for E.Nmos ~l:l_nsink ~veff:veff_nsink ~ids:isink ~vds:v_n1
        ~vbs:0.0
    in
    let w_ncasc =
      width_for E.Nmos ~l:l_casc ~veff:veff_ncasc ~ids:i2
        ~vds:(out_q -. v_n1) ~vbs:(-.v_n1)
    in
    let w_psrc =
      width_for E.Pmos ~l:l_psrc ~veff:veff_psrc ~ids:i2 ~vds:(vdd -. v_n4)
        ~vbs:0.0
    in
    let w_pcasc =
      width_for E.Pmos ~l:l_casc ~veff:veff_pcasc ~ids:i2 ~vds:(v_n4 -. out_q)
        ~vbs:(-.(vdd -. v_n4))
    in
    let sizes =
      { w_in; w_tail; w_nsink; w_ncasc; w_psrc; w_pcasc;
        l_in; l_tail; l_nsink; l_psrc; l_cascode = l_casc }
    in
    (* operating points at intended biases for capacitance accounting *)
    let dev_in = mk "P1" E.Pmos w_in l_in in
    let dev_sink = mk "N5" E.Nmos w_nsink l_nsink in
    let dev_ncasc = mk "N2C" E.Nmos w_ncasc l_casc in
    let dev_ncasc_l = mk "N1C" E.Nmos w_ncasc l_casc in
    let dev_psrc = mk "P3" E.Pmos w_psrc l_psrc in
    let dev_pcasc = mk "P4C" E.Pmos w_pcasc l_casc in
    let op_in =
      op_of dev_in ~ids:i1
        ~vgs:(pmos.E.vto +. veff_in)
        ~vds:vds_in ~vbs:0.0
    in
    let op_sink =
      op_of dev_sink ~ids:isink ~vgs:(nmos.E.vto +. veff_nsink) ~vds:v_n1
        ~vbs:0.0
    in
    let vth_nc = M.threshold kind nmos ~l:l_casc ~vbs:(-.v_n1) in
    let op_ncasc =
      op_of dev_ncasc ~ids:i2 ~vgs:(vth_nc +. veff_ncasc)
        ~vds:(out_q -. v_n1) ~vbs:(-.v_n1)
    in
    let op_ncasc_l =
      op_of dev_ncasc_l ~ids:i2 ~vgs:(vth_nc +. veff_ncasc)
        ~vds:(0.8 *. (vdd -. v_n1)) ~vbs:(-.v_n1)
    in
    let op_psrc =
      op_of dev_psrc ~ids:i2 ~vgs:(pmos.E.vto +. veff_psrc) ~vds:(vdd -. v_n4)
        ~vbs:0.0
    in
    let vth_pc = M.threshold kind pmos ~l:l_casc ~vbs:(-.(vdd -. v_n4)) in
    let op_pcasc =
      op_of dev_pcasc ~ids:i2 ~vgs:(vth_pc +. veff_pcasc)
        ~vds:(v_n4 -. out_q) ~vbs:(-.(vdd -. v_n4))
    in
    let caps (op : Device.Op.t) = op.Device.Op.caps in
    let node_cap net = Parasitics.node_cap parasitics net in
    (* output node: cascode drains plus their gate-drain overlaps (gates
       are at AC ground) plus routing *)
    let c_out =
      (caps op_ncasc).Device.Caps.cdb +. (caps op_ncasc).Device.Caps.cgd
      +. (caps op_pcasc).Device.Caps.cdb +. (caps op_pcasc).Device.Caps.cgd
      +. node_cap "out"
    in
    (* folding node: input-pair drain, sink drain, cascode source side *)
    let c_n1 =
      (caps op_in).Device.Caps.cdb +. (caps op_in).Device.Caps.cgd
      +. (caps op_sink).Device.Caps.cdb +. (caps op_sink).Device.Caps.cgd
      +. (caps op_ncasc).Device.Caps.csb +. (caps op_ncasc).Device.Caps.cgs
      +. node_cap "n1"
    in
    (* mirror node: left cascode drains plus both mirror gates *)
    let c_n3 =
      (caps op_ncasc_l).Device.Caps.cdb +. (caps op_ncasc_l).Device.Caps.cgd
      +. (caps op_pcasc).Device.Caps.cdb
      +. (2.0 *. Device.Caps.total_gate (caps op_psrc))
      +. node_cap "n3"
    in
    let gm_nc = op_ncasc.Device.Op.eval.M.gm in
    let fu = gm1 /. (2.0 *. Float.pi *. (cload +. c_out)) in
    let p2 = gm_nc /. (2.0 *. Float.pi *. c_n1) in
    let p3 = op_pcasc.Device.Op.eval.M.gm /. (2.0 *. Float.pi *. c_n3) in
    (* the mirror pole comes with a left-half-plane zero at twice its
       frequency (current doubling through the mirror), which returns part
       of the phase *)
    let pm =
      90.0
      -. (atan (fu /. p2) *. rad_to_deg)
      -. (atan (fu /. p3) *. rad_to_deg)
      +. (atan (fu /. (2.0 *. p3)) *. rad_to_deg)
    in
    let gain =
      let ro_n = 1.0 /. op_ncasc.Device.Op.eval.M.gds in
      let ro_sink = 1.0 /. op_sink.Device.Op.eval.M.gds in
      let ro_in = 1.0 /. op_in.Device.Op.eval.M.gds in
      let ro_p = 1.0 /. op_pcasc.Device.Op.eval.M.gds in
      let ro_src = 1.0 /. op_psrc.Device.Op.eval.M.gds in
      let r_bottom = ro_sink *. ro_in /. (ro_sink +. ro_in) in
      let r_down = gm_nc *. ro_n *. r_bottom in
      let r_up = op_pcasc.Device.Op.eval.M.gm *. ro_p *. ro_src in
      gm1 *. (r_down *. r_up /. (r_down +. r_up))
    in
    (sizes, i1, i2, fu, pm, 20.0 *. log10 gain, gm1, c_out)
  in
  (* the PM knob, per the paper: iterate on the cascode length.  Each outer
     pass picks the LONGEST length on the ladder that still meets the
     phase-margin target (longest = least power and area, most gain); when
     even the minimum length falls short, the cascode branch current is
     raised instead.  The outer loop is a damped fixed point on the output
     parasitic capacitance. *)
  let lmin_l = lmin in
  let ladder =
    List.map (fun k -> k *. lmin_l) [ 4.0; 3.2; 2.6; 2.0; 1.6; 1.3; 1.0 ]
  in
  let pm_slack = 1.0 in
  let rec outer ~cout_par ~i2_ratio ~iter =
    if iter > 40 then failwith "Folded_cascode.size: sizing did not converge"
    else begin
      let rec pick = function
        | [] -> None
        | l :: rest ->
          let (_, _, _, _, pm, _, _, _) as ev =
            evaluate_plan ~cout_par ~l_casc:l ~i2_ratio
          in
          if pm >= spec.Spec.phase_margin +. pm_slack then Some (l, ev)
          else pick rest
      in
      match pick ladder with
      | None ->
        (* even the shortest cascode falls short: more branch current *)
        outer ~cout_par ~i2_ratio:(i2_ratio *. 1.12) ~iter:(iter + 1)
      | Some (l_casc, (sizes, i1, i2, fu, pm, gain_db, gm1, c_out)) ->
        let converged =
          Float.abs (c_out -. cout_par) <= 0.005 *. (cload +. c_out)
        in
        if converged then
          (sizes, i1, i2, fu, pm, gain_db, gm1, c_out, iter, l_casc)
        else
          outer
            ~cout_par:((0.5 *. cout_par) +. (0.5 *. c_out))
            ~i2_ratio ~iter:(iter + 1)
    end
  in
  let sizes, i1, i2, fu, pm, gain_db, gm1, _c_out, iters, _l =
    outer ~cout_par:0.0 ~i2_ratio:(knob knobs.i2_ratio 1.2) ~iter:0
  in
  if (Obs.Config.enabled ()) then begin
    Obs.Metrics.incr "comdiac.fc.sizings";
    Obs.Metrics.add "comdiac.fc.outer_iters" (float_of_int iters);
    Obs.Trace.add_arg "outer_iters" (Obs.Trace.Int iters);
    Obs.Trace.add_arg "predicted_gbw" (Obs.Trace.Float fu);
    Obs.Trace.add_arg "predicted_pm" (Obs.Trace.Float pm)
  end;
  let isink = i1 +. i2 in
  (* bias voltages by model inversion on the final sizes *)
  let vgs_of mtype ~w ~l ~ids ~vds ~vbs =
    match dev_eval with
    | Exact_model ->
      let p = match mtype with E.Nmos -> nmos | E.Pmos -> pmos in
      M.vgs_for_current kind p ~w ~l ~ids ~vds ~vbs
    | Lut_model -> Device.Lut.vgs_for_current proc kind ~mtype ~w ~l ~ids ~vds ~vbs
  in
  let vgs_in =
    vgs_of E.Pmos ~w:sizes.w_in ~l:sizes.l_in ~ids:i1
      ~vds:(vcm +. pmos.E.vto +. veff_in -. v_n1) ~vbs:0.0
  in
  let v_tail = vcm +. vgs_in in
  let vp2 = vgs_of E.Nmos ~w:sizes.w_nsink ~l:sizes.l_nsink ~ids:isink ~vds:v_n1 ~vbs:0.0 in
  let vc1 =
    v_n1
    +. vgs_of E.Nmos ~w:sizes.w_ncasc ~l:sizes.l_cascode ~ids:i2
         ~vds:(out_q -. v_n1) ~vbs:(-.v_n1)
  in
  let vp1 =
    vdd
    -. vgs_of E.Pmos ~w:sizes.w_tail ~l:sizes.l_tail ~ids:(2.0 *. i1)
         ~vds:(vdd -. v_tail) ~vbs:0.0
  in
  let vc3 =
    v_n4
    -. vgs_of E.Pmos ~w:sizes.w_pcasc ~l:sizes.l_cascode ~ids:i2
         ~vds:(v_n4 -. out_q) ~vbs:(-.(vdd -. v_n4))
  in
  let v_n3 =
    vdd -. vgs_of E.Pmos ~w:sizes.w_psrc ~l:sizes.l_psrc ~ids:i2
            ~vds:(vdd -. v_n4) ~vbs:0.0
  in
  (* the netlist: canonical nets, bulk of the input pair in its own well
     tied to the tail (the floating-well capacitance the layout tool
     reports loads the tail net) *)
  let mos name mtype w l ~d ~g ~s ~b =
    El.Mos { dev = mk name mtype w l; d; g; s; b }
  in
  let devices =
    [
      mos "P1" E.Pmos sizes.w_in sizes.l_in ~d:"n1" ~g:"inp" ~s:"tail" ~b:"tail";
      mos "P2" E.Pmos sizes.w_in sizes.l_in ~d:"n2" ~g:"inn" ~s:"tail" ~b:"tail";
      mos "TAIL" E.Pmos sizes.w_tail sizes.l_tail ~d:"tail" ~g:"vp1" ~s:"vdd" ~b:"vdd";
      mos "N5" E.Nmos sizes.w_nsink sizes.l_nsink ~d:"n1" ~g:"vp2" ~s:"0" ~b:"0";
      mos "N6" E.Nmos sizes.w_nsink sizes.l_nsink ~d:"n2" ~g:"vp2" ~s:"0" ~b:"0";
      mos "N1C" E.Nmos sizes.w_ncasc sizes.l_cascode ~d:"n3" ~g:"vc1" ~s:"n1" ~b:"0";
      mos "N2C" E.Nmos sizes.w_ncasc sizes.l_cascode ~d:"out" ~g:"vc1" ~s:"n2" ~b:"0";
      mos "P3" E.Pmos sizes.w_psrc sizes.l_psrc ~d:"n4l" ~g:"n3" ~s:"vdd" ~b:"vdd";
      mos "P4" E.Pmos sizes.w_psrc sizes.l_psrc ~d:"n4r" ~g:"n3" ~s:"vdd" ~b:"vdd";
      mos "P3C" E.Pmos sizes.w_pcasc sizes.l_cascode ~d:"n3" ~g:"vc3" ~s:"n4l" ~b:"vdd";
      mos "P4C" E.Pmos sizes.w_pcasc sizes.l_cascode ~d:"out" ~g:"vc3" ~s:"n4r" ~b:"vdd";
    ]
  in
  let bias_sources = [ ("vp1", vp1); ("vp2", vp2); ("vc1", vc1); ("vc3", vc3) ] in
  let node_caps =
    List.filter
      (fun (_, c) -> c > 0.0)
      (List.map
         (fun net -> (net, Parasitics.node_cap parasitics net))
         [ "n1"; "n2"; "n3"; "n4l"; "n4r"; "out"; "tail"; "inp"; "inn" ])
  in
  let guess =
    [
      ("tail", v_tail); ("n1", v_n1); ("n2", v_n1); ("n3", v_n3);
      ("n4l", v_n4); ("n4r", v_n4); ("out", out_q);
      ("inp", vcm); ("inn", vcm); ("vdd", vdd);
      ("vp1", vp1); ("vp2", vp2); ("vc1", vc1); ("vc3", vc3);
    ]
  in
  let amp =
    {
      Amp.topology = "folded-cascode OTA";
      devices;
      bias_sources;
      node_caps;
      guess;
      quiescent_out = out_q;
      tail_current = 2.0 *. i1;
      supply_current = (2.0 *. i1) +. (2.0 *. i2);
      gm1;
      internal_nets = [ "tail"; "n1"; "n2"; "n3"; "n4l"; "n4r" ];
    }
  in
  {
    amp;
    i1;
    i2;
    veff_in;
    veff_tail;
    veff_nsink;
    veff_ncasc;
    veff_psrc;
    veff_pcasc;
    l_casc = sizes.l_cascode;
    predicted_gbw = fu;
    predicted_pm = pm;
    predicted_gain_db = gain_db;
    iterations = iters;
  }

let size ~proc ~kind ~spec ~parasitics =
  size_with ~proc ~kind ~spec ~parasitics ()

let drain_currents design =
  let i1 = design.i1 and i2 = design.i2 in
  [
    ("P1", i1); ("P2", i1); ("TAIL", 2.0 *. i1);
    ("P3", i2); ("P4", i2); ("P3C", i2); ("P4C", i2);
    ("N1C", i2); ("N2C", i2); ("N5", i1 +. i2); ("N6", i1 +. i2);
  ]

let pp_design fmt d =
  let si = Phys.Units.to_si_string in
  Format.fprintf fmt
    "@[<v>folded cascode design (%d sizing iterations):@,\
     \  I1 = %s  I2 = %s@,\
     \  veff: in=%.2f tail=%.2f nsink=%.2f ncasc=%.2f psrc=%.2f pcasc=%.2f@,\
     \  cascode L = %s@,\
     \  predicted: GBW = %s  PM = %.1f deg  gain = %.1f dB@,%a@]"
    d.iterations (si "A" d.i1) (si "A" d.i2) d.veff_in d.veff_tail d.veff_nsink
    d.veff_ncasc d.veff_psrc d.veff_pcasc
    (si "m" d.l_casc) (si "Hz" d.predicted_gbw) d.predicted_pm
    d.predicted_gain_db Amp.pp_sizes d.amp

let rebias ~proc ~kind ~spec design =
  let nmos = proc.P.electrical.E.nmos and pmos = proc.P.electrical.E.pmos in
  let vdd = spec.Spec.vdd in
  let out_q = Spec.output_quiescent spec in
  let amp = design.amp in
  let size name =
    let d = Amp.find_device amp name in
    (d.Device.Mos.w, d.Device.Mos.l)
  in
  let i1 = design.i1 and i2 = design.i2 in
  let isink = i1 +. i2 in
  let v_n1 = design.veff_nsink +. sat_margin in
  let v_n4 = vdd -. (design.veff_psrc +. sat_margin) in
  let vgs_of mtype ~w ~l ~ids ~vds ~vbs =
    let p = match mtype with E.Nmos -> nmos | E.Pmos -> pmos in
    M.vgs_for_current kind p ~w ~l ~ids ~vds ~vbs
  in
  let w5, l5 = size "N5" in
  let vp2 = vgs_of E.Nmos ~w:w5 ~l:l5 ~ids:isink ~vds:v_n1 ~vbs:0.0 in
  let wnc, lnc = size "N2C" in
  let vc1 =
    v_n1 +. vgs_of E.Nmos ~w:wnc ~l:lnc ~ids:i2 ~vds:(out_q -. v_n1) ~vbs:(-.v_n1)
  in
  let wt, lt = size "TAIL" in
  let vcm = Spec.input_common_mode spec in
  let win, lin = size "P1" in
  let vgs_in =
    vgs_of E.Pmos ~w:win ~l:lin ~ids:i1
      ~vds:(vcm +. pmos.E.vto +. design.veff_in -. v_n1) ~vbs:0.0
  in
  let v_tail = vcm +. vgs_in in
  let vp1 =
    vdd -. vgs_of E.Pmos ~w:wt ~l:lt ~ids:(2.0 *. i1) ~vds:(vdd -. v_tail) ~vbs:0.0
  in
  let wpc, lpc = size "P4C" in
  let vc3 =
    v_n4
    -. vgs_of E.Pmos ~w:wpc ~l:lpc ~ids:i2 ~vds:(v_n4 -. out_q)
         ~vbs:(-.(vdd -. v_n4))
  in
  { amp with
    Amp.bias_sources = [ ("vp1", vp1); ("vp2", vp2); ("vc1", vc1); ("vc3", vc3) ];
    guess =
      List.map
        (fun (n, v) ->
          match n with
          | "vp1" -> (n, vp1)
          | "vp2" -> (n, vp2)
          | "vc1" -> (n, vc1)
          | "vc3" -> (n, vc3)
          | "tail" -> (n, v_tail)
          | _ -> (n, v))
        amp.Amp.guess }

module El = Netlist.Element
module E = Technology.Electrical
module P = Technology.Process
module M = Device.Model

type design = {
  amp : Amp.t;
  i1 : float;
  i6 : float;
  cc : float;
  rz : float;
  predicted_gbw : float;
}

let device_names = [ "M1"; "M2"; "M3"; "M4"; "M5"; "M6"; "M7" ]

let zero_geom w =
  { Device.Folding.ad = 0.0; as_ = 0.0; pd = 0.0; ps = 0.0;
    finger_w = w; drain_strips = 1; source_strips = 1 }

let size_once ~proc ~kind ~spec ~parasitics ~gm1_scale ~gm6_scale =
  (match Spec.validate spec with
   | Ok () -> ()
   | Error msg -> failwith ("Two_stage.size: " ^ msg));
  let nmos = proc.P.electrical.E.nmos and pmos = proc.P.electrical.E.pmos in
  let vdd = spec.Spec.vdd in
  let vcm = Spec.input_common_mode spec in
  let vcm = Float.max vcm (nmos.E.vto +. 0.45) in
  let out_q = Spec.output_quiescent spec in
  let lmin = P.lmin proc in
  let l = 2.0 *. lmin in
  let veff1 = 0.20 and veff_load = 0.30 and veff_tail = 0.25 in
  let mk name mtype w l =
    let dev = Device.Mos.make ~name ~mtype ~w ~l () in
    let dev = Parasitics.apply_to_device parasitics dev in
    match parasitics.Parasitics.diffusion with
    | Parasitics.No_diffusion ->
      { dev with Device.Mos.diffusion = Some (zero_geom w) }
    | Parasitics.Assume_single_fold | Parasitics.Layout_exact -> dev
  in
  (* compensation: Cc from the load, second-stage gm from the required
     output pole, first-stage gm from GBW over Cc *)
  let cc = 0.5 *. spec.Spec.cload in
  let fu = spec.Spec.gbw in
  let pm_rad = (spec.Spec.phase_margin +. 4.0) *. Float.pi /. 180.0 in
  let p2_needed = fu /. tan ((Float.pi /. 2.0) -. pm_rad) in
  let gm6 = gm6_scale *. 2.0 *. Float.pi *. p2_needed *. spec.Spec.cload in
  let gm1 = gm1_scale *. 2.0 *. Float.pi *. fu *. cc in
  (* first stage *)
  let v_tail = vcm -. (nmos.E.vto +. veff1) in
  let w_unit = 1e-6 in
  let eval1 =
    M.evaluate kind nmos ~w:w_unit ~l
      { M.vgs = nmos.E.vto +. veff1; vds = 1.0; vbs = -.v_tail }
  in
  let w1 = gm1 /. eval1.M.gm *. w_unit in
  let i1 = eval1.M.ids *. (w1 /. w_unit) in
  let vgs_load = pmos.E.vto +. veff_load in
  let w3 =
    M.w_for_current kind pmos ~l ~ids:i1
      { M.vgs = vgs_load; vds = vgs_load; vbs = 0.0 }
  in
  let w5 =
    M.w_for_current kind nmos ~l ~ids:(2.0 *. i1)
      { M.vgs = nmos.E.vto +. veff_tail; vds = v_tail; vbs = 0.0 }
  in
  let vb =
    M.vgs_for_current kind nmos ~w:w5 ~l ~ids:(2.0 *. i1) ~vds:v_tail ~vbs:0.0
  in
  (* second stage: M6's gate sits at the first-stage output, which rests at
     vdd - vgs_load, so M6 sees the mirror's gate drive; its width sets both
     gm6 and i6 *)
  let eval6 =
    M.evaluate kind pmos ~w:w_unit ~l
      { M.vgs = vgs_load; vds = vdd -. out_q; vbs = 0.0 }
  in
  let w6 = gm6 /. eval6.M.gm *. w_unit in
  let i6 = eval6.M.ids *. (w6 /. w_unit) in
  let w7 =
    M.w_for_current kind nmos ~l ~ids:i6 { M.vgs = vb; vds = out_q; vbs = 0.0 }
  in
  let rz = 1.0 /. gm6 in
  let o1_q = vdd -. vgs_load in
  let mos name mtype w ~d ~g ~s ~b = El.Mos { dev = mk name mtype w l; d; g; s; b } in
  let devices =
    [
      (* the mirror side (M1) is the inverting path through the two
         stages, so the non-inverting input inp drives M2 *)
      mos "M1" E.Nmos w1 ~d:"x1" ~g:"inn" ~s:"tail" ~b:"0";
      mos "M2" E.Nmos w1 ~d:"o1" ~g:"inp" ~s:"tail" ~b:"0";
      mos "M3" E.Pmos w3 ~d:"x1" ~g:"x1" ~s:"vdd" ~b:"vdd";
      mos "M4" E.Pmos w3 ~d:"o1" ~g:"x1" ~s:"vdd" ~b:"vdd";
      mos "M5" E.Nmos w5 ~d:"tail" ~g:"vb" ~s:"0" ~b:"0";
      mos "M6" E.Pmos w6 ~d:"out" ~g:"o1" ~s:"vdd" ~b:"vdd";
      mos "M7" E.Nmos w7 ~d:"out" ~g:"vb" ~s:"0" ~b:"0";
      El.Resistor { name = "z"; p = "out"; n = "z"; r = rz };
      El.Capacitor { name = "c"; p = "z"; n = "o1"; c = cc };
    ]
  in
  let amp =
    {
      Amp.topology = "two-stage Miller OTA";
      devices;
      bias_sources = [ ("vb", vb) ];
      node_caps = [];
      guess =
        [
          ("tail", v_tail); ("x1", o1_q); ("o1", o1_q); ("z", out_q);
          ("out", out_q); ("inp", vcm); ("inn", vcm); ("vdd", vdd); ("vb", vb);
        ];
      quiescent_out = out_q;
      tail_current = Float.min (2.0 *. i1 *. spec.Spec.cload /. cc) i6;
      supply_current = (2.0 *. i1) +. i6;
      gm1;
      internal_nets = [ "tail"; "x1"; "o1"; "z" ];
    }
  in
  { amp; i1; i6; cc; rz; predicted_gbw = fu }

let pp_design fmt d =
  let si = Phys.Units.to_si_string in
  Format.fprintf fmt
    "@[<v>two-stage Miller design:@,\
     \  I1 = %s  I6 = %s  Cc = %s  Rz = %s@,%a@]"
    (si "A" d.i1) (si "A" d.i6) (si "F" d.cc) (si "ohm" d.rz)
    Amp.pp_sizes d.amp

(* The closed-form plan underestimates the capacitive load of the second
   stage (M6's gate dominates the first-stage output), so the plan is
   calibrated against the verification interface: the GBW shortfall scales
   gm1, the phase-margin shortfall scales gm6. *)
let size ~proc ~kind ~spec ~parasitics =
  Obs.Trace.with_span ~cat:"comdiac" "comdiac.size.two_stage" @@ fun () ->
  let target_fu = spec.Spec.gbw and target_pm = spec.Spec.phase_margin in
  let rec go gm1_scale gm6_scale passes =
    if (Obs.Config.enabled ()) then Obs.Metrics.incr "comdiac.two_stage.passes";
    let d = size_once ~proc ~kind ~spec ~parasitics ~gm1_scale ~gm6_scale in
    if passes >= 6 then d
    else begin
      let tb = Testbench.make ~proc ~kind ~spec d.amp in
      let fu = Testbench.gbw tb and pm = Testbench.phase_margin tb in
      match (fu, pm) with
      | Some fu, Some pm ->
        let fu_ok = Float.abs (fu -. target_fu) <= 0.02 *. target_fu in
        let pm_ok = pm >= target_pm -. 0.5 in
        if fu_ok && pm_ok then d
        else
          let gm1_scale' = gm1_scale *. target_fu /. fu in
          let gm6_scale' =
            if pm_ok then gm6_scale
            else Float.min 4.0 (gm6_scale *. (1.0 +. ((target_pm -. pm) /. 40.0)))
          in
          go gm1_scale' gm6_scale' (passes + 1)
      | None, _ | _, None -> d
    end
  in
  go 1.0 1.0 1

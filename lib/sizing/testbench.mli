(** Verification-by-simulation interface: wraps an {!Amp.t} in the
    measurement benches (offset-nulled open loop, common mode, unity-gain
    follower, noise) and extracts the full Table-1 performance record
    using the MNA simulator — with the same transistor models the sizing
    plan used. *)

type t
(** A prepared bench around one amp. *)

val make :
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Spec.t ->
  Amp.t -> t

val offset : t -> float
(** Input-referred offset: the differential input that centres the output
    at the quiescent target, V. *)

val dc_gain : t -> float
val gbw : t -> float option
val phase_margin : t -> float option
val output_resistance : t -> float
val cmrr : t -> float
(** Linear ratio Adm / Acm at low frequency. *)

val slew_rate : t -> float
(** Worst of rising/falling maximum output slope in the unity-gain step
    bench, V/s. *)

val input_noise_density : t -> freq:float -> float
(** Input-referred voltage noise density at [freq], V/sqrt(Hz). *)

val integrated_input_noise : t -> fmin:float -> fmax:float -> float
val power : t -> float
(** Quiescent dissipation VDD * I(VDD), W. *)

val psrr : t -> float
(** Positive supply rejection: Adm / Avdd at low frequency (linear). *)

val common_mode_range : ?points:int -> t -> float * float
(** Measured input common-mode range: sweep the common-mode voltage over
    [0, vdd] ([points] samples, default 34), re-null the offset at every
    point and report the contiguous interval around the nominal bias where
    the differential gain stays within 3 dB of its peak.  This verifies
    the ICMR row of the specification. *)

val performance : t -> Performance.t
(** Run every measurement and assemble the record.  Thermal density is
    evaluated in the white region (GBW / 4), flicker at 1 Hz, integrated
    noise from 1 Hz to the measured GBW.

    Memoized ([comdiac.performance] in {!Cache.Memo.registry}) keyed by
    (process, kind, spec, amp): repeated measurements of the same amp —
    the flow's synthesized/extracted checks, warm benchmark re-runs —
    return the cached record, bit-identical to recomputation. *)

val operating_point : t -> Sim.Dcop.t
(** The offset-nulled differential-bench operating point (for reports). *)

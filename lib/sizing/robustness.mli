(** Corner and temperature verification of a sized amplifier: re-measure
    the key performances of a *fixed* design across process corners and
    analysis temperatures, and report spec compliance — the second half of
    the paper's reliability story (the first being the Monte Carlo
    mismatch analysis in {!Montecarlo}). *)

type point = {
  corner : Technology.Corner.t;
  temperature : float;        (** K *)
  gbw : float;                (** Hz; nan if no unity crossing *)
  phase_margin : float;       (** deg; nan likewise *)
  dc_gain_db : float;
  power : float;
  biased : bool;              (** false when the DC solve failed *)
}

type result = {
  points : point list;
  worst_gbw : float;
  worst_pm : float;
  all_biased : bool;
}

val run :
  ?corners:Technology.Corner.t list ->
  ?temperatures:float list ->
  ?ctx:Exec.Ctx.t ->
  ?jobs:int ->
  ?rebias:(Technology.Process.t -> Amp.t) ->
  ?proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Spec.t ->
  Amp.t -> result
(** Defaults: the {!Technology.Corner.sweep_grid} grid — all five
    corners at 27 C, plus TT at -40 C and 85 C.  The process comes from
    [~proc] if given, else from [ctx.proc]; pool width from [?jobs]
    (deprecated override), then [ctx.jobs], then
    {!Par.Pool.default_jobs}.  Grid points are measured in parallel on
    the {!Par.Pool} domain pool; [points] is always in grid order.

    Without [rebias], each grid point is memoized
    ([comdiac.corner_point] in {!Cache.Memo.registry}) keyed by
    (process, kind, spec, corner, temperature, amp); a warm re-run of
    the same sweep returns every point from cache, bit-identical to the
    cold run.  With [rebias] the per-point memo is bypassed (closures
    cannot be structural cache keys).

    [rebias] models a tracking bias generator: it is handed the cornered
    process and must return the amp with bias voltages recomputed for it
    (see {!Folded_cascode.rebias}); without it the nominal bias voltages
    are frozen, which realistically fails skewed corners. *)

val run_result :
  ?corners:Technology.Corner.t list ->
  ?temperatures:float list ->
  ?ctx:Exec.Ctx.t ->
  ?jobs:int ->
  ?rebias:(Technology.Process.t -> Amp.t) ->
  ?proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Spec.t ->
  Amp.t -> (result, Sim.Sim_error.t) Stdlib.result
(** {!run} with simulator failures (including a cooperative
    per-grid-point deadline check from [ctx]) returned as [Error]
    instead of raised. *)

val meets :
  result -> spec:Spec.t -> gbw_slack:float -> pm_slack:float -> bool
(** True when every biased point has GBW within [gbw_slack] (relative) of
    the target and PM no more than [pm_slack] degrees below. *)

val pp : Format.formatter -> result -> unit

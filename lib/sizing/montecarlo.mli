(** Statistical (Monte Carlo) verification — the paper's "statistical
    analysis to check the reliability of the synthesized circuit".

    Each sample perturbs every transistor's threshold voltage and current
    factor with independent Gaussian mismatch of Pelgrom standard
    deviation (avt / sqrt(WL), abeta / sqrt(WL)) and re-measures the
    offset, DC gain and GBW on the simulator.

    Samples are evaluated on the {!Par.Pool} domain pool.  Sample [i]
    draws its randomness from SplitMix64 stream [(seed, i)], so the run
    is reproducible {e and} schedule independent: [run ~jobs:k] returns
    exactly the same samples, in the same order, for every [k]. *)

type sample = {
  offset : float;     (** input-referred offset, V *)
  dc_gain_db : float;
  gbw : float;        (** Hz; nan when the gain never crosses unity *)
}

type stats = {
  n : int;
  mean : float;
  std : float;
  minimum : float;
  maximum : float;
}

type result = {
  samples : sample list;
  offset_stats : stats;
  gain_stats : stats;
  gbw_stats : stats;
  predicted_offset_sigma : float;
      (** analytic input-pair-dominated prediction:
          sqrt(2) sigma_vt(P1) combined with the mirror's contribution
          scaled by gm ratios *)
}

val stats_of : float list -> stats
(** Single-pass (Welford) summary; [std] is the unbiased (n-1) sample
    standard deviation.  Raises on the empty list. *)

val run :
  ?seed:int -> ?n:int -> ?ctx:Exec.Ctx.t -> ?jobs:int ->
  ?proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Spec.t ->
  Amp.t -> result
(** Default 50 samples; the seed resolves like every other execution
    switch (explicit [?seed] > [ctx.seed] > [LOSAC_SEED] > 42, see
    {!Exec.Ctx.seed}).  The process comes from [~proc] if
    given, else from [ctx.proc]; pool width from [?jobs] (deprecated
    override), then [ctx.jobs], then {!Par.Pool.default_jobs}.  [ctx]'s
    cache/telemetry switches are applied for the duration of the run.

    Each sample is memoized ([comdiac.mc_sample] in
    {!Cache.Memo.registry}) keyed by (process, kind, spec, seed, index,
    nominal amp): re-running the same workload returns cached samples,
    and the statistics are bit-identical with caching on or off.  Raises
    if no sample converges. *)

val run_result :
  ?seed:int -> ?n:int -> ?ctx:Exec.Ctx.t -> ?jobs:int ->
  ?proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Spec.t ->
  Amp.t -> (result, Sim.Sim_error.t) Stdlib.result
(** {!run} with simulator failures (no convergence, singular matrix,
    deadline exceeded) returned as [Error] instead of raised — the
    entry point the job server uses so it never catches bare
    exceptions.  When [ctx] carries a deadline, it is checked
    cooperatively between samples. *)

val pp : Format.formatter -> result -> unit

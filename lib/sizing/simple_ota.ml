module El = Netlist.Element
module E = Technology.Electrical
module P = Technology.Process
module M = Device.Model

type design = {
  amp : Amp.t;
  i1 : float;
  predicted_gbw : float;
  predicted_gain_db : float;
}

let device_names = [ "M1"; "M2"; "M3"; "M4"; "M5" ]

let size ~proc ~kind ~spec ~parasitics =
  Obs.Trace.with_span ~cat:"comdiac" "comdiac.size.simple_ota" @@ fun () ->
  (match Spec.validate spec with
   | Ok () -> ()
   | Error msg -> failwith ("Simple_ota.size: " ^ msg));
  let nmos = proc.P.electrical.E.nmos and pmos = proc.P.electrical.E.pmos in
  let vdd = spec.Spec.vdd in
  let vcm = Float.max (Spec.input_common_mode spec) (nmos.E.vto +. 0.45) in
  let out_q = Spec.output_quiescent spec in
  let lmin = P.lmin proc in
  let l = 2.0 *. lmin in
  let veff1 = 0.20 and veff_load = 0.30 and veff_tail = 0.25 in
  let v_tail = vcm -. (nmos.E.vto +. veff1) in
  let gm1 = 2.0 *. Float.pi *. spec.Spec.gbw *. spec.Spec.cload in
  let w_unit = 1e-6 in
  let eval1 =
    M.evaluate kind nmos ~w:w_unit ~l
      { M.vgs = nmos.E.vto +. veff1; vds = 1.0; vbs = -.v_tail }
  in
  let w1 = gm1 /. eval1.M.gm *. w_unit in
  let i1 = eval1.M.ids *. (w1 /. w_unit) in
  let vgs_load = pmos.E.vto +. veff_load in
  let w3 =
    M.w_for_current kind pmos ~l ~ids:i1
      { M.vgs = vgs_load; vds = vgs_load; vbs = 0.0 }
  in
  let w5 =
    M.w_for_current kind nmos ~l ~ids:(2.0 *. i1)
      { M.vgs = nmos.E.vto +. veff_tail; vds = v_tail; vbs = 0.0 }
  in
  let vb =
    M.vgs_for_current kind nmos ~w:w5 ~l ~ids:(2.0 *. i1) ~vds:v_tail ~vbs:0.0
  in
  let dev name mtype w = Parasitics.apply_to_device parasitics
      (Device.Mos.make ~name ~mtype ~w ~l ()) in
  let mos name mtype w ~d ~g ~s ~b = El.Mos { dev = dev name mtype w; d; g; s; b } in
  let devices =
    [
      mos "M1" E.Nmos w1 ~d:"x1" ~g:"inp" ~s:"tail" ~b:"0";
      mos "M2" E.Nmos w1 ~d:"out" ~g:"inn" ~s:"tail" ~b:"0";
      mos "M3" E.Pmos w3 ~d:"x1" ~g:"x1" ~s:"vdd" ~b:"vdd";
      mos "M4" E.Pmos w3 ~d:"out" ~g:"x1" ~s:"vdd" ~b:"vdd";
      mos "M5" E.Nmos w5 ~d:"tail" ~g:"vb" ~s:"0" ~b:"0";
    ]
  in
  let eval_at w veff =
    M.evaluate kind nmos ~w ~l { M.vgs = nmos.E.vto +. veff; vds = 1.0; vbs = 0.0 }
  in
  let gds1 = (eval_at w1 veff1).M.gds in
  let gds4 =
    (M.evaluate kind pmos ~w:w3 ~l { M.vgs = vgs_load; vds = vdd -. out_q; vbs = 0.0 }).M.gds
  in
  let gain = gm1 /. (gds1 +. gds4) in
  let amp =
    {
      Amp.topology = "simple 5T OTA";
      devices;
      bias_sources = [ ("vb", vb) ];
      node_caps = [];
      guess =
        [
          ("tail", v_tail); ("x1", vdd -. vgs_load); ("out", out_q);
          ("inp", vcm); ("inn", vcm); ("vdd", vdd); ("vb", vb);
        ];
      quiescent_out = out_q;
      tail_current = 2.0 *. i1;
      supply_current = 2.0 *. i1;
      gm1;
      internal_nets = [ "tail"; "x1" ];
    }
  in
  {
    amp;
    i1;
    predicted_gbw = spec.Spec.gbw;
    predicted_gain_db = 20.0 *. log10 gain;
  }

let pp_design fmt d =
  Format.fprintf fmt "@[<v>simple OTA design:@,\
                      \  I1 = %s  predicted gain %.1f dB@,%a@]"
    (Phys.Units.to_si_string "A" d.i1) d.predicted_gain_db Amp.pp_sizes d.amp

module C = Technology.Corner

type point = {
  corner : C.t;
  temperature : float;
  gbw : float;
  phase_margin : float;
  dc_gain_db : float;
  power : float;
  biased : bool;
}

type result = {
  points : point list;
  worst_gbw : float;
  worst_pm : float;
  all_biased : bool;
}

let measure_point ?rebias ~proc ~kind ~spec ~corner ~temperature amp =
  let proc = C.at_temperature temperature (C.apply corner proc) in
  let amp = match rebias with Some f -> f proc | None -> amp in
  match Testbench.make ~proc ~kind ~spec amp with
  | tb ->
    {
      corner;
      temperature;
      gbw = (match Testbench.gbw tb with Some f -> f | None -> Float.nan);
      phase_margin =
        (match Testbench.phase_margin tb with Some p -> p | None -> Float.nan);
      dc_gain_db = Sim.Measure.db (Testbench.dc_gain tb);
      power = Testbench.power tb;
      biased = true;
    }
  | exception (Phys.Numerics.No_convergence _ | Failure _) ->
    {
      corner;
      temperature;
      gbw = Float.nan;
      phase_margin = Float.nan;
      dc_gain_db = Float.nan;
      power = Float.nan;
      biased = false;
    }

(* Coarse per-point memo: without [rebias] a grid point is a pure
   function of (process, kind, spec, corner, temperature, amp), so a
   warm re-run of the same sweep returns every point from cache.  With
   [rebias] the point depends on a closure that cannot be keyed
   structurally ([compare] raises on functional values), so those runs
   bypass this memo — the fine-grained device.eval memo still helps. *)
let point_memo :
    ( Technology.Process.t * Device.Model.kind * Spec.t * C.t * float * Amp.t,
      point )
    Cache.Memo.t =
  Cache.Memo.create ~name:"comdiac.corner_point" ~shards:8 ~capacity:8192 ()

let run ?corners ?temperatures ?ctx ?jobs ?rebias ?proc ~kind ~spec amp =
  let proc = Exec.Ctx.proc ?override:proc ctx in
  let jobs = Exec.Ctx.jobs ?override:jobs ctx in
  let chunk = Exec.Ctx.chunk ctx in
  Exec.Ctx.run ctx @@ fun () ->
  let grid = C.sweep_grid ?corners ?temperatures () in
  let measure (corner, temperature) =
    (* cooperative timeout boundary, as in Montecarlo.run *)
    Exec.Ctx.check_deadline ~analysis:"robustness" ctx;
    match rebias with
    | Some _ ->
      measure_point ?rebias ~proc ~kind ~spec ~corner ~temperature amp
    | None ->
      Cache.Memo.find_or_compute point_memo
        (proc, kind, spec, corner, temperature, amp)
        (fun () ->
          measure_point ~proc ~kind ~spec ~corner ~temperature amp)
  in
  (* every grid point re-corners the process and re-simulates a fixed
     design — fully independent, so fan out over the domain pool *)
  let points =
    Obs.Trace.with_span ~cat:"comdiac"
      ~args:[ ("points", Obs.Trace.Int (List.length grid)) ]
      "robustness.sweep"
      (fun () ->
        (* a corner point re-corners and re-simulates a whole design:
           moderate cost, a few points per chunk at most *)
        Par.Pool.map ?jobs ?chunk ~cost:Par.Pool.Moderate measure grid)
  in
  let biased = List.filter (fun p -> p.biased) points in
  let fold f init xs = List.fold_left f init xs in
  {
    points;
    worst_gbw =
      fold (fun acc p -> if Float.is_nan p.gbw then acc else Float.min acc p.gbw)
        infinity biased;
    worst_pm =
      fold
        (fun acc p ->
          if Float.is_nan p.phase_margin then acc else Float.min acc p.phase_margin)
        infinity biased;
    all_biased = List.for_all (fun p -> p.biased) points;
  }

let run_result ?corners ?temperatures ?ctx ?jobs ?rebias ?proc ~kind ~spec amp
    =
  match run ?corners ?temperatures ?ctx ?jobs ?rebias ?proc ~kind ~spec amp with
  | r -> Ok r
  | exception e ->
    (match Sim.Sim_error.of_exn ~analysis:"robustness" e with
     | Some err -> Error err
     | None -> raise e)

let meets r ~spec ~gbw_slack ~pm_slack =
  r.all_biased
  && r.worst_gbw >= (1.0 -. gbw_slack) *. spec.Spec.gbw
  && r.worst_pm >= spec.Spec.phase_margin -. pm_slack

let pp fmt r =
  Format.fprintf fmt "@[<v>corner / temperature verification:@,";
  List.iter
    (fun p ->
      if p.biased then
        Format.fprintf fmt
          "  %-3s %6.1f C: GBW %7.2f MHz  PM %5.1f deg  gain %5.1f dB  \
           power %5.2f mW@,"
          (C.to_string p.corner)
          (p.temperature -. 273.15)
          (p.gbw /. 1e6) p.phase_margin p.dc_gain_db (p.power /. 1e-3)
      else
        Format.fprintf fmt "  %-3s %6.1f C: FAILED TO BIAS@,"
          (C.to_string p.corner)
          (p.temperature -. 273.15))
    r.points;
  Format.fprintf fmt "  worst: GBW %.2f MHz, PM %.1f deg@]"
    (r.worst_gbw /. 1e6) r.worst_pm

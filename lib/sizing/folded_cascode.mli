(** Design plan for the paper's example: a PMOS-input folded cascode OTA
    (Fig. 4) with a wide-swing cascoded PMOS mirror load and single-ended
    output.

    Sizing follows the paper's COMDIAC procedure: the DC operating point
    (effective gate voltages) is fixed first from the supply, input
    common-mode and output-range constraints; input-branch current is
    estimated from the GBW target ([gm1 = 2 pi GBW (CL + Cout_par)],
    [I1 = gm1 Veff1 / 2]); widths follow by model inversion (simple
    monotonic iterations); cascode lengths are then shortened — and, at
    minimum length, the cascode branch current raised — until the
    folding-node pole yields the required phase margin; the whole process
    repeats because the output parasitic capacitance moves with the sizes.

    The parasitic knowledge ({!Parasitics.t}) enters everywhere a junction
    or routing capacitance is counted, which is precisely the paper's
    Table 1 experiment. *)

type design = {
  amp : Amp.t;
  i1 : float;         (** input branch current per side, A *)
  i2 : float;         (** cascode branch current per side, A *)
  veff_in : float;
  veff_tail : float;
  veff_nsink : float;
  veff_ncasc : float;
  veff_psrc : float;
  veff_pcasc : float;
  l_casc : float;     (** cascode length after the PM iteration, m *)
  predicted_gbw : float;
  predicted_pm : float;
  predicted_gain_db : float;
  iterations : int;
}

val device_names : string list
(** ["P1"; "P2"; "TAIL"; "P3"; "P4"; "P3C"; "P4C"; "N1C"; "N2C"; "N5";
    "N6"] *)

type knobs = {
  veff_in : float option;
  veff_tail : float option;
  veff_nsink : float option;
  veff_psrc : float option;
  i2_ratio : float option;   (** starting cascode/input branch ratio *)
  l_mult : float option;     (** multiplier on the 2·Lmin non-cascode lengths *)
}
(** Overrides for the plan's own operating-point choices — the search
    variables of the optimizer layer ([Opt]).  [None] fields keep the
    knowledge-based value, so {!no_knobs} reproduces the paper's plan
    bit-identically. *)

val no_knobs : knobs

type dev_eval =
  | Exact_model   (** {!Device.Model.evaluate} / {!Device.Op.compute} *)
  | Lut_model
      (** {!Device.Lut.eval} / {!Device.Op.compute_lut}: interpolated
          operating points for the plan's forward evaluations (the model
          inversions — widths, thresholds, bias voltages — stay exact).
          Approximate; the optimizer's cheap first-pass tier. *)

val size :
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Spec.t ->
  parasitics:Parasitics.t ->
  design
(** [size_with] at the plan's own operating point with exact models.
    Raises [Failure] when the specification cannot be met (e.g. the
    output range does not fit the supply). *)

val size_with :
  ?knobs:knobs ->
  ?dev_eval:dev_eval ->
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Spec.t ->
  parasitics:Parasitics.t ->
  unit ->
  design
(** The optimizer entry point: run the same COMDIAC plan with some
    operating-point choices overridden and (optionally) the forward
    device evaluations interpolated from {!Device.Lut} grids.  Raises
    [Failure] when the plan does not converge under the given knob
    overrides — the optimizer treats that as an infeasible candidate. *)

val drain_currents : design -> (string * float) list
(** DC drain current magnitude per device — the information passed to the
    layout tool for the reliability (electromigration) rules. *)

val net_of_drain : string -> string
(** Amp net connected to a device's drain, by device name. *)

val rebias :
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Spec.t ->
  design -> Amp.t
(** Recompute the four bias voltages for the *same* device sizes under a
    different process view (corner, temperature) — the job a tracking
    bias generator performs on silicon.  Device sizes, currents and node
    targets are kept; only vp1/vp2/vc1/vc3 move. *)

val pp_design : Format.formatter -> design -> unit

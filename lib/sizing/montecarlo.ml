module El = Netlist.Element

type sample = {
  offset : float;
  dc_gain_db : float;
  gbw : float;
}

type stats = {
  n : int;
  mean : float;
  std : float;
  minimum : float;
  maximum : float;
}

type result = {
  samples : sample list;
  offset_stats : stats;
  gain_stats : stats;
  gbw_stats : stats;
  predicted_offset_sigma : float;
}

(* Single-pass Welford accumulation; numerically stable and one traversal
   for all four summaries.  Variance is the unbiased (n-1) sample
   estimator, as appropriate for Monte Carlo draws. *)
let stats_of values =
  assert (values <> []);
  let n = ref 0 in
  let mean = ref 0.0 in
  let m2 = ref 0.0 in
  let minimum = ref infinity in
  let maximum = ref neg_infinity in
  List.iter
    (fun v ->
      Stdlib.incr n;
      let d = v -. !mean in
      mean := !mean +. (d /. float_of_int !n);
      m2 := !m2 +. (d *. (v -. !mean));
      if v < !minimum then minimum := v;
      if v > !maximum then maximum := v)
    values;
  let var = if !n > 1 then !m2 /. float_of_int (!n - 1) else 0.0 in
  {
    n = !n;
    mean = !mean;
    std = sqrt (Float.max 0.0 var);
    minimum = !minimum;
    maximum = !maximum;
  }

(* Box-Muller over an explicit SplitMix64 stream. *)
let gaussian st =
  let u1 = Float.max 1e-12 (Par.Splitmix.float st) in
  let u2 = Par.Splitmix.float st in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let perturb proc st amp =
  Amp.map_devices
    (fun dev ->
      let sigma_vt, sigma_beta = Device.Mos.mismatch_sigma proc dev in
      Device.Mos.with_mismatch
        ~vto_shift:(sigma_vt *. gaussian st)
        ~beta_scale:(1.0 +. (sigma_beta *. gaussian st))
        dev)
    amp

let input_pair_sigma proc amp =
  (* the device whose gate is the non-inverting input *)
  let input_dev =
    List.find_map
      (fun e ->
        match e with
        | El.Mos { dev; g = "inp"; _ } -> Some dev
        | El.Mos _ | El.Resistor _ | El.Capacitor _ | El.Isource _
        | El.Vsource _ -> None)
      amp.Amp.devices
  in
  match input_dev with
  | Some dev ->
    let sigma_vt, _ = Device.Mos.mismatch_sigma proc dev in
    sqrt 2.0 *. sigma_vt
  | None -> 0.0

(* Coarse per-sample memo: sample [i] is a pure function of (process,
   model kind, spec, run seed, index, nominal amp), so a warm re-run of
   the same Monte Carlo workload — the common case when comparing
   analyses or benchmarking — hits here and skips the whole perturb +
   testbench + measure chain.  [None] (non-converged) is cached too. *)
let sample_memo :
    ( Technology.Process.t * Device.Model.kind * Spec.t * int * int * Amp.t,
      sample option )
    Cache.Memo.t =
  Cache.Memo.create ~name:"comdiac.mc_sample" ~shards:8 ~capacity:8192 ()

let run ?seed ?(n = 50) ?ctx ?jobs ?proc ~kind ~spec amp =
  assert (n > 0);
  let seed = Exec.Ctx.seed ?override:seed ctx in
  let proc = Exec.Ctx.proc ?override:proc ctx in
  let jobs = Exec.Ctx.jobs ?override:jobs ctx in
  let chunk = Exec.Ctx.chunk ctx in
  Exec.Ctx.run ctx @@ fun () ->
  (* Sample [i] draws from SplitMix64 stream [(seed, i)], so its value
     depends only on the run seed and its own index — never on which
     domain computes it or in what order.  The parallel run is therefore
     bit-identical to the sequential one. *)
  let one index =
    (* cooperative timeout: a served job's deadline is honoured between
       samples, never mid-solve *)
    Exec.Ctx.check_deadline ~analysis:"montecarlo" ctx;
    Cache.Memo.find_or_compute sample_memo
      (proc, kind, spec, seed, index, amp)
      (fun () ->
        let st = Par.Splitmix.create ~stream:index seed in
        let amp' = perturb proc st amp in
        match Testbench.make ~proc ~kind ~spec amp' with
        | tb ->
          Some
            {
              offset = Testbench.offset tb;
              dc_gain_db = Sim.Measure.db (Testbench.dc_gain tb);
              gbw =
                (match Testbench.gbw tb with Some f -> f | None -> Float.nan);
            }
        | exception (Phys.Numerics.No_convergence _ | Failure _) -> None)
  in
  let samples =
    Obs.Trace.with_span ~cat:"comdiac"
      ~args:[ ("n", Obs.Trace.Int n) ]
      "montecarlo.samples"
      (fun () ->
        List.filter_map Fun.id
          (* a sample is one small-signal solve: cheap — let the pool
             batch many per chunk *)
          (Par.Pool.map ?jobs ?chunk ~cost:Par.Pool.Cheap one
             (List.init n Fun.id)))
  in
  if samples = [] then failwith "Montecarlo.run: no sample converged";
  let finite = List.filter (fun v -> not (Float.is_nan v)) in
  {
    samples;
    offset_stats = stats_of (List.map (fun s -> s.offset) samples);
    gain_stats = stats_of (List.map (fun s -> s.dc_gain_db) samples);
    gbw_stats = stats_of (finite (List.map (fun s -> s.gbw) samples));
    predicted_offset_sigma = input_pair_sigma proc amp;
  }

let run_result ?seed ?n ?ctx ?jobs ?proc ~kind ~spec amp =
  match run ?seed ?n ?ctx ?jobs ?proc ~kind ~spec amp with
  | r -> Ok r
  | exception e ->
    (match Sim.Sim_error.of_exn ~analysis:"montecarlo" e with
     | Some err -> Error err
     | None -> raise e)

let pp fmt r =
  let p name unit scale (s : stats) =
    Format.fprintf fmt
      "  %-8s mean %10.3f %-4s sigma %9.3f  range [%.3f, %.3f] (n=%d)@." name
      (s.mean /. scale) unit (s.std /. scale) (s.minimum /. scale)
      (s.maximum /. scale) s.n
  in
  Format.fprintf fmt "@[<v>monte carlo:@,";
  p "offset" "mV" 1e-3 r.offset_stats;
  p "gain" "dB" 1.0 r.gain_stats;
  p "gbw" "MHz" 1e6 r.gbw_stats;
  Format.fprintf fmt "  input-pair Pelgrom prediction: sigma_vos >= %.3f mV@]"
    (r.predicted_offset_sigma /. 1e-3)

module El = Netlist.Element
module Ckt = Netlist.Circuit

type t = {
  proc : Technology.Process.t;
  kind : Device.Model.kind;
  spec : Spec.t;
  amp : Amp.t;
  vos : float;               (* nulled differential input *)
  dc : Sim.Dcop.t;           (* offset-nulled differential bench *)
  net_dm : Sim.Acs.t;        (* differential AC view *)
  net_cm : Sim.Acs.t;        (* common-mode AC view *)
}

(* Open-loop bench: supply, load and the two input sources around the
   common-mode voltage.  [ac] selects differential (+1/2, -1/2) or
   common-mode (+1, +1) stimulus. *)
let open_loop_circuit ?vcm spec amp ~vdiff ~ac_dm ~ac_cm =
  let vcm =
    match vcm with Some v -> v | None -> Spec.input_common_mode spec
  in
  let c = Ckt.create ~title:("bench " ^ amp.Amp.topology) in
  let c = Amp.add_to amp c in
  let c = Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:El.ground (El.dc_source spec.Spec.vdd) in
  let c =
    Ckt.add_vsource c ~name:"ip" ~p:"inp" ~n:El.ground
      { El.dc = vcm +. (vdiff /. 2.0); ac = (ac_dm /. 2.0) +. ac_cm; wave = None }
  in
  let c =
    Ckt.add_vsource c ~name:"in" ~p:"inn" ~n:El.ground
      { El.dc = vcm -. (vdiff /. 2.0); ac = (-.ac_dm /. 2.0) +. ac_cm; wave = None }
  in
  Ckt.add_capacitor c ~name:"load" ~p:"out" ~n:El.ground ~c:spec.Spec.cload

(* Supply-rejection bench: the AC stimulus rides on VDD instead. *)
let psrr_circuit spec amp ~vdiff =
  let vcm = Spec.input_common_mode spec in
  let c = Ckt.create ~title:("psrr bench " ^ amp.Amp.topology) in
  let c = Amp.add_to amp c in
  let c =
    Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:El.ground
      (El.ac_source ~dc:spec.Spec.vdd 1.0)
  in
  let c =
    Ckt.add_vsource c ~name:"ip" ~p:"inp" ~n:El.ground
      (El.dc_source (vcm +. (vdiff /. 2.0)))
  in
  let c =
    Ckt.add_vsource c ~name:"in" ~p:"inn" ~n:El.ground
      (El.dc_source (vcm -. (vdiff /. 2.0)))
  in
  Ckt.add_capacitor c ~name:"load" ~p:"out" ~n:El.ground ~c:spec.Spec.cload

let solve_dc proc kind spec amp circuit =
  let extra = [ ("vdd", spec.Spec.vdd) ] in
  Sim.Dcop.solve ~guess:(Amp.guess_fn amp ~extra) ~proc ~kind circuit

(* Null the offset: find the differential input that puts the output at
   the quiescent target.  The output saturates outside a tiny input
   window, so bracket adaptively before bisection. *)
let null_offset ?vcm proc kind spec amp =
  let target = amp.Amp.quiescent_out in
  let f vdiff =
    let c = open_loop_circuit ?vcm spec amp ~vdiff ~ac_dm:1.0 ~ac_cm:0.0 in
    let dc = solve_dc proc kind spec amp c in
    Sim.Dcop.voltage dc "out" -. target
  in
  let rec bracket w =
    if w > 0.3 then failwith "Testbench: cannot bracket the offset"
    else if f (-.w) *. f w <= 0.0 then w
    else bracket (w *. 4.0)
  in
  let w = bracket 2e-3 in
  Phys.Numerics.brent ~tol:1e-9 ~max_iter:80 ~f (-.w) w

let make ~proc ~kind ~spec amp =
  let vos = null_offset proc kind spec amp in
  let circuit_dm = open_loop_circuit spec amp ~vdiff:vos ~ac_dm:1.0 ~ac_cm:0.0 in
  let dc = solve_dc proc kind spec amp circuit_dm in
  let net_dm = Sim.Acs.prepare dc in
  let circuit_cm = open_loop_circuit spec amp ~vdiff:vos ~ac_dm:0.0 ~ac_cm:1.0 in
  let dc_cm = solve_dc proc kind spec amp circuit_cm in
  let net_cm = Sim.Acs.prepare dc_cm in
  { proc; kind; spec; amp; vos; dc; net_dm; net_cm }

let offset t = t.vos
let dc_gain t = Sim.Measure.dc_gain t.net_dm ~out:"out"
let gbw t = Sim.Measure.unity_gain_freq t.net_dm ~out:"out"
let phase_margin t = Sim.Measure.phase_margin t.net_dm ~out:"out"
let output_resistance t = Sim.Measure.output_resistance t.net_dm ~out:"out"

let cmrr t =
  let adm = Sim.Measure.dc_gain t.net_dm ~out:"out" in
  let acm = Sim.Measure.dc_gain t.net_cm ~out:"out" in
  adm /. Float.max 1e-12 acm

let power t =
  t.spec.Spec.vdd *. Sim.Dcop.supply_current t.dc "dd"

(* Unity-gain follower step: inn strapped to out through a 0 V source, a
   symmetric step within the output range drives inp. *)
let slew_rate t =
  let spec = t.spec and amp = t.amp in
  let lo, hi = spec.Spec.output_range in
  let v0 = lo +. (0.15 *. (hi -. lo)) and v1 = hi -. (0.15 *. (hi -. lo)) in
  let sr_est = amp.Amp.tail_current /. spec.Spec.cload in
  let t_slew = (v1 -. v0) /. sr_est in
  (* settled at v1, step down at t1 (falling edge), back up at t2 (rising
     edge), each with several slew times to settle *)
  let t1 = 1.0 *. t_slew and t2 = 6.0 *. t_slew in
  let tstop = 11.0 *. t_slew in
  let wave t = if t < t1 then v1 else if t < t2 then v0 else v1 in
  let c = Ckt.create ~title:"slew bench" in
  let c = Amp.add_to amp c in
  let c = Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:El.ground (El.dc_source spec.Spec.vdd) in
  let c = Ckt.add_vsource c ~name:"ip" ~p:"inp" ~n:El.ground (El.wave_source ~dc:v1 wave) in
  let c = Ckt.add_vsource c ~name:"fb" ~p:"inn" ~n:"out" (El.dc_source 0.0) in
  let c = Ckt.add_capacitor c ~name:"load" ~p:"out" ~n:El.ground ~c:spec.Spec.cload in
  let extra = [ ("vdd", spec.Spec.vdd); ("inp", v1); ("inn", v1); ("out", v1) ] in
  let res =
    Sim.Tran.run ~proc:t.proc ~kind:t.kind ~tstop ~dt:(t_slew /. 200.0)
      ~guess:(Amp.guess_fn amp ~extra) c
  in
  (* 10-90% edge timing rejects the capacitive feedthrough spike that a
     raw max-slope measurement would report *)
  let ts = Sim.Tran.times res in
  let w = Sim.Tran.waveform res "out" in
  let crossing ~from_i ~level ~falling =
    let n = Array.length w in
    let rec go i =
      if i >= n then None
      else if (falling && w.(i) <= level) || ((not falling) && w.(i) >= level)
      then Some ts.(i)
      else go (i + 1)
    in
    go from_i
  in
  let idx_of tm =
    let rec go i = if i >= Array.length ts || ts.(i) >= tm then i else go (i + 1) in
    go 0
  in
  let dv = v1 -. v0 in
  let edge ~start ~falling =
    let hi_level = if falling then v1 -. (0.1 *. dv) else v0 +. (0.9 *. dv) in
    let lo_level = if falling then v1 -. (0.9 *. dv) else v0 +. (0.1 *. dv) in
    let first = if falling then hi_level else lo_level in
    let second = if falling then lo_level else hi_level in
    match crossing ~from_i:(idx_of start) ~level:first ~falling with
    | None -> None
    | Some ta ->
      (match crossing ~from_i:(idx_of ta) ~level:second ~falling with
       | None -> None
       | Some tb when tb > ta -> Some (0.8 *. dv /. (tb -. ta))
       | Some _ -> None)
  in
  match (edge ~start:t1 ~falling:true, edge ~start:t2 ~falling:false) with
  | Some f, Some r -> Float.min f r
  | Some s, None | None, Some s -> s
  | None, None -> Float.nan

let gain_at t f = Sim.Acs.transfer t.net_dm ~freq:f ~out:"out"

let input_noise_density t ~freq =
  let psd =
    Sim.Noise.input_referred_psd t.dc t.net_dm ~out:"out" ~gain:(gain_at t freq)
      ~freq
  in
  sqrt psd

let integrated_input_noise t ~fmin ~fmax =
  Sim.Noise.integrated_input_noise t.dc t.net_dm ~out:"out"
    ~gain_at:(gain_at t) ~fmin ~fmax

(* Coarse memo over the full measurement suite: the record is a pure
   function of (process, kind, spec, amp) — everything [t] was built
   from — and [performance] is the expensive step the flow repeats on
   identical amps (synthesized vs extracted checks, warm re-runs). *)
let performance_memo :
    ( Technology.Process.t * Device.Model.kind * Spec.t * Amp.t,
      Performance.t )
    Cache.Memo.t =
  Cache.Memo.create ~name:"comdiac.performance" ~shards:8 ~capacity:1024 ()

let performance_exact t =
  let fu = match gbw t with Some f -> f | None -> Float.nan in
  let pm = match phase_margin t with Some p -> p | None -> Float.nan in
  let white_freq =
    if Float.is_nan fu then 10e6 else Float.max 1e5 (fu /. 4.0)
  in
  let fmax = if Float.is_nan fu then 100e6 else fu in
  {
    Performance.dc_gain_db = Sim.Measure.db (dc_gain t);
    gbw = fu;
    phase_margin = pm;
    slew_rate = slew_rate t;
    cmrr_db = Sim.Measure.db (cmrr t);
    offset = offset t;
    output_resistance = output_resistance t;
    input_noise = integrated_input_noise t ~fmin:1.0 ~fmax;
    thermal_noise_density = input_noise_density t ~freq:white_freq;
    flicker_noise_density = input_noise_density t ~freq:1.0;
    power = power t;
  }

let performance t =
  Cache.Memo.find_or_compute performance_memo (t.proc, t.kind, t.spec, t.amp)
    (fun () -> performance_exact t)

let operating_point t = t.dc

let psrr t =
  let adm = Sim.Measure.dc_gain t.net_dm ~out:"out" in
  let c = psrr_circuit t.spec t.amp ~vdiff:t.vos in
  let dc = solve_dc t.proc t.kind t.spec t.amp c in
  let net = Sim.Acs.prepare dc in
  let avdd = Sim.Measure.dc_gain net ~out:"out" in
  adm /. Float.max 1e-12 avdd

let gain_at_vcm t vcm =
  match null_offset ~vcm t.proc t.kind t.spec t.amp with
  | vdiff ->
    let c = open_loop_circuit ~vcm t.spec t.amp ~vdiff ~ac_dm:1.0 ~ac_cm:0.0 in
    let dc = solve_dc t.proc t.kind t.spec t.amp c in
    let net = Sim.Acs.prepare dc in
    Sim.Measure.dc_gain net ~out:"out"
  | exception (Failure _ | Phys.Numerics.No_convergence _) -> 0.0

let common_mode_range ?(points = 34) t =
  let vdd = t.spec.Spec.vdd in
  let vcms = Phys.Numerics.linspace 0.0 vdd points in
  let gains = Array.map (fun vcm -> gain_at_vcm t vcm) vcms in
  let peak = Array.fold_left Float.max 0.0 gains in
  let ok g = g >= peak /. sqrt 2.0 in
  (* contiguous valid interval containing the nominal common mode *)
  let nominal = Spec.input_common_mode t.spec in
  let nearest = ref 0 in
  Array.iteri
    (fun i v ->
      if Float.abs (v -. nominal) < Float.abs (vcms.(!nearest) -. nominal)
      then nearest := i)
    vcms;
  let rec down i = if i > 0 && ok gains.(i - 1) then down (i - 1) else i in
  let rec up i =
    if i < points - 1 && ok gains.(i + 1) then up (i + 1) else i
  in
  if not (ok gains.(!nearest)) then (nominal, nominal)
  else (vcms.(down !nearest), vcms.(up !nearest))

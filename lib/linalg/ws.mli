(** Reusable solver workspaces, per domain and per system size.

    A workspace bundles the matrix, right-hand side, solution and pivot
    buffers of a dense solve so that repeated same-sized solves (Newton
    iterates, continuation steps, AC sweep points) re-stamp into the same
    memory and allocate nothing on the factor/solve path.  Storage is
    domain-local ([Domain.DLS]): every worker domain of the [Par] pool
    gets its own buffers, so no locking is needed.

    Acquisitions are counted as [linalg.ws.hits] / [linalg.ws.creates]
    metrics when telemetry is on. *)

type real = {
  jac : Dense_f.t;  (** [n x n] system matrix, re-stamped per solve *)
  rhs : float array;
  delta : float array;  (** solution vector *)
  piv : int array;
}

type cx = {
  y : Dense_c.t;  (** [n x n] complex MNA matrix *)
  cpiv : int array;
  b_re : float array;
  b_im : float array;
  x_re : float array;
  x_im : float array;
  mutable serial : int;
      (** bumped on every factorisation into [y]; a solve handle compares
          it to detect that the workspace was re-factored for another
          frequency/system since, and re-factors transparently *)
}

val real : int -> real
(** The calling domain's real workspace for [n] unknowns (created on
    first use, reused after). *)

val cx : int -> cx
(** The calling domain's complex workspace for [n] unknowns. *)

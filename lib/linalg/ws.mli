(** Reusable solver workspaces, per domain and per system size.

    A workspace bundles the matrix, right-hand side, solution and pivot
    buffers of a dense solve so that repeated same-sized solves (Newton
    iterates, continuation steps, AC sweep points) re-stamp into the same
    memory and allocate nothing on the factor/solve path.  Storage is
    domain-local ([Domain.DLS]): every worker domain of the [Par] pool
    gets its own buffers, so no locking is needed.

    Acquisitions are counted as [linalg.ws.hits] / [linalg.ws.creates]
    metrics when telemetry is on. *)

type real = {
  jac : Dense_f.t;  (** [n x n] system matrix, re-stamped per solve *)
  rhs : float array;
  delta : float array;  (** solution vector *)
  piv : int array;
}

type cx = {
  y : Dense_c.t;  (** [n x n] complex MNA matrix *)
  cpiv : int array;
  b_re : float array;
  b_im : float array;
  x_re : float array;
  x_im : float array;
  mutable serial : int;
      (** bumped on every factorisation into [y]; a solve handle compares
          it to detect that the workspace was re-factored for another
          frequency/system since, and re-factors transparently *)
}

type sreal = {
  swork : float array;  (** scatter workspace for up-looking rows *)
  spos : int array;  (** column -> slot map; kept all [-1] between uses *)
  scand : int array;  (** pivot-candidate physical rows *)
  scand_key : int array;  (** candidate virtual indices (scan order) *)
  scand_slot : int array;  (** candidate value slots *)
  sy : float array;  (** permuted solve intermediate *)
  srhs : float array;  (** caller-side residual / right-hand side *)
  sdelta : float array;  (** caller-side solution *)
}
(** Scratch of a sparse real factor/solve ({!Sparse.Real}).  The
    LU values live in the factor handle — only size-[n] scratch is
    pooled here, so any number of live factors share one workspace per
    domain without interfering. *)

type scx = {
  cwork_re : float array;
  cwork_im : float array;
  cpos : int array;
  ccand : int array;
  ccand_key : int array;
  ccand_slot : int array;
  cy_re : float array;
  cy_im : float array;
  sb_re : float array;  (** caller-side split right-hand side *)
  sb_im : float array;
  sx_re : float array;  (** caller-side split solution *)
  sx_im : float array;
}
(** Split-plane scratch of a sparse complex factor/solve
    ({!Sparse.Cx}). *)

val real : int -> real
(** The calling domain's real workspace for [n] unknowns (created on
    first use, reused after). *)

val cx : int -> cx
(** The calling domain's complex workspace for [n] unknowns. *)

val sparse_real : int -> sreal
(** The calling domain's sparse real scratch for [n] unknowns. *)

val sparse_cx : int -> scx
(** The calling domain's sparse complex scratch for [n] unknowns. *)

(** Convenience instantiations of the dense linear algebra functor, plus
    the specialized unboxed kernel backend.

    [Real]/[Cx] are the boxed functor-generic reference backends;
    [Dense_f]/[Dense_c] are their bit-identical unboxed hot-path twins
    (flat [floatarray] storage, in-place LU, solves into caller-provided
    buffers) and [Ws] provides the per-domain reusable workspaces that
    make repeated solves allocation-free. *)

module Field = Field
module Dense = Dense

module Real = Dense.Make (Field.Real)
module Cx = Dense.Make (Field.Cx)

module Dense_f = Dense_f
module Dense_c = Dense_c
module Ws = Ws
module Sparse = Sparse

exception Singular = Dense.Singular

(* CSR sparse LU with a symbolic/numeric split.

   The symbolic phase runs once per matrix structure: it chooses an
   ordering, computes the elimination pattern with every fill-in slot
   preallocated, and builds the slot maps the numeric phase needs.  The
   numeric phase then refactors arbitrarily many value sets over that
   frozen pattern — one refactorization per Newton iterate, transient
   step or AC frequency point — touching only flat arrays and allocating
   nothing (scratch comes from the per-domain {!Ws} pools).

   Two orderings:

   - [Natural] keeps the MNA row/column order and performs partial
     pivoting over a precomputed *upper-bound* fill pattern, replicating
     {!Dense_f.factor_core}'s pivot rule (first strict maximum, the
     [1e-300] threshold, the [|factor| > 0] update skip) with a virtual
     row permutation instead of physical swaps.  The bound pattern is
     closed under any pivot choice: at step [k] the union [U_k] of the
     tails (columns ≥ k) of every row with a structural entry in column
     [k] is added to each of those rows, so whichever of them pivots,
     the others can absorb its tail.  Update arithmetic therefore visits
     exactly the positions the dense kernel visits with nonzero
     operands, in the same order — the only deviation is that
     structurally absent positions (which in the dense kernel hold
     signed zeros) are skipped, which cannot perturb any nonzero result.
     Natural ordering is the verification mode: it is asserted
     bit-identical to the dense kernels by the test suite and the bench.

   - [Min_degree] is the performance mode: a maximum transversal puts a
     structural nonzero on every diagonal, a minimum-degree ordering of
     the symmetrized permuted graph cuts fill, and the numeric phase is
     an up-looking row factorization with a *static* pivot order (no
     numerical pivoting; a tiny pivot raises {!Dense.Singular}, which
     the Newton drivers already treat as a divergence and answer with
     gmin/source stepping). *)

type ordering = Natural | Min_degree

let ordering_name = function
  | Natural -> "natural"
  | Min_degree -> "min-degree"

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

type pattern = { n : int; row_ptr : int array; col_idx : int array }

let nnz p = p.row_ptr.(p.n)

let of_coords ~n coords =
  let enc =
    List.rev_map
      (fun (i, j) ->
        if i < 0 || i >= n || j < 0 || j >= n then
          invalid_arg "Sparse.of_coords: index out of range";
        (i * n) + j)
      coords
  in
  let a = Array.of_list enc in
  Array.sort compare a;
  let m = Array.length a in
  let uniq = ref 0 in
  for t = 0 to m - 1 do
    if t = 0 || a.(t) <> a.(t - 1) then incr uniq
  done;
  let row_ptr = Array.make (n + 1) 0 in
  let col_idx = Array.make !uniq 0 in
  let w = ref 0 in
  for t = 0 to m - 1 do
    if t = 0 || a.(t) <> a.(t - 1) then begin
      let i = a.(t) / n and j = a.(t) mod n in
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_idx.(!w) <- j;
      incr w
    end
  done;
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { n; row_ptr; col_idx }

(* binary search for column [j] within a sorted slot range *)
let search col_idx lo0 hi0 j =
  let lo = ref lo0 and hi = ref (hi0 - 1) in
  let r = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = col_idx.(mid) in
    if c = j then begin
      r := mid;
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !r

let slot p i j = search p.col_idx p.row_ptr.(i) p.row_ptr.(i + 1) j

let slot_exn p i j =
  let s = slot p i j in
  if s < 0 then
    invalid_arg (Printf.sprintf "Sparse.slot_exn: (%d,%d) not in pattern" i j);
  s

(* ------------------------------------------------------------------ *)
(* Bitset rows for the symbolic phase                                  *)
(* ------------------------------------------------------------------ *)

module Bits = struct
  let bpw = Sys.int_size

  let make n = Array.make ((n + bpw - 1) / bpw) 0
  let set b i = b.(i / bpw) <- b.(i / bpw) lor (1 lsl (i mod bpw))
  let clear_bit b i = b.(i / bpw) <- b.(i / bpw) land lnot (1 lsl (i mod bpw))
  let test b i = (b.(i / bpw) lsr (i mod bpw)) land 1 = 1
  let reset b = Array.fill b 0 (Array.length b) 0

  let union dst src =
    for w = 0 to Array.length dst - 1 do
      dst.(w) <- dst.(w) lor src.(w)
    done

  (* dst |= { i in src : i > k } *)
  let union_above dst src k =
    let w0 = k / bpw and o = k mod bpw in
    if o < bpw - 1 then
      dst.(w0) <- dst.(w0) lor (src.(w0) land ((-1) lsl (o + 1)));
    for w = w0 + 1 to Array.length dst - 1 do
      dst.(w) <- dst.(w) lor src.(w)
    done

  let popcount b =
    let c = ref 0 in
    for w = 0 to Array.length b - 1 do
      let x = ref b.(w) in
      while !x <> 0 do
        x := !x land (!x - 1);
        incr c
      done
    done;
    !c
end

(* ------------------------------------------------------------------ *)
(* Symbolic analysis                                                   *)
(* ------------------------------------------------------------------ *)

type symbolic = {
  ordering : ordering;
  pat : pattern;  (* the stamped pattern the analysis was built from *)
  f_row_ptr : int array;  (* filled elimination pattern (CSR) *)
  f_col_idx : int array;
  f_nnz : int;
  a2f : int array;  (* stamped slot -> filled slot *)
  (* static pivot order ([Min_degree]; identity rows/cols for [Natural]) *)
  rowperm : int array;  (* k -> physical row eliminated k-th *)
  colperm : int array;  (* k -> physical column of the k-th pivot *)
  f_diag : int array;  (* [Min_degree]: slot of the diagonal in filled row k *)
  (* static column lists of the filled pattern ([Natural] pivot scans) *)
  fc_ptr : int array;
  fc_rows : int array;  (* ascending physical row within each column *)
  fc_slots : int array;
}

let fill_nnz s = s.f_nnz
let sym_ordering s = s.ordering

(* rows bitsets -> filled CSR *)
let csr_of_bits n rows =
  let f_row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    f_row_ptr.(i + 1) <- f_row_ptr.(i) + Bits.popcount rows.(i)
  done;
  let f_col_idx = Array.make f_row_ptr.(n) 0 in
  for i = 0 to n - 1 do
    let w = ref f_row_ptr.(i) in
    for j = 0 to n - 1 do
      if Bits.test rows.(i) j then begin
        f_col_idx.(!w) <- j;
        incr w
      end
    done
  done;
  (f_row_ptr, f_col_idx)

(* Upper-bound fill for partial pivoting in natural order: at step [k],
   every row holding a structural entry in column [k] is a pivot
   candidate; whichever is chosen, the others receive its tail.  Closing
   the pattern under the union of all candidate tails makes it valid for
   any pivot sequence the numeric phase selects. *)
let symbolic_natural pat =
  let n = pat.n in
  let rows = Array.init n (fun _ -> Bits.make n) in
  for i = 0 to n - 1 do
    for t = pat.row_ptr.(i) to pat.row_ptr.(i + 1) - 1 do
      Bits.set rows.(i) pat.col_idx.(t)
    done
  done;
  let u = Bits.make n in
  for k = 0 to n - 1 do
    Bits.reset u;
    for r = 0 to n - 1 do
      if Bits.test rows.(r) k then Bits.union_above u rows.(r) (k - 1)
    done;
    for r = 0 to n - 1 do
      if Bits.test rows.(r) k then Bits.union_above rows.(r) u k
    done
  done;
  let f_row_ptr, f_col_idx = csr_of_bits n rows in
  (f_row_ptr, f_col_idx)

(* Maximum transversal (augmenting-path bipartite matching): a row for
   every column so the permuted matrix has a structurally nonzero
   diagonal.  Structurally deficient columns fall back to any unused row
   — the numeric phase then meets a zero pivot and raises, exactly as a
   numerically singular system would. *)
let transversal pat =
  let n = pat.n in
  (* column -> rows adjacency *)
  let c_ptr = Array.make (n + 1) 0 in
  let m = nnz pat in
  for t = 0 to m - 1 do
    c_ptr.(pat.col_idx.(t) + 1) <- c_ptr.(pat.col_idx.(t) + 1) + 1
  done;
  for j = 0 to n - 1 do
    c_ptr.(j + 1) <- c_ptr.(j + 1) + c_ptr.(j)
  done;
  let c_rows = Array.make m 0 in
  let fill = Array.copy c_ptr in
  for i = 0 to n - 1 do
    for t = pat.row_ptr.(i) to pat.row_ptr.(i + 1) - 1 do
      let j = pat.col_idx.(t) in
      c_rows.(fill.(j)) <- i;
      fill.(j) <- fill.(j) + 1
    done
  done;
  let row_of_col = Array.make n (-1) in
  let col_of_row = Array.make n (-1) in
  let visited = Array.make n (-1) in
  let rec augment stamp j =
    let found = ref false in
    let t = ref c_ptr.(j) in
    while (not !found) && !t < c_ptr.(j + 1) do
      let r = c_rows.(!t) in
      if visited.(r) <> stamp then begin
        visited.(r) <- stamp;
        if col_of_row.(r) = -1 || augment stamp col_of_row.(r) then begin
          col_of_row.(r) <- j;
          row_of_col.(j) <- r;
          found := true
        end
      end;
      incr t
    done;
    !found
  in
  for j = 0 to n - 1 do
    ignore (augment j j)
  done;
  (* assign leftover rows to unmatched columns *)
  let free = ref [] in
  for r = n - 1 downto 0 do
    if col_of_row.(r) = -1 then free := r :: !free
  done;
  for j = 0 to n - 1 do
    if row_of_col.(j) = -1 then
      match !free with
      | r :: rest ->
        row_of_col.(j) <- r;
        free := rest
      | [] -> assert false
  done;
  row_of_col

(* Minimum-degree ordering of the symmetrized matched graph: vertices
   are the matched pivots, elimination turns a vertex's neighbourhood
   into a clique.  Deterministic: ties break towards the smallest
   vertex index. *)
let min_degree_order pat row_of_col =
  let n = pat.n in
  let adj = Array.init n (fun _ -> Bits.make n) in
  for j = 0 to n - 1 do
    let r = row_of_col.(j) in
    for t = pat.row_ptr.(r) to pat.row_ptr.(r + 1) - 1 do
      let c = pat.col_idx.(t) in
      Bits.set adj.(j) c;
      Bits.set adj.(c) j
    done;
    Bits.set adj.(j) j
  done;
  let alive = Array.make n true in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let bestv = ref (-1) and bestd = ref max_int in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let d = Bits.popcount adj.(v) in
        if d < !bestd then begin
          bestd := d;
          bestv := v
        end
      end
    done;
    let v = !bestv in
    order.(k) <- v;
    alive.(v) <- false;
    for u = 0 to n - 1 do
      if alive.(u) && Bits.test adj.(v) u then begin
        Bits.union adj.(u) adj.(v);
        Bits.clear_bit adj.(u) v
      end
    done
  done;
  order

(* Exact elimination pattern of the permuted matrix under the static
   pivot order (classic up-looking row merge: row k absorbs the tails of
   every filled row j < k it reaches). *)
let symbolic_fill pat ~rowperm ~colperm_inv =
  let n = pat.n in
  let rows = Array.init n (fun _ -> Bits.make n) in
  for k = 0 to n - 1 do
    let r = rowperm.(k) in
    for t = pat.row_ptr.(r) to pat.row_ptr.(r + 1) - 1 do
      Bits.set rows.(k) colperm_inv.(pat.col_idx.(t))
    done;
    Bits.set rows.(k) k;
    for j = 0 to k - 1 do
      if Bits.test rows.(k) j then Bits.union_above rows.(k) rows.(j) j
    done
  done;
  csr_of_bits n rows

let build_symbolic ordering pat =
  let n = pat.n in
  match ordering with
  | Natural ->
    let f_row_ptr, f_col_idx = symbolic_natural pat in
    let m = nnz pat in
    let a2f = Array.make m 0 in
    for i = 0 to n - 1 do
      for t = pat.row_ptr.(i) to pat.row_ptr.(i + 1) - 1 do
        a2f.(t) <- search f_col_idx f_row_ptr.(i) f_row_ptr.(i + 1)
                     pat.col_idx.(t)
      done
    done;
    (* static column lists over the filled pattern, rows ascending *)
    let f_nnz = f_row_ptr.(n) in
    let fc_ptr = Array.make (n + 1) 0 in
    for t = 0 to f_nnz - 1 do
      fc_ptr.(f_col_idx.(t) + 1) <- fc_ptr.(f_col_idx.(t) + 1) + 1
    done;
    for j = 0 to n - 1 do
      fc_ptr.(j + 1) <- fc_ptr.(j + 1) + fc_ptr.(j)
    done;
    let fc_rows = Array.make f_nnz 0 in
    let fc_slots = Array.make f_nnz 0 in
    let fill = Array.copy fc_ptr in
    for i = 0 to n - 1 do
      for t = f_row_ptr.(i) to f_row_ptr.(i + 1) - 1 do
        let j = f_col_idx.(t) in
        fc_rows.(fill.(j)) <- i;
        fc_slots.(fill.(j)) <- t;
        fill.(j) <- fill.(j) + 1
      done
    done;
    { ordering;
      pat;
      f_row_ptr;
      f_col_idx;
      f_nnz;
      a2f;
      rowperm = Array.init n (fun i -> i);
      colperm = Array.init n (fun i -> i);
      f_diag = [||];
      fc_ptr;
      fc_rows;
      fc_slots }
  | Min_degree ->
    let row_of_col = transversal pat in
    let order = min_degree_order pat row_of_col in
    let colperm = order in
    let rowperm = Array.map (fun j -> row_of_col.(j)) order in
    let colperm_inv = Array.make n 0 in
    Array.iteri (fun k j -> colperm_inv.(j) <- k) colperm;
    let f_row_ptr, f_col_idx = symbolic_fill pat ~rowperm ~colperm_inv in
    let rowperm_inv = Array.make n 0 in
    Array.iteri (fun k r -> rowperm_inv.(r) <- k) rowperm;
    let m = nnz pat in
    let a2f = Array.make m 0 in
    for i = 0 to n - 1 do
      let ki = rowperm_inv.(i) in
      for t = pat.row_ptr.(i) to pat.row_ptr.(i + 1) - 1 do
        a2f.(t) <- search f_col_idx f_row_ptr.(ki) f_row_ptr.(ki + 1)
                     colperm_inv.(pat.col_idx.(t))
      done
    done;
    let f_diag = Array.make n 0 in
    for k = 0 to n - 1 do
      f_diag.(k) <- search f_col_idx f_row_ptr.(k) f_row_ptr.(k + 1) k
    done;
    { ordering;
      pat;
      f_row_ptr;
      f_col_idx;
      f_nnz = f_row_ptr.(n);
      a2f;
      rowperm;
      colperm;
      f_diag;
      fc_ptr = [||];
      fc_rows = [||];
      fc_slots = [||] }

(* Per-domain symbolic cache: the analyses rebuild their stamped pattern
   from the circuit on every solve, so repeated same-structure solves
   (Newton restarts, Monte Carlo samples, sweep points) hit here and pay
   only a structural comparison. *)
let cache_key :
    (ordering * int * int, (pattern * symbolic) list ref) Hashtbl.t
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let same_pattern p q = p.row_ptr = q.row_ptr && p.col_idx = q.col_idx

let symbolic ordering pat =
  let tbl = Domain.DLS.get cache_key in
  let key = (ordering, pat.n, nnz pat) in
  let bucket =
    match Hashtbl.find_opt tbl key with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.add tbl key b;
      b
  in
  match List.find_opt (fun (p, _) -> same_pattern p pat) !bucket with
  | Some (_, sym) ->
    if (Obs.Config.enabled ()) then Obs.Metrics.incr "linalg.sparse.symbolic_hits";
    sym
  | None ->
    let build () = build_symbolic ordering pat in
    let sym =
      if not (Obs.Config.enabled ()) then build ()
      else begin
        Obs.Metrics.incr "linalg.sparse.symbolic_builds";
        let t0 = Obs.Clock.monotonic_s () in
        Fun.protect
          ~finally:(fun () ->
            Obs.Metrics.add "linalg.sparse.symbolic_s"
              (Obs.Clock.monotonic_s () -. t0))
          build
      end
    in
    if (Obs.Config.enabled ()) then begin
      Obs.Metrics.set "linalg.sparse.nnz" (float_of_int (nnz pat));
      Obs.Metrics.set "linalg.sparse.fill_nnz" (float_of_int sym.f_nnz)
    end;
    bucket := (pat, sym) :: !bucket;
    sym

let count_numeric seconds =
  Obs.Metrics.incr "linalg.sparse.refactors";
  Obs.Metrics.add "linalg.sparse.numeric_s" seconds

(* A static pivot order cannot exchange rows when a pivot turns out
   numerically poor, so element growth is unbounded in principle: an MNA
   Jacobian whose transversal lands on a gmin-sized diagonal entry can
   produce multipliers of 1e9 and a factorization with no correct digits
   — while staying finite, so nothing downstream notices.  Any
   multiplier beyond this bound rejects the factorization with
   {!Dense.Singular}; the Newton/AC drivers answer by refactoring the
   same values under the pivoting natural order.  Growth below the bound
   costs at most ~1e6 * eps backward error, which the iterative
   refinement in the min-degree solve paths repairs.  The comparison is
   negated so a NaN multiplier (overflow feeding 0/0 or inf - inf) also
   rejects. *)
let growth_limit = 1e6

(* ------------------------------------------------------------------ *)
(* Real numeric phase                                                  *)
(* ------------------------------------------------------------------ *)

module Real = struct
  type t = {
    sym : symbolic;
    lu : float array;  (* values on the filled pattern *)
    piv : int array;  (* [Natural]: virtual row -> physical row *)
    vinv : int array;  (* [Natural]: physical row -> virtual row *)
    udiag_slot : int array;  (* [Natural]: slot of the k-th U diagonal *)
    udiag : float array;  (* [Min_degree]: U diagonal values *)
    avals : float array;
        (* [Min_degree]: stamped values retained for the iterative
           refinement residual *)
  }

  let create sym =
    let n = sym.pat.n in
    { sym;
      lu = Array.make sym.f_nnz 0.0;
      piv = Array.make n 0;
      vinv = Array.make n 0;
      udiag_slot = Array.make n 0;
      udiag = Array.make n 0.0;
      avals = Array.make (Array.length sym.a2f) 0.0 }

  (* Natural order with virtual partial pivoting: the exact mirror of
     [Dense_f.factor_core] restricted to structural positions.  [piv]
     plays the role of the dense row permutation ([piv.(vi)] is the
     physical row currently at virtual position [vi]); candidate rows
     are scanned in ascending virtual order so the first strict maximum
     wins exactly as in the dense scan. *)
  let refactor_natural t ~vals =
    let sym = t.sym in
    let n = sym.pat.n in
    let ws = Ws.sparse_real n in
    let lu = t.lu in
    Array.fill lu 0 sym.f_nnz 0.0;
    let a2f = sym.a2f in
    for s = 0 to Array.length a2f - 1 do
      lu.(a2f.(s)) <- vals.(s)
    done;
    let piv = t.piv and vinv = t.vinv in
    for i = 0 to n - 1 do
      piv.(i) <- i;
      vinv.(i) <- i
    done;
    let frp = sym.f_row_ptr and fci = sym.f_col_idx in
    let pos = ws.Ws.spos in
    let cand = ws.Ws.scand
    and ckey = ws.Ws.scand_key
    and cslot = ws.Ws.scand_slot in
    for k = 0 to n - 1 do
      (* collect pivot candidates: filled column k, still-active rows *)
      let nc = ref 0 in
      for u = sym.fc_ptr.(k) to sym.fc_ptr.(k + 1) - 1 do
        let r = sym.fc_rows.(u) in
        let vi = vinv.(r) in
        if vi >= k then begin
          cand.(!nc) <- r;
          ckey.(!nc) <- vi;
          cslot.(!nc) <- sym.fc_slots.(u);
          incr nc
        end
      done;
      let nc = !nc in
      (* ascending virtual order (dense scan order); insertion sort — the
         candidate lists are short *)
      for a = 1 to nc - 1 do
        let cr = cand.(a) and ck = ckey.(a) and cs = cslot.(a) in
        let b = ref (a - 1) in
        while !b >= 0 && ckey.(!b) > ck do
          cand.(!b + 1) <- cand.(!b);
          ckey.(!b + 1) <- ckey.(!b);
          cslot.(!b + 1) <- cslot.(!b);
          decr b
        done;
        cand.(!b + 1) <- cr;
        ckey.(!b + 1) <- ck;
        cslot.(!b + 1) <- cs
      done;
      (* pivot selection: best starts at |a[k][k]| (0 when structurally
         absent), later rows must beat it strictly *)
      let start = ref 0 in
      let best = ref 0.0 and pvi = ref k and pslot = ref (-1) in
      if nc > 0 && ckey.(0) = k then begin
        best := Float.abs lu.(cslot.(0));
        pslot := cslot.(0);
        start := 1
      end;
      for a = !start to nc - 1 do
        let v = Float.abs lu.(cslot.(a)) in
        if v > !best then begin
          best := v;
          pvi := ckey.(a);
          pslot := cslot.(a)
        end
      done;
      if !best < 1e-300 then raise (Dense.Singular k);
      if !pvi <> k then begin
        let p = !pvi in
        let tr = piv.(k) in
        piv.(k) <- piv.(p);
        piv.(p) <- tr;
        vinv.(piv.(k)) <- k;
        vinv.(piv.(p)) <- p
      end;
      let pr = piv.(k) in
      t.udiag_slot.(k) <- !pslot;
      let akk = lu.(!pslot) in
      (* pivot-row active tail: columns > k *)
      let prs = ref frp.(pr) in
      let pre = frp.(pr + 1) in
      while !prs < pre && fci.(!prs) <= k do
        incr prs
      done;
      let prs = !prs in
      for a = 0 to nc - 1 do
        let r = cand.(a) in
        if vinv.(r) <> k then begin
          let s_rk = cslot.(a) in
          let f = lu.(s_rk) /. akk in
          lu.(s_rk) <- f;
          if Float.abs f > 0.0 then begin
            for u = frp.(r) to frp.(r + 1) - 1 do
              pos.(fci.(u)) <- u
            done;
            for u = prs to pre - 1 do
              let sl = pos.(fci.(u)) in
              lu.(sl) <- lu.(sl) -. (f *. lu.(u))
            done;
            for u = frp.(r) to frp.(r + 1) - 1 do
              pos.(fci.(u)) <- -1
            done
          end
        end
      done
    done

  (* Static order, up-looking row factorization: row k of the permuted
     matrix is scattered into the work vector, reduced by every earlier
     U row it reaches (ascending, the classic in-place Doolittle row
     recurrence) and gathered back.  The symbolic closure guarantees
     every update lands on a preallocated slot. *)
  let refactor_md t ~vals =
    let sym = t.sym in
    let n = sym.pat.n in
    let ws = Ws.sparse_real n in
    let lu = t.lu in
    Array.fill lu 0 sym.f_nnz 0.0;
    let a2f = sym.a2f in
    Array.blit vals 0 t.avals 0 (Array.length a2f);
    for s = 0 to Array.length a2f - 1 do
      lu.(a2f.(s)) <- vals.(s)
    done;
    let frp = sym.f_row_ptr and fci = sym.f_col_idx in
    let fd = sym.f_diag in
    let work = ws.Ws.swork in
    let udiag = t.udiag in
    for k = 0 to n - 1 do
      for u = frp.(k) to frp.(k + 1) - 1 do
        work.(fci.(u)) <- lu.(u)
      done;
      for u = frp.(k) to fd.(k) - 1 do
        let j = fci.(u) in
        let f = work.(j) /. udiag.(j) in
        if not (Float.abs f <= growth_limit) then raise (Dense.Singular j);
        work.(j) <- f;
        if Float.abs f > 0.0 then
          for v = fd.(j) + 1 to frp.(j + 1) - 1 do
            let c = fci.(v) in
            work.(c) <- work.(c) -. (f *. lu.(v))
          done
      done;
      for u = frp.(k) to frp.(k + 1) - 1 do
        lu.(u) <- work.(fci.(u))
      done;
      let d = lu.(fd.(k)) in
      if Float.abs d < 1e-300 then raise (Dense.Singular k);
      udiag.(k) <- d
    done

  let refactor_core t ~vals =
    match t.sym.ordering with
    | Natural -> refactor_natural t ~vals
    | Min_degree -> refactor_md t ~vals

  let refactor t ~vals =
    if not (Obs.Config.enabled ()) then refactor_core t ~vals
    else begin
      let t0 = Obs.Clock.monotonic_s () in
      Fun.protect
        ~finally:(fun () -> count_numeric (Obs.Clock.monotonic_s () -. t0))
        (fun () -> refactor_core t ~vals)
    end

  (* [Min_degree] forward/back substitution on the permuted vector [y],
     in place *)
  let md_apply t y =
    let sym = t.sym in
    let n = sym.pat.n in
    let lu = t.lu in
    let frp = sym.f_row_ptr and fci = sym.f_col_idx in
    let fd = sym.f_diag in
    for k = 1 to n - 1 do
      let acc = ref y.(k) in
      for u = frp.(k) to fd.(k) - 1 do
        acc := !acc -. (lu.(u) *. y.(fci.(u)))
      done;
      y.(k) <- !acc
    done;
    for k = n - 1 downto 0 do
      let acc = ref y.(k) in
      for u = fd.(k) + 1 to frp.(k + 1) - 1 do
        acc := !acc -. (lu.(u) *. y.(fci.(u)))
      done;
      y.(k) <- !acc /. t.udiag.(k)
    done

  (* forward/back substitution; the [Natural] branch mirrors
     [Dense_f.lu_solve_into] on the virtual permutation *)
  let solve_into t ~b ~x =
    let sym = t.sym in
    let n = sym.pat.n in
    if (Obs.Config.enabled ()) then Obs.Metrics.incr "linalg.sparse.solves";
    let lu = t.lu in
    let frp = sym.f_row_ptr and fci = sym.f_col_idx in
    match sym.ordering with
    | Natural ->
      let piv = t.piv in
      for i = 0 to n - 1 do
        x.(i) <- b.(piv.(i))
      done;
      for i = 1 to n - 1 do
        let acc = ref x.(i) in
        let r = piv.(i) in
        let u = ref frp.(r) in
        let e = frp.(r + 1) in
        while !u < e && fci.(!u) < i do
          acc := !acc -. (lu.(!u) *. x.(fci.(!u)));
          incr u
        done;
        x.(i) <- !acc
      done;
      for i = n - 1 downto 0 do
        let acc = ref x.(i) in
        let ds = t.udiag_slot.(i) in
        let r = piv.(i) in
        for u = ds + 1 to frp.(r + 1) - 1 do
          acc := !acc -. (lu.(u) *. x.(fci.(u)))
        done;
        x.(i) <- !acc /. lu.(ds)
      done
    | Min_degree ->
      let ws = Ws.sparse_real n in
      let y = ws.Ws.sy in
      for k = 0 to n - 1 do
        y.(k) <- b.(sym.rowperm.(k))
      done;
      md_apply t y;
      for k = 0 to n - 1 do
        x.(sym.colperm.(k)) <- y.(k)
      done;
      (* iterative refinement: the static pivot order can let element
         growth eat digits that dense partial pivoting would keep; a few
         substitution passes over the residual restore them at a
         fraction of the refactorization cost.  Stop when the residual
         norm no longer shrinks (ill conditioning, not pivot growth). *)
      let r = ws.Ws.swork in
      let rp = sym.pat.row_ptr and ci = sym.pat.col_idx in
      let av = t.avals in
      let prev_norm = ref infinity in
      let continue_ = ref true in
      let pass = ref 0 in
      while !continue_ && !pass < 3 do
        incr pass;
        let norm = ref 0.0 in
        for i = 0 to n - 1 do
          let acc = ref b.(i) in
          for u = rp.(i) to rp.(i + 1) - 1 do
            acc := !acc -. (av.(u) *. x.(ci.(u)))
          done;
          r.(i) <- !acc;
          let a = Float.abs !acc in
          if a > !norm then norm := a
        done;
        if !norm >= !prev_norm || !norm = 0.0 then continue_ := false
        else begin
          prev_norm := !norm;
          for k = 0 to n - 1 do
            y.(k) <- r.(sym.rowperm.(k))
          done;
          md_apply t y;
          for k = 0 to n - 1 do
            let c = sym.colperm.(k) in
            x.(c) <- x.(c) +. y.(k)
          done
        end
      done
end

(* ------------------------------------------------------------------ *)
(* Complex numeric phase (split re/im planes)                          *)
(* ------------------------------------------------------------------ *)

module Cx = struct
  type t = {
    sym : symbolic;
    lu_re : float array;
    lu_im : float array;
    piv : int array;
    vinv : int array;
    udiag_slot : int array;
    udiag_re : float array;
    udiag_im : float array;
    a_re : float array;
    a_im : float array;
        (* [Min_degree]: stamped planes retained for the iterative
           refinement residual *)
  }

  let create sym =
    let n = sym.pat.n in
    { sym;
      lu_re = Array.make sym.f_nnz 0.0;
      lu_im = Array.make sym.f_nnz 0.0;
      piv = Array.make n 0;
      vinv = Array.make n 0;
      udiag_slot = Array.make n 0;
      udiag_re = Array.make n 0.0;
      udiag_im = Array.make n 0.0;
      a_re = Array.make (Array.length sym.a2f) 0.0;
      a_im = Array.make (Array.length sym.a2f) 0.0 }

  (* mirror of [Dense_c.factor_core]: [Float.hypot] pivot magnitudes and
     the stdlib [Complex.div] scaled division, branch for branch *)
  let refactor_natural t ~re ~im =
    let sym = t.sym in
    let n = sym.pat.n in
    let ws = Ws.sparse_cx n in
    let lre = t.lu_re and lim = t.lu_im in
    Array.fill lre 0 sym.f_nnz 0.0;
    Array.fill lim 0 sym.f_nnz 0.0;
    let a2f = sym.a2f in
    for s = 0 to Array.length a2f - 1 do
      lre.(a2f.(s)) <- re.(s);
      lim.(a2f.(s)) <- im.(s)
    done;
    let piv = t.piv and vinv = t.vinv in
    for i = 0 to n - 1 do
      piv.(i) <- i;
      vinv.(i) <- i
    done;
    let frp = sym.f_row_ptr and fci = sym.f_col_idx in
    let pos = ws.Ws.cpos in
    let cand = ws.Ws.ccand
    and ckey = ws.Ws.ccand_key
    and cslot = ws.Ws.ccand_slot in
    for k = 0 to n - 1 do
      let nc = ref 0 in
      for u = sym.fc_ptr.(k) to sym.fc_ptr.(k + 1) - 1 do
        let r = sym.fc_rows.(u) in
        let vi = vinv.(r) in
        if vi >= k then begin
          cand.(!nc) <- r;
          ckey.(!nc) <- vi;
          cslot.(!nc) <- sym.fc_slots.(u);
          incr nc
        end
      done;
      let nc = !nc in
      for a = 1 to nc - 1 do
        let cr = cand.(a) and ck = ckey.(a) and cs = cslot.(a) in
        let b = ref (a - 1) in
        while !b >= 0 && ckey.(!b) > ck do
          cand.(!b + 1) <- cand.(!b);
          ckey.(!b + 1) <- ckey.(!b);
          cslot.(!b + 1) <- cslot.(!b);
          decr b
        done;
        cand.(!b + 1) <- cr;
        ckey.(!b + 1) <- ck;
        cslot.(!b + 1) <- cs
      done;
      let start = ref 0 in
      let best = ref 0.0 and pvi = ref k and pslot = ref (-1) in
      if nc > 0 && ckey.(0) = k then begin
        best := Float.hypot lre.(cslot.(0)) lim.(cslot.(0));
        pslot := cslot.(0);
        start := 1
      end;
      for a = !start to nc - 1 do
        let v = Float.hypot lre.(cslot.(a)) lim.(cslot.(a)) in
        if v > !best then begin
          best := v;
          pvi := ckey.(a);
          pslot := cslot.(a)
        end
      done;
      if !best < 1e-300 then raise (Dense.Singular k);
      if !pvi <> k then begin
        let p = !pvi in
        let tr = piv.(k) in
        piv.(k) <- piv.(p);
        piv.(p) <- tr;
        vinv.(piv.(k)) <- k;
        vinv.(piv.(p)) <- p
      end;
      let pr = piv.(k) in
      t.udiag_slot.(k) <- !pslot;
      let akk_re = lre.(!pslot) and akk_im = lim.(!pslot) in
      let prs = ref frp.(pr) in
      let pre = frp.(pr + 1) in
      while !prs < pre && fci.(!prs) <= k do
        incr prs
      done;
      let prs = !prs in
      for a = 0 to nc - 1 do
        let r = cand.(a) in
        if vinv.(r) <> k then begin
          let s_rk = cslot.(a) in
          let xr = lre.(s_rk) and xi = lim.(s_rk) in
          if Float.abs akk_re >= Float.abs akk_im then begin
            let q = akk_im /. akk_re in
            let d = akk_re +. (q *. akk_im) in
            lre.(s_rk) <- (xr +. (q *. xi)) /. d;
            lim.(s_rk) <- (xi -. (q *. xr)) /. d
          end
          else begin
            let q = akk_re /. akk_im in
            let d = akk_im +. (q *. akk_re) in
            lre.(s_rk) <- ((q *. xr) +. xi) /. d;
            lim.(s_rk) <- ((q *. xi) -. xr) /. d
          end;
          let fr = lre.(s_rk) and fi = lim.(s_rk) in
          if Float.hypot fr fi > 0.0 then begin
            for u = frp.(r) to frp.(r + 1) - 1 do
              pos.(fci.(u)) <- u
            done;
            for u = prs to pre - 1 do
              let sl = pos.(fci.(u)) in
              let ar = lre.(u) and ai = lim.(u) in
              lre.(sl) <- lre.(sl) -. ((fr *. ar) -. (fi *. ai));
              lim.(sl) <- lim.(sl) -. ((fr *. ai) +. (fi *. ar))
            done;
            for u = frp.(r) to frp.(r + 1) - 1 do
              pos.(fci.(u)) <- -1
            done
          end
        end
      done
    done

  let refactor_md t ~re ~im =
    let sym = t.sym in
    let n = sym.pat.n in
    let ws = Ws.sparse_cx n in
    let lre = t.lu_re and lim = t.lu_im in
    Array.fill lre 0 sym.f_nnz 0.0;
    Array.fill lim 0 sym.f_nnz 0.0;
    let a2f = sym.a2f in
    Array.blit re 0 t.a_re 0 (Array.length a2f);
    Array.blit im 0 t.a_im 0 (Array.length a2f);
    for s = 0 to Array.length a2f - 1 do
      lre.(a2f.(s)) <- re.(s);
      lim.(a2f.(s)) <- im.(s)
    done;
    let frp = sym.f_row_ptr and fci = sym.f_col_idx in
    let fd = sym.f_diag in
    let wre = ws.Ws.cwork_re and wim = ws.Ws.cwork_im in
    for k = 0 to n - 1 do
      for u = frp.(k) to frp.(k + 1) - 1 do
        let c = fci.(u) in
        wre.(c) <- lre.(u);
        wim.(c) <- lim.(u)
      done;
      for u = frp.(k) to fd.(k) - 1 do
        let j = fci.(u) in
        let dr = t.udiag_re.(j) and di = t.udiag_im.(j) in
        let xr = wre.(j) and xi = wim.(j) in
        if Float.abs dr >= Float.abs di then begin
          let q = di /. dr in
          let d = dr +. (q *. di) in
          wre.(j) <- (xr +. (q *. xi)) /. d;
          wim.(j) <- (xi -. (q *. xr)) /. d
        end
        else begin
          let q = dr /. di in
          let d = di +. (q *. dr) in
          wre.(j) <- ((q *. xr) +. xi) /. d;
          wim.(j) <- ((q *. xi) -. xr) /. d
        end;
        let fr = wre.(j) and fi = wim.(j) in
        if not (Float.abs fr <= growth_limit && Float.abs fi <= growth_limit)
        then raise (Dense.Singular j);
        if Float.hypot fr fi > 0.0 then
          for v = fd.(j) + 1 to frp.(j + 1) - 1 do
            let c = fci.(v) in
            let ar = lre.(v) and ai = lim.(v) in
            wre.(c) <- wre.(c) -. ((fr *. ar) -. (fi *. ai));
            wim.(c) <- wim.(c) -. ((fr *. ai) +. (fi *. ar))
          done
      done;
      for u = frp.(k) to frp.(k + 1) - 1 do
        let c = fci.(u) in
        lre.(u) <- wre.(c);
        lim.(u) <- wim.(c)
      done;
      let dr = lre.(fd.(k)) and di = lim.(fd.(k)) in
      if Float.hypot dr di < 1e-300 then raise (Dense.Singular k);
      t.udiag_re.(k) <- dr;
      t.udiag_im.(k) <- di
    done

  let refactor_core t ~re ~im =
    match t.sym.ordering with
    | Natural -> refactor_natural t ~re ~im
    | Min_degree -> refactor_md t ~re ~im

  let refactor t ~re ~im =
    if not (Obs.Config.enabled ()) then refactor_core t ~re ~im
    else begin
      let t0 = Obs.Clock.monotonic_s () in
      Fun.protect
        ~finally:(fun () -> count_numeric (Obs.Clock.monotonic_s () -. t0))
        (fun () -> refactor_core t ~re ~im)
    end

  (* [Min_degree] forward/back substitution on the permuted planes, in
     place; the final division replays the stdlib [Complex.div]
     branches, inlined so the hot loop stays closure- and box-free *)
  let md_apply t y_re y_im =
    let sym = t.sym in
    let n = sym.pat.n in
    let lre = t.lu_re and lim = t.lu_im in
    let frp = sym.f_row_ptr and fci = sym.f_col_idx in
    let fd = sym.f_diag in
    for k = 1 to n - 1 do
      let acc_r = ref y_re.(k) and acc_i = ref y_im.(k) in
      for u = frp.(k) to fd.(k) - 1 do
        let j = fci.(u) in
        let ar = lre.(u) and ai = lim.(u) in
        let xr = y_re.(j) and xi = y_im.(j) in
        acc_r := !acc_r -. ((ar *. xr) -. (ai *. xi));
        acc_i := !acc_i -. ((ar *. xi) +. (ai *. xr))
      done;
      y_re.(k) <- !acc_r;
      y_im.(k) <- !acc_i
    done;
    for k = n - 1 downto 0 do
      let acc_r = ref y_re.(k) and acc_i = ref y_im.(k) in
      for u = fd.(k) + 1 to frp.(k + 1) - 1 do
        let j = fci.(u) in
        let ar = lre.(u) and ai = lim.(u) in
        let xr = y_re.(j) and xi = y_im.(j) in
        acc_r := !acc_r -. ((ar *. xr) -. (ai *. xi));
        acc_i := !acc_i -. ((ar *. xi) +. (ai *. xr))
      done;
      let dr = t.udiag_re.(k) and di = t.udiag_im.(k) in
      if Float.abs dr >= Float.abs di then begin
        let q = di /. dr in
        let d = dr +. (q *. di) in
        y_re.(k) <- (!acc_r +. (q *. !acc_i)) /. d;
        y_im.(k) <- (!acc_i -. (q *. !acc_r)) /. d
      end
      else begin
        let q = dr /. di in
        let d = di +. (q *. dr) in
        y_re.(k) <- ((q *. !acc_r) +. !acc_i) /. d;
        y_im.(k) <- ((q *. !acc_i) -. !acc_r) /. d
      end
    done

  (* mirror of [Dense_c.lu_solve_into]: the final division replays the
     stdlib [Complex.div] branches *)
  let solve_into t ~b_re ~b_im ~x_re ~x_im =
    let sym = t.sym in
    let n = sym.pat.n in
    if (Obs.Config.enabled ()) then Obs.Metrics.incr "linalg.sparse.solves";
    let lre = t.lu_re and lim = t.lu_im in
    let frp = sym.f_row_ptr and fci = sym.f_col_idx in
    match sym.ordering with
    | Natural ->
      let piv = t.piv in
      for i = 0 to n - 1 do
        let p = piv.(i) in
        x_re.(i) <- b_re.(p);
        x_im.(i) <- b_im.(p)
      done;
      for i = 1 to n - 1 do
        let acc_r = ref x_re.(i) and acc_i = ref x_im.(i) in
        let r = piv.(i) in
        let u = ref frp.(r) in
        let e = frp.(r + 1) in
        while !u < e && fci.(!u) < i do
          let j = fci.(!u) in
          let ar = lre.(!u) and ai = lim.(!u) in
          let xr = x_re.(j) and xi = x_im.(j) in
          acc_r := !acc_r -. ((ar *. xr) -. (ai *. xi));
          acc_i := !acc_i -. ((ar *. xi) +. (ai *. xr));
          incr u
        done;
        x_re.(i) <- !acc_r;
        x_im.(i) <- !acc_i
      done;
      for i = n - 1 downto 0 do
        let acc_r = ref x_re.(i) and acc_i = ref x_im.(i) in
        let ds = t.udiag_slot.(i) in
        let r = piv.(i) in
        for u = ds + 1 to frp.(r + 1) - 1 do
          let j = fci.(u) in
          let ar = lre.(u) and ai = lim.(u) in
          let xr = x_re.(j) and xi = x_im.(j) in
          acc_r := !acc_r -. ((ar *. xr) -. (ai *. xi));
          acc_i := !acc_i -. ((ar *. xi) +. (ai *. xr))
        done;
        let dr = lre.(ds) and di = lim.(ds) in
        if Float.abs dr >= Float.abs di then begin
          let q = di /. dr in
          let d = dr +. (q *. di) in
          x_re.(i) <- (!acc_r +. (q *. !acc_i)) /. d;
          x_im.(i) <- (!acc_i -. (q *. !acc_r)) /. d
        end
        else begin
          let q = dr /. di in
          let d = di +. (q *. dr) in
          x_re.(i) <- ((q *. !acc_r) +. !acc_i) /. d;
          x_im.(i) <- ((q *. !acc_i) -. !acc_r) /. d
        end
      done
    | Min_degree ->
      let ws = Ws.sparse_cx n in
      let y_re = ws.Ws.cy_re and y_im = ws.Ws.cy_im in
      for k = 0 to n - 1 do
        let r = sym.rowperm.(k) in
        y_re.(k) <- b_re.(r);
        y_im.(k) <- b_im.(r)
      done;
      md_apply t y_re y_im;
      for k = 0 to n - 1 do
        let c = sym.colperm.(k) in
        x_re.(c) <- y_re.(k);
        x_im.(c) <- y_im.(k)
      done;
      (* iterative refinement against the retained stamped planes — see
         the real-valued twin for why and for the stopping rule *)
      let r_re = ws.Ws.cwork_re and r_im = ws.Ws.cwork_im in
      let rp = sym.pat.row_ptr and ci = sym.pat.col_idx in
      let are = t.a_re and aim = t.a_im in
      let prev_norm = ref infinity in
      let continue_ = ref true in
      let pass = ref 0 in
      while !continue_ && !pass < 3 do
        incr pass;
        let norm = ref 0.0 in
        for i = 0 to n - 1 do
          let acc_r = ref b_re.(i) and acc_i = ref b_im.(i) in
          for u = rp.(i) to rp.(i + 1) - 1 do
            let j = ci.(u) in
            let ar = are.(u) and ai = aim.(u) in
            let xr = x_re.(j) and xi = x_im.(j) in
            acc_r := !acc_r -. ((ar *. xr) -. (ai *. xi));
            acc_i := !acc_i -. ((ar *. xi) +. (ai *. xr))
          done;
          r_re.(i) <- !acc_r;
          r_im.(i) <- !acc_i;
          let a = Float.max (Float.abs !acc_r) (Float.abs !acc_i) in
          if a > !norm then norm := a
        done;
        if !norm >= !prev_norm || !norm = 0.0 then continue_ := false
        else begin
          prev_norm := !norm;
          for k = 0 to n - 1 do
            let r = sym.rowperm.(k) in
            y_re.(k) <- r_re.(r);
            y_im.(k) <- r_im.(r)
          done;
          md_apply t y_re y_im;
          for k = 0 to n - 1 do
            let c = sym.colperm.(k) in
            x_re.(c) <- x_re.(c) +. y_re.(k);
            x_im.(c) <- x_im.(c) +. y_im.(k)
          done
        end
      done
end

(* Unboxed real dense kernels on a flat row-major [floatarray].

   This is the specialized hot-path twin of [Dense.Make (Field.Real)]: the
   pivot choice, operation order and singularity threshold are copied
   verbatim from the functor so that both backends produce bit-identical
   results (the functor stays as the reference implementation; the test
   suite asserts agreement bit-for-bit).  Unlike the functor, factorisation
   happens in place and the triangular solves write into caller-provided
   vectors, so a caller that reuses its buffers (see {!Ws}) performs zero
   allocation per solve. *)

module FA = Float.Array

type t = { r : int; c : int; a : floatarray }

let create r c = { r; c; a = FA.make (r * c) 0.0 }
let rows m = m.r
let cols m = m.c
let clear m = FA.fill m.a 0 (m.r * m.c) 0.0

let get m i j = FA.get m.a ((i * m.c) + j)
let set m i j x = FA.set m.a ((i * m.c) + j) x

let add_to m i j x =
  let k = (i * m.c) + j in
  FA.set m.a k (FA.get m.a k +. x)

let blit ~src ~dst =
  assert (src.r = dst.r && src.c = dst.c);
  FA.blit src.a 0 dst.a 0 (src.r * src.c)

let of_arrays rows_a =
  let r = Array.length rows_a in
  assert (r > 0);
  let c = Array.length rows_a.(0) in
  let m = create r c in
  Array.iteri
    (fun i row ->
      assert (Array.length row = c);
      Array.iteri (fun j x -> FA.set m.a ((i * c) + j) x) row)
    rows_a;
  m

let to_arrays m =
  Array.init m.r (fun i -> Array.init m.c (fun j -> get m i j))

let matvec_into m x ~y =
  assert (Array.length x = m.c && Array.length y = m.r);
  let a = m.a and c = m.c in
  for i = 0 to m.r - 1 do
    let acc = ref 0.0 in
    let base = i * c in
    for j = 0 to c - 1 do
      acc := !acc +. (FA.unsafe_get a (base + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set y i !acc
  done

(* In-place Doolittle LU with partial pivoting — the flat mirror of
   [Dense.Make(F).lu_factor].  [piv] is an output: it is reset to the
   identity and then records the row permutation.  Raises
   [Dense.Singular k] under exactly the same condition as the functor. *)
let factor_core m ~piv =
  assert (m.r = m.c);
  let n = m.r in
  assert (Array.length piv = n);
  let a = m.a in
  for i = 0 to n - 1 do
    Array.unsafe_set piv i i
  done;
  for k = 0 to n - 1 do
    (* pivot selection *)
    let pivot = ref k and best = ref (Float.abs (FA.unsafe_get a ((k * n) + k))) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (FA.unsafe_get a ((i * n) + k)) in
      if v > !best then begin
        best := v;
        pivot := i
      end
    done;
    if !best < 1e-300 then raise (Dense.Singular k);
    if !pivot <> k then begin
      let p = !pivot in
      for j = 0 to n - 1 do
        let tmp = FA.unsafe_get a ((k * n) + j) in
        FA.unsafe_set a ((k * n) + j) (FA.unsafe_get a ((p * n) + j));
        FA.unsafe_set a ((p * n) + j) tmp
      done;
      let tp = Array.unsafe_get piv k in
      Array.unsafe_set piv k (Array.unsafe_get piv p);
      Array.unsafe_set piv p tp
    end;
    let akk = FA.unsafe_get a ((k * n) + k) in
    for i = k + 1 to n - 1 do
      let factor = FA.unsafe_get a ((i * n) + k) /. akk in
      FA.unsafe_set a ((i * n) + k) factor;
      if Float.abs factor > 0.0 then
        for j = k + 1 to n - 1 do
          FA.unsafe_set a ((i * n) + j)
            (FA.unsafe_get a ((i * n) + j)
             -. (factor *. FA.unsafe_get a ((k * n) + j)))
        done
    done
  done

let lu_factor_in_place m ~piv =
  if not (Obs.Config.enabled ()) then factor_core m ~piv
  else begin
    Obs.Metrics.incr "linalg.real.factors";
    let t0 = Obs.Clock.monotonic_s () in
    Fun.protect
      ~finally:(fun () ->
        Obs.Metrics.add "linalg.real.factor_s" (Obs.Clock.monotonic_s () -. t0))
      (fun () -> factor_core m ~piv)
  end

(* Forward/back substitution into [x] (must not alias [b]); same operation
   order as the functor's [lu_solve]. *)
let lu_solve_into m ~piv ~b ~x =
  let n = m.r in
  assert (Array.length b = n && Array.length x = n && Array.length piv = n);
  if (Obs.Config.enabled ()) then Obs.Metrics.incr "linalg.real.solves";
  let a = m.a in
  for i = 0 to n - 1 do
    Array.unsafe_set x i (Array.unsafe_get b (Array.unsafe_get piv i))
  done;
  (* forward substitution, unit lower triangle *)
  for i = 1 to n - 1 do
    let acc = ref (Array.unsafe_get x i) in
    for j = 0 to i - 1 do
      acc := !acc -. (FA.unsafe_get a ((i * n) + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i !acc
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let acc = ref (Array.unsafe_get x i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (FA.unsafe_get a ((i * n) + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i (!acc /. FA.unsafe_get a ((i * n) + i))
  done

(** CSR sparse LU with a symbolic/numeric split.

    The symbolic analysis runs once per matrix structure (ordering,
    elimination pattern, fill slots, slot maps) and is cached per domain;
    the numeric phase refactors any number of value sets over the frozen
    pattern — one refactorization per Newton iterate, transient step or
    AC frequency point — without allocating (scratch comes from {!Ws}).

    [Natural] ordering replicates the dense kernels' partial-pivoting
    rule over a pivot-independent upper-bound fill pattern and is
    bit-identical to {!Dense_f}/{!Dense_c} (the verification mode);
    [Min_degree] applies a maximum transversal plus minimum-degree
    ordering with a static pivot order (the performance mode).  A
    static order cannot repivot, so the numeric phase guards itself: a
    tiny pivot or a multiplier beyond the element-growth bound rejects
    the factorization with {!Dense.Singular}, and the analysis drivers
    answer by refactoring the same values under the pivoting natural
    order.  Growth below the bound is repaired at solve time by
    residual-monitored iterative refinement (up to three passes against
    the retained stamped values), so admissible growth costs extra
    substitution passes instead of solution digits.

    Telemetry (when enabled): [linalg.sparse.nnz] / [.fill_nnz] gauges,
    [.symbolic_builds] / [.symbolic_hits] / [.symbolic_s] for the
    analysis phase, [.refactors] / [.numeric_s] / [.solves] for the
    numeric phase. *)

type ordering = Natural | Min_degree

val ordering_name : ordering -> string

type pattern = private { n : int; row_ptr : int array; col_idx : int array }
(** Sparsity structure in CSR form; columns sorted within each row.
    Values live in caller-owned arrays indexed by slot (the position in
    [col_idx]). *)

val of_coords : n:int -> (int * int) list -> pattern
(** Build a pattern from (row, column) coordinates; duplicates are
    merged.  Raises [Invalid_argument] on out-of-range indices. *)

val nnz : pattern -> int

val slot : pattern -> int -> int -> int
(** [slot p i j] is the value-array index of entry [(i, j)], or [-1]
    when the entry is not in the pattern. *)

val slot_exn : pattern -> int -> int -> int
(** Like {!slot} but raises [Invalid_argument] on absent entries. *)

type symbolic
(** Result of the symbolic analysis over a pattern: the filled
    elimination structure every numeric factor of that pattern reuses. *)

val symbolic : ordering -> pattern -> symbolic
(** Analyse a pattern (cached per domain: same-structure requests pay
    one structural comparison, so per-solve pattern rebuilds are free). *)

val fill_nnz : symbolic -> int
(** Nonzeros of the filled pattern (stamped entries plus fill-in). *)

val sym_ordering : symbolic -> ordering

module Real : sig
  type t

  val create : symbolic -> t
  (** Allocate numeric storage for one factorization of the analysed
      structure.  The handle owns its LU values, so concurrently live
      factors never clobber each other; scratch is per-domain. *)

  val refactor : t -> vals:float array -> unit
  (** Numeric (re)factorization of the stamped values ([vals] indexed by
      pattern slot, left untouched).  Raises {!Dense.Singular}. *)

  val solve_into : t -> b:float array -> x:float array -> unit
  (** Solve with the current factors into [x] ([b] is not modified;
      the two must not alias). *)
end

module Cx : sig
  type t

  val create : symbolic -> t

  val refactor : t -> re:float array -> im:float array -> unit
  (** Complex refactorization from split re/im value planes. *)

  val solve_into :
    t ->
    b_re:float array ->
    b_im:float array ->
    x_re:float array ->
    x_im:float array ->
    unit
end

(** Unboxed real dense kernels: row-major flat [floatarray] storage,
    MNA stamp accumulation, in-place LU with partial pivoting and
    triangular solves into caller-provided vectors.

    This is the hot-path twin of [Dense.Make (Field.Real)].  Pivot choice,
    operation order and the singularity threshold are identical, so both
    backends produce bit-identical results; the functor remains the
    reference implementation.  With reused buffers (see {!Ws}) the
    factor/solve path allocates nothing. *)

type t
(** Mutable dense matrix over a flat [floatarray]. *)

val create : int -> int -> t
(** [create rows cols] is a zero-filled matrix. *)

val rows : t -> int
val cols : t -> int

val clear : t -> unit
(** Reset every entry to [0.0] (buffer reuse between Newton iterates). *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] accumulates [x] into [m.(i).(j)] — the MNA "stamp"
    primitive. *)

val blit : src:t -> dst:t -> unit
(** Copy [src] over [dst] (same dimensions). *)

val of_arrays : float array array -> t
val to_arrays : t -> float array array

val matvec_into : t -> float array -> y:float array -> unit
(** [matvec_into m x ~y] writes [m x] into [y] without allocating. *)

val lu_factor_in_place : t -> piv:int array -> unit
(** Factor in place with partial pivoting, destroying the matrix contents.
    [piv] is an output buffer of length [rows]; it is reset to the identity
    and records the row permutation.  Raises {!Dense.Singular} under
    exactly the same condition as the functor. *)

val lu_solve_into : t -> piv:int array -> b:float array -> x:float array -> unit
(** Forward/back substitution of a factored matrix into [x] ([x] must not
    alias [b]).  Zero allocation. *)

(** Unboxed complex dense kernels: split re/im flat [floatarray] planes,
    in-place LU with partial pivoting and triangular solves into
    caller-provided split vectors.

    Hot-path twin of [Dense.Make (Field.Cx)].  The stdlib [Complex]
    primitives the functor uses (add, sub, mul, the scaled division,
    [norm] pivot magnitudes) are reproduced inline on the split
    representation in the same operation order, so both backends produce
    bit-identical factors and solutions; the functor remains the
    reference.  With reused buffers (see {!Ws}) the factor/solve path
    allocates nothing. *)

type t
(** Square [n x n] complex matrix as two flat row-major planes. *)

val create : int -> t
(** [create n] is a zero-filled [n x n] matrix. *)

val dim : t -> int

val clear : t -> unit

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val add_to : t -> int -> int -> re:float -> im:float -> unit
(** Componentwise accumulation — mirrors [Complex.add] on a boxed
    matrix entry exactly. *)

val blit : src:t -> dst:t -> unit
(** Copy [src] over [dst] (same dimension) — used to restore the
    frequency-independent part of an MNA system before re-stamping only
    the [jwC] entries. *)

val lu_factor_in_place : t -> piv:int array -> unit
(** Factor in place with partial pivoting, destroying the matrix
    contents.  [piv] is reset to the identity and records the row
    permutation.  Raises {!Dense.Singular} under exactly the functor's
    condition. *)

val lu_solve_into :
  t ->
  piv:int array ->
  b_re:float array ->
  b_im:float array ->
  x_re:float array ->
  x_im:float array ->
  unit
(** Forward/back substitution of a factored matrix into the split output
    vector (must not alias the right-hand side).  Zero allocation. *)

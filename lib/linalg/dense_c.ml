(* Unboxed complex dense kernels: split re/im storage in two flat
   row-major [floatarray] planes.

   Hot-path twin of [Dense.Make (Field.Cx)].  Every complex primitive the
   functor reaches through the stdlib [Complex] module (add, sub, mul, the
   scaled division, [norm] for pivot magnitudes) is reproduced here inline
   on the split representation with the exact same operation order, so the
   two backends factor and solve bit-identically — the functor remains the
   reference implementation.  Factorisation is in place and the triangular
   solves write into caller-provided split vectors, so with reused buffers
   (see {!Ws}) the factor/solve path allocates nothing. *)

module FA = Float.Array

type t = { n : int; re : floatarray; im : floatarray }

let create n = { n; re = FA.make (n * n) 0.0; im = FA.make (n * n) 0.0 }
let dim m = m.n

let clear m =
  FA.fill m.re 0 (m.n * m.n) 0.0;
  FA.fill m.im 0 (m.n * m.n) 0.0

let get m i j =
  let k = (i * m.n) + j in
  { Complex.re = FA.get m.re k; im = FA.get m.im k }

let set m i j (x : Complex.t) =
  let k = (i * m.n) + j in
  FA.set m.re k x.Complex.re;
  FA.set m.im k x.Complex.im

(* componentwise accumulation — mirrors [Complex.add] exactly *)
let add_to m i j ~re ~im =
  let k = (i * m.n) + j in
  FA.set m.re k (FA.get m.re k +. re);
  FA.set m.im k (FA.get m.im k +. im)

let blit ~src ~dst =
  assert (src.n = dst.n);
  let len = src.n * src.n in
  FA.blit src.re 0 dst.re 0 len;
  FA.blit src.im 0 dst.im 0 len

(* In-place LU with partial pivoting, the split mirror of
   [Dense.Make(Field.Cx).lu_factor]: pivot magnitudes via [Float.hypot]
   (= [Complex.norm]), the factor via the stdlib's scaled complex
   division, the rank-1 update via the textbook complex multiply.  [piv]
   is reset to the identity and records the row permutation.  Raises
   [Dense.Singular k] under exactly the functor's condition. *)
let factor_core m ~piv =
  let n = m.n in
  assert (Array.length piv = n);
  let re = m.re and im = m.im in
  for i = 0 to n - 1 do
    Array.unsafe_set piv i i
  done;
  for k = 0 to n - 1 do
    (* pivot selection on |a_ik| *)
    let kk = (k * n) + k in
    let pivot = ref k
    and best = ref (Float.hypot (FA.unsafe_get re kk) (FA.unsafe_get im kk)) in
    for i = k + 1 to n - 1 do
      let ik = (i * n) + k in
      let v = Float.hypot (FA.unsafe_get re ik) (FA.unsafe_get im ik) in
      if v > !best then begin
        best := v;
        pivot := i
      end
    done;
    if !best < 1e-300 then raise (Dense.Singular k);
    if !pivot <> k then begin
      let p = !pivot in
      for j = 0 to n - 1 do
        let kj = (k * n) + j and pj = (p * n) + j in
        let tr = FA.unsafe_get re kj in
        FA.unsafe_set re kj (FA.unsafe_get re pj);
        FA.unsafe_set re pj tr;
        let ti = FA.unsafe_get im kj in
        FA.unsafe_set im kj (FA.unsafe_get im pj);
        FA.unsafe_set im pj ti
      done;
      let tp = Array.unsafe_get piv k in
      Array.unsafe_set piv k (Array.unsafe_get piv p);
      Array.unsafe_set piv p tp
    end;
    let akk_re = FA.unsafe_get re kk and akk_im = FA.unsafe_get im kk in
    for i = k + 1 to n - 1 do
      let ik = (i * n) + k in
      let xr = FA.unsafe_get re ik and xi = FA.unsafe_get im ik in
      (* factor = a_ik / a_kk, stdlib [Complex.div] branch for branch;
         written straight back into the sub-diagonal slot (no tuple, the
         factor loop must stay allocation-free) *)
      if Float.abs akk_re >= Float.abs akk_im then begin
        let r = akk_im /. akk_re in
        let d = akk_re +. (r *. akk_im) in
        FA.unsafe_set re ik ((xr +. (r *. xi)) /. d);
        FA.unsafe_set im ik ((xi -. (r *. xr)) /. d)
      end
      else begin
        let r = akk_re /. akk_im in
        let d = akk_im +. (r *. akk_re) in
        FA.unsafe_set re ik (((r *. xr) +. xi) /. d);
        FA.unsafe_set im ik (((r *. xi) -. xr) /. d)
      end;
      let fr = FA.unsafe_get re ik and fi = FA.unsafe_get im ik in
      if Float.hypot fr fi > 0.0 then
        for j = k + 1 to n - 1 do
          let ij = (i * n) + j and kj = (k * n) + j in
          let ar = FA.unsafe_get re kj and ai = FA.unsafe_get im kj in
          (* a_ij <- a_ij - factor * a_kj *)
          FA.unsafe_set re ij
            (FA.unsafe_get re ij -. ((fr *. ar) -. (fi *. ai)));
          FA.unsafe_set im ij
            (FA.unsafe_get im ij -. ((fr *. ai) +. (fi *. ar)))
        done
    done
  done

let lu_factor_in_place m ~piv =
  if not (Obs.Config.enabled ()) then factor_core m ~piv
  else begin
    Obs.Metrics.incr "linalg.cx.factors";
    let t0 = Obs.Clock.monotonic_s () in
    Fun.protect
      ~finally:(fun () ->
        Obs.Metrics.add "linalg.cx.factor_s" (Obs.Clock.monotonic_s () -. t0))
      (fun () -> factor_core m ~piv)
  end

(* Forward/back substitution into the split vector ([x_re], [x_im]); same
   operation order as the functor's [lu_solve].  The output must not alias
   the right-hand side. *)
let lu_solve_into m ~piv ~b_re ~b_im ~x_re ~x_im =
  let n = m.n in
  assert (Array.length b_re = n && Array.length b_im = n);
  assert (Array.length x_re = n && Array.length x_im = n);
  if (Obs.Config.enabled ()) then Obs.Metrics.incr "linalg.cx.solves";
  let re = m.re and im = m.im in
  for i = 0 to n - 1 do
    let p = Array.unsafe_get piv i in
    Array.unsafe_set x_re i (Array.unsafe_get b_re p);
    Array.unsafe_set x_im i (Array.unsafe_get b_im p)
  done;
  (* forward substitution, unit lower triangle *)
  for i = 1 to n - 1 do
    let acc_r = ref (Array.unsafe_get x_re i)
    and acc_i = ref (Array.unsafe_get x_im i) in
    for j = 0 to i - 1 do
      let ij = (i * n) + j in
      let ar = FA.unsafe_get re ij and ai = FA.unsafe_get im ij in
      let xr = Array.unsafe_get x_re j and xi = Array.unsafe_get x_im j in
      acc_r := !acc_r -. ((ar *. xr) -. (ai *. xi));
      acc_i := !acc_i -. ((ar *. xi) +. (ai *. xr))
    done;
    Array.unsafe_set x_re i !acc_r;
    Array.unsafe_set x_im i !acc_i
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let acc_r = ref (Array.unsafe_get x_re i)
    and acc_i = ref (Array.unsafe_get x_im i) in
    for j = i + 1 to n - 1 do
      let ij = (i * n) + j in
      let ar = FA.unsafe_get re ij and ai = FA.unsafe_get im ij in
      let xr = Array.unsafe_get x_re j and xi = Array.unsafe_get x_im j in
      acc_r := !acc_r -. ((ar *. xr) -. (ai *. xi));
      acc_i := !acc_i -. ((ar *. xi) +. (ai *. xr))
    done;
    let ii = (i * n) + i in
    let dr = FA.unsafe_get re ii and di = FA.unsafe_get im ii in
    let xr = !acc_r and xi = !acc_i in
    (* x_i <- x_i / a_ii, stdlib [Complex.div] branch for branch *)
    if Float.abs dr >= Float.abs di then begin
      let r = di /. dr in
      let d = dr +. (r *. di) in
      Array.unsafe_set x_re i ((xr +. (r *. xi)) /. d);
      Array.unsafe_set x_im i ((xi -. (r *. xr)) /. d)
    end
    else begin
      let r = dr /. di in
      let d = di +. (r *. dr) in
      Array.unsafe_set x_re i (((r *. xr) +. xi) /. d);
      Array.unsafe_set x_im i (((r *. xi) -. xr) /. d)
    end
  done

(* Reusable solver workspaces, one set per domain (via [Domain.DLS]) keyed
   by system size.

   A workspace bundles everything a dense factor/solve needs — the matrix,
   right-hand side, solution vector and pivot buffer — so repeated solves
   of same-sized systems (Newton iterates, gmin/alpha continuation steps,
   AC sweep points, Monte Carlo samples) re-stamp into the same memory and
   allocate nothing.  Domain-local storage makes concurrent use from the
   [Par.Pool] safe without locks: each worker domain materialises its own
   workspace on first use.

   Acquisitions are counted as [linalg.ws.hits] / [linalg.ws.creates] when
   telemetry is enabled, so workspace reuse is observable. *)

type real = {
  jac : Dense_f.t;
  rhs : float array;
  delta : float array;
  piv : int array;
}

type cx = {
  y : Dense_c.t;
  cpiv : int array;
  b_re : float array;
  b_im : float array;
  x_re : float array;
  x_im : float array;
  mutable serial : int;
      (* bumped by every factorisation into [y]; lets a solve handle
         detect that the workspace has since been re-factored for a
         different system and transparently re-factor (see Sim.Acs) *)
}

let count_acquire hit =
  if (Obs.Config.enabled ()) then
    Obs.Metrics.incr (if hit then "linalg.ws.hits" else "linalg.ws.creates")

let real_key : (int, real) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let real n =
  let tbl = Domain.DLS.get real_key in
  match Hashtbl.find_opt tbl n with
  | Some ws ->
    count_acquire true;
    ws
  | None ->
    let ws =
      {
        jac = Dense_f.create n n;
        rhs = Array.make n 0.0;
        delta = Array.make n 0.0;
        piv = Array.make n 0;
      }
    in
    Hashtbl.add tbl n ws;
    count_acquire false;
    ws

type sreal = {
  swork : float array;
  spos : int array;
  scand : int array;
  scand_key : int array;
  scand_slot : int array;
  sy : float array;
  srhs : float array;
  sdelta : float array;
}

let sreal_key : (int, sreal) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let sparse_real n =
  let tbl = Domain.DLS.get sreal_key in
  match Hashtbl.find_opt tbl n with
  | Some ws ->
    count_acquire true;
    ws
  | None ->
    let ws =
      {
        swork = Array.make n 0.0;
        spos = Array.make n (-1);
        scand = Array.make n 0;
        scand_key = Array.make n 0;
        scand_slot = Array.make n 0;
        sy = Array.make n 0.0;
        srhs = Array.make n 0.0;
        sdelta = Array.make n 0.0;
      }
    in
    Hashtbl.add tbl n ws;
    count_acquire false;
    ws

type scx = {
  cwork_re : float array;
  cwork_im : float array;
  cpos : int array;
  ccand : int array;
  ccand_key : int array;
  ccand_slot : int array;
  cy_re : float array;
  cy_im : float array;
  sb_re : float array;
  sb_im : float array;
  sx_re : float array;
  sx_im : float array;
}

let scx_key : (int, scx) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let sparse_cx n =
  let tbl = Domain.DLS.get scx_key in
  match Hashtbl.find_opt tbl n with
  | Some ws ->
    count_acquire true;
    ws
  | None ->
    let ws =
      {
        cwork_re = Array.make n 0.0;
        cwork_im = Array.make n 0.0;
        cpos = Array.make n (-1);
        ccand = Array.make n 0;
        ccand_key = Array.make n 0;
        ccand_slot = Array.make n 0;
        cy_re = Array.make n 0.0;
        cy_im = Array.make n 0.0;
        sb_re = Array.make n 0.0;
        sb_im = Array.make n 0.0;
        sx_re = Array.make n 0.0;
        sx_im = Array.make n 0.0;
      }
    in
    Hashtbl.add tbl n ws;
    count_acquire false;
    ws

let cx_key : (int, cx) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let cx n =
  let tbl = Domain.DLS.get cx_key in
  match Hashtbl.find_opt tbl n with
  | Some ws ->
    count_acquire true;
    ws
  | None ->
    let ws =
      {
        y = Dense_c.create n;
        cpiv = Array.make n 0;
        b_re = Array.make n 0.0;
        b_im = Array.make n 0.0;
        x_re = Array.make n 0.0;
        x_im = Array.make n 0.0;
        serial = 0;
      }
    in
    Hashtbl.add tbl n ws;
    count_acquire false;
    ws

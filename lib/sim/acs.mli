(** Small-signal AC analysis: the circuit is linearised at a DC operating
    point (MOS devices become gm/gmb sources, gds conductances and the five
    Meyer/junction capacitances) and the complex MNA system
    (G + j w C) x = J is solved per frequency.

    The factorisation at a given frequency is exposed so that the noise
    analysis can reuse it for many right-hand sides (one injection per
    noisy device).

    Preparation splits the system into a frequency-independent base
    (conductances, controlled sources, voltage-source rows, gmin) and the
    capacitor list; under the default [Kernel] backend each sweep point
    blits the precomputed base into a reusable per-domain workspace
    ({!Linalg.Ws.cx}), adds only the [j w C] entries and factors in
    place — results are bit-identical to the [Reference] functor path.
    Under a [Sparse] backend the same base/capacitor split lives in CSR
    slot arrays: each sweep point blits the base planes, updates only the
    [j w C] slots and numerically refactors over the shared symbolic
    analysis ([Sparse Natural] stays bit-identical to [Kernel]). *)

type t
(** Prepared linear network. *)

val prepare : Dcop.t -> t

type factored
(** LU factorisation of Y(w) at one frequency.  Under the [Kernel]
    backend this is a handle onto the calling domain's workspace; if the
    workspace has since been re-factored for another frequency (or the
    handle crossed domains), the next solve transparently and
    deterministically re-factors first. *)

val factor : ?backend:Stamps.backend -> t -> freq:float -> factored
(** Raises [Linalg.Singular] when Y(w) loses rank (floating node,
    degenerate source loop).  [backend] defaults to
    {!Stamps.default_backend}.  Thin wrapper over {!factor_result}. *)

val factor_result :
  ?backend:Stamps.backend -> t -> freq:float -> (factored, Sim_error.t) result
(** {!factor} with the singularity reified as
    [Error (Singular_matrix _)].  Programming errors still raise. *)

val solve_sources : factored -> Complex.t array
(** Response to the circuit's own AC sources (the [ac] magnitudes of V and
    I sources), as phasors over all MNA unknowns. *)

val solve_injection : factored -> p:string -> n:string -> Complex.t array
(** Response to a unit AC current injected from node [p] to node [n]
    (circuit AC sources zeroed).  Used for output impedance and noise
    transfer functions. *)

val voltage : t -> Complex.t array -> string -> Complex.t
(** Extract a node phasor from a solution vector (ground is 0). *)

val injection_gain2 : factored -> p:string -> n:string -> out:string -> float
(** [|V(out)|^2] for a unit AC current injected from [p] to [n] —
    equivalent to [Complex.norm2 (voltage net (solve_injection f ~p ~n)
    out)] but, under the [Kernel] backend, computed entirely inside the
    workspace without materialising the phasor vector.  This is the noise
    analysis' inner loop (one call per noisy element per frequency). *)

val transfer : ?backend:Stamps.backend -> t -> freq:float -> out:string -> Complex.t
(** One-call helper: response at node [out] to the circuit AC sources.
    Raises like {!factor}. *)

val transfer_result :
  ?backend:Stamps.backend ->
  t -> freq:float -> out:string -> (Complex.t, Sim_error.t) result
(** {!transfer} with factorisation failure reified, for frequency sweeps
    that want to skip unrepresentable points instead of aborting. *)

val output_impedance :
  ?backend:Stamps.backend -> t -> freq:float -> out:string -> Complex.t
(** V(out) for a unit current injected into [out] with sources zeroed. *)

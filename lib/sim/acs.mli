(** Small-signal AC analysis: the circuit is linearised at a DC operating
    point (MOS devices become gm/gmb sources, gds conductances and the five
    Meyer/junction capacitances) and the complex MNA system
    (G + j w C) x = J is solved per frequency.

    The factorisation at a given frequency is exposed so that the noise
    analysis can reuse it for many right-hand sides (one injection per
    noisy device). *)

type t
(** Prepared linear network. *)

val prepare : Dcop.t -> t

type factored
(** LU factorisation of Y(w) at one frequency. *)

val factor : t -> freq:float -> factored
(** Raises [Linalg.Singular] when Y(w) loses rank (floating node,
    degenerate source loop).  Thin wrapper over {!factor_result}. *)

val factor_result : t -> freq:float -> (factored, Sim_error.t) result
(** {!factor} with the singularity reified as
    [Error (Singular_matrix _)].  Programming errors still raise. *)

val solve_sources : factored -> Complex.t array
(** Response to the circuit's own AC sources (the [ac] magnitudes of V and
    I sources), as phasors over all MNA unknowns. *)

val solve_injection : factored -> p:string -> n:string -> Complex.t array
(** Response to a unit AC current injected from node [p] to node [n]
    (circuit AC sources zeroed).  Used for output impedance and noise
    transfer functions. *)

val voltage : t -> Complex.t array -> string -> Complex.t
(** Extract a node phasor from a solution vector (ground is 0). *)

val transfer : t -> freq:float -> out:string -> Complex.t
(** One-call helper: response at node [out] to the circuit AC sources.
    Raises like {!factor}. *)

val transfer_result :
  t -> freq:float -> out:string -> (Complex.t, Sim_error.t) result
(** {!transfer} with factorisation failure reified, for frequency sweeps
    that want to skip unrepresentable points instead of aborting. *)

val output_impedance : t -> freq:float -> out:string -> Complex.t
(** V(out) for a unit current injected into [out] with sources zeroed. *)

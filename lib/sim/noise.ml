module El = Netlist.Element

type contribution = {
  element : string;
  thermal : float;
  flicker : float;
}

let output_psd dcop net ~out ~freq =
  let proc = Dcop.process dcop in
  let f = Acs.factor net ~freq in
  let transfer_sq ~p ~n = Acs.injection_gain2 f ~p ~n ~out in
  let contributions =
    List.filter_map
      (fun e ->
        match e with
        | El.Mos { dev; d; s; _ } ->
          let op = Dcop.device_op dcop dev.Device.Mos.name in
          let eval = op.Device.Op.eval in
          let gm = eval.Device.Model.gm and ids = eval.Device.Model.ids in
          let zt2 = transfer_sq ~p:d ~n:s in
          let params = Device.Mos.params proc dev in
          let thermal = Device.Noise.thermal_current_psd gm *. zt2 in
          let flicker =
            Device.Noise.flicker_current_psd params ~l:dev.Device.Mos.l ~ids ~freq
            *. zt2
          in
          Some { element = dev.Device.Mos.name; thermal; flicker }
        | El.Resistor { name; p; n; r } ->
          let zt2 = transfer_sq ~p ~n in
          let psd =
            4.0 *. Phys.Const.boltzmann *. Phys.Const.room_temperature /. r
          in
          Some { element = name; thermal = psd *. zt2; flicker = 0.0 }
        | El.Capacitor _ | El.Isource _ | El.Vsource _ -> None)
      (Netlist.Circuit.elements (Dcop.circuit dcop))
  in
  let total =
    List.fold_left (fun acc c -> acc +. c.thermal +. c.flicker) 0.0 contributions
  in
  (total, contributions)

let input_referred_psd dcop net ~out ~gain ~freq =
  let total, _ = output_psd dcop net ~out ~freq in
  total /. Complex.norm2 gain

let integrated_output_noise dcop net ~out ~fmin ~fmax =
  let psd f = fst (output_psd dcop net ~out ~freq:f) in
  sqrt (Phys.Numerics.integrate_log ~points_per_decade:16 ~f:psd fmin fmax)

let integrated_input_noise dcop net ~out ~gain_at ~fmin ~fmax =
  let psd f =
    let total, _ = output_psd dcop net ~out ~freq:f in
    total /. Complex.norm2 (gain_at f)
  in
  sqrt (Phys.Numerics.integrate_log ~points_per_decade:16 ~f:psd fmin fmax)

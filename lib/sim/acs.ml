module C = Linalg.Cx
module Dc = Linalg.Dense_c
module El = Netlist.Element

type node = int option

type stamp = {
  conds : (node * node * float) list;
  caps : (node * node * float) list;
  vccs : (node * node * node * node * float) list;
  (* (out_p, out_n, ctrl_p, ctrl_n, gm): current gm (v_cp - v_cn) flows
     out_p -> out_n *)
  vrows : (int * node * node * float) list; (* (row, p, n, ac magnitude) *)
  irhs : (node * node * float) list;        (* current p -> n, magnitude *)
}

type sparse_net = {
  spat : Linalg.Sparse.pattern;
  base_re : float array;
  base_im : float array;
      (* frequency-independent planes in slot order, mirroring [build_base]'s
         accumulation sequence position by position *)
  cap_slot : int array;
  cap_re : float array;  (* 0.0 on diagonals, -0.0 off-diagonal *)
  cap_c : float array;
      (* signed capacitance; the imaginary update at angular frequency [w]
         is [w *. cap_c], reproducing [quad_c]'s [+-(w *. c)] bit for bit *)
}

type t = {
  idx : Indexing.t;
  stamp : stamp;
  base : Dc.t;
      (* frequency-independent part of Y (conductances, vccs, vsource rows,
         gmin diagonal) assembled once; per-frequency factorisation blits
         this and adds only the j w C entries on top *)
  mutable sparse : sparse_net option;
      (* CSR twin of [base], built lazily on the first [Sparse] factor.
         The build is deterministic, so the benign race of two domains
         filling it concurrently stores structurally identical values. *)
}

let cx re = { Complex.re; im = 0.0 }

(* Componentwise 4-point stamp on the split-plane matrix.  The signed-zero
   components matter: [Complex.neg {re; im=0.}] is [{-re; -0.}], and the
   reference assembly folds those -0. additions into the planes, so the
   kernel assembly must add the exact same signed components to stay
   bit-identical. *)
let quad_c y p q ~re ~im =
  (match p with Some i -> Dc.add_to y i i ~re ~im | None -> ());
  (match q with Some j -> Dc.add_to y j j ~re ~im | None -> ());
  (match (p, q) with
   | Some i, Some j ->
     Dc.add_to y i j ~re:(-.re) ~im:(-.im);
     Dc.add_to y j i ~re:(-.re) ~im:(-.im)
   | Some _, None | None, Some _ | None, None -> ())

(* The frequency-independent entries, in exactly the reference [assemble]
   order minus the capacitor pass (moving the j w C additions last is
   bit-safe: capacitors touch the real plane only with signed zeros, and
   all other stamps touch the imaginary plane only with signed zeros, so
   no rounding-relevant addition is reordered). *)
let build_base idx stamp =
  let n = Indexing.size idx in
  let y = Dc.create n in
  List.iter (fun (p, q, g) -> quad_c y p q ~re:g ~im:0.0) stamp.conds;
  List.iter
    (fun (op, on, cp, cn, gm) ->
      let add_out out sign =
        match out with
        | None -> ()
        | Some i ->
          (match cp with
           | Some j ->
             if sign then Dc.add_to y i j ~re:gm ~im:0.0
             else Dc.add_to y i j ~re:(-.gm) ~im:(-0.0)
           | None -> ());
          (match cn with
           | Some j ->
             if sign then Dc.add_to y i j ~re:(-.gm) ~im:(-0.0)
             else Dc.add_to y i j ~re:gm ~im:0.0
           | None -> ())
      in
      add_out op true;
      add_out on false)
    stamp.vccs;
  List.iter
    (fun (k, p, q, _ac) ->
      (match p with
       | Some i ->
         Dc.add_to y i k ~re:1.0 ~im:0.0;
         Dc.add_to y k i ~re:1.0 ~im:0.0
       | None -> ());
      (match q with
       | Some j ->
         Dc.add_to y j k ~re:(-1.0) ~im:(-0.0);
         Dc.add_to y k j ~re:(-1.0) ~im:(-0.0)
       | None -> ()))
    stamp.vrows;
  (* tiny gmin keeps Y regular at very low frequency on isolated nodes *)
  for i = 0 to Indexing.node_count idx - 1 do
    Dc.add_to y i i ~re:1e-15 ~im:0.0
  done;
  y

(* The CSR twin of [build_base]: the same accumulation sequence lands on
   precomputed slots, plus a flat (slot, re, c) table for the per-frequency
   j w C updates in [quad_c] append order. *)
let build_sparse idx stamp =
  let coords = ref [] in
  let quad p q =
    (match p with Some i -> coords := (i, i) :: !coords | None -> ());
    (match q with Some j -> coords := (j, j) :: !coords | None -> ());
    match (p, q) with
    | Some i, Some j -> coords := (i, j) :: (j, i) :: !coords
    | Some _, None | None, Some _ | None, None -> ()
  in
  List.iter (fun (p, q, _) -> quad p q) stamp.conds;
  List.iter (fun (p, q, _) -> quad p q) stamp.caps;
  List.iter
    (fun (op, on, cp, cn, _) ->
      let out o =
        match o with
        | None -> ()
        | Some i ->
          (match cp with Some j -> coords := (i, j) :: !coords | None -> ());
          (match cn with Some j -> coords := (i, j) :: !coords | None -> ())
      in
      out op;
      out on)
    stamp.vccs;
  List.iter
    (fun (k, p, q, _) ->
      (match p with
       | Some i -> coords := (i, k) :: (k, i) :: !coords
       | None -> ());
      (match q with
       | Some j -> coords := (j, k) :: (k, j) :: !coords
       | None -> ()))
    stamp.vrows;
  for i = 0 to Indexing.node_count idx - 1 do
    coords := (i, i) :: !coords
  done;
  let spat = Linalg.Sparse.of_coords ~n:(Indexing.size idx) !coords in
  let slot i j = Linalg.Sparse.slot_exn spat i j in
  let nnz = Linalg.Sparse.nnz spat in
  let base_re = Array.make nnz 0.0 and base_im = Array.make nnz 0.0 in
  let add i j ~re ~im =
    let s = slot i j in
    base_re.(s) <- base_re.(s) +. re;
    base_im.(s) <- base_im.(s) +. im
  in
  let quad_s p q ~re ~im =
    (match p with Some i -> add i i ~re ~im | None -> ());
    (match q with Some j -> add j j ~re ~im | None -> ());
    match (p, q) with
    | Some i, Some j ->
      add i j ~re:(-.re) ~im:(-.im);
      add j i ~re:(-.re) ~im:(-.im)
    | Some _, None | None, Some _ | None, None -> ()
  in
  List.iter (fun (p, q, g) -> quad_s p q ~re:g ~im:0.0) stamp.conds;
  List.iter
    (fun (op, on, cp, cn, gm) ->
      let add_out out sign =
        match out with
        | None -> ()
        | Some i ->
          (match cp with
           | Some j ->
             if sign then add i j ~re:gm ~im:0.0
             else add i j ~re:(-.gm) ~im:(-0.0)
           | None -> ());
          (match cn with
           | Some j ->
             if sign then add i j ~re:(-.gm) ~im:(-0.0)
             else add i j ~re:gm ~im:0.0
           | None -> ())
      in
      add_out op true;
      add_out on false)
    stamp.vccs;
  List.iter
    (fun (k, p, q, _ac) ->
      (match p with
       | Some i ->
         add i k ~re:1.0 ~im:0.0;
         add k i ~re:1.0 ~im:0.0
       | None -> ());
      (match q with
       | Some j ->
         add j k ~re:(-1.0) ~im:(-0.0);
         add k j ~re:(-1.0) ~im:(-0.0)
       | None -> ()))
    stamp.vrows;
  for i = 0 to Indexing.node_count idx - 1 do
    add i i ~re:1e-15 ~im:0.0
  done;
  let ct = ref [] in
  List.iter
    (fun (p, q, c) ->
      (match p with Some i -> ct := (slot i i, 0.0, c) :: !ct | None -> ());
      (match q with Some j -> ct := (slot j j, 0.0, c) :: !ct | None -> ());
      match (p, q) with
      | Some i, Some j ->
        ct := (slot i j, -0.0, -.c) :: !ct;
        ct := (slot j i, -0.0, -.c) :: !ct
      | Some _, None | None, Some _ | None, None -> ())
    stamp.caps;
  let entries = Array.of_list (List.rev !ct) in
  {
    spat;
    base_re;
    base_im;
    cap_slot = Array.map (fun (s, _, _) -> s) entries;
    cap_re = Array.map (fun (_, re, _) -> re) entries;
    cap_c = Array.map (fun (_, _, c) -> c) entries;
  }

let sparse_of net =
  match net.sparse with
  | Some s -> s
  | None ->
    let s = build_sparse net.idx net.stamp in
    net.sparse <- Some s;
    s

let prepare dcop =
  let idx = Dcop.indexing dcop in
  let circuit = Dcop.circuit dcop in
  let ni name = Indexing.node_index idx name in
  (* plain mutable accumulators: one cons per stamp instead of a record
     copy per stamp (the lists stay in prepend order; [assemble] and
     [build_base] iterate them in that reversed element order) *)
  let conds = ref [] and caps = ref [] and vccs = ref [] in
  let vrows = ref [] and irhs = ref [] in
  let add_cond p n g = conds := (p, n, g) :: !conds in
  let add_cap p n c = if c > 0.0 then caps := (p, n, c) :: !caps in
  let add_vccs op on cp cn gm =
    if gm <> 0.0 then vccs := (op, on, cp, cn, gm) :: !vccs
  in
  let handle = function
    | El.Resistor { p; n; r; _ } -> add_cond (ni p) (ni n) (1.0 /. r)
    | El.Capacitor { p; n; c; _ } -> add_cap (ni p) (ni n) c
    | El.Isource { p; n; i; _ } ->
      if i.El.ac <> 0.0 then irhs := (ni p, ni n, i.El.ac) :: !irhs
    | El.Vsource { name; p; n; v; _ } ->
      let k = Indexing.vsource_index idx name in
      vrows := (k, ni p, ni n, v.El.ac) :: !vrows
    | El.Mos { dev; d; g; s; b } ->
      let op = Dcop.device_op dcop dev.Device.Mos.name in
      let e = op.Device.Op.eval and cc = op.Device.Op.caps in
      let nd = ni d and ng = ni g and ns = ni s and nb = ni b in
      add_cond nd ns e.Device.Model.gds;
      add_vccs nd ns ng ns e.Device.Model.gm;
      add_vccs nd ns nb ns e.Device.Model.gmb;
      add_cap ng ns cc.Device.Caps.cgs;
      add_cap ng nd cc.Device.Caps.cgd;
      add_cap ng nb cc.Device.Caps.cgb;
      add_cap nd nb cc.Device.Caps.cdb;
      add_cap ns nb cc.Device.Caps.csb
  in
  List.iter handle (Netlist.Circuit.elements circuit);
  let stamp =
    { conds = !conds; caps = !caps; vccs = !vccs; vrows = !vrows;
      irhs = !irhs }
  in
  { idx; stamp; base = build_base idx stamp; sparse = None }

type factored =
  | F_ref of { net : t; lu : C.lu }
  | F_ws of {
      net : t;
      freq : float;
      mutable ws : Linalg.Ws.cx;
      mutable serial : int;
          (* the workspace generation this token's factorisation lives in;
             when another frequency (or another net of the same size) has
             re-factored the domain's workspace since — or the token
             migrated to a different domain — the solve transparently
             re-factors first *)
    }
  | F_sparse of { net : t; fact : Linalg.Sparse.Cx.t }
      (* the factor handle owns its LU values, so the handle stays valid
         for any number of solves regardless of what other frequencies
         are factored in between *)

let net_of = function
  | F_ref { net; _ } -> net
  | F_ws { net; _ } -> net
  | F_sparse { net; _ } -> net

let assemble net ~freq =
  let n = Indexing.size net.idx in
  let y = C.create n n in
  let quad p q v =
    (* conductance-style 4-point stamp *)
    let add i j x = C.add_to y i j x in
    (match p with Some i -> add i i v | None -> ());
    (match q with Some j -> add j j v | None -> ());
    (match (p, q) with
     | Some i, Some j ->
       add i j (Complex.neg v);
       add j i (Complex.neg v)
     | Some _, None | None, Some _ | None, None -> ())
  in
  List.iter (fun (p, q, g) -> quad p q (cx g)) net.stamp.conds;
  let w = 2.0 *. Float.pi *. freq in
  List.iter
    (fun (p, q, c) -> quad p q { Complex.re = 0.0; im = w *. c })
    net.stamp.caps;
  List.iter
    (fun (op, on, cp, cn, gm) ->
      let g = cx gm in
      let add_out out sign =
        match out with
        | None -> ()
        | Some i ->
          (match cp with Some j -> C.add_to y i j (if sign then g else Complex.neg g) | None -> ());
          (match cn with Some j -> C.add_to y i j (if sign then Complex.neg g else g) | None -> ())
      in
      add_out op true;
      add_out on false)
    net.stamp.vccs;
  List.iter
    (fun (k, p, q, _ac) ->
      (match p with
       | Some i ->
         C.add_to y i k Complex.one;
         C.add_to y k i Complex.one
       | None -> ());
      (match q with
       | Some j ->
         C.add_to y j k (Complex.neg Complex.one);
         C.add_to y k j (Complex.neg Complex.one)
       | None -> ()))
    net.stamp.vrows;
  (* tiny gmin keeps Y regular at very low frequency on isolated nodes *)
  for i = 0 to Indexing.node_count net.idx - 1 do
    C.add_to y i i (cx 1e-15)
  done;
  y

(* Blit the static base over the workspace matrix, add the j w C entries
   and factor in place. *)
let factor_ws net (ws : Linalg.Ws.cx) ~freq =
  Dc.blit ~src:net.base ~dst:ws.Linalg.Ws.y;
  let w = 2.0 *. Float.pi *. freq in
  List.iter
    (fun (p, q, c) -> quad_c ws.Linalg.Ws.y p q ~re:0.0 ~im:(w *. c))
    net.stamp.caps;
  Dc.lu_factor_in_place ws.Linalg.Ws.y ~piv:ws.Linalg.Ws.cpiv;
  ws.Linalg.Ws.serial <- ws.Linalg.Ws.serial + 1

let factor ?backend net ~freq =
  if (Obs.Config.enabled ()) then Obs.Metrics.incr "sim.acs.factorizations";
  let backend =
    match backend with Some b -> b | None -> Stamps.default_backend ()
  in
  match backend with
  | Stamps.Reference -> F_ref { net; lu = C.lu_factor (assemble net ~freq) }
  | Stamps.Kernel ->
    let ws = Linalg.Ws.cx (Indexing.size net.idx) in
    factor_ws net ws ~freq;
    F_ws { net; freq; ws; serial = ws.Linalg.Ws.serial }
  | Stamps.Sparse ordering ->
    let snet = sparse_of net in
    let vre = Array.copy snet.base_re and vim = Array.copy snet.base_im in
    let w = 2.0 *. Float.pi *. freq in
    for k = 0 to Array.length snet.cap_slot - 1 do
      let s = Array.unsafe_get snet.cap_slot k in
      Array.unsafe_set vre s
        (Array.unsafe_get vre s +. Array.unsafe_get snet.cap_re k);
      Array.unsafe_set vim s
        (Array.unsafe_get vim s +. (w *. Array.unsafe_get snet.cap_c k))
    done;
    let refactored ordering =
      let fact =
        Linalg.Sparse.Cx.create (Linalg.Sparse.symbolic ordering snet.spat)
      in
      Linalg.Sparse.Cx.refactor fact ~re:vre ~im:vim;
      fact
    in
    let fact =
      try refactored ordering
      with Linalg.Singular _ when ordering = Linalg.Sparse.Min_degree ->
        (* numerically zero pivot under the static order; the pivoting
           natural-order factor decides singularity instead *)
        if (Obs.Config.enabled ()) then Obs.Metrics.incr "sim.acs.pivot_fallbacks";
        refactored Linalg.Sparse.Natural
    in
    F_sparse { net; fact }

let factor_result ?backend net ~freq =
  match factor ?backend net ~freq with
  | f -> Ok f
  | exception e ->
    (match Sim_error.of_exn ~analysis:"acs.factor" e with
     | Some err -> Error err
     | None -> raise e)

let rhs_sources net =
  let n = Indexing.size net.idx in
  let j = Array.make n Complex.zero in
  List.iter
    (fun (p, q, mag) ->
      (* current p -> n: leaves p, enters n *)
      (match p with Some i -> j.(i) <- Complex.sub j.(i) (cx mag) | None -> ());
      (match q with Some i -> j.(i) <- Complex.add j.(i) (cx mag) | None -> ()))
    net.stamp.irhs;
  List.iter (fun (k, _, _, ac) -> j.(k) <- cx ac) net.stamp.vrows;
  j

(* The current domain's workspace holding this token's factorisation,
   re-assembled on demand when the workspace has moved on (another
   frequency factored in between, or the token crossed domains).  The
   re-factorisation is deterministic, so results never depend on whether
   it happened. *)
let ensure_ws t =
  match t with
  | F_ws r ->
    let ws = Linalg.Ws.cx (Indexing.size r.net.idx) in
    if ws != r.ws || ws.Linalg.Ws.serial <> r.serial then begin
      if (Obs.Config.enabled ()) then Obs.Metrics.incr "sim.acs.ws_refactors";
      factor_ws r.net ws ~freq:r.freq;
      r.ws <- ws;
      r.serial <- ws.Linalg.Ws.serial
    end;
    ws
  | F_ref _ | F_sparse _ -> invalid_arg "Acs.ensure_ws"

let solve_ws net (ws : Linalg.Ws.cx) =
  Dc.lu_solve_into ws.Linalg.Ws.y ~piv:ws.Linalg.Ws.cpiv
    ~b_re:ws.Linalg.Ws.b_re ~b_im:ws.Linalg.Ws.b_im
    ~x_re:ws.Linalg.Ws.x_re ~x_im:ws.Linalg.Ws.x_im;
  let n = Indexing.size net.idx in
  Array.init n (fun i ->
    { Complex.re = ws.Linalg.Ws.x_re.(i); im = ws.Linalg.Ws.x_im.(i) })

(* Same right-hand side as [rhs_sources], written componentwise into the
   caller's split buffers — the dense path passes the workspace planes,
   the sparse path its per-domain scratch (the imaginary parts of all AC
   sources are zero). *)
let fill_sources net ~b_re ~b_im =
  let n = Indexing.size net.idx in
  Array.fill b_re 0 n 0.0;
  Array.fill b_im 0 n 0.0;
  List.iter
    (fun (p, q, mag) ->
      (match p with Some i -> b_re.(i) <- b_re.(i) -. mag | None -> ());
      (match q with Some i -> b_re.(i) <- b_re.(i) +. mag | None -> ()))
    net.stamp.irhs;
  List.iter
    (fun (k, _, _, ac) ->
      b_re.(k) <- ac;
      b_im.(k) <- 0.0)
    net.stamp.vrows

(* Solve the sparse factor over the per-domain split scratch; [fill]
   writes the right-hand side into the scratch [b] planes. *)
let solve_sparse net fact ~fill =
  let n = Indexing.size net.idx in
  let sws = Linalg.Ws.sparse_cx n in
  fill ~b_re:sws.Linalg.Ws.sb_re ~b_im:sws.Linalg.Ws.sb_im;
  Linalg.Sparse.Cx.solve_into fact ~b_re:sws.Linalg.Ws.sb_re
    ~b_im:sws.Linalg.Ws.sb_im ~x_re:sws.Linalg.Ws.sx_re
    ~x_im:sws.Linalg.Ws.sx_im;
  sws

let solve_sources f =
  if (Obs.Config.enabled ()) then Obs.Metrics.incr "sim.acs.solves";
  match f with
  | F_ref { net; lu } -> C.lu_solve lu (rhs_sources net)
  | F_ws { net; _ } ->
    let ws = ensure_ws f in
    fill_sources net ~b_re:ws.Linalg.Ws.b_re ~b_im:ws.Linalg.Ws.b_im;
    solve_ws net ws
  | F_sparse { net; fact } ->
    let sws = solve_sparse net fact ~fill:(fill_sources net) in
    Array.init (Indexing.size net.idx) (fun i ->
      { Complex.re = sws.Linalg.Ws.sx_re.(i); im = sws.Linalg.Ws.sx_im.(i) })

let fill_injection net ~p ~n ~b_re ~b_im =
  let nn = Indexing.size net.idx in
  Array.fill b_re 0 nn 0.0;
  Array.fill b_im 0 nn 0.0;
  (match Indexing.node_index net.idx p with
   | Some i -> b_re.(i) <- b_re.(i) -. 1.0
   | None -> ());
  (match Indexing.node_index net.idx n with
   | Some i -> b_re.(i) <- b_re.(i) +. 1.0
   | None -> ())

let solve_injection f ~p ~n =
  if (Obs.Config.enabled ()) then Obs.Metrics.incr "sim.acs.solves";
  match f with
  | F_ref { net; lu } ->
    let nn = Indexing.size net.idx in
    let j = Array.make nn Complex.zero in
    (match Indexing.node_index net.idx p with
     | Some i -> j.(i) <- Complex.sub j.(i) Complex.one
     | None -> ());
    (match Indexing.node_index net.idx n with
     | Some i -> j.(i) <- Complex.add j.(i) Complex.one
     | None -> ());
    C.lu_solve lu j
  | F_ws { net; _ } ->
    let ws = ensure_ws f in
    fill_injection net ~p ~n ~b_re:ws.Linalg.Ws.b_re ~b_im:ws.Linalg.Ws.b_im;
    solve_ws net ws
  | F_sparse { net; fact } ->
    let sws = solve_sparse net fact ~fill:(fill_injection net ~p ~n) in
    Array.init (Indexing.size net.idx) (fun i ->
      { Complex.re = sws.Linalg.Ws.sx_re.(i); im = sws.Linalg.Ws.sx_im.(i) })

let voltage net x name =
  match Indexing.node_index net.idx name with
  | None -> Complex.zero
  | Some i -> x.(i)

let injection_gain2 f ~p ~n ~out =
  match f with
  | F_ref _ ->
    Complex.norm2 (voltage (net_of f) (solve_injection f ~p ~n) out)
  | F_ws { net; _ } ->
    if (Obs.Config.enabled ()) then Obs.Metrics.incr "sim.acs.solves";
    let ws = ensure_ws f in
    fill_injection net ~p ~n ~b_re:ws.Linalg.Ws.b_re ~b_im:ws.Linalg.Ws.b_im;
    Dc.lu_solve_into ws.Linalg.Ws.y ~piv:ws.Linalg.Ws.cpiv
      ~b_re:ws.Linalg.Ws.b_re ~b_im:ws.Linalg.Ws.b_im
      ~x_re:ws.Linalg.Ws.x_re ~x_im:ws.Linalg.Ws.x_im;
    (match Indexing.node_index net.idx out with
     | None -> 0.0
     | Some o ->
       let re = ws.Linalg.Ws.x_re.(o) and im = ws.Linalg.Ws.x_im.(o) in
       (re *. re) +. (im *. im))
  | F_sparse { net; fact } ->
    if (Obs.Config.enabled ()) then Obs.Metrics.incr "sim.acs.solves";
    let sws = solve_sparse net fact ~fill:(fill_injection net ~p ~n) in
    (match Indexing.node_index net.idx out with
     | None -> 0.0
     | Some o ->
       let re = sws.Linalg.Ws.sx_re.(o) and im = sws.Linalg.Ws.sx_im.(o) in
       (re *. re) +. (im *. im))

let observe_transfer t0 =
  if (Obs.Config.enabled ()) then
    Obs.Metrics.observe "sim.acs.solve_us" (Obs.Clock.monotonic_us () -. t0)

let transfer ?backend net ~freq ~out =
  let t0 = Obs.Clock.monotonic_us () in
  let f = factor ?backend net ~freq in
  let v = voltage net (solve_sources f) out in
  observe_transfer t0;
  v

let transfer_result ?backend net ~freq ~out =
  let t0 = Obs.Clock.monotonic_us () in
  Result.map
    (fun f ->
      let v = voltage net (solve_sources f) out in
      observe_transfer t0;
      v)
    (factor_result ?backend net ~freq)

let output_impedance ?backend net ~freq ~out =
  let f = factor ?backend net ~freq in
  voltage net (solve_injection f ~p:Netlist.Element.ground ~n:out) out

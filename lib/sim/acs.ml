module C = Linalg.Cx
module El = Netlist.Element

type node = int option

type stamp = {
  conds : (node * node * float) list;
  caps : (node * node * float) list;
  vccs : (node * node * node * node * float) list;
  (* (out_p, out_n, ctrl_p, ctrl_n, gm): current gm (v_cp - v_cn) flows
     out_p -> out_n *)
  vrows : (int * node * node * float) list; (* (row, p, n, ac magnitude) *)
  irhs : (node * node * float) list;        (* current p -> n, magnitude *)
}

type t = {
  idx : Indexing.t;
  stamp : stamp;
}

let cx re = { Complex.re; im = 0.0 }

let prepare dcop =
  let idx = Dcop.indexing dcop in
  let circuit = Dcop.circuit dcop in
  let ni name = Indexing.node_index idx name in
  let acc = ref { conds = []; caps = []; vccs = []; vrows = []; irhs = [] } in
  let add_cond p n g = acc := { !acc with conds = (p, n, g) :: !acc.conds } in
  let add_cap p n c = if c > 0.0 then acc := { !acc with caps = (p, n, c) :: !acc.caps } in
  let add_vccs op on cp cn gm =
    if gm <> 0.0 then acc := { !acc with vccs = (op, on, cp, cn, gm) :: !acc.vccs }
  in
  let handle = function
    | El.Resistor { p; n; r; _ } -> add_cond (ni p) (ni n) (1.0 /. r)
    | El.Capacitor { p; n; c; _ } -> add_cap (ni p) (ni n) c
    | El.Isource { p; n; i; _ } ->
      if i.El.ac <> 0.0 then
        acc := { !acc with irhs = (ni p, ni n, i.El.ac) :: !acc.irhs }
    | El.Vsource { name; p; n; v; _ } ->
      let k = Indexing.vsource_index idx name in
      acc := { !acc with vrows = (k, ni p, ni n, v.El.ac) :: !acc.vrows }
    | El.Mos { dev; d; g; s; b } ->
      let op = Dcop.device_op dcop dev.Device.Mos.name in
      let e = op.Device.Op.eval and cc = op.Device.Op.caps in
      let nd = ni d and ng = ni g and ns = ni s and nb = ni b in
      add_cond nd ns e.Device.Model.gds;
      add_vccs nd ns ng ns e.Device.Model.gm;
      add_vccs nd ns nb ns e.Device.Model.gmb;
      add_cap ng ns cc.Device.Caps.cgs;
      add_cap ng nd cc.Device.Caps.cgd;
      add_cap ng nb cc.Device.Caps.cgb;
      add_cap nd nb cc.Device.Caps.cdb;
      add_cap ns nb cc.Device.Caps.csb
  in
  List.iter handle (Netlist.Circuit.elements circuit);
  { idx; stamp = !acc }

type factored = {
  net : t;
  lu : C.lu;
}

let assemble net ~freq =
  let n = Indexing.size net.idx in
  let y = C.create n n in
  let quad p q v =
    (* conductance-style 4-point stamp *)
    let add i j x = C.add_to y i j x in
    (match p with Some i -> add i i v | None -> ());
    (match q with Some j -> add j j v | None -> ());
    (match (p, q) with
     | Some i, Some j ->
       add i j (Complex.neg v);
       add j i (Complex.neg v)
     | Some _, None | None, Some _ | None, None -> ())
  in
  List.iter (fun (p, q, g) -> quad p q (cx g)) net.stamp.conds;
  let w = 2.0 *. Float.pi *. freq in
  List.iter
    (fun (p, q, c) -> quad p q { Complex.re = 0.0; im = w *. c })
    net.stamp.caps;
  List.iter
    (fun (op, on, cp, cn, gm) ->
      let g = cx gm in
      let add_out out sign =
        match out with
        | None -> ()
        | Some i ->
          (match cp with Some j -> C.add_to y i j (if sign then g else Complex.neg g) | None -> ());
          (match cn with Some j -> C.add_to y i j (if sign then Complex.neg g else g) | None -> ())
      in
      add_out op true;
      add_out on false)
    net.stamp.vccs;
  List.iter
    (fun (k, p, q, _ac) ->
      (match p with
       | Some i ->
         C.add_to y i k Complex.one;
         C.add_to y k i Complex.one
       | None -> ());
      (match q with
       | Some j ->
         C.add_to y j k (Complex.neg Complex.one);
         C.add_to y k j (Complex.neg Complex.one)
       | None -> ()))
    net.stamp.vrows;
  (* tiny gmin keeps Y regular at very low frequency on isolated nodes *)
  for i = 0 to Indexing.node_count net.idx - 1 do
    C.add_to y i i (cx 1e-15)
  done;
  y

let factor net ~freq =
  if !Obs.Config.flag then Obs.Metrics.incr "sim.acs.factorizations";
  { net; lu = C.lu_factor (assemble net ~freq) }

let factor_result net ~freq =
  match factor net ~freq with
  | f -> Ok f
  | exception e ->
    (match Sim_error.of_exn ~analysis:"acs.factor" e with
     | Some err -> Error err
     | None -> raise e)

let rhs_sources net =
  let n = Indexing.size net.idx in
  let j = Array.make n Complex.zero in
  List.iter
    (fun (p, q, mag) ->
      (* current p -> n: leaves p, enters n *)
      (match p with Some i -> j.(i) <- Complex.sub j.(i) (cx mag) | None -> ());
      (match q with Some i -> j.(i) <- Complex.add j.(i) (cx mag) | None -> ()))
    net.stamp.irhs;
  List.iter (fun (k, _, _, ac) -> j.(k) <- cx ac) net.stamp.vrows;
  j

let solve_sources f =
  if !Obs.Config.flag then Obs.Metrics.incr "sim.acs.solves";
  C.lu_solve f.lu (rhs_sources f.net)

let solve_injection f ~p ~n =
  if !Obs.Config.flag then Obs.Metrics.incr "sim.acs.solves";
  let nn = Indexing.size f.net.idx in
  let j = Array.make nn Complex.zero in
  (match Indexing.node_index f.net.idx p with
   | Some i -> j.(i) <- Complex.sub j.(i) Complex.one
   | None -> ());
  (match Indexing.node_index f.net.idx n with
   | Some i -> j.(i) <- Complex.add j.(i) Complex.one
   | None -> ());
  C.lu_solve f.lu j

let voltage net x name =
  match Indexing.node_index net.idx name with
  | None -> Complex.zero
  | Some i -> x.(i)

let transfer net ~freq ~out =
  let f = factor net ~freq in
  voltage net (solve_sources f) out

let transfer_result net ~freq ~out =
  Result.map
    (fun f -> voltage net (solve_sources f) out)
    (factor_result net ~freq)

let output_impedance net ~freq ~out =
  let f = factor net ~freq in
  voltage net (solve_injection f ~p:Netlist.Element.ground ~n:out) out

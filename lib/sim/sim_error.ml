type t =
  | No_convergence of { analysis : string; detail : string }
  | Singular_matrix of { analysis : string; column : int }
  | Timeout of { analysis : string; after_s : float }

exception Deadline_exceeded of string * float

let message = function
  | No_convergence { analysis; detail } ->
    Printf.sprintf "%s: no convergence (%s)" analysis detail
  | Singular_matrix { analysis; column } ->
    Printf.sprintf "%s: singular matrix at column %d" analysis column
  | Timeout { analysis; after_s } ->
    Printf.sprintf "%s: deadline exceeded after %.3f s" analysis after_s

let to_exn = function
  | No_convergence { detail; _ } -> Phys.Numerics.No_convergence detail
  | Singular_matrix { column; _ } -> Linalg.Singular column
  | Timeout { analysis; after_s } -> Deadline_exceeded (analysis, after_s)

let of_exn ~analysis = function
  | Phys.Numerics.No_convergence detail ->
    Some (No_convergence { analysis; detail })
  | Linalg.Singular column -> Some (Singular_matrix { analysis; column })
  | Deadline_exceeded (analysis, after_s) ->
    Some (Timeout { analysis; after_s })
  | _ -> None

let pp fmt e = Format.pp_print_string fmt (message e)

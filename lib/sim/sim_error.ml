type t =
  | No_convergence of { analysis : string; detail : string }
  | Singular_matrix of { analysis : string; column : int }

let message = function
  | No_convergence { analysis; detail } ->
    Printf.sprintf "%s: no convergence (%s)" analysis detail
  | Singular_matrix { analysis; column } ->
    Printf.sprintf "%s: singular matrix at column %d" analysis column

let to_exn = function
  | No_convergence { detail; _ } -> Phys.Numerics.No_convergence detail
  | Singular_matrix { column; _ } -> Linalg.Singular column

let of_exn ~analysis = function
  | Phys.Numerics.No_convergence detail ->
    Some (No_convergence { analysis; detail })
  | Linalg.Singular column -> Some (Singular_matrix { analysis; column })
  | _ -> None

let pp fmt e = Format.pp_print_string fmt (message e)

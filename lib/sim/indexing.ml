type t = {
  node_of : (string, int) Hashtbl.t;
  vsrc_of : (string, int) Hashtbl.t;
  names : string array;
  n_nodes : int;
  n_total : int;
}

(* Index assignment is order-identical to the original map-based
   implementation: nodes in [Circuit.nodes] order (sorted, ground
   removed), then one branch-current row per voltage source in element
   order.  Only the lookup structure changed (hash table instead of a
   balanced map) — every solve builds one of these, so construction is
   on the hot path. *)
let build circuit =
  let nodes = Netlist.Circuit.nodes circuit in
  let n_nodes = List.length nodes in
  let node_of = Hashtbl.create (2 * n_nodes) in
  List.iteri (fun i name -> Hashtbl.replace node_of name i) nodes;
  let vsrc_of = Hashtbl.create 8 in
  let n_total =
    List.fold_left
      (fun i e ->
        match e with
        | Netlist.Element.Vsource { name; _ } ->
          Hashtbl.replace vsrc_of name i;
          i + 1
        | Netlist.Element.Mos _ | Netlist.Element.Resistor _
        | Netlist.Element.Capacitor _ | Netlist.Element.Isource _ -> i)
      n_nodes
      (Netlist.Circuit.elements circuit)
  in
  { node_of; vsrc_of; names = Array.of_list nodes; n_nodes; n_total }

let size t = t.n_total
let node_count t = t.n_nodes

let node_index t name =
  if name = Netlist.Element.ground then None
  else
    match Hashtbl.find_opt t.node_of name with
    | Some _ as r -> r
    | None ->
      invalid_arg (Printf.sprintf "Indexing.node_index: unknown node %s" name)

let node_index_exn t name =
  match node_index t name with
  | Some i -> i
  | None -> invalid_arg "Indexing.node_index_exn: ground node"

let vsource_index t name =
  match Hashtbl.find_opt t.vsrc_of name with
  | Some i -> i
  | None ->
    invalid_arg (Printf.sprintf "Indexing.vsource_index: unknown source %s" name)

let node_names t = t.names

let vsource_names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.vsrc_of [])

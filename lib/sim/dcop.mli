(** DC operating point by Newton-Raphson on the MNA equations, with gmin
    stepping and source stepping as continuation fallbacks.  Capacitors are
    open at DC; voltage sources contribute branch-current unknowns. *)

type t
(** A converged operating point. *)

val solve :
  ?backend:Stamps.backend ->
  ?guess:(string -> float option) ->
  ?max_iter:int ->
  ?gmin:float ->
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  Netlist.Circuit.t -> t
(** Solve for the operating point.  [guess] seeds node voltages (nodes not
    covered start at 0 V); the sizing tool passes its intended bias point
    here.  [backend] selects the linear solver (default
    {!Stamps.default_backend}: [Kernel] is the unboxed in-place workspace
    path, [Reference] the boxed functor solver, [Sparse] the CSR
    symbolic/numeric-split solver — [Kernel], [Reference] and
    [Sparse Natural] produce bit-identical results).  [gmin] is the
    conductance to ground left on every node at convergence (default
    [1e-12]); the gmin-stepping ladder relaxes down to it.  Raises
    [Phys.Numerics.No_convergence] when every continuation strategy
    fails.  This is a thin wrapper over {!solve_result} kept for existing
    callers; new code that wants to degrade gracefully should match on
    the result instead. *)

val solve_result :
  ?backend:Stamps.backend ->
  ?guess:(string -> float option) ->
  ?max_iter:int ->
  ?gmin:float ->
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  Netlist.Circuit.t -> (t, Sim_error.t) result
(** {!solve} with non-convergence reified: [Error (No_convergence _)]
    when every continuation strategy fails (the simulator never reports
    [Singular_matrix] from DC — a singular Jacobian is retried under
    gmin/source stepping first).  Programming errors (bad netlists,
    unknown nets) still raise. *)

val voltage : t -> string -> float
(** Node voltage; ground is 0. Raises [Invalid_argument] on unknown nets. *)

val vsource_current : t -> string -> float
(** Branch current through a voltage source (flowing p -> n inside the
    source). *)

val device_op : t -> string -> Device.Op.t
(** Operating point of a MOS device, by device name.  Raises [Not_found]. *)

val device_ops : t -> (string * Device.Op.t) list
val iterations : t -> int
(** Total Newton iterations spent (including continuation phases). *)

val indexing : t -> Indexing.t
val circuit : t -> Netlist.Circuit.t
val process : t -> Technology.Process.t
val model_kind : t -> Device.Model.kind
val supply_current : t -> string -> float
(** Convenience: |current| drawn from the named supply voltage source. *)

val pp : Format.formatter -> t -> unit
(** Operating-point report: node voltages and device summaries. *)

let db x = 20.0 *. log10 (Float.max 1e-300 (Float.abs x))

let magnitude net ~out freq =
  if (Obs.Config.enabled ()) then Obs.Metrics.incr "sim.measure.points";
  Complex.norm (Acs.transfer net ~freq ~out)

let phase_deg net ~out freq =
  if (Obs.Config.enabled ()) then Obs.Metrics.incr "sim.measure.points";
  let h = Acs.transfer net ~freq ~out in
  Complex.arg h *. 180.0 /. Float.pi

let dc_gain ?(freq = 1.0) net ~out = magnitude net ~out freq

let unity_gain_freq ?(fmin = 1.0) ?(fmax = 1e11) net ~out =
  Obs.Trace.with_span ~cat:"sim" "measure.unity_gain_freq" @@ fun () ->
  let g f = log (magnitude net ~out f) in
  if g fmin <= 0.0 then None
  else begin
    (* log sweep until |H| < 1, then refine on log-frequency *)
    let points = Phys.Numerics.logspace fmin fmax 121 in
    let rec bracket i =
      if i >= Array.length points then None
      else if g points.(i) <= 0.0 then Some (points.(i - 1), points.(i))
      else bracket (i + 1)
    in
    match bracket 1 with
    | None -> None
    | Some (a, b) ->
      let f u = g (exp u) in
      let u = Phys.Numerics.brent ~tol:1e-9 ~f (log a) (log b) in
      Some (exp u)
  end

let phase_margin net ~out =
  match unity_gain_freq net ~out with
  | None -> None
  | Some fu ->
    let ph = phase_deg net ~out fu in
    (* An inverting or non-inverting amplifier converges to -90 deg at the
       dominant pole either from 180 or 0; normalise so that the margin is
       measured against -180. *)
    let ph = if ph > 90.0 then ph -. 360.0 else ph in
    Some (180.0 +. ph)

let gain_poles_summary net ~out =
  match unity_gain_freq net ~out with
  | None -> None
  | Some fu ->
    (match phase_margin net ~out with
     | None -> None
     | Some pm -> Some (db (dc_gain net ~out), fu, pm))

let output_resistance ?(freq = 1.0) net ~out =
  Complex.norm (Acs.output_impedance net ~freq ~out)

let bandwidth_3db ?(fmin = 1.0) ?(fmax = 1e11) net ~out =
  Obs.Trace.with_span ~cat:"sim" "measure.bandwidth_3db" @@ fun () ->
  let a0 = dc_gain ~freq:fmin net ~out in
  let target = a0 /. sqrt 2.0 in
  let g f = magnitude net ~out f -. target in
  let points = Phys.Numerics.logspace fmin fmax 121 in
  let rec bracket i =
    if i >= Array.length points then None
    else if g points.(i) <= 0.0 then Some (points.(i - 1), points.(i))
    else bracket (i + 1)
  in
  match bracket 1 with
  | None -> None
  | Some (a, b) ->
    let f u = g (exp u) in
    let u = Phys.Numerics.brent ~tol:1e-9 ~f (log a) (log b) in
    Some (exp u)

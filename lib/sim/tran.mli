(** Transient analysis: fixed-step backward-Euler integration with a full
    Newton solve per step.  Explicit capacitors use the exact companion
    model; MOS device capacitances are linearised per step at the previous
    time point (adequate for the slew-rate and settling measurements this
    library needs, where the load capacitor dominates).

    Sources follow their [wave] function when present, their DC value
    otherwise. *)

type result

val run :
  ?backend:Stamps.backend ->
  ?dt:float ->
  ?guess:(string -> float option) ->
  ?gmin:float ->
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  tstop:float ->
  Netlist.Circuit.t -> result
(** Simulate from a DC operating point at t = 0 (computed with sources at
    their [wave 0] / DC values) to [tstop].  [dt] defaults to
    [tstop / 2000].  [backend] selects the linear solver as in
    {!Dcop.solve} (default {!Stamps.default_backend}); [Kernel],
    [Reference] and [Sparse Natural] are bit-identical.  Under [Sparse]
    the companion-circuit pattern and its symbolic factorisation are
    computed once and numerically refactored at every Newton iterate of
    every step.  [gmin] (default [1e-12]) is the conductance to ground
    stamped on every node, both at the t = 0 operating point and during
    integration. *)

val times : result -> float array
val waveform : result -> string -> float array
(** Node voltage waveform.  Raises [Invalid_argument] on unknown nodes. *)

val value_at : result -> string -> float -> float
(** Linear interpolation of a node waveform at an arbitrary time. *)

val max_slope : result -> string -> float * float
(** [(rising, falling)] maximum d v/d t magnitudes of a node waveform, V/s
    — the slew-rate measurement. *)

val settling_time :
  result -> string -> target:float -> tol:float -> float option
(** First time after which the waveform stays within [tol] of [target]. *)

module R = Linalg.Real
module El = Netlist.Element
module SM = Map.Make (String)

type result = {
  ts : float array;
  idx : Indexing.t;
  states : float array array; (* states.(step).(unknown) *)
}

let source_value (s : El.source) t =
  match s.El.wave with Some w -> w t | None -> s.El.dc

(* Backward-Euler companion: i = (c/dt) (v - v_prev). *)
let cap_companion ctx ~p ~n ~c ~dt ~vprev =
  let g = c /. dt in
  Stamps.conductor ctx ~p ~n ~g ~i_extra:(-.g *. vprev)

let build proc kind circuit idx ~gmin ~time ~dt ~prev ctx =
  let prev_volt node =
    match Indexing.node_index idx node with None -> 0.0 | Some i -> prev.(i)
  in
  let stamp_elem = function
    | El.Resistor { p; n; r; _ } -> Stamps.resistor ctx ~p ~n ~r
    | El.Capacitor { p; n; c; _ } ->
      cap_companion ctx ~p ~n ~c ~dt ~vprev:(prev_volt p -. prev_volt n)
    | El.Isource { p; n; i; _ } -> Stamps.isource ctx ~p ~n (source_value i time)
    | El.Vsource { name; p; n; v; _ } ->
      let row = Indexing.vsource_index idx name in
      Stamps.vsource ctx ~row ~p ~n (source_value v time)
    | El.Mos { dev; d; g; s; b } ->
      Stamps.mos proc kind ctx ~dev ~d ~g ~s ~b;
      (* Device capacitances linearised at the previous time point. *)
      let bias =
        Stamps.device_bias dev ~vd:(prev_volt d) ~vg:(prev_volt g)
          ~vs:(prev_volt s) ~vb:(prev_volt b)
      in
      let op = Device.Op.compute proc kind dev bias in
      let cc = op.Device.Op.caps in
      let pair p n c =
        if c > 0.0 then cap_companion ctx ~p ~n ~c ~dt ~vprev:(prev_volt p -. prev_volt n)
      in
      pair g s cc.Device.Caps.cgs;
      pair g d cc.Device.Caps.cgd;
      pair g b cc.Device.Caps.cgb;
      pair d b cc.Device.Caps.cdb;
      pair s b cc.Device.Caps.csb
  in
  List.iter stamp_elem (Netlist.Circuit.elements circuit);
  Stamps.gmin_all ctx gmin

let max_abs a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a

let newton_step backend sparse proc kind circuit idx ~gmin ~time ~dt ~prev x0 =
  let n = Indexing.size idx in
  let x = Array.copy x0 in
  let ws =
    match backend with
    | Stamps.Kernel -> Some (Linalg.Ws.real n)
    | Stamps.Reference | Stamps.Sparse _ -> None
  in
  let rec loop iter =
    if iter >= 80 then
      raise (Phys.Numerics.No_convergence
               (Printf.sprintf "Tran: Newton failed at t=%g" time))
    else begin
      let ctx =
        match ws, sparse with
        | Some w, _ -> Stamps.make_ws idx w x
        | None, Some (sm, _) ->
          Stamps.make_sparse idx sm ~f:(Linalg.Ws.sparse_real n).Linalg.Ws.srhs
            x
        | None, None -> Stamps.make idx x
      in
      build proc kind circuit idx ~gmin ~time ~dt ~prev ctx;
      let f = ctx.Stamps.f in
      let delta =
        try
          match ctx.Stamps.jac, ws with
          | Stamps.Unboxed m, Some w ->
            for i = 0 to n - 1 do
              Array.unsafe_set f i (-.(Array.unsafe_get f i))
            done;
            Linalg.Dense_f.lu_factor_in_place m ~piv:w.Linalg.Ws.piv;
            Linalg.Dense_f.lu_solve_into m ~piv:w.Linalg.Ws.piv
              ~b:w.Linalg.Ws.rhs ~x:w.Linalg.Ws.delta;
            w.Linalg.Ws.delta
          | Stamps.Boxed m, _ -> R.solve m (Array.map (fun v -> -.v) f)
          | Stamps.Csr sm, _ ->
            let fact =
              match sparse with Some (_, fact) -> fact | None -> assert false
            in
            for i = 0 to n - 1 do
              Array.unsafe_set f i (-.(Array.unsafe_get f i))
            done;
            let sws = Linalg.Ws.sparse_real n in
            let fallback () =
              (* the static pivot order failed numerically at this
                 iterate — a zero pivot (e.g. exact cancellation across a
                 0 V feedback source) or overflow through a tiny one;
                 retry the same values under the pivoting natural-order
                 factor of the same pattern *)
              if (Obs.Config.enabled ()) then
                Obs.Metrics.incr "sim.tran.pivot_fallbacks";
              let nfact =
                Linalg.Sparse.Real.create
                  (Linalg.Sparse.symbolic Linalg.Sparse.Natural
                     sm.Stamps.spat)
              in
              Linalg.Sparse.Real.refactor nfact ~vals:sm.Stamps.svals;
              Linalg.Sparse.Real.solve_into nfact ~b:f
                ~x:sws.Linalg.Ws.sdelta
            in
            let is_md = backend = Stamps.Sparse Linalg.Sparse.Min_degree in
            (try
               Linalg.Sparse.Real.refactor fact ~vals:sm.Stamps.svals;
               Linalg.Sparse.Real.solve_into fact ~b:f
                 ~x:sws.Linalg.Ws.sdelta
             with Linalg.Singular _ when is_md -> fallback ());
            if is_md
               && not
                    (Array.for_all Float.is_finite sws.Linalg.Ws.sdelta)
            then fallback ();
            sws.Linalg.Ws.sdelta
          | Stamps.Unboxed _, None -> assert false
        with Linalg.Singular _ ->
          raise (Phys.Numerics.No_convergence
                   (Printf.sprintf "Tran: singular Jacobian at t=%g" time))
      in
      let m = max_abs delta in
      let scale = if m > 0.5 then 0.5 /. m else 1.0 in
      Array.iteri (fun i d -> x.(i) <- x.(i) +. scale *. d) delta;
      if m *. scale < 1e-9 then x else loop (iter + 1)
    end
  in
  loop 0

(* The DC operating point at t = 0 uses the waveform values at time 0
   rather than the DC fields. *)
let circuit_at_t0 circuit =
  let freeze (s : El.source) = { s with El.dc = source_value s 0.0 } in
  let rewrite = function
    | El.Isource ({ i; _ } as r) -> El.Isource { r with i = freeze i }
    | El.Vsource ({ v; _ } as r) -> El.Vsource { r with v = freeze v }
    | (El.Mos _ | El.Resistor _ | El.Capacitor _) as e -> e
  in
  List.fold_left
    (fun acc e -> Netlist.Circuit.add acc (rewrite e))
    (Netlist.Circuit.create ~title:(Netlist.Circuit.title circuit))
    (Netlist.Circuit.elements circuit)

let run ?backend ?dt ?(guess = fun _ -> None) ?(gmin = 1e-12) ~proc ~kind
    ~tstop circuit =
  assert (tstop > 0.0);
  let backend =
    match backend with Some b -> b | None -> Stamps.default_backend ()
  in
  let dt = match dt with Some d -> d | None -> tstop /. 2000.0 in
  let n_steps = int_of_float (Float.ceil (tstop /. dt)) in
  let dc = Dcop.solve ~backend ~guess ~gmin ~proc ~kind (circuit_at_t0 circuit) in
  let idx = Dcop.indexing dc in
  (* The companion pattern is bias-independent, so the symbolic analysis
     is shared by every Newton iterate of every time step. *)
  let sparse =
    match backend with
    | Stamps.Sparse ordering ->
      let pat = Stamps.tran_pattern idx circuit in
      let sym = Linalg.Sparse.symbolic ordering pat in
      Some (Stamps.smat_of_pattern pat, Linalg.Sparse.Real.create sym)
    | Stamps.Kernel | Stamps.Reference -> None
  in
  let x0 =
    Array.init (Indexing.size idx) (fun i ->
      if i < Indexing.node_count idx then
        Dcop.voltage dc (Indexing.node_names idx).(i)
      else 0.0)
  in
  let states = Array.make (n_steps + 1) x0 in
  let ts = Array.init (n_steps + 1) (fun i -> float_of_int i *. dt) in
  let prev = ref x0 in
  for step = 1 to n_steps do
    let time = ts.(step) in
    let x =
      newton_step backend sparse proc kind circuit idx ~gmin ~time ~dt
        ~prev:!prev !prev
    in
    states.(step) <- x;
    prev := x
  done;
  { ts; idx; states }

let times r = r.ts

let waveform r node =
  match Indexing.node_index r.idx node with
  | None -> Array.map (fun _ -> 0.0) r.ts
  | Some i -> Array.map (fun s -> s.(i)) r.states

let value_at r node t =
  let w = waveform r node in
  let pts = Array.mapi (fun i v -> (r.ts.(i), v)) w in
  Phys.Numerics.interp_linear pts t

let max_slope r node =
  let w = waveform r node in
  let rising = ref 0.0 and falling = ref 0.0 in
  for i = 1 to Array.length w - 1 do
    let slope = (w.(i) -. w.(i - 1)) /. (r.ts.(i) -. r.ts.(i - 1)) in
    if slope > !rising then rising := slope;
    if -.slope > !falling then falling := -.slope
  done;
  (!rising, !falling)

let settling_time r node ~target ~tol =
  let w = waveform r node in
  let n = Array.length w in
  (* walk backwards to find the last excursion outside the band *)
  let rec last_out i =
    if i < 0 then None
    else if Float.abs (w.(i) -. target) > tol then Some i
    else last_out (i - 1)
  in
  match last_out (n - 1) with
  | None -> Some 0.0
  | Some i when i = n - 1 -> None
  | Some i -> Some r.ts.(i + 1)

module R = Linalg.Real

type t = {
  idx : Indexing.t;
  x : float array;
  mutable ops_cache : (string * Device.Op.t) list option;
      (* device operating points, computed on first access: solves that
         only need voltages (transient initial conditions, bias searches)
         skip the per-device cap/geometry assembly entirely.  The compute
         is deterministic, so the benign race of two domains filling the
         cache concurrently stores structurally identical values. *)
  iters : int;
  circ : Netlist.Circuit.t;
  proc : Technology.Process.t;
  kind : Device.Model.kind;
}

let max_abs a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a

exception Diverged

(* One Newton solve of a compiled stamp program at fixed gmin/alpha.
   Raises [Diverged] on failure.  Iteration counts, damping-scale retreats
   and the residual at exit are recorded as a telemetry span when enabled.

   Under the [Kernel] backend every iterate re-stamps the calling domain's
   reusable workspace and factors it in place, so the whole Newton loop
   performs no linear-algebra allocation; [Reference] rebuilds the boxed
   functor system per iterate exactly as the original implementation.
   [Sparse] runs the symbolic analysis once up front (pattern, ordering,
   fill slots — cached per domain across attempts and solves) and then
   only numerically refactors per iterate, stamping through the
   slot-resolved program. *)
let newton backend kind prog idx ~gmin ~alpha ~max_iter x0 =
  let n = Indexing.size idx in
  assert (Array.length x0 = n);
  let x = Array.copy x0 in
  let ws =
    match backend with
    | Stamps.Kernel -> Some (Linalg.Ws.real n)
    | Stamps.Reference | Stamps.Sparse _ -> None
  in
  let sparse =
    match backend with
    | Stamps.Sparse ordering ->
      let pat = Stamps.dc_pattern idx prog in
      let sp = Stamps.compile_slots pat idx prog in
      let sym = Linalg.Sparse.symbolic ordering pat in
      Some (Stamps.smat_of_pattern pat, sp, Linalg.Sparse.Real.create sym)
    | Stamps.Kernel | Stamps.Reference -> None
  in
  let step_limit = 0.5 in
  (* local accumulators keep the hot loop free of telemetry lookups *)
  let damped = ref 0 in
  let residual = ref infinity in
  let rec loop iter =
    if iter >= max_iter then raise Diverged
    else begin
      let ctx =
        match ws, sparse with
        | Some w, _ -> Stamps.make_ws idx w x
        | None, Some (sm, _, _) ->
          Stamps.make_sparse idx sm ~f:(Linalg.Ws.sparse_real n).Linalg.Ws.srhs
            x
        | None, None -> Stamps.make idx x
      in
      (match sparse with
       | Some (_, sp, _) -> Stamps.run_sparse kind sp ctx ~gmin ~alpha
       | None -> Stamps.run kind prog ctx ~gmin ~alpha);
      let f = ctx.Stamps.f in
      let delta =
        try
          match ctx.Stamps.jac, ws with
          | Stamps.Unboxed m, Some w ->
            (* RHS is -f; negate the residual buffer in place, then factor
               and solve into the workspace without allocating *)
            for i = 0 to n - 1 do
              Array.unsafe_set f i (-.(Array.unsafe_get f i))
            done;
            Linalg.Dense_f.lu_factor_in_place m ~piv:w.Linalg.Ws.piv;
            Linalg.Dense_f.lu_solve_into m ~piv:w.Linalg.Ws.piv
              ~b:w.Linalg.Ws.rhs ~x:w.Linalg.Ws.delta;
            w.Linalg.Ws.delta
          | Stamps.Boxed m, _ -> R.solve m (Array.map (fun v -> -.v) f)
          | Stamps.Csr sm, _ ->
            let fact =
              match sparse with Some (_, _, fact) -> fact | None -> assert false
            in
            (* same RHS convention as the kernel path: negate in place,
               refactor over the frozen pattern, solve into the sparse
               workspace *)
            for i = 0 to n - 1 do
              Array.unsafe_set f i (-.(Array.unsafe_get f i))
            done;
            let sws = Linalg.Ws.sparse_real n in
            let fallback () =
              (* the static pivot order failed numerically at this
                 iterate — a zero pivot or overflow through a tiny one;
                 retry the same values with the pivoting natural-order
                 factor over the same pattern *)
              if (Obs.Config.enabled ()) then
                Obs.Metrics.incr "sim.dcop.pivot_fallbacks";
              let nfact =
                Linalg.Sparse.Real.create
                  (Linalg.Sparse.symbolic Linalg.Sparse.Natural
                     sm.Stamps.spat)
              in
              Linalg.Sparse.Real.refactor nfact ~vals:sm.Stamps.svals;
              Linalg.Sparse.Real.solve_into nfact ~b:f
                ~x:sws.Linalg.Ws.sdelta
            in
            let is_md = backend = Stamps.Sparse Linalg.Sparse.Min_degree in
            (try
               Linalg.Sparse.Real.refactor fact ~vals:sm.Stamps.svals;
               Linalg.Sparse.Real.solve_into fact ~b:f ~x:sws.Linalg.Ws.sdelta
             with Linalg.Singular _ when is_md -> fallback ());
            if is_md
               && not (Array.for_all Float.is_finite sws.Linalg.Ws.sdelta)
            then fallback ();
            sws.Linalg.Ws.sdelta
          | Stamps.Unboxed _, None -> assert false
        with Linalg.Singular _ -> raise Diverged
      in
      let m = max_abs delta in
      if Float.is_nan m then raise Diverged;
      let scale = if m > step_limit then step_limit /. m else 1.0 in
      if scale < 1.0 then Stdlib.incr damped;
      Array.iteri (fun i d -> x.(i) <- x.(i) +. scale *. d) delta;
      residual := max_abs f;
      if m *. scale < 1e-9 && !residual < 1e-9 then (x, iter + 1)
      else loop (iter + 1)
    end
  in
  if not (Obs.Config.enabled ()) then loop 0
  else
    Obs.Trace.with_span ~cat:"sim"
      ~args:[ ("gmin", Obs.Trace.Float gmin); ("alpha", Obs.Trace.Float alpha) ]
      "dcop.newton"
      (fun () ->
        match loop 0 with
        | x, iters ->
          Obs.Trace.add_arg "iters" (Obs.Trace.Int iters);
          Obs.Trace.add_arg "damped_steps" (Obs.Trace.Int !damped);
          Obs.Trace.add_arg "residual" (Obs.Trace.Float !residual);
          Obs.Metrics.add "sim.dcop.newton_iters" (float_of_int iters);
          Obs.Metrics.add "sim.dcop.damped_steps" (float_of_int !damped);
          Obs.Metrics.set "sim.dcop.exit_residual" !residual;
          (x, iters)
        | exception Diverged ->
          Obs.Trace.add_arg "diverged" (Obs.Trace.Bool true);
          Obs.Metrics.incr "sim.dcop.diverged_attempts";
          raise Diverged)

let initial_guess idx guess =
  let n = Indexing.size idx in
  let x = Array.make n 0.0 in
  Array.iteri
    (fun i name -> match guess name with Some v -> x.(i) <- v | None -> ())
    (Indexing.node_names idx);
  x

let device_ops_at proc kind circuit volt =
  List.map
    (fun (dev, d, g, s, b) ->
      let bias =
        Stamps.device_bias dev ~vd:(volt d) ~vg:(volt g) ~vs:(volt s) ~vb:(volt b)
      in
      (dev.Device.Mos.name, Device.Op.compute proc kind dev bias))
    (Netlist.Circuit.mos_devices circuit)

let solve ?backend ?(guess = fun _ -> None) ?(max_iter = 100) ?(gmin = 1e-12)
    ~proc ~kind circuit =
  Obs.Trace.with_span ~cat:"sim" "dcop.solve" @@ fun () ->
  let t0 = Obs.Clock.monotonic_us () in
  let backend =
    match backend with Some b -> b | None -> Stamps.default_backend ()
  in
  let idx = Indexing.build circuit in
  let prog = Stamps.compile proc idx circuit in
  let x0 = initial_guess idx guess in
  let total_iters = ref 0 in
  let attempt ~gmin ~alpha x =
    let x, it = newton backend kind prog idx ~gmin ~alpha ~max_iter x in
    total_iters := !total_iters + it;
    x
  in
  let final_gmin = gmin in
  let x =
    try attempt ~gmin:final_gmin ~alpha:1.0 x0
    with Diverged ->
      Obs.Log.warn (fun m ->
        m "dcop: Newton diverged on the direct attempt, retrying with gmin \
           stepping");
      Obs.Metrics.incr "sim.dcop.gmin_stepping_runs";
      (* gmin stepping: heavy damping to ground first, relaxed gradually;
         each stage starts from the previous stage's solution. *)
      let try_gmin_stepping x0 =
        let gmins =
          List.filter (fun g -> g > final_gmin) [ 1e-2; 1e-4; 1e-6; 1e-8; 1e-10 ]
          @ [ final_gmin ]
        in
        List.fold_left (fun x gmin -> attempt ~gmin ~alpha:1.0 x) x0 gmins
      in
      (try try_gmin_stepping x0
       with Diverged ->
         Obs.Log.warn (fun m ->
           m "dcop: gmin stepping diverged, retrying with source stepping");
         Obs.Metrics.incr "sim.dcop.source_stepping_runs";
         (* source stepping from a de-energised circuit *)
         (try
            let alphas = [ 0.0; 0.1; 0.25; 0.4; 0.55; 0.7; 0.85; 1.0 ] in
            let x =
              List.fold_left
                (fun x alpha -> attempt ~gmin:1e-9 ~alpha x)
                (Array.make (Indexing.size idx) 0.0)
                alphas
            in
            attempt ~gmin:final_gmin ~alpha:1.0 x
          with Diverged ->
            Obs.Metrics.incr "sim.dcop.failures";
            raise (Phys.Numerics.No_convergence "Dcop.solve: DC analysis failed")))
  in
  if (Obs.Config.enabled ()) then begin
    Obs.Metrics.incr "sim.dcop.solves";
    Obs.Metrics.observe "sim.dcop.solve_us" (Obs.Clock.monotonic_us () -. t0);
    Obs.Trace.add_arg "total_iters" (Obs.Trace.Int !total_iters);
    Obs.Trace.add_arg "unknowns" (Obs.Trace.Int (Indexing.size idx))
  end;
  { idx; x; ops_cache = None; iters = !total_iters; circ = circuit; proc;
    kind }

let solve_result ?backend ?guess ?max_iter ?gmin ~proc ~kind circuit =
  match solve ?backend ?guess ?max_iter ?gmin ~proc ~kind circuit with
  | t -> Ok t
  | exception e ->
    (match Sim_error.of_exn ~analysis:"dcop" e with
     | Some err -> Error err
     | None -> raise e)

let voltage t node =
  match Indexing.node_index t.idx node with None -> 0.0 | Some i -> t.x.(i)

let vsource_current t name = t.x.(Indexing.vsource_index t.idx name)

let device_ops t =
  match t.ops_cache with
  | Some ops -> ops
  | None ->
    let ops = device_ops_at t.proc t.kind t.circ (voltage t) in
    t.ops_cache <- Some ops;
    ops

let device_op t name = List.assoc name (device_ops t)
let iterations t = t.iters
let indexing t = t.idx
let circuit t = t.circ
let process t = t.proc
let model_kind t = t.kind
let supply_current t name = Float.abs (vsource_current t name)

let pp fmt t =
  Format.fprintf fmt "@[<v>operating point (%d Newton iterations):@," t.iters;
  Array.iteri
    (fun i name -> Format.fprintf fmt "  V(%s) = %.6f V@," name t.x.(i))
    (Indexing.node_names t.idx);
  List.iter
    (fun (name, op) -> Format.fprintf fmt "  %s: %a@," name Device.Op.pp op)
    (device_ops t);
  Format.fprintf fmt "@]"

module R = Linalg.Real
module El = Netlist.Element

type t = {
  idx : Indexing.t;
  x : float array;
  ops : (string * Device.Op.t) list;
  iters : int;
  circ : Netlist.Circuit.t;
  proc : Technology.Process.t;
  kind : Device.Model.kind;
}

(* Residual f(x) (KCL: currents leaving each node) and Jacobian.  [alpha]
   scales all independent sources for source stepping; [gmin] is a
   conductance to ground on every node. *)
let build proc kind circuit idx ~gmin ~alpha x =
  let ctx = Stamps.make idx x in
  let stamp_elem = function
    | El.Resistor { p; n; r; _ } -> Stamps.resistor ctx ~p ~n ~r
    | El.Capacitor _ -> ()
    | El.Isource { p; n; i; _ } -> Stamps.isource ctx ~p ~n (alpha *. i.El.dc)
    | El.Vsource { name; p; n; v; _ } ->
      let row = Indexing.vsource_index idx name in
      Stamps.vsource ctx ~row ~p ~n (alpha *. v.El.dc)
    | El.Mos { dev; d; g; s; b } -> Stamps.mos proc kind ctx ~dev ~d ~g ~s ~b
  in
  List.iter stamp_elem (Netlist.Circuit.elements circuit);
  Stamps.gmin_all ctx gmin;
  (ctx.Stamps.jac, ctx.Stamps.f)

let max_abs a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a

exception Diverged

(* One Newton solve at fixed gmin/alpha.  Raises [Diverged] on failure.
   Iteration counts, damping-scale retreats and the residual at exit are
   recorded as a telemetry span when enabled. *)
let newton proc kind circuit idx ~gmin ~alpha ~max_iter x0 =
  let n = Indexing.size idx in
  assert (Array.length x0 = n);
  let x = Array.copy x0 in
  let step_limit = 0.5 in
  (* local accumulators keep the hot loop free of telemetry lookups *)
  let damped = ref 0 in
  let residual = ref infinity in
  let rec loop iter =
    if iter >= max_iter then raise Diverged
    else begin
      let jac, f = build proc kind circuit idx ~gmin ~alpha x in
      let delta =
        try R.solve jac (Array.map (fun v -> -.v) f)
        with Linalg.Singular _ -> raise Diverged
      in
      let m = max_abs delta in
      if Float.is_nan m then raise Diverged;
      let scale = if m > step_limit then step_limit /. m else 1.0 in
      if scale < 1.0 then Stdlib.incr damped;
      Array.iteri (fun i d -> x.(i) <- x.(i) +. scale *. d) delta;
      residual := max_abs f;
      if m *. scale < 1e-9 && !residual < 1e-9 then (x, iter + 1)
      else loop (iter + 1)
    end
  in
  if not !Obs.Config.flag then loop 0
  else
    Obs.Trace.with_span ~cat:"sim"
      ~args:[ ("gmin", Obs.Trace.Float gmin); ("alpha", Obs.Trace.Float alpha) ]
      "dcop.newton"
      (fun () ->
        match loop 0 with
        | x, iters ->
          Obs.Trace.add_arg "iters" (Obs.Trace.Int iters);
          Obs.Trace.add_arg "damped_steps" (Obs.Trace.Int !damped);
          Obs.Trace.add_arg "residual" (Obs.Trace.Float !residual);
          Obs.Metrics.add "sim.dcop.newton_iters" (float_of_int iters);
          Obs.Metrics.add "sim.dcop.damped_steps" (float_of_int !damped);
          Obs.Metrics.set "sim.dcop.exit_residual" !residual;
          (x, iters)
        | exception Diverged ->
          Obs.Trace.add_arg "diverged" (Obs.Trace.Bool true);
          Obs.Metrics.incr "sim.dcop.diverged_attempts";
          raise Diverged)

let initial_guess idx guess =
  let n = Indexing.size idx in
  let x = Array.make n 0.0 in
  Array.iteri
    (fun i name -> match guess name with Some v -> x.(i) <- v | None -> ())
    (Indexing.node_names idx);
  x

let device_ops_at proc kind circuit volt =
  List.map
    (fun (dev, d, g, s, b) ->
      let bias =
        Stamps.device_bias dev ~vd:(volt d) ~vg:(volt g) ~vs:(volt s) ~vb:(volt b)
      in
      (dev.Device.Mos.name, Device.Op.compute proc kind dev bias))
    (Netlist.Circuit.mos_devices circuit)

let solve ?(guess = fun _ -> None) ?(max_iter = 100) ~proc ~kind circuit =
  Obs.Trace.with_span ~cat:"sim" "dcop.solve" @@ fun () ->
  let idx = Indexing.build circuit in
  let x0 = initial_guess idx guess in
  let total_iters = ref 0 in
  let attempt ~gmin ~alpha x =
    let x, it = newton proc kind circuit idx ~gmin ~alpha ~max_iter x in
    total_iters := !total_iters + it;
    x
  in
  let final_gmin = 1e-12 in
  let x =
    try attempt ~gmin:final_gmin ~alpha:1.0 x0
    with Diverged ->
      Obs.Log.warn (fun m ->
        m "dcop: Newton diverged on the direct attempt, retrying with gmin \
           stepping");
      Obs.Metrics.incr "sim.dcop.gmin_stepping_runs";
      (* gmin stepping: heavy damping to ground first, relaxed gradually;
         each stage starts from the previous stage's solution. *)
      let try_gmin_stepping x0 =
        let gmins = [ 1e-2; 1e-4; 1e-6; 1e-8; 1e-10; final_gmin ] in
        List.fold_left (fun x gmin -> attempt ~gmin ~alpha:1.0 x) x0 gmins
      in
      (try try_gmin_stepping x0
       with Diverged ->
         Obs.Log.warn (fun m ->
           m "dcop: gmin stepping diverged, retrying with source stepping");
         Obs.Metrics.incr "sim.dcop.source_stepping_runs";
         (* source stepping from a de-energised circuit *)
         (try
            let alphas = [ 0.0; 0.1; 0.25; 0.4; 0.55; 0.7; 0.85; 1.0 ] in
            let x =
              List.fold_left
                (fun x alpha -> attempt ~gmin:1e-9 ~alpha x)
                (Array.make (Indexing.size idx) 0.0)
                alphas
            in
            attempt ~gmin:final_gmin ~alpha:1.0 x
          with Diverged ->
            Obs.Metrics.incr "sim.dcop.failures";
            raise (Phys.Numerics.No_convergence "Dcop.solve: DC analysis failed")))
  in
  let volt node =
    match Indexing.node_index idx node with None -> 0.0 | Some i -> x.(i)
  in
  let ops = device_ops_at proc kind circuit volt in
  if !Obs.Config.flag then begin
    Obs.Metrics.incr "sim.dcop.solves";
    Obs.Trace.add_arg "total_iters" (Obs.Trace.Int !total_iters);
    Obs.Trace.add_arg "unknowns" (Obs.Trace.Int (Indexing.size idx))
  end;
  { idx; x; ops; iters = !total_iters; circ = circuit; proc; kind }

let solve_result ?guess ?max_iter ~proc ~kind circuit =
  match solve ?guess ?max_iter ~proc ~kind circuit with
  | t -> Ok t
  | exception e ->
    (match Sim_error.of_exn ~analysis:"dcop" e with
     | Some err -> Error err
     | None -> raise e)

let voltage t node =
  match Indexing.node_index t.idx node with None -> 0.0 | Some i -> t.x.(i)

let vsource_current t name = t.x.(Indexing.vsource_index t.idx name)
let device_op t name = List.assoc name t.ops
let device_ops t = t.ops
let iterations t = t.iters
let indexing t = t.idx
let circuit t = t.circ
let process t = t.proc
let model_kind t = t.kind
let supply_current t name = Float.abs (vsource_current t name)

let pp fmt t =
  Format.fprintf fmt "@[<v>operating point (%d Newton iterations):@," t.iters;
  Array.iteri
    (fun i name -> Format.fprintf fmt "  V(%s) = %.6f V@," name t.x.(i))
    (Indexing.node_names t.idx);
  List.iter
    (fun (name, op) -> Format.fprintf fmt "  %s: %a@," name Device.Op.pp op)
    t.ops;
  Format.fprintf fmt "@]"

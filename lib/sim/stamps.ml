module R = Linalg.Real
module Mdl = Device.Model

type ctx = {
  idx : Indexing.t;
  jac : R.t;
  f : float array;
  x : float array;
}

let make idx x =
  let n = Indexing.size idx in
  assert (Array.length x = n);
  { idx; jac = R.create n n; f = Array.make n 0.0; x }

let volt ctx node =
  match Indexing.node_index ctx.idx node with
  | None -> 0.0
  | Some i -> ctx.x.(i)

let with_idx ctx node k =
  match Indexing.node_index ctx.idx node with None -> () | Some i -> k i

let add_current ctx node value =
  with_idx ctx node (fun i -> ctx.f.(i) <- ctx.f.(i) +. value)

let add_jac ctx np nq value =
  match Indexing.node_index ctx.idx np with
  | None -> ()
  | Some i ->
    (match Indexing.node_index ctx.idx nq with
     | None -> ()
     | Some j -> R.add_to ctx.jac i j value)

let conductor ctx ~p ~n ~g ~i_extra =
  let i = g *. (volt ctx p -. volt ctx n) +. i_extra in
  add_current ctx p i;
  add_current ctx n (-.i);
  add_jac ctx p p g;
  add_jac ctx p n (-.g);
  add_jac ctx n n g;
  add_jac ctx n p (-.g)

let resistor ctx ~p ~n ~r = conductor ctx ~p ~n ~g:(1.0 /. r) ~i_extra:0.0

let isource ctx ~p ~n value =
  add_current ctx p value;
  add_current ctx n (-.value)

let vsource ctx ~row ~p ~n value =
  let k = row in
  add_current ctx p ctx.x.(k);
  add_current ctx n (-.(ctx.x.(k)));
  with_idx ctx p (fun i -> R.add_to ctx.jac i k 1.0);
  with_idx ctx n (fun i -> R.add_to ctx.jac i k (-1.0));
  ctx.f.(k) <- volt ctx p -. volt ctx n -. value;
  with_idx ctx p (fun i -> R.add_to ctx.jac k i 1.0);
  with_idx ctx n (fun i -> R.add_to ctx.jac k i (-1.0))

let gmin_all ctx gmin =
  for i = 0 to Indexing.node_count ctx.idx - 1 do
    ctx.f.(i) <- ctx.f.(i) +. gmin *. ctx.x.(i);
    R.add_to ctx.jac i i gmin
  done

let device_bias dev ~vd ~vg ~vs ~vb =
  let sgn = Technology.Electrical.mos_type_sign dev.Device.Mos.mtype in
  { Mdl.vgs = sgn *. (vg -. vs);
    vds = sgn *. (vd -. vs);
    vbs = sgn *. (vb -. vs) }

let mos proc kind ctx ~dev ~d ~g ~s ~b =
  let vd = volt ctx d and vg = volt ctx g and vs = volt ctx s and vb = volt ctx b in
  let bias = device_bias dev ~vd ~vg ~vs ~vb in
  let p = Device.Mos.params proc dev in
  (* deliberately the unmemoized entry point: Newton iterates produce a
     fresh bias almost every call, so a memo here is all misses and LRU
     churn; repetition across whole solves is captured by the coarse
     memos (Monte Carlo samples, corner points, sizing results) *)
  let e = Mdl.evaluate_exact kind p ~w:dev.Device.Mos.w ~l:dev.Device.Mos.l bias in
  let sgn = Technology.Electrical.mos_type_sign dev.Device.Mos.mtype in
  let id_phys = sgn *. e.Mdl.ids in
  add_current ctx d id_phys;
  add_current ctx s (-.id_phys);
  (* dI_D/dvg = gm, /dvd = gds, /dvb = gmb, /dvs = -(gm + gds + gmb): the
     polarity signs cancel, so the entries are identical for both types. *)
  let gm = e.Mdl.gm and gds = e.Mdl.gds and gmb = e.Mdl.gmb in
  let gs = -.(gm +. gds +. gmb) in
  add_jac ctx d g gm; add_jac ctx d d gds; add_jac ctx d b gmb; add_jac ctx d s gs;
  add_jac ctx s g (-.gm); add_jac ctx s d (-.gds); add_jac ctx s b (-.gmb);
  add_jac ctx s s (-.gs)

module R = Linalg.Real
module Df = Linalg.Dense_f
module Mdl = Device.Model

type backend = Kernel | Reference

type mat = Unboxed of Df.t | Boxed of R.t

type ctx = {
  idx : Indexing.t;
  jac : mat;
  f : float array;
  x : float array;
}

let make idx x =
  let n = Indexing.size idx in
  assert (Array.length x = n);
  { idx; jac = Boxed (R.create n n); f = Array.make n 0.0; x }

let make_ws idx (ws : Linalg.Ws.real) x =
  let n = Indexing.size idx in
  assert (Array.length x = n && Df.rows ws.Linalg.Ws.jac = n);
  Df.clear ws.Linalg.Ws.jac;
  Array.fill ws.Linalg.Ws.rhs 0 n 0.0;
  { idx; jac = Unboxed ws.Linalg.Ws.jac; f = ws.Linalg.Ws.rhs; x }

(* The single accumulation primitive both backends share: everything below
   stamps through here, so the two matrix representations see the exact
   same sequence of additions and stay bit-identical. *)
let madd ctx i j v =
  match ctx.jac with
  | Unboxed m -> Df.add_to m i j v
  | Boxed m -> R.add_to m i j v

let volt ctx node =
  match Indexing.node_index ctx.idx node with
  | None -> 0.0
  | Some i -> ctx.x.(i)

let with_idx ctx node k =
  match Indexing.node_index ctx.idx node with None -> () | Some i -> k i

let add_current ctx node value =
  with_idx ctx node (fun i -> ctx.f.(i) <- ctx.f.(i) +. value)

let add_jac ctx np nq value =
  match Indexing.node_index ctx.idx np with
  | None -> ()
  | Some i ->
    (match Indexing.node_index ctx.idx nq with
     | None -> ()
     | Some j -> madd ctx i j value)

let conductor ctx ~p ~n ~g ~i_extra =
  let i = g *. (volt ctx p -. volt ctx n) +. i_extra in
  add_current ctx p i;
  add_current ctx n (-.i);
  add_jac ctx p p g;
  add_jac ctx p n (-.g);
  add_jac ctx n n g;
  add_jac ctx n p (-.g)

let resistor ctx ~p ~n ~r = conductor ctx ~p ~n ~g:(1.0 /. r) ~i_extra:0.0

let isource ctx ~p ~n value =
  add_current ctx p value;
  add_current ctx n (-.value)

let vsource ctx ~row ~p ~n value =
  let k = row in
  add_current ctx p ctx.x.(k);
  add_current ctx n (-.(ctx.x.(k)));
  with_idx ctx p (fun i -> madd ctx i k 1.0);
  with_idx ctx n (fun i -> madd ctx i k (-1.0));
  ctx.f.(k) <- volt ctx p -. volt ctx n -. value;
  with_idx ctx p (fun i -> madd ctx k i 1.0);
  with_idx ctx n (fun i -> madd ctx k i (-1.0))

let gmin_all ctx gmin =
  for i = 0 to Indexing.node_count ctx.idx - 1 do
    ctx.f.(i) <- ctx.f.(i) +. gmin *. ctx.x.(i);
    madd ctx i i gmin
  done

let device_bias dev ~vd ~vg ~vs ~vb =
  let sgn = Technology.Electrical.mos_type_sign dev.Device.Mos.mtype in
  { Mdl.vgs = sgn *. (vg -. vs);
    vds = sgn *. (vd -. vs);
    vbs = sgn *. (vb -. vs) }

(* ------------------------------------------------------------------ *)
(* Compiled stamp programs                                             *)
(* ------------------------------------------------------------------ *)

(* The DC circuit walk with every node name resolved to its MNA index
   (-1 = ground) and the per-device model card fetched once.  Compiling
   hoists the string-map lookups (and their [Some i] allocations) out of
   the Newton loop: an iterate touches only int indices and the flat
   buffers.  The program preserves the element order and the exact
   floating-point operation sequence of the name-based stamps above, so
   both backends stay bit-identical to the uncompiled walk. *)
type pelem =
  | P_resistor of { pi : int; ni : int; g : float }
  | P_isource of { pi : int; ni : int; i : float }
  | P_vsource of { row : int; pi : int; ni : int; v : float }
  | P_mos of {
      dev : Device.Mos.t;
      card : Technology.Electrical.mos_params;
      sgn : float;
      di : int;
      gi : int;
      si : int;
      bi : int;
    }

type prog = pelem array

let compile proc idx circuit =
  let ridx name =
    match Indexing.node_index idx name with None -> -1 | Some i -> i
  in
  let module El = Netlist.Element in
  Array.of_list
    (List.filter_map
       (fun e ->
         match e with
         | El.Resistor { p; n; r; _ } ->
           Some (P_resistor { pi = ridx p; ni = ridx n; g = 1.0 /. r })
         | El.Capacitor _ -> None (* open at DC *)
         | El.Isource { p; n; i; _ } ->
           Some (P_isource { pi = ridx p; ni = ridx n; i = i.El.dc })
         | El.Vsource { name; p; n; v; _ } ->
           Some
             (P_vsource
                { row = Indexing.vsource_index idx name;
                  pi = ridx p;
                  ni = ridx n;
                  v = v.El.dc })
         | El.Mos { dev; d; g; s; b } ->
           Some
             (P_mos
                { dev;
                  card = Device.Mos.params proc dev;
                  sgn = Technology.Electrical.mos_type_sign dev.Device.Mos.mtype;
                  di = ridx d;
                  gi = ridx g;
                  si = ridx s;
                  bi = ridx b }))
       (Netlist.Circuit.elements circuit))

let xat ctx i = if i < 0 then 0.0 else Array.unsafe_get ctx.x i

let fadd ctx i v =
  if i >= 0 then ctx.f.(i) <- ctx.f.(i) +. v

let jadd ctx i j v = if i >= 0 && j >= 0 then madd ctx i j v

let run kind prog ctx ~gmin ~alpha =
  Array.iter
    (fun pe ->
      match pe with
      | P_resistor { pi; ni; g } ->
        (* the trailing [+. 0.0] replays [conductor]'s [i_extra] fold so a
           [-0.0] branch current normalises identically *)
        let i = (g *. (xat ctx pi -. xat ctx ni)) +. 0.0 in
        fadd ctx pi i;
        fadd ctx ni (-.i);
        jadd ctx pi pi g;
        jadd ctx pi ni (-.g);
        jadd ctx ni ni g;
        jadd ctx ni pi (-.g)
      | P_isource { pi; ni; i } ->
        let v = alpha *. i in
        fadd ctx pi v;
        fadd ctx ni (-.v)
      | P_vsource { row = k; pi; ni; v } ->
        fadd ctx pi ctx.x.(k);
        fadd ctx ni (-.(ctx.x.(k)));
        if pi >= 0 then madd ctx pi k 1.0;
        if ni >= 0 then madd ctx ni k (-1.0);
        ctx.f.(k) <- xat ctx pi -. xat ctx ni -. (alpha *. v);
        if pi >= 0 then madd ctx k pi 1.0;
        if ni >= 0 then madd ctx k ni (-1.0)
      | P_mos { dev; card; sgn; di; gi; si; bi } ->
        let vd = xat ctx di
        and vg = xat ctx gi
        and vs = xat ctx si
        and vb = xat ctx bi in
        let bias =
          { Mdl.vgs = sgn *. (vg -. vs);
            vds = sgn *. (vd -. vs);
            vbs = sgn *. (vb -. vs) }
        in
        let e =
          Mdl.evaluate_exact kind card ~w:dev.Device.Mos.w ~l:dev.Device.Mos.l
            bias
        in
        let id_phys = sgn *. e.Mdl.ids in
        fadd ctx di id_phys;
        fadd ctx si (-.id_phys);
        let gm = e.Mdl.gm and gds = e.Mdl.gds and gmb = e.Mdl.gmb in
        let gs = -.(gm +. gds +. gmb) in
        jadd ctx di gi gm;
        jadd ctx di di gds;
        jadd ctx di bi gmb;
        jadd ctx di si gs;
        jadd ctx si gi (-.gm);
        jadd ctx si di (-.gds);
        jadd ctx si bi (-.gmb);
        jadd ctx si si (-.gs))
    prog;
  gmin_all ctx gmin

let mos proc kind ctx ~dev ~d ~g ~s ~b =
  let vd = volt ctx d and vg = volt ctx g and vs = volt ctx s and vb = volt ctx b in
  let bias = device_bias dev ~vd ~vg ~vs ~vb in
  let p = Device.Mos.params proc dev in
  (* deliberately the unmemoized entry point: Newton iterates produce a
     fresh bias almost every call, so a memo here is all misses and LRU
     churn; repetition across whole solves is captured by the coarse
     memos (Monte Carlo samples, corner points, sizing results) *)
  let e = Mdl.evaluate_exact kind p ~w:dev.Device.Mos.w ~l:dev.Device.Mos.l bias in
  let sgn = Technology.Electrical.mos_type_sign dev.Device.Mos.mtype in
  let id_phys = sgn *. e.Mdl.ids in
  add_current ctx d id_phys;
  add_current ctx s (-.id_phys);
  (* dI_D/dvg = gm, /dvd = gds, /dvb = gmb, /dvs = -(gm + gds + gmb): the
     polarity signs cancel, so the entries are identical for both types. *)
  let gm = e.Mdl.gm and gds = e.Mdl.gds and gmb = e.Mdl.gmb in
  let gs = -.(gm +. gds +. gmb) in
  add_jac ctx d g gm; add_jac ctx d d gds; add_jac ctx d b gmb; add_jac ctx d s gs;
  add_jac ctx s g (-.gm); add_jac ctx s d (-.gds); add_jac ctx s b (-.gmb);
  add_jac ctx s s (-.gs)

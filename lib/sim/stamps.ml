module R = Linalg.Real
module Df = Linalg.Dense_f
module Mdl = Device.Model

type backend = Kernel | Reference | Sparse of Linalg.Sparse.ordering

let backend_of_string s =
  match String.lowercase_ascii s with
  | "kernel" -> Ok Kernel
  | "reference" -> Ok Reference
  | "sparse" | "sparse-min-degree" -> Ok (Sparse Linalg.Sparse.Min_degree)
  | "sparse-natural" -> Ok (Sparse Linalg.Sparse.Natural)
  | _ ->
    Error
      (Printf.sprintf
         "unknown backend %S (expected kernel, reference, sparse or \
          sparse-natural)" s)

let backend_name = function
  | Kernel -> "kernel"
  | Reference -> "reference"
  | Sparse Linalg.Sparse.Min_degree -> "sparse"
  | Sparse Linalg.Sparse.Natural -> "sparse-natural"

(* Default backend, selectable without code changes (LOSAC_BACKEND /
   --backend / Exec.Ctx); unrecognized env values fall back to [Kernel]
   like the other LOSAC_* switches.  Resolution order inside an
   analysis: explicit [?backend] > context-local binding
   ([with_default_backend], domain-local) > [global] > [Kernel]. *)
let global : backend ref =
  ref
    (match Sys.getenv_opt "LOSAC_BACKEND" with
     | Some s -> (match backend_of_string s with Ok b -> b | Error _ -> Kernel)
     | None -> Kernel)

let local : backend Obs.Fluid.t = Obs.Fluid.make ()

let default_backend () =
  match Obs.Fluid.get local with Some b -> b | None -> !global

let set_default_backend b = global := b

let with_default_backend b f = Obs.Fluid.with_value local b f

type smat = { spat : Linalg.Sparse.pattern; svals : float array }

let smat_of_pattern spat =
  { spat; svals = Array.make (Linalg.Sparse.nnz spat) 0.0 }

type mat = Unboxed of Df.t | Boxed of R.t | Csr of smat

type ctx = {
  idx : Indexing.t;
  jac : mat;
  f : float array;
  x : float array;
}

let make idx x =
  let n = Indexing.size idx in
  assert (Array.length x = n);
  { idx; jac = Boxed (R.create n n); f = Array.make n 0.0; x }

let make_ws idx (ws : Linalg.Ws.real) x =
  let n = Indexing.size idx in
  assert (Array.length x = n && Df.rows ws.Linalg.Ws.jac = n);
  Df.clear ws.Linalg.Ws.jac;
  Array.fill ws.Linalg.Ws.rhs 0 n 0.0;
  { idx; jac = Unboxed ws.Linalg.Ws.jac; f = ws.Linalg.Ws.rhs; x }

let make_sparse idx sm ~f x =
  let n = Indexing.size idx in
  assert (Array.length x = n && Array.length f = n);
  Array.fill sm.svals 0 (Array.length sm.svals) 0.0;
  Array.fill f 0 n 0.0;
  { idx; jac = Csr sm; f; x }

(* The single accumulation primitive both backends share: everything below
   stamps through here, so the two matrix representations see the exact
   same sequence of additions and stay bit-identical. *)
let madd ctx i j v =
  match ctx.jac with
  | Unboxed m -> Df.add_to m i j v
  | Boxed m -> R.add_to m i j v
  | Csr { spat; svals } ->
    (* binary-search slot resolution: the general path for name-based
       stamping (transient re-stamps); the compiled DC loop goes through
       [run_sparse] with precomputed slots instead *)
    let s = Linalg.Sparse.slot_exn spat i j in
    svals.(s) <- svals.(s) +. v

let volt ctx node =
  match Indexing.node_index ctx.idx node with
  | None -> 0.0
  | Some i -> ctx.x.(i)

let with_idx ctx node k =
  match Indexing.node_index ctx.idx node with None -> () | Some i -> k i

let add_current ctx node value =
  with_idx ctx node (fun i -> ctx.f.(i) <- ctx.f.(i) +. value)

let add_jac ctx np nq value =
  match Indexing.node_index ctx.idx np with
  | None -> ()
  | Some i ->
    (match Indexing.node_index ctx.idx nq with
     | None -> ()
     | Some j -> madd ctx i j value)

let conductor ctx ~p ~n ~g ~i_extra =
  let i = g *. (volt ctx p -. volt ctx n) +. i_extra in
  add_current ctx p i;
  add_current ctx n (-.i);
  add_jac ctx p p g;
  add_jac ctx p n (-.g);
  add_jac ctx n n g;
  add_jac ctx n p (-.g)

let resistor ctx ~p ~n ~r = conductor ctx ~p ~n ~g:(1.0 /. r) ~i_extra:0.0

let isource ctx ~p ~n value =
  add_current ctx p value;
  add_current ctx n (-.value)

let vsource ctx ~row ~p ~n value =
  let k = row in
  add_current ctx p ctx.x.(k);
  add_current ctx n (-.(ctx.x.(k)));
  with_idx ctx p (fun i -> madd ctx i k 1.0);
  with_idx ctx n (fun i -> madd ctx i k (-1.0));
  ctx.f.(k) <- volt ctx p -. volt ctx n -. value;
  with_idx ctx p (fun i -> madd ctx k i 1.0);
  with_idx ctx n (fun i -> madd ctx k i (-1.0))

let gmin_all ctx gmin =
  for i = 0 to Indexing.node_count ctx.idx - 1 do
    ctx.f.(i) <- ctx.f.(i) +. gmin *. ctx.x.(i);
    madd ctx i i gmin
  done

let device_bias dev ~vd ~vg ~vs ~vb =
  let sgn = Technology.Electrical.mos_type_sign dev.Device.Mos.mtype in
  { Mdl.vgs = sgn *. (vg -. vs);
    vds = sgn *. (vd -. vs);
    vbs = sgn *. (vb -. vs) }

(* ------------------------------------------------------------------ *)
(* Compiled stamp programs                                             *)
(* ------------------------------------------------------------------ *)

(* The DC circuit walk with every node name resolved to its MNA index
   (-1 = ground) and the per-device model card fetched once.  Compiling
   hoists the string-map lookups (and their [Some i] allocations) out of
   the Newton loop: an iterate touches only int indices and the flat
   buffers.  The program preserves the element order and the exact
   floating-point operation sequence of the name-based stamps above, so
   both backends stay bit-identical to the uncompiled walk. *)
type pelem =
  | P_resistor of { pi : int; ni : int; g : float }
  | P_isource of { pi : int; ni : int; i : float }
  | P_vsource of { row : int; pi : int; ni : int; v : float }
  | P_mos of {
      dev : Device.Mos.t;
      card : Technology.Electrical.mos_params;
      sgn : float;
      di : int;
      gi : int;
      si : int;
      bi : int;
    }

type prog = pelem array

let compile proc idx circuit =
  let ridx name =
    match Indexing.node_index idx name with None -> -1 | Some i -> i
  in
  let module El = Netlist.Element in
  Array.of_list
    (List.filter_map
       (fun e ->
         match e with
         | El.Resistor { p; n; r; _ } ->
           Some (P_resistor { pi = ridx p; ni = ridx n; g = 1.0 /. r })
         | El.Capacitor _ -> None (* open at DC *)
         | El.Isource { p; n; i; _ } ->
           Some (P_isource { pi = ridx p; ni = ridx n; i = i.El.dc })
         | El.Vsource { name; p; n; v; _ } ->
           Some
             (P_vsource
                { row = Indexing.vsource_index idx name;
                  pi = ridx p;
                  ni = ridx n;
                  v = v.El.dc })
         | El.Mos { dev; d; g; s; b } ->
           Some
             (P_mos
                { dev;
                  card = Device.Mos.params proc dev;
                  sgn = Technology.Electrical.mos_type_sign dev.Device.Mos.mtype;
                  di = ridx d;
                  gi = ridx g;
                  si = ridx s;
                  bi = ridx b }))
       (Netlist.Circuit.elements circuit))

let xat ctx i = if i < 0 then 0.0 else Array.unsafe_get ctx.x i

let fadd ctx i v =
  if i >= 0 then ctx.f.(i) <- ctx.f.(i) +. v

let jadd ctx i j v = if i >= 0 && j >= 0 then madd ctx i j v

let run kind prog ctx ~gmin ~alpha =
  Array.iter
    (fun pe ->
      match pe with
      | P_resistor { pi; ni; g } ->
        (* the trailing [+. 0.0] replays [conductor]'s [i_extra] fold so a
           [-0.0] branch current normalises identically *)
        let i = (g *. (xat ctx pi -. xat ctx ni)) +. 0.0 in
        fadd ctx pi i;
        fadd ctx ni (-.i);
        jadd ctx pi pi g;
        jadd ctx pi ni (-.g);
        jadd ctx ni ni g;
        jadd ctx ni pi (-.g)
      | P_isource { pi; ni; i } ->
        let v = alpha *. i in
        fadd ctx pi v;
        fadd ctx ni (-.v)
      | P_vsource { row = k; pi; ni; v } ->
        fadd ctx pi ctx.x.(k);
        fadd ctx ni (-.(ctx.x.(k)));
        if pi >= 0 then madd ctx pi k 1.0;
        if ni >= 0 then madd ctx ni k (-1.0);
        ctx.f.(k) <- xat ctx pi -. xat ctx ni -. (alpha *. v);
        if pi >= 0 then madd ctx k pi 1.0;
        if ni >= 0 then madd ctx k ni (-1.0)
      | P_mos { dev; card; sgn; di; gi; si; bi } ->
        let vd = xat ctx di
        and vg = xat ctx gi
        and vs = xat ctx si
        and vb = xat ctx bi in
        let bias =
          { Mdl.vgs = sgn *. (vg -. vs);
            vds = sgn *. (vd -. vs);
            vbs = sgn *. (vb -. vs) }
        in
        let e =
          Mdl.evaluate_exact kind card ~w:dev.Device.Mos.w ~l:dev.Device.Mos.l
            bias
        in
        let id_phys = sgn *. e.Mdl.ids in
        fadd ctx di id_phys;
        fadd ctx si (-.id_phys);
        let gm = e.Mdl.gm and gds = e.Mdl.gds and gmb = e.Mdl.gmb in
        let gs = -.(gm +. gds +. gmb) in
        jadd ctx di gi gm;
        jadd ctx di di gds;
        jadd ctx di bi gmb;
        jadd ctx di si gs;
        jadd ctx si gi (-.gm);
        jadd ctx si di (-.gds);
        jadd ctx si bi (-.gmb);
        jadd ctx si si (-.gs))
    prog;
  gmin_all ctx gmin

(* ------------------------------------------------------------------ *)
(* Sparse patterns and slot-resolved programs                          *)
(* ------------------------------------------------------------------ *)

(* every position a 4-point conductor stamp can touch (ground skipped) *)
let quad_coords acc pi ni =
  let acc = if pi >= 0 then (pi, pi) :: acc else acc in
  let acc = if ni >= 0 then (ni, ni) :: acc else acc in
  if pi >= 0 && ni >= 0 then (pi, ni) :: (ni, pi) :: acc else acc

let mos_jac_coords acc di gi si bi =
  let acc = ref acc in
  let put i j = if i >= 0 && j >= 0 then acc := (i, j) :: !acc in
  put di gi;
  put di di;
  put di bi;
  put di si;
  put si gi;
  put si di;
  put si bi;
  put si si;
  !acc

let vsource_coords acc k pi ni =
  let acc = if pi >= 0 then (pi, k) :: (k, pi) :: acc else acc in
  if ni >= 0 then (ni, k) :: (k, ni) :: acc else acc

let diag_coords acc idx =
  let acc = ref acc in
  for i = 0 to Indexing.node_count idx - 1 do
    acc := (i, i) :: !acc
  done;
  !acc

let dc_pattern idx prog =
  let acc = ref [] in
  Array.iter
    (fun pe ->
      match pe with
      | P_resistor { pi; ni; _ } -> acc := quad_coords !acc pi ni
      | P_isource _ -> ()
      | P_vsource { row; pi; ni; _ } -> acc := vsource_coords !acc row pi ni
      | P_mos { di; gi; si; bi; _ } -> acc := mos_jac_coords !acc di gi si bi)
    prog;
  Linalg.Sparse.of_coords ~n:(Indexing.size idx) (diag_coords !acc idx)

(* The transient pattern includes every position the backward-Euler
   companions can reach: capacitor conductor quads and the five MOS
   cap-pair quads, unconditionally — a bias-dependent capacitance may be
   zero at one time step and nonzero at the next, and the pattern is
   frozen for the whole run. *)
let tran_pattern idx circuit =
  let module El = Netlist.Element in
  let ridx name =
    match Indexing.node_index idx name with None -> -1 | Some i -> i
  in
  let acc = ref [] in
  List.iter
    (fun e ->
      match e with
      | El.Resistor { p; n; _ } | El.Capacitor { p; n; _ } ->
        acc := quad_coords !acc (ridx p) (ridx n)
      | El.Isource _ -> ()
      | El.Vsource { name; p; n; _ } ->
        acc :=
          vsource_coords !acc (Indexing.vsource_index idx name) (ridx p)
            (ridx n)
      | El.Mos { d; g; s; b; _ } ->
        let di = ridx d and gi = ridx g and si = ridx s and bi = ridx b in
        acc := mos_jac_coords !acc di gi si bi;
        acc := quad_coords !acc gi si;
        acc := quad_coords !acc gi di;
        acc := quad_coords !acc gi bi;
        acc := quad_coords !acc di bi;
        acc := quad_coords !acc si bi)
    (Netlist.Circuit.elements circuit);
  Linalg.Sparse.of_coords ~n:(Indexing.size idx) (diag_coords !acc idx)

(* Slot-resolved stamp program: every Jacobian write of [run] mapped to
   its CSR slot at compile time, so the sparse Newton hot loop indexes
   straight into the value array — no lookups of any kind. *)
type sprog = {
  sprog_p : prog;
  eslots : int array array;  (* per element, in [run]'s write order; -1 = ground-skipped *)
  dslots : int array;  (* gmin diagonal slot per node row *)
}

let compile_slots pat idx prog =
  let sl i j = if i >= 0 && j >= 0 then Linalg.Sparse.slot_exn pat i j else -1 in
  let eslots =
    Array.map
      (fun pe ->
        match pe with
        | P_resistor { pi; ni; _ } ->
          [| sl pi pi; sl pi ni; sl ni ni; sl ni pi |]
        | P_isource _ -> [||]
        | P_vsource { row; pi; ni; _ } ->
          [| sl pi row; sl ni row; sl row pi; sl row ni |]
        | P_mos { di; gi; si; bi; _ } ->
          [| sl di gi; sl di di; sl di bi; sl di si;
             sl si gi; sl si di; sl si bi; sl si si |])
      prog
  in
  { sprog_p = prog;
    eslots;
    dslots = Array.init (Indexing.node_count idx) (fun i -> sl i i) }

let sadd vals s v =
  if s >= 0 then Array.unsafe_set vals s (Array.unsafe_get vals s +. v)

(* The slot-resolved twin of [run]: same element order, same FP sequence,
   every accumulation landing on the same logical position in the same
   order — so natural-ordering sparse solves stay bit-identical to the
   dense backends.  Kept in sync with [run] by construction (the residual
   arithmetic is untouched; only [jadd]s become direct slot writes). *)
let run_sparse kind sp ctx ~gmin ~alpha =
  let vals =
    match ctx.jac with
    | Csr sm -> sm.svals
    | Unboxed _ | Boxed _ -> invalid_arg "Stamps.run_sparse: not a Csr context"
  in
  Array.iteri
    (fun ei pe ->
      let sl = sp.eslots.(ei) in
      match pe with
      | P_resistor { pi; ni; g } ->
        let i = (g *. (xat ctx pi -. xat ctx ni)) +. 0.0 in
        fadd ctx pi i;
        fadd ctx ni (-.i);
        sadd vals sl.(0) g;
        sadd vals sl.(1) (-.g);
        sadd vals sl.(2) g;
        sadd vals sl.(3) (-.g)
      | P_isource { pi; ni; i } ->
        let v = alpha *. i in
        fadd ctx pi v;
        fadd ctx ni (-.v)
      | P_vsource { row = k; pi; ni; v } ->
        fadd ctx pi ctx.x.(k);
        fadd ctx ni (-.(ctx.x.(k)));
        sadd vals sl.(0) 1.0;
        sadd vals sl.(1) (-1.0);
        ctx.f.(k) <- xat ctx pi -. xat ctx ni -. (alpha *. v);
        sadd vals sl.(2) 1.0;
        sadd vals sl.(3) (-1.0)
      | P_mos { dev; card; sgn; di; gi; si; bi } ->
        let vd = xat ctx di
        and vg = xat ctx gi
        and vs = xat ctx si
        and vb = xat ctx bi in
        let bias =
          { Mdl.vgs = sgn *. (vg -. vs);
            vds = sgn *. (vd -. vs);
            vbs = sgn *. (vb -. vs) }
        in
        let e =
          Mdl.evaluate_exact kind card ~w:dev.Device.Mos.w ~l:dev.Device.Mos.l
            bias
        in
        let id_phys = sgn *. e.Mdl.ids in
        fadd ctx di id_phys;
        fadd ctx si (-.id_phys);
        let gm = e.Mdl.gm and gds = e.Mdl.gds and gmb = e.Mdl.gmb in
        let gs = -.(gm +. gds +. gmb) in
        sadd vals sl.(0) gm;
        sadd vals sl.(1) gds;
        sadd vals sl.(2) gmb;
        sadd vals sl.(3) gs;
        sadd vals sl.(4) (-.gm);
        sadd vals sl.(5) (-.gds);
        sadd vals sl.(6) (-.gmb);
        sadd vals sl.(7) (-.gs))
    sp.sprog_p;
  for i = 0 to Array.length sp.dslots - 1 do
    ctx.f.(i) <- ctx.f.(i) +. (gmin *. ctx.x.(i));
    let s = sp.dslots.(i) in
    vals.(s) <- vals.(s) +. gmin
  done

let mos proc kind ctx ~dev ~d ~g ~s ~b =
  let vd = volt ctx d and vg = volt ctx g and vs = volt ctx s and vb = volt ctx b in
  let bias = device_bias dev ~vd ~vg ~vs ~vb in
  let p = Device.Mos.params proc dev in
  (* deliberately the unmemoized entry point: Newton iterates produce a
     fresh bias almost every call, so a memo here is all misses and LRU
     churn; repetition across whole solves is captured by the coarse
     memos (Monte Carlo samples, corner points, sizing results) *)
  let e = Mdl.evaluate_exact kind p ~w:dev.Device.Mos.w ~l:dev.Device.Mos.l bias in
  let sgn = Technology.Electrical.mos_type_sign dev.Device.Mos.mtype in
  let id_phys = sgn *. e.Mdl.ids in
  add_current ctx d id_phys;
  add_current ctx s (-.id_phys);
  (* dI_D/dvg = gm, /dvd = gds, /dvb = gmb, /dvs = -(gm + gds + gmb): the
     polarity signs cancel, so the entries are identical for both types. *)
  let gm = e.Mdl.gm and gds = e.Mdl.gds and gmb = e.Mdl.gmb in
  let gs = -.(gm +. gds +. gmb) in
  add_jac ctx d g gm; add_jac ctx d d gds; add_jac ctx d b gmb; add_jac ctx d s gs;
  add_jac ctx s g (-.gm); add_jac ctx s d (-.gds); add_jac ctx s b (-.gmb);
  add_jac ctx s s (-.gs)

(** Shared MNA stamping primitives for the nonlinear analyses (DC Newton
    and transient): residual accumulation (KCL currents leaving each node)
    and Jacobian entries.  The AC analysis uses its own complex assembly.

    Two matrix backends sit behind the same stamping calls: the unboxed
    flat-[floatarray] kernel matrix ({!Linalg.Dense_f}, the default hot
    path, stamped into a reusable per-domain workspace) and the boxed
    functor matrix ({!Linalg.Real}, the reference).  Both receive the
    identical sequence of accumulations, so solver results agree
    bit-for-bit between backends. *)

type backend = Kernel | Reference | Sparse of Linalg.Sparse.ordering
(** Solver backend selector threaded through the analyses: [Kernel] is the
    unboxed in-place workspace path, [Reference] the original boxed
    functor path kept for verification and benchmarking baselines, and
    [Sparse] the CSR symbolic/numeric-split solver ({!Linalg.Sparse}) —
    [Sparse Natural] is bit-identical to [Kernel], [Sparse Min_degree]
    is the fill-reducing performance mode. *)

val backend_of_string : string -> (backend, string) result
(** Parse ["kernel"], ["reference"], ["sparse"] (min-degree) or
    ["sparse-natural"] (case-insensitive). *)

val backend_name : backend -> string

val default_backend : unit -> backend
(** The effective default backend used when an analysis gets no
    explicit [?backend]: the calling domain's context-local binding
    ({!with_default_backend}) if one is active, the process-wide
    global otherwise.  Resolution order:
    {e [?backend] override > ctx binding > global > [Kernel]}.
    The global is initialised from [LOSAC_BACKEND] ([Kernel]
    when unset or unrecognized). *)

val set_default_backend : backend -> unit
(** Set the process-global fallback (CLI startup, [--backend]). *)

val with_default_backend : backend -> (unit -> 'a) -> 'a
(** Context-local override of the default backend on the calling domain
    (exception-safe; never touches the global).  Propagated to pool
    worker domains per batch by [Par.Pool]. *)

type smat = { spat : Linalg.Sparse.pattern; svals : float array }
(** A stamped sparse matrix: the natural-order CSR pattern of the
    circuit plus its slot-indexed value array. *)

val smat_of_pattern : Linalg.Sparse.pattern -> smat

type mat =
  | Unboxed of Linalg.Dense_f.t
  | Boxed of Linalg.Real.t
  | Csr of smat

type ctx = {
  idx : Indexing.t;
  jac : mat;
  f : float array;
  x : float array;  (** current iterate *)
}

val make : Indexing.t -> float array -> ctx
(** Fresh zeroed boxed Jacobian and residual around iterate [x]
    (the [Reference] backend). *)

val make_ws : Indexing.t -> Linalg.Ws.real -> float array -> ctx
(** Stamping context over a reusable workspace: clears the workspace
    matrix and right-hand side and aliases them as [jac]/[f], so repeated
    Newton iterates re-stamp the same buffers without allocating. *)

val make_sparse : Indexing.t -> smat -> f:float array -> float array -> ctx
(** Stamping context over a sparse matrix: clears the slot values and the
    caller's residual buffer and aliases them, so repeated iterates
    re-stamp the same arrays.  Name-based stamps resolve slots by binary
    search; the compiled DC path uses {!run_sparse} with precomputed
    slots. *)

val volt : ctx -> string -> float
val add_current : ctx -> string -> float -> unit
(** Accumulate a current leaving the node into the residual. *)

val add_jac : ctx -> string -> string -> float -> unit
(** [add_jac ctx np nq v]: d(residual at np)/d(voltage at nq) += v;
    silently skipped when either node is ground. *)

val resistor : ctx -> p:string -> n:string -> r:float -> unit

val conductor : ctx -> p:string -> n:string -> g:float -> i_extra:float -> unit
(** Linear companion branch: current [g * (vp - vn) + i_extra] from [p] to
    [n] — used for capacitor companions in transient analysis. *)

val isource : ctx -> p:string -> n:string -> float -> unit
(** DC current value flowing p -> n through the source. *)

val vsource : ctx -> row:int -> p:string -> n:string -> float -> unit
(** Ideal voltage source with branch-current unknown at [row]. *)

val gmin_all : ctx -> float -> unit

val device_bias :
  Device.Mos.t -> vd:float -> vg:float -> vs:float -> vb:float -> Device.Model.bias
(** Internal-polarity bias of a MOS from its node voltages. *)

val mos :
  Technology.Process.t -> Device.Model.kind -> ctx ->
  dev:Device.Mos.t -> d:string -> g:string -> s:string -> b:string -> unit
(** Nonlinear MOS stamp: drain current residual plus gm/gds/gmb Jacobian
    entries (polarity-independent, see the model documentation). *)

type prog
(** A compiled DC stamp program: the circuit walk with every node name
    resolved to its MNA index and per-device model cards fetched once,
    so Newton iterates perform no string-map lookups.  The program
    replays the exact accumulation sequence of the name-based stamps
    above (element order preserved, capacitors open), keeping both
    backends bit-identical to the uncompiled walk. *)

val compile : Technology.Process.t -> Indexing.t -> Netlist.Circuit.t -> prog
(** Resolve the circuit against the indexing.  Raises like the
    name-based stamps on unknown nodes. *)

val run : Device.Model.kind -> prog -> ctx -> gmin:float -> alpha:float -> unit
(** Stamp one Newton iterate: residual and Jacobian of the full circuit
    at the context's [x], with all independent sources scaled by [alpha]
    and [gmin] to ground on every node. *)

val dc_pattern : Indexing.t -> prog -> Linalg.Sparse.pattern
(** Every Jacobian position a DC Newton iterate of the program can
    touch, including the gmin node diagonals. *)

val tran_pattern : Indexing.t -> Netlist.Circuit.t -> Linalg.Sparse.pattern
(** The DC positions plus every backward-Euler companion position
    (capacitor quads and the five MOS cap pairs), frozen for a whole
    transient run regardless of bias-dependent capacitance values. *)

type sprog
(** A slot-resolved stamp program: every Jacobian write of {!run} mapped
    to its CSR slot at compile time. *)

val compile_slots : Linalg.Sparse.pattern -> Indexing.t -> prog -> sprog

val run_sparse :
  Device.Model.kind -> sprog -> ctx -> gmin:float -> alpha:float -> unit
(** The sparse twin of {!run} over a [Csr] context: identical element
    order and floating-point sequence, with each Jacobian accumulation
    landing on its precomputed slot (zero lookups in the hot loop). *)

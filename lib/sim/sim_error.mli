(** Unified simulator error type.

    The analyses historically report failure through two unrelated
    exceptions — [Phys.Numerics.No_convergence] from the DC Newton loop
    (and everything built on it) and [Linalg.Singular] from the complex
    LU factorisation — which forces every caller that wants to degrade
    gracefully (Monte Carlo sampling, corner sweeps, the sizing
    calibration loop) to enumerate both.  This module gives them one
    closed type, and {!Dcop.solve_result} / {!Acs.factor_result} /
    {!Acs.transfer_result} expose the analyses as
    [('a, Sim_error.t) result]; the raising entry points remain as thin
    wrappers for existing code. *)

type t =
  | No_convergence of { analysis : string; detail : string }
      (** every Newton continuation strategy failed; [analysis] names
          the entry point (e.g. ["dcop"]), [detail] carries the legacy
          exception message *)
  | Singular_matrix of { analysis : string; column : int }
      (** the (complex) MNA matrix lost rank at [column] — typically a
          floating node or a degenerate source loop *)
  | Timeout of { analysis : string; after_s : float }
      (** a cooperative deadline check (see {!Exec.Ctx.check_deadline})
          fired [after_s] seconds past the request deadline; raised
          between Monte Carlo samples, corner points and flow
          iterations so a long analysis is abandoned at the next safe
          boundary rather than mid-solve *)

exception Deadline_exceeded of string * float
(** [(analysis, seconds past the deadline)] — the raising form of
    {!Timeout}, thrown by deadline checks inside analyses that still
    expose a raising API. *)

val message : t -> string
(** Human-readable one-liner. *)

val to_exn : t -> exn
(** The legacy exception carrying the same information:
    [Phys.Numerics.No_convergence], [Linalg.Singular] or
    {!Deadline_exceeded}.  Guarantees
    that [match f_result x with Ok v -> v | Error e -> raise (to_exn e)]
    behaves like the raising entry point. *)

val of_exn : analysis:string -> exn -> t option
(** Classify one of the simulator exceptions; [None] for anything
    else (programming errors keep propagating as exceptions).
    {!Deadline_exceeded} keeps the analysis name recorded where the
    deadline fired rather than [analysis]. *)

val pp : Format.formatter -> t -> unit

(* Length-prefixed framing: a 4-byte big-endian payload length followed
   by the payload bytes.  One JSON document per frame, both directions. *)

let max_frame_default = 4 * 1024 * 1024

exception Oversized of { length : int; limit : int }
exception Truncated

let really_write fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | 0 -> raise Truncated
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let really_read fd buf off len =
  let off = ref off and remaining = ref len in
  while !remaining > 0 do
    match Unix.read fd buf !off !remaining with
    | 0 -> raise Truncated
    | n ->
      off := !off + n;
      remaining := !remaining - n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    (* a peer that reset the connection closed it, just impolitely *)
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Truncated
  done

let write fd payload =
  let len = String.length payload in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  really_write fd (Bytes.to_string header);
  really_write fd payload

let read ?(max_frame = max_frame_default) fd =
  let header = Bytes.create 4 in
  (* EOF is clean only at a frame boundary: 0 bytes before the header
     means the peer closed, 0 bytes anywhere later is [Truncated] *)
  let rec first () =
    match Unix.read fd header 0 4 with
    | 0 -> None
    | n -> Some n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> first ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None
  in
  match first () with
  | None -> None
  | Some n ->
    if n < 4 then really_read fd header n (4 - n);
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_frame then
      raise (Oversized { length = len; limit = max_frame });
    let payload = Bytes.create len in
    really_read fd payload 0 len;
    Some (Bytes.to_string payload)

(** The shared job dispatcher: one {!Protocol.request} in, one
    {!Protocol.response} out.  Both the one-shot CLI ([losac <cmd>
    --format json]) and every {!Server} executor domain call this exact
    function, which is what makes a served job and a CLI run provably
    the same code path.  All execution switches the request carries
    (cache/backend/telemetry) are applied as context-local bindings by
    [Exec.Ctx.scope] inside the workload runners, so concurrent
    [execute] calls on different domains never observe each other's
    configuration.

    [execute] never raises: simulator failures surface as
    [Failed (Sim_error.t)] (including cooperative {!Protocol.request}
    [timeout_s] deadlines, as [Timeout]), unknown technologies and
    topologies as [Bad_request], and anything unexpected as [Internal].
    The response [payload] is deterministic — volatile data (elapsed
    time) goes into [meta] only — so {!Protocol.canonical} forms are
    byte-comparable across runs and processes.

    [?cancel] shares a cooperative cancellation token with the job's
    [Exec.Ctx]: the server sets it on a [cancel] wire request, and the
    job aborts at its next [check_deadline] poll (surfacing as
    [Failed Timeout], which the server maps to [Cancelled]).  A
    [Cancel] workload itself answers [Bad_request] here — only the
    server's reader thread can act on it. *)

val execute : ?cancel:bool Atomic.t -> Protocol.request -> Protocol.response

(** {2 Payload builders}

    Exposed for the CLI's [--format json] renderers and the tests. *)

val perf_to_json : Comdiac.Performance.t -> Obs.Json.t
val perf_of_json : Obs.Json.t -> Comdiac.Performance.t option
val flow_payload : Core.Flow.result -> Obs.Json.t
val mc_payload : n:int -> seed:int -> Comdiac.Montecarlo.result -> Obs.Json.t
val corners_payload : Comdiac.Robustness.result -> Obs.Json.t
val tech_payload : unit -> Obs.Json.t
val stats_payload : unit -> Obs.Json.t
(** Volatile by nature (counters, pool state); served for observability,
    excluded from bit-identity claims. *)

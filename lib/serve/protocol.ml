module J = Obs.Json

let version = "losac.job/1"

(* --- requests --------------------------------------------------------- *)

type workload =
  | Ping
  | Sleep of { seconds : float }
  | Tech
  | Stats
  | Synth of { case : Core.Flow.case }
  | Size of { topology : string }
  | Mc of { n : int; seed : int }
  | Corners
  | Verify of { samples : int; seed : int }
  | Optimize of { starts : int; budget : int; strategy : string; lut : bool }
  | Cancel of { target : int }

type request = {
  id : int;
  workload : workload;
  proc : string;
  kind : Device.Model.kind;
  spec : Comdiac.Spec.t;
  jobs : int option;
  chunk : int option;
  cache : bool option;
  backend : Sim.Stamps.backend option;
  seed : int option;
  timeout_s : float option;
  telemetry : bool;
}

let request ?(id = 0) ?(proc = "c06") ?(kind = Device.Model.Bsim_lite)
    ?(spec = Comdiac.Spec.paper_ota) ?jobs ?chunk ?cache ?backend ?seed
    ?timeout_s ?(telemetry = false) workload =
  { id; workload; proc; kind; spec; jobs; chunk; cache; backend; seed;
    timeout_s; telemetry }

let workload_name = function
  | Ping -> "ping"
  | Sleep _ -> "sleep"
  | Tech -> "tech"
  | Stats -> "stats"
  | Synth _ -> "synth"
  | Size _ -> "size"
  | Mc _ -> "mc"
  | Corners -> "corners"
  | Verify _ -> "verify"
  | Optimize _ -> "optimize"
  | Cancel _ -> "cancel"

let case_to_int = function
  | Core.Flow.Case1 -> 1
  | Core.Flow.Case2 -> 2
  | Core.Flow.Case3 -> 3
  | Core.Flow.Case4 -> 4

let case_of_int = function
  | 1 -> Some Core.Flow.Case1
  | 2 -> Some Core.Flow.Case2
  | 3 -> Some Core.Flow.Case3
  | 4 -> Some Core.Flow.Case4
  | _ -> None

let kind_of_string = function
  | "level1" -> Some Device.Model.Level1
  | "bsim-lite" | "bsim" -> Some Device.Model.Bsim_lite
  | _ -> None

(* --- statuses and responses ------------------------------------------- *)

type status =
  | Done
  | Failed of Sim.Sim_error.t
  | Bad_request of string
  | Internal of string
  | Overloaded of { depth : int; limit : int }
  | Shutting_down
  | Cancelled

type response = {
  rid : int;
  workload : string;
  status : status;
  payload : J.t;
  meta : (string * J.t) list;
}

type event =
  | Ack of { rid : int; queue_depth : int }
  | Started of { rid : int }
  | Telemetry of { rid : int; body : J.t }

type message = Event of event | Final of response

(* --- JSON encoding ---------------------------------------------------- *)

(* Field order is fixed everywhere below: the byte-identity guarantee
   between the CLI's [--format json] output and a served response rests
   on both sides emitting structurally identical documents. *)

let workload_to_json w =
  let kv = ("kind", J.Str (workload_name w)) in
  match w with
  | Ping | Tech | Stats | Corners -> J.Obj [ kv ]
  | Sleep { seconds } -> J.Obj [ kv; ("seconds", J.Num seconds) ]
  | Synth { case } ->
    J.Obj [ kv; ("case", J.Num (float_of_int (case_to_int case))) ]
  | Size { topology } -> J.Obj [ kv; ("topology", J.Str topology) ]
  | Mc { n; seed } ->
    J.Obj
      [ kv; ("n", J.Num (float_of_int n)); ("seed", J.Num (float_of_int seed)) ]
  | Verify { samples; seed } ->
    J.Obj
      [ kv;
        ("samples", J.Num (float_of_int samples));
        ("seed", J.Num (float_of_int seed)) ]
  | Optimize { starts; budget; strategy; lut } ->
    J.Obj
      [ kv;
        ("starts", J.Num (float_of_int starts));
        ("budget", J.Num (float_of_int budget));
        ("strategy", J.Str strategy);
        ("lut", J.Bool lut) ]
  | Cancel { target } -> J.Obj [ kv; ("target", J.Num (float_of_int target)) ]

let spec_to_json (s : Comdiac.Spec.t) =
  let lo_i, hi_i = s.Comdiac.Spec.icmr in
  let lo_o, hi_o = s.Comdiac.Spec.output_range in
  J.Obj
    [
      ("vdd", J.Num s.Comdiac.Spec.vdd);
      ("gbw", J.Num s.Comdiac.Spec.gbw);
      ("phase_margin", J.Num s.Comdiac.Spec.phase_margin);
      ("cload", J.Num s.Comdiac.Spec.cload);
      ("icmr", J.Arr [ J.Num lo_i; J.Num hi_i ]);
      ("output_range", J.Arr [ J.Num lo_o; J.Num hi_o ]);
    ]

let request_to_json r =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let ctx_fields =
    opt "jobs" (fun j -> J.Num (float_of_int j)) r.jobs
    @ opt "chunk" (fun c -> J.Num (float_of_int c)) r.chunk
    @ opt "cache" (fun b -> J.Bool b) r.cache
    @ opt "backend" (fun b -> J.Str (Sim.Stamps.backend_name b)) r.backend
    @ opt "seed" (fun s -> J.Num (float_of_int s)) r.seed
  in
  J.Obj
    ([
       ("api", J.Str version);
       ("id", J.Num (float_of_int r.id));
       ("workload", workload_to_json r.workload);
       ("proc", J.Str r.proc);
       ("model", J.Str (Device.Model.kind_to_string r.kind));
       ("spec", spec_to_json r.spec);
     ]
     @ (if ctx_fields = [] then [] else [ ("ctx", J.Obj ctx_fields) ])
     @ opt "timeout_s" (fun t -> J.Num t) r.timeout_s
     @ if r.telemetry then [ ("telemetry", J.Bool true) ] else [])

let sim_error_to_json (e : Sim.Sim_error.t) =
  let fields =
    match e with
    | Sim.Sim_error.No_convergence { analysis; detail } ->
      [ ("kind", J.Str "no_convergence");
        ("analysis", J.Str analysis);
        ("detail", J.Str detail) ]
    | Sim.Sim_error.Singular_matrix { analysis; column } ->
      [ ("kind", J.Str "singular_matrix");
        ("analysis", J.Str analysis);
        ("column", J.Num (float_of_int column)) ]
    | Sim.Sim_error.Timeout { analysis; after_s } ->
      [ ("kind", J.Str "timeout");
        ("analysis", J.Str analysis);
        ("after_s", J.Num after_s) ]
  in
  J.Obj (fields @ [ ("message", J.Str (Sim.Sim_error.message e)) ])

let status_string = function
  | Done -> "ok"
  | Failed _ -> "error"
  | Bad_request _ -> "invalid_request"
  | Internal _ -> "internal_error"
  | Overloaded _ -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Cancelled -> "cancelled"

let status_error_json = function
  | Done -> []
  | Failed e -> [ ("error", sim_error_to_json e) ]
  | Bad_request msg ->
    [ ("error",
       J.Obj [ ("kind", J.Str "invalid_request"); ("message", J.Str msg) ]) ]
  | Internal msg ->
    [ ("error",
       J.Obj [ ("kind", J.Str "internal_error"); ("message", J.Str msg) ]) ]
  | Overloaded { depth; limit } ->
    [ ("error",
       J.Obj
         [ ("kind", J.Str "overloaded");
           ("queue_depth", J.Num (float_of_int depth));
           ("queue_limit", J.Num (float_of_int limit));
           ("message", J.Str "job queue full, retry later") ]) ]
  | Shutting_down ->
    [ ("error",
       J.Obj
         [ ("kind", J.Str "shutting_down");
           ("message", J.Str "server is draining and accepts no new jobs") ])
    ]
  | Cancelled ->
    [ ("error",
       J.Obj
         [ ("kind", J.Str "cancelled");
           ("message", J.Str "job cancelled by request") ]) ]

let response_json ~with_meta r =
  J.Obj
    ([
       ("api", J.Str version);
       ("id", J.Num (float_of_int r.rid));
       ("event", J.Str "result");
       ("workload", J.Str r.workload);
       ("status", J.Str (status_string r.status));
     ]
     @ status_error_json r.status
     @ (match r.payload with J.Null -> [] | p -> [ ("result", p) ])
     @ if with_meta && r.meta <> [] then [ ("meta", J.Obj r.meta) ] else [])

let response_to_json r = response_json ~with_meta:true r

let canonical r = J.to_string (response_json ~with_meta:false r)

let event_to_json = function
  | Ack { rid; queue_depth } ->
    J.Obj
      [
        ("api", J.Str version);
        ("id", J.Num (float_of_int rid));
        ("event", J.Str "ack");
        ("queue_depth", J.Num (float_of_int queue_depth));
      ]
  | Started { rid } ->
    J.Obj
      [
        ("api", J.Str version);
        ("id", J.Num (float_of_int rid));
        ("event", J.Str "started");
      ]
  | Telemetry { rid; body } ->
    J.Obj
      [
        ("api", J.Str version);
        ("id", J.Num (float_of_int rid));
        ("event", J.Str "telemetry");
        ("telemetry", body);
      ]

(* --- JSON decoding ---------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name json = J.member name json

let int_field ?default name json =
  match field name json with
  | Some (J.Num v) when Float.is_integer v -> Ok (int_of_float v)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None ->
    (match default with
     | Some d -> Ok d
     | None -> Error (Printf.sprintf "missing integer field %S" name))

let float_field ?default name json =
  match field name json with
  | Some (J.Num v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)
  | None ->
    (match default with
     | Some d -> Ok d
     | None -> Error (Printf.sprintf "missing number field %S" name))

let str_field ?default name json =
  match field name json with
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None ->
    (match default with
     | Some d -> Ok d
     | None -> Error (Printf.sprintf "missing string field %S" name))

let pair_field name ~default json =
  match field name json with
  | None -> Ok default
  | Some (J.Arr [ J.Num lo; J.Num hi ]) -> Ok (lo, hi)
  | Some _ ->
    Error (Printf.sprintf "field %S must be a two-number array" name)

let workload_of_json json =
  let* kind = str_field "kind" json in
  match kind with
  | "ping" -> Ok Ping
  | "tech" -> Ok Tech
  | "stats" -> Ok Stats
  | "corners" -> Ok Corners
  | "sleep" ->
    let* seconds = float_field "seconds" json in
    if seconds < 0.0 || not (Float.is_finite seconds) then
      Error "sleep seconds must be finite and non-negative"
    else Ok (Sleep { seconds })
  | "synth" ->
    let* c = int_field ~default:4 "case" json in
    (match case_of_int c with
     | Some case -> Ok (Synth { case })
     | None -> Error (Printf.sprintf "synth case must be 1..4, got %d" c))
  | "size" ->
    let* topology = str_field ~default:"folded-cascode" "topology" json in
    Ok (Size { topology })
  | "mc" ->
    let* n = int_field ~default:50 "n" json in
    let* seed = int_field ~default:42 "seed" json in
    if n <= 0 then Error "mc n must be positive" else Ok (Mc { n; seed })
  | "verify" ->
    let* samples = int_field ~default:30 "samples" json in
    let* seed = int_field ~default:42 "seed" json in
    if samples <= 0 then Error "verify samples must be positive"
    else Ok (Verify { samples; seed })
  | "optimize" ->
    let* starts = int_field ~default:6 "starts" json in
    let* budget = int_field ~default:480 "budget" json in
    let* strategy = str_field ~default:"nm" "strategy" json in
    let* lut =
      match field "lut" json with
      | None -> Ok true
      | Some (J.Bool b) -> Ok b
      | Some _ -> Error "optimize lut must be a boolean"
    in
    if starts <= 0 then Error "optimize starts must be positive"
    else if budget <= 0 then Error "optimize budget must be positive"
    else if not (List.mem strategy [ "nm"; "nelder-mead"; "anneal"; "annealing" ])
    then Error (Printf.sprintf "unknown optimize strategy %S (nm|anneal)" strategy)
    else Ok (Optimize { starts; budget; strategy; lut })
  | "cancel" ->
    let* target = int_field "target" json in
    Ok (Cancel { target })
  | other -> Error (Printf.sprintf "unknown workload kind %S" other)

(* Spec overrides: absent fields keep the paper's Table-1 values. *)
let spec_of_json = function
  | None -> Ok Comdiac.Spec.paper_ota
  | Some json ->
    let d = Comdiac.Spec.paper_ota in
    let* vdd = float_field ~default:d.Comdiac.Spec.vdd "vdd" json in
    let* gbw = float_field ~default:d.Comdiac.Spec.gbw "gbw" json in
    let* phase_margin =
      float_field ~default:d.Comdiac.Spec.phase_margin "phase_margin" json
    in
    let* cload = float_field ~default:d.Comdiac.Spec.cload "cload" json in
    let* icmr = pair_field "icmr" ~default:d.Comdiac.Spec.icmr json in
    let* output_range =
      pair_field "output_range" ~default:d.Comdiac.Spec.output_range json
    in
    Ok { Comdiac.Spec.vdd; gbw; phase_margin; cload; icmr; output_range }

let ctx_of_json json =
  match json with
  | None -> Ok (None, None, None, None, None)
  | Some cj ->
    let opt_int name =
      match field name cj with
      | None | Some J.Null -> Ok None
      | Some (J.Num v) when Float.is_integer v -> Ok (Some (int_of_float v))
      | Some _ -> Error (Printf.sprintf "ctx.%s must be an integer" name)
    in
    let* jobs = opt_int "jobs" in
    let* chunk = opt_int "chunk" in
    let* cache =
      match field "cache" cj with
      | None | Some J.Null -> Ok None
      | Some (J.Bool b) -> Ok (Some b)
      | Some _ -> Error "ctx.cache must be a boolean"
    in
    let* backend =
      match field "backend" cj with
      | None | Some J.Null -> Ok None
      | Some (J.Str s) ->
        (match Sim.Stamps.backend_of_string s with
         | Ok b -> Ok (Some b)
         | Error msg -> Error msg)
      | Some _ -> Error "ctx.backend must be a string"
    in
    let* seed = opt_int "seed" in
    Ok (jobs, chunk, cache, backend, seed)

let request_of_json json =
  let* api = str_field "api" json in
  if api <> version then
    Error (Printf.sprintf "unsupported api %S (this server speaks %s)" api
             version)
  else
    let* id = int_field ~default:0 "id" json in
    let* wj =
      match field "workload" json with
      | Some (J.Obj _ as w) -> Ok w
      | Some _ -> Error "field \"workload\" must be an object"
      | None -> Error "missing object field \"workload\""
    in
    let* workload = workload_of_json wj in
    let* proc = str_field ~default:"c06" "proc" json in
    let* model = str_field ~default:"bsim-lite" "model" json in
    let* kind =
      match kind_of_string model with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "unknown model %S (level1|bsim-lite)" model)
    in
    let* spec = spec_of_json (field "spec" json) in
    let* jobs, chunk, cache, backend, seed = ctx_of_json (field "ctx" json) in
    let* timeout_s =
      match field "timeout_s" json with
      | None | Some J.Null -> Ok None
      | Some (J.Num t) when t >= 0.0 -> Ok (Some t)
      | Some _ -> Error "timeout_s must be a non-negative number"
    in
    let* telemetry =
      match field "telemetry" json with
      | None -> Ok false
      | Some (J.Bool b) -> Ok b
      | Some _ -> Error "telemetry must be a boolean"
    in
    Ok
      { id; workload; proc; kind; spec; jobs; chunk; cache; backend; seed;
        timeout_s; telemetry }

(* The id recoverable from an arbitrary (possibly invalid) request, for
   error responses. *)
let salvage_id json =
  match J.member "id" json with
  | Some (J.Num v) when Float.is_integer v -> int_of_float v
  | _ -> -1

let sim_error_of_json json =
  let* kind = str_field "kind" json in
  match kind with
  | "no_convergence" ->
    let* analysis = str_field "analysis" json in
    let* detail = str_field "detail" json in
    Ok (Sim.Sim_error.No_convergence { analysis; detail })
  | "singular_matrix" ->
    let* analysis = str_field "analysis" json in
    let* column = int_field "column" json in
    Ok (Sim.Sim_error.Singular_matrix { analysis; column })
  | "timeout" ->
    let* analysis = str_field "analysis" json in
    let* after_s = float_field "after_s" json in
    Ok (Sim.Sim_error.Timeout { analysis; after_s })
  | other -> Error (Printf.sprintf "unknown simulator error kind %S" other)

let status_of_json json =
  let* status = str_field "status" json in
  let err () =
    match field "error" json with
    | Some e -> Ok e
    | None -> Error "error status without an \"error\" object"
  in
  match status with
  | "ok" -> Ok Done
  | "error" ->
    let* e = err () in
    let* sim = sim_error_of_json e in
    Ok (Failed sim)
  | "invalid_request" ->
    let* e = err () in
    let* msg = str_field "message" e in
    Ok (Bad_request msg)
  | "internal_error" ->
    let* e = err () in
    let* msg = str_field "message" e in
    Ok (Internal msg)
  | "overloaded" ->
    let* e = err () in
    let* depth = int_field "queue_depth" e in
    let* limit = int_field "queue_limit" e in
    Ok (Overloaded { depth; limit })
  | "shutting_down" -> Ok Shutting_down
  | "cancelled" -> Ok Cancelled
  | other -> Error (Printf.sprintf "unknown status %S" other)

let message_of_json json =
  let* api = str_field "api" json in
  if api <> version then Error (Printf.sprintf "unsupported api %S" api)
  else
    let* rid = int_field "id" json in
    let* event = str_field "event" json in
    match event with
    | "ack" ->
      let* queue_depth = int_field "queue_depth" json in
      Ok (Event (Ack { rid; queue_depth }))
    | "started" -> Ok (Event (Started { rid }))
    | "telemetry" ->
      let body = Option.value ~default:J.Null (field "telemetry" json) in
      Ok (Event (Telemetry { rid; body }))
    | "result" ->
      let* status = status_of_json json in
      let* workload = str_field ~default:"?" "workload" json in
      let payload = Option.value ~default:J.Null (field "result" json) in
      let meta =
        match field "meta" json with Some (J.Obj kvs) -> kvs | _ -> []
      in
      Ok (Final { rid; workload; status; payload; meta })
    | other -> Error (Printf.sprintf "unknown event %S" other)

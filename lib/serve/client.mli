(** Minimal blocking client for the {!Server} daemon — used by the
    [losac job] subcommand, the [bench serve] load generator and the
    test suite. *)

type t

exception Protocol_error of string
(** The server closed mid-conversation or sent an undecodable frame. *)

val connect : ?max_frame:int -> string -> t
(** Connect to a Unix-domain socket path. *)

val connect_tcp : ?max_frame:int -> host:string -> port:int -> unit -> t
val close : t -> unit

val call :
  ?on_event:(Protocol.event -> unit) -> t -> Protocol.request ->
  Protocol.response
(** Submit one request and block until its final response, feeding
    interleaved [ack]/[started]/[telemetry] events to [on_event].
    @raise Protocol_error as above
    @raise Frame.Oversized when the server answers past [max_frame]. *)

val submit : t -> Protocol.request -> unit
(** Fire one request without waiting (pipelining). *)

val await : ?on_event:(Protocol.event -> unit) -> t -> int -> Protocol.response
(** Read messages until the final response for the given request id
    ([-1] accepts any); events go to [on_event].  Final responses for
    {e other} ids are discarded — with several executors finals arrive
    in nondeterministic order, so pipelined submissions that must all
    be observed should each be awaited in expected completion order
    (admission rejections and cancel acknowledgements overtake
    execution) or use one connection per in-flight request. *)

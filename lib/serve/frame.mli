(** Length-prefixed framing for the job protocol: each frame is a 4-byte
    big-endian payload length followed by that many payload bytes (one
    JSON document per frame, both directions). *)

val max_frame_default : int
(** 4 MiB. *)

exception Oversized of { length : int; limit : int }
(** The announced payload length exceeds the frame limit (or is
    negative).  The stream is unusable after this — the payload was not
    consumed — so the connection must be closed. *)

exception Truncated
(** The peer closed mid-frame. *)

val write : Unix.file_descr -> string -> unit
(** Write one frame; handles partial writes and EINTR. *)

val read : ?max_frame:int -> Unix.file_descr -> string option
(** Read one frame; [None] on a clean EOF at a frame boundary.
    @raise Oversized when the announced length exceeds [max_frame].
    @raise Truncated on EOF inside a frame.
    May also raise [Unix.Unix_error] (e.g. a receive timeout). *)

module J = Obs.Json
module P = Protocol

type t = { fd : Unix.file_descr; max_frame : int }

exception Protocol_error of string

let connect ?(max_frame = Frame.max_frame_default) path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd; max_frame }

let connect_tcp ?(max_frame = Frame.max_frame_default) ~host ~port () =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd; max_frame }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let submit t req = Frame.write t.fd (J.to_string (P.request_to_json req))

let next_message t =
  match Frame.read ~max_frame:t.max_frame t.fd with
  | None -> raise (Protocol_error "server closed the connection")
  | Some payload ->
    (match J.parse payload with
     | Error msg -> raise (Protocol_error ("unparseable frame: " ^ msg))
     | Ok json ->
       (match P.message_of_json json with
        | Ok m -> m
        | Error msg -> raise (Protocol_error msg)))

let await ?on_event t rid =
  let rec loop () =
    match next_message t with
    | P.Event e ->
      Option.iter (fun f -> f e) on_event;
      loop ()
    | P.Final r ->
      (* With several executors, finals for different ids arrive in any
         order (and admission rejections can overtake); match on the
         id. *)
      if r.P.rid = rid || rid = -1 then r else loop ()
  in
  loop ()

let call ?on_event t req =
  submit t req;
  await ?on_event t req.P.id

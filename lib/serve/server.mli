(** The [losac serve] daemon: a long-running process accepting
    {!Protocol} jobs over a Unix-domain (and optionally TCP) socket and
    executing them with {!Api.execute} on the process-wide
    {!Par.Pool} / {!Cache.Memo} / {!Device.Lut} state, so a warm cache
    built by one client accelerates every later request — across all
    executors.

    {b Executor pool.}  [executors] domains (default [min 4 cores])
    run jobs concurrently.  Executors are OCaml {e domains}, not
    threads: execution switches (cache/backend/telemetry) are
    context-local in domain-local storage ([Obs.Fluid], bound by
    [Exec.Ctx.scope]), so one domain per concurrently-running job is
    exactly what isolates two jobs with conflicting flags.  Per-job
    parallelism still fans out on the shared {!Par.Pool}, which
    re-installs the submitting executor's bindings around every chunk.

    {b Admission.}  Each connection gets a reader thread that decodes
    frames and either rejects the request ([invalid_request],
    [overloaded] once the {e total} queued depth passes [queue_limit],
    [shutting_down] during drain) or appends it to the connection's own
    queue.  Executors drain connections in round-robin rotation — one
    job from the head connection, rotate it to the tail — so a client
    pipelining a deep backlog cannot starve another client's single
    request (per-client fairness replaces global FIFO).  The depth is
    exported as the [serve.queue_depth] metric, rejections as
    [serve.overloaded], cancellations as [serve.cancelled].

    {b Cancellation.}  A [cancel {target}] request is handled by the
    reader thread immediately (never queued): it sets the target job's
    cooperative cancellation token — queued jobs answer [Cancelled] at
    pop, running jobs abort at their next deadline poll.  Targets are
    scoped to the same connection.

    Message order on a connection, per job: [ack] (with queue depth),
    [started], optional [telemetry], then the final [result].  With
    several executors, responses to {e different} jobs may interleave
    in any order; clients match on the request id. *)

type config = {
  socket_path : string option;  (** Unix-domain listening socket *)
  tcp : (string * int) option;  (** optional (host, port) TCP listener *)
  queue_limit : int;
      (** bound on total queued jobs across connections; beyond it jobs
          are [overloaded] *)
  max_frame : int;  (** per-frame payload cap, bytes *)
  default_timeout_s : float option;
      (** applied to requests that carry no [timeout_s] of their own *)
  executors : int;
      (** concurrent executor domains, clamped to [1..16];
          {!default_executors} picks [min 4 cores] *)
}

val default_executors : unit -> int
(** [min 4 (Domain.recommended_domain_count ())]. *)

val default_config : config
(** No listeners (set at least one), [queue_limit = 64],
    [max_frame = 4 MiB], no default timeout,
    [executors = default_executors ()]. *)

type t

val start : config -> t
(** Bind the listeners and spawn the acceptor threads and executor
    domains; returns immediately.  Raises [Invalid_argument] when
    [config] names no listener, [Unix.Unix_error] when binding fails. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, reject new submissions with
    [shutting_down], drain every already-admitted job to its final
    response, then close connections and remove the socket file. *)

val queue_depth : t -> int
val jobs_done : t -> int

val executors : t -> int
(** The executor-domain count actually running (config clamped). *)

type exec_stat = { ex_id : int; ex_jobs : int; ex_busy_s : float }

val executor_stats : t -> exec_stat list
(** Per-executor accounting: jobs completed and total time spent inside
    [Api.execute].  Pool-level per-executor rows (chunks an executor ran
    itself via caller-helps) appear in [Par.Pool.worker_stats] under
    roles ["exec-0"].."exec-N". *)

val run : config -> int
(** [start], then block until SIGTERM/SIGINT, then [stop] (draining).
    Returns the number of jobs completed — the [losac serve] main
    loop. *)

(** The [losac serve] daemon: a long-running process accepting
    {!Protocol} jobs over a Unix-domain (and optionally TCP) socket and
    executing them with {!Api.execute} on the process-wide
    {!Par.Pool} / {!Cache.Memo} / {!Device.Lut} state, so a warm cache
    built by one client accelerates every later request.

    Admission control: each connection gets a reader thread that decodes
    frames and either rejects the request ([invalid_request],
    [overloaded] past [queue_limit], [shutting_down] during drain) or
    enqueues it on a bounded queue consumed by a single executor thread.
    Execution is deliberately serialized — {!Exec.Ctx} switches are
    process-wide scoped globals, so jobs with different
    cache/backend/telemetry flags must not overlap; parallelism lives
    {e inside} a job via the domain pool.  The queue depth is exported
    as the [serve.queue_depth] metric, rejections as [serve.overloaded].

    Message order on a connection, per job: [ack] (with queue depth),
    [started], optional [telemetry], then the final [result]. *)

type config = {
  socket_path : string option;  (** Unix-domain listening socket *)
  tcp : (string * int) option;  (** optional (host, port) TCP listener *)
  queue_limit : int;  (** admission bound; beyond it jobs are [overloaded] *)
  max_frame : int;  (** per-frame payload cap, bytes *)
  default_timeout_s : float option;
      (** applied to requests that carry no [timeout_s] of their own *)
}

val default_config : config
(** No listeners (set at least one), [queue_limit = 64],
    [max_frame = 4 MiB], no default timeout. *)

type t

val start : config -> t
(** Bind the listeners and spawn the acceptor/executor threads; returns
    immediately.  Raises [Invalid_argument] when [config] names no
    listener, [Unix.Unix_error] when binding fails. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, reject new submissions with
    [shutting_down], drain every already-admitted job to its final
    response, then close connections and remove the socket file. *)

val queue_depth : t -> int
val jobs_done : t -> int

val run : config -> int
(** [start], then block until SIGTERM/SIGINT, then [stop] (draining).
    Returns the number of jobs completed — the [losac serve] main
    loop. *)

(* The losac job daemon.

   Concurrency model: one reader thread per connection parses frames and
   performs admission control; admitted jobs go onto per-connection
   queues drained in round-robin rotation by a pool of N executor
   DOMAINS.  Executors are domains, not threads, because execution
   switches (cache/telemetry/backend) are context-local via domain-local
   storage (Obs.Fluid) — each executor binds its current job's flags on
   its own domain, so jobs with conflicting flags overlap safely while
   the process-wide Cache.Memo registry, Device.Lut grids and the shared
   Par.Pool keep warm state flowing between them.  Round-robin admission
   gives per-client fairness: one chatty connection cannot starve
   another's single job behind its backlog.

   Cancellation: a [cancel {target}] request is handled by the reader
   thread directly (it never queues — it would otherwise wait behind the
   very job it cancels).  It sets the target job's cooperative
   cancellation token; a queued job answers [Cancelled] when an executor
   pops it, a running job aborts at its next Exec.Ctx.check_deadline
   poll (deadline-moved-to-now semantics) and its Timeout is mapped to
   [Cancelled]. *)

module J = Obs.Json
module P = Protocol

type config = {
  socket_path : string option;
  tcp : (string * int) option;
  queue_limit : int;
  max_frame : int;
  default_timeout_s : float option;
  executors : int;
}

let default_executors () = min 4 (Domain.recommended_domain_count ())

let default_config =
  {
    socket_path = None;
    tcp = None;
    queue_limit = 64;
    max_frame = Frame.max_frame_default;
    default_timeout_s = None;
    executors = default_executors ();
  }

type job = {
  req : P.request;
  jconn : conn;
  submitted_s : float;
  cancel : bool Atomic.t;
}

and conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;  (* reader (acks, errors) and executors share the fd *)
  alive : bool Atomic.t;
  pending : int Atomic.t;  (* jobs admitted but not yet answered *)
  closed : bool Atomic.t;  (* close-once latch for [fd] *)
  jobs : job Queue.t;  (* this connection's admitted jobs; server lock *)
}

(* Closing is deferred until no queued job references the connection:
   closing early would let the kernel reuse the descriptor number while
   an executor still holds it, sending a response to a stranger. *)
let maybe_close conn =
  if
    (not (Atomic.get conn.alive))
    && Atomic.get conn.pending = 0
    && Atomic.compare_and_set conn.closed false true
  then try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* Death of a connection: peers see EOF immediately (shutdown), the
   descriptor itself is reclaimed once the last pending job answered. *)
let kill conn =
  Atomic.set conn.alive false;
  (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  maybe_close conn

type exec_stat = { ex_id : int; ex_jobs : int; ex_busy_s : float }

type t = {
  config : config;
  n_exec : int;
  shutdown : bool Atomic.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  (* Round-robin rotation: connections with at least one queued job, in
     service order.  An executor takes the head connection's oldest job
     and rotates the connection to the tail if it still has work.
     [queued] is the global depth bound ([queue_limit] applies to the
     sum, preserving the overload contract of the single-queue era). *)
  mutable rr : conn list;
  mutable queued : int;
  (* (rid, conn, cancel token) of jobs currently inside Api.execute,
     so a cancel request can reach a running job.  Guarded by [lock]. *)
  mutable running : (int * conn * bool Atomic.t) list;
  mutable listeners : Unix.file_descr list;
  mutable threads : Thread.t list;  (* acceptors; readers detach *)
  mutable exec_domains : unit Domain.t list;
  exec_jobs : int Atomic.t array;  (* per-executor completed jobs *)
  exec_busy_us : float Atomic.t array;  (* per-executor execution time *)
  mutable conns : conn list;  (* guarded by [lock] *)
  jobs_done : int Atomic.t;
}

(* --- writing ----------------------------------------------------------- *)

(* A dead peer must never kill the server: write failures just mark the
   connection dead and the payload is dropped. *)
let send conn json =
  if Atomic.get conn.alive then begin
    Mutex.lock conn.wlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock conn.wlock)
      (fun () ->
        try Frame.write conn.fd (J.to_string json)
        with Unix.Unix_error _ | Frame.Truncated ->
          Atomic.set conn.alive false)
  end

let send_response conn (r : P.response) = send conn (P.response_to_json r)
let send_event conn e = send conn (P.event_to_json e)

let error_response ~rid ~workload status =
  { P.rid; workload; status; payload = J.Null; meta = [] }

(* --- executors --------------------------------------------------------- *)

let run_job t ~ex job =
  let conn = job.jconn in
  if Atomic.get job.cancel then begin
    (* Cancelled while still queued: answer without executing. *)
    if Atomic.get conn.alive then begin
      (* account before answering: the final response is the ordering
         clients synchronize on, so counters must already be visible *)
      Atomic.incr t.jobs_done;
      send_response conn
        {
          P.rid = job.req.P.id;
          workload = P.workload_name job.req.P.workload;
          status = P.Cancelled;
          payload = J.Null;
          meta = [];
        }
    end
  end
  else if Atomic.get conn.alive then begin
    send_event conn (P.Started { rid = job.req.P.id });
    let queue_wait = Obs.Clock.monotonic_s () -. job.submitted_s in
    let req =
      match (job.req.P.timeout_s, t.config.default_timeout_s) with
      | None, (Some _ as d) -> { job.req with P.timeout_s = d }
      | _ -> job.req
    in
    Mutex.lock t.lock;
    t.running <- (req.P.id, conn, job.cancel) :: t.running;
    Mutex.unlock t.lock;
    let t0 = Obs.Clock.monotonic_us () in
    let resp =
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.lock;
          t.running <-
            List.filter
              (fun (rid, c, _) -> not (rid = req.P.id && c == conn))
              t.running;
          Mutex.unlock t.lock)
        (fun () -> Api.execute ~cancel:job.cancel req)
    in
    Atomic.set
      t.exec_busy_us.(ex)
      (Atomic.get t.exec_busy_us.(ex) +. (Obs.Clock.monotonic_us () -. t0));
    (* A cancelled job that aborted at a deadline poll surfaces as
       Timeout; report it as Cancelled.  If it outraced the token and
       completed, the genuine result stands. *)
    let resp =
      match (Atomic.get job.cancel, resp.P.status) with
      | true, P.Failed (Sim.Sim_error.Timeout _) ->
        { resp with P.status = P.Cancelled; payload = J.Null }
      | _ -> resp
    in
    let resp =
      { resp with P.meta = resp.P.meta @ [ ("queue_wait_s", J.Num queue_wait) ] }
    in
    if req.P.telemetry then
      send_event conn
        (P.Telemetry { rid = req.P.id; body = Api.stats_payload () });
    (* account before answering: clients synchronize on the final
       response, so the per-executor counters must already be visible *)
    Atomic.incr t.jobs_done;
    Atomic.incr t.exec_jobs.(ex);
    send_response conn resp
  end;
  Atomic.decr conn.pending;
  maybe_close conn

(* Pop the next job in round-robin order.  Caller holds [t.lock]. *)
let take_next t =
  match t.rr with
  | [] -> None
  | conn :: rest ->
    let job = Queue.pop conn.jobs in
    t.queued <- t.queued - 1;
    t.rr <- (if Queue.is_empty conn.jobs then rest else rest @ [ conn ]);
    Some job

let executor t ex () =
  (* Label this domain's pool account so `losac stats` renders a row per
     executor (its caller-helps chunks are charged here, not to a
     generic "caller" row). *)
  Par.Pool.set_role (Printf.sprintf "exec-%d" ex);
  let rec loop () =
    Mutex.lock t.lock;
    while t.queued = 0 && not (Atomic.get t.shutdown) do
      Condition.wait t.nonempty t.lock
    done;
    (* Drain semantics: on shutdown, admitted jobs still run to
       completion; only then does the executor exit. *)
    match take_next t with
    | Some job ->
      Obs.Metrics.set "serve.queue_depth" (float_of_int t.queued);
      Mutex.unlock t.lock;
      run_job t ~ex job;
      loop ()
    | None ->
      Mutex.unlock t.lock;
      if not (Atomic.get t.shutdown) then loop ()
  in
  loop ()

(* --- admission --------------------------------------------------------- *)

(* Reader-thread path for [cancel {target}]: never queued.  Scans the
   connection's own queued jobs and the running set (same connection
   only — a client may not cancel another client's work). *)
let handle_cancel t conn ~(req : P.request) ~target =
  let found = ref false in
  Mutex.lock t.lock;
  Queue.iter
    (fun j ->
      if j.req.P.id = target && not (Atomic.get j.cancel) then begin
        Atomic.set j.cancel true;
        found := true
      end)
    conn.jobs;
  List.iter
    (fun (rid, c, cancel) ->
      if rid = target && c == conn then begin
        Atomic.set cancel true;
        found := true
      end)
    t.running;
  Mutex.unlock t.lock;
  if !found then Obs.Metrics.incr "serve.cancelled";
  send_response conn
    {
      P.rid = req.P.id;
      workload = "cancel";
      status = P.Done;
      payload =
        J.Obj
          [
            ("target", J.Num (float_of_int target));
            ("cancelled", J.Bool !found);
          ];
      meta = [];
    }

let admit t conn (req : P.request) =
  match req.P.workload with
  | P.Cancel { target } -> handle_cancel t conn ~req ~target
  | _ ->
    if Atomic.get t.shutdown then
      send_response conn
        (error_response ~rid:req.P.id
           ~workload:(P.workload_name req.P.workload) P.Shutting_down)
    else begin
      Mutex.lock t.lock;
      let depth = t.queued in
      if depth >= t.config.queue_limit then begin
        Mutex.unlock t.lock;
        Obs.Metrics.incr "serve.overloaded";
        send_response conn
          (error_response ~rid:req.P.id
             ~workload:(P.workload_name req.P.workload)
             (P.Overloaded { depth; limit = t.config.queue_limit }))
      end
      else begin
        Atomic.incr conn.pending;
        let was_empty = Queue.is_empty conn.jobs in
        Queue.add
          {
            req;
            jconn = conn;
            submitted_s = Obs.Clock.monotonic_s ();
            cancel = Atomic.make false;
          }
          conn.jobs;
        if was_empty then t.rr <- t.rr @ [ conn ];
        t.queued <- t.queued + 1;
        let depth = t.queued in
        Obs.Metrics.set "serve.queue_depth" (float_of_int depth);
        Condition.signal t.nonempty;
        Mutex.unlock t.lock;
        send_event conn (P.Ack { rid = req.P.id; queue_depth = depth })
      end
    end

(* --- reader ------------------------------------------------------------ *)

(* Poll so a blocked read notices shutdown within a quarter second. *)
let readable ?(timeout = 0.25) fd =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  (* EINTR: retry next round.  EBADF: another thread closed the fd while
     we polled; the alive check at the top of the loop ends the reader. *)
  | exception Unix.Unix_error _ -> false

let reader t conn () =
  let bad rid msg =
    send_response conn
      (error_response ~rid ~workload:"unknown" (P.Bad_request msg))
  in
  let rec loop () =
    if Atomic.get conn.alive && not (Atomic.get t.shutdown) then
      if not (readable conn.fd) then loop ()
      else
        match Frame.read ~max_frame:t.config.max_frame conn.fd with
        | None -> Atomic.set conn.alive false
        | Some payload ->
          (match J.parse payload with
           | Error msg ->
             (* Parse errors keep the connection: framing is intact, so
                the next frame is still delimited. *)
             bad (-1) (Printf.sprintf "invalid JSON: %s" msg);
             loop ()
           | Ok json ->
             (match P.request_of_json json with
              | Error msg ->
                bad (P.salvage_id json) msg;
                loop ()
              | Ok req ->
                admit t conn req;
                loop ()))
        | exception Frame.Oversized { length; limit } ->
          (* The payload was never consumed — the stream is unusable. *)
          bad (-1)
            (Printf.sprintf "frame of %d bytes exceeds the %d byte limit"
               length limit);
          Atomic.set conn.alive false
        | exception (Frame.Truncated | Unix.Unix_error _) ->
          Atomic.set conn.alive false
    else if Atomic.get conn.alive && Atomic.get t.shutdown then begin
      (* Give a pipelining client its rejections rather than vanishing. *)
      match
        if readable ~timeout:0.05 conn.fd then
          Frame.read ~max_frame:t.config.max_frame conn.fd
        else None
      with
      | Some payload ->
        (match J.parse payload with
         | Ok json ->
           (match P.request_of_json json with
            | Ok req -> admit t conn req
            | Error _ -> ())
         | Error _ -> ());
        Atomic.set conn.alive false
      | None | (exception _) -> Atomic.set conn.alive false
    end
  in
  loop ();
  kill conn

(* --- lifecycle --------------------------------------------------------- *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let listen_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 16;
  fd

let acceptor t listen_fd () =
  let rec loop () =
    if not (Atomic.get t.shutdown) then
      if not (readable listen_fd) then loop ()
      else
        match Unix.accept ~cloexec:true listen_fd with
        | fd, _ ->
          let conn =
            {
              fd;
              wlock = Mutex.create ();
              alive = Atomic.make true;
              pending = Atomic.make 0;
              closed = Atomic.make false;
              jobs = Queue.create ();
            }
          in
          Mutex.lock t.lock;
          t.conns <- conn :: List.filter (fun c -> Atomic.get c.alive) t.conns;
          Mutex.unlock t.lock;
          ignore (Thread.create (reader t conn) ());
          loop ()
        | exception Unix.Unix_error _ -> loop ()
  in
  loop ()

let start config =
  (* A peer closing mid-write must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let n_exec = max 1 (min 16 config.executors) in
  let t =
    {
      config;
      n_exec;
      shutdown = Atomic.make false;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      rr = [];
      queued = 0;
      running = [];
      listeners = [];
      threads = [];
      exec_domains = [];
      exec_jobs = Array.init n_exec (fun _ -> Atomic.make 0);
      exec_busy_us = Array.init n_exec (fun _ -> Atomic.make 0.0);
      conns = [];
      jobs_done = Atomic.make 0;
    }
  in
  let listeners =
    (match config.socket_path with
     | Some path -> [ listen_unix path ]
     | None -> [])
    @
    match config.tcp with
    | Some (host, port) -> [ listen_tcp host port ]
    | None -> []
  in
  if listeners = [] then
    invalid_arg "Serve.Server.start: no socket_path and no tcp address";
  t.listeners <- listeners;
  (* Executors are domains (not threads): context-local flag bindings
     live in domain-local storage, so isolation requires one domain per
     concurrently-running job. *)
  t.exec_domains <-
    List.init n_exec (fun ex -> Domain.spawn (executor t ex));
  t.threads <- List.map (fun fd -> Thread.create (acceptor t fd) ()) listeners;
  t

let jobs_done t = Atomic.get t.jobs_done

let queue_depth t =
  Mutex.lock t.lock;
  let d = t.queued in
  Mutex.unlock t.lock;
  d

let executors t = t.n_exec

let executor_stats t =
  List.init t.n_exec (fun ex ->
      {
        ex_id = ex;
        ex_jobs = Atomic.get t.exec_jobs.(ex);
        ex_busy_s = Atomic.get t.exec_busy_us.(ex) /. 1e6;
      })

let stop t =
  Atomic.set t.shutdown true;
  Mutex.lock t.lock;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  (* Joining the executors IS the drain: each exits only once the queues
     are empty and its in-flight job has answered. *)
  List.iter Domain.join t.exec_domains;
  t.exec_domains <- [];
  List.iter Thread.join t.threads;
  t.threads <- [];
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  Mutex.lock t.lock;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.lock;
  (* Readers poll [alive]/[shutdown] every 0.25 s; give the stragglers a
     moment, then kill whatever is left (the close-once latch makes this
     safe against a reader racing to the same conclusion). *)
  Unix.sleepf 0.3;
  List.iter kill conns;
  match t.config.socket_path with
  | Some path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let run config =
  let t = start config in
  let stopping = Atomic.make false in
  let request_stop _ = Atomic.set stopping true in
  let previous =
    List.map
      (fun s -> (s, Sys.signal s (Sys.Signal_handle request_stop)))
      [ Sys.sigterm; Sys.sigint ]
  in
  let rec wait () =
    if Atomic.get stopping then ()
    else begin
      Unix.sleepf 0.2;
      wait ()
    end
  in
  wait ();
  stop t;
  List.iter (fun (s, b) -> try Sys.set_signal s b with Invalid_argument _ -> ()) previous;
  jobs_done t

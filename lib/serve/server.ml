(* The losac job daemon.

   Concurrency model: one reader thread per connection parses frames and
   performs admission control; admitted jobs go onto a bounded queue
   consumed by a SINGLE executor thread.  Serializing execution is
   deliberate — Exec.Ctx.scope applies process-wide switches
   (cache/telemetry/backend) with save/restore semantics, so two jobs
   with different flags must not overlap; per-job parallelism happens
   *inside* the job on the shared Par.Pool instead.  It also means the
   process-wide Cache.Memo registry and Device.Lut grids are reused
   across requests without ever racing a clear against a fill. *)

module J = Obs.Json
module P = Protocol

type config = {
  socket_path : string option;
  tcp : (string * int) option;
  queue_limit : int;
  max_frame : int;
  default_timeout_s : float option;
}

let default_config =
  {
    socket_path = None;
    tcp = None;
    queue_limit = 64;
    max_frame = Frame.max_frame_default;
    default_timeout_s = None;
  }

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;  (* reader (acks, errors) and executor share the fd *)
  alive : bool Atomic.t;
  pending : int Atomic.t;  (* jobs admitted but not yet answered *)
  closed : bool Atomic.t;  (* close-once latch for [fd] *)
}

(* Closing is deferred until no queued job references the connection:
   closing early would let the kernel reuse the descriptor number while
   the executor still holds it, sending a response to a stranger. *)
let maybe_close conn =
  if
    (not (Atomic.get conn.alive))
    && Atomic.get conn.pending = 0
    && Atomic.compare_and_set conn.closed false true
  then try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* Death of a connection: peers see EOF immediately (shutdown), the
   descriptor itself is reclaimed once the last pending job answered. *)
let kill conn =
  Atomic.set conn.alive false;
  (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  maybe_close conn

type job = { req : P.request; conn : conn; submitted_s : float }

type t = {
  config : config;
  shutdown : bool Atomic.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable listeners : Unix.file_descr list;
  mutable threads : Thread.t list;  (* accept + executor; readers detach *)
  mutable conns : conn list;  (* guarded by [lock] *)
  jobs_done : int Atomic.t;
}

(* --- writing ----------------------------------------------------------- *)

(* A dead peer must never kill the server: write failures just mark the
   connection dead and the payload is dropped. *)
let send conn json =
  if Atomic.get conn.alive then begin
    Mutex.lock conn.wlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock conn.wlock)
      (fun () ->
        try Frame.write conn.fd (J.to_string json)
        with Unix.Unix_error _ | Frame.Truncated ->
          Atomic.set conn.alive false)
  end

let send_response conn (r : P.response) = send conn (P.response_to_json r)
let send_event conn e = send conn (P.event_to_json e)

let error_response ~rid ~workload status =
  { P.rid; workload; status; payload = J.Null; meta = [] }

(* --- executor ---------------------------------------------------------- *)

let run_job t job =
  let conn = job.conn in
  if Atomic.get conn.alive then begin
    send_event conn (P.Started { rid = job.req.P.id });
    let queue_wait = Obs.Clock.monotonic_s () -. job.submitted_s in
    let req =
      match (job.req.P.timeout_s, t.config.default_timeout_s) with
      | None, (Some _ as d) -> { job.req with P.timeout_s = d }
      | _ -> job.req
    in
    let resp = Api.execute req in
    let resp =
      { resp with P.meta = resp.P.meta @ [ ("queue_wait_s", J.Num queue_wait) ] }
    in
    if req.P.telemetry then
      send_event conn
        (P.Telemetry { rid = req.P.id; body = Api.stats_payload () });
    send_response conn resp;
    Atomic.incr t.jobs_done
  end;
  Atomic.decr conn.pending;
  maybe_close conn

let executor t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not (Atomic.get t.shutdown) do
      Condition.wait t.nonempty t.lock
    done;
    (* Drain semantics: on shutdown, admitted jobs still run to
       completion; only then does the executor exit. *)
    match Queue.take_opt t.queue with
    | Some job ->
      Obs.Metrics.set "serve.queue_depth" (float_of_int (Queue.length t.queue));
      Mutex.unlock t.lock;
      run_job t job;
      loop ()
    | None ->
      Mutex.unlock t.lock;
      if not (Atomic.get t.shutdown) then loop ()
  in
  loop ()

(* --- admission --------------------------------------------------------- *)

let admit t conn (req : P.request) =
  if Atomic.get t.shutdown then
    send_response conn
      (error_response ~rid:req.P.id
         ~workload:(P.workload_name req.P.workload) P.Shutting_down)
  else begin
    Mutex.lock t.lock;
    let depth = Queue.length t.queue in
    if depth >= t.config.queue_limit then begin
      Mutex.unlock t.lock;
      Obs.Metrics.incr "serve.overloaded";
      send_response conn
        (error_response ~rid:req.P.id
           ~workload:(P.workload_name req.P.workload)
           (P.Overloaded { depth; limit = t.config.queue_limit }))
    end
    else begin
      Atomic.incr conn.pending;
      Queue.add { req; conn; submitted_s = Obs.Clock.monotonic_s () } t.queue;
      let depth = Queue.length t.queue in
      Obs.Metrics.set "serve.queue_depth" (float_of_int depth);
      Condition.signal t.nonempty;
      Mutex.unlock t.lock;
      send_event conn (P.Ack { rid = req.P.id; queue_depth = depth })
    end
  end

(* --- reader ------------------------------------------------------------ *)

(* Poll so a blocked read notices shutdown within a quarter second. *)
let readable ?(timeout = 0.25) fd =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  (* EINTR: retry next round.  EBADF: another thread closed the fd while
     we polled; the alive check at the top of the loop ends the reader. *)
  | exception Unix.Unix_error _ -> false

let reader t conn () =
  let bad rid msg =
    send_response conn
      (error_response ~rid ~workload:"unknown" (P.Bad_request msg))
  in
  let rec loop () =
    if Atomic.get conn.alive && not (Atomic.get t.shutdown) then
      if not (readable conn.fd) then loop ()
      else
        match Frame.read ~max_frame:t.config.max_frame conn.fd with
        | None -> Atomic.set conn.alive false
        | Some payload ->
          (match J.parse payload with
           | Error msg ->
             (* Parse errors keep the connection: framing is intact, so
                the next frame is still delimited. *)
             bad (-1) (Printf.sprintf "invalid JSON: %s" msg);
             loop ()
           | Ok json ->
             (match P.request_of_json json with
              | Error msg ->
                bad (P.salvage_id json) msg;
                loop ()
              | Ok req ->
                admit t conn req;
                loop ()))
        | exception Frame.Oversized { length; limit } ->
          (* The payload was never consumed — the stream is unusable. *)
          bad (-1)
            (Printf.sprintf "frame of %d bytes exceeds the %d byte limit"
               length limit);
          Atomic.set conn.alive false
        | exception (Frame.Truncated | Unix.Unix_error _) ->
          Atomic.set conn.alive false
    else if Atomic.get conn.alive && Atomic.get t.shutdown then begin
      (* Give a pipelining client its rejections rather than vanishing. *)
      match
        if readable ~timeout:0.05 conn.fd then
          Frame.read ~max_frame:t.config.max_frame conn.fd
        else None
      with
      | Some payload ->
        (match J.parse payload with
         | Ok json ->
           (match P.request_of_json json with
            | Ok req -> admit t conn req
            | Error _ -> ())
         | Error _ -> ());
        Atomic.set conn.alive false
      | None | (exception _) -> Atomic.set conn.alive false
    end
  in
  loop ();
  kill conn

(* --- lifecycle --------------------------------------------------------- *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let listen_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 16;
  fd

let acceptor t listen_fd () =
  let rec loop () =
    if not (Atomic.get t.shutdown) then
      if not (readable listen_fd) then loop ()
      else
        match Unix.accept ~cloexec:true listen_fd with
        | fd, _ ->
          let conn =
            {
              fd;
              wlock = Mutex.create ();
              alive = Atomic.make true;
              pending = Atomic.make 0;
              closed = Atomic.make false;
            }
          in
          Mutex.lock t.lock;
          t.conns <- conn :: List.filter (fun c -> Atomic.get c.alive) t.conns;
          Mutex.unlock t.lock;
          ignore (Thread.create (reader t conn) ());
          loop ()
        | exception Unix.Unix_error _ -> loop ()
  in
  loop ()

let start config =
  (* A peer closing mid-write must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    {
      config;
      shutdown = Atomic.make false;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      listeners = [];
      threads = [];
      conns = [];
      jobs_done = Atomic.make 0;
    }
  in
  let listeners =
    (match config.socket_path with
     | Some path -> [ listen_unix path ]
     | None -> [])
    @
    match config.tcp with
    | Some (host, port) -> [ listen_tcp host port ]
    | None -> []
  in
  if listeners = [] then
    invalid_arg "Serve.Server.start: no socket_path and no tcp address";
  t.listeners <- listeners;
  t.threads <-
    Thread.create (executor t) ()
    :: List.map (fun fd -> Thread.create (acceptor t fd) ()) listeners;
  t

let jobs_done t = Atomic.get t.jobs_done
let queue_depth t =
  Mutex.lock t.lock;
  let d = Queue.length t.queue in
  Mutex.unlock t.lock;
  d

let stop t =
  Atomic.set t.shutdown true;
  Mutex.lock t.lock;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  (* Joining the executor IS the drain: it exits only once the queue is
     empty and the in-flight job has answered. *)
  List.iter Thread.join t.threads;
  t.threads <- [];
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  Mutex.lock t.lock;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.lock;
  (* Readers poll [alive]/[shutdown] every 0.25 s; give the stragglers a
     moment, then kill whatever is left (the close-once latch makes this
     safe against a reader racing to the same conclusion). *)
  Unix.sleepf 0.3;
  List.iter kill conns;
  match t.config.socket_path with
  | Some path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let run config =
  let t = start config in
  let stopping = Atomic.make false in
  let request_stop _ = Atomic.set stopping true in
  let previous =
    List.map
      (fun s -> (s, Sys.signal s (Sys.Signal_handle request_stop)))
      [ Sys.sigterm; Sys.sigint ]
  in
  let rec wait () =
    if Atomic.get stopping then ()
    else begin
      Unix.sleepf 0.2;
      wait ()
    end
  in
  wait ();
  stop t;
  List.iter (fun (s, b) -> try Sys.set_signal s b with Invalid_argument _ -> ()) previous;
  jobs_done t

(** The [losac.job/1] wire API: versioned JSON request/response records
    shared verbatim by the one-shot CLI ([losac <cmd> --format json]) and
    the {!Server} daemon, so a served job and the CLI run are the same
    code path and their result documents are byte-identical.

    A {e request} names a workload (a flow case, a sizing run, a Monte
    Carlo or corner verification, or a cheap diagnostic), the technology
    and model, spec overrides (absent fields keep the paper's Table-1
    values), execution-context flags that map onto a scoped
    {!Exec.Ctx.t} (jobs/chunk/cache/backend), an optional cooperative
    timeout, and a telemetry opt-in.

    A {e response} carries a status built on {!Sim.Sim_error.t} (plus
    the admission-control rejections [overloaded], [invalid_request],
    [internal_error] and [shutting_down]) and a {e deterministic} result
    payload; everything volatile (elapsed time, queue wait) lives in a
    separate [meta] object that {!canonical} strips, so canonical forms
    of the same job are byte-comparable across processes and runs.

    On a connection the server may interleave {e events} (job [ack]ed
    with the queue depth, [started], optional [telemetry]) before the
    final [result] message; all messages carry the API version and the
    request id. *)

type workload =
  | Ping  (** liveness probe; payload [{"pong":true}] *)
  | Sleep of { seconds : float }
      (** diagnostic busy-job for admission-control and timeout testing *)
  | Tech  (** characterise the built-in technologies *)
  | Stats  (** cache/pool observability snapshot (payload is volatile) *)
  | Synth of { case : Core.Flow.case }  (** one Table-1 flow case *)
  | Size of { topology : string }
      (** size an op-amp ([folded-cascode], [two-stage] or [5t]) *)
  | Mc of { n : int; seed : int }  (** Monte Carlo mismatch verification *)
  | Corners  (** corner/temperature sweep of the sized amp *)
  | Verify of { samples : int; seed : int }
      (** the CLI [verify] bundle: Monte Carlo + rebias corner sweep +
          PSRR + common-mode range *)
  | Optimize of { starts : int; budget : int; strategy : string; lut : bool }
      (** multi-start optimization over sizing-plan inputs
          ({!Opt.Search.run}): [strategy] is ["nm"] or ["anneal"], [lut]
          selects the LUT-interpolated coarse tier, and the seed comes
          from the request's [ctx.seed] (resolved like every execution
          switch).  Additive in [losac.job/1]. *)
  | Cancel of { target : int }
      (** cancel the queued or running job with id [target] {e on the
          same connection}: sets its cooperative cancellation token
          (deadline moved to now), so the job answers [Cancelled] at its
          next interruption point.  Handled by the reader thread, never
          queued — it cannot wait behind the job it cancels.  The
          cancel request itself answers [Done] with
          [{"target":id,"cancelled":bool}] ([false] when no such job is
          pending).  Additive in [losac.job/1]. *)

type request = {
  id : int;
  workload : workload;
  proc : string;  (** technology name, resolved via {!Technology.Process.find} *)
  kind : Device.Model.kind;
  spec : Comdiac.Spec.t;
  jobs : int option;
  chunk : int option;
  cache : bool option;
  backend : Sim.Stamps.backend option;
  seed : int option;
      (** base RNG seed ({!Exec.Ctx.seed}); additive [ctx.seed] wire
          field *)
  timeout_s : float option;
      (** cooperative per-job deadline, enforced between samples /
          corner points / flow iterations *)
  telemetry : bool;  (** stream a telemetry event before the result *)
}

val request :
  ?id:int -> ?proc:string -> ?kind:Device.Model.kind ->
  ?spec:Comdiac.Spec.t -> ?jobs:int -> ?chunk:int -> ?cache:bool ->
  ?backend:Sim.Stamps.backend -> ?seed:int -> ?timeout_s:float ->
  ?telemetry:bool ->
  workload -> request
(** Request with CLI-default technology ([c06]), model ([bsim-lite]) and
    spec ({!Comdiac.Spec.paper_ota}). *)

type status =
  | Done
  | Failed of Sim.Sim_error.t
  | Bad_request of string
  | Internal of string
  | Overloaded of { depth : int; limit : int }
  | Shutting_down
  | Cancelled
      (** the job was cancelled (via {!constructor:Cancel}) before or
          during execution; additive status in [losac.job/1] *)

type response = {
  rid : int;
  workload : string;
  status : status;
  payload : Obs.Json.t;  (** deterministic result record; [Null] on failure *)
  meta : (string * Obs.Json.t) list;  (** volatile: elapsed, queue wait *)
}

type event =
  | Ack of { rid : int; queue_depth : int }
  | Started of { rid : int }
  | Telemetry of { rid : int; body : Obs.Json.t }

type message = Event of event | Final of response

val version : string
(** ["losac.job/1"]. *)

val workload_name : workload -> string
val case_to_int : Core.Flow.case -> int
val case_of_int : int -> Core.Flow.case option
val kind_of_string : string -> Device.Model.kind option

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result
(** Strict decode: version-checked, unknown workloads and ill-typed
    fields rejected with a message; optional fields get CLI defaults. *)

val salvage_id : Obs.Json.t -> int
(** Best-effort id of an arbitrary (possibly invalid) request document,
    for error responses; [-1] when absent. *)

val spec_to_json : Comdiac.Spec.t -> Obs.Json.t
val sim_error_to_json : Sim.Sim_error.t -> Obs.Json.t
val status_string : status -> string

val response_to_json : response -> Obs.Json.t
(** Full response document, including the volatile [meta] object. *)

val canonical : response -> string
(** The response serialized with [meta] stripped: the byte-comparable
    form.  Two runs of the same request — served or one-shot, warm or
    cold cache, any jobs count — produce equal canonical strings. *)

val event_to_json : event -> Obs.Json.t

val message_of_json : Obs.Json.t -> (message, string) result
(** Decode one server-to-client message (event or final result). *)

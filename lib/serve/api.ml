module J = Obs.Json
module P = Protocol

(* --- deterministic payload builders ----------------------------------- *)

let perf_to_json (p : Comdiac.Performance.t) =
  J.Obj
    [
      ("dc_gain_db", J.Num p.Comdiac.Performance.dc_gain_db);
      ("gbw", J.Num p.Comdiac.Performance.gbw);
      ("phase_margin", J.Num p.Comdiac.Performance.phase_margin);
      ("slew_rate", J.Num p.Comdiac.Performance.slew_rate);
      ("cmrr_db", J.Num p.Comdiac.Performance.cmrr_db);
      ("offset", J.Num p.Comdiac.Performance.offset);
      ("output_resistance", J.Num p.Comdiac.Performance.output_resistance);
      ("input_noise", J.Num p.Comdiac.Performance.input_noise);
      ("thermal_noise_density",
       J.Num p.Comdiac.Performance.thermal_noise_density);
      ("flicker_noise_density",
       J.Num p.Comdiac.Performance.flicker_noise_density);
      ("power", J.Num p.Comdiac.Performance.power);
    ]

let perf_of_json json =
  let f name = Option.bind (J.member name json) J.to_float in
  match
    ( f "dc_gain_db", f "gbw", f "phase_margin", f "slew_rate", f "cmrr_db",
      f "offset", f "output_resistance", f "input_noise",
      f "thermal_noise_density", f "flicker_noise_density", f "power" )
  with
  | ( Some dc_gain_db, Some gbw, Some phase_margin, Some slew_rate,
      Some cmrr_db, Some offset, Some output_resistance, Some input_noise,
      Some thermal_noise_density, Some flicker_noise_density, Some power ) ->
    Some
      {
        Comdiac.Performance.dc_gain_db; gbw; phase_margin; slew_rate;
        cmrr_db; offset; output_resistance; input_noise;
        thermal_noise_density; flicker_noise_density; power;
      }
  | _ -> None

let flow_payload (r : Core.Flow.result) =
  let report = r.Core.Flow.report in
  J.Obj
    [
      ("case", J.Str (Core.Flow.case_label r.Core.Flow.case));
      ("description", J.Str (Core.Flow.case_description r.Core.Flow.case));
      ("layout_calls", J.Num (float_of_int r.Core.Flow.layout_calls));
      ("sizing_passes", J.Num (float_of_int r.Core.Flow.sizing_passes));
      ("trajectory", J.Arr (List.map (fun d -> J.Num d) r.Core.Flow.trajectory));
      ("synthesized", perf_to_json r.Core.Flow.synthesized);
      ("extracted", perf_to_json r.Core.Flow.extracted);
      ("floorplan",
       J.Obj
         [
           ("w", J.Num (float_of_int report.Cairo_layout.Plan.total_w));
           ("h", J.Num (float_of_int report.Cairo_layout.Plan.total_h));
         ]);
      ("device_styles",
       J.Arr
         (List.map
            (fun (name, style) ->
              J.Obj
                [
                  ("name", J.Str name);
                  ("nf", J.Num (float_of_int style.Device.Folding.nf));
                ])
            report.Cairo_layout.Plan.device_styles));
    ]

let stats_to_json (s : Comdiac.Montecarlo.stats) =
  J.Obj
    [
      ("n", J.Num (float_of_int s.Comdiac.Montecarlo.n));
      ("mean", J.Num s.Comdiac.Montecarlo.mean);
      ("std", J.Num s.Comdiac.Montecarlo.std);
      ("min", J.Num s.Comdiac.Montecarlo.minimum);
      ("max", J.Num s.Comdiac.Montecarlo.maximum);
    ]

let mc_payload ~n ~seed (r : Comdiac.Montecarlo.result) =
  J.Obj
    [
      ("n", J.Num (float_of_int n));
      ("seed", J.Num (float_of_int seed));
      ("converged", J.Num (float_of_int (List.length r.Comdiac.Montecarlo.samples)));
      ("offset", stats_to_json r.Comdiac.Montecarlo.offset_stats);
      ("gain_db", stats_to_json r.Comdiac.Montecarlo.gain_stats);
      ("gbw", stats_to_json r.Comdiac.Montecarlo.gbw_stats);
      ("predicted_offset_sigma",
       J.Num r.Comdiac.Montecarlo.predicted_offset_sigma);
    ]

let corners_payload (r : Comdiac.Robustness.result) =
  J.Obj
    [
      ("points",
       J.Arr
         (List.map
            (fun (p : Comdiac.Robustness.point) ->
              J.Obj
                [
                  ("corner",
                   J.Str (Technology.Corner.to_string p.Comdiac.Robustness.corner));
                  ("temperature_k", J.Num p.Comdiac.Robustness.temperature);
                  ("gbw", J.Num p.Comdiac.Robustness.gbw);
                  ("phase_margin", J.Num p.Comdiac.Robustness.phase_margin);
                  ("dc_gain_db", J.Num p.Comdiac.Robustness.dc_gain_db);
                  ("power", J.Num p.Comdiac.Robustness.power);
                  ("biased", J.Bool p.Comdiac.Robustness.biased);
                ])
            r.Comdiac.Robustness.points));
      ("worst_gbw", J.Num r.Comdiac.Robustness.worst_gbw);
      ("worst_pm", J.Num r.Comdiac.Robustness.worst_pm);
      ("all_biased", J.Bool r.Comdiac.Robustness.all_biased);
    ]

let devices_payload amp =
  J.Arr
    (List.map
       (fun (d : Device.Mos.t) ->
         J.Obj
           [
             ("name", J.Str d.Device.Mos.name);
             ("w", J.Num d.Device.Mos.w);
             ("l", J.Num d.Device.Mos.l);
             ("nf", J.Num (float_of_int d.Device.Mos.style.Device.Folding.nf));
           ])
       (Comdiac.Amp.mos_devices amp))

let tech_payload () =
  J.Obj
    [
      ("technologies",
       J.Arr
         (List.map
            (fun p ->
              let e = Technology.Process.evaluate p in
              J.Obj
                [
                  ("name", J.Str e.Technology.Process.proc_name);
                  ("kp_n", J.Num e.Technology.Process.kp_n);
                  ("kp_p", J.Num e.Technology.Process.kp_p);
                  ("cox_areal", J.Num e.Technology.Process.cox_areal);
                  ("ft_n_at_veff", J.Num e.Technology.Process.ft_n_at_veff);
                  ("ft_p_at_veff", J.Num e.Technology.Process.ft_p_at_veff);
                  ("gate_cap_min", J.Num e.Technology.Process.gate_cap_min);
                  ("diff_cap_per_width",
                   J.Num e.Technology.Process.diff_cap_per_width);
                  ("metal1_cap_per_len",
                   J.Num e.Technology.Process.metal1_cap_per_len);
                ])
            Technology.Process.builtin));
    ]

(* Volatile by nature: the observability snapshot. *)
let stats_payload () =
  let caches =
    List.map
      (fun (s : Cache.Memo.stats) ->
        J.Obj
          [
            ("name", J.Str s.Cache.Memo.name);
            ("hits", J.Num (float_of_int s.Cache.Memo.hits));
            ("misses", J.Num (float_of_int s.Cache.Memo.misses));
            ("evictions", J.Num (float_of_int s.Cache.Memo.evictions));
            ("entries", J.Num (float_of_int s.Cache.Memo.entries));
            ("capacity", J.Num (float_of_int s.Cache.Memo.capacity));
            ("hit_rate", J.Num (Cache.Memo.hit_rate s));
          ])
      (Cache.Memo.registry ())
  in
  let workers =
    List.map
      (fun (w : Par.Pool.worker_stat) ->
        J.Obj
          [
            ("domain", J.Num (float_of_int w.Par.Pool.ws_domain));
            ("role", J.Str w.Par.Pool.ws_role);
            ("tasks", J.Num (float_of_int w.Par.Pool.ws_tasks));
            ("busy_us", J.Num w.Par.Pool.ws_busy_us);
            ("wait_us", J.Num w.Par.Pool.ws_wait_us);
            ("busy_frac", J.Num w.Par.Pool.ws_busy_frac);
            ("steals", J.Num (float_of_int w.Par.Pool.ws_steals));
            ("steal_attempts",
             J.Num (float_of_int w.Par.Pool.ws_steal_attempts));
            ("steal_spins", J.Num (float_of_int w.Par.Pool.ws_steal_spins));
            ("warmup_us", J.Num w.Par.Pool.ws_warmup_us);
          ])
      (Par.Pool.worker_stats ())
  in
  let is_exec (w : Par.Pool.worker_stat) =
    String.length w.Par.Pool.ws_role >= 4
    && String.sub w.Par.Pool.ws_role 0 4 = "exec"
  in
  let executors =
    List.length (List.filter is_exec (Par.Pool.worker_stats ()))
  in
  J.Obj
    [
      ("caches", J.Arr caches);
      ("pool",
       J.Obj
         [
           ("workers", J.Num (float_of_int (Par.Pool.num_workers ())));
           ("executors", J.Num (float_of_int executors));
           ("queue_depth", J.Num (float_of_int (Par.Pool.queue_depth ())));
           ("domains", J.Arr workers);
         ]);
      ("luts_built", J.Num (float_of_int (Device.Lut.tables_built ())));
      ("lut_trust",
       (* the Device.Lut trust guard: exact-model disagreement over the
          grid cells this process actually interpolated from *)
       (let t = Device.Lut.trust_check () in
        J.Obj
          [
            ("cells_visited", J.Num (float_of_int t.Device.Lut.cells_visited));
            ("max_rel_err", J.Num t.Device.Lut.max_rel_err);
          ]));
    ]

let point_to_json (p : Opt.Objective.point) =
  J.Obj
    [
      ("vec", J.Arr (List.map (fun v -> J.Num v) (Array.to_list p.Opt.Objective.vec)));
      ("feasible", J.Bool p.Opt.Objective.feasible);
      ("gbw", J.Num p.Opt.Objective.gbw);
      ("phase_margin", J.Num p.Opt.Objective.pm);
      ("gain_db", J.Num p.Opt.Objective.gain_db);
      ("power", J.Num p.Opt.Objective.power);
      ("area", J.Num p.Opt.Objective.area);
      ("penalty", J.Num p.Opt.Objective.penalty);
      ("score", J.Num p.Opt.Objective.score);
    ]

let optimize_payload (res : Opt.Search.result) =
  J.Obj
    ([
       ("strategy", J.Str (Opt.Search.strategy_to_string res.Opt.Search.strategy));
       ("seed", J.Num (float_of_int res.Opt.Search.seed));
       ("starts", J.Num (float_of_int res.Opt.Search.starts));
       ("budget", J.Num (float_of_int res.Opt.Search.budget));
       ("lut", J.Bool res.Opt.Search.lut);
       ("evals",
        J.Obj
          [
            ("coarse", J.Num (float_of_int res.Opt.Search.evals_coarse));
            ("polish", J.Num (float_of_int res.Opt.Search.evals_polish));
            ("sim", J.Num (float_of_int res.Opt.Search.evals_sim));
          ]);
       ("best", point_to_json res.Opt.Search.best);
       ("front", J.Arr (List.map point_to_json res.Opt.Search.front));
     ]
    @ (match res.Opt.Search.best_design with
       | None -> []
       | Some d ->
         [
           ("design",
            J.Obj
              [
                ("devices", devices_payload d.Comdiac.Folded_cascode.amp);
                ("i1", J.Num d.Comdiac.Folded_cascode.i1);
                ("i2", J.Num d.Comdiac.Folded_cascode.i2);
                ("l_casc", J.Num d.Comdiac.Folded_cascode.l_casc);
                ("iterations",
                 J.Num (float_of_int d.Comdiac.Folded_cascode.iterations));
              ]);
         ])
    @
    match res.Opt.Search.best_performance with
    | None -> []
    | Some p -> [ ("performance", perf_to_json p) ])

(* --- workload execution ----------------------------------------------- *)

let nominal_design ~proc ~kind ~spec =
  Comdiac.Folded_cascode.size ~proc ~kind ~spec
    ~parasitics:Comdiac.Parasitics.single_fold

(* [Sleep] cooperates with the deadline in slices so timed-out sleeps
   abandon early, like a real analysis at a sample boundary. *)
let sleep ~ctx seconds =
  let deadline_check () = Exec.Ctx.check_deadline ~analysis:"sleep" ctx in
  let until = Obs.Clock.monotonic_s () +. seconds in
  let rec go () =
    deadline_check ();
    let remaining = until -. Obs.Clock.monotonic_s () in
    if remaining > 0.0 then begin
      Unix.sleepf (Float.min remaining 0.05);
      go ()
    end
  in
  go ()

let classify ~analysis f =
  match f () with
  | v -> Ok v
  | exception e ->
    (match Sim.Sim_error.of_exn ~analysis e with
     | Some err -> Error err
     | None -> raise e)

let run_workload ?cancel (r : P.request) proc =
  let ctx =
    Exec.Ctx.with_timeout r.P.timeout_s
      (Exec.Ctx.make ?jobs:r.P.jobs ?chunk:r.P.chunk ?cache:r.P.cache
         ?backend:r.P.backend ?seed:r.P.seed
         ?telemetry:(if r.P.telemetry then Some true else None)
         ~label:(P.workload_name r.P.workload) ?cancel proc)
  in
  let kind = r.P.kind and spec = r.P.spec in
  match r.P.workload with
  | P.Cancel _ ->
    (* Only meaningful against a live daemon connection, where the
       reader thread intercepts it before execution (see Server). *)
    Error "cancel requires a running daemon (nothing to cancel one-shot)"
  | P.Ping -> Ok (Ok (J.Obj [ ("pong", J.Bool true) ]))
  | P.Sleep { seconds } ->
    Ok
      (classify ~analysis:"sleep" (fun () ->
         sleep ~ctx:(Some ctx) seconds;
         J.Obj [ ("slept", J.Num seconds) ]))
  | P.Tech -> Ok (Ok (tech_payload ()))
  | P.Stats -> Ok (Ok (stats_payload ()))
  | P.Synth { case } ->
    Ok
      (Result.map flow_payload
         (Core.Flow.run_result ~ctx ~kind ~spec case))
  | P.Size { topology } ->
    let sized =
      match topology with
      | "folded-cascode" | "fc" ->
        Some
          (classify ~analysis:"size" (fun () ->
             let d = nominal_design ~proc ~kind ~spec in
             (d.Comdiac.Folded_cascode.amp,
              [
                ("predicted_gbw",
                 J.Num d.Comdiac.Folded_cascode.predicted_gbw);
                ("predicted_pm", J.Num d.Comdiac.Folded_cascode.predicted_pm);
                ("predicted_gain_db",
                 J.Num d.Comdiac.Folded_cascode.predicted_gain_db);
                ("iterations",
                 J.Num (float_of_int d.Comdiac.Folded_cascode.iterations));
              ])))
      | "two-stage" | "miller" ->
        let spec = { spec with Comdiac.Spec.icmr = (1.2, 2.1) } in
        Some
          (classify ~analysis:"size" (fun () ->
             let d =
               Comdiac.Two_stage.size ~proc ~kind ~spec
                 ~parasitics:Comdiac.Parasitics.single_fold
             in
             (d.Comdiac.Two_stage.amp, [])))
      | "5t" | "simple" ->
        let spec = { spec with Comdiac.Spec.icmr = (1.2, 2.1) } in
        Some
          (classify ~analysis:"size" (fun () ->
             let d =
               Comdiac.Simple_ota.size ~proc ~kind ~spec
                 ~parasitics:Comdiac.Parasitics.single_fold
             in
             (d.Comdiac.Simple_ota.amp, [])))
      | _ -> None
    in
    (match sized with
     | None ->
       Error
         (Printf.sprintf
            "unknown topology %S (folded-cascode|two-stage|5t)" topology)
     | Some (Error e) -> Ok (Error e)
     | Some (Ok (amp, predicted)) ->
       Ok
         (classify ~analysis:"size" (fun () ->
            let tb = Comdiac.Testbench.make ~proc ~kind ~spec amp in
            J.Obj
              ([
                 ("topology", J.Str topology);
                 ("devices", devices_payload amp);
               ]
               @ predicted
               @ [ ("performance", perf_to_json (Comdiac.Testbench.performance tb)) ]))))
  | P.Mc { n; seed } ->
    Ok
      (classify ~analysis:"montecarlo" (fun () -> nominal_design ~proc ~kind ~spec)
       |> Fun.flip Result.bind (fun design ->
         Result.map
           (mc_payload ~n ~seed)
           (Comdiac.Montecarlo.run_result ~seed ~n ~ctx ~kind ~spec
              design.Comdiac.Folded_cascode.amp)))
  | P.Corners ->
    Ok
      (classify ~analysis:"robustness" (fun () -> nominal_design ~proc ~kind ~spec)
       |> Fun.flip Result.bind (fun design ->
         Result.map corners_payload
           (Comdiac.Robustness.run_result ~ctx ~kind ~spec
              design.Comdiac.Folded_cascode.amp)))
  | P.Optimize { starts; budget; strategy; lut } ->
    let strategy =
      match Opt.Search.strategy_of_string strategy with
      | Some s -> s
      | None -> Opt.Search.Nelder_mead
    in
    Ok
      (Result.map optimize_payload
         (Opt.Search.run_result ~ctx ~starts ~budget ~strategy ~lut ~kind
            ~spec ()))
  | P.Verify { samples; seed } ->
    Ok
      (classify ~analysis:"verify" (fun () -> nominal_design ~proc ~kind ~spec)
       |> Fun.flip Result.bind (fun design ->
         let amp = design.Comdiac.Folded_cascode.amp in
         Result.bind
           (Comdiac.Montecarlo.run_result ~seed ~n:samples ~ctx ~kind ~spec amp)
           (fun mc ->
             let rebias p =
               Comdiac.Folded_cascode.rebias ~proc:p ~kind ~spec design
             in
             Result.bind
               (Comdiac.Robustness.run_result ~rebias ~ctx ~kind ~spec amp)
               (fun rob ->
                 classify ~analysis:"verify" (fun () ->
                   let tb = Comdiac.Testbench.make ~proc ~kind ~spec amp in
                   let psrr_db =
                     Sim.Measure.db (Comdiac.Testbench.psrr tb)
                   in
                   let lo, hi = Comdiac.Testbench.common_mode_range tb in
                   J.Obj
                     [
                       ("montecarlo", mc_payload ~n:samples ~seed mc);
                       ("corners", corners_payload rob);
                       ("psrr_db", J.Num psrr_db);
                       ("common_mode_range",
                        J.Arr [ J.Num lo; J.Num hi ]);
                     ])))))

let execute ?cancel (r : P.request) =
  let t0 = Obs.Clock.monotonic_s () in
  let finish status payload =
    {
      P.rid = r.P.id;
      workload = P.workload_name r.P.workload;
      status;
      payload;
      meta = [ ("elapsed_s", J.Num (Obs.Clock.monotonic_s () -. t0)) ];
    }
  in
  match
    match Technology.Process.find r.P.proc with
    | proc -> run_workload ?cancel r proc
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown technology %S (have: %s)" r.P.proc
           (String.concat ", "
              (List.map
                 (fun p -> p.Technology.Process.name)
                 Technology.Process.builtin)))
  with
  | Ok (Ok payload) -> finish P.Done payload
  | Ok (Error sim) -> finish (P.Failed sim) J.Null
  | Error msg -> finish (P.Bad_request msg) J.Null
  | exception e ->
    finish (P.Internal (Printexc.to_string e)) J.Null

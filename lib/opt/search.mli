(** Deterministic, parallel, multi-start search over sizing-plan inputs —
    the batch-evaluation engine that turns the paper's one-point COMDIAC
    plan into a high-throughput optimization workload.

    {b Two-tier evaluation.}  Each start runs a four-stage pipeline:
    (1) {e screening} — its share of the coarse budget as probe vectors
    drawn from the start's own SplitMix64 stream (the same vectors
    whichever tier scores them), scored by the coarse tier:
    {!Objective.Lut_plan} by default (device evaluations interpolated
    from {!Device.Lut} grids), [Exact_plan] with [~lut:false];
    (2) {e exact confirmation} — the top screened candidates re-scored
    with the exact plan, best confirmed score wins; (3) the search
    strategy (Nelder–Mead or annealing) refining {e on the exact plan}
    from that winner; (4) a deterministic exact-plan lattice polish down
    to a lattice-local minimum.  Only the polished per-start winners
    (the survivors) are re-verified in the simulator
    ({!Objective.Simulated}); the reported [best] and Pareto [front] are
    always simulator-scored.  Thousands of coarse candidates therefore
    cost what dozens of simulated ones used to.

    {b What the LUT toggle can and cannot change.}  Stages 2–4 depend
    only on (seed, start index, exact plan, confirmed start point), so
    the toggle influences the result solely through confirmed-set
    membership.  Exact confirmation repairs coarse-tier {e ranking}
    noise, but a candidate the LUT plan rejects outright (a feasibility
    flip — the plan's discrete cascode-ladder and branch-current
    decisions sit near a threshold and interpolation error tips them)
    is invisible to the confirmation stage.  Front identity across the
    toggle is therefore empirical, not structural: high (see `bench
    opt`'s agreement record and the pinned-seed tests) but not
    universal, and the verified best quality agrees to well under a
    percent when the fronts do differ.  Identity across [jobs] and the
    cache toggle {e is} structural — see below.

    {b Determinism.}  Start [i] draws only from SplitMix64 stream
    [(seed, i)]; {!Par.Pool.map} reassembles per-start results in start
    order; survivors and the front are sorted by
    {!Objective.compare_point} (score, then vector).  Results are
    bit-identical at any [jobs] count and with the memo cache on or off.
    The seed resolves via {!Exec.Ctx.seed} (explicit > [ctx.seed] >
    [LOSAC_SEED] > 42). *)

type strategy = Nelder_mead | Anneal

val strategy_to_string : strategy -> string
val strategy_of_string : string -> strategy option
(** ["nm"] / ["anneal"] (also accepts ["nelder-mead"], ["annealing"]). *)

type result = {
  strategy : strategy;
  seed : int;              (** resolved seed the run used *)
  starts : int;
  budget : int;            (** coarse-tier evaluation budget (total) *)
  lut : bool;              (** coarse tier interpolated from LUT grids? *)
  evals_coarse : int;      (** coarse-tier evaluations performed *)
  evals_polish : int;      (** exact-plan polish evaluations *)
  evals_sim : int;         (** simulator verifications (= survivors) *)
  survivors : Objective.point list;
      (** deduplicated polished winners, simulator-scored, sorted *)
  front : Objective.point list;
      (** Pareto front (penalty, power, area) of the survivors *)
  best : Objective.point;  (** head of [survivors] *)
  best_design : Comdiac.Folded_cascode.design option;
      (** exact re-sizing of [best] ([None] if infeasible) *)
  best_performance : Comdiac.Performance.t option;
      (** full Table-1 measurement of [best_design] when [~measure] *)
  elapsed_search_s : float;   (** wall clock, never part of payloads *)
  elapsed_verify_s : float;
}

val run :
  ?ctx:Exec.Ctx.t ->
  ?starts:int ->
  ?budget:int ->
  ?strategy:strategy ->
  ?seed:int ->
  ?lut:bool ->
  ?measure:bool ->
  ?proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Comdiac.Spec.t ->
  unit -> result
(** Defaults: 6 starts, a total coarse budget of 480 evaluations,
    {!Nelder_mead}, LUT tier on, [measure] on ([measure] runs the full
    memoized Table-1 measurement on the winner; tests that only compare
    fronts pass [false]).  Raises on timeout/cancellation
    ({!Sim.Sim_error.Deadline_exceeded}, polled between candidate
    evaluations) — use {!run_result} for the [Error Timeout] form.
    Publishes the {!Device.Lut.trust_check} gauges after the coarse
    pass. *)

val run_result :
  ?ctx:Exec.Ctx.t ->
  ?starts:int -> ?budget:int -> ?strategy:strategy -> ?seed:int ->
  ?lut:bool -> ?measure:bool ->
  ?proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Comdiac.Spec.t ->
  unit -> (result, Sim.Sim_error.t) Stdlib.result

val points_per_second : result -> float
(** (coarse + polish evaluations) / search wall clock — the headline
    throughput number `bench opt` records. *)

val pp : Format.formatter -> result -> unit

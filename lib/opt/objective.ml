module FC = Comdiac.Folded_cascode
module Spec = Comdiac.Spec

(* Candidate space: the plan inputs the paper's COMDIAC procedure chooses
   from design knowledge, exposed as a 6-vector the search walks.  Every
   coordinate lives on a finite lattice (see [snap]): the memo cache then
   sees revisited points as exact key hits, and two searches that land in
   the same basin converge to the *identical* vector, which is what makes
   cross-tier front agreement testable bit-for-bit. *)

let dims = 6
let names = [| "veff_in"; "veff_tail"; "veff_nsink"; "veff_psrc";
               "i2_ratio"; "l_mult" |]
let lower = [| 0.10; 0.16; 0.15; 0.16; 0.95; 1.00 |]
let upper = [| 0.24; 0.38; 0.30; 0.30; 2.00; 1.50 |]

(* lattice resolution per dimension: 1/64 of the range *)
let lattice_steps = 64

let step d = (upper.(d) -. lower.(d)) /. float_of_int lattice_steps

let clamp d x = Float.max lower.(d) (Float.min upper.(d) x)

let snap vec =
  Array.mapi
    (fun d x ->
      let h = step d in
      let k = Float.round ((clamp d x -. lower.(d)) /. h) in
      clamp d (lower.(d) +. (k *. h)))
    vec

let knobs_of_vec v =
  { FC.veff_in = Some v.(0); veff_tail = Some v.(1); veff_nsink = Some v.(2);
    veff_psrc = Some v.(3); i2_ratio = Some v.(4); l_mult = Some v.(5) }

(* Draw a random snapped candidate from a SplitMix64 stream.  The fill
   order is an explicit loop: [Array.init]'s evaluation order is
   unspecified, and the draw order is part of the determinism contract. *)
let sample_vec st =
  let v = Array.make dims 0.0 in
  for d = 0 to dims - 1 do
    v.(d) <- lower.(d) +. (Par.Splitmix.float st *. (upper.(d) -. lower.(d)))
  done;
  snap v

type mode = Lut_plan | Exact_plan | Simulated

let mode_tag = function
  | Lut_plan -> "lut"
  | Exact_plan -> "plan"
  | Simulated -> "sim"

type point = {
  vec : float array;
  feasible : bool;
  gbw : float;
  pm : float;
  gain_db : float;
  power : float;
  area : float;
  penalty : float;
  score : float;
}

(* Deterministic total order: score first, then the vector
   lexicographically, so equal-score candidates (e.g. two infeasible
   points) still sort the same way on every domain and at every jobs
   count. *)
let compare_point p q =
  match Float.compare p.score q.score with
  | 0 -> Stdlib.compare p.vec q.vec
  | c -> c

type t = {
  proc : Technology.Process.t;
  kind : Device.Model.kind;
  spec : Spec.t;
}

let make ~proc ~kind ~spec () = { proc; kind; spec }

(* A dc-gain floor keeps the cost tiebreak from walking into degenerate
   low-gain corners the Table-1 header does not constrain explicitly. *)
let gain_floor_db = 60.0

(* Spec-satisfaction penalty (relative deficits over the Table-1 specs)
   plus an area/power tiebreak once the specs are met.  The same formula
   scores every tier, so plan-predicted and simulated metrics are
   directly comparable. *)
let score_of spec ~gbw ~pm ~gain_db ~power ~area =
  let rel_deficit target v =
    if Float.is_nan v then 1.0
    else Float.max 0.0 ((target -. v) /. target)
  in
  let penalty =
    rel_deficit spec.Spec.gbw gbw
    +. rel_deficit spec.Spec.phase_margin pm
    +. rel_deficit gain_floor_db gain_db
  in
  (* power in mW and gate area in 1e-9 m^2: both land near unity for the
     paper's OTA, so neither silently dominates the tiebreak *)
  let cost = (power /. 1e-3) +. (area /. 1e-9) in
  (penalty, (1e3 *. penalty) +. cost)

let infeasible_score = 1e9

let infeasible vec =
  { vec; feasible = false; gbw = Float.nan; pm = Float.nan;
    gain_db = Float.nan; power = Float.nan; area = Float.nan;
    penalty = Float.nan; score = infeasible_score }

let area_of amp =
  List.fold_left
    (fun acc d -> acc +. (d.Device.Mos.w *. d.Device.Mos.l))
    0.0
    (Comdiac.Amp.mos_devices amp)

let finish spec vec ~gbw ~pm ~gain_db ~power ~area =
  let penalty, score = score_of spec ~gbw ~pm ~gain_db ~power ~area in
  if Float.is_finite score then
    { vec; feasible = true; gbw; pm; gain_db; power; area; penalty; score }
  else infeasible vec

(* The plan tiers: run the COMDIAC sizing plan with the candidate's knob
   overrides and score its *predicted* metrics — no simulation.  The LUT
   variant additionally interpolates every forward device evaluation
   from the Device.Lut grids, which is the cheap first-pass path. *)
let eval_plan t ~dev_eval vec =
  match
    FC.size_with ~knobs:(knobs_of_vec vec) ~dev_eval ~proc:t.proc ~kind:t.kind
      ~spec:t.spec ~parasitics:Comdiac.Parasitics.single_fold ()
  with
  | design ->
    finish t.spec vec ~gbw:design.FC.predicted_gbw ~pm:design.FC.predicted_pm
      ~gain_db:design.FC.predicted_gain_db
      ~power:(t.spec.Spec.vdd *. design.FC.amp.Comdiac.Amp.supply_current)
      ~area:(area_of design.FC.amp)
  | exception (Failure _ | Phys.Numerics.No_convergence _) -> infeasible vec

(* The exact tier: size with exact models, then *measure* the candidate
   in the simulator — offset-nulled open loop, AC sweep, supply current.
   This is what "verify" means for the surviving front; it costs a full
   testbench per point, which is exactly why the coarse tiers exist. *)
let eval_sim t vec =
  match
    FC.size_with ~knobs:(knobs_of_vec vec) ~dev_eval:FC.Exact_model
      ~proc:t.proc ~kind:t.kind ~spec:t.spec
      ~parasitics:Comdiac.Parasitics.single_fold ()
  with
  | design ->
    (match Comdiac.Testbench.make ~proc:t.proc ~kind:t.kind ~spec:t.spec
             design.FC.amp
     with
     | tb ->
       let opt_nan = function Some v -> v | None -> Float.nan in
       finish t.spec vec
         ~gbw:(opt_nan (Comdiac.Testbench.gbw tb))
         ~pm:(opt_nan (Comdiac.Testbench.phase_margin tb))
         ~gain_db:(Sim.Measure.db (Comdiac.Testbench.dc_gain tb))
         ~power:(Comdiac.Testbench.power tb)
         ~area:(area_of design.FC.amp)
     | exception (Failure _ | Phys.Numerics.No_convergence _) ->
       infeasible vec)
  | exception (Failure _ | Phys.Numerics.No_convergence _) -> infeasible vec

(* Candidate-granularity memo: a point is a pure function of (process,
   model kind, spec, tier, vector), so revisited lattice points — simplex
   collapses, annealing walks crossing old ground, warm re-runs of the
   same optimization — cost a hash lookup.  Bit-identity with the cache
   off holds because the compute is pure. *)
let point_memo :
    ( Technology.Process.t * Device.Model.kind * Spec.t * string * float list,
      point )
    Cache.Memo.t =
  Cache.Memo.create ~name:"opt.candidate" ~shards:8 ~capacity:16384 ()

let eval ?ctx t ~mode vec =
  Exec.Ctx.check_deadline ~analysis:"optimize" ctx;
  if Obs.Config.enabled () then
    Obs.Metrics.incr (Printf.sprintf "opt.evals.%s" (mode_tag mode));
  Cache.Memo.find_or_compute point_memo
    (t.proc, t.kind, t.spec, mode_tag mode, Array.to_list vec)
    (fun () ->
      match mode with
      | Lut_plan -> eval_plan t ~dev_eval:FC.Lut_model vec
      | Exact_plan -> eval_plan t ~dev_eval:FC.Exact_model vec
      | Simulated -> eval_sim t vec)

(* Pareto front over (penalty, power, area), all minimized; infeasible
   points never enter.  Returned sorted by [compare_point]. *)
let pareto points =
  let feas = List.filter (fun p -> p.feasible) points in
  let dominates a b =
    a.penalty <= b.penalty && a.power <= b.power && a.area <= b.area
    && (a.penalty < b.penalty || a.power < b.power || a.area < b.area)
  in
  List.sort compare_point
    (List.filter
       (fun p -> not (List.exists (fun q -> dominates q p) feas))
       feas)

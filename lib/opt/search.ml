module O = Objective

type strategy = Nelder_mead | Anneal

let strategy_to_string = function
  | Nelder_mead -> "nm"
  | Anneal -> "anneal"

let strategy_of_string = function
  | "nm" | "nelder-mead" -> Some Nelder_mead
  | "anneal" | "annealing" -> Some Anneal
  | _ -> None

type result = {
  strategy : strategy;
  seed : int;
  starts : int;
  budget : int;
  lut : bool;
  evals_coarse : int;
  evals_polish : int;
  evals_sim : int;
  survivors : O.point list;
  front : O.point list;
  best : O.point;
  best_design : Comdiac.Folded_cascode.design option;
  best_performance : Comdiac.Performance.t option;
  elapsed_search_s : float;
  elapsed_verify_s : float;
}

(* ---------- strategy internals ------------------------------------- *)
(* Every candidate goes through clamp+snap before evaluation, so the
   whole search walks the lattice; [eval] is the per-start counting
   wrapper the caller supplies.  All randomness comes from the start's
   own SplitMix64 stream, drawn in a fixed order — a start's outcome is a
   pure function of (seed, start index). *)

let gaussian st =
  let u1 = Float.max 1e-12 (Par.Splitmix.float st) in
  let u2 = Par.Splitmix.float st in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let range d = O.upper.(d) -. O.lower.(d)

(* Nelder–Mead with standard coefficients (reflect 1, expand 2, contract
   0.5, shrink 0.5), started from a given point.  The simplex lives on
   the lattice; once proposals collapse onto existing vertices the
   simplex stops moving and the remaining budget is simply not spent —
   termination is by budget either way.  No randomness: the trajectory
   is a pure function of the start point and the objective. *)
let nelder_mead ~eval ~x0 ~budget =
  let n = O.dims in
  let spent = ref 0 in
  let ev v = incr spent; eval v in
  let vertex d =
    let v = Array.copy x0 in
    v.(d) <- v.(d) +. (0.25 *. range d);
    let v = O.snap v in
    if v = x0 then begin
      let w = Array.copy x0 in
      w.(d) <- w.(d) -. (0.25 *. range d);
      O.snap w
    end
    else v
  in
  let simplex = Array.make (n + 1) (ev x0) in
  for d = 0 to n - 1 do
    simplex.(d + 1) <- ev (vertex d)
  done;
  let sort () = Array.sort O.compare_point simplex in
  sort ();
  let best = ref simplex.(0) in
  let note p = if O.compare_point p !best < 0 then best := p in
  Array.iter note simplex;
  while !spent < budget do
    (* centroid of all but the worst *)
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      for d = 0 to n - 1 do
        c.(d) <- c.(d) +. (simplex.(i).O.vec.(d) /. float_of_int n)
      done
    done;
    let worst = simplex.(n) in
    let combine t =
      O.snap
        (Array.init n (fun d -> c.(d) +. (t *. (c.(d) -. worst.O.vec.(d)))))
    in
    let reflect = ev (combine 1.0) in
    note reflect;
    (if O.compare_point reflect simplex.(0) < 0 && !spent < budget then begin
       (* best so far: try expanding further along the same direction *)
       let expand = ev (combine 2.0) in
       note expand;
       simplex.(n) <-
         (if O.compare_point expand reflect < 0 then expand else reflect)
     end
     else if O.compare_point reflect simplex.(n - 1) < 0 then
       simplex.(n) <- reflect
     else if !spent < budget then begin
       let contract = ev (combine (-0.5)) in
       note contract;
       if O.compare_point contract worst < 0 then simplex.(n) <- contract
       else begin
         (* shrink toward the best vertex *)
         let b = simplex.(0).O.vec in
         let i = ref 1 in
         while !i <= n && !spent < budget do
           let v =
             O.snap
               (Array.init n (fun d ->
                  b.(d) +. (0.5 *. (simplex.(!i).O.vec.(d) -. b.(d)))))
           in
           simplex.(!i) <- ev v;
           note simplex.(!i);
           incr i
         done
       end
     end);
    sort ()
  done;
  !best

(* Annealing fallback for non-smooth regions: a gaussian random walk
   whose step size and acceptance temperature shrink geometrically over
   the budget.  The acceptance scale is relative to the current score so
   the schedule works in both the penalty-dominated (1e3-ish) and
   cost-dominated (unity-ish) regimes. *)
let anneal ~eval st ~x0 ~budget =
  let spent = ref 0 in
  let ev v = incr spent; eval v in
  let x = ref (ev x0) in
  let best = ref !x in
  let t_hi = 1.0 and t_lo = 0.02 in
  while !spent < budget do
    let frac = float_of_int !spent /. float_of_int (max 1 budget) in
    let temp = t_hi *. ((t_lo /. t_hi) ** frac) in
    let y = Array.copy !x.O.vec in
    for d = 0 to O.dims - 1 do
      y.(d) <- y.(d) +. (gaussian st *. 0.3 *. range d *. temp)
    done;
    let fy = ev (O.snap y) in
    if O.compare_point fy !best < 0 then best := fy;
    let u = Par.Splitmix.float st in
    let scale = temp *. 0.1 *. (Float.abs !x.O.score +. 1.0) in
    if
      O.compare_point fy !x < 0
      || exp ((!x.O.score -. fy.O.score) /. scale) > u
    then x := fy
  done;
  !best

(* Exact-plan polish: deterministic steepest-descent over lattice
   neighbourhoods at shrinking strides.  No randomness — from any start
   inside a basin this converges to the basin's lattice-local minimum,
   which is what makes the final answer independent of which coarse tier
   (LUT or exact plan) found the basin. *)
let polish ~eval ~cap start =
  let spent = ref 0 in
  let cur = ref start in
  List.iter
    (fun stride ->
      let improved = ref true in
      while !improved && !spent < cap do
        improved := false;
        let candidate = ref None in
        for d = 0 to O.dims - 1 do
          List.iter
            (fun dir ->
              let v = Array.copy !cur.O.vec in
              v.(d) <- v.(d) +. (float_of_int (dir * stride) *. O.step d);
              let v = O.snap v in
              if v <> !cur.O.vec && !spent < cap then begin
                incr spent;
                let p = eval v in
                match !candidate with
                | Some q when O.compare_point q p <= 0 -> ()
                | _ -> candidate := Some p
              end)
            [ -1; 1 ]
        done;
        match !candidate with
        | Some p when O.compare_point p !cur < 0 ->
          cur := p;
          improved := true
        | _ -> ()
      done)
    [ 16; 8; 4; 2; 1 ];
  (!cur, !spent)

(* ---------- the engine --------------------------------------------- *)

let run ?ctx ?(starts = 6) ?(budget = 480) ?(strategy = Nelder_mead) ?seed
    ?(lut = true) ?(measure = true) ?proc ~kind ~spec () =
  let proc = Exec.Ctx.proc ?override:proc ctx in
  let seed = Exec.Ctx.seed ?override:seed ctx in
  let jobs = Exec.Ctx.jobs ctx in
  let chunk = Exec.Ctx.chunk ctx in
  let starts = max 1 starts in
  let budget = max (4 * O.dims * starts) budget in
  Exec.Ctx.run ctx @@ fun () ->
  Obs.Trace.with_span ~cat:"opt"
    ~args:
      [ ("starts", Obs.Trace.Int starts); ("budget", Obs.Trace.Int budget);
        ("seed", Obs.Trace.Int seed) ]
    "opt.search"
  @@ fun () ->
  let obj = O.make ~proc ~kind ~spec () in
  let coarse_mode = if lut then O.Lut_plan else O.Exact_plan in
  let per_start = max (4 * O.dims) (budget / starts) in
  (* wide enough that a LUT-tier ranking miss still keeps the true exact
     best inside the confirmed set: across seed sweeps the worst observed
     rank of the exact-best probe under LUT scoring was 20 of 80 *)
  let screen_top = max 8 (3 * per_start / 10) in
  let refine_budget = 10 * O.dims in
  (* generous: the polish must run to a lattice-local minimum (not stop
     mid-descent) for the cross-tier front-identity property to hold *)
  let polish_cap = 200 * O.dims in
  (* One start = (1) a high-volume screening pass: [per_start] candidate
     vectors drawn from the start's own SplitMix64 stream — the {e same}
     vectors whichever tier scores them — scored in the coarse tier;
     (2) exact-confirmed selection: the top-[screen_top] screened
     candidates re-scored with the exact plan, best one wins; (3) the
     search strategy refining {e on the exact plan} from that winner;
     (4) the deterministic lattice polish.  Stages 2-4 depend only on
     (seed, index, exact plan, selected start point), so the LUT toggle
     can change the result only by ranking the true best screened
     candidate out of the top [screen_top] — which is what the trust
     guard bounds.  A start is a pure function of (seed, index);
     Par.Pool.map reassembles results in start order, so the fan-out is
     bit-identical at any jobs count. *)
  let one index =
    Exec.Ctx.check_deadline ~analysis:"optimize" ctx;
    let st = Par.Splitmix.create ~stream:index seed in
    let coarse_n = ref 0 in
    let evalc v =
      incr coarse_n;
      O.eval ?ctx obj ~mode:coarse_mode v
    in
    (* all stream draws happen here, before any score is looked at: the
       probe list is identical across tiers *)
    let probes = List.init per_start (fun _ -> O.sample_vec st) in
    let screened = List.stable_sort O.compare_point (List.map evalc probes) in
    let top =
      let rec take acc k = function
        | [] -> List.rev acc
        | _ when k = 0 -> List.rev acc
        | (p : O.point) :: tl ->
          if List.exists (fun (q : O.point) -> q.O.vec = p.O.vec) acc then
            take acc k tl
          else take (p :: acc) (k - 1) tl
      in
      take [] screen_top screened
    in
    let exact_n = ref 0 in
    let evale v =
      incr exact_n;
      O.eval ?ctx obj ~mode:O.Exact_plan v
    in
    let x0 =
      List.map (fun (p : O.point) -> evale p.O.vec) top
      |> List.sort O.compare_point |> List.hd
    in
    let refined =
      match strategy with
      | Nelder_mead -> nelder_mead ~eval:evale ~x0:x0.O.vec ~budget:refine_budget
      | Anneal -> anneal ~eval:evale st ~x0:x0.O.vec ~budget:refine_budget
    in
    let polished, _ = polish ~eval:evale ~cap:polish_cap refined in
    (polished, !coarse_n, !exact_n)
  in
  let t0 = Obs.Clock.monotonic_s () in
  let per_start_results =
    Par.Pool.map ?jobs ?chunk ~cost:Par.Pool.Expensive one
      (List.init starts Fun.id)
  in
  let t1 = Obs.Clock.monotonic_s () in
  let evals_coarse =
    List.fold_left (fun acc (_, c, _) -> acc + c) 0 per_start_results
  in
  let evals_polish =
    List.fold_left (fun acc (_, _, p) -> acc + p) 0 per_start_results
  in
  (* Survivors: the polished per-start winners, deduplicated by vector in
     start order.  These are the only points that pay for simulation. *)
  let survivors_vecs =
    List.fold_left
      (fun acc (p, _, _) ->
        if List.exists (fun v -> v = p.O.vec) acc then acc
        else p.O.vec :: acc)
      []
      per_start_results
    |> List.rev
  in
  let sim_pts =
    Par.Pool.map ?jobs ?chunk ~cost:Par.Pool.Expensive
      (fun v -> O.eval ?ctx obj ~mode:O.Simulated v)
      survivors_vecs
  in
  let t2 = Obs.Clock.monotonic_s () in
  let survivors = List.sort O.compare_point sim_pts in
  let best =
    match survivors with
    | b :: _ -> b
    | [] -> assert false (* starts >= 1 *)
  in
  let front = O.pareto survivors in
  let best_design =
    if best.O.feasible then
      match
        Comdiac.Folded_cascode.size_with ~knobs:(O.knobs_of_vec best.O.vec)
          ~dev_eval:Comdiac.Folded_cascode.Exact_model ~proc ~kind ~spec
          ~parasitics:Comdiac.Parasitics.single_fold ()
      with
      | d -> Some d
      | exception (Failure _ | Phys.Numerics.No_convergence _) -> None
    else None
  in
  let best_performance =
    if measure then
      match best_design with
      | None -> None
      | Some d ->
        (match
           Comdiac.Testbench.performance
             (Comdiac.Testbench.make ~proc ~kind ~spec
                d.Comdiac.Folded_cascode.amp)
         with
         | p -> Some p
         | exception (Failure _ | Phys.Numerics.No_convergence _) -> None)
    else None
  in
  (* the LUT trust guard: publish how far the interpolated tier strayed
     from the exact model on the grid cells this run actually visited *)
  ignore (Device.Lut.trust_check ());
  if Obs.Config.enabled () then begin
    Obs.Metrics.add "opt.starts" (float_of_int starts);
    Obs.Metrics.add "opt.survivors" (float_of_int (List.length survivors))
  end;
  {
    strategy;
    seed;
    starts;
    budget;
    lut;
    evals_coarse;
    evals_polish;
    evals_sim = List.length sim_pts;
    survivors;
    front;
    best;
    best_design;
    best_performance;
    elapsed_search_s = t1 -. t0;
    elapsed_verify_s = t2 -. t1;
  }

let run_result ?ctx ?starts ?budget ?strategy ?seed ?lut ?measure ?proc ~kind
    ~spec () =
  match run ?ctx ?starts ?budget ?strategy ?seed ?lut ?measure ?proc ~kind
          ~spec ()
  with
  | r -> Ok r
  | exception e ->
    (match Sim.Sim_error.of_exn ~analysis:"optimize" e with
     | Some err -> Error err
     | None -> raise e)

let points_per_second r =
  let pts = float_of_int (r.evals_coarse + r.evals_polish) in
  if r.elapsed_search_s > 0.0 then pts /. r.elapsed_search_s else 0.0

let pp fmt r =
  let open Format in
  fprintf fmt "@[<v>optimize: strategy=%s seed=%d starts=%d budget=%d lut=%b@,"
    (strategy_to_string r.strategy)
    r.seed r.starts r.budget r.lut;
  fprintf fmt
    "  evaluations: %d coarse + %d polish + %d simulated (%.0f pts/s coarse+polish)@,"
    r.evals_coarse r.evals_polish r.evals_sim (points_per_second r);
  let pp_point tag p =
    if p.O.feasible then
      fprintf fmt
        "  %s score %.4f pen %.4f  gbw %.1f MHz  pm %.1f deg  gain %.1f dB  \
         power %.2f mW  area %.0f um^2@,"
        tag p.O.score p.O.penalty (p.O.gbw /. 1e6) p.O.pm p.O.gain_db
        (p.O.power /. 1e-3)
        (p.O.area /. 1e-12)
    else fprintf fmt "  %s infeasible@," tag
  in
  pp_point "best " r.best;
  List.iteri (fun i p -> pp_point (sprintf "front[%d]" i) p) r.front;
  fprintf fmt "@]"

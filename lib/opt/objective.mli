(** The optimizer's objective: a candidate vector of COMDIAC plan inputs
    mapped through the existing sizing/verification machinery to a scalar
    score — relative spec deficits over the Table-1 targets (GBW, phase
    margin, a dc-gain floor) weighted 1000:1 over a power + gate-area
    tiebreak, so any spec-satisfying candidate beats every violating one
    and the feasible region is ranked by cost.

    {b Candidate space.}  Six knobs of {!Comdiac.Folded_cascode.size_with}:
    the four effective gate voltages the plan normally derives from range
    constraints, the starting cascode branch-current ratio, and a length
    multiplier on the non-cascode devices.  Every coordinate is snapped to
    a per-dimension lattice (1/64 of the range): revisited points hit the
    candidate memo exactly, and independent searches that reach the same
    basin return the {e identical} vector.

    {b Tiers.}  {!mode} selects how much the evaluation costs:
    [Lut_plan] runs the sizing plan with every forward device evaluation
    interpolated from {!Device.Lut} grids and scores the plan's own
    predictions; [Exact_plan] is the same plan on exact models;
    [Simulated] additionally measures the sized candidate in the MNA
    simulator (offset-nulled dc gain, GBW, phase margin, quiescent
    power).  The same scoring formula applies to every tier, which is
    what lets a cheap tier rank candidates for an exact tier to
    re-verify. *)

val dims : int
val names : string array
val lower : float array
val upper : float array

val step : int -> float
(** Lattice step of dimension [d] (1/64 of its range). *)

val snap : float array -> float array
(** Clamp to the bounds and round every coordinate to its lattice. *)

val sample_vec : Par.Splitmix.t -> float array
(** One random snapped candidate; draws [dims] floats from the stream in
    coordinate order (part of the determinism contract). *)

val knobs_of_vec : float array -> Comdiac.Folded_cascode.knobs

type mode = Lut_plan | Exact_plan | Simulated

val mode_tag : mode -> string
(** ["lut"], ["plan"], ["sim"] — the memo-key / metrics tag. *)

type point = {
  vec : float array;     (** snapped candidate *)
  feasible : bool;       (** plan converged and produced finite metrics *)
  gbw : float;           (** Hz (NaN when infeasible) *)
  pm : float;            (** degrees *)
  gain_db : float;
  power : float;         (** W *)
  area : float;          (** summed gate area, m^2 *)
  penalty : float;       (** summed relative spec deficits, 0 = specs met *)
  score : float;         (** 1000·penalty + power/mW + area/nm² *)
}

val compare_point : point -> point -> int
(** Total order: score, then the vector lexicographically — deterministic
    tie-breaking at any jobs count. *)

val infeasible_score : float

type t

val make :
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Comdiac.Spec.t ->
  unit -> t
(** The parasitic view is fixed to {!Comdiac.Parasitics.single_fold}
    (the paper's case 2 — the knowledge the sizing tool has before any
    layout exists). *)

val eval : ?ctx:Exec.Ctx.t -> t -> mode:mode -> float array -> point
(** Evaluate one candidate.  Memoized at candidate granularity
    ([opt.candidate] in {!Cache.Memo.registry}) keyed by (process, kind,
    spec, tier, vector); the compute is pure, so results are
    bit-identical with the cache on or off.  Polls
    {!Exec.Ctx.check_deadline} (analysis ["optimize"]) before each
    evaluation, so a served job's timeout or cancellation token
    interrupts between candidates.  A candidate whose plan diverges is
    returned as an infeasible point ([score] = {!infeasible_score}),
    never an exception. *)

val pareto : point list -> point list
(** Non-dominated subset over (penalty, power, area), feasible points
    only, sorted by {!compare_point}. *)

(** The global telemetry enable flag.

    Telemetry is off by default; every instrumented call site checks the
    flag once before recording anything, so the disabled cost on hot paths
    (Newton solves, AC sweeps) is one ref read and a branch. *)

val flag : bool ref
(** Read directly from hot call sites. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the flag temporarily set, restoring the previous value. *)

(** The telemetry enable flag: context-local binding over a global
    default.

    Telemetry is off by default; every instrumented call site checks
    {!enabled} once before recording anything, so the disabled cost on
    hot paths (Newton solves, AC sweeps) is one domain-local read and a
    branch.

    Resolution order (most to least specific):
    {e ctx binding > global > default (off)}.  {!with_enabled} binds
    the context-local value on the calling domain only — concurrent
    scopes with conflicting values do not observe each other — while
    {!set_enabled} mutates the process-global fallback (CLI startup,
    [--metrics]).  [Par.Pool] propagates the binding to worker domains
    per batch via {!Fluid.capture}. *)

val enabled : unit -> bool
(** The effective flag: the calling domain's context-local binding if
    one is active, the global otherwise. *)

val set_enabled : bool -> unit
(** Set the process-global fallback (observed by every domain with no
    context-local binding). *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with a context-local binding on the calling domain, restored on
    exit.  Never touches the global. *)

(* A minimal self-contained JSON value type with an emitter and a strict
   recursive-descent parser.  The reporter emits through this module and
   the test suite parses the emitted traces back through it, so the
   exported Chrome trace format is round-trip checked without an external
   JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- emission --------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest decimal form that parses back to exactly [v]: the job
   protocol round-trips requests and responses through this module and
   the served-vs-CLI bit-identity guarantee needs every float to survive
   emission + parsing unchanged. *)
let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else
    let s15 = Printf.sprintf "%.15g" v in
    if float_of_string s15 = v then s15
    else
      let s16 = Printf.sprintf "%.16g" v in
      if float_of_string s16 = v then s16 else Printf.sprintf "%.17g" v

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num v ->
    (* JSON has no inf/nan literals *)
    if Float.is_finite v then Buffer.add_string b (number_to_string v)
    else Buffer.add_string b "null"
  | Str s -> escape_string b s
  | Arr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  emit b v;
  Buffer.contents b

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'f' -> Buffer.add_char b '\012'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with Failure _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* encode the code point as UTF-8 (BMP only; surrogate
                  pairs are not reassembled) *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some v -> Num v
    | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors -------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_str = function Str s -> Some s | _ -> None

(** Minimal JSON emitter and parser.

    The reporter emits Chrome [trace_event] files and metric dumps through
    this module; the test suite parses them back through [parse], so the
    exported format is round-trip checked without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialisation.  Non-finite numbers emit [null];
    finite numbers use the shortest decimal form that parses back to the
    identical float, so emit/parse round trips are bit-exact. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option

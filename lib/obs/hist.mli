(** Log-bucketed histograms (HDR-style) with ~1% relative error.

    Fixed-size integer bucket array over geometrically spaced boundaries
    (ratio {!gamma}), plus exact count/sum/min/max.  {!record} is O(1)
    and allocation-free; {!merge_into} is element-wise addition, hence
    associative and commutative over the bucket counts — the property
    that lets per-domain shards be recorded lock-free and merged only at
    snapshot time.  Designed for positive measurements (durations,
    counts, capacitances); values ≤ 0 fall into an underflow bucket
    answered by the exact minimum. *)

type t

val gamma : float
(** Bucket boundary ratio (1.02). *)

val rel_error : float
(** Worst-case relative error of {!quantile} for in-range positive
    values: [sqrt gamma - 1 < 1%]. *)

val create : unit -> t

val clear : t -> unit

val record : t -> float -> unit
(** O(1), allocation-free. *)

val count : t -> int

val sum : t -> float

val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val mean : t -> float
(** 0 when empty. *)

val merge_into : src:t -> dst:t -> unit
(** Accumulate [src] into [dst]; [src] is unchanged. *)

val copy : t -> t

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: the geometric midpoint of the
    bucket holding the rank-[ceil (q*n)] observation, clamped into
    [[min, max]]; exact max for [q >= 1]; [nan] when empty.  Within
    {!rel_error} of the exact order statistic for in-range positive
    values. *)

val fold_buckets :
  t -> init:'a -> f:('a -> upper:float -> count:int -> 'a) -> 'a
(** Fold over non-empty buckets in increasing value order.  [upper] is
    the bucket's inclusive upper bound ([infinity] for the overflow
    bucket) — the [le] label of an OpenMetrics bucket. *)

val approx_equal : t -> t -> bool
(** Same observation count, bucket counts and extrema; sums equal to
    1e-9 relative (float addition is not exactly associative). *)

(* Domain-local dynamic bindings ("fluid" variables).

   A fluid is a typed slot whose current value lives in [Domain.DLS]:
   each domain sees its own binding, so two domains can hold conflicting
   values at the same time without either observing the other.  [get]
   returns [None] when the calling domain has no binding, which callers
   treat as "fall back to the process-global default" — that split is
   what lets a concurrent job service run N jobs with conflicting
   cache/backend/telemetry switches on one daemon.

   Every fluid created through [make] also registers itself in a global
   registry so [capture] can snapshot *all* current bindings of the
   calling domain generically, without knowing their types.  The pool
   captures one snapshot per batch and re-installs it around each slice
   on whichever domain ends up running it (worker, thief or helping
   caller), so dynamic scope follows the work, not the domain.

   A captured value is an immutable ['a option]; installing it on
   another domain shares the (immutable) payload, never mutable state.

   Caveat: DLS is per-*domain*, and systhreads within one domain share
   it.  Code that needs isolated bindings must run on distinct domains
   (the job server spawns executor domains for exactly this reason);
   binding a fluid from two systhreads of the same domain interleaves
   their scopes. *)

type 'a t = { key : 'a option Domain.DLS.key }

(* A registry entry, closed over its fluid's key:
   calling it on domain A captures A's current binding and returns an
   installer; calling the installer on domain B saves B's previous
   binding, installs A's, and returns a restorer for B. *)
type entry = unit -> unit -> unit -> unit

let registry : entry array Atomic.t = Atomic.make [||]
let registry_lock = Mutex.create ()

let make () =
  let key = Domain.DLS.new_key (fun () -> None) in
  let entry () =
    let v = Domain.DLS.get key in
    fun () ->
      let prev = Domain.DLS.get key in
      Domain.DLS.set key v;
      fun () -> Domain.DLS.set key prev
  in
  Mutex.protect registry_lock (fun () ->
      Atomic.set registry (Array.append (Atomic.get registry) [| entry |]));
  { key }

let get t = Domain.DLS.get t.key

let with_value t v f =
  let prev = Domain.DLS.get t.key in
  Domain.DLS.set t.key (Some v);
  Fun.protect ~finally:(fun () -> Domain.DLS.set t.key prev) f

let with_opt t v f =
  match v with None -> f () | Some v -> with_value t v f

type snapshot = (unit -> unit -> unit) array

let empty : snapshot = [||]

let capture () = Array.map (fun entry -> entry ()) (Atomic.get registry)

let with_snapshot snap f =
  let restores = Array.map (fun install -> install ()) snap in
  Fun.protect
    ~finally:(fun () ->
      for i = Array.length restores - 1 downto 0 do
        restores.(i) ()
      done)
    f

(** Named counters, gauges and histograms.

    Writers ({!incr}, {!add}, {!set}, {!observe}) are no-ops while
    telemetry is disabled; readers always work and return zeros/empties
    for unknown names. *)

type hstats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
}

val incr : ?by:float -> string -> unit
(** Counter increment (default 1). *)

val add : string -> float -> unit
(** Counter increment by an explicit amount. *)

val set : string -> float -> unit
(** Gauge: last-write-wins. *)

val observe : string -> float -> unit
(** Histogram observation.  The raw sequence is retained (bounded at 4096
    values) so ordered series — e.g. per-iteration convergence deltas —
    can be read back with {!values}. *)

val counter : string -> float
val gauge : string -> float option
val hist_stats : string -> hstats option

val values : string -> float list
(** Histogram observations in observation order. *)

type item =
  | Counter of string * float
  | Gauge of string * float
  | Hist of string * hstats * float list

val snapshot : unit -> item list
(** All metrics sorted by name. *)

val reset : unit -> unit

(** Named counters, gauges and histograms.

    Writers ({!incr}, {!add}, {!set}, {!observe}) are no-ops while
    telemetry is disabled; readers always work and return zeros/empties
    for unknown names.

    Histograms are log-bucketed ({!Hist}: ~1% relative error, O(1)
    allocation-free record) and sharded per domain: each domain records
    lock-free into its own shard and readers merge the shards on demand,
    so instrumenting pool-worker hot paths costs no mutex.  Readers may
    observe a merge that is a few in-flight observations stale — the
    usual telemetry trade. *)

type hstats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;  (** median estimate, within ~1% of exact *)
  p90 : float;
  p99 : float;
}

val incr : ?by:float -> string -> unit
(** Counter increment (default 1). *)

val add : string -> float -> unit
(** Counter increment by an explicit amount. *)

val set : string -> float -> unit
(** Gauge: last-write-wins. *)

val observe : string -> float -> unit
(** Histogram observation, recorded into the calling domain's shard.
    The raw sequence is also retained (bounded at 4096 values per
    domain) so ordered series — e.g. per-iteration convergence deltas —
    can be read back with {!values}. *)

val counter : string -> float
val gauge : string -> float option
val hist_stats : string -> hstats option

val quantile : string -> float -> float option
(** [quantile name q] over the merged shards; [None] for unknown
    histograms. *)

val merged_hist : string -> Hist.t option
(** Fresh merge of every domain's shard for [name]; the caller owns the
    result.  Used by exporters that need bucket-level access. *)

val hist_names : unit -> string list
(** Sorted names of all recorded histograms. *)

val values : string -> float list
(** Histogram observations in observation order (per recording domain;
    domains concatenated in registration order). *)

type item =
  | Counter of string * float
  | Gauge of string * float
  | Hist of string * hstats * float list

val snapshot : unit -> item list
(** All metrics sorted by name. *)

val reset : unit -> unit

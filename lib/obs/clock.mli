(** Time sources for telemetry and elapsed-time reporting. *)

external monotonic_us : unit -> (float[@unboxed])
  = "losac_clock_monotonic_us_byte" "losac_clock_monotonic_us"
[@@noalloc]
(** Monotonic microseconds since an arbitrary origin (CLOCK_MONOTONIC).
    Never steps backwards; allocation-free.  Use for all duration
    measurements. *)

val monotonic_s : unit -> float
(** {!monotonic_us} in seconds. *)

val now_s : unit -> float
(** Wall-clock seconds (Unix epoch).  For timestamps that must correlate
    with the outside world, not for durations. *)

val now_us : unit -> float
(** Wall-clock microseconds (Unix epoch). *)

val epoch_at_start : float
(** Wall-clock instant captured at module initialisation — the epoch
    equivalent of the monotonic origin used by {!since_start_us}. *)

val since_start_us : unit -> float
(** Monotonic microseconds since this module was initialised (process
    start); the trace timestamp base. *)

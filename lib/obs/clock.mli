(** Wall-clock time source for telemetry and elapsed-time reporting. *)

val now_s : unit -> float
(** Wall-clock seconds (Unix epoch). *)

val now_us : unit -> float
(** Wall-clock microseconds (Unix epoch). *)

val since_start_us : unit -> float
(** Microseconds since this module was initialised (process start);
    used as the trace timestamp base. *)

(* Prometheus / OpenMetrics text exposition of the metrics registry.

   Counters become [<name>_total], gauges plain samples, histograms the
   standard cumulative-bucket family ([_bucket{le="..."}], [_sum],
   [_count]).  Bucket boundaries come straight from [Hist]'s log-bucket
   upper bounds, emitting only the non-empty buckets plus the mandatory
   [+Inf] — legal exposition (le values strictly increase) and compact
   even though the histogram internally holds thousands of buckets.

   This is the payload a future synthesis-server [/metrics] endpoint
   serves; today [losac stats --openmetrics] prints it for ad-hoc
   scraping. *)

let prefix = "losac_"

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if s = "" then prefix ^ "unnamed"
  else
    match s.[0] with
    | '0' .. '9' -> prefix ^ "_" ^ s
    | _ -> prefix ^ s

let num v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let add_family b ~name ~kind ~emit =
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind);
  emit b

let counter_family b name v =
  let m = sanitize name in
  add_family b ~name:m ~kind:"counter" ~emit:(fun b ->
    Buffer.add_string b (Printf.sprintf "%s_total %s\n" m (num v)))

let gauge_family b name v =
  let m = sanitize name in
  add_family b ~name:m ~kind:"gauge" ~emit:(fun b ->
    Buffer.add_string b (Printf.sprintf "%s %s\n" m (num v)))

let hist_family b name (h : Hist.t) =
  let m = sanitize name in
  add_family b ~name:m ~kind:"histogram" ~emit:(fun b ->
    let cum =
      Hist.fold_buckets h ~init:0 ~f:(fun cum ~upper ~count ->
        let cum = cum + count in
        if upper < infinity then
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m (num upper) cum);
        cum)
    in
    ignore cum;
    Buffer.add_string b
      (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m (Hist.count h));
    Buffer.add_string b (Printf.sprintf "%s_sum %s\n" m (num (Hist.sum h)));
    Buffer.add_string b (Printf.sprintf "%s_count %d\n" m (Hist.count h)))

let to_string () =
  let b = Buffer.create 4096 in
  List.iter
    (fun item ->
      match item with
      | Metrics.Counter (name, v) -> counter_family b name v
      | Metrics.Gauge (name, v) -> gauge_family b name v
      | Metrics.Hist (name, _, _) ->
        (match Metrics.merged_hist name with
         | Some h -> hist_family b name h
         | None -> ()))
    (Metrics.snapshot ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let write path =
  Out_channel.with_open_text path (fun oc -> output_string oc (to_string ()))

(* Hierarchical profiler built on Trace spans.

   Trace feeds every closed span to [record] with its full call path
   (root-first, ';'-separated — the folded-stack convention), its
   duration, and its *self* time (duration minus the time spent in
   directly nested spans).  Aggregation is per-domain: each domain
   accumulates into its own DLS table keyed by path, lock-free on the
   record path, and report time merges the tables — the same shard/merge
   model as Metrics histograms.

   Two views come out:

   - [sites]: per-span-name roll-up (calls, cumulative, self), the
     hot-spot table.  Cumulative time for a name that nests inside
     itself counts each level, as in every folded-stack profiler.
   - [folded]: per-path self time in flamegraph.pl's folded format
     ("a;b;c <self microseconds>"), written by [write_folded]. *)

type node = {
  nd_path : string;
  nd_name : string;
  mutable nd_calls : int;
  nd_times : floatarray; (* 0 = cumulative us, 1 = self us *)
}

let tables : (string, node) Hashtbl.t list ref = ref []
let reg_lock = Mutex.create ()

let locked_reg f =
  Mutex.lock reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_lock) f

let table_key : (string, node) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
    let tbl = Hashtbl.create 32 in
    locked_reg (fun () -> tables := !tables @ [ tbl ]);
    tbl)

let reset () = locked_reg (fun () -> List.iter Hashtbl.reset !tables)

let record ~path ~name ~dur_us ~self_us =
  let tbl = Domain.DLS.get table_key in
  let nd =
    match Hashtbl.find_opt tbl path with
    | Some nd -> nd
    | None ->
      let nd =
        { nd_path = path; nd_name = name; nd_calls = 0;
          nd_times = Float.Array.make 2 0.0 }
      in
      Hashtbl.replace tbl path nd;
      nd
  in
  nd.nd_calls <- nd.nd_calls + 1;
  Float.Array.set nd.nd_times 0 (Float.Array.get nd.nd_times 0 +. dur_us);
  Float.Array.set nd.nd_times 1 (Float.Array.get nd.nd_times 1 +. self_us)

(* merged per-path nodes: path -> (name, calls, cum_us, self_us) *)
let merged () =
  locked_reg @@ fun () ->
  let acc : (string, string * int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun path nd ->
          let _, calls, cum, self =
            match Hashtbl.find_opt acc path with
            | Some e -> e
            | None ->
              let e = (nd.nd_name, ref 0, ref 0.0, ref 0.0) in
              Hashtbl.replace acc path e;
              e
          in
          calls := !calls + nd.nd_calls;
          cum := !cum +. Float.Array.get nd.nd_times 0;
          self := !self +. Float.Array.get nd.nd_times 1)
        tbl)
    !tables;
  Hashtbl.fold
    (fun path (name, calls, cum, self) l ->
      (path, name, !calls, !cum, !self) :: l)
    acc []

type site = {
  name : string;
  calls : int;
  cum_us : float;
  self_us : float;
}

let sites () =
  let by_name : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (_path, name, calls, cum, self) ->
      let c, cu, se =
        match Hashtbl.find_opt by_name name with
        | Some e -> e
        | None ->
          let e = (ref 0, ref 0.0, ref 0.0) in
          Hashtbl.replace by_name name e;
          e
      in
      c := !c + calls;
      cu := !cu +. cum;
      se := !se +. self)
    (merged ());
  let l =
    Hashtbl.fold
      (fun name (c, cu, se) acc ->
        { name; calls = !c; cum_us = !cu; self_us = !se } :: acc)
      by_name []
  in
  List.sort (fun a b -> compare b.self_us a.self_us) l

let folded () =
  let l =
    List.map (fun (path, _name, _calls, _cum, self) -> (path, self)) (merged ())
  in
  List.sort (fun (a, _) (b, _) -> compare a b) l

let folded_string () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (path, self_us) ->
      (* flamegraph.pl wants an integer sample count; one sample = 1 µs *)
      Buffer.add_string b
        (Printf.sprintf "%s %.0f\n" path (Float.max 0.0 self_us)))
    (folded ());
  Buffer.contents b

let write_folded path =
  Out_channel.with_open_text path (fun oc ->
    output_string oc (folded_string ()))

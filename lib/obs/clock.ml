(* Time sources for telemetry.

   Two clocks with distinct jobs:

   - [monotonic_us] (CLOCK_MONOTONIC via a C stub) measures *durations*:
     span lengths, histogram observations, elapsed-time reporting.  It
     cannot step backwards under NTP adjustment the way the wall clock
     can, and the native entry point returns an unboxed float so a
     timing read allocates nothing.

   - [now_s]/[now_us] (Unix.gettimeofday) give *epoch* timestamps for
     anything that must correlate with the outside world (log lines,
     Chrome-trace epoch annotation).

   Trace timestamps are monotonic offsets from process start so they
   stay small, strictly ordered and stable within a run. *)

external monotonic_us : unit -> (float[@unboxed])
  = "losac_clock_monotonic_us_byte" "losac_clock_monotonic_us"
[@@noalloc]

let monotonic_s () = monotonic_us () *. 1e-6

(* wall clock, for epoch timestamps only *)
let now_s () = Unix.gettimeofday ()

let now_us () = now_s () *. 1e6

(* epoch instant matching the monotonic origin below, for exporters that
   want to place the trace on the wall clock *)
let epoch_at_start = now_s ()

let start_mono = monotonic_us ()

let since_start_us () = monotonic_us () -. start_mono

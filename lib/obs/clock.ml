(* Wall-clock timing for telemetry.  [Sys.time] reports CPU seconds of the
   whole process, which both under-reports waiting and misreports badly
   under any future parallelism; everything here is wall time from
   [Unix.gettimeofday].  Trace timestamps are offsets from process start so
   they stay small and stable within a run. *)

let now_s () = Unix.gettimeofday ()

let start = now_s ()

let now_us () = now_s () *. 1e6

let since_start_us () = (now_s () -. start) *. 1e6

(* Log-bucketed histograms (HDR-style) with ~1% relative error.

   A histogram is a fixed array of integer bucket counters plus exact
   count/sum/min/max.  Bucket [i] covers the value range
   [gamma^i, gamma^(i+1)) with gamma = 1.02, so a quantile answered from
   the geometric bucket midpoint is within sqrt(gamma) - 1 < 1% of the
   exact order statistic.  Recording is O(1) — one log, one array
   increment — and allocation-free; merging is element-wise addition, so
   it is associative and commutative over the bucket counts and each
   domain can record into a private shard that snapshots merge later
   (see Metrics).

   The bucketed range spans gamma^±2100 ~ 1.2e±18, wide enough for
   counts, microseconds, farads and ohms alike; values at or below zero
   and positive values under the smallest boundary land in an underflow
   bucket answered by the exact minimum, values above the largest
   boundary in an overflow bucket answered by the exact maximum. *)

type t = {
  counts : int array;  (* 0 = underflow, 1..n_log = log buckets, last = overflow *)
  scalars : floatarray;  (* 0 = sum, 1 = min, 2 = max *)
  mutable n : int;
}

let gamma = 1.02

let log_gamma = Float.log gamma

let inv_log_gamma = 1.0 /. log_gamma

(* quantile estimates use the geometric bucket midpoint *)
let rel_error = Float.sqrt gamma -. 1.0

let n_log = 4200

let offset = 2100

let n_buckets = n_log + 2

let create () =
  let scalars = Float.Array.create 3 in
  Float.Array.set scalars 0 0.0;
  Float.Array.set scalars 1 infinity;
  Float.Array.set scalars 2 neg_infinity;
  { counts = Array.make n_buckets 0; scalars; n = 0 }

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  Float.Array.set t.scalars 0 0.0;
  Float.Array.set t.scalars 1 infinity;
  Float.Array.set t.scalars 2 neg_infinity;
  t.n <- 0

(* slot for a value: log-bucket index shifted by one for the underflow
   slot, clamped into the over/underflow slots at the range edges *)
let slot_of_value v =
  if v > 0.0 then begin
    let i =
      int_of_float (Float.floor (Float.log v *. inv_log_gamma)) + offset
    in
    if i < 0 then 0 else if i >= n_log then n_log + 1 else i + 1
  end
  else 0

let record t v =
  let counts = t.counts in
  let s = slot_of_value v in
  Array.unsafe_set counts s (Array.unsafe_get counts s + 1);
  t.n <- t.n + 1;
  let sc = t.scalars in
  Float.Array.unsafe_set sc 0 (Float.Array.unsafe_get sc 0 +. v);
  if v < Float.Array.unsafe_get sc 1 then Float.Array.unsafe_set sc 1 v;
  if v > Float.Array.unsafe_get sc 2 then Float.Array.unsafe_set sc 2 v

let count t = t.n

let sum t = Float.Array.get t.scalars 0

let min_value t = Float.Array.get t.scalars 1

let max_value t = Float.Array.get t.scalars 2

let mean t = if t.n = 0 then 0.0 else sum t /. float_of_int t.n

let merge_into ~src ~dst =
  for i = 0 to n_buckets - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.n <- dst.n + src.n;
  Float.Array.set dst.scalars 0 (sum dst +. sum src);
  if min_value src < min_value dst then
    Float.Array.set dst.scalars 1 (min_value src);
  if max_value src > max_value dst then
    Float.Array.set dst.scalars 2 (max_value src)

let copy t =
  let c = create () in
  merge_into ~src:t ~dst:c;
  c

(* inclusive upper bound of a slot's value range *)
let slot_upper s =
  if s = 0 then Float.exp (float_of_int (-offset) *. log_gamma)
  else if s = n_log + 1 then infinity
  else Float.exp (float_of_int (s - offset) *. log_gamma)

(* geometric midpoint used as the quantile estimate for a log slot *)
let slot_estimate t s =
  let est =
    if s = 0 then min_value t
    else if s = n_log + 1 then max_value t
    else Float.exp ((float_of_int (s - 1 - offset) +. 0.5) *. log_gamma)
  in
  (* the exact extrema can only tighten the bucket's answer *)
  Float.min (max_value t) (Float.max (min_value t) est)

let quantile t q =
  if t.n = 0 then Float.nan
  else if q >= 1.0 then max_value t
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int t.n)) in
      if r < 1 then 1 else if r > t.n then t.n else r
    in
    let s = ref 0 and cum = ref t.counts.(0) in
    while !cum < rank do
      incr s;
      cum := !cum + t.counts.(!s)
    done;
    slot_estimate t !s
  end

let fold_buckets t ~init ~f =
  let acc = ref init in
  for s = 0 to n_buckets - 1 do
    if t.counts.(s) > 0 then acc := f !acc ~upper:(slot_upper s) ~count:t.counts.(s)
  done;
  !acc

let approx_equal a b =
  a.n = b.n && a.counts = b.counts
  && min_value a = min_value b
  && max_value a = max_value b
  &&
  let sa = sum a and sb = sum b in
  Float.abs (sa -. sb) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs sa) (Float.abs sb))

(** Hierarchical profiler fed by {!Trace} spans.

    Every closed span contributes (call path, duration, self time) to a
    per-domain aggregation table, lock-free on the record path; report
    time merges the per-domain tables.  Self time is the span's duration
    minus the time spent in directly nested spans, so summing self over
    all sites reproduces total instrumented wall time without double
    counting. *)

val record :
  path:string -> name:string -> dur_us:float -> self_us:float -> unit
(** Called by {!Trace.end_span}; [path] is the root-first ';'-separated
    span-name stack. *)

type site = {
  name : string;
  calls : int;
  cum_us : float;  (** total time with this span open (children included) *)
  self_us : float; (** time in this span excluding nested spans *)
}

val sites : unit -> site list
(** Per-span-name roll-up across all call paths and domains, sorted by
    self time descending — the hot-spot table. *)

val folded : unit -> (string * float) list
(** Per-call-path self time, sorted by path: folded-stack data. *)

val folded_string : unit -> string
(** flamegraph.pl-compatible folded stacks: one ["a;b;c N"] line per
    path, where N is the self time in integer microseconds. *)

val write_folded : string -> unit
(** Write {!folded_string} to a file. *)

val reset : unit -> unit

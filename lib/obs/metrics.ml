(* Named counters, gauges and histograms.

   Writers are no-ops while telemetry is disabled.  Readers always work,
   returning zeros/empties for unknown names, so report code needs no
   special-casing.  Histograms keep the raw observation sequence (bounded)
   in addition to the moments: for series like the per-layout-call
   parasitic delta the sequence *is* the convergence trajectory. *)

type hstats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
}

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_values : float list; (* reverse observation order, bounded *)
}

let max_hist_values = 4096

let counters : (string, float ref) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 32
let hists : (string, hist) Hashtbl.t = Hashtbl.create 32

(* instrumented code runs on pool worker domains (lib/par); one mutex
   guards all three tables and the records they hold.  It is only taken
   when telemetry is enabled. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () =
  locked @@ fun () ->
  Hashtbl.reset counters;
  Hashtbl.reset gauges;
  Hashtbl.reset hists

let find_ref tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.replace tbl name r;
    r

let add name by =
  if !Config.flag then
    locked @@ fun () ->
    let r = find_ref counters name in
    r := !r +. by

let incr ?(by = 1.0) name = add name by

let set name v =
  if !Config.flag then
    locked @@ fun () ->
    let r = find_ref gauges name in
    r := v

let observe name v =
  if !Config.flag then
    locked @@ fun () ->
    let h =
      match Hashtbl.find_opt hists name with
      | Some h -> h
      | None ->
        let h =
          { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
            h_values = [] }
        in
        Hashtbl.replace hists name h;
        h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    if h.h_count <= max_hist_values then h.h_values <- v :: h.h_values

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt counters name with Some r -> !r | None -> 0.0

let gauge name =
  locked @@ fun () ->
  match Hashtbl.find_opt gauges name with Some r -> Some !r | None -> None

let stats_of h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    mean = (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count);
  }

let hist_stats name =
  locked @@ fun () ->
  match Hashtbl.find_opt hists name with
  | Some h -> Some (stats_of h)
  | None -> None

let values name =
  locked @@ fun () ->
  match Hashtbl.find_opt hists name with
  | Some h -> List.rev h.h_values
  | None -> []

type item =
  | Counter of string * float
  | Gauge of string * float
  | Hist of string * hstats * float list

let snapshot () =
  locked @@ fun () ->
  let items = ref [] in
  Hashtbl.iter (fun name r -> items := Counter (name, !r) :: !items) counters;
  Hashtbl.iter (fun name r -> items := Gauge (name, !r) :: !items) gauges;
  Hashtbl.iter
    (fun name h -> items := Hist (name, stats_of h, List.rev h.h_values) :: !items)
    hists;
  let key = function
    | Counter (n, _) | Gauge (n, _) | Hist (n, _, _) -> n
  in
  List.sort (fun a b -> compare (key a) (key b)) !items

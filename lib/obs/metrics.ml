(* Named counters, gauges and histograms.

   Writers are no-ops while telemetry is disabled.  Readers always work,
   returning zeros/empties for unknown names, so report code needs no
   special-casing.

   Counters and gauges are shared tables behind one mutex: they are
   updated rarely (once per solve, per sizing pass, ...) so contention is
   irrelevant.  Histograms are the hot writers — per-task queue waits,
   per-solve durations — and go through lock-free per-domain shards: each
   domain records into its own [Hist.t] (O(1), allocation-free, no mutex)
   and readers merge the shards on demand.  Merging reads a shard another
   domain may be recording into; bucket counts are plain ints so a reader
   can observe a snapshot that is a few observations stale or momentarily
   inconsistent between [n] and [sum] — acceptable for telemetry, and the
   shard itself is never corrupted.

   Each shard also keeps the raw observation sequence (bounded): for
   series like the per-layout-call parasitic delta the sequence *is* the
   convergence trajectory.  Order is preserved per recording domain and
   shards are concatenated in domain-registration order. *)

type hstats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type shard = {
  sh_hist : Hist.t;
  mutable sh_values : float list; (* reverse observation order, bounded *)
  mutable sh_nvalues : int;
}

let max_hist_values = 4096

let counters : (string, float ref) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 32

(* counters/gauges are updated from pool worker domains too; one mutex
   guards both tables, taken only when telemetry is enabled *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* every domain's shard table, in registration order; the list is only
   touched under [reg_lock] (first observation on a new domain, reset,
   snapshot) — never on the record path of an already-known domain *)
let shard_tables : (string, shard) Hashtbl.t list ref = ref []
let reg_lock = Mutex.create ()

let locked_reg f =
  Mutex.lock reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_lock) f

let shard_key : (string, shard) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
    let tbl = Hashtbl.create 16 in
    locked_reg (fun () -> shard_tables := !shard_tables @ [ tbl ]);
    tbl)

let reset () =
  locked (fun () ->
    Hashtbl.reset counters;
    Hashtbl.reset gauges);
  (* shard tables stay registered (their owning domain holds them in
     DLS); clearing them empties every histogram *)
  locked_reg (fun () -> List.iter Hashtbl.reset !shard_tables)

let find_ref tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.replace tbl name r;
    r

let add name by =
  if (Config.enabled ()) then
    locked @@ fun () ->
    let r = find_ref counters name in
    r := !r +. by

let incr ?(by = 1.0) name = add name by

let set name v =
  if (Config.enabled ()) then
    locked @@ fun () ->
    let r = find_ref gauges name in
    r := v

let observe name v =
  if (Config.enabled ()) then begin
    let tbl = Domain.DLS.get shard_key in
    let sh =
      match Hashtbl.find_opt tbl name with
      | Some sh -> sh
      | None ->
        let sh = { sh_hist = Hist.create (); sh_values = []; sh_nvalues = 0 } in
        Hashtbl.replace tbl name sh;
        sh
    in
    Hist.record sh.sh_hist v;
    if sh.sh_nvalues < max_hist_values then begin
      sh.sh_values <- v :: sh.sh_values;
      sh.sh_nvalues <- sh.sh_nvalues + 1
    end
  end

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt counters name with Some r -> !r | None -> 0.0

let gauge name =
  locked @@ fun () ->
  match Hashtbl.find_opt gauges name with Some r -> Some !r | None -> None

(* --- merged histogram readers ----------------------------------------- *)

let merged_hist name =
  locked_reg @@ fun () ->
  List.fold_left
    (fun acc tbl ->
      match Hashtbl.find_opt tbl name with
      | None -> acc
      | Some sh ->
        let dst = match acc with Some d -> d | None -> Hist.create () in
        Hist.merge_into ~src:sh.sh_hist ~dst;
        Some dst)
    None !shard_tables

let merged_values name =
  locked_reg @@ fun () ->
  List.concat_map
    (fun tbl ->
      match Hashtbl.find_opt tbl name with
      | None -> []
      | Some sh -> List.rev sh.sh_values)
    !shard_tables

let values = merged_values

let stats_of h =
  {
    count = Hist.count h;
    sum = Hist.sum h;
    min = Hist.min_value h;
    max = Hist.max_value h;
    mean = Hist.mean h;
    p50 = Hist.quantile h 0.5;
    p90 = Hist.quantile h 0.9;
    p99 = Hist.quantile h 0.99;
  }

let hist_stats name = Option.map stats_of (merged_hist name)

let quantile name q = Option.map (fun h -> Hist.quantile h q) (merged_hist name)

let hist_names () =
  locked_reg @@ fun () ->
  let seen = Hashtbl.create 16 in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name _ ->
          if not (Hashtbl.mem seen name) then Hashtbl.replace seen name ())
        tbl)
    !shard_tables;
  List.sort compare (Hashtbl.fold (fun name () acc -> name :: acc) seen [])

type item =
  | Counter of string * float
  | Gauge of string * float
  | Hist of string * hstats * float list

let snapshot () =
  let items = ref [] in
  locked (fun () ->
    Hashtbl.iter (fun name r -> items := Counter (name, !r) :: !items) counters;
    Hashtbl.iter (fun name r -> items := Gauge (name, !r) :: !items) gauges);
  List.iter
    (fun name ->
      match merged_hist name with
      | Some h -> items := Hist (name, stats_of h, merged_values name) :: !items
      | None -> ())
    (hist_names ());
  let key = function
    | Counter (n, _) | Gauge (n, _) | Hist (n, _, _) -> n
  in
  List.sort (fun a b -> compare (key a) (key b)) !items

(** Exporters for collected telemetry. *)

val metrics_table : unit -> string
(** Human-readable table of every counter, gauge and histogram.  Short
    histogram series (≤ 8 observations) print their values inline, so
    convergence trajectories are visible directly in the table. *)

val pp_metrics : Format.formatter -> unit -> unit

val metrics_json : unit -> Json.t

val trace_json : unit -> Json.t
(** Chrome [trace_event] document: [{"traceEvents": [...]}] with one
    complete ("ph":"X") event per span, microsecond timestamps, and the
    metrics snapshot under ["otherData"].  Loads in chrome://tracing and
    Perfetto. *)

val trace_json_string : unit -> string

val write_trace : string -> unit
(** Write {!trace_json_string} to a file. *)

val span_summary : unit -> (string * int * float) list
(** Spans rolled up by name: (name, calls, total µs), sorted by total
    time descending. *)

val spans_table : unit -> string

val prof_table : unit -> string
(** Profiler hot-spot table: per-site calls, self and cumulative
    milliseconds, and share of total self time, sorted by self time
    descending (see {!Prof}). *)

(* The global telemetry switch.  Instrumented call sites read [flag] (or
   call [enabled]) exactly once before doing any telemetry work, so the
   disabled cost is a single ref read and branch. *)

let flag = ref false

let enabled () = !flag

let set_enabled b = flag := b

let with_enabled b f =
  let prev = !flag in
  flag := b;
  Fun.protect ~finally:(fun () -> flag := prev) f

(* The telemetry switch.

   Resolution order: context-local binding (a {!Fluid} slot, bound by
   [with_enabled] / [Exec.Ctx.scope]) wins over the process-global
   [global] ref (set by [set_enabled] at CLI startup); the default is
   off.  Instrumented call sites call [enabled] exactly once before
   doing any telemetry work, so the disabled cost is one DLS read, a
   match and at most one ref read. *)

let global = ref false

let local : bool Fluid.t = Fluid.make ()

let enabled () =
  match Fluid.get local with Some b -> b | None -> !global

let set_enabled b = global := b

let with_enabled b f = Fluid.with_value local b f

(** Diagnostics for the synthesis stack, routed through [logs].

    Nothing prints unless the application installs a reporter (see
    [losac --verbose], which installs one and sets the level). *)

val src : Logs.src

val warn : 'a Logs.log
val info : 'a Logs.log
val debug : 'a Logs.log

(** Prometheus / OpenMetrics text exposition of all collected metrics.

    Counters are exposed as [<name>_total], gauges as plain samples,
    histograms as the cumulative [_bucket{le="..."}]/[_sum]/[_count]
    family over {!Hist}'s log-bucket boundaries (non-empty buckets only,
    plus [+Inf]).  Metric names are prefixed with [losac_] and
    non-alphanumeric characters are mapped to ['_']. *)

val sanitize : string -> string
(** [sanitize "sim.dcop.solves"] is ["losac_sim_dcop_solves"]. *)

val to_string : unit -> string
(** The full exposition, terminated by [# EOF]. *)

val write : string -> unit
(** Write {!to_string} to a file. *)

(* Diagnostics routed through the [logs] library under a single source, so
   applications control verbosity with [Logs.Src.set_level] or a global
   level.  Instrumented libraries report recoverable anomalies here (e.g.
   a diverged Newton attempt that telemetry then watches retry). *)

let src = Logs.Src.create "losac" ~doc:"losac synthesis/simulation diagnostics"

let warn m = Logs.msg ~src Logs.Warning m
let info m = Logs.msg ~src Logs.Info m
let debug m = Logs.msg ~src Logs.Debug m

(** Domain-local dynamic bindings ("fluid" variables).

    A fluid is a typed slot whose current binding is domain-local
    ([Domain.DLS]): two domains can hold conflicting values
    concurrently without observing each other.  [get] returns [None]
    when the calling domain has no binding; callers treat that as
    "fall back to the process-global default".  This is the mechanism
    behind context-local execution flags ({!Config},
    [Cache.Config], [Sim.Stamps]): resolution order is
    {e override > ctx binding > global > default}.

    Fluids register in a process-wide registry so {!capture} can
    snapshot every current binding of the calling domain generically;
    [Par.Pool] captures one snapshot per batch and installs it around
    each slice body, so dynamic scope follows work onto worker domains
    (including steals and caller-helps).

    DLS is per-{e domain}: systhreads within one domain share
    bindings.  Isolated scopes must run on distinct domains — the job
    server's executors are domains for exactly this reason. *)

type 'a t

val make : unit -> 'a t
(** Create a fluid with no binding on any domain, and register it for
    {!capture}.  Intended for module-initialisation time. *)

val get : 'a t -> 'a option
(** The calling domain's current binding, or [None] if unbound. *)

val with_value : 'a t -> 'a -> (unit -> 'b) -> 'b
(** [with_value t v f] runs [f] with [t] bound to [v] on the calling
    domain, restoring the previous binding on exit (also on raise).
    Nothing global changes: other domains never observe the binding
    unless it is propagated via {!capture}/{!with_snapshot}. *)

val with_opt : 'a t -> 'a option -> (unit -> 'b) -> 'b
(** [with_opt t (Some v) f] = [with_value t v f]; [with_opt t None f]
    = [f ()] (leaves any outer binding visible). *)

(** {1 Snapshots — propagating bindings across domains} *)

type snapshot

val empty : snapshot
(** A snapshot that installs nothing. *)

val capture : unit -> snapshot
(** Capture the calling domain's current binding of every registered
    fluid.  Cheap: one closure per fluid. *)

val with_snapshot : snapshot -> (unit -> 'b) -> 'b
(** [with_snapshot s f] installs every binding captured in [s] on the
    calling domain, runs [f], then restores the domain's previous
    bindings (in reverse order, also on raise). *)

(* Hierarchical spans with wall-clock timing.

   A span is opened, optionally annotated with arguments while open, and
   recorded on close with its start timestamp, duration and nesting depth.
   Spans nest through a stack, so [with_span] calls compose naturally
   across library boundaries (a sizing span contains simulator spans).

   Everything is a no-op while [Config.flag] is false; the only cost at an
   instrumented call site is the flag read.

   Domain safety: spans may be opened and closed from pool worker domains
   (lib/par runs instrumented simulator code on them).  The open-span
   stack is domain-local state — nesting is a property of one domain's
   call tree — while the completed-span store is shared and guarded by a
   mutex taken only on span close, never while user code runs. *)

type arg =
  | Str of string
  | Float of float
  | Int of int
  | Bool of bool

type span = {
  name : string;
  cat : string;
  ts_us : float;   (* start, microseconds since process start *)
  dur_us : float;
  depth : int;     (* 0 = root *)
  args : (string * arg) list;
}

type open_span = {
  o_name : string;
  o_cat : string;
  o_ts : float;
  mutable o_args : (string * arg) list;
}

(* completed spans in reverse completion order; bounded so a runaway loop
   cannot exhaust memory.  Shared across domains, guarded by [lock]. *)
let completed : span list ref = ref []
let count = ref 0
let dropped = ref 0
let max_spans = 200_000
let lock = Mutex.create ()

(* the open-span stack is per-domain: nesting depth describes one
   domain's call tree *)
let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let reset () =
  Mutex.lock lock;
  completed := [];
  count := 0;
  dropped := 0;
  Mutex.unlock lock;
  stack () := []

let begin_span ?(cat = "losac") name =
  if !Config.flag then begin
    let stack = stack () in
    stack :=
      { o_name = name; o_cat = cat; o_ts = Clock.since_start_us (); o_args = [] }
      :: !stack
  end

let add_arg key value =
  if !Config.flag then
    match !(stack ()) with
    | s :: _ -> s.o_args <- (key, value) :: s.o_args
    | [] -> ()

let end_span () =
  if !Config.flag then begin
    let stack = stack () in
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      let span =
        {
          name = s.o_name;
          cat = s.o_cat;
          ts_us = s.o_ts;
          dur_us = Clock.since_start_us () -. s.o_ts;
          depth = List.length rest;
          args = List.rev s.o_args;
        }
      in
      Mutex.lock lock;
      if !count >= max_spans then incr dropped
      else begin
        incr count;
        completed := span :: !completed
      end;
      Mutex.unlock lock
  end

let with_span ?cat ?(args = []) name f =
  if not !Config.flag then f ()
  else begin
    begin_span ?cat name;
    (match !(stack ()) with s :: _ -> s.o_args <- List.rev args | [] -> ());
    match f () with
    | v ->
      end_span ();
      v
    | exception e ->
      add_arg "error" (Bool true);
      end_span ();
      raise e
  end

let spans () =
  Mutex.lock lock;
  let l = !completed in
  Mutex.unlock lock;
  List.rev l

let span_count () = !count

let dropped_count () = !dropped

let open_depth () = List.length !(stack ())

let arg_to_json = function
  | Str s -> Json.Str s
  | Float v -> Json.Num v
  | Int i -> Json.Num (float_of_int i)
  | Bool b -> Json.Bool b

let pp_arg fmt = function
  | Str s -> Format.pp_print_string fmt s
  | Float v -> Format.fprintf fmt "%g" v
  | Int i -> Format.fprintf fmt "%d" i
  | Bool b -> Format.fprintf fmt "%b" b

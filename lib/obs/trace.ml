(* Hierarchical spans with monotonic timing.

   A span is opened, optionally annotated with arguments while open, and
   recorded on close with its start timestamp, duration and nesting depth.
   Spans nest through a stack, so [with_span] calls compose naturally
   across library boundaries (a sizing span contains simulator spans).

   Everything is a no-op while [Config.enabled ()] is false; the only cost at an
   instrumented call site is the flag read.

   Domain safety: spans may be opened and closed from pool worker domains
   (lib/par runs instrumented simulator code on them).  The open-span
   stack is domain-local state — nesting is a property of one domain's
   call tree — while the completed-span store is shared and guarded by a
   mutex taken only on span close, never while user code runs.

   The completed-span store is a ring buffer of [cap ()] spans
   (LOSAC_TRACE_CAP, default 65536): when full, the *oldest* span is
   overwritten so a long daemon-style run keeps the recent history and
   bounded memory.  Overwrites are counted in [dropped_count] and the
   [obs.trace.dropped] metric.

   Every closed span also feeds [Prof] with its call path and self time
   (duration minus directly nested spans), which is what the profiler's
   hot-spot table and folded-stack export aggregate. *)

type arg =
  | Str of string
  | Float of float
  | Int of int
  | Bool of bool

type span = {
  name : string;
  cat : string;
  ts_us : float;   (* start, microseconds since process start (monotonic) *)
  dur_us : float;
  depth : int;     (* 0 = root *)
  args : (string * arg) list;
}

type open_span = {
  o_name : string;
  o_cat : string;
  o_ts : float;
  o_path : string; (* root-first ';'-joined span names, for Prof *)
  mutable o_child_us : float; (* time spent in directly nested spans *)
  mutable o_args : (string * arg) list;
}

(* --- completed-span ring buffer --------------------------------------- *)

let default_cap = 65536

let cap_from_env () =
  match Sys.getenv_opt "LOSAC_TRACE_CAP" with
  | None -> default_cap
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> default_cap)

let cap = ref (cap_from_env ())

let dummy_span =
  { name = ""; cat = ""; ts_us = 0.0; dur_us = 0.0; depth = 0; args = [] }

(* ring of the most recent [!cap] spans: [!head] is the oldest entry,
   [!count] how many are live.  Allocated on first use so a telemetry-off
   process never pays for it. *)
let ring : span array ref = ref [||]
let head = ref 0
let count = ref 0
let dropped = ref 0
let lock = Mutex.create ()

(* call with [lock] held *)
let push_span span =
  if Array.length !ring <> !cap then begin
    ring := Array.make !cap dummy_span;
    head := 0;
    count := 0
  end;
  let r = !ring in
  let n = Array.length r in
  if !count < n then begin
    r.((!head + !count) mod n) <- span;
    incr count
  end
  else begin
    r.(!head) <- span;
    head := (!head + 1) mod n;
    incr dropped
  end

let set_cap n =
  Mutex.lock lock;
  cap := max 1 n;
  ring := [||];
  head := 0;
  count := 0;
  dropped := 0;
  Mutex.unlock lock

let capacity () = !cap

(* the open-span stack is per-domain: nesting depth describes one
   domain's call tree *)
let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let reset () =
  Mutex.lock lock;
  ring := [||];
  head := 0;
  count := 0;
  dropped := 0;
  Mutex.unlock lock;
  stack () := []

let begin_span ?(cat = "losac") name =
  if (Config.enabled ()) then begin
    let stack = stack () in
    let path =
      match !stack with
      | [] -> name
      | parent :: _ -> parent.o_path ^ ";" ^ name
    in
    stack :=
      { o_name = name; o_cat = cat; o_ts = Clock.since_start_us ();
        o_path = path; o_child_us = 0.0; o_args = [] }
      :: !stack
  end

let add_arg key value =
  if (Config.enabled ()) then
    match !(stack ()) with
    | s :: _ -> s.o_args <- (key, value) :: s.o_args
    | [] -> ()

let end_span () =
  if (Config.enabled ()) then begin
    let stack = stack () in
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      let dur_us = Clock.since_start_us () -. s.o_ts in
      (* the parent's self time excludes this whole span *)
      (match rest with
       | parent :: _ -> parent.o_child_us <- parent.o_child_us +. dur_us
       | [] -> ());
      Prof.record ~path:s.o_path ~name:s.o_name ~dur_us
        ~self_us:(dur_us -. s.o_child_us);
      let span =
        {
          name = s.o_name;
          cat = s.o_cat;
          ts_us = s.o_ts;
          dur_us;
          depth = List.length rest;
          args = List.rev s.o_args;
        }
      in
      Mutex.lock lock;
      let before = !dropped in
      push_span span;
      let overwrote = !dropped > before in
      Mutex.unlock lock;
      if overwrote then Metrics.incr "obs.trace.dropped"
  end

let with_span ?cat ?(args = []) name f =
  if not (Config.enabled ()) then f ()
  else begin
    begin_span ?cat name;
    (match !(stack ()) with s :: _ -> s.o_args <- List.rev args | [] -> ());
    match f () with
    | v ->
      end_span ();
      v
    | exception e ->
      add_arg "error" (Bool true);
      end_span ();
      raise e
  end

let spans () =
  Mutex.lock lock;
  let r = !ring and h = !head and n = !count in
  let l = List.init n (fun i -> r.((h + i) mod Array.length r)) in
  Mutex.unlock lock;
  l

let span_count () = !count

let dropped_count () = !dropped

let open_depth () = List.length !(stack ())

let arg_to_json = function
  | Str s -> Json.Str s
  | Float v -> Json.Num v
  | Int i -> Json.Num (float_of_int i)
  | Bool b -> Json.Bool b

let pp_arg fmt = function
  | Str s -> Format.pp_print_string fmt s
  | Float v -> Format.fprintf fmt "%g" v
  | Int i -> Format.fprintf fmt "%d" i
  | Bool b -> Format.fprintf fmt "%b" b

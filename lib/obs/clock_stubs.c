/* CLOCK_MONOTONIC for telemetry timing.

   Unix.gettimeofday can step backwards under NTP adjustment, which makes
   span durations and histogram observations occasionally negative; the
   monotonic clock cannot.  The native entry point returns an unboxed
   double (microseconds since an arbitrary origin) so the hot recording
   path allocates nothing. */

#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

double losac_clock_monotonic_us(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec * 1e6 + (double)ts.tv_nsec * 1e-3;
}

CAMLprim value losac_clock_monotonic_us_byte(value unit)
{
  return caml_copy_double(losac_clock_monotonic_us(unit));
}

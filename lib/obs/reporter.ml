(* Exporters for the collected telemetry:

   - a human-readable metrics table (text);
   - a JSON dump of all metrics;
   - a Chrome [trace_event] file (complete "X" events) that loads directly
     in chrome://tracing or https://ui.perfetto.dev. *)

let si v =
  (* compact engineering notation for table cells *)
  let a = Float.abs v in
  if v = 0.0 then "0"
  else if Float.is_integer v && a < 1e7 then Printf.sprintf "%.0f" v
  else if a >= 1e-2 && a < 1e7 then Printf.sprintf "%.4g" v
  else Printf.sprintf "%.3e" v

let values_preview vs =
  (* short series print, e.g. the 3-call parasitic convergence trajectory *)
  let n = List.length vs in
  if n = 0 || n > 8 then ""
  else
    Printf.sprintf "  [%s]" (String.concat "; " (List.map si vs))

let metrics_table () =
  let items = Metrics.snapshot () in
  if items = [] then "no metrics recorded (telemetry disabled?)\n"
  else begin
    let b = Buffer.create 1024 in
    let width =
      List.fold_left
        (fun acc item ->
          let n =
            match item with
            | Metrics.Counter (n, _) | Metrics.Gauge (n, _)
            | Metrics.Hist (n, _, _) -> n
          in
          max acc (String.length n))
        12 items
    in
    Buffer.add_string b
      (Printf.sprintf "%-*s %-9s %s\n" width "metric" "kind" "value");
    Buffer.add_string b (String.make (width + 40) '-');
    Buffer.add_char b '\n';
    List.iter
      (fun item ->
        match item with
        | Metrics.Counter (n, v) ->
          Buffer.add_string b (Printf.sprintf "%-*s %-9s %s\n" width n "counter" (si v))
        | Metrics.Gauge (n, v) ->
          Buffer.add_string b (Printf.sprintf "%-*s %-9s %s\n" width n "gauge" (si v))
        | Metrics.Hist (n, s, vs) ->
          Buffer.add_string b
            (Printf.sprintf
               "%-*s %-9s n=%d sum=%s min=%s mean=%s p50=%s p90=%s p99=%s \
                max=%s%s\n"
               width n "hist" s.Metrics.count (si s.Metrics.sum)
               (si s.Metrics.min) (si s.Metrics.mean) (si s.Metrics.p50)
               (si s.Metrics.p90) (si s.Metrics.p99) (si s.Metrics.max)
               (values_preview vs)))
      items;
    Buffer.contents b
  end

let pp_metrics fmt () = Format.pp_print_string fmt (metrics_table ())

let metrics_json () =
  let items = Metrics.snapshot () in
  let field = function
    | Metrics.Counter (n, v) -> (n, Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Num v) ])
    | Metrics.Gauge (n, v) -> (n, Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Num v) ])
    | Metrics.Hist (n, s, vs) ->
      ( n,
        Json.Obj
          [
            ("type", Json.Str "histogram");
            ("count", Json.Num (float_of_int s.Metrics.count));
            ("sum", Json.Num s.Metrics.sum);
            ("min", Json.Num s.Metrics.min);
            ("mean", Json.Num s.Metrics.mean);
            ("p50", Json.Num s.Metrics.p50);
            ("p90", Json.Num s.Metrics.p90);
            ("p99", Json.Num s.Metrics.p99);
            ("max", Json.Num s.Metrics.max);
            ("values", Json.Arr (List.map (fun v -> Json.Num v) vs));
          ] )
  in
  Json.Obj (List.map field items)

(* --- Chrome trace_event ---------------------------------------------- *)

let span_to_event (s : Trace.span) =
  Json.Obj
    [
      ("name", Json.Str s.Trace.name);
      ("cat", Json.Str s.Trace.cat);
      ("ph", Json.Str "X");
      ("ts", Json.Num s.Trace.ts_us);
      ("dur", Json.Num s.Trace.dur_us);
      ("pid", Json.Num 1.0);
      ("tid", Json.Num 1.0);
      ( "args",
        Json.Obj
          (List.map (fun (k, v) -> (k, Trace.arg_to_json v)) s.Trace.args) );
    ]

let trace_json () =
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map span_to_event (Trace.spans ())));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", metrics_json ());
    ]

let trace_json_string () = Json.to_string (trace_json ())

let write_trace path =
  Out_channel.with_open_text path (fun oc ->
    output_string oc (trace_json_string ()))

let span_summary () =
  (* roll spans up by name: call count and total/self-exclusive time *)
  let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.span) ->
      let cnt, tot =
        match Hashtbl.find_opt tbl s.Trace.name with
        | Some p -> p
        | None ->
          let p = (ref 0, ref 0.0) in
          Hashtbl.replace tbl s.Trace.name p;
          p
      in
      Stdlib.incr cnt;
      tot := !tot +. s.Trace.dur_us)
    (Trace.spans ());
  let rows = Hashtbl.fold (fun name (c, t) acc -> (name, !c, !t) :: acc) tbl [] in
  List.sort (fun (_, _, a) (_, _, b) -> compare b a) rows

let spans_table () =
  let rows = span_summary () in
  if rows = [] then "no spans recorded (telemetry disabled?)\n"
  else begin
    let b = Buffer.create 512 in
    let width =
      List.fold_left (fun acc (n, _, _) -> max acc (String.length n)) 10 rows
    in
    Buffer.add_string b
      (Printf.sprintf "%-*s %8s %14s\n" width "span" "calls" "total ms");
    List.iter
      (fun (name, calls, total_us) ->
        Buffer.add_string b
          (Printf.sprintf "%-*s %8d %14.3f\n" width name calls (total_us /. 1e3)))
      rows;
    Buffer.contents b
  end

(* --- profiler hot spots ----------------------------------------------- *)

let prof_table () =
  let sites = Prof.sites () in
  if sites = [] then "no profile recorded (telemetry disabled?)\n"
  else begin
    let total_self =
      List.fold_left (fun acc (s : Prof.site) -> acc +. s.Prof.self_us) 0.0 sites
    in
    let b = Buffer.create 512 in
    let width =
      List.fold_left
        (fun acc (s : Prof.site) -> max acc (String.length s.Prof.name))
        10 sites
    in
    Buffer.add_string b
      (Printf.sprintf "%-*s %8s %12s %12s %7s\n" width "site" "calls"
         "self ms" "cum ms" "self%");
    List.iter
      (fun (s : Prof.site) ->
        Buffer.add_string b
          (Printf.sprintf "%-*s %8d %12.3f %12.3f %6.1f%%\n" width s.Prof.name
             s.Prof.calls (s.Prof.self_us /. 1e3) (s.Prof.cum_us /. 1e3)
             (100.0 *. s.Prof.self_us /. Float.max 1e-9 total_self)))
      sites;
    Buffer.contents b
  end

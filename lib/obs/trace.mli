(** Hierarchical tracing: named spans with wall-clock timestamps, nesting
    depth and key/value arguments.

    All recording is a no-op unless {!Config} is enabled; the disabled
    cost at a call site is one ref read.  Spans are kept in memory
    (bounded) and exported by {!Reporter}. *)

type arg =
  | Str of string
  | Float of float
  | Int of int
  | Bool of bool

type span = {
  name : string;
  cat : string;
  ts_us : float;  (** start time, µs since process start *)
  dur_us : float;
  depth : int;    (** nesting depth at open time; 0 = root *)
  args : (string * arg) list;
}

val with_span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  The span is recorded when
    [f] returns or raises (with an [error] argument in the latter case).
    When telemetry is disabled this is exactly [f ()]. *)

val add_arg : string -> arg -> unit
(** Attach an argument to the innermost open span (no-op outside any
    span or when disabled).  Use for values only known at the end of the
    work, e.g. iteration counts or exit residuals. *)

val begin_span : ?cat:string -> string -> unit
val end_span : unit -> unit
(** Imperative variants for spans that cannot wrap a closure.  Calls must
    balance; [end_span] without a matching open span is ignored. *)

val spans : unit -> span list
(** Completed spans in completion order (children before their parent). *)

val span_count : unit -> int
val dropped_count : unit -> int
(** Spans discarded after the in-memory bound was hit. *)

val open_depth : unit -> int
val reset : unit -> unit

val arg_to_json : arg -> Json.t
val pp_arg : Format.formatter -> arg -> unit

(** Hierarchical tracing: named spans with monotonic timestamps, nesting
    depth and key/value arguments.

    All recording is a no-op unless {!Config} is enabled; the disabled
    cost at a call site is one ref read.  Completed spans live in a ring
    buffer of {!capacity} entries (LOSAC_TRACE_CAP, default 65536) that
    overwrites the oldest span when full, so long daemon-style runs keep
    bounded memory; overwrites are counted by {!dropped_count} and the
    [obs.trace.dropped] metric.  Every closed span also feeds {!Prof}
    with its call path and self time. *)

type arg =
  | Str of string
  | Float of float
  | Int of int
  | Bool of bool

type span = {
  name : string;
  cat : string;
  ts_us : float;  (** start time, µs since process start (monotonic) *)
  dur_us : float;
  depth : int;    (** nesting depth at open time; 0 = root *)
  args : (string * arg) list;
}

val with_span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  The span is recorded when
    [f] returns or raises (with an [error] argument in the latter case).
    When telemetry is disabled this is exactly [f ()]. *)

val add_arg : string -> arg -> unit
(** Attach an argument to the innermost open span (no-op outside any
    span or when disabled).  Use for values only known at the end of the
    work, e.g. iteration counts or exit residuals. *)

val begin_span : ?cat:string -> string -> unit
val end_span : unit -> unit
(** Imperative variants for spans that cannot wrap a closure.  Calls must
    balance; [end_span] without a matching open span is ignored. *)

val spans : unit -> span list
(** Retained spans in completion order (children before their parent).
    When the ring buffer has wrapped, the oldest spans are gone. *)

val span_count : unit -> int
(** Number of spans currently retained. *)

val dropped_count : unit -> int
(** Spans overwritten after the ring filled. *)

val set_cap : int -> unit
(** Resize the ring buffer (clamped to >= 1).  Discards retained spans
    and resets {!dropped_count}; primarily for tests and long-running
    servers re-configuring at runtime. *)

val capacity : unit -> int

val open_depth : unit -> int
val reset : unit -> unit

val arg_to_json : arg -> Json.t
val pp_arg : Format.formatter -> arg -> unit

(* Chase–Lev work-stealing deque over OCaml [Atomic.t] cells.

   Indices grow monotonically: [top] is the steal end, [bottom] the
   owner end; the live window is [top, bottom).  Elements live in a
   circular buffer indexed by [i land (capacity - 1)].  Every shared
   location — [top], [bottom], the buffer pointer and each slot — is an
   [Atomic.t], which on OCaml's memory model makes all accesses
   sequentially consistent: strictly stronger than the C11
   acquire/release protocol of the original algorithm, hence safe.

   Why a stale buffer read is still correct: [grow] (owner-only) copies
   the live window into a larger array at the same logical indices and
   publishes it with one atomic store.  A thief that read the old buffer
   for logical index [t] sees the element that was at [t] when the
   window contained it — old slots are only ever overwritten by a push
   whose index wrapped around, and the capacity check prevents a wrap
   while [t] is still inside the window.  The subsequent CAS on [top]
   validates that the element was still unclaimed. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a option Atomic.t array Atomic.t;
}

let initial_capacity = 64 (* power of two *)

let make_buf n = Array.init n (fun _ -> Atomic.make None)

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (make_buf initial_capacity);
  }

(* Owner-only: double the buffer, copying the live window [t, b) to the
   same logical indices. *)
let grow d ~t ~b old =
  let n = Array.length old in
  let fresh = make_buf (2 * n) in
  for i = t to b - 1 do
    Atomic.set fresh.(i land ((2 * n) - 1)) (Atomic.get old.(i land (n - 1)))
  done;
  Atomic.set d.buf fresh;
  fresh

let push d x =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  let buf = Atomic.get d.buf in
  let buf =
    if b - t >= Array.length buf then grow d ~t ~b buf else buf
  in
  Atomic.set buf.(b land (Array.length buf - 1)) (Some x);
  Atomic.set d.bottom (b + 1)

let pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* empty: restore the canonical empty state *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let buf = Atomic.get d.buf in
    let x = Atomic.get buf.(b land (Array.length buf - 1)) in
    if b > t then x
    else begin
      (* last element: race against thieves for it *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then x else None
    end
  end

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then `Empty
  else begin
    let buf = Atomic.get d.buf in
    let x = Atomic.get buf.(t land (Array.length buf - 1)) in
    if Atomic.compare_and_set d.top t (t + 1) then
      match x with Some v -> `Stolen v | None -> `Empty
    else `Lost
  end

let size d =
  let b = Atomic.get d.bottom and t = Atomic.get d.top in
  if b > t then b - t else 0

(* A fixed pool of OCaml 5 domains with a shared FIFO work queue.

   Design notes:

   - Workers are spawned once (growing monotonically up to [max_workers])
     and reused for every subsequent batch; there is no spawn-per-task.

   - The submitting domain *helps*: after enqueueing a batch it drains the
     queue itself until the batch completes.  Correctness therefore never
     depends on workers existing — if [Domain.spawn] fails (or the pool
     has fewer workers than requested) the batch still completes, just
     with less parallelism.  This is also what makes nested [map] calls
     from inside a task deadlock-free: every waiter is a worker.

   - Determinism: all combinators split the input into contiguous chunks
     whose boundaries depend only on [(n, jobs, chunk)], enqueue them in
     index order and reassemble results by chunk index.  The schedule can
     never reorder results.

   - A task that raises does not wedge anything: the exception is caught,
     the batch runs to completion, and the first exception (in completion
     order) is re-raised with its backtrace on the submitting domain.

   - Telemetry: each chunk runs inside a [par.task] span (chunk bounds and
     executing domain as arguments), counted by the [par.tasks] metric;
     the queue depth observed at every batch submission is the
     [par.queue_depth] histogram.  With telemetry enabled, every task
     additionally records its enqueue->start latency ([par.queue_wait_us])
     and start->finish run time ([par.task_run_us]), chunks record their
     size ([par.chunk_items]) and batches their task count
     ([par.batch_tasks]).

   - Utilization accounting is always on (two monotonic clock reads per
     task): each domain that ever executes a task keeps a local record of
     tasks run, busy time and attributed queue wait, merged on demand by
     [worker_stats].  The records are mutated without a lock by their
     owning domain and read racily by {!worker_stats} — the usual
     telemetry trade. *)

type task = unit -> unit

(* --- per-domain utilization accounting -------------------------------- *)

type account = {
  ac_domain : int;
  mutable ac_role : string; (* "worker" for pool domains, else "caller" *)
  mutable ac_tasks : int;
  (* 0: busy µs (task start -> finish); 1: queue-wait µs (enqueue -> start),
     in a floatarray so per-task accounting never allocates *)
  ac_times : floatarray;
  ac_started_us : float; (* monotonic µs at this domain's first task *)
}

type worker_stat = {
  ws_domain : int;
  ws_role : string;
  ws_tasks : int;
  ws_busy_us : float;
  ws_wait_us : float;
  ws_alive_us : float;
  ws_busy_frac : float;
}

let accounts : account list ref = ref []
let accounts_lock = Mutex.create ()

let account_key =
  Domain.DLS.new_key (fun () ->
    let ac =
      {
        ac_domain = (Domain.self () :> int);
        ac_role = "caller";
        ac_tasks = 0;
        ac_times = Float.Array.make 2 0.0;
        ac_started_us = Obs.Clock.monotonic_us ();
      }
    in
    Mutex.lock accounts_lock;
    accounts := ac :: !accounts;
    Mutex.unlock accounts_lock;
    ac)

let my_account () = Domain.DLS.get account_key

let worker_stats () =
  let now = Obs.Clock.monotonic_us () in
  Mutex.lock accounts_lock;
  let acs = !accounts in
  Mutex.unlock accounts_lock;
  List.map
    (fun ac ->
      let busy = Float.Array.get ac.ac_times 0 in
      let wait = Float.Array.get ac.ac_times 1 in
      let alive = Float.max 1e-9 (now -. ac.ac_started_us) in
      {
        ws_domain = ac.ac_domain;
        ws_role = ac.ac_role;
        ws_tasks = ac.ac_tasks;
        ws_busy_us = busy;
        ws_wait_us = wait;
        ws_alive_us = alive;
        ws_busy_frac = Float.min 1.0 (busy /. alive);
      })
    acs
  |> List.sort (fun a b -> compare a.ws_domain b.ws_domain)

let export_metrics () =
  List.iter
    (fun ws ->
      let base = Printf.sprintf "par.%s.%d" ws.ws_role ws.ws_domain in
      Obs.Metrics.set (base ^ ".busy_frac") ws.ws_busy_frac;
      Obs.Metrics.set (base ^ ".tasks") (float_of_int ws.ws_tasks))
    (worker_stats ())

let reset_stats () =
  Mutex.lock accounts_lock;
  List.iter
    (fun ac ->
      ac.ac_tasks <- 0;
      Float.Array.set ac.ac_times 0 0.0;
      Float.Array.set ac.ac_times 1 0.0)
    !accounts;
  Mutex.unlock accounts_lock

type pool = {
  mutex : Mutex.t;
  has_work : Condition.t;
  queue : task Queue.t;
  mutable workers : unit Domain.t list;
  mutable stop : bool;
}

(* --- pool sizing ------------------------------------------------------ *)

let jobs_from_env () =
  match Sys.getenv_opt "LOSAC_JOBS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> Some n
     | Some _ | None -> None)

let requested_default = ref None

let set_default_jobs n = requested_default := Some (max 1 n)

let default_jobs () =
  match !requested_default with
  | Some n -> n
  | None ->
    (match jobs_from_env () with
     | Some n -> n
     | None -> Domain.recommended_domain_count ())

(* OCaml's runtime degrades well past the core count but hard-caps the
   domain count; stay far below the cap. *)
let max_workers = 62

(* --- workers ---------------------------------------------------------- *)

let rec worker_loop p =
  Mutex.lock p.mutex;
  while Queue.is_empty p.queue && not p.stop do
    Condition.wait p.has_work p.mutex
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.mutex (* stop requested *)
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.mutex;
    (* batch wrappers never raise, but a stray exception must not kill
       the worker domain *)
    (try task () with _ -> ());
    worker_loop p
  end

let the_pool : pool option ref = ref None

(* guards [the_pool] creation and worker growth *)
let pool_lock = Mutex.create ()

let shutdown_registered = ref false

let shutdown () =
  match !the_pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.mutex;
    p.stop <- true;
    Condition.broadcast p.has_work;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.workers;
    p.workers <- [];
    the_pool := None

(* Returns the pool, spawning workers until it has at least
   [min (target, max_workers)] of them.  Spawn failure is graceful: the
   pool keeps whatever workers it already has and the caller-helps
   execution model picks up the slack. *)
let ensure_workers target =
  Mutex.lock pool_lock;
  let p =
    match !the_pool with
    | Some p -> p
    | None ->
      let p =
        {
          mutex = Mutex.create ();
          has_work = Condition.create ();
          queue = Queue.create ();
          workers = [];
          stop = false;
        }
      in
      the_pool := Some p;
      if not !shutdown_registered then begin
        shutdown_registered := true;
        (* idle workers block in [Condition.wait]; join them before the
           runtime tears down *)
        at_exit shutdown
      end;
      p
  in
  let target = min target max_workers in
  (try
     while List.length p.workers < target do
       p.workers <-
         Domain.spawn (fun () ->
           (* registering the account at spawn time both tags the domain's
              role and starts its alive clock for busy-fraction purposes *)
           (my_account ()).ac_role <- "worker";
           worker_loop p)
         :: p.workers
     done
   with _ -> ());
  Mutex.unlock pool_lock;
  p

let num_workers () =
  match !the_pool with None -> 0 | Some p -> List.length p.workers

let queue_depth () =
  match !the_pool with
  | None -> 0
  | Some p ->
    Mutex.lock p.mutex;
    let d = Queue.length p.queue in
    Mutex.unlock p.mutex;
    d

(* --- batches ---------------------------------------------------------- *)

type batch = {
  b_mutex : Mutex.t;
  b_done : Condition.t;
  mutable remaining : int;
  mutable failed : (exn * Printexc.raw_backtrace) option;
}

let try_pop p =
  Mutex.lock p.mutex;
  let t = if Queue.is_empty p.queue then None else Some (Queue.pop p.queue) in
  Mutex.unlock p.mutex;
  t

(* Enqueue [thunks] in index order, help drain the queue, wait for the
   batch to complete, re-raise the first recorded exception. *)
let run_batch p thunks =
  let b =
    {
      b_mutex = Mutex.create ();
      b_done = Condition.create ();
      remaining = Array.length thunks;
      failed = None;
    }
  in
  let wrap thunk =
    let enq_us = Obs.Clock.monotonic_us () in
    fun () ->
      let t0 = Obs.Clock.monotonic_us () in
      (try thunk ()
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock b.b_mutex;
         if b.failed = None then b.failed <- Some (e, bt);
         Mutex.unlock b.b_mutex);
      let t1 = Obs.Clock.monotonic_us () in
      let ac = my_account () in
      ac.ac_tasks <- ac.ac_tasks + 1;
      Float.Array.set ac.ac_times 0
        (Float.Array.get ac.ac_times 0 +. (t1 -. t0));
      Float.Array.set ac.ac_times 1
        (Float.Array.get ac.ac_times 1 +. (t0 -. enq_us));
      if !Obs.Config.flag then begin
        Obs.Metrics.observe "par.queue_wait_us" (t0 -. enq_us);
        Obs.Metrics.observe "par.task_run_us" (t1 -. t0)
      end;
      Mutex.lock b.b_mutex;
      b.remaining <- b.remaining - 1;
      if b.remaining = 0 then Condition.broadcast b.b_done;
      Mutex.unlock b.b_mutex
  in
  Mutex.lock p.mutex;
  let depth = Queue.length p.queue + Array.length thunks in
  Array.iter (fun t -> Queue.push (wrap t) p.queue) thunks;
  Condition.broadcast p.has_work;
  Mutex.unlock p.mutex;
  if !Obs.Config.flag then begin
    Obs.Metrics.observe "par.queue_depth" (float_of_int depth);
    Obs.Metrics.observe "par.batch_tasks" (float_of_int (Array.length thunks))
  end;
  let rec help () =
    match try_pop p with
    | Some task ->
      task ();
      help ()
    | None -> ()
  in
  help ();
  Mutex.lock b.b_mutex;
  while b.remaining > 0 do
    Condition.wait b.b_done b.b_mutex
  done;
  let failed = b.failed in
  Mutex.unlock b.b_mutex;
  match failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* --- chunking --------------------------------------------------------- *)

(* contiguous chunk [i] of [0..n-1] split into [chunks] parts: sizes
   differ by at most one, boundaries depend only on (n, chunks) *)
let chunk_bounds ~n ~chunks i =
  let base = n / chunks and extra = n mod chunks in
  let lo = (i * base) + min i extra in
  let hi = lo + base + if i < extra then 1 else 0 in
  (lo, hi)

let instrumented ~chunk ~lo ~hi body =
  if not !Obs.Config.flag then body ()
  else begin
    Obs.Metrics.incr "par.tasks";
    Obs.Metrics.observe "par.chunk_items" (float_of_int (hi - lo));
    Obs.Trace.with_span ~cat:"par"
      ~args:
        [
          ("chunk", Obs.Trace.Int chunk);
          ("lo", Obs.Trace.Int lo);
          ("hi", Obs.Trace.Int hi);
          ("domain", Obs.Trace.Int (Domain.self () :> int));
        ]
      "par.task" body
  end

let resolve_jobs jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ())

(* --- combinators ------------------------------------------------------ *)

let map_array ?jobs f xs =
  let n = Array.length xs in
  let jobs = min (resolve_jobs jobs) n in
  if jobs <= 1 then Array.map f xs
  else begin
    let p = ensure_workers (jobs - 1) in
    let chunks = jobs in
    let out = Array.make chunks [||] in
    let thunks =
      Array.init chunks (fun ci () ->
        let lo, hi = chunk_bounds ~n ~chunks ci in
        instrumented ~chunk:ci ~lo ~hi (fun () ->
          out.(ci) <- Array.init (hi - lo) (fun k -> f xs.(lo + k))))
    in
    run_batch p thunks;
    Array.concat (Array.to_list out)
  end

let map ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))

let map_reduce ?jobs ~map:fm ~reduce init xs =
  match xs with
  | [] -> init
  | _ ->
    let xs = Array.of_list xs in
    let n = Array.length xs in
    let jobs = min (resolve_jobs jobs) n in
    if jobs <= 1 then
      Array.fold_left (fun acc x -> reduce acc (fm x)) init xs
    else begin
      let p = ensure_workers (jobs - 1) in
      let chunks = jobs in
      let out = Array.make chunks None in
      let thunks =
        Array.init chunks (fun ci () ->
          let lo, hi = chunk_bounds ~n ~chunks ci in
          instrumented ~chunk:ci ~lo ~hi (fun () ->
            let acc = ref (fm xs.(lo)) in
            for i = lo + 1 to hi - 1 do
              acc := reduce !acc (fm xs.(i))
            done;
            out.(ci) <- Some !acc))
      in
      run_batch p thunks;
      Array.fold_left
        (fun acc r -> reduce acc (Option.get r))
        init out
    end

let parallel_for ?jobs ?chunk n body =
  if n > 0 then begin
    let jobs = min (resolve_jobs jobs) n in
    if jobs <= 1 then
      for i = 0 to n - 1 do
        body i
      done
    else begin
      let p = ensure_workers (jobs - 1) in
      let chunk_size =
        match chunk with
        | Some c -> max 1 c
        | None ->
          (* a few chunks per worker for load balance; boundaries still
             depend only on (n, jobs) *)
          max 1 ((n + (4 * jobs) - 1) / (4 * jobs))
      in
      let chunks = (n + chunk_size - 1) / chunk_size in
      let thunks =
        Array.init chunks (fun ci () ->
          let lo = ci * chunk_size in
          let hi = min n (lo + chunk_size) in
          instrumented ~chunk:ci ~lo ~hi (fun () ->
            for i = lo to hi - 1 do
              body i
            done))
      in
      run_batch p thunks
    end
  end

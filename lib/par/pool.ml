(* A work-stealing pool of OCaml 5 domains.

   Design notes:

   - Every domain that touches the pool (worker or caller) owns a
     Chase–Lev deque of [slice]s ({!Deque}).  A batch is submitted by
     pushing one contiguous slice of the chunk space per participant
     into the *submitting* domain's deque — O(participants) enqueues,
     not O(chunks) — and poking the workers it wants.  Everybody pops
     locally; an empty deque sends a domain stealing from randomly
     ordered victims.  Popping a multi-chunk slice splits it: the tail
     goes back to the popper's deque (stealable) and only the head
     chunk runs, so load balances at chunk granularity with no global
     queue and no mutex on the hot path.

   - Determinism: chunk boundaries are a pure function of
     [(n, jobs, chunk_size)] and results are reassembled by chunk
     index, so the schedule (stealing included) can never reorder
     results.  [map_reduce] always uses exactly [min jobs n] chunks so
     its reduction sequence depends only on [(n, jobs)].

   - Fast path: [jobs <= 1], singleton inputs, and cost-hinted calls
     whose estimated total falls under {!seq_cutoff_us} run inline —
     no slices, no atomics, no accounts.  [with_pool_forced] disables
     this so benches can measure the honest jobs=1 pool overhead.

   - Adaptive chunking: chunk size targets ~{!target_chunk_us} of work
     per chunk using the caller's [?cost] class prior, refined by
     always-on per-class histograms of observed per-item run time once
     enough samples exist.  The *inline* cutoff deliberately uses only
     the static prior — history-dependent inlining would make telemetry
     and accounting nondeterministic across test orderings.

   - The submitting domain helps: it drains its own deque, then steals,
     and only blocks on the batch condition after several failed steal
     sweeps.  Correctness never depends on workers existing, and nested
     parallel calls from inside a chunk are deadlock-free: every waiter
     drains its own deque first, and a slice only ever lives in a deque
     whose owner will drain it (workers loop forever; callers drive
     until their batch completes, which cannot happen while their own
     deque still holds a slice of it).

   - Workers are spawned once and kept warm: an idle worker spins
     through a few steal sweeps ([Domain.cpu_relax] between them) and
     then blocks on its own condition variable until poked — no
     broadcast herd, no busy churn.  Spawn-to-ready warm-up time is
     recorded in its account.

   - A chunk that raises does not wedge anything: the exception is
     recorded, the batch runs to completion, and the first recorded
     exception is re-raised on the submitting domain.

   - Queue-wait accounting stamps [sl_push_us] at every actual deque
     push — submission *and* split re-push — so a task's
     [par.queue_wait_us] measures time spent runnable-but-not-running,
     not time since the batch was built. *)

(* --- tunables and test hooks ------------------------------------------ *)

type cost = Cheap | Moderate | Expensive | Item_us of float

(* static per-item priors, µs; the inline cutoff uses only these *)
let prior_us = function
  | Cheap -> 100.
  | Moderate -> 10_000.
  | Expensive -> 250_000.
  | Item_us u -> Float.max 0.01 u

let default_prior_us = 1_000.

(* target work per chunk for the adaptive planner, µs *)
let target_chunk_us = 2_000.

let seq_cutoff_us = Atomic.make 200.
let set_seq_cutoff_us v = Atomic.set seq_cutoff_us (Float.max 0. v)

let pool_forced = Atomic.make false

let stealing = Atomic.make true
let set_stealing b = Atomic.set stealing b

let stall_hook : (int -> unit) option Atomic.t = Atomic.make None
let set_stall_hook h = Atomic.set stall_hook h

(* --- batches and slices ----------------------------------------------- *)

type batch = {
  bt_body : int -> unit; (* run chunk [ci]; may raise *)
  bt_items : int -> int; (* item count of chunk [ci], for cost feedback *)
  bt_cost : int; (* cost-class histogram index, -1 for none *)
  bt_fluids : Obs.Fluid.snapshot;
  (* the submitter's context-local bindings (cache/backend/telemetry
     switches), re-installed around every chunk so dynamic scope follows
     the work onto whichever domain runs it — worker, thief or helping
     caller.  Captured once per batch. *)
  bt_mutex : Mutex.t;
  bt_done : Condition.t;
  mutable bt_remaining : int;
  mutable bt_failed : (exn * Printexc.raw_backtrace) option;
}

(* a contiguous run [sl_lo, sl_hi) of chunk indices; immutable — a split
   allocates a fresh slice stamped with its own push time *)
type slice = {
  sl_batch : batch;
  sl_lo : int;
  sl_hi : int;
  sl_push_us : float;
}

(* --- per-domain accounts ---------------------------------------------- *)

(* cost-class histogram indices: Cheap 0, Moderate 1, Expensive 2,
   no-hint 3; Item_us trusts the caller and records nothing *)
let cost_classes = 4

let class_index = function
  | Cheap -> 0
  | Moderate -> 1
  | Expensive -> 2
  | Item_us _ -> -1

type account = {
  ac_domain : int;
  mutable ac_role : string; (* "worker" for pool domains, else "caller" *)
  mutable ac_tasks : int;
  (* 0: busy µs (chunk start -> finish); 1: queue-wait µs (deque push ->
     start), in a floatarray so per-chunk accounting never allocates *)
  ac_times : floatarray;
  ac_started_us : float; (* monotonic µs at this domain's first contact *)
  mutable ac_warmup_us : float; (* spawn -> ready; 0 for callers *)
  mutable ac_steals : int;
  mutable ac_steal_attempts : int;
  mutable ac_steal_spins : int;
  ac_deque : slice Deque.t;
  ac_rng : Splitmix.t; (* victim-order randomization *)
  ac_cost : Obs.Hist.t array; (* per-class observed per-item run µs *)
}

(* registry doubling as the victim set: an atomically published snapshot
   array, appended under [accounts_lock] when a domain first registers *)
let participants : account array Atomic.t = Atomic.make [||]
let accounts_lock = Mutex.create ()

let account_key =
  Domain.DLS.new_key (fun () ->
    let id = (Domain.self () :> int) in
    let ac =
      {
        ac_domain = id;
        ac_role = "caller";
        ac_tasks = 0;
        ac_times = Float.Array.make 2 0.0;
        ac_started_us = Obs.Clock.monotonic_us ();
        ac_warmup_us = 0.0;
        ac_steals = 0;
        ac_steal_attempts = 0;
        ac_steal_spins = 0;
        ac_deque = Deque.create ();
        ac_rng = Splitmix.create ~stream:id 0x5ca1ab1e;
        ac_cost = Array.init cost_classes (fun _ -> Obs.Hist.create ());
      }
    in
    Mutex.lock accounts_lock;
    Atomic.set participants (Array.append (Atomic.get participants) [| ac |]);
    Mutex.unlock accounts_lock;
    ac)

let my_account () = Domain.DLS.get account_key

(* Label the calling domain's participant row (e.g. the job server tags
   its executor domains "exec-0".."exec-N"), registering the account on
   first contact so the row exists before any batch runs.  Worker
   domains overwrite their own role to "worker" at startup. *)
let set_role name = (my_account ()).ac_role <- name

type worker_stat = {
  ws_domain : int;
  ws_role : string;
  ws_tasks : int;
  ws_busy_us : float;
  ws_wait_us : float;
  ws_alive_us : float;
  ws_busy_frac : float;
  ws_steals : int;
  ws_steal_attempts : int;
  ws_steal_spins : int;
  ws_warmup_us : float;
}

let worker_stats () =
  let now = Obs.Clock.monotonic_us () in
  Atomic.get participants |> Array.to_list
  |> List.map (fun ac ->
       let busy = Float.Array.get ac.ac_times 0 in
       let wait = Float.Array.get ac.ac_times 1 in
       let alive = Float.max 1e-9 (now -. ac.ac_started_us) in
       {
         ws_domain = ac.ac_domain;
         ws_role = ac.ac_role;
         ws_tasks = ac.ac_tasks;
         ws_busy_us = busy;
         ws_wait_us = wait;
         ws_alive_us = alive;
         ws_busy_frac = Float.min 1.0 (busy /. alive);
         ws_steals = ac.ac_steals;
         ws_steal_attempts = ac.ac_steal_attempts;
         ws_steal_spins = ac.ac_steal_spins;
         ws_warmup_us = ac.ac_warmup_us;
       })
  |> List.sort (fun a b -> compare a.ws_domain b.ws_domain)

let export_metrics () =
  List.iter
    (fun ws ->
      let base = Printf.sprintf "par.%s.%d" ws.ws_role ws.ws_domain in
      Obs.Metrics.set (base ^ ".busy_frac") ws.ws_busy_frac;
      Obs.Metrics.set (base ^ ".tasks") (float_of_int ws.ws_tasks);
      Obs.Metrics.set (base ^ ".steals") (float_of_int ws.ws_steals))
    (worker_stats ())

let reset_stats () =
  Array.iter
    (fun ac ->
      ac.ac_tasks <- 0;
      Float.Array.set ac.ac_times 0 0.0;
      Float.Array.set ac.ac_times 1 0.0;
      ac.ac_steals <- 0;
      ac.ac_steal_attempts <- 0;
      ac.ac_steal_spins <- 0;
      Array.iter Obs.Hist.clear ac.ac_cost)
    (Atomic.get participants)

let queue_depth () =
  Array.fold_left
    (fun acc ac -> acc + Deque.size ac.ac_deque)
    0 (Atomic.get participants)

(* --- pool sizing ------------------------------------------------------ *)

let jobs_from_env () =
  match Sys.getenv_opt "LOSAC_JOBS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> Some n
     | Some _ | None -> None)

let requested_default = ref None
let set_default_jobs n = requested_default := Some (max 1 n)

let default_jobs () =
  match !requested_default with
  | Some n -> n
  | None ->
    (match jobs_from_env () with
     | Some n -> n
     | None -> Domain.recommended_domain_count ())

(* OCaml's runtime degrades well past the core count but hard-caps the
   domain count; stay far below the cap. *)
let max_workers = 62

(* --- stealing --------------------------------------------------------- *)

(* One sweep over the victim set in randomized rotation.  Probes only
   deques that look non-empty (attempts count those probes, successful
   or lost); a sweep that yields nothing counts as one spin. *)
let try_steal me =
  if not (Atomic.get stealing) then None
  else begin
    let ps = Atomic.get participants in
    let len = Array.length ps in
    if len <= 1 then None
    else begin
      let start =
        (Int64.to_int (Splitmix.next_int64 me.ac_rng) land max_int) mod len
      in
      let rec probe i =
        if i >= len then begin
          me.ac_steal_spins <- me.ac_steal_spins + 1;
          if (Obs.Config.enabled ()) then Obs.Metrics.incr "par.steal_spins";
          None
        end
        else begin
          let v = ps.((start + i) mod len) in
          if v == me || Deque.size v.ac_deque = 0 then probe (i + 1)
          else begin
            me.ac_steal_attempts <- me.ac_steal_attempts + 1;
            if (Obs.Config.enabled ()) then Obs.Metrics.incr "par.steal_attempts";
            match Deque.steal v.ac_deque with
            | `Stolen sl ->
              me.ac_steals <- me.ac_steals + 1;
              if (Obs.Config.enabled ()) then Obs.Metrics.incr "par.steals";
              Some sl
            | `Empty | `Lost -> probe (i + 1)
          end
        end
      in
      probe 0
    end
  end

(* --- chunk execution -------------------------------------------------- *)

let instrumented ~chunk ~lo ~hi body =
  if not (Obs.Config.enabled ()) then body ()
  else begin
    Obs.Metrics.incr "par.tasks";
    Obs.Metrics.observe "par.chunk_items" (float_of_int (hi - lo));
    Obs.Trace.with_span ~cat:"par"
      ~args:
        [
          ("chunk", Obs.Trace.Int chunk);
          ("lo", Obs.Trace.Int lo);
          ("hi", Obs.Trace.Int hi);
          ("domain", Obs.Trace.Int (Domain.self () :> int));
        ]
      "par.task" body
  end

(* Run the head chunk of [sl] on this domain, first pushing the tail
   back into our own deque (freshly stamped — thieves can take it while
   the head runs). *)
let run_slice me sl =
  if sl.sl_lo + 1 < sl.sl_hi then
    Deque.push me.ac_deque
      { sl with sl_lo = sl.sl_lo + 1; sl_push_us = Obs.Clock.monotonic_us () };
  let b = sl.sl_batch in
  let ci = sl.sl_lo in
  let t0 = Obs.Clock.monotonic_us () in
  (* Run the chunk (and its per-chunk telemetry) under the submitter's
     context-local bindings; the domain's own bindings are restored
     before the batch countdown. *)
  Obs.Fluid.with_snapshot b.bt_fluids (fun () ->
      (try
         (match Atomic.get stall_hook with Some h -> h ci | None -> ());
         b.bt_body ci
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock b.bt_mutex;
         if b.bt_failed = None then b.bt_failed <- Some (e, bt);
         Mutex.unlock b.bt_mutex);
      let t1 = Obs.Clock.monotonic_us () in
      let wait = Float.max 0. (t0 -. sl.sl_push_us) in
      me.ac_tasks <- me.ac_tasks + 1;
      Float.Array.set me.ac_times 0
        (Float.Array.get me.ac_times 0 +. (t1 -. t0));
      Float.Array.set me.ac_times 1 (Float.Array.get me.ac_times 1 +. wait);
      (if b.bt_cost >= 0 then
         let items = b.bt_items ci in
         if items > 0 then
           Obs.Hist.record me.ac_cost.(b.bt_cost)
             ((t1 -. t0) /. float_of_int items));
      if (Obs.Config.enabled ()) then begin
        Obs.Metrics.observe "par.queue_wait_us" wait;
        Obs.Metrics.observe "par.task_run_us" (t1 -. t0)
      end);
  Mutex.lock b.bt_mutex;
  b.bt_remaining <- b.bt_remaining - 1;
  if b.bt_remaining = 0 then Condition.broadcast b.bt_done;
  Mutex.unlock b.bt_mutex

(* --- workers ---------------------------------------------------------- *)

type worker = {
  wk_mutex : Mutex.t;
  wk_cond : Condition.t;
  wk_poke : bool Atomic.t;
  wk_stop : bool Atomic.t;
  wk_spawned_us : float;
  mutable wk_domain : unit Domain.t option;
}

let workers : worker list ref = ref []
let pool_lock = Mutex.create ()
let shutdown_registered = ref false

(* steal sweeps an idle worker burns (cpu_relax between them) before
   blocking on its condition variable *)
let idle_spins = 4

let worker_loop wk =
  let me = my_account () in
  me.ac_role <- "worker";
  me.ac_warmup_us <- Obs.Clock.monotonic_us () -. wk.wk_spawned_us;
  let misses = ref 0 in
  while not (Atomic.get wk.wk_stop) do
    let ran =
      match Deque.pop me.ac_deque with
      | Some sl ->
        run_slice me sl;
        true
      | None ->
        (match try_steal me with
         | Some sl ->
           run_slice me sl;
           true
         | None -> false)
    in
    if ran then misses := 0
    else begin
      incr misses;
      if !misses < idle_spins then Domain.cpu_relax ()
      else begin
        misses := 0;
        Mutex.lock wk.wk_mutex;
        while not (Atomic.get wk.wk_poke || Atomic.get wk.wk_stop) do
          Condition.wait wk.wk_cond wk.wk_mutex
        done;
        Atomic.set wk.wk_poke false;
        Mutex.unlock wk.wk_mutex
      end
    end
  done

let shutdown () =
  Mutex.lock pool_lock;
  let ws = !workers in
  workers := [];
  Mutex.unlock pool_lock;
  List.iter
    (fun wk ->
      Mutex.lock wk.wk_mutex;
      Atomic.set wk.wk_stop true;
      Condition.signal wk.wk_cond;
      Mutex.unlock wk.wk_mutex)
    ws;
  List.iter
    (fun wk ->
      match wk.wk_domain with
      | Some d -> (try Domain.join d with _ -> ())
      | None -> ())
    ws

(* Grow the pool to at least [min target max_workers] workers.  Spawn
   failure is graceful: the caller-helps execution model picks up the
   slack with whatever workers exist. *)
let ensure_workers target =
  let target = min target max_workers in
  if List.length !workers < target then begin
    Mutex.lock pool_lock;
    if not !shutdown_registered then begin
      shutdown_registered := true;
      (* idle workers block in [Condition.wait]; join them before the
         runtime tears down *)
      at_exit shutdown
    end;
    (try
       while List.length !workers < target do
         let wk =
           {
             wk_mutex = Mutex.create ();
             wk_cond = Condition.create ();
             wk_poke = Atomic.make false;
             wk_stop = Atomic.make false;
             wk_spawned_us = Obs.Clock.monotonic_us ();
             wk_domain = None;
           }
         in
         wk.wk_domain <- Some (Domain.spawn (fun () -> worker_loop wk));
         workers := wk :: !workers
       done
     with _ -> ());
    Mutex.unlock pool_lock
  end

let num_workers () = List.length !workers

let poke_workers k =
  if k > 0 then begin
    let rec go i = function
      | [] -> ()
      | wk :: rest ->
        if i < k then begin
          Mutex.lock wk.wk_mutex;
          Atomic.set wk.wk_poke true;
          Condition.signal wk.wk_cond;
          Mutex.unlock wk.wk_mutex;
          go (i + 1) rest
        end
    in
    go 0 !workers
  end

(* --- batch driving ---------------------------------------------------- *)

let batch_finished b =
  Mutex.lock b.bt_mutex;
  let d = b.bt_remaining = 0 in
  Mutex.unlock b.bt_mutex;
  d

let wait_done b =
  Mutex.lock b.bt_mutex;
  while b.bt_remaining > 0 do
    Condition.wait b.bt_done b.bt_mutex
  done;
  Mutex.unlock b.bt_mutex

(* failed steal sweeps the submitter tolerates before blocking *)
let caller_spins = 8

(* contiguous chunk [i] of [0..n-1] split into [chunks] parts: sizes
   differ by at most one, boundaries depend only on (n, chunks) *)
let chunk_bounds ~n ~chunks i =
  let base = n / chunks and extra = n mod chunks in
  let lo = (i * base) + min i extra in
  let hi = lo + base + if i < extra then 1 else 0 in
  (lo, hi)

(* Submit [chunks] chunks as [min jobs chunks] slices in our own deque,
   poke workers, help until the batch completes, re-raise the first
   recorded exception. *)
let run_batch ~jobs ~chunks ~cost ~items body =
  let me = my_account () in
  let b =
    {
      bt_body = body;
      bt_items = items;
      bt_cost = (match cost with Some c -> class_index c | None -> 3);
      bt_fluids = Obs.Fluid.capture ();
      bt_mutex = Mutex.create ();
      bt_done = Condition.create ();
      bt_remaining = chunks;
      bt_failed = None;
    }
  in
  let p = max 1 (min jobs chunks) in
  ensure_workers (p - 1);
  let depth0 = Deque.size me.ac_deque in
  for k = p - 1 downto 0 do
    let lo, hi = chunk_bounds ~n:chunks ~chunks:p k in
    if lo < hi then
      Deque.push me.ac_deque
        {
          sl_batch = b;
          sl_lo = lo;
          sl_hi = hi;
          sl_push_us = Obs.Clock.monotonic_us ();
        }
  done;
  if (Obs.Config.enabled ()) then begin
    Obs.Metrics.observe "par.queue_depth" (float_of_int (depth0 + p));
    Obs.Metrics.observe "par.batch_tasks" (float_of_int chunks)
  end;
  poke_workers (p - 1);
  let rec drive misses =
    match Deque.pop me.ac_deque with
    | Some sl ->
      run_slice me sl;
      drive 0
    | None ->
      if not (batch_finished b) then begin
        match try_steal me with
        | Some sl ->
          run_slice me sl;
          drive 0
        | None ->
          if misses < caller_spins then begin
            Domain.cpu_relax ();
            drive (misses + 1)
          end
          (* else: everything left is running elsewhere (or parked in a
             busy worker's deque its owner will drain) — fall through
             and block in [wait_done] *)
      end
  in
  drive 0;
  wait_done b;
  match b.bt_failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* --- adaptive chunk planning ------------------------------------------ *)

(* merged-across-domains p50 of observed per-item run µs for a class,
   once at least [min_samples] observations exist *)
let min_samples = 32

let observed_p50 idx =
  let ps = Atomic.get participants in
  let merged = Obs.Hist.create () in
  Array.iter
    (fun ac -> Obs.Hist.merge_into ~src:ac.ac_cost.(idx) ~dst:merged)
    ps;
  if Obs.Hist.count merged >= min_samples then begin
    let p = Obs.Hist.quantile merged 0.5 in
    if Float.is_finite p && p > 0. then Some p else None
  end
  else None

let est_item_us cost =
  match cost with
  | Some (Item_us u) -> Float.max 0.01 u
  | Some c ->
    (match observed_p50 (class_index c) with
     | Some p -> p
     | None -> prior_us c)
  | None ->
    (match observed_p50 3 with Some p -> p | None -> default_prior_us)

(* Chunk size: ~[target_chunk_us] of estimated work per chunk, capped so
   every worker gets a few chunks to balance with, floored so the chunk
   count never explodes past 256.  An explicit [?chunk] always wins. *)
let plan_chunk ~n ~jobs ~chunk ~cost =
  match chunk with
  | Some c -> max 1 c
  | None ->
    let est = est_item_us cost in
    let by_cost = max 1 (int_of_float (Float.round (target_chunk_us /. est))) in
    let balance_cap = max 1 (n / (4 * jobs)) in
    let queue_floor = max 1 ((n + 255) / 256) in
    max queue_floor (min by_cost balance_cap)

(* Inline iff nothing to parallelize or the statically estimated total
   is under the sequential cutoff.  Deliberately prior-only (see the
   design notes): history-driven inlining would be nondeterministic. *)
let inline_path ~jobs ~n ~cost =
  (not (Atomic.get pool_forced))
  && (jobs <= 1 || n <= 1
     ||
     match cost with
     | Some c -> prior_us c *. float_of_int n < Atomic.get seq_cutoff_us
     | None -> false)

let with_pool_forced f =
  let prev = Atomic.exchange pool_forced true in
  Fun.protect ~finally:(fun () -> Atomic.set pool_forced prev) f

(* --- combinators ------------------------------------------------------ *)

let resolve_jobs jobs =
  max 1 (match jobs with Some j -> j | None -> default_jobs ())

let map_array ?jobs ?chunk ?cost f xs =
  let n = Array.length xs in
  let jobs = min (resolve_jobs jobs) (max 1 n) in
  if inline_path ~jobs ~n ~cost then Array.map f xs
  else begin
    let s = plan_chunk ~n ~jobs ~chunk ~cost in
    let chunks = (n + s - 1) / s in
    let out = Array.make chunks [||] in
    let bounds ci = (ci * s, min n ((ci * s) + s)) in
    run_batch ~jobs ~chunks ~cost
      ~items:(fun ci ->
        let lo, hi = bounds ci in
        hi - lo)
      (fun ci ->
        let lo, hi = bounds ci in
        instrumented ~chunk:ci ~lo ~hi (fun () ->
          out.(ci) <- Array.init (hi - lo) (fun k -> f xs.(lo + k))));
    Array.concat (Array.to_list out)
  end

let map ?jobs ?chunk ?cost f xs =
  Array.to_list (map_array ?jobs ?chunk ?cost f (Array.of_list xs))

let map_reduce ?jobs ?cost ~map:fm ~reduce init xs =
  match xs with
  | [] -> init
  | _ ->
    let xs = Array.of_list xs in
    let n = Array.length xs in
    let jobs = min (resolve_jobs jobs) n in
    if inline_path ~jobs ~n ~cost then
      Array.fold_left (fun acc x -> reduce acc (fm x)) init xs
    else begin
      (* exactly [jobs] chunks, always: the chunk-ordered reduction
         sequence must depend only on (n, jobs), never on adaptive
         sizing history *)
      let chunks = jobs in
      let out = Array.make chunks None in
      run_batch ~jobs ~chunks ~cost
        ~items:(fun ci ->
          let lo, hi = chunk_bounds ~n ~chunks ci in
          hi - lo)
        (fun ci ->
          let lo, hi = chunk_bounds ~n ~chunks ci in
          instrumented ~chunk:ci ~lo ~hi (fun () ->
            let acc = ref (fm xs.(lo)) in
            for i = lo + 1 to hi - 1 do
              acc := reduce !acc (fm xs.(i))
            done;
            out.(ci) <- Some !acc));
      Array.fold_left (fun acc r -> reduce acc (Option.get r)) init out
    end

let parallel_for ?jobs ?chunk ?cost n body =
  if n > 0 then begin
    let jobs = min (resolve_jobs jobs) n in
    if inline_path ~jobs ~n ~cost then
      for i = 0 to n - 1 do
        body i
      done
    else begin
      let s = plan_chunk ~n ~jobs ~chunk ~cost in
      let chunks = (n + s - 1) / s in
      run_batch ~jobs ~chunks ~cost
        ~items:(fun ci -> min n ((ci * s) + s) - (ci * s))
        (fun ci ->
          let lo = ci * s in
          let hi = min n (lo + s) in
          instrumented ~chunk:ci ~lo ~hi (fun () ->
            for i = lo to hi - 1 do
              body i
            done))
    end
  end

(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny splittable PRNG.

   The point here is not statistical strength beyond what Monte Carlo
   needs but *addressability*: a generator derived from [(seed, stream)]
   depends only on those two integers, never on how many numbers any
   other stream consumed.  That is what makes the parallel Monte Carlo
   bit-identical to the sequential one regardless of scheduling — sample
   [i] always draws from stream [i] of the run seed. *)

type t = { mutable s : int64 }

let golden = 0x9E3779B97F4A7C15L

(* the SplitMix64 output finaliser (a strong 64-bit mix) *)
let mix z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?(stream = 0) seed =
  (* mix seed and stream through the finaliser separately so that
     neighbouring (seed, stream) pairs land far apart in state space *)
  {
    s =
      mix
        (Int64.logxor
           (mix (Int64.of_int seed))
           (Int64.mul golden (Int64.of_int (stream + 1))));
  }

let next_int64 t =
  t.s <- Int64.add t.s golden;
  mix t.s

let float t =
  (* top 53 bits -> uniform in [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. 0x1p-53

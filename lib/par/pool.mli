(** A work-stealing pool of OCaml 5 domains for embarrassingly parallel
    sections.

    {b Scheduler.}  Each domain that touches the pool — worker or caller
    — owns a Chase–Lev-style deque ({!Deque}).  A parallel call splits
    its chunk space into one contiguous {e slice per participant},
    pushes those slices into the submitting domain's own deque (batch
    submission: one enqueue per participant, not per chunk) and wakes
    the workers it wants; everybody then pops locally and steals from
    randomly ordered victims when local work runs out.  Popping a slice
    splits it: the remainder goes back to the popper's deque (stealable)
    and only the first chunk runs — so load balances at chunk
    granularity without a global queue, mutex or condition churn.

    {b Fast path.}  [jobs <= 1], singleton inputs, and workloads whose
    estimated total cost (from the [?cost] hint) falls below the
    sequential cutoff run inline with zero pool traffic — no
    allocation, no atomics, no accounts.

    {b Adaptive chunking.}  Chunk {e size} is chosen from the caller's
    [?cost] hint refined by always-on per-cost-class histograms of
    observed per-item run time ([par.task_run_us] feeds the same data
    to telemetry); chunk {e boundaries} remain a pure function of
    [(n, jobs, chunk_size)], and results are reassembled by chunk
    index, so every result is bit-identical to the sequential run
    regardless of scheduling, stealing or history.  [map_reduce]
    ignores the adaptive size and always uses exactly [jobs] chunks, so
    its (chunk-ordered) reduction sequence depends only on [(n, jobs)].

    {b Workers.}  Spawned once, kept warm across calls: an idle worker
    spins through a few steal rounds (counted as [steal_spins]) and
    then blocks on its own condition variable until the next batch
    pokes it — no broadcast herd.  Spawn-to-ready warm-up time is
    recorded per worker ({!worker_stat.ws_warmup_us}).

    {b Exceptions.}  If a chunk raises, the batch still runs to
    completion (the pool is never wedged) and the first recorded
    exception is re-raised on the calling domain.

    {b Telemetry.}  When {!Obs.Config} is enabled, every chunk runs in
    a [par.task] span; [par.tasks] counts chunks, [par.queue_depth]
    records the deque depth seen at each submission, tasks feed the
    [par.queue_wait_us] (deque-push to start — stamped at the actual
    push, so batch submission does not over-report) and
    [par.task_run_us] histograms, chunks [par.chunk_items], batches
    [par.batch_tasks], and the stealing counters [par.steal_attempts] /
    [par.steals] / [par.steal_spins] accumulate.

    {b Utilization.}  Independently of telemetry, every participating
    domain keeps an always-on account — tasks, busy and queue-wait
    time, steal attempts/successes/spins, warm-up — merged on demand by
    {!worker_stats}.

    {b Context propagation.}  Each batch captures the submitter's
    context-local bindings ({!Obs.Fluid.capture}: cache/backend/
    telemetry switches) and re-installs them around every chunk on
    whichever domain runs it, so a scope's configuration follows its
    work through stealing and caller-helps.  Two concurrent batches
    with conflicting bindings therefore stay isolated even when their
    chunks interleave on the same worker. *)

type cost =
  | Cheap  (** ≲ 0.1 ms per item (e.g. a Monte Carlo sample's share) *)
  | Moderate  (** ~1–50 ms per item (e.g. a corner-sweep point) *)
  | Expensive
      (** ≳ 100 ms per item (e.g. a whole flow case): chunk size 1 *)
  | Item_us of float  (** caller-known per-item estimate, microseconds *)

val default_jobs : unit -> int
(** Resolution order: {!set_default_jobs}, then the [LOSAC_JOBS]
    environment variable, then [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Override the default parallelism (clamped to at least 1).  Wired to
    the [-j]/[--jobs] CLI options. *)

val map : ?jobs:int -> ?chunk:int -> ?cost:cost -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  [jobs] defaults to
    {!default_jobs}[ ()]; [~jobs:1] runs inline without touching the
    pool.  [?chunk] pins the chunk size (overriding the adaptive
    choice); [?cost] hints the per-item cost class for chunk sizing and
    the sequential cutoff. *)

val map_array :
  ?jobs:int -> ?chunk:int -> ?cost:cost -> ('a -> 'b) -> 'a array -> 'b array

val map_reduce :
  ?jobs:int ->
  ?cost:cost ->
  map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> 'b -> 'a list -> 'b
(** [map_reduce ~map ~reduce init xs] folds [reduce] over the mapped
    elements.  Always exactly [min jobs n] chunks, combined in chunk
    order: the result is deterministic for a given [jobs] whatever the
    schedule or chunk-size history, and equals the sequential fold
    whenever [reduce] is associative. *)

val parallel_for :
  ?jobs:int -> ?chunk:int -> ?cost:cost -> int -> (int -> unit) -> unit
(** [parallel_for n body] runs [body i] for every [i] in [0 .. n-1],
    partitioned into contiguous chunks (size from [?chunk], else
    adaptive).  Each index is executed exactly once; indices within a
    chunk run in increasing order. *)

val num_workers : unit -> int
(** Worker domains currently alive (0 before the first parallel call). *)

val queue_depth : unit -> int
(** Slices currently queued across all deques (diagnostic; racy). *)

val set_role : string -> unit
(** Label the calling domain's participant row in {!worker_stats}
    (registering it on first contact).  The job server tags its
    executor domains ["exec-0"].."exec-N" so [losac stats] renders
    per-executor rows; pool domains are always ["worker"], everything
    else defaults to ["caller"]. *)

type worker_stat = {
  ws_domain : int;  (** OCaml domain id *)
  ws_role : string;
  (** ["worker"] for pool domains, ["exec-<i>"] for job-server
      executors (see {!set_role}), ["caller"] otherwise *)
  ws_tasks : int;
  ws_busy_us : float;  (** total chunk start->finish time on this domain *)
  ws_wait_us : float;  (** total deque-push->start wait of chunks it ran *)
  ws_alive_us : float;  (** time since the domain first touched the pool *)
  ws_busy_frac : float;  (** busy / alive, clamped to [0, 1] *)
  ws_steals : int;  (** slices successfully stolen by this domain *)
  ws_steal_attempts : int;  (** victim probes, successful or not *)
  ws_steal_spins : int;  (** full victim scans that found nothing *)
  ws_warmup_us : float;  (** spawn-to-ready time; 0 for callers *)
}

val worker_stats : unit -> worker_stat list
(** Per-domain utilization accounts, sorted by domain id.  Always
    available (accounting is not gated on telemetry); reads are racy but
    each field is a consistent last-written value. *)

val export_metrics : unit -> unit
(** Publish {!worker_stats} as [par.<role>.<domain>.busy_frac],
    [.tasks] and [.steals] gauges (no-op while telemetry is disabled,
    like all metric writers). *)

val reset_stats : unit -> unit
(** Zero every domain's task/busy/wait/steal account and the adaptive
    cost histograms (workers stay registered).  For tests and benchmark
    reruns. *)

val shutdown : unit -> unit
(** Stop and join all workers.  Called automatically [at_exit]; a later
    parallel call recreates the pool. *)

(** {2 Measurement and test hooks} *)

val with_pool_forced : (unit -> 'a) -> 'a
(** Run [f] with the inline fast path disabled: every combinator takes
    the full batch/deque path even at [jobs = 1] (a single-participant
    batch drained by the caller).  This is how [bench --scaling]
    measures the honest jobs=1 pool overhead against the sequential
    path.  Process-global flag; intended for benches and tests. *)

val set_stealing : bool -> unit
(** Disable/enable work stealing (default enabled).  With stealing off,
    workers are never fed — the submitting domain drains every slice
    itself — so results must stay bit-identical; tests use this to
    check schedule independence both ways. *)

val set_seq_cutoff_us : float -> unit
(** Estimated-total-cost threshold below which a hinted call runs
    inline (default 200 µs). *)

val set_stall_hook : (int -> unit) option -> unit
(** Test hook: called with the chunk index just before each chunk body
    runs on the pool path.  Tests install sleeps for chosen chunks to
    force steals and validate schedule independence under skew. *)

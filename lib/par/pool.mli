(** A fixed pool of OCaml 5 domains for embarrassingly parallel sections.

    The pool is created lazily on the first parallel call and reused for
    the life of the process — tasks never spawn domains.  The submitting
    domain participates in draining the work queue, so every combinator
    is correct (just sequential) when the pool has no workers, when
    [jobs = 1], or when [Domain.spawn] fails.

    {b Determinism.}  Inputs are split into contiguous chunks whose
    boundaries depend only on the input length and [jobs]; results are
    reassembled by chunk index.  [map] and [parallel_for] therefore
    produce results identical to their sequential counterparts for pure
    [f], regardless of scheduling.

    {b Exceptions.}  If a task raises, the batch still runs to
    completion (the pool is never wedged) and the first recorded
    exception is re-raised on the calling domain.

    {b Telemetry.}  When {!Obs.Config} is enabled, every chunk runs in a
    [par.task] span carrying its bounds and executing domain, the
    [par.tasks] counter counts chunks and [par.queue_depth] records the
    queue depth seen at each batch submission.  Tasks also feed the
    [par.queue_wait_us] (enqueue to start) and [par.task_run_us] (start
    to finish) histograms, chunks the [par.chunk_items] histogram and
    batches [par.batch_tasks].

    {b Utilization.}  Independently of telemetry, every domain that runs
    tasks keeps a running account of tasks executed, busy time and
    attributed queue wait; {!worker_stats} merges them into per-domain
    busy fractions (the measurement behind ROADMAP item 6, pool
    efficiency on many-core hosts). *)

val default_jobs : unit -> int
(** Resolution order: {!set_default_jobs}, then the [LOSAC_JOBS]
    environment variable, then [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Override the default parallelism (clamped to at least 1).  Wired to
    the [-j]/[--jobs] CLI options. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  [jobs] defaults to
    {!default_jobs}[ ()]; [~jobs:1] runs sequentially without touching
    the pool. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> 'b -> 'a list -> 'b
(** [map_reduce ~map ~reduce init xs] folds [reduce] over the mapped
    elements.  Chunk-internal results are combined in chunk order, so
    the result is deterministic for a given [jobs]; it equals the
    sequential fold whenever [reduce] is associative. *)

val parallel_for : ?jobs:int -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for n body] runs [body i] for every [i] in [0 .. n-1],
    partitioned into contiguous chunks of [chunk] indices (default: a
    few chunks per worker).  Each index is executed exactly once;
    indices within a chunk run in increasing order. *)

val num_workers : unit -> int
(** Worker domains currently alive (0 before the first parallel call). *)

val queue_depth : unit -> int
(** Tasks currently queued (diagnostic; racy by nature). *)

type worker_stat = {
  ws_domain : int;  (** OCaml domain id *)
  ws_role : string;  (** ["worker"] for pool domains, ["caller"] otherwise *)
  ws_tasks : int;
  ws_busy_us : float;  (** total task start->finish time on this domain *)
  ws_wait_us : float;  (** total enqueue->start wait of tasks it ran *)
  ws_alive_us : float;  (** time since the domain first touched the pool *)
  ws_busy_frac : float;  (** busy / alive, clamped to [0, 1] *)
}

val worker_stats : unit -> worker_stat list
(** Per-domain utilization accounts, sorted by domain id.  Always
    available (accounting is not gated on telemetry); reads are racy but
    each field is a consistent last-written value. *)

val export_metrics : unit -> unit
(** Publish {!worker_stats} as [par.<role>.<domain>.busy_frac] and
    [.tasks] gauges (no-op while telemetry is disabled, like all metric
    writers). *)

val reset_stats : unit -> unit
(** Zero every domain's task/busy/wait account (workers stay
    registered).  For tests and benchmark reruns. *)

val shutdown : unit -> unit
(** Stop and join all workers.  Called automatically [at_exit]; a later
    parallel call recreates the pool. *)

(** Chase–Lev-style work-stealing deque.

    Single-owner double-ended queue: the owning domain pushes and pops
    at the bottom without contention in the common case; any other
    domain steals from the top with one compare-and-set.  All shared
    cells are [Atomic.t], so the implementation is data-race free under
    the OCaml memory model (no relaxed orderings are used — correctness
    over the last few nanoseconds).

    The buffer grows geometrically (owner-only) and never shrinks; a
    thief holding a stale buffer still reads the right element because
    growth copies the live window to the same logical indices and old
    slots are never overwritten before the window moves past them. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only: LIFO end.  [None] when empty (or when the last element
    was lost to a concurrent thief). *)

val steal : 'a t -> [ `Stolen of 'a | `Empty | `Lost ]
(** Any domain: FIFO end.  [`Lost] means the compare-and-set failed
    against a concurrent pop/steal — the caller may retry or move to the
    next victim (and should count the failed attempt). *)

val size : 'a t -> int
(** Racy snapshot, never negative.  Diagnostic only. *)

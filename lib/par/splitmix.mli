(** SplitMix64 pseudo-random streams.

    A stream is addressed by [(seed, stream)] and is completely
    independent of every other stream: deriving one per work item gives
    randomized parallel computations whose results are bit-identical to
    their sequential run, whatever the schedule. *)

type t

val create : ?stream:int -> int -> t
(** [create ~stream seed] is stream number [stream] (default 0) of the
    generator family identified by [seed]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Next uniform draw in [\[0, 1)], built from the top 53 bits. *)

type t = {
  name : string;
  xs : float array;
  ys : float array;
  outputs : int;
  (* data.((ix * ny + iy) * outputs + k) = f xs.(ix) ys.(iy) component k *)
  data : float array;
}

let check_axis label a =
  if Array.length a < 2 then
    invalid_arg (Printf.sprintf "Lut.build: %s needs at least 2 points" label);
  for i = 0 to Array.length a - 2 do
    if not (a.(i) < a.(i + 1)) then
      invalid_arg
        (Printf.sprintf "Lut.build: %s must be strictly increasing" label)
  done

let build ~name ~xs ~ys ~f =
  check_axis "xs" xs;
  check_axis "ys" ys;
  let nx = Array.length xs and ny = Array.length ys in
  let first = f xs.(0) ys.(0) in
  let outputs = Array.length first in
  if outputs = 0 then invalid_arg "Lut.build: f returns an empty vector";
  let data = Array.make (nx * ny * outputs) 0.0 in
  for ix = 0 to nx - 1 do
    for iy = 0 to ny - 1 do
      let v = if ix = 0 && iy = 0 then first else f xs.(ix) ys.(iy) in
      if Array.length v <> outputs then
        invalid_arg "Lut.build: f returns vectors of varying length";
      Array.blit v 0 data ((ix * ny + iy) * outputs) outputs
    done
  done;
  if (Obs.Config.enabled ()) then begin
    Obs.Metrics.incr "cache.lut.builds";
    Obs.Metrics.add "cache.lut.built_points" (float_of_int (nx * ny))
  end;
  { name; xs; ys; outputs; data }

(* Index of the cell containing x: largest i with a.(i) <= x, clamped so
   that [i + 1] is always a valid grid point. *)
let cell a x =
  let n = Array.length a in
  if x <= a.(0) then 0
  else if x >= a.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let frac a i x =
  let span = a.(i + 1) -. a.(i) in
  Float.max 0.0 (Float.min 1.0 ((x -. a.(i)) /. span))

let eval_into t out x y =
  if Array.length out <> t.outputs then
    invalid_arg "Lut.eval_into: wrong buffer length";
  let ny = Array.length t.ys in
  let ix = cell t.xs x and iy = cell t.ys y in
  let tx = frac t.xs ix x and ty = frac t.ys iy y in
  let base ix iy = (ix * ny + iy) * t.outputs in
  let b00 = base ix iy
  and b01 = base ix (iy + 1)
  and b10 = base (ix + 1) iy
  and b11 = base (ix + 1) (iy + 1) in
  let w00 = (1.0 -. tx) *. (1.0 -. ty)
  and w01 = (1.0 -. tx) *. ty
  and w10 = tx *. (1.0 -. ty)
  and w11 = tx *. ty in
  for k = 0 to t.outputs - 1 do
    out.(k) <-
      (w00 *. t.data.(b00 + k))
      +. (w01 *. t.data.(b01 + k))
      +. (w10 *. t.data.(b10 + k))
      +. (w11 *. t.data.(b11 + k))
  done

let eval t x y =
  let out = Array.make t.outputs 0.0 in
  eval_into t out x y;
  out

let name t = t.name
let outputs t = t.outputs
let grid_size t = (Array.length t.xs, Array.length t.ys)
let xs t = Array.copy t.xs
let ys t = Array.copy t.ys

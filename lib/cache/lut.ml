(* Cell lookup strategy per axis, chosen once at build time: uniform and
   log-uniform axes (the common cases for physical grids) locate a cell
   with O(1) index arithmetic instead of a binary search — on a hot
   interpolation path the searches are most of the cost.  The arithmetic
   result is corrected by a one-step walk so the returned cell is always
   exactly the binary search's answer, independent of rounding. *)
type accel =
  | Uniform of float * float      (* x0, 1/h *)
  | Log_uniform of float * float  (* log x0, 1/h in log space *)
  | Search

type t = {
  name : string;
  xs : float array;
  ys : float array;
  ax : accel;
  ay : accel;
  outputs : int;
  (* data.((ix * ny + iy) * outputs + k) = f xs.(ix) ys.(iy) component k *)
  data : float array;
}

let check_axis label a =
  if Array.length a < 2 then
    invalid_arg (Printf.sprintf "Lut.build: %s needs at least 2 points" label);
  for i = 0 to Array.length a - 2 do
    if not (a.(i) < a.(i + 1)) then
      invalid_arg
        (Printf.sprintf "Lut.build: %s must be strictly increasing" label)
  done

(* Detect (log-)uniform spacing.  The tolerance is loose relative to the
   one-step fixup in [cell]: a misdetection within tolerance still yields
   exact cell indices, it just walks one extra step. *)
let detect_accel a =
  let n = Array.length a in
  let near h ideal v = Float.abs (v -. ideal) <= 1e-9 *. Float.max h (Float.abs ideal) in
  let uniform_on g =
    let g0 = g 0 and gn = g (n - 1) in
    let h = (gn -. g0) /. float_of_int (n - 1) in
    if not (h > 0.0 && Float.is_finite h) then None
    else begin
      let ok = ref true in
      for i = 0 to n - 1 do
        if not (near h (g0 +. (float_of_int i *. h)) (g i)) then ok := false
      done;
      if !ok then Some (g0, 1.0 /. h) else None
    end
  in
  match uniform_on (fun i -> a.(i)) with
  | Some (x0, inv_h) -> Uniform (x0, inv_h)
  | None ->
    if a.(0) > 0.0 then
      match uniform_on (fun i -> Float.log a.(i)) with
      | Some (lx0, inv_lh) -> Log_uniform (lx0, inv_lh)
      | None -> Search
    else Search

let build ~name ~xs ~ys ~f =
  check_axis "xs" xs;
  check_axis "ys" ys;
  let nx = Array.length xs and ny = Array.length ys in
  let first = f xs.(0) ys.(0) in
  let outputs = Array.length first in
  if outputs = 0 then invalid_arg "Lut.build: f returns an empty vector";
  let data = Array.make (nx * ny * outputs) 0.0 in
  for ix = 0 to nx - 1 do
    for iy = 0 to ny - 1 do
      let v = if ix = 0 && iy = 0 then first else f xs.(ix) ys.(iy) in
      if Array.length v <> outputs then
        invalid_arg "Lut.build: f returns vectors of varying length";
      Array.blit v 0 data ((ix * ny + iy) * outputs) outputs
    done
  done;
  if (Obs.Config.enabled ()) then begin
    Obs.Metrics.incr "cache.lut.builds";
    Obs.Metrics.add "cache.lut.built_points" (float_of_int (nx * ny))
  end;
  { name; xs; ys; ax = detect_accel xs; ay = detect_accel ys; outputs; data }

(* Index of the cell containing x: largest i with a.(i) <= x, clamped so
   that [i + 1] is always a valid grid point.  The accelerated paths
   guess by index arithmetic, then walk the guess until the invariant
   a.(i) <= x < a.(i + 1) holds exactly — the result is identical to the
   binary search whatever the rounding of the guess. *)
let cell accel a x =
  let n = Array.length a in
  if x <= a.(0) then 0
  else if x >= a.(n - 1) then n - 2
  else
    match accel with
    | Uniform _ | Log_uniform _ ->
      let guess =
        match accel with
        | Uniform (x0, inv_h) -> (x -. x0) *. inv_h
        | Log_uniform (lx0, inv_lh) -> (Float.log x -. lx0) *. inv_lh
        | Search -> assert false
      in
      let i = ref (int_of_float guess) in
      if !i < 0 then i := 0 else if !i > n - 2 then i := n - 2;
      while !i > 0 && x < a.(!i) do decr i done;
      while !i < n - 2 && a.(!i + 1) <= x do incr i done;
      !i
    | Search ->
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) <= x then lo := mid else hi := mid
      done;
      !lo

let frac a i x =
  let span = a.(i + 1) -. a.(i) in
  Float.max 0.0 (Float.min 1.0 ((x -. a.(i)) /. span))

let eval_into_at t out ~ix ~iy x y =
  if Array.length out <> t.outputs then
    invalid_arg "Lut.eval_into_at: wrong buffer length";
  let ny = Array.length t.ys in
  let tx = frac t.xs ix x and ty = frac t.ys iy y in
  let base ix iy = (ix * ny + iy) * t.outputs in
  let b00 = base ix iy
  and b01 = base ix (iy + 1)
  and b10 = base (ix + 1) iy
  and b11 = base (ix + 1) (iy + 1) in
  let w00 = (1.0 -. tx) *. (1.0 -. ty)
  and w01 = (1.0 -. tx) *. ty
  and w10 = tx *. (1.0 -. ty)
  and w11 = tx *. ty in
  for k = 0 to t.outputs - 1 do
    out.(k) <-
      (w00 *. t.data.(b00 + k))
      +. (w01 *. t.data.(b01 + k))
      +. (w10 *. t.data.(b10 + k))
      +. (w11 *. t.data.(b11 + k))
  done

let eval_into t out x y =
  eval_into_at t out ~ix:(cell t.ax t.xs x) ~iy:(cell t.ay t.ys y) x y

let eval t x y =
  let out = Array.make t.outputs 0.0 in
  eval_into t out x y;
  out

let eval1_at t k ~ix ~iy x y =
  if k < 0 || k >= t.outputs then
    invalid_arg "Lut.eval1_at: component out of range";
  let ny = Array.length t.ys in
  let tx = frac t.xs ix x and ty = frac t.ys iy y in
  let base ix iy = ((ix * ny) + iy) * t.outputs in
  ((1.0 -. tx) *. (1.0 -. ty) *. t.data.(base ix iy + k))
  +. ((1.0 -. tx) *. ty *. t.data.(base ix (iy + 1) + k))
  +. (tx *. (1.0 -. ty) *. t.data.(base (ix + 1) iy + k))
  +. (tx *. ty *. t.data.(base (ix + 1) (iy + 1) + k))

let eval1 t k x y =
  eval1_at t k ~ix:(cell t.ax t.xs x) ~iy:(cell t.ay t.ys y) x y

let locate t x y = (cell t.ax t.xs x, cell t.ay t.ys y)

(* Inversion of one component along x at fixed y, assuming the component
   is nondecreasing in x.  Bit-identical to bracketing on [eval1] at the
   x nodes then solving the linear segment, but locates the y column once
   and reads the two cells of each probed node directly — the difference
   is a ~10x constant factor on the device-sizing hot path. *)
let invert_x t k y target =
  if k < 0 || k >= t.outputs then
    invalid_arg "Lut.invert_x: component out of range";
  let ny = Array.length t.ys in
  let iy = cell t.ay t.ys y in
  let ty = frac t.ys iy y in
  let node i =
    let b = (((i * ny) + iy) * t.outputs) + k in
    ((1.0 -. ty) *. t.data.(b)) +. (ty *. t.data.(b + t.outputs))
  in
  let n = Array.length t.xs in
  let i =
    if target <= node 0 then 0
    else if target >= node (n - 1) then n - 2
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if node mid <= target then lo := mid else hi := mid
      done;
      !lo
    end
  in
  let y0 = node i and y1 = node (i + 1) in
  let slope = (y1 -. y0) /. (t.xs.(i + 1) -. t.xs.(i)) in
  if Float.abs slope < 1e-30 then t.xs.(i)
  else t.xs.(i) +. ((target -. y0) /. slope)

let name t = t.name
let outputs t = t.outputs
let grid_size t = (Array.length t.xs, Array.length t.ys)
let xs t = Array.copy t.xs
let ys t = Array.copy t.ys

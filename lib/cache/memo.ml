type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  khash : int;
  mutable prev : ('k, 'v) node option;  (* towards MRU *)
  mutable next : ('k, 'v) node option;  (* towards LRU *)
}

type ('k, 'v) shard = {
  mutex : Mutex.t;
  tbl : (int, ('k, 'v) node list) Hashtbl.t;  (* khash -> collision chain *)
  mutable head : ('k, 'v) node option;        (* MRU *)
  mutable tail : ('k, 'v) node option;        (* LRU *)
  mutable size : int;
  cap : int;
}

type ('k, 'v) t = {
  name : string;
  shards : ('k, 'v) shard array;
  mask : int;
  capacity : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

type stats = {
  name : string;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let hit_rate s =
  let looked = s.hits + s.misses in
  if looked = 0 then 0.0 else float_of_int s.hits /. float_of_int looked

(* Registry of all caches ever created, as stat/clear closures so caches
   of different key/value types can live in one list. *)
type registered = { r_stats : unit -> stats; r_clear : unit -> unit }

let registered : registered list ref = ref []
let registry_mutex = Mutex.create ()

let rec power_of_two n = if n <= 1 then 1 else 2 * power_of_two ((n + 1) / 2)

(* Deep structural hash: the default [Hashtbl.hash] stops after 10
   meaningful values, which would collapse keys that share a long common
   prefix (e.g. the process record) onto one bucket. *)
let key_hash k = Hashtbl.hash_param 256 256 k

(* --- intrusive LRU list, all under the shard mutex ---------------------- *)

let unlink s n =
  (match n.prev with Some p -> p.next <- n.next | None -> s.head <- n.next);
  (match n.next with Some q -> q.prev <- n.prev | None -> s.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front s n =
  n.next <- s.head;
  n.prev <- None;
  (match s.head with Some h -> h.prev <- Some n | None -> s.tail <- Some n);
  s.head <- Some n

let chain_find k chain = List.find_opt (fun n -> compare n.key k = 0) chain

let remove_from_chain s n =
  match Hashtbl.find_opt s.tbl n.khash with
  | None -> ()
  | Some chain ->
    (match List.filter (fun m -> m != n) chain with
     | [] -> Hashtbl.remove s.tbl n.khash
     | chain' -> Hashtbl.replace s.tbl n.khash chain')

let evict_lru (t : (_, _) t) s =
  match s.tail with
  | None -> ()
  | Some n ->
    unlink s n;
    remove_from_chain s n;
    s.size <- s.size - 1;
    Atomic.incr t.evictions

let shard_of (t : (_, _) t) h = t.shards.(h land t.mask)

let stats (t : (_, _) t) : stats =
  {
    name = t.name;
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    entries = Array.fold_left (fun acc s -> acc + s.size) 0 t.shards;
    capacity = t.capacity;
  }

let clear (t : (_, _) t) =
  Array.iter
    (fun s ->
      Mutex.protect s.mutex (fun () ->
        Hashtbl.reset s.tbl;
        s.head <- None;
        s.tail <- None;
        s.size <- 0))
    t.shards;
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.evictions 0

let create ?(shards = 8) ?(capacity = 65536) ~name () =
  let shards = power_of_two (max 1 shards) in
  let cap = max 1 (capacity / shards) in
  let t =
    {
      name;
      shards =
        Array.init shards (fun _ ->
          {
            mutex = Mutex.create ();
            tbl = Hashtbl.create 64;
            head = None;
            tail = None;
            size = 0;
            cap;
          });
      mask = shards - 1;
      capacity = cap * shards;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      evictions = Atomic.make 0;
    }
  in
  let view = { r_stats = (fun () -> stats t); r_clear = (fun () -> clear t) } in
  Mutex.protect registry_mutex (fun () -> registered := !registered @ [ view ]);
  t

let insert (t : (_, _) t) s ~khash key value =
  let chain = Hashtbl.find_opt s.tbl khash |> Option.value ~default:[] in
  match chain_find key chain with
  | Some _ ->
    (* another domain inserted the same key while we computed: the values
       are identical (pure f), keep the resident entry *)
    ()
  | None ->
    let n = { key; value; khash; prev = None; next = None } in
    Hashtbl.replace s.tbl khash (n :: chain);
    push_front s n;
    s.size <- s.size + 1;
    if s.size > s.cap then evict_lru t s

let find_or_compute t k f =
  if not (Config.enabled ()) then f ()
  else begin
    let h = key_hash k in
    let s = shard_of t h in
    let found =
      Mutex.protect s.mutex (fun () ->
        match Hashtbl.find_opt s.tbl h with
        | None -> None
        | Some chain ->
          (match chain_find k chain with
           | None -> None
           | Some n ->
             unlink s n;
             push_front s n;
             Some n.value))
    in
    match found with
    | Some v ->
      Atomic.incr t.hits;
      v
    | None ->
      Atomic.incr t.misses;
      (* compute outside the lock so a slow miss never blocks the shard *)
      let v = f () in
      Mutex.protect s.mutex (fun () -> insert t s ~khash:h k v);
      v
  end

let mem t k =
  let h = key_hash k in
  let s = shard_of t h in
  Mutex.protect s.mutex (fun () ->
    match Hashtbl.find_opt s.tbl h with
    | None -> false
    | Some chain -> chain_find k chain <> None)

let registry () =
  let views = Mutex.protect registry_mutex (fun () -> !registered) in
  List.map (fun r -> r.r_stats ()) views

let clear_all () =
  let views = Mutex.protect registry_mutex (fun () -> !registered) in
  List.iter (fun r -> r.r_clear ()) views

let export_metrics () =
  List.iter
    (fun s ->
      let set what v =
        Obs.Metrics.set
          (Printf.sprintf "cache.%s.%s" s.name what)
          (float_of_int v)
      in
      set "hits" s.hits;
      set "misses" s.misses;
      set "evictions" s.evictions;
      set "entries" s.entries)
    (registry ())

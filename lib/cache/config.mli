(** The global cache enable flag.

    Caching is {e on} by default: every memo stores the exact value the
    wrapped computation produced, so results are bit-identical with the
    cache on or off.  The [LOSAC_CACHE] environment variable ([0], [false]
    or [off] to disable) sets the initial state; the CLI
    [--cache]/[--no-cache] flags and {!set_enabled} override it at run
    time.

    Like {!Obs.Config}, hot call sites read {!flag} directly — the
    disabled cost of a memoized function is one ref read and a branch. *)

val flag : bool ref
(** Read directly from hot call sites. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the flag temporarily set, restoring the previous value. *)

val env_var : string
(** ["LOSAC_CACHE"]. *)

(** The cache enable flag: context-local binding over a global default.

    Caching is {e on} by default: every memo stores the exact value the
    wrapped computation produced, so results are bit-identical with the
    cache on or off.  The [LOSAC_CACHE] environment variable ([0],
    [false] or [off] to disable) sets the initial global state; the CLI
    [--cache]/[--no-cache] flags and {!set_enabled} override it at run
    time.

    Resolution order (most to least specific):
    {e ctx binding > global > default (on)}.  {!with_enabled} binds a
    context-local value on the calling domain only (propagated to pool
    workers per batch by [Par.Pool]), so two concurrent scopes with
    conflicting cache switches never observe each other.  Hot call
    sites check {!enabled} once — the disabled cost of a memoized
    function is one domain-local read and a branch. *)

val enabled : unit -> bool
(** The effective flag: the calling domain's context-local binding if
    one is active, the global otherwise. *)

val set_enabled : bool -> unit
(** Set the process-global fallback. *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with a context-local binding on the calling domain, restored on
    exit.  Never touches the global. *)

val env_var : string
(** ["LOSAC_CACHE"]. *)

(** Precomputed lookup tables: a dense 2-D grid of vector-valued samples
    with bilinear interpolation between them.

    A LUT trades exactness for speed — evaluating the grid is a couple of
    array reads and four multiplies, regardless of how expensive the
    sampled function was.  Unlike {!Memo}, a LUT is therefore {e not}
    bit-identical to the wrapped computation; callers must opt in
    explicitly (see [Device.Lut] for the MOS operating-point instance,
    which is benchmarked separately for speed and accuracy).

    Grids are immutable after {!build}, so they can be shared freely
    across {!Par.Pool} domains without locking. *)

type t

val build :
  name:string ->
  xs:float array ->
  ys:float array ->
  f:(float -> float -> float array) ->
  t
(** [build ~name ~xs ~ys ~f] samples [f x y] at every grid point.  [xs]
    and [ys] must be strictly increasing with at least two points each;
    [f] must return vectors of one fixed length.  Build cost is
    [length xs * length ys] evaluations of [f], counted in the
    [cache.lut.built_points] metric. *)

val eval : t -> float -> float -> float array
(** Bilinear interpolation at [(x, y)], clamped to the grid's bounding
    box.  Returns a fresh vector of the sampled length. *)

val eval_into : t -> float array -> float -> float -> unit
(** Allocation-free variant: writes the interpolated vector into the
    given buffer (length must equal {!outputs}). *)

val name : t -> string
val outputs : t -> int
(** Length of the sampled vectors. *)

val grid_size : t -> int * int
(** (length xs, length ys). *)

val xs : t -> float array
val ys : t -> float array
(** The grid axes (copies; the interior is immutable). *)

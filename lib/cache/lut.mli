(** Precomputed lookup tables: a dense 2-D grid of vector-valued samples
    with bilinear interpolation between them.

    A LUT trades exactness for speed — evaluating the grid is a couple of
    array reads and four multiplies, regardless of how expensive the
    sampled function was.  Unlike {!Memo}, a LUT is therefore {e not}
    bit-identical to the wrapped computation; callers must opt in
    explicitly (see [Device.Lut] for the MOS operating-point instance,
    which is benchmarked separately for speed and accuracy).

    Grids are immutable after {!build}, so they can be shared freely
    across {!Par.Pool} domains without locking. *)

type t

val build :
  name:string ->
  xs:float array ->
  ys:float array ->
  f:(float -> float -> float array) ->
  t
(** [build ~name ~xs ~ys ~f] samples [f x y] at every grid point.  [xs]
    and [ys] must be strictly increasing with at least two points each;
    [f] must return vectors of one fixed length.  Build cost is
    [length xs * length ys] evaluations of [f], counted in the
    [cache.lut.built_points] metric. *)

val eval : t -> float -> float -> float array
(** Bilinear interpolation at [(x, y)], clamped to the grid's bounding
    box.  Returns a fresh vector of the sampled length. *)

val eval_into : t -> float array -> float -> float -> unit
(** Allocation-free variant: writes the interpolated vector into the
    given buffer (length must equal {!outputs}). *)

val eval1 : t -> int -> float -> float -> float
(** [eval1 t k x y] interpolates component [k] alone, allocation-free —
    the hot path for inversions that repeatedly probe one output (see
    [Device.Lut.vgs_for_current]). *)

val eval1_at : t -> int -> ix:int -> iy:int -> float -> float -> float
(** {!eval1} with the cell indices precomputed ({!locate}) — lets a
    caller that also needs the cell identity (e.g. a visited-cell
    tracker) pay for the axis searches once.  Bit-identical to {!eval1}
    when [(ix, iy) = locate t x y]. *)

val eval_into_at : t -> float array -> ix:int -> iy:int -> float -> float -> unit
(** {!eval_into} with the cell indices precomputed, the vector analogue
    of {!eval1_at}. *)

val invert_x : t -> int -> float -> float -> float
(** [invert_x t k y target] solves [eval1 t k x y = target] for [x],
    assuming component [k] is nondecreasing in [x] at fixed [y]: the
    bracketing segment of the piecewise-linear section inverts in closed
    form, and targets beyond either axis end extrapolate the end segment.
    Total (never raises on out-of-range targets); the closed-form inverse
    of {!eval1}'s interpolant, used by [Device.Lut]'s LUT-consistent
    gate-voltage inversion. *)

val locate : t -> float -> float -> int * int
(** Cell indices [(ix, iy)] the point [(x, y)] interpolates from, clamped
    to the grid like {!eval} — [ix + 1] and [iy + 1] are always valid grid
    points.  This is the cell identity used by consumers that track which
    parts of a grid a run actually exercised (see [Device.Lut]'s trust
    guard). *)

val name : t -> string
val outputs : t -> int
(** Length of the sampled vectors. *)

val grid_size : t -> int * int
(** (length xs, length ys). *)

val xs : t -> float array
val ys : t -> float array
(** The grid axes (copies; the interior is immutable). *)

(** Domain-safe, content-addressed memoization: a sharded LRU keyed by the
    structural hash of the canonical inputs.

    A memo stores the {e exact} value the wrapped computation produced for
    a key, so wrapping a pure function changes nothing but wall-clock:
    results are bit-identical with caching on or off ({!Config}).

    {b Concurrency.}  Keys are dispatched to [shards] independent tables,
    each behind its own mutex, so lookups from {!Par.Pool} workers only
    contend when they hash to the same shard.  Values are computed
    {e outside} the lock; when two workers race on the same missing key
    both compute it (pure, so identical) and one insertion wins.

    {b Keys.}  Keys must be immutable structural data — records, tuples,
    lists, strings, floats — with no functions or closures inside.
    Equality is [compare k1 k2 = 0], so [nan]s compare equal and a key
    containing one still hits.  Hashing traverses deeply
    ([Hashtbl.hash_param 256 256]) so keys differing only in a nested
    field still spread across buckets.

    {b Telemetry.}  Every cache registers itself at creation;
    {!registry} snapshots all caches' hit/miss/eviction counters and
    {!export_metrics} publishes them through {!Obs.Metrics} as
    [cache.<name>.hits] / [.misses] / [.evictions] / [.entries]. *)

type ('k, 'v) t

val create : ?shards:int -> ?capacity:int -> name:string -> unit -> ('k, 'v) t
(** [create ~name ()] makes an LRU memo holding at most [capacity]
    entries (default 65536) spread over [shards] tables (default 8,
    clamped to a power of two).  [name] labels the cache in {!registry}
    and in exported metrics. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_compute t k f] returns the cached value for [k], computing
    and storing [f ()] on a miss.  When caching is disabled in the
    calling context ({!Config.enabled}), simply calls [f] and touches
    neither the table nor the counters. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Pure lookup (no insertion, no LRU promotion, no counters). *)

type stats = {
  name : string;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;   (** current number of cached values *)
  capacity : int;
}

val hit_rate : stats -> float
(** hits / (hits + misses); 0 when no lookups happened. *)

val stats : ('k, 'v) t -> stats

val clear : ('k, 'v) t -> unit
(** Drop every entry and zero the counters (a cold start). *)

val registry : unit -> stats list
(** Stats of every cache created so far, in creation order. *)

val clear_all : unit -> unit
(** {!clear} every registered cache — used to measure cold runs. *)

val export_metrics : unit -> unit
(** Publish every cache's counters as {!Obs.Metrics} gauges (no-op while
    telemetry is disabled, like all metric writers). *)

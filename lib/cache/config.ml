let env_var = "LOSAC_CACHE"

let initial =
  match Sys.getenv_opt env_var with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

(* Resolution order: context-local binding > global > default (on).
   [with_enabled] binds domain-locally so concurrent jobs with
   conflicting cache switches never observe each other; [set_enabled]
   remains a genuine global mutation for CLI startup. *)
let global = ref initial

let local : bool Obs.Fluid.t = Obs.Fluid.make ()

let enabled () =
  match Obs.Fluid.get local with Some b -> b | None -> !global

let set_enabled b = global := b

let with_enabled b f = Obs.Fluid.with_value local b f

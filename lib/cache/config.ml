let env_var = "LOSAC_CACHE"

let initial =
  match Sys.getenv_opt env_var with
  | Some ("0" | "false" | "off" | "no") -> false
  | Some _ | None -> true

let flag = ref initial
let enabled () = !flag
let set_enabled b = flag := b

let with_enabled b f =
  let saved = !flag in
  flag := b;
  Fun.protect ~finally:(fun () -> flag := saved) f

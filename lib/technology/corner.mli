(** Process corners and temperature as transformations of a process
    description: every analysis downstream (models, sizing, simulation)
    automatically sees the cornered device cards.

    Corners use the classic two-letter convention (NMOS then PMOS):
    slow devices have a higher threshold magnitude and lower mobility,
    fast devices the opposite.  Temperature shifts the thresholds by
    -1.5 mV/K and scales mobility as (T/T0)^-1.5; junction and oxide
    capacitances are treated as temperature independent. *)

type t = TT | SS | FF | SF | FS

val all : t list
val to_string : t -> string

val apply : t -> Process.t -> Process.t
(** Corner a process (thresholds +/- [delta_vto], mobility -/+
    [mobility_factor]). *)

val at_temperature : float -> Process.t -> Process.t
(** Retarget a process to an analysis temperature in kelvin. *)

val celsius : float -> float
(** Convert a temperature from Celsius to kelvin. *)

val sweep_grid :
  ?corners:t list -> ?temperatures:float list -> unit -> (t * float) list
(** The (corner, temperature-in-kelvin) verification grid, in
    deterministic order.  Defaults: all five corners at 27 C, plus TT at
    -40 C and 85 C.  Giving only [corners] sweeps them at 27 C; giving
    only [temperatures] sweeps all corners at each. *)

val delta_vto : float
(** Threshold shift magnitude per slow/fast step, V (50 mV). *)

val mobility_factor : float
(** Relative mobility change per slow/fast step (10%). *)

type t = TT | SS | FF | SF | FS

let all = [ TT; SS; FF; SF; FS ]

let to_string = function
  | TT -> "TT"
  | SS -> "SS"
  | FF -> "FF"
  | SF -> "SF"
  | FS -> "FS"

let delta_vto = 0.05
let mobility_factor = 0.10

type speed = Slow | Typical | Fast

let speeds = function
  | TT -> (Typical, Typical)
  | SS -> (Slow, Slow)
  | FF -> (Fast, Fast)
  | SF -> (Slow, Fast)
  | FS -> (Fast, Slow)

let shift_card speed (card : Electrical.mos_params) =
  match speed with
  | Typical -> card
  | Slow ->
    { card with
      Electrical.vto = card.Electrical.vto +. delta_vto;
      u0 = card.Electrical.u0 *. (1.0 -. mobility_factor) }
  | Fast ->
    { card with
      Electrical.vto = card.Electrical.vto -. delta_vto;
      u0 = card.Electrical.u0 *. (1.0 +. mobility_factor) }

let apply corner (proc : Process.t) =
  let n_speed, p_speed = speeds corner in
  let electrical =
    { proc.Process.electrical with
      Electrical.nmos = shift_card n_speed proc.Process.electrical.Electrical.nmos;
      pmos = shift_card p_speed proc.Process.electrical.Electrical.pmos }
  in
  { proc with
    Process.name = proc.Process.name ^ "-" ^ to_string corner;
    electrical }

let retemp_card t0 t (card : Electrical.mos_params) =
  { card with
    Electrical.vto = card.Electrical.vto -. (1.5e-3 *. (t -. t0));
    u0 = card.Electrical.u0 *. ((t /. t0) ** -1.5) }

let at_temperature t (proc : Process.t) =
  assert (t > 0.0);
  let t0 = proc.Process.temperature in
  let electrical =
    { proc.Process.electrical with
      Electrical.nmos = retemp_card t0 t proc.Process.electrical.Electrical.nmos;
      pmos = retemp_card t0 t proc.Process.electrical.Electrical.pmos }
  in
  { proc with Process.temperature = t; electrical }

let celsius c = c +. 273.15

(* The default verification grid: every corner at room temperature plus
   the temperature extremes at the typical corner.  Each point is
   independent of every other, which is what lets Robustness fan the
   sweep out over the domain pool. *)
let default_temperatures = [ celsius 27.0 ]
let extra_tt_temperatures = [ celsius (-40.0); celsius 85.0 ]

let sweep_grid ?corners ?temperatures () =
  let cross cs ts = List.concat_map (fun c -> List.map (fun t -> (c, t)) ts) cs in
  match (corners, temperatures) with
  | Some cs, Some ts -> cross cs ts
  | Some cs, None -> cross cs default_temperatures
  | None, Some ts -> cross all ts
  | None, None ->
    cross all default_temperatures
    @ List.map (fun t -> (TT, t)) extra_tt_temperatures

(* Matched current mirror generation (the paper's Fig. 3 scenario): a
   1:3:6 NMOS mirror under high current density.  Shows the matching
   constraints (interleaving, dummies, centroids, current direction) and
   the reliability constraints (EM wire widths, contact counts), then
   writes an SVG of the module.

     dune exec examples/current_mirror.exe *)

module Stack = Cairo_layout.Stack

let () =
  let proc = Technology.Process.c06 in
  let unit_current = 1.0e-3 in
  let spec =
    {
      Stack.elements =
        [
          { Stack.el_name = "1"; units = 1; drain_net = "d1";
            current = unit_current };
          { Stack.el_name = "2"; units = 3; drain_net = "d2";
            current = 3.0 *. unit_current };
          { Stack.el_name = "3"; units = 6; drain_net = "d3";
            current = 6.0 *. unit_current };
        ];
      mtype = Technology.Electrical.Nmos;
      unit_w = 12e-6;
      l = 2e-6;
      source_net = "vss";
      gate = Stack.Common "bias";
      bulk_net = "vss";
      dummies = true;
    }
  in
  let r = Stack.generate proc spec in
  Format.printf "placement: %a@." Stack.pp_placement r.Stack.placement;
  List.iter
    (fun name ->
      Format.printf
        "M%s: centroid offset %.2f pitches, orientation imbalance %d, drain \
         strap %d lambda@."
        name
        (Stack.centroid_offset r.Stack.placement name)
        (Stack.orientation_imbalance r.Stack.placement name)
        (List.assoc name r.Stack.strap_widths))
    [ "1"; "2"; "3" ];
  (* matching sanity: the drawn drain areas track the 1:3:6 ratios *)
  let area name = List.assoc name r.Stack.drain_areas in
  Format.printf "drain area ratios (ideal 1 : 3 : 6): 1 : %.2f : %.2f@."
    (area "2" /. area "1")
    (area "3" /. area "1");
  (* DRC the module *)
  let violations = Cairo_layout.Drc.check proc r.Stack.cell in
  Format.printf "DRC: %d violation(s)@." (List.length violations);
  (* artwork *)
  let svg = Cairo_layout.Render.svg r.Stack.cell in
  let path = "current_mirror.svg" in
  Out_channel.with_open_text path (fun oc -> output_string oc svg);
  Format.printf "wrote %s (%d rectangles)@." path
    (Cairo_layout.Cell.rect_count r.Stack.cell);
  Format.printf "@.%s@.%s@." Cairo_layout.Render.legend
    (Cairo_layout.Render.ascii ~max_cols:100 r.Stack.cell)

(* The technology evaluation interface: characterise the built-in
   processes, compare device behaviour between them, and see how the same
   OTA specification sizes in each - the paper's "helps to choose the most
   suitable technology" workflow.

     dune exec examples/tech_explore.exe *)

module P = Technology.Process
module M = Device.Model
module E = Technology.Electrical

let () =
  List.iter
    (fun proc ->
      Format.printf "%a@.@." P.pp_evaluation (P.evaluate proc))
    P.builtin;
  (* gm/Id characteristic of a unit NMOS in each process *)
  Format.printf "gm/Id of a 10/1 um NMOS vs overdrive (bsim-lite):@.";
  Format.printf "%8s" "veff";
  List.iter (fun p -> Format.printf " %10s" p.P.name) P.builtin;
  Format.printf "@.";
  List.iter
    (fun veff ->
      Format.printf "%8.2f" veff;
      List.iter
        (fun proc ->
          let nmos = proc.P.electrical.E.nmos in
          let e =
            M.evaluate M.Bsim_lite nmos ~w:10e-6 ~l:1e-6
              { M.vgs = nmos.E.vto +. veff; vds = 1.5; vbs = 0.0 }
          in
          Format.printf " %10.2f" (e.M.gm /. e.M.ids))
        P.builtin;
      Format.printf "@.")
    [ -0.1; 0.0; 0.1; 0.2; 0.3; 0.4 ];
  (* size the same OTA in both technologies *)
  Format.printf "@.paper OTA sized in each technology:@.";
  List.iter
    (fun proc ->
      let spec = Comdiac.Spec.paper_ota in
      let d =
        Comdiac.Folded_cascode.size ~proc ~kind:M.Bsim_lite ~spec
          ~parasitics:Comdiac.Parasitics.single_fold
      in
      let w_in = (Comdiac.Amp.find_device d.Comdiac.Folded_cascode.amp "P1").Device.Mos.w in
      Format.printf
        "  %-5s input pair W = %-10s I1 = %-10s power estimate = %s@."
        proc.P.name
        (Phys.Units.to_si_string "m" w_in)
        (Phys.Units.to_si_string "A" d.Comdiac.Folded_cascode.i1)
        (Phys.Units.to_si_string "W"
           (spec.Comdiac.Spec.vdd
            *. d.Comdiac.Folded_cascode.amp.Comdiac.Amp.supply_current)))
    P.builtin

(* The paper's stated future work: "synthesis of larger systems as
   switched capacitor filters ... using the same methodology."  This
   example takes the first step: a parasitic-insensitive switched-
   capacitor integrator built from the synthesized OTA and transistor
   switches, clocked at 5 MHz and simulated in the time domain.

   The switch phasing (input sampled on phi1, input side thrown to the
   reference on phi2) realises the NON-inverting parasitic-insensitive
   integrator: the output ramps by +Vin * Cs/Ci per clock period.  The
   small excess over the ideal step is residual switch charge
   injection.

     dune exec examples/sc_integrator.exe *)

module El = Netlist.Element
module Ckt = Netlist.Circuit
module E = Technology.Electrical

let () =
  let proc = Technology.Process.c06 in
  let kind = Device.Model.Bsim_lite in
  let spec = Comdiac.Spec.paper_ota in
  let design =
    Comdiac.Folded_cascode.size ~proc ~kind ~spec
      ~parasitics:Comdiac.Parasitics.single_fold
  in
  let amp = design.Comdiac.Folded_cascode.amp in
  let fclk = 5e6 in
  let t_clk = 1.0 /. fclk in
  let cs = 1e-12 and ci = 4e-12 in
  let vmid = Comdiac.Spec.output_quiescent spec in
  let vin_step = 0.1 (* volts above the mid rail *) in
  (* two-phase non-overlapping clocks as gate waveforms *)
  let vdd = spec.Comdiac.Spec.vdd in
  let phase offset t =
    let u = Float.rem (t /. t_clk +. offset) 1.0 in
    let u = if u < 0.0 then u +. 1.0 else u in
    if u < 0.42 then vdd else 0.0
  in
  let phi1 = phase 0.0 and phi2 = phase 0.5 in
  let switch name ~gate ~a ~b c =
    (* minimum-ish switches: channel charge injection scales with W L Cox
       and must stay well below the signal charge Cs * Vin *)
    let dev = Device.Mos.make ~name ~mtype:E.Nmos ~w:1.8e-6 ~l:0.6e-6 () in
    Ckt.add_mos c ~dev ~d:a ~g:gate ~s:b ~b:"0"
  in
  let c = Ckt.create ~title:"switched-capacitor integrator" in
  let c = Comdiac.Amp.add_to amp c in
  let c = Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:El.ground (El.dc_source vdd) in
  let c = Ckt.add_vsource c ~name:"p1" ~p:"phi1" ~n:El.ground (El.wave_source ~dc:vdd phi1) in
  let c = Ckt.add_vsource c ~name:"p2" ~p:"phi2" ~n:El.ground (El.wave_source ~dc:0.0 phi2) in
  (* reference rail and input: start integrating a positive step at t=0 *)
  let c = Ckt.add_vsource c ~name:"ref" ~p:"vref" ~n:El.ground (El.dc_source vmid) in
  let c =
    Ckt.add_vsource c ~name:"in" ~p:"vin" ~n:El.ground
      (El.wave_source ~dc:vmid (fun t -> if t <= 0.0 then vmid else vmid +. vin_step))
  in
  (* sampling cap Cs switched between (vin, vref) and (vref, summing node) *)
  let c = switch "S1" ~gate:"phi1" ~a:"vin" ~b:"cst" c in
  let c = switch "S2" ~gate:"phi2" ~a:"cst" ~b:"vref" c in
  let c = Ckt.add_capacitor c ~name:"s" ~p:"cst" ~n:"csb" ~c:cs in
  let c = switch "S3" ~gate:"phi1" ~a:"csb" ~b:"vref" c in
  let c = switch "S4" ~gate:"phi2" ~a:"csb" ~b:"inn" c in
  (* integration cap around the amp; inp held at the reference.  A large
     bleed resistor across Ci defines the DC operating point (a real SC
     circuit would use a reset phase); its droop time constant is far
     longer than the simulated window *)
  let c = Ckt.add_capacitor c ~name:"i" ~p:"inn" ~n:"out" ~c:ci in
  let c = Ckt.add_resistor c ~name:"bleed" ~p:"inn" ~n:"out" ~r:50e6 in
  let c = Ckt.add_vsource c ~name:"cm" ~p:"inp" ~n:El.ground (El.dc_source vmid) in
  let guess =
    Comdiac.Amp.guess_fn amp
      ~extra:[ ("vdd", vdd); ("vin", vmid); ("vref", vmid); ("cst", vmid);
               ("csb", vmid); ("inp", vmid); ("inn", vmid); ("out", vmid);
               ("phi1", vdd); ("phi2", 0.0) ]
  in
  let n_cycles = 12 in
  let tstop = float_of_int n_cycles *. t_clk in
  Format.printf "SC integrator: Cs/Ci = %.2f, fclk = %s, Vin step = %+.0f mV@."
    (cs /. ci)
    (Phys.Units.to_si_string "Hz" fclk)
    (vin_step *. 1e3);
  let res = Sim.Tran.run ~proc ~kind ~tstop ~dt:(t_clk /. 160.0) ~guess c in
  Format.printf "%8s %10s@." "cycle" "V(out)";
  let v0 = Sim.Tran.value_at res "out" 0.0 in
  for k = 0 to n_cycles - 1 do
    let t = (float_of_int k +. 0.95) *. t_clk in
    Format.printf "%8d %10.4f@." k (Sim.Tran.value_at res "out" t)
  done;
  let v_end = Sim.Tran.value_at res "out" ((float_of_int n_cycles -. 0.05) *. t_clk) in
  let per_cycle = (v_end -. v0) /. float_of_int (n_cycles - 1) in
  let ideal = vin_step *. cs /. ci in
  Format.printf
    "@.measured step per cycle %.2f mV (ideal +Vin Cs/Ci = %.2f mV)@."
    (per_cycle *. 1e3) (ideal *. 1e3)

(* Topology extensibility: the same spec record, testbench and parasitic
   interfaces drive a different design plan - a two-stage Miller OTA - and
   the simple 5T OTA baseline.  This is the paper's "hierarchy simplifies
   the addition of new topologies" point.

     dune exec examples/miller_ota.exe *)

let () =
  let proc = Technology.Process.c06 in
  let kind = Device.Model.Bsim_lite in
  let spec =
    { Comdiac.Spec.paper_ota with
      Comdiac.Spec.icmr = (1.2, 2.1); gbw = 25e6; phase_margin = 60.0 }
  in
  Format.printf "specification: %a@.@." Comdiac.Spec.pp spec;

  let miller =
    Comdiac.Two_stage.size ~proc ~kind ~spec
      ~parasitics:Comdiac.Parasitics.single_fold
  in
  Format.printf "%a@.@." Comdiac.Two_stage.pp_design miller;
  let tb = Comdiac.Testbench.make ~proc ~kind ~spec miller.Comdiac.Two_stage.amp in
  Format.printf "two-stage Miller OTA, measured:@.%a@.@."
    Comdiac.Performance.pp
    (Comdiac.Testbench.performance tb);

  let five_t =
    Comdiac.Simple_ota.size ~proc ~kind
      ~spec:{ spec with Comdiac.Spec.gbw = 20e6 }
      ~parasitics:Comdiac.Parasitics.single_fold
  in
  let tb5 =
    Comdiac.Testbench.make ~proc ~kind
      ~spec:{ spec with Comdiac.Spec.gbw = 20e6 }
      five_t.Comdiac.Simple_ota.amp
  in
  Format.printf "simple 5T OTA baseline, measured:@.%a@."
    Comdiac.Performance.pp
    (Comdiac.Testbench.performance tb5)

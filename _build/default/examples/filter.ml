(* Using the synthesized OTA in a system: a two-pole gm-C low-pass filter.

   An OTA (unlike an op-amp) has a high-impedance output, so the natural
   filter style is gm-C: a capacitively loaded unity-feedback OTA is a
   first-order section with pole gm1 / (2 pi C); cascading two sections
   gives a -40 dB/decade low-pass.  Both sections are the full
   transistor-level folded cascode from the sizing tool.

     dune exec examples/filter.exe *)

module El = Netlist.Element
module Ckt = Netlist.Circuit

(* Instantiate the amp's elements with every net renamed, so two copies
   coexist in one circuit. *)
let add_renamed amp rename c =
  let ren n = if n = El.ground then n else rename n in
  List.fold_left
    (fun c e ->
      let e' =
        match e with
        | El.Mos { dev; d; g; s; b } ->
          El.Mos
            { dev = { dev with Device.Mos.name = rename dev.Device.Mos.name };
              d = ren d; g = ren g; s = ren s; b = ren b }
        | El.Resistor { name; p; n; r } ->
          El.Resistor { name = rename name; p = ren p; n = ren n; r }
        | El.Capacitor { name; p; n; c } ->
          El.Capacitor { name = rename name; p = ren p; n = ren n; c }
        | El.Isource { name; p; n; i } ->
          El.Isource { name = rename name; p = ren p; n = ren n; i }
        | El.Vsource { name; p; n; v } ->
          El.Vsource { name = rename name; p = ren p; n = ren n; v }
      in
      Ckt.add c e')
    c
    (let base = Ckt.create ~title:"amp" in
     Ckt.elements (Comdiac.Amp.add_to amp base))

let () =
  let proc = Technology.Process.c06 in
  let kind = Device.Model.Bsim_lite in
  let spec = Comdiac.Spec.paper_ota in
  let design =
    Comdiac.Folded_cascode.size ~proc ~kind ~spec
      ~parasitics:Comdiac.Parasitics.single_fold
  in
  let amp = design.Comdiac.Folded_cascode.amp in
  let gm1 = amp.Comdiac.Amp.gm1 in
  let f0 = 1e6 in
  let c_sect = gm1 /. (2.0 *. Float.pi *. f0) in
  Format.printf
    "gm-C LP: two cascaded follower sections, gm1 = %s, section C = %s, \
     section pole = %s@."
    (Phys.Units.to_si_string "S" gm1)
    (Phys.Units.to_si_string "F" c_sect)
    (Phys.Units.to_si_string "Hz" f0);
  let vmid = Comdiac.Spec.output_quiescent spec in
  let prefix p net =
    match net with
    | "vdd" -> "vdd" (* shared supply *)
    | _ -> p ^ net
  in
  let c = Ckt.create ~title:"gm-C lowpass" in
  let c = add_renamed amp (prefix "a_") c in
  let c = add_renamed amp (prefix "b_") c in
  let c = Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:El.ground (El.dc_source spec.Comdiac.Spec.vdd) in
  let c = Ckt.add_vsource c ~name:"in" ~p:"a_inp" ~n:El.ground (El.ac_source ~dc:vmid 1.0) in
  (* section 1: follower with C load *)
  let c = Ckt.add_vsource c ~name:"fb1" ~p:"a_inn" ~n:"a_out" (El.dc_source 0.0) in
  let c = Ckt.add_capacitor c ~name:"1" ~p:"a_out" ~n:El.ground ~c:c_sect in
  (* section 2 *)
  let c = Ckt.add_vsource c ~name:"lk" ~p:"b_inp" ~n:"a_out" (El.dc_source 0.0) in
  let c = Ckt.add_vsource c ~name:"fb2" ~p:"b_inn" ~n:"b_out" (El.dc_source 0.0) in
  let c = Ckt.add_capacitor c ~name:"2" ~p:"b_out" ~n:El.ground ~c:c_sect in
  let guess name =
    let strip p n =
      let lp = String.length p in
      if String.length n > lp && String.sub n 0 lp = p then
        Some (String.sub n lp (String.length n - lp))
      else None
    in
    let base =
      match (strip "a_" name, strip "b_" name) with
      | Some n, _ | _, Some n -> n
      | None, None -> name
    in
    match Comdiac.Amp.guess_fn amp ~extra:[ ("vdd", spec.Comdiac.Spec.vdd) ] base with
    | Some v -> Some v
    | None -> Some vmid
  in
  let dc = Sim.Dcop.solve ~guess ~proc ~kind c in
  Format.printf "DC: section outputs %.3f V / %.3f V (target %.3f V)@."
    (Sim.Dcop.voltage dc "a_out") (Sim.Dcop.voltage dc "b_out") vmid;
  let net = Sim.Acs.prepare dc in
  Format.printf "@.%10s %12s@." "freq" "gain (dB)";
  Array.iter
    (fun f ->
      Format.printf "%10s %12.2f@."
        (Phys.Units.to_si_string "Hz" f)
        (Sim.Measure.db (Sim.Measure.magnitude net ~out:"b_out" f)))
    (Phys.Numerics.logspace 1e4 3e7 13);
  (match Sim.Measure.bandwidth_3db net ~out:"b_out" with
   | Some f ->
     Format.printf
       "@.-3 dB at %s (two identical poles at %s give an ideal %.0f kHz)@."
       (Phys.Units.to_si_string "Hz" f)
       (Phys.Units.to_si_string "Hz" f0)
       (f0 *. sqrt (sqrt 2.0 -. 1.0) /. 1e3)
   | None -> Format.printf "no -3 dB point found@.");
  let g3 = Sim.Measure.db (Sim.Measure.magnitude net ~out:"b_out" (3.0 *. f0)) in
  let g30 = Sim.Measure.db (Sim.Measure.magnitude net ~out:"b_out" (30.0 *. f0)) in
  Format.printf "roll-off %.1f dB/decade between 3 f0 and 30 f0 (ideal -40)@."
    (g30 -. g3)

examples/miller_ota.mli:

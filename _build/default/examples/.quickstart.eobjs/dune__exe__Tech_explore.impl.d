examples/tech_explore.ml: Comdiac Device Format List Phys Technology

examples/current_mirror.mli:

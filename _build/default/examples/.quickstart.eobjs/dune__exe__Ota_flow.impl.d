examples/ota_flow.ml: Cairo_layout Comdiac Core Device Format List Out_channel Phys Technology

examples/quickstart.mli:

examples/current_mirror.ml: Cairo_layout Format List Out_channel Technology

examples/miller_ota.ml: Comdiac Device Format Technology

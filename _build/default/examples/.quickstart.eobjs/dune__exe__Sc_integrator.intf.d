examples/sc_integrator.mli:

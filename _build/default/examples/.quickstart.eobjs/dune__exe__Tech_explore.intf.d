examples/tech_explore.mli:

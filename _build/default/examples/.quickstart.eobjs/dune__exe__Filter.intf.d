examples/filter.mli:

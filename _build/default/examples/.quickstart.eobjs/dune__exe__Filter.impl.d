examples/filter.ml: Array Comdiac Device Float Format List Netlist Phys Sim String Technology

examples/ota_flow.mli:

examples/sc_integrator.ml: Comdiac Device Float Format Netlist Phys Sim Technology

examples/quickstart.ml: Comdiac Device Format Netlist Technology

(* Quickstart: size a folded cascode OTA for a specification, verify it by
   simulation, and print the Table-1 style performance record.

     dune exec examples/quickstart.exe *)

let () =
  let proc = Technology.Process.c06 in
  let kind = Device.Model.Bsim_lite in
  (* the paper's specification: 65 MHz GBW into 3 pF at 65 degrees *)
  let spec = Comdiac.Spec.paper_ota in
  Format.printf "specification: %a@.@." Comdiac.Spec.pp spec;

  (* 1. size the amplifier (assuming one fold per transistor, as the
     paper's first sizing pass does) *)
  let design =
    Comdiac.Folded_cascode.size ~proc ~kind ~spec
      ~parasitics:Comdiac.Parasitics.single_fold
  in
  Format.printf "%a@.@." Comdiac.Folded_cascode.pp_design design;

  (* 2. verify by simulation: the testbench nulls the offset, runs AC,
     noise and transient analyses on the in-house MNA simulator *)
  let tb =
    Comdiac.Testbench.make ~proc ~kind ~spec design.Comdiac.Folded_cascode.amp
  in
  let perf = Comdiac.Testbench.performance tb in
  Format.printf "measured performance:@.%a@." Comdiac.Performance.pp perf;

  (* 3. the SPICE view of what was built *)
  let circuit =
    Comdiac.Amp.add_to design.Comdiac.Folded_cascode.amp
      (Netlist.Circuit.create ~title:"quickstart folded cascode")
  in
  Format.printf "@.netlist:@.%s@." (Netlist.Circuit.to_spice circuit)

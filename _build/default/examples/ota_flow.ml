(* The full layout-oriented synthesis flow (paper Fig. 1b) with a visible
   convergence trace: sizing and the layout tool's parasitic-calculation
   mode alternate until the calculated parasitics stop moving, then the
   layout is generated and the extracted netlist verified.

     dune exec examples/ota_flow.exe *)

module FC = Comdiac.Folded_cascode
module Par = Comdiac.Parasitics
module Plan = Cairo_layout.Plan
module Bridge = Core.Layout_bridge

let proc = Technology.Process.c06
let kind = Device.Model.Bsim_lite
let spec = Comdiac.Spec.paper_ota

let show_parasitics label (p : Par.t) =
  Format.printf "  %s:@." label;
  List.iter
    (fun net ->
      let c = Par.node_cap p net in
      if c > 0.0 then
        Format.printf "    %-5s %s@." net (Phys.Units.to_si_string "F" c))
    [ "n1"; "n2"; "n3"; "out"; "tail" ]

let () =
  Format.printf "layout-oriented synthesis of: %a@.@." Comdiac.Spec.pp spec;
  let options = Bridge.default_options in
  (* the loop, written out explicitly so each iteration is visible *)
  let rec loop design parasitics iter =
    Format.printf "iteration %d: sizing done (I1 = %s, cascode L = %s)@." iter
      (Phys.Units.to_si_string "A" design.FC.i1)
      (Phys.Units.to_si_string "m" design.FC.l_casc);
    let report = Bridge.call_layout ~mode:Plan.Parasitic_only proc design options in
    let parasitics' = Bridge.parasitics_of_report report in
    show_parasitics "layout tool reports" parasitics';
    let dist = Par.max_distance parasitics parasitics' in
    Format.printf "  parasitic movement vs previous estimate: %.1f%%@.@."
      (100.0 *. dist);
    if dist < 0.02 || iter >= 8 then (design, iter)
    else
      let design', _ =
        Core.Flow.size_calibrated ~proc ~kind ~spec ~parasitics:parasitics'
      in
      loop design' parasitics' (iter + 1)
  in
  let design0, _ = Core.Flow.size_calibrated ~proc ~kind ~spec ~parasitics:Par.single_fold in
  let design, iters = loop design0 Par.single_fold 1 in
  Format.printf "converged after %d layout-tool call(s); generating layout...@." iters;
  let report = Bridge.call_layout ~mode:Plan.Generation proc design options in
  Format.printf "floorplan %d x %d lambda@." report.Plan.total_w report.Plan.total_h;
  (match report.Plan.cell with
   | Some cell ->
     let path = "ota_layout.svg" in
     Out_channel.with_open_text path (fun oc ->
       output_string oc (Cairo_layout.Render.svg cell));
     Format.printf "wrote %s@." path
   | None -> ());
  (* verify the extracted netlist - the bracketed Table-1 values *)
  let amp_ext = Core.Flow.extracted_amp proc design report in
  let tb_synth = Comdiac.Testbench.make ~proc ~kind ~spec design.FC.amp in
  let tb_ext = Comdiac.Testbench.make ~proc ~kind ~spec amp_ext in
  Format.printf "@.synthesized (extracted):@.%a@." Comdiac.Performance.pp_pair
    ( Comdiac.Testbench.performance tb_synth,
      Comdiac.Testbench.performance tb_ext )

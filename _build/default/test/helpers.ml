(* Shared assertion helpers for the test suites. *)

let check_close ?(rel = 1e-9) ?(abs_tol = 1e-12) msg expected actual =
  if not (Phys.Numerics.close ~rel ~abs_tol expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g (rel %.2g)" msg expected actual
      (Float.abs (expected -. actual)
       /. Float.max 1e-300 (Float.abs expected))

let check_in_range msg lo hi actual =
  if actual < lo || actual > hi then
    Alcotest.failf "%s: %.9g not in [%.9g, %.9g]" msg actual lo hi

let qcheck_cases tests = List.map QCheck_alcotest.to_alcotest tests

let case name f = Alcotest.test_case name `Quick f

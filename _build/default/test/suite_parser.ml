open Helpers
module Pr = Netlist.Parser
module Ckt = Netlist.Circuit
module El = Netlist.Element
module E = Technology.Electrical

let test_parse_value () =
  check_close "plain" 2.5 (Pr.parse_value "2.5");
  check_close ~rel:1e-12 "pico with unit" 3e-12 (Pr.parse_value "3pF");
  check_close ~rel:1e-12 "kilo" 4.7e3 (Pr.parse_value "4.7k");
  check_close ~rel:1e-12 "meg not milli" 1e6 (Pr.parse_value "1meg");
  check_close ~rel:1e-12 "milli" 1e-3 (Pr.parse_value "1m");
  check_close ~rel:1e-12 "micro" 6.5e-6 (Pr.parse_value "6.5u");
  check_close ~rel:1e-12 "exponent" 1.2e7 (Pr.parse_value "1.2e7");
  check_close ~rel:1e-12 "negative" (-0.1) (Pr.parse_value "-0.1");
  check_close ~rel:1e-12 "bare unit" 3.3 (Pr.parse_value "3.3V");
  Alcotest.(check bool) "garbage rejected" true
    (match Pr.parse_value "xyz" with exception Failure _ -> true | _ -> false)

let sample_deck =
  "* test deck\n\
   M1 out in 0 0 nch W=10u L=1u NF=2\n\
   Rload vdd out 10k\n\
   Cload out 0 3p\n\
   Vdd vdd 0 DC 3.3 AC 0\n\
   Iref 0 bias DC 20u\n\
   .end\n"

let test_parse_deck () =
  let c = Pr.parse sample_deck in
  Alcotest.(check string) "title" "test deck" (Ckt.title c);
  Alcotest.(check int) "five elements" 5 (Ckt.element_count c);
  let dev = Ckt.find_mos c "1" in
  check_close ~rel:1e-12 "mos width" 10e-6 dev.Device.Mos.w;
  Alcotest.(check int) "folds" 2 dev.Device.Mos.style.Device.Folding.nf;
  Alcotest.(check bool) "nmos" true (dev.Device.Mos.mtype = E.Nmos);
  check_close ~rel:1e-12 "cap value" 3e-12 (Ckt.total_cap_to_ground c "out")

let test_parse_diffusion_annotations () =
  let deck =
    "* annotated\n\
     M2 d g s b pch W=20u L=0.6u NF=4 AD=12p AS=18p PD=8u PS=14u\n\
     .end\n"
  in
  let c = Pr.parse deck in
  let dev = Ckt.find_mos c "2" in
  match dev.Device.Mos.diffusion with
  | None -> Alcotest.fail "diffusion annotation lost"
  | Some g ->
    check_close ~rel:1e-9 "ad" 12e-12 g.Device.Folding.ad;
    check_close ~rel:1e-9 "ps" 14e-6 g.Device.Folding.ps

let test_parse_errors () =
  let bad_card = "* t\nXfoo a b\n.end\n" in
  Alcotest.(check bool) "unknown card flagged" true
    (match Pr.parse bad_card with
     | exception Pr.Parse_error (2, _) -> true
     | _ -> false);
  let bad_mos = "* t\nM1 d g s\n.end\n" in
  Alcotest.(check bool) "short MOS card flagged" true
    (match Pr.parse bad_mos with
     | exception Pr.Parse_error (2, _) -> true
     | _ -> false)

let test_roundtrip_simple () =
  let c = Pr.parse sample_deck in
  let c2 = Pr.roundtrip c in
  Alcotest.(check int) "element count preserved" (Ckt.element_count c)
    (Ckt.element_count c2);
  Alcotest.(check (list string)) "nodes preserved" (Ckt.nodes c) (Ckt.nodes c2);
  check_close ~rel:1e-6 "mos width preserved" (Ckt.find_mos c "1").Device.Mos.w
    (Ckt.find_mos c2 "1").Device.Mos.w

let test_roundtrip_sized_amp () =
  (* the printed deck of a fully sized OTA parses back with every device *)
  let proc = Technology.Process.c06 in
  let design =
    Comdiac.Folded_cascode.size ~proc ~kind:Device.Model.Bsim_lite
      ~spec:Comdiac.Spec.paper_ota ~parasitics:Comdiac.Parasitics.single_fold
  in
  let c =
    Comdiac.Amp.add_to design.Comdiac.Folded_cascode.amp
      (Ckt.create ~title:"roundtrip")
  in
  let c2 = Pr.roundtrip c in
  Alcotest.(check int) "element count" (Ckt.element_count c) (Ckt.element_count c2);
  List.iter
    (fun (dev, _, _, _, _) ->
      let dev2 = Ckt.find_mos c2 dev.Device.Mos.name in
      check_close ~rel:1e-3
        (dev.Device.Mos.name ^ " width survives round trip")
        dev.Device.Mos.w dev2.Device.Mos.w)
    (Ckt.mos_devices c)

let prop_value_roundtrip =
  QCheck.Test.make ~name:"printed capacitor values reparse" ~count:200
    QCheck.(float_range 1e-15 1e-9)
    (fun c ->
      let circuit =
        Ckt.add_capacitor (Ckt.create ~title:"t") ~name:"x" ~p:"a" ~n:"0" ~c
      in
      let c2 = Pr.roundtrip circuit in
      Phys.Numerics.close ~rel:1e-5 c (Ckt.total_cap_to_ground c2 "a"))

let suite =
  ( "parser",
    [
      case "engineering values" test_parse_value;
      case "basic deck" test_parse_deck;
      case "diffusion annotations" test_parse_diffusion_annotations;
      case "errors carry line numbers" test_parse_errors;
      case "simple round trip" test_roundtrip_simple;
      case "sized amp round trip" test_roundtrip_sized_amp;
    ]
    @ qcheck_cases [ prop_value_roundtrip ] )

test/helpers.ml: Alcotest Float List Phys QCheck_alcotest

test/suite_linalg.ml: Alcotest Array Complex Float Helpers Linalg QCheck Random

test/suite_sizing.ml: Alcotest Comdiac Device Float Helpers Lazy List QCheck Sim Technology

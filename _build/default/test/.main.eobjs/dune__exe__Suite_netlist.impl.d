test/suite_netlist.ml: Alcotest Device Format Helpers Netlist String Technology

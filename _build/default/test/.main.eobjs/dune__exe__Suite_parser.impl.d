test/suite_parser.ml: Alcotest Comdiac Device Helpers List Netlist Phys QCheck Technology

test/suite_statistics.ml: Alcotest Comdiac Device Helpers Lazy List Sim Technology

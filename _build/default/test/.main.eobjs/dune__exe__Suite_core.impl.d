test/suite_core.ml: Alcotest Cairo_layout Comdiac Core Device Float Helpers Lazy List Netlist String Technology

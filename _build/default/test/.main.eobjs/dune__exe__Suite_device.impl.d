test/suite_device.ml: Alcotest Device Float Helpers QCheck Technology

test/suite_sim.ml: Alcotest Comdiac Complex Device Float Helpers List Netlist Phys QCheck Sim Technology

test/main.mli:

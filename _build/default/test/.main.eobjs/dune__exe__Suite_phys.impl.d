test/suite_phys.ml: Alcotest Array Float Gen Helpers List Phys QCheck

test/suite_layout.ml: Alcotest Array Cairo_layout Device Format Helpers List Phys Printf QCheck String Technology

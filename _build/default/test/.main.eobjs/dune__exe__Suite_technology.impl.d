test/suite_technology.ml: Alcotest Char Helpers List Technology

open Helpers
module F = Device.Folding
module M = Device.Model
module P = Technology.Process
module E = Technology.Electrical

let nmos = P.c06.P.electrical.E.nmos
let pmos = P.c06.P.electrical.E.pmos

(* --- folding / reduction factor ------------------------------------- *)

let test_reduction_factor_values () =
  check_close "nf=2 internal" 0.5 (F.reduction_factor F.Even_internal 2);
  check_close "nf=8 internal" 0.5 (F.reduction_factor F.Even_internal 8);
  check_close "nf=2 external" 1.0 (F.reduction_factor F.Even_external 2);
  check_close "nf=4 external" 0.75 (F.reduction_factor F.Even_external 4);
  check_close "nf=1 odd" 1.0 (F.reduction_factor F.Odd 1);
  check_close "nf=3 odd" (2.0 /. 3.0) (F.reduction_factor F.Odd 3);
  check_close "nf=5 odd" 0.6 (F.reduction_factor F.Odd 5)

let test_case_of () =
  Alcotest.(check bool) "even drain internal" true
    (F.case_of ~nf:4 ~drain_internal:true ~drain:true = F.Even_internal);
  Alcotest.(check bool) "even source external" true
    (F.case_of ~nf:4 ~drain_internal:true ~drain:false = F.Even_external);
  Alcotest.(check bool) "odd always odd" true
    (F.case_of ~nf:3 ~drain_internal:true ~drain:true = F.Odd)

let prop_geometry_matches_formula =
  QCheck.Test.make
    ~name:"strip geometry reproduces the paper's F factor (Eq. 1)" ~count:300
    QCheck.(triple (int_range 1 24) (float_range 1.0 400.0) bool)
    (fun (nf, w_um, drain_internal) ->
      let w = w_um *. 1e-6 in
      let style = { F.nf; drain_internal } in
      let check drain =
        let weff = F.effective_width P.c06 ~w style ~drain in
        let case = F.case_of ~nf ~drain_internal ~drain in
        let f = F.reduction_factor case nf in
        Float.abs (weff -. (f *. w)) < 1e-12
      in
      check true && check false)

let prop_strip_conservation =
  QCheck.Test.make ~name:"drain + source strips = nf + 1" ~count:200
    QCheck.(pair (int_range 1 24) bool)
    (fun (nf, drain_internal) ->
      let g = F.geometry P.c06 ~w:10e-6 { F.nf; drain_internal } in
      g.F.drain_strips + g.F.source_strips = nf + 1)

let test_folding_reduces_drain_area () =
  let w = 50e-6 in
  let g1 = F.geometry P.c06 ~w F.default in
  let g4 = F.geometry P.c06 ~w { F.nf = 4; drain_internal = true } in
  Alcotest.(check bool) "ad shrinks with folding" true (g4.F.ad < g1.F.ad);
  Alcotest.(check bool) "pd shrinks with folding" true (g4.F.pd < g1.F.pd)

let test_stack_pitch_grows () =
  let p1 = F.stack_pitch P.c06 ~l:0.6e-6 { F.nf = 1; drain_internal = true } in
  let p4 = F.stack_pitch P.c06 ~l:0.6e-6 { F.nf = 4; drain_internal = true } in
  Alcotest.(check bool) "pitch grows with folds" true (p4 > p1)

(* --- MOS model ------------------------------------------------------- *)

let bias ?(vbs = 0.0) vgs vds = { M.vgs; vds; vbs }

let test_level1_square_law () =
  (* strong inversion saturation: ids ratio between two overdrive values
     approximates (veff1/veff2)^2 *)
  let w = 10e-6 and l = 1e-6 in
  let vth = M.threshold M.Level1 nmos ~l ~vbs:0.0 in
  let i1 = M.drain_current M.Level1 nmos ~w ~l (bias (vth +. 0.2) 2.0) in
  let i2 = M.drain_current M.Level1 nmos ~w ~l (bias (vth +. 0.4) 2.0) in
  check_in_range "square law ratio" 3.4 4.3 (i2 /. i1)

let test_cutoff_current_small () =
  let w = 10e-6 and l = 1e-6 in
  let i = M.drain_current M.Level1 nmos ~w ~l (bias 0.2 2.0) in
  Alcotest.(check bool) "cutoff leakage tiny" true (i < 1e-10 && i > 0.0)

let test_triode_vs_saturation () =
  let w = 10e-6 and l = 1e-6 in
  let e_tri = M.evaluate M.Level1 nmos ~w ~l (bias 1.5 0.05) in
  let e_sat = M.evaluate M.Level1 nmos ~w ~l (bias 1.5 2.5) in
  Alcotest.(check string) "triode region" "triode"
    (M.region_to_string e_tri.M.region);
  Alcotest.(check string) "saturation region" "saturation"
    (M.region_to_string e_sat.M.region);
  Alcotest.(check bool) "gds larger in triode" true (e_tri.M.gds > e_sat.M.gds)

let test_continuity_at_vdsat () =
  let w = 10e-6 and l = 1e-6 in
  let e = M.evaluate M.Level1 nmos ~w ~l (bias 1.5 1.0) in
  let vdsat = e.M.vdsat in
  let below = M.drain_current M.Level1 nmos ~w ~l (bias 1.5 (vdsat -. 1e-7)) in
  let above = M.drain_current M.Level1 nmos ~w ~l (bias 1.5 (vdsat +. 1e-7)) in
  check_close ~rel:1e-4 "C0 at vdsat" below above

let test_symmetry_negative_vds () =
  let w = 10e-6 and l = 1e-6 in
  let fwd =
    M.drain_current M.Level1 nmos ~w ~l
      { M.vgs = 1.5 -. (-0.3); vds = 0.3; vbs = 0.0 -. (-0.3) }
  in
  let rev = M.drain_current M.Level1 nmos ~w ~l { M.vgs = 1.5; vds = -0.3; vbs = 0.0 } in
  check_close ~rel:1e-9 "source/drain swap" (-.fwd) rev

let test_body_effect () =
  let l = 1e-6 in
  let vth0 = M.threshold M.Level1 nmos ~l ~vbs:0.0 in
  let vth_rev = M.threshold M.Level1 nmos ~l ~vbs:(-1.5) in
  Alcotest.(check bool) "reverse body bias raises vth" true (vth_rev > vth0);
  check_in_range "vth0 c06" 0.70 0.80 vth0

let test_bsim_lite_degradation () =
  let w = 10e-6 and l = 0.6e-6 in
  let b = bias 2.0 2.5 in
  let i_l1 = M.drain_current M.Level1 nmos ~w ~l b in
  let i_bl = M.drain_current M.Bsim_lite nmos ~w ~l b in
  Alcotest.(check bool) "bsim-lite carries less current at high veff" true
    (i_bl < i_l1)

let test_bsim_lite_vth_rolloff () =
  let vth_short = M.threshold M.Bsim_lite nmos ~l:0.6e-6 ~vbs:0.0 in
  let vth_long = M.threshold M.Bsim_lite nmos ~l:5e-6 ~vbs:0.0 in
  Alcotest.(check bool) "short channel lowers vth" true (vth_short < vth_long)

let test_w_for_current_inversion () =
  let l = 1.2e-6 in
  let b = bias 1.2 1.5 in
  let target = 100e-6 in
  let w = M.w_for_current M.Level1 nmos ~l ~ids:target b in
  let back = M.drain_current M.Level1 nmos ~w ~l b in
  check_close ~rel:1e-9 "w inversion" target back

let test_vgs_for_current_inversion () =
  let w = 20e-6 and l = 1.2e-6 in
  let target = 50e-6 in
  let vgs = M.vgs_for_current M.Level1 nmos ~w ~l ~ids:target ~vds:1.5 ~vbs:0.0 in
  let back = M.drain_current M.Level1 nmos ~w ~l (bias vgs 1.5) in
  check_close ~rel:1e-6 "vgs inversion" target back

let prop_monotone_in_w =
  QCheck.Test.make ~name:"ids monotone increasing in W" ~count:200
    QCheck.(triple (float_range 1.0 100.0) (float_range 1.0 100.0)
              (float_range 0.9 2.5))
    (fun (w1_um, w2_um, vgs) ->
      QCheck.assume (Float.abs (w1_um -. w2_um) > 1e-3);
      let l = 1e-6 in
      let i w_um =
        M.drain_current M.Level1 nmos ~w:(w_um *. 1e-6) ~l (bias vgs 1.5)
      in
      (w1_um < w2_um) = (i w1_um < i w2_um))

let prop_monotone_in_vgs =
  QCheck.Test.make ~name:"ids monotone increasing in vgs" ~count:200
    QCheck.(pair (float_range 0.0 2.5) (float_range 0.0 2.5))
    (fun (v1, v2) ->
      QCheck.assume (Float.abs (v1 -. v2) > 1e-4);
      let i v = M.drain_current M.Level1 nmos ~w:10e-6 ~l:1e-6 (bias v 1.5) in
      (v1 < v2) = (i v1 < i v2))

let prop_gm_positive_sat =
  QCheck.Test.make ~name:"gm, gds positive in saturation" ~count:200
    QCheck.(pair (float_range 1.0 2.5) (float_range 1.0 3.0))
    (fun (vgs, vds) ->
      let e = M.evaluate M.Bsim_lite nmos ~w:10e-6 ~l:1e-6 (bias vgs vds) in
      e.M.gm > 0.0 && e.M.gds > 0.0)

(* --- capacitances ----------------------------------------------------- *)

let test_meyer_saturation () =
  let w = 10e-6 and l = 1e-6 in
  let c = Device.Caps.meyer nmos ~w ~l ~nf:1 ~region:M.Saturation in
  let cox_wl = E.cox nmos *. w *. l in
  check_close ~rel:1e-9 "cgs sat"
    ((2.0 /. 3.0 *. cox_wl) +. (nmos.E.cgso *. w)) c.Device.Caps.cgs;
  check_close ~rel:1e-9 "cgd sat overlap only" (nmos.E.cgdo *. w) c.Device.Caps.cgd

let test_junction_bias_dependence () =
  let j v =
    Device.Caps.junction_cap ~cj:nmos.E.cj ~cjsw:nmos.E.cjsw ~mj:nmos.E.mj
      ~mjsw:nmos.E.mjsw ~pb:nmos.E.pb ~area:1e-11 ~perim:1e-5 ~vrev:v
  in
  Alcotest.(check bool) "reverse bias shrinks junction cap" true (j 2.0 < j 0.0);
  check_close ~rel:1e-12 "forward clamped to zero-bias" (j 0.0) (j (-0.5))

let test_folding_reduces_cdb () =
  let mk nf =
    Device.Mos.make ~name:"m" ~mtype:E.Nmos ~w:50e-6 ~l:1e-6
      ~style:{ F.nf; drain_internal = true } ()
  in
  let op nf =
    Device.Op.compute P.c06 M.Level1 (mk nf) (bias 1.2 1.5)
  in
  let c1 = (op 1).Device.Op.caps.Device.Caps.cdb in
  let c4 = (op 4).Device.Op.caps.Device.Caps.cdb in
  Alcotest.(check bool) "folding reduces drain junction cap" true (c4 < c1);
  check_in_range "reduction roughly toward F=0.5 plus perimeter effects"
    0.35 0.85 (c4 /. c1)

let test_op_ft_gain () =
  let dev = Device.Mos.make ~name:"m" ~mtype:E.Nmos ~w:20e-6 ~l:0.6e-6 () in
  let op = Device.Op.compute P.c06 M.Bsim_lite dev (bias 1.1 1.5) in
  check_in_range "ft plausible" 1e8 5e10 (Device.Op.ft op);
  check_in_range "intrinsic gain plausible" 5.0 500.0 (Device.Op.intrinsic_gain op)

let test_pmos_op () =
  let dev = Device.Mos.make ~name:"mp" ~mtype:E.Pmos ~w:30e-6 ~l:1e-6 () in
  let op = Device.Op.compute P.c06 M.Level1 dev (bias 1.2 1.5) in
  Alcotest.(check bool) "pmos conducts with internal-positive bias" true
    (op.Device.Op.eval.M.ids > 1e-6)

let test_grid_snap () =
  let dev =
    Device.Mos.make ~name:"m" ~mtype:E.Nmos ~w:10.05e-6 ~l:0.73e-6
      ~style:{ F.nf = 2; drain_internal = true } ()
  in
  let s = Device.Mos.snap_to_grid P.c06 dev in
  (* per-finger width 5.025 um -> 17 lambda = 5.1 um -> W = 10.2 um *)
  check_close ~rel:1e-9 "snapped W" 10.2e-6 s.Device.Mos.w;
  check_close ~rel:1e-9 "snapped L" 0.9e-6 s.Device.Mos.l;
  Alcotest.(check bool) "snapping changed W" true (s.Device.Mos.w <> dev.Device.Mos.w)

(* --- noise ------------------------------------------------------------ *)

let test_noise_corner () =
  let gm = 1e-3 and ids = 100e-6 and l = 1e-6 in
  let fc = Device.Noise.corner_frequency nmos ~l ~ids ~gm in
  Alcotest.(check bool) "corner positive" true (fc > 0.0);
  let at_corner =
    Device.Noise.flicker_current_psd nmos ~l ~ids ~freq:fc
  in
  check_close ~rel:1e-9 "flicker equals thermal at corner"
    (Device.Noise.thermal_current_psd gm) at_corner

let test_flicker_one_over_f () =
  let f1 = Device.Noise.flicker_current_psd nmos ~l:1e-6 ~ids:1e-4 ~freq:10.0 in
  let f2 = Device.Noise.flicker_current_psd nmos ~l:1e-6 ~ids:1e-4 ~freq:100.0 in
  check_close ~rel:1e-9 "1/f slope" 10.0 (f1 /. f2)

let test_thermal_magnitude () =
  (* 8kTgm/3 at gm = 1 mS: ~1.1e-23 A^2/Hz *)
  check_in_range "thermal psd" 0.9e-23 1.3e-23
    (Device.Noise.thermal_current_psd 1e-3)

let suite =
  ( "device",
    [
      case "F factor values (Fig. 2)" test_reduction_factor_values;
      case "diffusion case selection" test_case_of;
      case "folding reduces drain area" test_folding_reduces_drain_area;
      case "stack pitch grows with folds" test_stack_pitch_grows;
      case "level1 square law" test_level1_square_law;
      case "cutoff leakage" test_cutoff_current_small;
      case "triode vs saturation" test_triode_vs_saturation;
      case "continuity at vdsat" test_continuity_at_vdsat;
      case "source/drain symmetry" test_symmetry_negative_vds;
      case "body effect" test_body_effect;
      case "bsim-lite mobility degradation" test_bsim_lite_degradation;
      case "bsim-lite vth rolloff" test_bsim_lite_vth_rolloff;
      case "W inversion" test_w_for_current_inversion;
      case "Vgs inversion" test_vgs_for_current_inversion;
      case "meyer caps in saturation" test_meyer_saturation;
      case "junction bias dependence" test_junction_bias_dependence;
      case "folding reduces Cdb" test_folding_reduces_cdb;
      case "operating point ft/gain" test_op_ft_gain;
      case "pmos operating point" test_pmos_op;
      case "grid snapping" test_grid_snap;
      case "noise corner" test_noise_corner;
      case "flicker 1/f slope" test_flicker_one_over_f;
      case "thermal noise magnitude" test_thermal_magnitude;
    ]
    @ qcheck_cases
        [
          prop_geometry_matches_formula;
          prop_strip_conservation;
          prop_monotone_in_w;
          prop_monotone_in_vgs;
          prop_gm_positive_sat;
        ] )

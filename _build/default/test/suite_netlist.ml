open Helpers
module Ckt = Netlist.Circuit
module El = Netlist.Element
module E = Technology.Electrical

let sample () =
  let dev = Device.Mos.make ~name:"1" ~mtype:E.Nmos ~w:10e-6 ~l:1e-6 () in
  Ckt.create ~title:"sample"
  |> fun c -> Ckt.add_vsource c ~name:"dd" ~p:"vdd" ~n:"0" (El.dc_source 3.3)
  |> fun c -> Ckt.add_mos c ~dev ~d:"out" ~g:"in" ~s:"0" ~b:"0"
  |> fun c -> Ckt.add_resistor c ~name:"l" ~p:"vdd" ~n:"out" ~r:10e3
  |> fun c -> Ckt.add_capacitor c ~name:"l" ~p:"out" ~n:"0" ~c:1e-12

let test_nodes () =
  let c = sample () in
  Alcotest.(check (list string)) "nodes sorted, no ground"
    [ "in"; "out"; "vdd" ] (Ckt.nodes c)

let test_mos_listing () =
  let c = sample () in
  match Ckt.mos_devices c with
  | [ (dev, d, g, s, b) ] ->
    Alcotest.(check string) "name" "1" dev.Device.Mos.name;
    Alcotest.(check (list string)) "terminals" [ "out"; "in"; "0"; "0" ]
      [ d; g; s; b ]
  | _ -> Alcotest.fail "expected exactly one mos"

let test_find_and_update () =
  let c = sample () in
  let dev = Ckt.find_mos c "1" in
  check_close "found W" 10e-6 dev.Device.Mos.w;
  let c2 = Ckt.update_mos "1" (fun d -> { d with Device.Mos.w = 42e-6 }) c in
  check_close "updated W" 42e-6 (Ckt.find_mos c2 "1").Device.Mos.w;
  (* original untouched *)
  check_close "persistent original" 10e-6 (Ckt.find_mos c "1").Device.Mos.w;
  Alcotest.check_raises "missing mos" Not_found (fun () ->
    ignore (Ckt.find_mos c "zz"))

let test_node_caps () =
  let c = sample () in
  check_close "initial cap" 1e-12 (Ckt.total_cap_to_ground c "out");
  let c2 = Ckt.add_node_cap c ~name:"par" ~node:"out" ~c:0.5e-12 in
  check_close "accumulated" 1.5e-12 (Ckt.total_cap_to_ground c2 "out");
  (* non-positive parasitics ignored *)
  let c3 = Ckt.add_node_cap c2 ~name:"zero" ~node:"out" ~c:0.0 in
  Alcotest.(check int) "no element added" (Ckt.element_count c2)
    (Ckt.element_count c3)

let test_spice_output () =
  let c = sample () in
  let s = Ckt.to_spice c in
  let has needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title" true (has "* sample");
  Alcotest.(check bool) "mos card" true (has "M1 out in 0 0 nch");
  Alcotest.(check bool) "resistor card" true (has "Rl vdd out");
  Alcotest.(check bool) "end card" true (has ".end")

let test_source_kinds () =
  let s = El.ac_source ~dc:1.0 0.5 in
  check_close "ac dc" 1.0 s.El.dc;
  check_close "ac mag" 0.5 s.El.ac;
  let w = El.wave_source ~dc:0.2 (fun t -> 2.0 *. t) in
  (match w.El.wave with
   | Some f -> check_close "wave eval" 4.0 (f 2.0)
   | None -> Alcotest.fail "wave missing")

let test_spice_diffusion_annotation () =
  let geom = Device.Folding.geometry Technology.Process.c06 ~w:10e-6
      { Device.Folding.nf = 2; drain_internal = true } in
  let dev =
    Device.Mos.make ~diffusion:geom ~name:"x" ~mtype:E.Pmos ~w:10e-6 ~l:1e-6 ()
  in
  let card = Format.asprintf "%a" El.pp_spice
      (El.Mos { dev; d = "d"; g = "g"; s = "s"; b = "b" }) in
  let has needle =
    let nl = String.length needle and sl = String.length card in
    let rec go i = i + nl <= sl && (String.sub card i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "AD printed" true (has "AD=");
  Alcotest.(check bool) "pch model" true (has "pch")

let suite =
  ( "netlist",
    [
      case "node collection" test_nodes;
      case "mos listing" test_mos_listing;
      case "find and update mos" test_find_and_update;
      case "parasitic node caps" test_node_caps;
      case "spice deck output" test_spice_output;
      case "source constructors" test_source_kinds;
      case "diffusion annotation in spice" test_spice_diffusion_annotation;
    ] )

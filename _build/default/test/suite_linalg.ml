open Helpers
module R = Linalg.Real
module C = Linalg.Cx

let test_identity_solve () =
  let a = R.identity 4 in
  let b = [| 1.0; 2.0; 3.0; 4.0 |] in
  let x = R.solve a b in
  Array.iteri (fun i v -> check_close "identity solve" b.(i) v) x

let test_known_system () =
  (* [[2,1],[1,3]] x = [3,5]  =>  x = [4/5, 7/5] *)
  let a = R.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = R.solve a [| 3.0; 5.0 |] in
  check_close "x0" 0.8 x.(0);
  check_close "x1" 1.4 x.(1)

let test_pivoting () =
  (* zero leading pivot requires a row swap *)
  let a = R.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = R.solve a [| 2.0; 3.0 |] in
  check_close "swap x0" 3.0 x.(0);
  check_close "swap x1" 2.0 x.(1)

let test_singular () =
  let a = R.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match R.solve a [| 1.0; 1.0 |] with
  | exception Linalg.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_matmul_identity () =
  let a = R.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let p = R.matmul a (R.identity 2) in
  check_close "a*I = a" 4.0 (R.get p 1 1);
  check_close "a*I = a (0,1)" 2.0 (R.get p 0 1)

let test_transpose () =
  let a = R.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = R.transpose a in
  Alcotest.(check int) "rows" 3 (R.rows t);
  check_close "t(2,1)" 6.0 (R.get t 2 1)

let test_complex_solve () =
  (* (1 + j) x = 2  =>  x = 1 - j *)
  let a = C.of_arrays [| [| { Complex.re = 1.0; im = 1.0 } |] |] in
  let x = C.solve a [| { Complex.re = 2.0; im = 0.0 } |] in
  check_close "re" 1.0 x.(0).Complex.re;
  check_close "im" (-1.0) x.(0).Complex.im

let test_complex_rc () =
  (* voltage divider: series R, shunt 1/(jwC): H = 1/(1 + jwRC) *)
  let r = 1e3 and c = 1e-9 and w = 1e6 in
  let g = 1.0 /. r in
  let yc = { Complex.re = 0.0; im = w *. c } in
  let y = C.of_arrays [| [| Complex.add { Complex.re = g; im = 0.0 } yc |] |] in
  let x = C.solve y [| { Complex.re = g; im = 0.0 } |] in
  let expect = Complex.div Complex.one { Complex.re = 1.0; im = w *. r *. c } in
  check_close ~rel:1e-9 "rc re" expect.Complex.re x.(0).Complex.re;
  check_close ~rel:1e-9 "rc im" expect.Complex.im x.(0).Complex.im

let random_spd_system n seed =
  (* diagonally dominant random system: always solvable *)
  let st = Random.State.make [| seed |] in
  let a = R.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      R.set a i j (Random.State.float st 2.0 -. 1.0)
    done;
    R.set a i i (float_of_int n +. Random.State.float st 1.0)
  done;
  let b = Array.init n (fun _ -> Random.State.float st 10.0 -. 5.0) in
  (a, b)

let prop_lu_residual =
  QCheck.Test.make ~name:"LU solve residual small on random dominant systems"
    ~count:100
    QCheck.(pair (int_range 1 20) (int_range 0 10000))
    (fun (n, seed) ->
      let a, b = random_spd_system n seed in
      let x = R.solve a b in
      R.residual_norm a x b < 1e-8)

let prop_matvec_linear =
  QCheck.Test.make ~name:"matvec is linear" ~count:100
    QCheck.(triple (int_range 1 8) (int_range 0 1000) (float_range (-3.0) 3.0))
    (fun (n, seed, k) ->
      let a, b = random_spd_system n seed in
      let scaled = R.matvec a (Array.map (fun v -> k *. v) b) in
      let plain = R.matvec a b in
      Array.for_all2
        (fun s p -> Float.abs (s -. (k *. p)) < 1e-6 *. (1.0 +. Float.abs s))
        scaled plain)

let suite =
  ( "linalg",
    [
      case "identity solve" test_identity_solve;
      case "2x2 known system" test_known_system;
      case "partial pivoting" test_pivoting;
      case "singular detection" test_singular;
      case "matmul with identity" test_matmul_identity;
      case "transpose" test_transpose;
      case "complex 1x1 solve" test_complex_solve;
      case "complex RC divider" test_complex_rc;
    ]
    @ qcheck_cases [ prop_lu_residual; prop_matvec_linear ] )

open Helpers

let test_bisect () =
  let root = Phys.Numerics.bisect ~f:(fun x -> x *. x -. 2.0) 0.0 2.0 in
  check_close ~rel:1e-9 "sqrt 2" (sqrt 2.0) root

let test_brent () =
  let root = Phys.Numerics.brent ~f:(fun x -> cos x -. x) 0.0 1.0 in
  check_close ~rel:1e-9 "dottie number" 0.7390851332151607 root

let test_brent_endpoint_root () =
  let root = Phys.Numerics.brent ~f:(fun x -> x) 0.0 1.0 in
  check_close ~abs_tol:1e-12 "root at endpoint" 0.0 root

let test_brent_no_bracket () =
  Alcotest.check_raises "no sign change"
    (Phys.Numerics.No_convergence "brent: no sign change on [1, 2]")
    (fun () -> ignore (Phys.Numerics.brent ~f:(fun x -> x) 1.0 2.0))

let test_secant () =
  let root = Phys.Numerics.secant ~f:(fun x -> x *. x *. x -. 8.0) 1.0 3.0 in
  check_close ~rel:1e-8 "cube root of 8" 2.0 root

let test_fixed_point () =
  let x = Phys.Numerics.fixed_point ~f:(fun x -> cos x) 1.0 in
  check_close ~rel:1e-7 "cos fixed point" 0.7390851332151607 x

let test_monotonic_search () =
  (* target outside the initial bracket on both sides *)
  let x = Phys.Numerics.monotonic_search ~f:(fun x -> x *. x) ~target:100.0 0.1 1.0 in
  check_close ~rel:1e-6 "expand above" 10.0 x;
  let x = Phys.Numerics.monotonic_search ~f:(fun x -> x *. x) ~target:1e-4 1.0 2.0 in
  check_close ~rel:1e-6 "shrink below" 1e-2 x

let test_simpson () =
  let v = Phys.Numerics.simpson ~f:sin 0.0 Float.pi in
  check_close ~rel:1e-8 "integral of sin" 2.0 v

let test_integrate_log () =
  (* integral of 1/x from 1 to e^3 is 3 *)
  let v = Phys.Numerics.integrate_log ~f:(fun x -> 1.0 /. x) 1.0 (exp 3.0) in
  check_close ~rel:1e-6 "1/x over log range" 3.0 v

let test_logspace () =
  let a = Phys.Numerics.logspace 1.0 1000.0 4 in
  check_close "first" 1.0 a.(0);
  check_close ~rel:1e-12 "second" 10.0 a.(1);
  check_close ~rel:1e-12 "last" 1000.0 a.(3)

let test_interp () =
  let pts = [| (0.0, 0.0); (1.0, 10.0); (2.0, 0.0) |] in
  check_close "interp mid" 5.0 (Phys.Numerics.interp_linear pts 0.5);
  check_close "interp clamp low" 0.0 (Phys.Numerics.interp_linear pts (-1.0));
  check_close "interp clamp high" 0.0 (Phys.Numerics.interp_linear pts 3.0)

let test_si_string () =
  Alcotest.(check string) "mega" "65 MHz" (Phys.Units.to_si_string "Hz" 65e6);
  Alcotest.(check string) "pico" "3 pF" (Phys.Units.to_si_string "F" 3e-12);
  Alcotest.(check string) "zero" "0 V" (Phys.Units.to_si_string "V" 0.0);
  Alcotest.(check string) "milli negative" "-1.5 mV"
    (Phys.Units.to_si_string "V" (-1.5e-3))

let test_thermal_voltage () =
  check_in_range "kT/q at 300K" 0.0258 0.0259
    (Phys.Const.thermal_voltage 300.0)

let prop_brent_finds_roots =
  QCheck.Test.make ~name:"brent finds root of shifted cubic" ~count:200
    QCheck.(float_range (-5.0) 5.0)
    (fun c ->
      (* f(x) = x^3 - c has the unique real root cbrt(c) *)
      let f x = (x *. x *. x) -. c in
      let root = Phys.Numerics.brent ~f (-10.0) 10.0 in
      Float.abs (f root) < 1e-6)

let prop_interp_within_hull =
  QCheck.Test.make ~name:"linear interpolation stays within value hull"
    ~count:200
    QCheck.(pair (float_range 0.0 1.0) (list_of_size (Gen.int_range 2 8) (float_range (-100.0) 100.0)))
    (fun (t, ys) ->
      QCheck.assume (List.length ys >= 2);
      let pts = Array.of_list (List.mapi (fun i y -> (float_of_int i, y)) ys) in
      let n = Array.length pts in
      let x = t *. float_of_int (n - 1) in
      let v = Phys.Numerics.interp_linear pts x in
      let lo = List.fold_left Float.min infinity ys in
      let hi = List.fold_left Float.max neg_infinity ys in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let suite =
  ( "phys",
    [
      case "bisect sqrt2" test_bisect;
      case "brent dottie" test_brent;
      case "brent root at endpoint" test_brent_endpoint_root;
      case "brent requires bracket" test_brent_no_bracket;
      case "secant cube root" test_secant;
      case "fixed point of cos" test_fixed_point;
      case "monotonic search expands bracket" test_monotonic_search;
      case "simpson integral" test_simpson;
      case "log-domain integral" test_integrate_log;
      case "logspace endpoints" test_logspace;
      case "linear interpolation" test_interp;
      case "SI pretty printing" test_si_string;
      case "thermal voltage" test_thermal_voltage;
    ]
    @ qcheck_cases [ prop_brent_finds_roots; prop_interp_within_hull ] )

open Helpers
module Spec = Comdiac.Spec
module Par = Comdiac.Parasitics
module FC = Comdiac.Folded_cascode
module Perf = Comdiac.Performance
module M = Device.Model
module F = Device.Folding
module P = Technology.Process

let proc = P.c06
let kind = M.Bsim_lite
let spec = Spec.paper_ota

(* sizing is deterministic; share one design per parasitic state *)
let design_none = lazy (FC.size ~proc ~kind ~spec ~parasitics:Par.none)
let design_nf1 = lazy (FC.size ~proc ~kind ~spec ~parasitics:Par.single_fold)

let tb_of design =
  Comdiac.Testbench.make ~proc ~kind ~spec design.FC.amp

(* --- spec -------------------------------------------------------------- *)

let test_spec_validate () =
  Alcotest.(check bool) "paper spec valid" true (Spec.validate spec = Ok ());
  let bad = { spec with Spec.gbw = -1.0 } in
  Alcotest.(check bool) "negative gbw rejected" true (Spec.validate bad <> Ok ());
  let bad2 = { spec with Spec.output_range = (0.5, 4.0) } in
  Alcotest.(check bool) "swing above supply rejected" true
    (Spec.validate bad2 <> Ok ())

let test_spec_derived () =
  check_close ~rel:1e-9 "vcm" 0.645 (Spec.input_common_mode spec);
  check_close ~rel:1e-9 "out_q" 1.41 (Spec.output_quiescent spec)

(* --- parasitics --------------------------------------------------------- *)

let test_parasitics_defaults () =
  Alcotest.(check int) "none assumes one fold" 1 (Par.style_of Par.none "P1").F.nf;
  Alcotest.(check int) "single fold assumes one fold" 1
    (Par.style_of Par.single_fold "P1").F.nf;
  check_close "no node caps" 0.0 (Par.node_cap Par.none "out")

let test_parasitics_exact () =
  let style = { F.nf = 6; drain_internal = true } in
  let geom = F.geometry proc ~w:60e-6 style in
  let p =
    Par.exact ~node_caps:[ ("out", 0.1e-12) ] ~styles:[ ("P1", style) ]
      ~drains:[ ("P1", geom) ] ()
  in
  Alcotest.(check int) "style picked up" 6 (Par.style_of p "P1").F.nf;
  Alcotest.(check int) "unknown device defaults" 1 (Par.style_of p "N5").F.nf;
  check_close "node cap" 0.1e-12 (Par.node_cap p "out");
  let dev = Device.Mos.make ~name:"P1" ~mtype:Technology.Electrical.Pmos
      ~w:60e-6 ~l:1e-6 () in
  let dev' = Par.apply_to_device p dev in
  Alcotest.(check int) "device restyled" 6 dev'.Device.Mos.style.F.nf;
  Alcotest.(check bool) "diffusion overridden" true
    (dev'.Device.Mos.diffusion <> None)

let test_parasitics_distance () =
  check_close "self distance" 0.0 (Par.max_distance Par.none Par.none);
  let p1 = Par.exact ~node_caps:[ ("out", 1e-13) ] ~styles:[] ~drains:[] () in
  let p2 = Par.exact ~node_caps:[ ("out", 2e-13) ] ~styles:[] ~drains:[] () in
  check_close ~rel:1e-9 "cap distance" 0.5 (Par.max_distance p1 p2)

(* --- performance record -------------------------------------------------- *)

let test_performance_rows () =
  Alcotest.(check int) "eleven rows (Table 1)" 11 (List.length Perf.row_labels)

(* --- folded cascode sizing ------------------------------------------------ *)

let test_sizing_basic () =
  let d = Lazy.force design_none in
  Alcotest.(check int) "eleven devices" 11
    (List.length (Comdiac.Amp.mos_devices d.FC.amp));
  Alcotest.(check bool) "i2 above i1" true (d.FC.i2 > d.FC.i1);
  Alcotest.(check bool) "currents positive" true (d.FC.i1 > 1e-6);
  List.iter
    (fun dev ->
      Alcotest.(check bool)
        (dev.Device.Mos.name ^ " width above minimum") true
        (dev.Device.Mos.w >= P.wmin proc);
      Alcotest.(check bool)
        (dev.Device.Mos.name ^ " length above minimum") true
        (dev.Device.Mos.l >= P.lmin proc *. 0.999))
    (Comdiac.Amp.mos_devices d.FC.amp);
  List.iter
    (fun (net, v) ->
      check_in_range ("bias " ^ net ^ " inside rails") 0.0 spec.Spec.vdd v)
    d.FC.amp.Comdiac.Amp.bias_sources

let test_sizing_device_names () =
  let d = Lazy.force design_none in
  let names =
    List.map (fun dev -> dev.Device.Mos.name) (Comdiac.Amp.mos_devices d.FC.amp)
  in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    FC.device_names

let test_sizing_all_saturated () =
  let d = Lazy.force design_none in
  let tb = tb_of d in
  let dc = Comdiac.Testbench.operating_point tb in
  List.iter
    (fun (name, op) ->
      let region = op.Device.Op.eval.M.region in
      if region <> M.Saturation then
        Alcotest.failf "%s not saturated: %s" name (M.region_to_string region))
    (Sim.Dcop.device_ops dc)

let test_sizing_currents_realised () =
  (* the DC simulation must carry roughly the planned currents *)
  let d = Lazy.force design_none in
  let tb = tb_of d in
  let dc = Comdiac.Testbench.operating_point tb in
  let ids name = (Sim.Dcop.device_op dc name).Device.Op.eval.M.ids in
  check_close ~rel:0.12 "input branch current" d.FC.i1 (ids "P1");
  check_close ~rel:0.12 "cascode branch current" d.FC.i2 (ids "N2C");
  check_close ~rel:0.12 "tail current" (2.0 *. d.FC.i1) (ids "TAIL")

let test_sizing_responds_to_spec () =
  let d_fast =
    FC.size ~proc ~kind ~spec:{ spec with Spec.gbw = 130e6 }
      ~parasitics:Par.none
  in
  let d = Lazy.force design_none in
  Alcotest.(check bool) "double gbw needs more current" true
    (d_fast.FC.i1 > 1.5 *. d.FC.i1);
  let d_heavy =
    FC.size ~proc ~kind ~spec:{ spec with Spec.cload = 9e-12 }
      ~parasitics:Par.none
  in
  Alcotest.(check bool) "triple load needs more current" true
    (d_heavy.FC.i1 > 2.0 *. d.FC.i1)

let test_sizing_parasitic_awareness () =
  (* assuming single-fold junctions inflates the assumed output cap, so the
     sizing spends more current than the no-parasitic case *)
  let d0 = Lazy.force design_none in
  let d1 = Lazy.force design_nf1 in
  Alcotest.(check bool) "diffusion-aware sizing uses more current" true
    (d1.FC.i1 +. d1.FC.i2 > d0.FC.i1 +. d0.FC.i2)

let test_sizing_rejects_bad_spec () =
  let bad = { spec with Spec.icmr = (0.0, 3.2) } in
  Alcotest.(check bool) "impossible ICMR rejected" true
    (match FC.size ~proc ~kind ~spec:bad ~parasitics:Par.none with
     | exception Failure _ -> true
     | _ -> false)

let test_drain_currents () =
  let d = Lazy.force design_none in
  let currents = FC.drain_currents d in
  Alcotest.(check int) "all devices covered" 11 (List.length currents);
  check_close ~rel:1e-9 "sink carries both branches" (d.FC.i1 +. d.FC.i2)
    (List.assoc "N5" currents);
  List.iter
    (fun name -> ignore (FC.net_of_drain name))
    FC.device_names

(* --- testbench measurements ------------------------------------------------ *)

let test_measurements_plausible () =
  let d = Lazy.force design_none in
  let tb = tb_of d in
  let perf = Comdiac.Testbench.performance tb in
  check_in_range "gain 55..95 dB" 55.0 95.0 perf.Perf.dc_gain_db;
  check_in_range "gbw near target" (0.85 *. spec.Spec.gbw) (1.15 *. spec.Spec.gbw)
    perf.Perf.gbw;
  check_in_range "pm 55..85" 55.0 85.0 perf.Perf.phase_margin;
  check_in_range "cmrr high" 80.0 140.0 perf.Perf.cmrr_db;
  check_in_range "offset sub-mV" (-1e-3) 1e-3 perf.Perf.offset;
  check_in_range "power about 2 mW" 1e-3 4e-3 perf.Perf.power;
  (* slewing cannot exceed the tail current into the load *)
  let sr_max = 1.2 *. d.FC.amp.Comdiac.Amp.tail_current /. spec.Spec.cload in
  check_in_range "slew rate physical" (0.3 *. sr_max) sr_max perf.Perf.slew_rate;
  Alcotest.(check bool) "flicker above thermal at 1 Hz" true
    (perf.Perf.flicker_noise_density > perf.Perf.thermal_noise_density);
  check_in_range "integrated noise" 10e-6 300e-6 perf.Perf.input_noise

let test_power_consistency () =
  let d = Lazy.force design_none in
  let tb = tb_of d in
  let measured = Comdiac.Testbench.power tb in
  let predicted = spec.Spec.vdd *. d.FC.amp.Comdiac.Amp.supply_current in
  check_close ~rel:0.1 "measured vs planned power" predicted measured

(* --- other topologies -------------------------------------------------------- *)

let relaxed =
  { spec with Spec.icmr = (1.2, 2.1); gbw = 25e6; phase_margin = 60.0 }

let test_two_stage () =
  let d =
    Comdiac.Two_stage.size ~proc ~kind ~spec:relaxed
      ~parasitics:Par.single_fold
  in
  let tb = Comdiac.Testbench.make ~proc ~kind ~spec:relaxed d.Comdiac.Two_stage.amp in
  let perf = Comdiac.Testbench.performance tb in
  check_in_range "two-stage gbw" (0.9 *. relaxed.Spec.gbw) (1.1 *. relaxed.Spec.gbw)
    perf.Perf.gbw;
  check_in_range "two-stage pm" 50.0 80.0 perf.Perf.phase_margin;
  Alcotest.(check bool) "two stages give more gain than 5T" true
    (perf.Perf.dc_gain_db > 60.0);
  Alcotest.(check bool) "low output resistance" true
    (perf.Perf.output_resistance < 1e6)

let test_simple_ota () =
  let spec5 = { relaxed with Spec.gbw = 20e6 } in
  let d =
    Comdiac.Simple_ota.size ~proc ~kind ~spec:spec5 ~parasitics:Par.single_fold
  in
  let tb = Comdiac.Testbench.make ~proc ~kind ~spec:spec5 d.Comdiac.Simple_ota.amp in
  let perf = Comdiac.Testbench.performance tb in
  check_in_range "5T gbw" (0.8 *. spec5.Spec.gbw) (1.1 *. spec5.Spec.gbw)
    perf.Perf.gbw;
  check_in_range "5T gain modest" 30.0 55.0 perf.Perf.dc_gain_db;
  Alcotest.(check bool) "single stage very stable" true
    (perf.Perf.phase_margin > 70.0)

let prop_sizing_scales_with_load =
  QCheck.Test.make ~name:"input current grows monotonically with load"
    ~count:8
    QCheck.(pair (float_range 1.0 6.0) (float_range 1.0 6.0))
    (fun (c1, c2) ->
      QCheck.assume (Float.abs (c1 -. c2) > 0.3);
      let size c =
        (FC.size ~proc ~kind ~spec:{ spec with Spec.cload = c *. 1e-12 }
           ~parasitics:Par.none).FC.i1
      in
      (c1 < c2) = (size c1 < size c2))

let suite =
  ( "sizing",
    [
      case "spec validation" test_spec_validate;
      case "spec derived values" test_spec_derived;
      case "parasitics defaults" test_parasitics_defaults;
      case "parasitics exact" test_parasitics_exact;
      case "parasitics distance" test_parasitics_distance;
      case "performance rows" test_performance_rows;
      case "sizing basics" test_sizing_basic;
      case "device names" test_sizing_device_names;
      case "all devices saturated" test_sizing_all_saturated;
      case "planned currents realised" test_sizing_currents_realised;
      case "sizing responds to spec" test_sizing_responds_to_spec;
      case "parasitic awareness" test_sizing_parasitic_awareness;
      case "impossible spec rejected" test_sizing_rejects_bad_spec;
      case "drain currents for EM" test_drain_currents;
      case "measurements plausible" test_measurements_plausible;
      case "power consistency" test_power_consistency;
      case "two-stage topology" test_two_stage;
      case "simple 5T topology" test_simple_ota;
    ]
    @ qcheck_cases [ prop_sizing_scales_with_load ] )

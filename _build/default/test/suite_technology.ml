open Helpers
module P = Technology.Process
module E = Technology.Electrical
module R = Technology.Rules

let test_builtin_lookup () =
  Alcotest.(check string) "find c06" "c06" (P.find "c06").P.name;
  Alcotest.(check string) "find c035" "c035" (P.find "c035").P.name;
  Alcotest.check_raises "unknown process" Not_found (fun () ->
    ignore (P.find "c18"))

let test_rules_positive () =
  List.iter (fun p -> R.check_positive p.P.rules) P.builtin

let test_lambda_conversion () =
  let p = P.c06 in
  check_close "2 lambda" 0.6e-6 (P.um p 2);
  Alcotest.(check int) "roundtrip exact" 5 (P.to_lambda p (P.um p 5));
  (* snapping rounds up *)
  Alcotest.(check int) "ceil" 4 (P.to_lambda p 1.0e-6);
  Alcotest.(check int) "min one grid" 1 (P.to_lambda p 1e-9)

let test_min_sizes () =
  check_close "lmin c06" 0.6e-6 (P.lmin P.c06);
  check_close "wmin c06" 0.9e-6 (P.wmin P.c06);
  check_close "lmin c035" 0.4e-6 (P.lmin P.c035)

let test_cox_kp () =
  let n = P.c06.P.electrical.E.nmos in
  let cox = E.cox n in
  check_in_range "cox c06" 2.0e-3 3.5e-3 cox;
  let kp = E.kp n in
  check_in_range "kp_n c06" 80e-6 200e-6 kp;
  let kp_p = E.kp P.c06.P.electrical.E.pmos in
  Alcotest.(check bool) "kp_n > kp_p" true (kp > kp_p)

let test_sd_lengths () =
  let r = R.scmos in
  Alcotest.(check int) "contacted sd" 5 (R.sd_contacted r);
  Alcotest.(check int) "shared contacted sd" 6 (R.sd_shared_contacted r);
  Alcotest.(check int) "shared plain sd" 3 (R.sd_shared_plain r)

let test_wire_of_layer () =
  let e = P.c06.P.electrical in
  Alcotest.(check bool) "metal1 routes" true
    (E.wire_of_layer e Technology.Layer.Metal1 <> None);
  Alcotest.(check bool) "contact does not route" true
    (E.wire_of_layer e Technology.Layer.Contact = None)

let test_evaluation () =
  let ev = P.evaluate P.c06 in
  check_in_range "ft_n plausible" 1e9 2e10 ev.P.ft_n_at_veff;
  Alcotest.(check bool) "nmos faster than pmos" true
    (ev.P.ft_n_at_veff > ev.P.ft_p_at_veff);
  check_in_range "diff cap per W" 5e-10 3e-9 ev.P.diff_cap_per_width;
  (* c035 should be denser/faster than c06 *)
  let ev35 = P.evaluate P.c035 in
  Alcotest.(check bool) "c035 faster" true
    (ev35.P.ft_n_at_veff > ev.P.ft_n_at_veff);
  Alcotest.(check bool) "c035 higher cox" true (ev35.P.cox_areal > ev.P.cox_areal)

let test_layer_render_order () =
  let open Technology.Layer in
  Alcotest.(check bool) "well before metal" true
    (drawing_order Nwell < drawing_order Metal1);
  Alcotest.(check int) "all layers distinct chars" (List.length all)
    (List.sort_uniq Char.compare (List.map ascii_char all) |> List.length)

let suite =
  ( "technology",
    [
      case "builtin lookup" test_builtin_lookup;
      case "rules strictly positive" test_rules_positive;
      case "lambda conversion and snapping" test_lambda_conversion;
      case "minimum feature sizes" test_min_sizes;
      case "cox and kp ranges" test_cox_kp;
      case "source/drain extension rules" test_sd_lengths;
      case "routing layers" test_wire_of_layer;
      case "technology evaluation" test_evaluation;
      case "layer rendering metadata" test_layer_render_order;
    ] )

module L = Technology.Layer
module R = Technology.Rules
module G = Geometry

type violation = {
  rule : string;
  layer : L.t;
  a : G.rect;
  b : G.rect option;
}

let min_width rules = function
  | L.Poly -> Some rules.R.poly_width
  | L.Active -> Some rules.R.active_width
  | L.Metal1 -> Some rules.R.metal1_width
  | L.Metal2 -> Some rules.R.metal2_width
  | L.Contact -> Some rules.R.contact_size
  | L.Via1 -> Some rules.R.via1_size
  | L.Nwell | L.Pplus | L.Nplus -> None

let min_spacing rules = function
  | L.Poly -> Some rules.R.poly_space
  | L.Active -> Some rules.R.active_space
  | L.Metal1 -> Some rules.R.metal1_space
  | L.Metal2 -> Some rules.R.metal2_space
  | L.Contact -> Some rules.R.contact_space
  | L.Via1 -> Some rules.R.via1_space
  | L.Nwell -> Some rules.R.well_space
  | L.Pplus | L.Nplus -> None

(* Connected-component grouping per layer so that abutting rectangles of
   one net are not reported as spacing violations against each other. *)
let components rects =
  let n = Array.length rects in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let touches a b = G.spacing a b = 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if touches rects.(i) rects.(j) then union i j
    done
  done;
  Array.init n find

let check proc cell =
  let rules = proc.Technology.Process.rules in
  let by_layer = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let existing = try Hashtbl.find by_layer r.G.layer with Not_found -> [] in
      Hashtbl.replace by_layer r.G.layer (r :: existing))
    cell.Cell.rects;
  let violations = ref [] in
  Hashtbl.iter
    (fun layer rects ->
      let rects = Array.of_list rects in
      (* width *)
      (match min_width rules layer with
       | None -> ()
       | Some w ->
         Array.iter
           (fun r ->
             let short_side = min (G.width r) (G.height r) in
             if short_side > 0 && short_side < w then
               violations :=
                 { rule = Printf.sprintf "min width %d" w; layer; a = r; b = None }
                 :: !violations)
           rects);
      (* spacing between distinct connected components *)
      (match min_spacing rules layer with
       | None -> ()
       | Some s ->
         let comp = components rects in
         let n = Array.length rects in
         for i = 0 to n - 1 do
           for j = i + 1 to n - 1 do
             if comp.(i) <> comp.(j) then begin
               let gap = G.spacing rects.(i) rects.(j) in
               if gap > 0 && gap < s then
                 violations :=
                   {
                     rule = Printf.sprintf "min spacing %d (gap %d)" s gap;
                     layer;
                     a = rects.(i);
                     b = Some rects.(j);
                   }
                   :: !violations
             end
           done
         done))
    by_layer;
  !violations

let pp_violation fmt v =
  Format.fprintf fmt "%s on %a: %a" v.rule L.pp v.layer G.pp v.a;
  match v.b with
  | Some b -> Format.fprintf fmt " vs %a" G.pp b
  | None -> ()

module L = Technology.Layer
module R = Technology.Rules
module P = Technology.Process
module E = Technology.Electrical
module F = Device.Folding
module G = Geometry

type spec = {
  dev : Device.Mos.t;
  d_net : string;
  g_net : string;
  s_net : string;
  b_net : string;
  i_drain : float;
}

type result = {
  cell : Cell.t;
  drawn_geom : F.geom;
  finger_w_lambda : int;
  contacts_per_strip : int;
  strap_width_lambda : int;
  em_violation : bool;
}

let required_strap_width proc layer ~current =
  let wire =
    match E.wire_of_layer proc.P.electrical layer with
    | Some w -> w
    | None -> invalid_arg "required_strap_width: not a routing layer"
  in
  let min_w =
    match layer with
    | L.Metal1 -> proc.P.rules.R.metal1_width
    | L.Metal2 -> proc.P.rules.R.metal2_width
    | L.Poly -> proc.P.rules.R.poly_width
    | L.Nwell | L.Active | L.Pplus | L.Nplus | L.Contact | L.Via1 ->
      proc.P.rules.R.metal1_width
  in
  let needed_m = Float.abs current /. wire.E.jmax in
  max min_w (P.to_lambda proc needed_m)

let required_contacts proc ~current =
  max 1 (int_of_float (Float.ceil (Float.abs current /. proc.P.electrical.E.contact_imax)))

(* Strip kinds along the stack: external strips at both ends, internal
   between gates. *)
type strip = { net : [ `Drain | `Source ]; len : int; x : int }

let strips_of rules ~nf ~drain_internal ~l_lambda =
  let ext = R.sd_contacted rules in
  let inter = R.sd_shared_contacted rules in
  (* net of strip i (0 .. nf): alternation starting with the external net *)
  let first_is_drain =
    if nf mod 2 = 0 then not drain_internal
    else true (* odd: one end drain, the other source *)
  in
  let rec build i x acc =
    if i > nf then List.rev acc
    else begin
      let len = if i = 0 || i = nf then ext else inter in
      let is_drain = if i mod 2 = 0 then first_is_drain else not first_is_drain in
      let strip = { net = (if is_drain then `Drain else `Source); len; x } in
      (* advance past this strip and the following gate (if any) *)
      let x' = x + len + (if i < nf then l_lambda else 0) in
      build (i + 1) x' (strip :: acc)
    end
  in
  build 0 0 []

let generate proc spec =
  let dev = Device.Mos.snap_to_grid proc spec.dev in
  let rules = proc.P.rules in
  let style = dev.Device.Mos.style in
  let nf = style.F.nf in
  let wf = P.to_lambda proc (dev.Device.Mos.w /. float_of_int nf) in
  let l_lambda = P.to_lambda proc dev.Device.Mos.l in
  let strips = strips_of rules ~nf ~drain_internal:style.F.drain_internal ~l_lambda in
  let cell = Cell.empty dev.Device.Mos.name in
  (* active strip spine *)
  let total_w =
    match List.rev strips with
    | last :: _ -> last.x + last.len
    | [] -> assert false
  in
  let cell = Cell.add_rect cell (G.rect L.Active ~x0:0 ~y0:0 ~x1:total_w ~y1:wf) in
  (* select layer around the active *)
  let sel = rules.R.select_active_enclosure in
  let select_layer =
    match dev.Device.Mos.mtype with E.Nmos -> L.Nplus | E.Pmos -> L.Pplus
  in
  let cell =
    Cell.add_rect cell
      (G.rect select_layer ~x0:(-sel) ~y0:(-sel) ~x1:(total_w + sel) ~y1:(wf + sel))
  in
  (* poly fingers plus a connecting strap along the top *)
  let ext_gate = rules.R.poly_gate_extension in
  let gate_xs =
    List.filteri (fun i _ -> i < nf) strips
    |> List.map (fun s -> s.x + s.len)
  in
  let cell =
    List.fold_left
      (fun c x ->
        Cell.add_rect c
          (G.rect L.Poly ~x0:x ~y0:(-ext_gate) ~x1:(x + l_lambda) ~y1:(wf + ext_gate)))
      cell gate_xs
  in
  let strap_y0 = wf + ext_gate in
  let strap_y1 = strap_y0 + rules.R.poly_width in
  let cell =
    match gate_xs with
    | [] -> cell
    | x_first :: _ ->
      let x_last = List.nth gate_xs (List.length gate_xs - 1) + l_lambda in
      if nf > 1 then
        Cell.add_rect cell (G.rect L.Poly ~x0:x_first ~y0:strap_y0 ~x1:x_last ~y1:strap_y1)
      else cell
  in
  (* gate pick-up above the gates: a poly pad lifted clear of the strip
     metal straps (the straps overhang the active by one lambda), with a
     contact and a metal1 port on top *)
  let pc = rules.R.poly_contact_enclosure in
  let cs = rules.R.contact_size in
  let pad_w = cs + (2 * pc) in
  let pad_x0 = (match gate_xs with x :: _ -> x + ((l_lambda - pad_w) / 2) | [] -> 0) in
  let lift = rules.R.metal1_space in
  let pad_base = if nf > 1 then strap_y1 else strap_y0 in
  let pad_top = pad_base + lift + pad_w in
  let contact_y0 = pad_base + lift + pc in
  let cell =
    cell
    |> (fun c ->
      Cell.add_rect c
        (G.rect L.Poly ~x0:pad_x0 ~y0:pad_base ~x1:(pad_x0 + pad_w) ~y1:pad_top))
    |> (fun c ->
      Cell.add_rect c
        (G.rect L.Contact ~x0:(pad_x0 + pc) ~y0:contact_y0 ~x1:(pad_x0 + pc + cs)
           ~y1:(contact_y0 + cs)))
    |> fun c ->
    let me = rules.R.metal1_contact_enclosure in
    let m1 =
      G.rect L.Metal1 ~x0:(pad_x0 + pc - me) ~y0:(contact_y0 - me)
        ~x1:(pad_x0 + pc + cs + me) ~y1:(contact_y0 + cs + me)
    in
    Cell.add_port (Cell.add_rect c m1) ~net:spec.g_net m1
  in
  (* contact columns and metal straps over every diffusion strip *)
  let encl = rules.R.active_contact_enclosure in
  let cspace = rules.R.contact_space in
  let geo_max_contacts = max 1 ((wf - (2 * encl) + cspace) / (cs + cspace)) in
  let strips_per_net target =
    List.length (List.filter (fun s -> s.net = target) strips)
  in
  let i_per_strip target =
    spec.i_drain /. float_of_int (max 1 (strips_per_net target))
  in
  let needed_contacts target = required_contacts proc ~current:(i_per_strip target) in
  let em_violation =
    needed_contacts `Drain > geo_max_contacts
    || needed_contacts `Source > geo_max_contacts
  in
  let strap_w =
    max (cs + 2)
      (required_strap_width proc L.Metal1 ~current:(i_per_strip `Drain))
  in
  let n_contacts target = min geo_max_contacts (needed_contacts target) in
  let n_drawn target =
    (* reliability practice: fill the strip with contacts, at least the
       EM-required number *)
    max (n_contacts target) geo_max_contacts
  in
  (* contact columns and straps are drawn per strip, but each net exposes a
     single port (on its middle strip): the strips of one net are merged by
     the module's internal strap, so the router drops one branch per module
     and net rather than one per strip *)
  let straps_by_net = Hashtbl.create 4 in
  let cell =
    List.fold_left
      (fun c s ->
        let net_name = match s.net with `Drain -> spec.d_net | `Source -> spec.s_net in
        let n = n_drawn s.net in
        (* centre the contact column inside the strip *)
        let col_x0 = s.x + ((s.len - cs) / 2) in
        let total_h = (n * cs) + ((n - 1) * cspace) in
        let start_y = (wf - total_h) / 2 in
        let c =
          List.fold_left
            (fun c k ->
              let y0 = start_y + (k * (cs + cspace)) in
              Cell.add_rect c (G.rect L.Contact ~x0:col_x0 ~y0 ~x1:(col_x0 + cs) ~y1:(y0 + cs)))
            c
            (List.init n Fun.id)
        in
        (* metal1 strap over the column, EM-sized, overhanging the active
           vertically so routing can reach it *)
        let mw = max strap_w (cs + (2 * rules.R.metal1_contact_enclosure)) in
        let mx0 = col_x0 + (cs / 2) - (mw / 2) in
        let m1 = G.rect L.Metal1 ~x0:mx0 ~y0:(-1) ~x1:(mx0 + mw) ~y1:(wf + 1) in
        let existing =
          try Hashtbl.find straps_by_net net_name with Not_found -> []
        in
        Hashtbl.replace straps_by_net net_name (m1 :: existing);
        Cell.add_rect c m1)
      cell strips
  in
  let cell =
    Hashtbl.fold
      (fun net rects c ->
        let rects = List.rev rects in
        let middle = List.nth rects (List.length rects / 2) in
        Cell.add_port c ~net middle)
      straps_by_net cell
  in
  (* bulk tap column to the left of the stack *)
  let tap_w = cs + (2 * encl) in
  let tap_x1 = -rules.R.active_space in
  let tap_x0 = tap_x1 - tap_w in
  let tap_select =
    match dev.Device.Mos.mtype with E.Nmos -> L.Pplus | E.Pmos -> L.Nplus
  in
  let cell =
    cell
    |> (fun c -> Cell.add_rect c (G.rect L.Active ~x0:tap_x0 ~y0:0 ~x1:tap_x1 ~y1:wf))
    |> (fun c ->
      Cell.add_rect c
        (G.rect tap_select ~x0:(tap_x0 - sel) ~y0:(-sel) ~x1:(tap_x1 + sel) ~y1:(wf + sel)))
    |> fun c ->
    let n = geo_max_contacts in
    let total_h = (n * cs) + ((n - 1) * cspace) in
    let start_y = (wf - total_h) / 2 in
    let c =
      List.fold_left
        (fun c k ->
          let y0 = start_y + (k * (cs + cspace)) in
          Cell.add_rect c
            (G.rect L.Contact ~x0:(tap_x0 + encl) ~y0 ~x1:(tap_x0 + encl + cs) ~y1:(y0 + cs)))
        c
        (List.init n Fun.id)
    in
    let m1 = G.rect L.Metal1 ~x0:tap_x0 ~y0:(-1) ~x1:tap_x1 ~y1:(wf + 1) in
    Cell.add_port (Cell.add_rect c m1) ~net:spec.b_net m1
  in
  (* n-well for PMOS devices encloses stack and tap *)
  let cell =
    match dev.Device.Mos.mtype with
    | E.Nmos -> cell
    | E.Pmos ->
      let we = rules.R.well_active_enclosure in
      Cell.add_rect cell
        (G.rect L.Nwell ~x0:(tap_x0 - we) ~y0:(-we) ~x1:(total_w + we)
           ~y1:(wf + ext_gate + we))
  in
  let drawn_geom = F.geometry proc ~w:dev.Device.Mos.w style in
  {
    cell = Cell.normalize cell;
    drawn_geom;
    finger_w_lambda = wf;
    contacts_per_strip = n_drawn `Drain;
    strap_width_lambda = strap_w;
    em_violation;
  }

let drawn_active_area r ~net =
  match net with
  | `Drain -> r.drawn_geom.F.ad
  | `Source -> r.drawn_geom.F.as_

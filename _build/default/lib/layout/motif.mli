(** Transistor motif generator (the paper's single generator from which all
    device generators are built).  Produces the full folded-transistor
    geometry: alternating source/drain diffusion strips, poly fingers with a
    connecting strap, contact columns, metal1 straps over each strip, a
    bulk/well tap column and (for PMOS) the enclosing n-well.

    The as-drawn diffusion strips reproduce {!Device.Folding.geometry}
    exactly — the test suite cross-checks drawn active area per net against
    the closed-form strip accounting. *)

type spec = {
  dev : Device.Mos.t;
  d_net : string;
  g_net : string;
  s_net : string;
  b_net : string;
  i_drain : float;  (** DC drain current magnitude, A — drives wire widths
                        and contact counts (reliability constraints) *)
}

type result = {
  cell : Cell.t;
  drawn_geom : Device.Folding.geom;  (** diffusion geometry as drawn *)
  finger_w_lambda : int;             (** per-finger width after grid snap *)
  contacts_per_strip : int;
  strap_width_lambda : int;          (** metal1 strap width over strips *)
  em_violation : bool;
  (** true when the strip cannot host enough contacts for [i_drain] —
      the generator flags rather than silently under-designs *)
}

val required_strap_width :
  Technology.Process.t -> Technology.Layer.t -> current:float -> int
(** Electromigration-driven wire width in lambda for a given DC current on
    a routing layer, floored at the layer's minimum width. *)

val required_contacts : Technology.Process.t -> current:float -> int
(** Number of contact cuts needed to carry [current]. *)

val generate : Technology.Process.t -> spec -> result
(** Generate the motif.  W and L are snapped to the lambda grid (per
    finger), which may slightly alter the electrical size — the layout-grid
    effect the paper mentions. *)

val drawn_active_area : result -> net:[ `Drain | `Source ] -> float
(** Sum of drawn diffusion strip areas on the net, m^2 — equals
    [drawn_geom.ad] / [.as_]. *)

type rect = {
  layer : Technology.Layer.t;
  x0 : int;
  y0 : int;
  x1 : int;
  y1 : int;
}

let rect layer ~x0 ~y0 ~x1 ~y1 =
  { layer;
    x0 = min x0 x1; y0 = min y0 y1;
    x1 = max x0 x1; y1 = max y0 y1 }

let width r = r.x1 - r.x0
let height r = r.y1 - r.y0
let area r = width r * height r

let translate ~dx ~dy r =
  { r with x0 = r.x0 + dx; y0 = r.y0 + dy; x1 = r.x1 + dx; y1 = r.y1 + dy }

let intersects a b =
  a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1

let axis_gap a0 a1 b0 b1 =
  if a1 <= b0 then b0 - a1 else if b1 <= a0 then a0 - b1 else 0

let spacing a b =
  let gx = axis_gap a.x0 a.x1 b.x0 b.x1 in
  let gy = axis_gap a.y0 a.y1 b.y0 b.y1 in
  max gx gy

let union_bbox a b =
  { a with
    x0 = min a.x0 b.x0; y0 = min a.y0 b.y0;
    x1 = max a.x1 b.x1; y1 = max a.y1 b.y1 }

let bbox_of = function
  | [] -> None
  | r :: rest ->
    let b = List.fold_left union_bbox r rest in
    Some (b.x0, b.y0, b.x1, b.y1)

let mirror_x ~axis r =
  { r with x0 = (2 * axis) - r.x1; x1 = (2 * axis) - r.x0 }

let pp fmt r =
  Format.fprintf fmt "%a(%d,%d)-(%d,%d)" Technology.Layer.pp r.layer r.x0 r.y0
    r.x1 r.y1

type style = Interdigitated | Common_centroid

let style_to_string = function
  | Interdigitated -> "interdigitated"
  | Common_centroid -> "common-centroid"

type spec = {
  a_name : string;
  b_name : string;
  mtype : Technology.Electrical.mos_type;
  w : float;
  l : float;
  nf : int;
  tail_net : string;
  a_drain : string;
  b_drain : string;
  a_gate : string;
  b_gate : string;
  bulk_net : string;
  current : float;
  style : style;
}

type metrics = {
  centroid_offset_a : float;
  centroid_offset_b : float;
  orientation_imbalance_a : int;
  orientation_imbalance_b : int;
}

type result = {
  cell : Cell.t;
  rows : Stack.placement list;
  drain_area_a : float;
  drain_area_b : float;
  geom_a : Device.Folding.geom;
  geom_b : Device.Folding.geom;
  metrics : metrics;
}

let stack_spec spec ~units_per_device =
  {
    Stack.elements =
      [
        { Stack.el_name = spec.a_name; units = units_per_device;
          drain_net = spec.a_drain; current = spec.current };
        { Stack.el_name = spec.b_name; units = units_per_device;
          drain_net = spec.b_drain; current = spec.current };
      ];
    mtype = spec.mtype;
    unit_w = spec.w /. float_of_int spec.nf;
    l = spec.l;
    source_net = spec.tail_net;
    gate = Stack.Rails [ (spec.a_name, spec.a_gate); (spec.b_name, spec.b_gate) ];
    bulk_net = spec.bulk_net;
    dummies = true;
  }

let mirror placement =
  let n = Array.length placement in
  Array.init n (fun i -> placement.(n - 1 - i))

(* Pairs use strict A B A B alternation (with end dummies) rather than the
   nested mirror interleave: alternation maps A-positions onto B-positions
   under reflection, so the two devices see *identical* drain diffusion
   geometry — the matching property that dominates offset.  The price is a
   uniform current direction per device in a single row; the two-row common
   centroid style restores the orientation balance. *)
let alternating spec ~units_per_device =
  let core =
    Array.init (2 * units_per_device) (fun i ->
      Stack.Unit (if i mod 2 = 0 then spec.a_name else spec.b_name))
  in
  Array.concat [ [| Stack.Dummy |]; core; [| Stack.Dummy |] ]

let area_of result name =
  try List.assoc name result.Stack.drain_areas with Not_found -> 0.0

(* As-drawn diffusion geometry of one pair device across the given stack
   rows: its own drain strips plus half of the shared source net. *)
let geom_of spec rows_results name =
  let module F = Device.Folding in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows_results in
  let drain r =
    try List.assoc name r.Stack.drain_diffusion
    with Not_found -> { Stack.area = 0.0; perim = 0.0 }
  in
  {
    F.ad = sum (fun r -> (drain r).Stack.area);
    as_ = sum (fun r -> r.Stack.source_diffusion.Stack.area) /. 2.0;
    pd = sum (fun r -> (drain r).Stack.perim);
    ps = sum (fun r -> r.Stack.source_diffusion.Stack.perim) /. 2.0;
    finger_w = spec.w /. float_of_int spec.nf;
    drain_strips = spec.nf / 2;
    source_strips = (spec.nf / 2) + 1;
  }

let metrics_of rows a b =
  (* combine rows by concatenation for the 1D metrics; for two mirrored
     rows the x-centroids average out exactly, which the per-row offsets
     expose (offset row2 = -offset row1) *)
  let offset name =
    match rows with
    | [ one ] -> Stack.centroid_offset one name
    | [ r1; r2 ] ->
      (* mirrored rows: signed offsets cancel; report the residual of the
         average, which is 0 when r2 is the exact mirror of r1 *)
      let signed row =
        let ps =
          Array.to_list row
          |> List.mapi (fun i s -> (i, s))
          |> List.filter_map (fun (i, s) ->
            match s with
            | Stack.Unit n when n = name -> Some (float_of_int i)
            | Stack.Unit _ | Stack.Dummy -> None)
        in
        match ps with
        | [] -> 0.0
        | _ ->
          let mid = float_of_int (Array.length row - 1) /. 2.0 in
          (List.fold_left ( +. ) 0.0 ps /. float_of_int (List.length ps)) -. mid
      in
      Float.abs ((signed r1 +. signed r2) /. 2.0)
    | [] | _ :: _ :: _ :: _ -> 0.0
  in
  let imbalance name =
    List.fold_left (fun acc row -> acc + Stack.orientation_imbalance row name) 0 rows
  in
  {
    centroid_offset_a = offset a;
    centroid_offset_b = offset b;
    orientation_imbalance_a = imbalance a;
    orientation_imbalance_b = imbalance b;
  }

let generate proc spec =
  assert (spec.nf >= 1);
  match spec.style with
  | Interdigitated ->
    let sspec = stack_spec spec ~units_per_device:spec.nf in
    let r =
      Stack.generate_with_placement proc sspec
        (alternating spec ~units_per_device:spec.nf)
    in
    {
      cell = r.Stack.cell;
      rows = [ r.Stack.placement ];
      drain_area_a = area_of r spec.a_name;
      drain_area_b = area_of r spec.b_name;
      geom_a = geom_of spec [ r ] spec.a_name;
      geom_b = geom_of spec [ r ] spec.b_name;
      metrics = metrics_of [ r.Stack.placement ] spec.a_name spec.b_name;
    }
  | Common_centroid ->
    if spec.nf mod 2 <> 0 then
      invalid_arg "Pair.generate: common centroid requires an even finger count";
    let sspec = stack_spec spec ~units_per_device:(spec.nf / 2) in
    let row1 = alternating spec ~units_per_device:(spec.nf / 2) in
    let row2 = mirror row1 in
    let r1 = Stack.generate_with_placement proc sspec row1 in
    let r2 = Stack.generate_with_placement proc sspec row2 in
    let _, h1 = Cell.size r1.Stack.cell in
    let gap = 2 * proc.Technology.Process.rules.Technology.Rules.active_space in
    let c2 = Cell.translate ~dx:0 ~dy:(h1 + gap) r2.Stack.cell in
    let cell = Cell.normalize (Cell.merge "pair" [ r1.Stack.cell; c2 ]) in
    {
      cell;
      rows = [ row1; row2 ];
      drain_area_a = area_of r1 spec.a_name +. area_of r2 spec.a_name;
      drain_area_b = area_of r1 spec.b_name +. area_of r2 spec.b_name;
      geom_a = geom_of spec [ r1; r2 ] spec.a_name;
      geom_b = geom_of spec [ r1; r2 ] spec.b_name;
      metrics = metrics_of [ row1; row2 ] spec.a_name spec.b_name;
    }

(** Layout rendering: ASCII art for terminal inspection (used by the
    examples and the benchmark harness to show Fig. 3 / Fig. 5 style
    output) and a simple SVG writer. *)

val ascii : ?max_cols:int -> Cell.t -> string
(** Paint the cell onto a character grid, one char per sampled lambda cell
    (downsampled to fit [max_cols], default 100).  Layers are painted in
    {!Technology.Layer.drawing_order}; each grid cell shows the topmost
    layer's character. *)

val svg : Cell.t -> string
(** Standalone SVG document with one translucent polygon per rectangle. *)

val legend : string
(** ASCII legend mapping characters to layers. *)

(** Integer rectangle geometry on the lambda grid.  All coordinates are in
    lambda; a process converts to metres (see {!Technology.Process.um}). *)

type rect = {
  layer : Technology.Layer.t;
  x0 : int;
  y0 : int;
  x1 : int;  (** exclusive-ish upper corner; invariant x0 <= x1 *)
  y1 : int;
}

val rect : Technology.Layer.t -> x0:int -> y0:int -> x1:int -> y1:int -> rect
(** Normalises corner order.  Zero-area rectangles are allowed (used for
    pin markers). *)

val width : rect -> int
val height : rect -> int
val area : rect -> int
val translate : dx:int -> dy:int -> rect -> rect
val intersects : rect -> rect -> bool
(** Strict interior overlap (sharing an edge is not an intersection). *)

val spacing : rect -> rect -> int
(** Chebyshev-style gap between two non-overlapping rectangles: the larger
    of the x-gap and y-gap, with 0 when they touch or overlap in that
    axis.  Two rectangles that overlap return 0. *)

val union_bbox : rect -> rect -> rect
(** Bounding box of the two, tagged with the first one's layer. *)

val bbox_of : rect list -> (int * int * int * int) option
(** [(x0, y0, x1, y1)] over all rectangles; [None] for the empty list. *)

val mirror_x : axis:int -> rect -> rect
(** Mirror across the vertical line x = axis. *)

val pp : Format.formatter -> rect -> unit

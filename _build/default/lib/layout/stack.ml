module L = Technology.Layer
module R = Technology.Rules
module P = Technology.Process
module E = Technology.Electrical
module G = Geometry

type element = {
  el_name : string;
  units : int;
  drain_net : string;
  current : float;
}

type gate_style =
  | Common of string
  | Rails of (string * string) list

type spec = {
  elements : element list;
  mtype : E.mos_type;
  unit_w : float;
  l : float;
  source_net : string;
  gate : gate_style;
  bulk_net : string;
  dummies : bool;
}

type slot = Dummy | Unit of string

type placement = slot array

(* Assign symmetric position pairs from the centre outwards to the element
   with the most remaining units; exact common centroid for even counts,
   minimal offset otherwise. *)
let interleave spec =
  let total = List.fold_left (fun acc e -> acc + e.units) 0 spec.elements in
  assert (total >= 1);
  let slots = Array.make total Dummy in
  let remaining =
    ref (List.map (fun e -> (e.el_name, e.units)) spec.elements)
  in
  let take name =
    remaining :=
      List.filter_map
        (fun (n, k) ->
          if n = name then if k <= 1 then None else Some (n, k - 1)
          else Some (n, k))
        !remaining
  in
  let argmax ?(min_count = 1) ?(parity = fun _ -> true) () =
    List.fold_left
      (fun best (n, k) ->
        if k < min_count || not (parity k) then best
        else
          match best with
          | Some (_, kb) when kb >= k -> best
          | Some _ | None -> Some (n, k))
      None !remaining
  in
  (* centre-out position order *)
  let order =
    let mid_hi = total / 2 in
    let rec build d acc =
      let left = mid_hi - 1 - d and right = mid_hi + d in
      let acc = if right < total then right :: acc else acc in
      let acc = if left >= 0 then left :: acc else acc in
      if left < 0 && right >= total then List.rev acc else build (d + 1) acc
    in
    build 0 []
  in
  let order =
    if total mod 2 = 1 then
      (* odd total: the exact centre position comes first; give it to an
         element with an odd unit count so the rest can pair up *)
      let centre = total / 2 in
      centre :: List.filter (fun p -> p <> centre) order
    else order
  in
  (* odd-count elements leave one unpaired unit each; placing those
     singles on the innermost positions first minimises their centroid
     offset, after which everything else pairs up symmetrically *)
  let order = ref order in
  let next_pos () =
    match !order with
    | [] -> None
    | p :: rest ->
      order := rest;
      Some p
  in
  let place n p =
    slots.(p) <- Unit n;
    take n
  in
  let rec place_odd_singles () =
    match argmax ~parity:(fun k -> k mod 2 = 1) () with
    | None -> ()
    | Some (n, _) ->
      (match next_pos () with
       | None -> ()
       | Some p ->
         place n p;
         place_odd_singles ())
  in
  place_odd_singles ();
  let rec place_pairs () =
    match argmax ~min_count:2 () with
    | None ->
      (match argmax () with
       | None -> ()
       | Some (n, _) ->
         (match next_pos () with
          | None -> ()
          | Some p ->
            place n p;
            place_pairs ()))
    | Some (n, _) ->
      (match (next_pos (), next_pos ()) with
       | Some p1, Some p2 ->
         place n p1;
         place n p2;
         place_pairs ()
       | Some p1, None -> place n p1
       | None, _ -> ())
  in
  place_pairs ();
  if spec.dummies then Array.concat [ [| Dummy |]; slots; [| Dummy |] ]
  else slots

let unit_positions placement name =
  let acc = ref [] in
  Array.iteri
    (fun i s -> match s with Unit n when n = name -> acc := i :: !acc | Unit _ | Dummy -> ())
    placement;
  List.rev !acc

let centroid_offset placement name =
  match unit_positions placement name with
  | [] -> 0.0
  | ps ->
    let n = List.length ps in
    let centroid =
      float_of_int (List.fold_left ( + ) 0 ps) /. float_of_int n
    in
    let mid = float_of_int (Array.length placement - 1) /. 2.0 in
    Float.abs (centroid -. mid)

let orientation_imbalance placement name =
  let even, odd =
    List.fold_left
      (fun (e, o) p -> if p mod 2 = 0 then (e + 1, o) else (e, o + 1))
      (0, 0)
      (unit_positions placement name)
  in
  abs (even - odd)

type diffusion = { area : float; perim : float }

type result = {
  cell : Cell.t;
  placement : placement;
  drain_areas : (string * float) list;
  drain_diffusion : (string * diffusion) list;  (* per element *)
  source_diffusion : diffusion;                 (* whole shared source net *)
  strap_widths : (string * int) list;
  contacts_per_strip : int;
}

(* Net on a given side of a unit: position parity fixes orientation (even
   position: source on the left).  Dummies adopt the neighbouring net. *)
type side_net = Net of string | Adopt

let side_net spec placement i ~left =
  match placement.(i) with
  | Dummy -> Adopt
  | Unit name ->
    let source_on_left = i mod 2 = 0 in
    let is_source = if left then source_on_left else not source_on_left in
    if is_source then Net spec.source_net
    else
      let e = List.find (fun e -> e.el_name = name) spec.elements in
      Net e.drain_net

(* A strip slot between units (or at the ends) resolves to one shared strip
   or a split pair when two different drain nets face each other. *)
type strip =
  | Shared of string * int   (* net, length lambda *)
  | Split of string * string * int * int * int  (* netL, netR, lenL, gap, lenR *)

let resolve_strips proc spec placement =
  let rules = proc.P.rules in
  let ext = R.sd_contacted rules in
  let shared = R.sd_shared_contacted rules in
  let gap = rules.R.active_space in
  let n = Array.length placement in
  List.init (n + 1) (fun j ->
    let left_net = if j = 0 then None else Some (side_net spec placement (j - 1) ~left:false) in
    let right_net = if j = n then None else Some (side_net spec placement j ~left:true) in
    match (left_net, right_net) with
    | None, None -> Shared (spec.source_net, ext)
    | None, Some (Net x) | Some (Net x), None -> Shared (x, ext)
    | None, Some Adopt | Some Adopt, None -> Shared (spec.source_net, ext)
    | Some Adopt, Some Adopt -> Shared (spec.source_net, shared)
    | Some (Net x), Some Adopt | Some Adopt, Some (Net x) -> Shared (x, shared)
    | Some (Net a), Some (Net b) ->
      if a = b then Shared (a, shared) else Split (a, b, ext, gap, ext))

let generate_with_placement proc spec placement =
  let rules = proc.P.rules in
  let wf = max rules.R.active_width (P.to_lambda proc spec.unit_w) in
  let l_lambda = max rules.R.poly_width (P.to_lambda proc spec.l) in
  let strips = resolve_strips proc spec placement in
  let n = Array.length placement in
  let cs = rules.R.contact_size in
  let cspace = rules.R.contact_space in
  let encl = rules.R.active_contact_enclosure in
  let geo_contacts = max 1 ((wf - (2 * encl) + cspace) / (cs + cspace)) in
  (* EM strap width per element: element current split across its drain
     strips *)
  let drain_strip_count net =
    List.fold_left
      (fun acc s ->
        match s with
        | Shared (x, _) when x = net -> acc + 1
        | Split (a, b, _, _, _) ->
          acc + (if a = net then 1 else 0) + if b = net then 1 else 0
        | Shared _ -> acc)
      0 strips
  in
  let strap_widths =
    List.map
      (fun e ->
        let k = max 1 (drain_strip_count e.drain_net) in
        ( e.el_name,
          Motif.required_strap_width proc L.Metal1
            ~current:(e.current /. float_of_int k) ))
      spec.elements
  in
  let strap_of net =
    let per_element =
      List.filter_map
        (fun e ->
          if e.drain_net = net then Some (List.assoc e.el_name strap_widths)
          else None)
        spec.elements
    in
    List.fold_left max (cs + (2 * rules.R.metal1_contact_enclosure)) per_element
  in
  (* walk across, emitting geometry; record drain areas *)
  let lam = proc.P.lambda in
  let cell = ref (Cell.empty "stack") in
  let areas = Hashtbl.create 8 in
  (* [ends] is the number of strip ends not facing a gate (0 for a strip
     shared between two gates, 1 for end/split strips): they contribute the
     finger-width side to the junction perimeter *)
  let add_area net len ~ends =
    let a = float_of_int (len * wf) *. lam *. lam in
    let p = ((2.0 *. float_of_int len) +. float_of_int (ends * wf)) *. lam in
    let a0, p0 = try Hashtbl.find areas net with Not_found -> (0.0, 0.0) in
    Hashtbl.replace areas net (a0 +. a, p0 +. p)
  in
  (* one exposed port per net (middle strap): strips of one net are merged
     by the module's internal strap, so routing drops a single branch per
     module and net *)
  let straps_by_net = Hashtbl.create 4 in
  let emit_contact_column ~x ~len ~net =
    (* active strip segment with a centred contact column and a metal strap *)
    cell := Cell.add_rect !cell (G.rect L.Active ~x0:x ~y0:0 ~x1:(x + len) ~y1:wf);
    let col_x0 = x + ((len - cs) / 2) in
    let total_h = (geo_contacts * cs) + ((geo_contacts - 1) * cspace) in
    let start_y = (wf - total_h) / 2 in
    for k = 0 to geo_contacts - 1 do
      let y0 = start_y + (k * (cs + cspace)) in
      cell :=
        Cell.add_rect !cell
          (G.rect L.Contact ~x0:col_x0 ~y0 ~x1:(col_x0 + cs) ~y1:(y0 + cs))
    done;
    let mw = strap_of net in
    let mx0 = col_x0 + (cs / 2) - (mw / 2) in
    let m1 = G.rect L.Metal1 ~x0:mx0 ~y0:(-1) ~x1:(mx0 + mw) ~y1:(wf + 1) in
    let existing = try Hashtbl.find straps_by_net net with Not_found -> [] in
    Hashtbl.replace straps_by_net net (m1 :: existing);
    cell := Cell.add_rect !cell m1
  in
  let ext_gate = rules.R.poly_gate_extension in
  let emit_gate ~x ~dummy =
    cell :=
      Cell.add_rect !cell
        (G.rect L.Poly ~x0:x ~y0:(-ext_gate) ~x1:(x + l_lambda) ~y1:(wf + ext_gate));
    ignore dummy
  in
  let x = ref 0 in
  let gate_x0 = ref None and gate_x1 = ref 0 in
  let gate_x_of = Array.make n 0 in
  List.iteri
    (fun j strip ->
      (match strip with
       | Shared (net, len) ->
         emit_contact_column ~x:!x ~len ~net;
         add_area net len ~ends:(if j = 0 || j = n then 1 else 0);
         x := !x + len
       | Split (a, b, la, gap, lb) ->
         emit_contact_column ~x:!x ~len:la ~net:a;
         add_area a la ~ends:1;
         emit_contact_column ~x:(!x + la + gap) ~len:lb ~net:b;
         add_area b lb ~ends:1;
         x := !x + la + gap + lb);
      if j < n then begin
        (if !gate_x0 = None then gate_x0 := Some !x);
        gate_x_of.(j) <- !x;
        emit_gate ~x:!x ~dummy:(placement.(j) = Dummy);
        gate_x1 := !x + l_lambda;
        x := !x + l_lambda
      end)
    strips;
  (* poly pick-up helper: a pad lifted clear of the strip metal straps
     (which overhang the active by one lambda), with contact and metal1
     port.  [y_attach] is where the pad meets existing poly; [dir] is the
     side the pad grows towards. *)
  let pc = rules.R.poly_contact_enclosure in
  let lift = rules.R.metal1_space in
  let poly_pickup ~x ~y_attach ~dir net =
    let pad_w = cs + (2 * pc) in
    let pad_y0, pad_y1, contact_y0 =
      match dir with
      | `Up -> (y_attach, y_attach + lift + pad_w, y_attach + lift + pc)
      | `Down -> (y_attach - lift - pad_w, y_attach, y_attach - lift - pc - cs)
    in
    cell :=
      Cell.add_rect !cell (G.rect L.Poly ~x0:x ~y0:pad_y0 ~x1:(x + pad_w) ~y1:pad_y1);
    cell :=
      Cell.add_rect !cell
        (G.rect L.Contact ~x0:(x + pc) ~y0:contact_y0 ~x1:(x + pc + cs)
           ~y1:(contact_y0 + cs));
    let me = rules.R.metal1_contact_enclosure in
    let m1 =
      G.rect L.Metal1 ~x0:(x + pc - me) ~y0:(contact_y0 - me)
        ~x1:(x + pc + cs + me) ~y1:(contact_y0 + cs + me)
    in
    cell := Cell.add_port (Cell.add_rect !cell m1) ~net m1
  in
  (* gate connection: one common strap, or two rails for differential
     structures; dummy gates are left as bare fingers and tied off in the
     netlist *)
  (match (!gate_x0, spec.gate) with
   | None, _ -> ()
   | Some x0, Common net ->
     let y0 = wf + ext_gate in
     let strap_top = y0 + rules.R.poly_width in
     if n > 1 then
       cell :=
         Cell.add_rect !cell
           (G.rect L.Poly ~x0 ~y0 ~x1:!gate_x1 ~y1:strap_top);
     let pad_w = cs + (2 * pc) in
     let y_attach = if n > 1 then strap_top else y0 in
     poly_pickup ~x:(x0 + (((!gate_x1 - x0) - pad_w) / 2)) ~y_attach ~dir:`Up net
   | Some x0, Rails rails ->
     let pspace = rules.R.poly_space in
     let pw = rules.R.poly_width in
     let rail_above_y0 = wf + ext_gate + pspace in
     let rail_below_y1 = -ext_gate - pspace in
     let rail_of_element name =
       match List.mapi (fun i (el, net) -> (el, net, i)) rails
             |> List.find_opt (fun (el, _, _) -> el = name)
       with
       | Some (_, net, 0) -> Some (`Above, net)
       | Some (_, net, _) -> Some (`Below, net)
       | None -> None
     in
     (* vertical stubs from each unit gate to its rail *)
     Array.iteri
       (fun i slot ->
         match slot with
         | Dummy -> ()
         | Unit name ->
           (match rail_of_element name with
            | None -> ()
            | Some (side, _) ->
              let gx = gate_x_of.(i) in
              let r =
                match side with
                | `Above ->
                  G.rect L.Poly ~x0:gx ~y0:(wf + ext_gate) ~x1:(gx + l_lambda)
                    ~y1:(rail_above_y0 + pw)
                | `Below ->
                  G.rect L.Poly ~x0:gx ~y0:(rail_below_y1 - pw)
                    ~x1:(gx + l_lambda) ~y1:(-ext_gate)
              in
              cell := Cell.add_rect !cell r))
       placement;
     List.iteri
       (fun i (_, net) ->
         let y0, y_attach, dir =
           if i = 0 then (rail_above_y0, rail_above_y0 + pw, `Up)
           else (rail_below_y1 - pw, rail_below_y1 - pw, `Down)
         in
         cell :=
           Cell.add_rect !cell
             (G.rect L.Poly ~x0 ~y0 ~x1:!gate_x1 ~y1:(y0 + pw));
         let pick_x = if i = 0 then x0 else !gate_x1 - (cs + (2 * pc)) in
         poly_pickup ~x:pick_x ~y_attach ~dir net)
       rails);
  Hashtbl.iter
    (fun net rects ->
      let rects = List.rev rects in
      let middle = List.nth rects (List.length rects / 2) in
      cell := Cell.add_port !cell ~net middle)
    straps_by_net;
  (* select and well *)
  let sel = rules.R.select_active_enclosure in
  let select_layer = match spec.mtype with E.Nmos -> L.Nplus | E.Pmos -> L.Pplus in
  cell :=
    Cell.add_rect !cell
      (G.rect select_layer ~x0:(-sel) ~y0:(-sel) ~x1:(!x + sel) ~y1:(wf + sel));
  (match spec.mtype with
   | E.Nmos -> ()
   | E.Pmos ->
     let we = rules.R.well_active_enclosure in
     cell :=
       Cell.add_rect !cell
         (G.rect L.Nwell ~x0:(-we) ~y0:(-we) ~x1:(!x + we)
            ~y1:(wf + ext_gate + we)));
  (* bulk port marker on the select ring edge *)
  let bport = G.rect L.Metal1 ~x0:(-sel) ~y0:(-sel) ~x1:(-sel + 1) ~y1:(-sel + 1) in
  cell := Cell.add_port !cell ~net:spec.bulk_net bport;
  let diffusion_of net =
    let a, p = try Hashtbl.find areas net with Not_found -> (0.0, 0.0) in
    { area = a; perim = p }
  in
  let drain_diffusion =
    List.map (fun e -> (e.el_name, diffusion_of e.drain_net)) spec.elements
  in
  {
    cell = Cell.normalize !cell;
    placement;
    drain_areas = List.map (fun (n, d) -> (n, d.area)) drain_diffusion;
    drain_diffusion;
    source_diffusion = diffusion_of spec.source_net;
    strap_widths;
    contacts_per_strip = geo_contacts;
  }

let pp_placement fmt placement =
  Array.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_char fmt ' ';
      match s with
      | Dummy -> Format.pp_print_char fmt 'D'
      | Unit n -> Format.pp_print_string fmt n)
    placement

let generate proc spec = generate_with_placement proc spec (interleave spec)

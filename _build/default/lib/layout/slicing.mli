(** Slicing trees over modules with multiple realisable variants.  The area
    optimiser computes shape functions bottom-up (Stockmeyer) and realises
    the best point top-down into leaf placements — this is what fixes the
    number of folds of every transistor under the global shape
    constraint. *)

type 'a t =
  | Leaf of 'a * (int * int) list
      (** payload plus its realisable (w, h) variants in lambda *)
  | H of 'a t * 'a t  (** children side by side (left, right) *)
  | V of 'a t * 'a t  (** children stacked (bottom, top) *)

type 'a placement = {
  payload : 'a;
  variant : int;  (** chosen variant index into the leaf's variant list *)
  x : int;        (** lower-left corner, lambda *)
  y : int;
  w : int;
  h : int;
}

val shape_function : 'a t -> Shape.t

val optimize :
  ?max_w:int -> ?max_h:int -> ?aspect:float * float ->
  'a t -> ('a placement list * (int * int)) option
(** Minimum-area realisation under the shape constraint: placements of all
    leaves (children aligned bottom-left within their slice) and the total
    bounding box.  [None] when no realisation satisfies the constraint. *)

val leaves : 'a t -> 'a list

val enumerate_area_brute_force : 'a t -> int
(** Exhaustive minimum bounding-box area over all variant combinations —
    exponential; only for cross-checking the optimiser in tests. *)

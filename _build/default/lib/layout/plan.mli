(** The layout tool's two execution modes (paper Section 2):

    - {b parasitic calculation mode}: area optimisation under the shape
      constraint fixes the number of folds of every transistor and the
      width and position of every routing wire, from which all parasitic
      capacitances are computed — {e no layout is physically generated};
    - {b generation mode}: the same computation, additionally emitting the
      full cell geometry.

    The floorplan is a slicing tree whose leaves are device groups: single
    transistors (fold count chosen by the optimiser), matched differential
    pairs (interdigitated or common centroid) and ratioed mirror stacks. *)

type group =
  | Single of { spec : Motif.spec; allowed_folds : int list }
      (** candidate fold counts; the optimiser picks one.  Even counts keep
          the drain on internal strips (minimum drain capacitance). *)
  | Matched_singles of { specs : Motif.spec list; allowed_folds : int list }
      (** devices that must share the same fold choice (e.g. the two
          cascodes of a symmetric branch); placed side by side *)
  | Matched_pair of { spec : Pair.spec; allowed_folds : int list }
      (** candidate per-device finger counts *)
  | Mirror of { spec : Stack.spec; unit_scales : int list }
      (** ratioed stack; each scale k multiplies every element's unit
          count by k and divides the unit width by k, giving the area
          optimiser folding freedom while preserving the ratios *)

val group_name : group -> string

type floorplan = group Slicing.t

type mode = Parasitic_only | Generation

type net_summary = {
  net : string;
  routing_cap : float;               (** trunk + branch cap to ground, F *)
  coupling : (string * float) list;  (** to named neighbouring nets, F *)
  well_cap : float;                  (** n-well junction cap on this net, F *)
}

val net_total : net_summary -> float
(** routing + well + sum of couplings (coupling treated as ground cap in
    the single-ended estimate the sizing tool consumes). *)

type report = {
  device_styles : (string * Device.Folding.style) list;
      (** chosen folding per device name *)
  device_drains : (string * Device.Folding.geom) list;
      (** as-drawn diffusion geometry per device *)
  nets : net_summary list;
  total_w : int;  (** lambda, including the routing channel *)
  total_h : int;
  cell : Cell.t option;  (** [Some] in generation mode *)
  group_cells : (string * Cell.t) list;
      (** per-group cells (generation mode), for rendering *)
}

val run :
  ?max_w:int -> ?max_h:int -> ?aspect:float * float ->
  mode:mode ->
  nets:Route.net_request list ->
  Technology.Process.t -> floorplan -> report
(** Raises [Failure] when no realisation satisfies the shape constraint. *)

val find_net : report -> string -> net_summary option

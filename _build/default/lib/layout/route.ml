module L = Technology.Layer
module R = Technology.Rules
module P = Technology.Process
module E = Technology.Electrical
module G = Geometry

type net_request = {
  net : string;
  current : float;
}

type net_wire = {
  net : string;
  track : int;
  trunk_x0 : int;
  trunk_x1 : int;
  trunk_y : int;
  width : int;
  branch_length : int;
  cap_ground : float;
  coupling : (string * float) list;
}

type result = {
  wires : net_wire list;
  channel_height : int;
  cell : Cell.t;
}

let cap_of_wire proc ~layer ~length ~width =
  let wire =
    match E.wire_of_layer proc.P.electrical layer with
    | Some w -> w
    | None -> invalid_arg "cap_of_wire: not a routing layer"
  in
  let lam = proc.P.lambda in
  let len_m = float_of_int length *. lam in
  let w_m = float_of_int width *. lam in
  (wire.E.area_cap *. len_m *. w_m) +. (2.0 *. wire.E.fringe_cap *. len_m)

(* Ports of a net, as (x-centre, top-y) pairs. *)
let net_ports placed net =
  Cell.ports_of_net placed net
  |> List.map (fun p ->
    let cx, _ = Cell.port_center p in
    (cx, p.Cell.shape.G.y1))

let route proc ~placed ~nets =
  let rules = proc.P.rules in
  let _, _, _, top_y =
    match placed.Cell.rects with [] -> (0, 0, 0, 0) | _ -> Cell.bbox placed
  in
  let channel_y0 = top_y + rules.R.metal2_space in
  (* keep only nets that actually appear in the placement; sort by the
     mean x of their ports so neighbouring tracks carry related nets *)
  let requests =
    List.filter_map
      (fun (req : net_request) ->
        match net_ports placed req.net with
        | [] -> None
        | ports -> Some (req, ports))
      nets
  in
  let requests =
    List.sort
      (fun (_, pa) (_, pb) ->
        let mean ps =
          List.fold_left (fun acc (x, _) -> acc + x) 0 ps / List.length ps
        in
        compare (mean pa) (mean pb))
      requests
  in
  (* assign one track per net, bottom-up, EM-driven widths *)
  let wires_rev, next_y =
    List.fold_left
      (fun (acc, y) ((req, ports) : net_request * (int * int) list) ->
        let width = Motif.required_strap_width proc L.Metal2 ~current:req.current in
        let xs = List.map fst ports in
        let x0 = List.fold_left min max_int xs - (width / 2) in
        let x1 = List.fold_left max min_int xs + (width / 2) + 1 in
        let branch_length =
          List.fold_left (fun acc (_, py) -> acc + max 0 (y - py)) 0 ports
        in
        let wire =
          {
            net = req.net;
            track = List.length acc;
            trunk_x0 = x0;
            trunk_x1 = x1;
            trunk_y = y;
            width;
            branch_length;
            cap_ground = 0.0;
            coupling = [];
          }
        in
        (wire :: acc, y + width + rules.R.metal2_space))
      ([], channel_y0) requests
  in
  let wires = Array.of_list (List.rev wires_rev) in
  let n = Array.length wires in
  (* capacitance to ground: trunk (metal2) + branches (metal1) *)
  let lam = proc.P.lambda in
  let coupling_per_m = proc.P.electrical.E.metal2_wire.E.coupling_cap in
  for i = 0 to n - 1 do
    let w = wires.(i) in
    let trunk_cap =
      cap_of_wire proc ~layer:L.Metal2 ~length:(w.trunk_x1 - w.trunk_x0)
        ~width:w.width
    in
    let branch_cap =
      cap_of_wire proc ~layer:L.Metal1 ~length:w.branch_length
        ~width:rules.R.metal1_width
    in
    (* coupling to the neighbouring track(s), over the x overlap *)
    let couple j =
      if j < 0 || j >= n then None
      else begin
        let o = wires.(j) in
        let overlap = min w.trunk_x1 o.trunk_x1 - max w.trunk_x0 o.trunk_x0 in
        if overlap <= 0 then None
        else Some (o.net, coupling_per_m *. (float_of_int overlap *. lam))
      end
    in
    let coupling = List.filter_map couple [ i - 1; i + 1 ] in
    wires.(i) <- { w with cap_ground = trunk_cap +. branch_cap; coupling }
  done;
  (* draw the channel geometry *)
  let cell = ref (Cell.empty "routing") in
  Array.iter
    (fun w ->
      cell :=
        Cell.add_rect !cell
          (G.rect L.Metal2 ~x0:w.trunk_x0 ~y0:w.trunk_y ~x1:w.trunk_x1
             ~y1:(w.trunk_y + w.width));
      List.iter
        (fun (px, py) ->
          let bw = rules.R.metal1_width in
          let x0 = px - (bw / 2) in
          cell :=
            Cell.add_rect !cell
              (G.rect L.Metal1 ~x0 ~y0:py ~x1:(x0 + bw)
                 ~y1:(w.trunk_y + w.width));
          let vs = rules.R.via1_size in
          cell :=
            Cell.add_rect !cell
              (G.rect L.Via1 ~x0:(px - (vs / 2)) ~y0:(w.trunk_y + ((w.width - vs) / 2))
                 ~x1:(px - (vs / 2) + vs)
                 ~y1:(w.trunk_y + ((w.width - vs) / 2) + vs)))
        (net_ports placed w.net))
    wires;
  let channel_height =
    if n = 0 then 0 else next_y - channel_y0
  in
  { wires = Array.to_list wires; channel_height; cell = !cell }

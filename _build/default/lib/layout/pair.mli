(** Differential-pair device generators: interdigitated (single row, ABBA
    nesting) and common-centroid (two mirrored rows) styles, both with end
    dummies — the paper's matching-constraint options for the input pair. *)

type style = Interdigitated | Common_centroid

val style_to_string : style -> string

type spec = {
  a_name : string;
  b_name : string;
  mtype : Technology.Electrical.mos_type;
  w : float;             (** total width of EACH device, m *)
  l : float;
  nf : int;              (** fingers per device; even and >= 2 for
                             common centroid *)
  tail_net : string;     (** common source *)
  a_drain : string;
  b_drain : string;
  a_gate : string;
  b_gate : string;
  bulk_net : string;
  current : float;       (** drain current of each device, A *)
  style : style;
}

type metrics = {
  centroid_offset_a : float;   (** unit pitches *)
  centroid_offset_b : float;
  orientation_imbalance_a : int;
  orientation_imbalance_b : int;
}

type result = {
  cell : Cell.t;
  rows : Stack.placement list;  (** one row (interdigitated) or two *)
  drain_area_a : float;         (** drawn drain diffusion, m^2 *)
  drain_area_b : float;
  geom_a : Device.Folding.geom; (** as-drawn diffusion geometry per device
                                    (source = half of the shared tail) *)
  geom_b : Device.Folding.geom;
  metrics : metrics;
}

val generate : Technology.Process.t -> spec -> result

(** A layout cell: rectangles plus named ports.  Cells compose by
    translation and abutment; the origin is the lower-left corner of the
    bounding box by convention (enforced by {!normalize}). *)

type port = {
  net : string;                 (** net the port belongs to *)
  shape : Geometry.rect;        (** landing area, usually metal1 *)
}

type t = {
  name : string;
  rects : Geometry.rect list;
  ports : port list;
}

val empty : string -> t
val add_rect : t -> Geometry.rect -> t
val add_rects : t -> Geometry.rect list -> t
val add_port : t -> net:string -> Geometry.rect -> t
val translate : dx:int -> dy:int -> t -> t
val merge : string -> t list -> t
(** Union of rectangles and ports under a new name (no translation). *)

val bbox : t -> int * int * int * int
(** [(x0, y0, x1, y1)]; the empty cell has a zero bbox. *)

val size : t -> int * int
(** Width and height of the bounding box, lambda. *)

val normalize : t -> t
(** Translate so the bounding box lower-left corner is the origin. *)

val ports_of_net : t -> string -> port list
val port_center : port -> int * int
val area : t -> int
(** Bounding-box area, lambda^2. *)

val rect_count : t -> int

val layer_area : t -> Technology.Layer.t -> int
(** Sum of rectangle areas on one layer (overlaps counted twice — the
    generators do not emit overlapping same-layer rectangles except for
    deliberate straps). *)

type choice =
  | Variant of int
  | Compose of int * int

type point = { w : int; h : int; choice : choice }

type t = point array

(* Keep only Pareto-optimal points: sort by (w, h) and drop any point whose
   height is not strictly below every narrower point's height. *)
let pareto pts =
  let sorted =
    List.sort
      (fun a b -> if a.w = b.w then compare a.h b.h else compare a.w b.w)
      pts
  in
  let rec keep acc best_h = function
    | [] -> List.rev acc
    | p :: rest ->
      if p.h < best_h then keep (p :: acc) p.h rest else keep acc best_h rest
  in
  Array.of_list (keep [] max_int sorted)

let of_variants variants =
  pareto (List.mapi (fun i (w, h) -> { w; h; choice = Variant i }) variants)

let cross f a b =
  let pts = ref [] in
  Array.iteri
    (fun i pa ->
      Array.iteri (fun j pb -> pts := f i pa j pb :: !pts) b)
    a;
  pareto !pts

let combine_h a b =
  cross
    (fun i pa j pb ->
      { w = pa.w + pb.w; h = max pa.h pb.h; choice = Compose (i, j) })
    a b

let combine_v a b =
  cross
    (fun i pa j pb ->
      { w = max pa.w pb.w; h = pa.h + pb.h; choice = Compose (i, j) })
    a b

let points t = Array.to_list t

let best ?max_w ?max_h ?aspect t =
  let ok p =
    (match max_w with Some m -> p.w <= m | None -> true)
    && (match max_h with Some m -> p.h <= m | None -> true)
    &&
    match aspect with
    | None -> true
    | Some (lo, hi) ->
      let r = float_of_int p.w /. float_of_int (max 1 p.h) in
      r >= lo && r <= hi
  in
  let besti = ref None in
  Array.iteri
    (fun i p ->
      if ok p then
        match !besti with
        | None -> besti := Some i
        | Some j ->
          let area q = q.w * q.h in
          if area p < area t.(j) then besti := Some i)
    t;
  !besti

let is_pareto t =
  let n = Array.length t in
  let rec go i =
    i >= n - 1
    || (t.(i).w < t.(i + 1).w && t.(i).h > t.(i + 1).h && go (i + 1))
  in
  go 0

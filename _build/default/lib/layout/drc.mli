(** Minimal design-rule checker over a flat cell: per-layer minimum width
    and same-layer minimum spacing.  Touching or overlapping rectangles are
    treated as connected (legal); only strictly positive gaps below the
    rule trigger violations. *)

type violation = {
  rule : string;
  layer : Technology.Layer.t;
  a : Geometry.rect;
  b : Geometry.rect option;  (** second shape for spacing violations *)
}

val min_width : Technology.Rules.t -> Technology.Layer.t -> int option
(** Minimum drawn width of a layer; [None] when unconstrained. *)

val min_spacing : Technology.Rules.t -> Technology.Layer.t -> int option

val check : Technology.Process.t -> Cell.t -> violation list
val pp_violation : Format.formatter -> violation -> unit

(** Channel routing with parasitic estimation.  Nets are routed with one
    horizontal trunk per net in a channel above the placed modules
    (one track each, EM-sized width) and vertical metal1 branches dropping
    to every port.  This fully determines wire widths and positions, so
    the routing capacitances — area, fringe and coupling between adjacent
    tracks — are computed exactly from the drawn geometry, as the paper's
    parasitic-calculation mode requires. *)

type net_request = {
  net : string;
  current : float;  (** worst-case DC current carried by the net, A *)
}

type net_wire = {
  net : string;
  track : int;              (** track index in the channel, 0 = lowest *)
  trunk_x0 : int;           (** lambda *)
  trunk_x1 : int;
  trunk_y : int;
  width : int;              (** trunk width, lambda *)
  branch_length : int;      (** total vertical branch length, lambda *)
  cap_ground : float;       (** area + fringe capacitance to substrate, F *)
  coupling : (string * float) list;  (** to neighbouring trunks, F *)
}

type result = {
  wires : net_wire list;
  channel_height : int;     (** lambda *)
  cell : Cell.t;            (** drawn trunks, branches and vias *)
}

val route :
  Technology.Process.t ->
  placed:Cell.t ->
  nets:net_request list ->
  result
(** Route every requested net that has at least one port in [placed].
    Nets with a single port get no trunk but still a stub branch.  Ports on
    nets not listed in [nets] are ignored (supply rails handled by the
    caller). *)

val cap_of_wire :
  Technology.Process.t -> layer:Technology.Layer.t ->
  length:int -> width:int -> float
(** Area + fringe capacitance of a straight wire segment given in
    lambda. *)

(** Matched transistor stacks (current mirrors and the like), following the
    paper's matching constraints: unit transistors interleaved so every
    element is centred on the stack midpoint, dummy transistors at both
    ends, current-direction (channel orientation) balancing, and
    EM-driven wire widths and contact counts inside the module.

    An element of ratio k contributes k unit transistors; the placement
    algorithm assigns symmetric position pairs from the centre outwards to
    the element with the most remaining units, which yields exact common
    centroids for even unit counts and minimal offset otherwise. *)

type element = {
  el_name : string;
  units : int;            (** ratio (number of unit transistors), >= 1 *)
  drain_net : string;
  current : float;        (** DC drain current of the whole element, A *)
}

type gate_style =
  | Common of string
      (** all gates tied by one strap to the given net (current mirror) *)
  | Rails of (string * string) list
      (** per-element gate nets: the first listed element's gates route to
          a rail above the row, the second's to a rail below (differential
          structures).  At most two distinct nets are supported. *)

type spec = {
  elements : element list;
  mtype : Technology.Electrical.mos_type;
  unit_w : float;         (** width of one unit transistor, m *)
  l : float;
  source_net : string;
  gate : gate_style;
  bulk_net : string;
  dummies : bool;         (** add a dummy unit at each end *)
}

type slot = Dummy | Unit of string  (** element name *)

type placement = slot array
(** Left-to-right unit sequence, including dummies when requested. *)

val interleave : spec -> placement

val centroid_offset : placement -> string -> float
(** Distance between an element's unit centroid and the stack midpoint, in
    unit pitches.  0 for perfectly centred elements. *)

val orientation_imbalance : placement -> string -> int
(** |units at even positions - units at odd positions| for the element: in
    a shared-diffusion stack, position parity flips the current direction,
    so 0 means the element's current-direction mismatch cancels
    (Malavasi-Pandini criterion). *)

type diffusion = { area : float; perim : float }
(** Drawn junction geometry, m^2 / m (perimeter excludes gate edges). *)

type result = {
  cell : Cell.t;
  placement : placement;
  drain_areas : (string * float) list;
      (** per element: drawn drain diffusion area, m^2 *)
  drain_diffusion : (string * diffusion) list;
  source_diffusion : diffusion;
      (** whole shared source net (split among elements by the caller) *)
  strap_widths : (string * int) list;
      (** per element: EM-driven metal strap width, lambda *)
  contacts_per_strip : int;
}

val generate_with_placement :
  Technology.Process.t -> spec -> placement -> result
(** Realise an explicitly given unit sequence (used by the common-centroid
    pair generator, which mirrors a row). *)

val generate : Technology.Process.t -> spec -> result
(** Geometric realisation: a single row of units with shared source strips,
    drain strips shared only between adjacent units of the same element
    (different-element drains are split with an active break), poly gates
    tied by a strap, dummies tied to the source net. *)

val pp_placement : Format.formatter -> placement -> unit
(** e.g. ["D 3 2 3 3 1 3 3 2 3 D"]. *)

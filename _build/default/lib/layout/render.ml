module L = Technology.Layer
module G = Geometry

let ascii ?(max_cols = 100) cell =
  let x0, y0, x1, y1 = Cell.bbox cell in
  let w = max 1 (x1 - x0) and h = max 1 (y1 - y0) in
  let scale = max 1 ((w + max_cols - 1) / max_cols) in
  (* characters are roughly twice as tall as wide *)
  let sy = 2 * scale in
  let cols = (w + scale - 1) / scale in
  let rows = (h + sy - 1) / sy in
  let grid = Array.make_matrix rows cols ' ' in
  let sorted =
    List.sort (fun a b -> L.compare a.G.layer b.G.layer) cell.Cell.rects
  in
  List.iter
    (fun r ->
      let cx0 = (r.G.x0 - x0) / scale and cx1 = (r.G.x1 - x0 + scale - 1) / scale in
      let cy0 = (r.G.y0 - y0) / sy and cy1 = (r.G.y1 - y0 + sy - 1) / sy in
      for cy = max 0 cy0 to min (rows - 1) (cy1 - 1) do
        for cx = max 0 cx0 to min (cols - 1) (cx1 - 1) do
          (* rows are flipped: row 0 is the top of the layout *)
          grid.(rows - 1 - cy).(cx) <- L.ascii_char r.G.layer
        done
      done)
    sorted;
  let buf = Buffer.create (rows * (cols + 1)) in
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf

let layer_color = function
  | L.Nwell -> "#dddd99"
  | L.Active -> "#33aa33"
  | L.Pplus -> "#ddaaaa"
  | L.Nplus -> "#aaaadd"
  | L.Poly -> "#cc3333"
  | L.Contact -> "#111111"
  | L.Metal1 -> "#3366cc"
  | L.Via1 -> "#663399"
  | L.Metal2 -> "#cc9933"

let svg cell =
  let x0, y0, x1, y1 = Cell.bbox cell in
  let buf = Buffer.create 4096 in
  let margin = 2 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"%d %d %d %d\">\n"
       (x0 - margin) (y0 - margin)
       (x1 - x0 + (2 * margin))
       (y1 - y0 + (2 * margin)));
  let sorted =
    List.sort (fun a b -> L.compare a.G.layer b.G.layer) cell.Cell.rects
  in
  List.iter
    (fun r ->
      (* flip y so the SVG shows the layout with +y up *)
      let fy = y1 - r.G.y1 + y0 in
      Buffer.add_string buf
        (Printf.sprintf
           "  <rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" \
            fill-opacity=\"0.55\"><title>%s</title></rect>\n"
           r.G.x0 fy (G.width r) (G.height r)
           (layer_color r.G.layer)
           (L.to_string r.G.layer)))
    sorted;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let legend =
  String.concat "  "
    (List.map
       (fun l -> Printf.sprintf "%c=%s" (L.ascii_char l) (L.to_string l))
       L.all)

type port = {
  net : string;
  shape : Geometry.rect;
}

type t = {
  name : string;
  rects : Geometry.rect list;
  ports : port list;
}

let empty name = { name; rects = []; ports = [] }
let add_rect t r = { t with rects = r :: t.rects }
let add_rects t rs = { t with rects = List.rev_append rs t.rects }
let add_port t ~net shape = { t with ports = { net; shape } :: t.ports }

let translate ~dx ~dy t =
  {
    t with
    rects = List.map (Geometry.translate ~dx ~dy) t.rects;
    ports =
      List.map
        (fun p -> { p with shape = Geometry.translate ~dx ~dy p.shape })
        t.ports;
  }

let merge name cells =
  {
    name;
    rects = List.concat_map (fun c -> c.rects) cells;
    ports = List.concat_map (fun c -> c.ports) cells;
  }

let bbox t =
  match Geometry.bbox_of t.rects with
  | Some b -> b
  | None -> (0, 0, 0, 0)

let size t =
  let x0, y0, x1, y1 = bbox t in
  (x1 - x0, y1 - y0)

let normalize t =
  let x0, y0, _, _ = bbox t in
  translate ~dx:(-x0) ~dy:(-y0) t

let ports_of_net t net = List.filter (fun p -> p.net = net) t.ports

let port_center p =
  let r = p.shape in
  ((r.Geometry.x0 + r.Geometry.x1) / 2, (r.Geometry.y0 + r.Geometry.y1) / 2)

let area t =
  let w, h = size t in
  w * h

let rect_count t = List.length t.rects

let layer_area t layer =
  List.fold_left
    (fun acc r ->
      if r.Geometry.layer = layer then acc + Geometry.area r else acc)
    0 t.rects

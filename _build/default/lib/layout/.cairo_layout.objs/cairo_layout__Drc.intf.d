lib/layout/drc.mli: Cell Format Geometry Technology

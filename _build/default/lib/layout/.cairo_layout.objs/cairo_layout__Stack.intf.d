lib/layout/stack.mli: Cell Format Technology

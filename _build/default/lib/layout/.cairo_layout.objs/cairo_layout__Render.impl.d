lib/layout/render.ml: Array Buffer Cell Geometry List Printf String Technology

lib/layout/cell.mli: Geometry Technology

lib/layout/shape.ml: Array List

lib/layout/geometry.mli: Format Technology

lib/layout/pair.ml: Array Cell Device Float List Stack Technology

lib/layout/slicing.mli: Shape

lib/layout/shape.mli:

lib/layout/route.ml: Array Cell Geometry List Motif Technology

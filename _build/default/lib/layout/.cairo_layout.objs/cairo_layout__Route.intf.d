lib/layout/route.mli: Cell Technology

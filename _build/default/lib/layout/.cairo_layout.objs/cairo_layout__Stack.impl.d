lib/layout/stack.ml: Array Cell Float Format Geometry Hashtbl List Motif Technology

lib/layout/slicing.ml: Array List Shape

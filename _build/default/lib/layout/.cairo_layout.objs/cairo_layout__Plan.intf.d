lib/layout/plan.mli: Cell Device Motif Pair Route Slicing Stack Technology

lib/layout/motif.mli: Cell Device Technology

lib/layout/motif.ml: Cell Device Float Fun Geometry Hashtbl List Technology

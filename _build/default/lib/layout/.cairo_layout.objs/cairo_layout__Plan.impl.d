lib/layout/plan.ml: Array Cell Device Geometry List Motif Pair Route Slicing Stack String Technology

lib/layout/geometry.ml: Format List Technology

lib/layout/pair.mli: Cell Device Stack Technology

lib/layout/cell.ml: Geometry List

lib/layout/drc.ml: Array Cell Format Fun Geometry Hashtbl List Printf Technology

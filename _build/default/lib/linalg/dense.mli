(** Dense matrices over an abstract field with LU factorisation and linear
    solve.  Sized for MNA systems of a few dozen unknowns; no sparsity is
    exploited (circuits in this repository have < 100 nodes). *)

exception Singular of int
(** Raised by the factorisation when no usable pivot exists in the given
    column. *)

module Make (F : Field.S) : sig
  type t
  (** Mutable dense matrix. *)

  val create : int -> int -> t
  (** [create rows cols] is a zero-filled matrix. *)

  val identity : int -> t
  val rows : t -> int
  val cols : t -> int
  val get : t -> int -> int -> F.t
  val set : t -> int -> int -> F.t -> unit

  val add_to : t -> int -> int -> F.t -> unit
  (** [add_to m i j x] accumulates [x] into [m.(i).(j)] — the MNA "stamp"
      primitive. *)

  val copy : t -> t
  val of_arrays : F.t array array -> t
  val to_arrays : t -> F.t array array
  val map : (F.t -> F.t) -> t -> t
  val matvec : t -> F.t array -> F.t array
  val matmul : t -> t -> t
  val transpose : t -> t

  type lu
  (** Packed LU factorisation with its row-permutation. *)

  val lu_factor : t -> lu
  (** Factor with partial pivoting.  Raises {!Singular} when a column has no
      pivot above the numerical threshold.  The input matrix is not
      modified. *)

  val lu_solve : lu -> F.t array -> F.t array
  (** Solve [A x = b] given the factorisation of [A]. *)

  val solve : t -> F.t array -> F.t array
  (** [solve a b] factors and solves in one call. *)

  val residual_norm : t -> F.t array -> F.t array -> float
  (** [residual_norm a x b] is the max-norm of [A x - b], for tests. *)

  val pp : Format.formatter -> t -> unit
end

exception Singular of int

module Make (F : Field.S) = struct
  type t = { r : int; c : int; a : F.t array array }

  let create r c = { r; c; a = Array.make_matrix r c F.zero }

  let identity n =
    let m = create n n in
    for i = 0 to n - 1 do
      m.a.(i).(i) <- F.one
    done;
    m

  let rows m = m.r
  let cols m = m.c
  let get m i j = m.a.(i).(j)
  let set m i j x = m.a.(i).(j) <- x
  let add_to m i j x = m.a.(i).(j) <- F.add m.a.(i).(j) x
  let copy m = { m with a = Array.map Array.copy m.a }

  let of_arrays a =
    let r = Array.length a in
    assert (r > 0);
    let c = Array.length a.(0) in
    Array.iter (fun row -> assert (Array.length row = c)) a;
    { r; c; a = Array.map Array.copy a }

  let to_arrays m = Array.map Array.copy m.a
  let map f m = { m with a = Array.map (Array.map f) m.a }

  let matvec m v =
    assert (Array.length v = m.c);
    Array.init m.r (fun i ->
      let acc = ref F.zero in
      for j = 0 to m.c - 1 do
        acc := F.add !acc (F.mul m.a.(i).(j) v.(j))
      done;
      !acc)

  let matmul x y =
    assert (x.c = y.r);
    let z = create x.r y.c in
    for i = 0 to x.r - 1 do
      for k = 0 to x.c - 1 do
        let xik = x.a.(i).(k) in
        if F.magnitude xik > 0.0 then
          for j = 0 to y.c - 1 do
            z.a.(i).(j) <- F.add z.a.(i).(j) (F.mul xik y.a.(k).(j))
          done
      done
    done;
    z

  let transpose m =
    let t = create m.c m.r in
    for i = 0 to m.r - 1 do
      for j = 0 to m.c - 1 do
        t.a.(j).(i) <- m.a.(i).(j)
      done
    done;
    t

  type lu = { n : int; lu_a : F.t array array; perm : int array }

  (* Doolittle LU with partial pivoting, stored in place in a copy of the
     input.  The permutation records row swaps for the solve phase. *)
  let lu_factor m =
    assert (m.r = m.c);
    let n = m.r in
    let a = Array.map Array.copy m.a in
    let perm = Array.init n (fun i -> i) in
    for k = 0 to n - 1 do
      (* pivot selection *)
      let pivot = ref k and best = ref (F.magnitude a.(k).(k)) in
      for i = k + 1 to n - 1 do
        let v = F.magnitude a.(i).(k) in
        if v > !best then begin
          best := v;
          pivot := i
        end
      done;
      if !best < 1e-300 then raise (Singular k);
      if !pivot <> k then begin
        let tmp = a.(k) in
        a.(k) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tp = perm.(k) in
        perm.(k) <- perm.(!pivot);
        perm.(!pivot) <- tp
      end;
      let akk = a.(k).(k) in
      for i = k + 1 to n - 1 do
        let factor = F.div a.(i).(k) akk in
        a.(i).(k) <- factor;
        if F.magnitude factor > 0.0 then
          for j = k + 1 to n - 1 do
            a.(i).(j) <- F.sub a.(i).(j) (F.mul factor a.(k).(j))
          done
      done
    done;
    { n; lu_a = a; perm }

  let lu_solve { n; lu_a = a; perm } b =
    assert (Array.length b = n);
    let x = Array.init n (fun i -> b.(perm.(i))) in
    (* forward substitution, unit lower triangle *)
    for i = 1 to n - 1 do
      for j = 0 to i - 1 do
        x.(i) <- F.sub x.(i) (F.mul a.(i).(j) x.(j))
      done
    done;
    (* back substitution *)
    for i = n - 1 downto 0 do
      for j = i + 1 to n - 1 do
        x.(i) <- F.sub x.(i) (F.mul a.(i).(j) x.(j))
      done;
      x.(i) <- F.div x.(i) a.(i).(i)
    done;
    x

  let solve a b = lu_solve (lu_factor a) b

  let residual_norm m x b =
    let ax = matvec m x in
    let worst = ref 0.0 in
    Array.iteri
      (fun i axi -> worst := Float.max !worst (F.magnitude (F.sub axi b.(i))))
      ax;
    !worst

  let pp fmt m =
    for i = 0 to m.r - 1 do
      Format.fprintf fmt "[";
      for j = 0 to m.c - 1 do
        if j > 0 then Format.fprintf fmt ", ";
        F.pp fmt m.a.(i).(j)
      done;
      Format.fprintf fmt "]@."
    done
end

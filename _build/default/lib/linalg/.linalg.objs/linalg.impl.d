lib/linalg/linalg.ml: Dense Field

lib/linalg/field.mli: Complex Format

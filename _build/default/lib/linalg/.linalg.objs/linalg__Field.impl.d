lib/linalg/field.ml: Complex Float Format

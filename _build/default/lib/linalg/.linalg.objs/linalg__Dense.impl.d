lib/linalg/dense.ml: Array Field Float Format

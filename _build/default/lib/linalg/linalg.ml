(** Convenience instantiations of the dense linear algebra functor. *)

module Field = Field
module Dense = Dense

module Real = Dense.Make (Field.Real)
module Cx = Dense.Make (Field.Cx)

exception Singular = Dense.Singular

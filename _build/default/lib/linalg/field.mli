(** Abstract scalar field for the dense linear algebra functor.  Two
    instances are provided: {!Real} (floats, used by the DC Newton solver)
    and {!Cx} (complex numbers, used by the AC analysis). *)

module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val magnitude : t -> float
  (** Modulus, used for pivot selection and residual norms. *)

  val of_float : float -> t
  val pp : Format.formatter -> t -> unit
end

module Real : S with type t = float
module Cx : S with type t = Complex.t

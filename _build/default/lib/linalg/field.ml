module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val magnitude : t -> float
  val of_float : float -> t
  val pp : Format.formatter -> t -> unit
end

module Real = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let magnitude = Float.abs
  let of_float x = x
  let pp fmt x = Format.fprintf fmt "%g" x
end

module Cx = struct
  type t = Complex.t

  let zero = Complex.zero
  let one = Complex.one
  let add = Complex.add
  let sub = Complex.sub
  let mul = Complex.mul
  let div = Complex.div
  let neg = Complex.neg
  let magnitude = Complex.norm
  let of_float x = { Complex.re = x; im = 0.0 }
  let pp fmt (x : t) = Format.fprintf fmt "%g%+gi" x.re x.im
end

lib/phys/units.ml: Float Format List Printf String

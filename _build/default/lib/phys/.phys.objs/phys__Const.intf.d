lib/phys/const.mli:

lib/phys/const.ml:

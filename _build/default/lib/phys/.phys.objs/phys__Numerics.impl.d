lib/phys/numerics.ml: Array Float Printf

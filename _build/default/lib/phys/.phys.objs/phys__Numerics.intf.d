lib/phys/numerics.mli:

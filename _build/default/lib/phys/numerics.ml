exception No_convergence of string

let default_tol = 1e-12

let bisect ?(tol = default_tol) ?(max_iter = 200) ~f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if fa *. fb > 0.0 then
    raise (No_convergence (Printf.sprintf "bisect: no sign change on [%g, %g]" a b))
  else
    let rec loop a fa b i =
      let m = 0.5 *. (a +. b) in
      if i >= max_iter || Float.abs (b -. a) <= tol *. (1.0 +. Float.abs m) then m
      else
        let fm = f m in
        if fm = 0.0 then m
        else if fa *. fm < 0.0 then loop a fa m (i + 1)
        else loop m fm b (i + 1)
    in
    loop a fa b 0

(* Brent's method following the classical Numerical Recipes formulation:
   inverse quadratic interpolation / secant step, falling back to bisection
   whenever the interpolated step misbehaves. *)
let brent ?(tol = default_tol) ?(max_iter = 200) ~f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if fa *. fb > 0.0 then
    raise (No_convergence (Printf.sprintf "brent: no sign change on [%g, %g]" a b))
  else begin
    let a = ref a and b = ref b and c = ref a in
    let fa = ref fa and fb = ref fb and fc = ref fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref None in
    let i = ref 0 in
    while !result = None && !i < max_iter do
      incr i;
      if !fb *. !fc > 0.0 then begin
        c := !a; fc := !fa; d := !b -. !a; e := !d
      end;
      if Float.abs !fc < Float.abs !fb then begin
        a := !b; b := !c; c := !a;
        fa := !fb; fb := !fc; fc := !fa
      end;
      let tol1 = 2.0 *. epsilon_float *. Float.abs !b +. 0.5 *. tol in
      let xm = 0.5 *. (!c -. !b) in
      if Float.abs xm <= tol1 || !fb = 0.0 then result := Some !b
      else begin
        if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
          let s = !fb /. !fa in
          let p, q =
            if !a = !c then
              let p = 2.0 *. xm *. s in
              (p, 1.0 -. s)
            else begin
              let q = !fa /. !fc and r = !fb /. !fc in
              let p = s *. (2.0 *. xm *. q *. (q -. r) -. (!b -. !a) *. (r -. 1.0)) in
              (p, (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0))
            end
          in
          let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
          let min1 = 3.0 *. xm *. q -. Float.abs (tol1 *. q) in
          let min2 = Float.abs (!e *. q) in
          if 2.0 *. p < Float.min min1 min2 then begin
            e := !d; d := p /. q
          end
          else begin
            d := xm; e := !d
          end
        end
        else begin
          d := xm; e := !d
        end;
        a := !b; fa := !fb;
        if Float.abs !d > tol1 then b := !b +. !d
        else b := !b +. (if xm >= 0.0 then tol1 else -.tol1);
        fb := f !b
      end
    done;
    match !result with
    | Some x -> x
    | None -> !b
  end

let secant ?(tol = default_tol) ?(max_iter = 100) ~f x0 x1 =
  let rec loop x0 f0 x1 f1 i =
    if Float.abs f1 <= tol then x1
    else if i >= max_iter then
      raise (No_convergence "secant: iteration budget exhausted")
    else
      let denom = f1 -. f0 in
      if denom = 0.0 then raise (No_convergence "secant: flat function")
      else
        let x2 = x1 -. f1 *. (x1 -. x0) /. denom in
        if Float.abs (x2 -. x1) <= tol *. (1.0 +. Float.abs x2) then x2
        else loop x1 f1 x2 (f x2) (i + 1)
  in
  loop x0 (f x0) x1 (f x1) 0

let fixed_point ?(tol = default_tol) ?(max_iter = 200) ~f x0 =
  let rec loop x i =
    let x' = f x in
    if Float.abs (x' -. x) <= tol *. (1.0 +. Float.abs x') then x'
    else if i >= max_iter then
      raise (No_convergence "fixed_point: iteration budget exhausted")
    else loop x' (i + 1)
  in
  loop x0 0

let monotonic_search ?(rel_tol = 1e-9) ?(max_iter = 200) ~f ~target lo hi =
  let g x = f x -. target in
  (* Expand the bracket geometrically until it contains the target. *)
  let rec expand_hi hi i =
    if i > 60 then raise (No_convergence "monotonic_search: target above range")
    else if g hi >= 0.0 then hi
    else expand_hi (hi *. 2.0) (i + 1)
  in
  let rec shrink_lo lo i =
    if i > 60 then raise (No_convergence "monotonic_search: target below range")
    else if g lo <= 0.0 then lo
    else shrink_lo (lo /. 2.0) (i + 1)
  in
  let hi = expand_hi hi 0 in
  let lo = shrink_lo lo 0 in
  brent ~tol:(rel_tol *. (Float.abs hi +. Float.abs lo)) ~max_iter ~f:g lo hi

let simpson ?(n = 512) ~f a b =
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (b -. a) /. float_of_int n in
  let sum = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let x = a +. float_of_int i *. h in
    sum := !sum +. (if i mod 2 = 1 then 4.0 else 2.0) *. f x
  done;
  !sum *. h /. 3.0

let integrate_log ?(points_per_decade = 64) ~f a b =
  assert (a > 0.0 && b > a);
  let decades = log10 (b /. a) in
  let n = max 8 (int_of_float (Float.ceil (decades *. float_of_int points_per_decade))) in
  (* substitute x = e^u so that dx = x du *)
  let g u = let x = exp u in f x *. x in
  simpson ~n ~f:g (log a) (log b)

let logspace a b n =
  assert (a > 0.0 && b > 0.0 && n >= 2);
  let la = log10 a and lb = log10 b in
  Array.init n (fun i ->
    10.0 ** (la +. (lb -. la) *. float_of_int i /. float_of_int (n - 1)))

let linspace a b n =
  assert (n >= 2);
  Array.init n (fun i -> a +. (b -. a) *. float_of_int i /. float_of_int (n - 1))

let interp_linear pts x =
  let n = Array.length pts in
  assert (n >= 1);
  let x0, y0 = pts.(0) and xn, yn = pts.(n - 1) in
  if x <= x0 then y0
  else if x >= xn then yn
  else begin
    (* binary search for the segment containing x *)
    let rec find lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if fst pts.(mid) <= x then find mid hi else find lo mid
    in
    let i = find 0 (n - 1) in
    let xa, ya = pts.(i) and xb, yb = pts.(i + 1) in
    if xb = xa then ya else ya +. (yb -. ya) *. (x -. xa) /. (xb -. xa)
  end

let close ?(rel = 1e-9) ?(abs_tol = 1e-12) a b =
  Float.abs (a -. b) <= Float.max abs_tol (rel *. Float.max (Float.abs a) (Float.abs b))

let boltzmann = 1.380649e-23
let electron_charge = 1.602176634e-19
let eps_0 = 8.8541878128e-12
let eps_sio2 = 3.9 *. eps_0
let eps_si = 11.7 *. eps_0
let room_temperature = 300.15
let thermal_voltage t = boltzmann *. t /. electron_charge

(** Physical constants used throughout the device models and the noise
    analysis.  All values are in SI units. *)

val boltzmann : float
(** Boltzmann constant [J/K]. *)

val electron_charge : float
(** Elementary charge [C]. *)

val eps_0 : float
(** Vacuum permittivity [F/m]. *)

val eps_sio2 : float
(** Permittivity of silicon dioxide [F/m]. *)

val eps_si : float
(** Permittivity of silicon [F/m]. *)

val room_temperature : float
(** Default analysis temperature [K] (300.15 K = 27 C). *)

val thermal_voltage : float -> float
(** [thermal_voltage t] is kT/q at temperature [t] in kelvin. *)

let femto = 1e-15
let pico = 1e-12
let nano = 1e-9
let micro = 1e-6
let milli = 1e-3
let kilo = 1e3
let mega = 1e6
let giga = 1e9

let prefixes =
  [ (1e-18, "a"); (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u");
    (1e-3, "m"); (1.0, ""); (1e3, "k"); (1e6, "M"); (1e9, "G"); (1e12, "T") ]

(* Largest prefix whose scale does not exceed |x|; values below 1e-18 use the
   smallest prefix. *)
let with_prefix x =
  if x = 0.0 || Float.is_nan x || Float.is_nan (x -. x) then (x, "")
  else
    let mag = Float.abs x in
    let rec find best = function
      | [] -> best
      | (scale, _) as p :: rest -> if scale <= mag then find p rest else best
    in
    let scale, name = find (List.hd prefixes) prefixes in
    (x /. scale, name)

let trim_zeros s =
  if String.contains s '.' then begin
    let rec last i = if i > 0 && s.[i] = '0' then last (i - 1) else i in
    let i = last (String.length s - 1) in
    let i = if s.[i] = '.' then i - 1 else i in
    String.sub s 0 (i + 1)
  end
  else s

let to_si_string ?(digits = 3) unit x =
  if Float.is_nan x then "nan"
  else if x = 0.0 then Printf.sprintf "0 %s" unit
  else
    let m, p = with_prefix x in
    Printf.sprintf "%s %s%s" (trim_zeros (Printf.sprintf "%.*f" digits m)) p unit

let pp_si ?digits unit fmt x =
  Format.pp_print_string fmt (to_si_string ?digits unit x)

(** Engineering-notation helpers: SI prefixes for building values and for
    pretty-printing reports (e.g. ["65.0 MHz"], ["3.0 pF"]). *)

val femto : float
val pico : float
val nano : float
val micro : float
val milli : float
val kilo : float
val mega : float
val giga : float

val with_prefix : float -> float * string
(** [with_prefix x] scales [x] into [1.0, 1000.0) and returns the scaled
    mantissa with the matching SI prefix string ("" for unit scale).
    [with_prefix 6.5e7 = (65.0, "M")].  Zero maps to [(0.0, "")]. *)

val pp_si : ?digits:int -> string -> Format.formatter -> float -> unit
(** [pp_si ~digits unit fmt x] prints [x] in engineering notation followed by
    [unit], e.g. [pp_si "Hz" fmt 6.5e7] prints ["65 MHz"].  [digits] is the
    number of significant decimal places of the mantissa (default 3). *)

val to_si_string : ?digits:int -> string -> float -> string
(** String version of {!pp_si}. *)

(** Small numerical toolbox: root finding, fixed points, integration,
    interpolation and sweep generation.  These routines back the sizing
    iterations (monotonic width search, phase-margin length search), the
    measurement extraction of the simulator (unity-gain frequency search,
    crossing detection) and the noise integration. *)

exception No_convergence of string
(** Raised by iterative routines when the iteration budget is exhausted. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f a b] finds a root of [f] in [[a, b]]; [f a] and [f b] must
    have opposite signs.  [tol] is the absolute interval tolerance
    (default 1e-12 relative to the interval size). *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** Brent's method: inverse-quadratic/secant with a bisection safeguard.
    Same contract as {!bisect} but converges superlinearly. *)

val secant :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [secant ~f x0 x1] iterates the secant method from the two starting
    points.  No bracketing is required but convergence is not guaranteed;
    raises {!No_convergence} on failure. *)

val fixed_point :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float
(** [fixed_point ~f x0] iterates [x <- f x] until [|f x - x| <= tol *. (1 +
    |x|)]. *)

val monotonic_search :
  ?rel_tol:float -> ?max_iter:int ->
  f:(float -> float) -> target:float -> float -> float -> float
(** [monotonic_search ~f ~target lo hi] finds [x] with [f x = target] for
    an increasing [f], expanding [hi] geometrically if [f hi < target] and
    shrinking [lo] if [f lo > target], then bisecting.  This is the
    "simple monotonic numerical iteration" of the sizing tool. *)

val simpson : ?n:int -> f:(float -> float) -> float -> float -> float
(** [simpson ~f a b] integrates [f] over [[a, b]] with composite Simpson on
    [n] (even, default 512) intervals. *)

val integrate_log : ?points_per_decade:int -> f:(float -> float) -> float -> float -> float
(** [integrate_log ~f a b] integrates [f] over [[a, b]] ([0 < a < b]) using a
    logarithmic change of variable, suitable for noise spectral densities
    spanning many decades. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] points logarithmically spaced from [a] to [b]
    inclusive ([a, b > 0], [n >= 2]). *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] points linearly spaced from [a] to [b]. *)

val interp_linear : (float * float) array -> float -> float
(** [interp_linear pts x] linearly interpolates the piecewise-linear function
    through [pts] (sorted by abscissa) at [x], clamping outside the range. *)

val close : ?rel:float -> ?abs_tol:float -> float -> float -> bool
(** [close a b] is true when [a] and [b] agree within relative tolerance
    [rel] (default 1e-9) or absolute tolerance [abs_tol] (default 1e-12). *)

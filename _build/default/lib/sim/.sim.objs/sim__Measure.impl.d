lib/sim/measure.ml: Acs Array Complex Float Phys

lib/sim/tran.ml: Array Dcop Device Float Indexing Linalg List Map Netlist Phys Printf Stamps String

lib/sim/dcop.ml: Array Device Float Format Indexing Linalg List Netlist Phys Stamps Technology

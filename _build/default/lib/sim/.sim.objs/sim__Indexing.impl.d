lib/sim/indexing.ml: Array List Map Netlist Printf String

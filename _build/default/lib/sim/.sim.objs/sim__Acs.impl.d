lib/sim/acs.ml: Array Complex Dcop Device Float Indexing Linalg List Netlist

lib/sim/tran.mli: Device Netlist Technology

lib/sim/noise.mli: Acs Complex Dcop

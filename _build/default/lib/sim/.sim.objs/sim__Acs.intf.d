lib/sim/acs.mli: Complex Dcop

lib/sim/dcop.mli: Device Format Indexing Netlist Technology

lib/sim/noise.ml: Acs Complex Dcop Device List Netlist Phys

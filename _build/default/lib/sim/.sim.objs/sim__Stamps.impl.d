lib/sim/stamps.ml: Array Device Indexing Linalg Technology

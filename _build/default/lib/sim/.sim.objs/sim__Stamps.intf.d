lib/sim/stamps.mli: Device Indexing Linalg Technology

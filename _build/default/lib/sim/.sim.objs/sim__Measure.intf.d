lib/sim/measure.mli: Acs

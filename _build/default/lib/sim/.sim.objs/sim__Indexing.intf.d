lib/sim/indexing.mli: Netlist

(** Shared MNA stamping primitives for the nonlinear analyses (DC Newton
    and transient): residual accumulation (KCL currents leaving each node)
    and Jacobian entries.  The AC analysis uses its own complex assembly. *)

type ctx = {
  idx : Indexing.t;
  jac : Linalg.Real.t;
  f : float array;
  x : float array;  (** current iterate *)
}

val make : Indexing.t -> float array -> ctx
(** Fresh zeroed Jacobian and residual around iterate [x]. *)

val volt : ctx -> string -> float
val add_current : ctx -> string -> float -> unit
(** Accumulate a current leaving the node into the residual. *)

val add_jac : ctx -> string -> string -> float -> unit
(** [add_jac ctx np nq v]: d(residual at np)/d(voltage at nq) += v;
    silently skipped when either node is ground. *)

val resistor : ctx -> p:string -> n:string -> r:float -> unit

val conductor : ctx -> p:string -> n:string -> g:float -> i_extra:float -> unit
(** Linear companion branch: current [g * (vp - vn) + i_extra] from [p] to
    [n] — used for capacitor companions in transient analysis. *)

val isource : ctx -> p:string -> n:string -> float -> unit
(** DC current value flowing p -> n through the source. *)

val vsource : ctx -> row:int -> p:string -> n:string -> float -> unit
(** Ideal voltage source with branch-current unknown at [row]. *)

val gmin_all : ctx -> float -> unit

val device_bias :
  Device.Mos.t -> vd:float -> vg:float -> vs:float -> vb:float -> Device.Model.bias
(** Internal-polarity bias of a MOS from its node voltages. *)

val mos :
  Technology.Process.t -> Device.Model.kind -> ctx ->
  dev:Device.Mos.t -> d:string -> g:string -> s:string -> b:string -> unit
(** Nonlinear MOS stamp: drain current residual plus gm/gds/gmb Jacobian
    entries (polarity-independent, see the model documentation). *)

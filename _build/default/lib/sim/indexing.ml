module SM = Map.Make (String)

type t = {
  node_of : int SM.t;
  vsrc_of : int SM.t;
  names : string array;
  n_nodes : int;
  n_total : int;
}

let build circuit =
  let nodes = Netlist.Circuit.nodes circuit in
  let node_of =
    List.fold_left
      (fun (m, i) name -> (SM.add name i m, i + 1))
      (SM.empty, 0) nodes
    |> fst
  in
  let n_nodes = List.length nodes in
  let vsrc_of, n_total =
    List.fold_left
      (fun (m, i) e ->
        match e with
        | Netlist.Element.Vsource { name; _ } -> (SM.add name i m, i + 1)
        | Netlist.Element.Mos _ | Netlist.Element.Resistor _
        | Netlist.Element.Capacitor _ | Netlist.Element.Isource _ -> (m, i))
      (SM.empty, n_nodes)
      (Netlist.Circuit.elements circuit)
  in
  { node_of; vsrc_of; names = Array.of_list nodes; n_nodes; n_total }

let size t = t.n_total
let node_count t = t.n_nodes

let node_index t name =
  if name = Netlist.Element.ground then None
  else
    match SM.find_opt name t.node_of with
    | Some i -> Some i
    | None -> invalid_arg (Printf.sprintf "Indexing.node_index: unknown node %s" name)

let node_index_exn t name =
  match node_index t name with
  | Some i -> i
  | None -> invalid_arg "Indexing.node_index_exn: ground node"

let vsource_index t name =
  match SM.find_opt name t.vsrc_of with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Indexing.vsource_index: unknown source %s" name)

let node_names t = t.names
let vsource_names t = List.map fst (SM.bindings t.vsrc_of)

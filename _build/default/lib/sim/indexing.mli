(** MNA unknown numbering shared by all analyses: one unknown per non-ground
    node, plus one branch-current unknown per voltage source. *)

type t

val build : Netlist.Circuit.t -> t
val size : t -> int
(** Total number of unknowns. *)

val node_count : t -> int

val node_index : t -> string -> int option
(** [None] for the ground node. *)

val node_index_exn : t -> string -> int
(** Raises [Invalid_argument] for ground or unknown nodes — use
    {!node_index} when ground is legal. *)

val vsource_index : t -> string -> int
(** Index of the branch-current unknown of a voltage source, by name. *)

val node_names : t -> string array
(** Names indexed by node unknowns; [node_names t .(i)] for [i <
    node_count t]. *)

val vsource_names : t -> string list

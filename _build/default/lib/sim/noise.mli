(** Circuit noise analysis.  For each noisy element (MOS channel thermal +
    flicker, resistor thermal) a unit AC current is injected across its
    noise branch and the transfer impedance to the output node is computed
    on the factored AC system; output noise is the PSD-weighted sum of
    squared transfer magnitudes.  Input-referred noise divides by the
    squared gain magnitude supplied by the caller's testbench. *)

type contribution = {
  element : string;
  thermal : float;  (** contribution to output voltage PSD, V^2/Hz *)
  flicker : float;
}

val output_psd :
  Dcop.t -> Acs.t -> out:string -> freq:float -> float * contribution list
(** Total output voltage noise PSD at [freq] and the per-element split. *)

val input_referred_psd :
  Dcop.t -> Acs.t -> out:string -> gain:Complex.t -> freq:float -> float
(** Output PSD divided by |gain|^2 — the caller provides the gain of its
    input of interest at the same frequency. *)

val integrated_output_noise :
  Dcop.t -> Acs.t -> out:string -> fmin:float -> fmax:float -> float
(** RMS output noise voltage over [fmin, fmax], by log-spaced integration
    of the PSD. *)

val integrated_input_noise :
  Dcop.t -> Acs.t -> out:string -> gain_at:(float -> Complex.t) ->
  fmin:float -> fmax:float -> float
(** RMS input-referred noise voltage over the band. *)

(** Frequency-domain measurement extraction on a prepared AC network:
    gains, unity-gain frequency, phase margin, output resistance.  The
    testbench (which sources carry the AC stimulus, which node is the
    output) is encoded in the circuit by the caller. *)

val db : float -> float
(** 20 log10 |x|. *)

val magnitude : Acs.t -> out:string -> float -> float
(** |H(f)| at node [out] for the circuit's AC sources. *)

val phase_deg : Acs.t -> out:string -> float -> float
(** Phase of H(f) in degrees, unwrapped into (-360, 360] relative to the
    principal value — adequate for the two-pole responses measured here. *)

val dc_gain : ?freq:float -> Acs.t -> out:string -> float
(** Low-frequency gain magnitude (default measured at 1 Hz). *)

val unity_gain_freq :
  ?fmin:float -> ?fmax:float -> Acs.t -> out:string -> float option
(** Frequency where |H| crosses 1, by log sweep bracketing then Brent
    refinement.  [None] when |H| never reaches 1 in the range (default
    1 Hz .. 100 GHz). *)

val phase_margin : Acs.t -> out:string -> float option
(** 180 + phase(H(fu)) in degrees at the unity-gain frequency. *)

val gain_poles_summary :
  Acs.t -> out:string -> (float * float * float) option
(** [(dc_gain_db, fu, pm_deg)] convenience bundle; [None] if no unity
    crossing. *)

val output_resistance : ?freq:float -> Acs.t -> out:string -> float
(** |Zout| at [freq] (default 1 Hz) with sources zeroed. *)

val bandwidth_3db : ?fmin:float -> ?fmax:float -> Acs.t -> out:string -> float option
(** -3 dB frequency relative to the low-frequency gain. *)

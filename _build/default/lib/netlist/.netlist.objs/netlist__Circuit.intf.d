lib/netlist/circuit.mli: Device Element Format

lib/netlist/element.ml: Device Format Technology

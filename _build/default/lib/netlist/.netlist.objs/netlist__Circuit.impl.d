lib/netlist/circuit.ml: Device Element Format List Set String

lib/netlist/element.mli: Device Format

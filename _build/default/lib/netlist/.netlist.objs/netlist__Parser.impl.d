lib/netlist/parser.ml: Char Circuit Device Element List String Technology

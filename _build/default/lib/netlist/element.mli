(** Circuit elements.  Nodes are net names; ["0"] (= {!ground}) is the
    reference node.  Sources carry a DC value, an AC magnitude (used by the
    AC and noise analyses) and an optional transient waveform. *)

val ground : string

type source = {
  dc : float;
  ac : float;
  wave : (float -> float) option;
  (** transient value as a function of time; [None] means the DC value *)
}

val dc_source : float -> source
val ac_source : ?dc:float -> float -> source
val wave_source : ?dc:float -> (float -> float) -> source

type t =
  | Mos of { dev : Device.Mos.t; d : string; g : string; s : string; b : string }
  | Resistor of { name : string; p : string; n : string; r : float }
  | Capacitor of { name : string; p : string; n : string; c : float }
  | Isource of { name : string; p : string; n : string; i : source }
      (** current flows from [p] through the source to [n] *)
  | Vsource of { name : string; p : string; n : string; v : source }

val name : t -> string
val nodes_of : t -> string list
val pp_spice : Format.formatter -> t -> unit
(** One SPICE card.  MOS cards include W, L, M(=1), AD/AS/PD/PS from the
    effective diffusion geometry. *)

(** A flat circuit: a titled list of elements over named nets.  Provides
    builder helpers, net bookkeeping, parasitic annotation (used by the
    layout extractor) and a SPICE-deck printer. *)

type t

val create : title:string -> t
val title : t -> string
val elements : t -> Element.t list
(** In insertion order. *)

val add : t -> Element.t -> t
val add_mos :
  t -> dev:Device.Mos.t -> d:string -> g:string -> s:string -> b:string -> t
val add_resistor : t -> name:string -> p:string -> n:string -> r:float -> t
val add_capacitor : t -> name:string -> p:string -> n:string -> c:float -> t
val add_isource : t -> name:string -> p:string -> n:string -> Element.source -> t
val add_vsource : t -> name:string -> p:string -> n:string -> Element.source -> t

val nodes : t -> string list
(** All nets except ground, sorted, deduplicated. *)

val mos_devices : t -> (Device.Mos.t * string * string * string * string) list
(** All MOS elements as [(dev, d, g, s, b)]. *)

val find_mos : t -> string -> Device.Mos.t
(** Find a MOS device by name.  Raises [Not_found]. *)

val map_mos : (Device.Mos.t -> Device.Mos.t) -> t -> t
(** Rewrite every MOS device (e.g. grid snapping, style updates). *)

val update_mos : string -> (Device.Mos.t -> Device.Mos.t) -> t -> t
(** Rewrite one MOS device by name. *)

val add_node_cap : t -> name:string -> node:string -> c:float -> t
(** Attach a parasitic capacitor from [node] to ground; zero or negative
    values are ignored. *)

val total_cap_to_ground : t -> string -> float
(** Sum of explicit capacitors between the node and ground. *)

val element_count : t -> int
val pp_spice : Format.formatter -> t -> unit
val to_spice : t -> string

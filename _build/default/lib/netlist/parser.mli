(** SPICE-deck reader for the subset this library prints: comment/title
    lines, M (MOS with W/L/NF and optional AD/AS/PD/PS), R, C, I and V
    cards with DC/AC values, and [.end].  Together with
    {!Circuit.to_spice} this gives a round-trip text format for
    circuits (waveform sources cannot round-trip and parse as DC). *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_value : string -> float
(** Engineering-notation number: accepts SPICE suffixes f p n u m k meg g
    and ignores a trailing unit (e.g. ["3pF"], ["10k"], ["2.5"]).
    Raises [Failure] on garbage. *)

val parse : string -> Circuit.t
(** Parse a whole deck.  The first line is the title. *)

val parse_lines : string list -> Circuit.t

val roundtrip : Circuit.t -> Circuit.t
(** [parse (Circuit.to_spice c)] — used by tests. *)

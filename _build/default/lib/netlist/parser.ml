exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* SPICE engineering suffixes; longest match first so "meg" beats "m".
   Any trailing alphabetic unit (F, Hz, ohm, ...) after the suffix is
   ignored. *)
let parse_value s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "" then failwith "parse_value: empty";
  (* split numeric prefix from the alphabetic tail *)
  let n = String.length s in
  let rec numeric_end i =
    if i >= n then i
    else
      match s.[i] with
      | '0' .. '9' | '.' | '-' | '+' -> numeric_end (i + 1)
      | 'e'
        when i + 1 < n
             && (match s.[i + 1] with
                 | '0' .. '9' | '-' | '+' -> true
                 | _ -> false) -> numeric_end (i + 2)
      | _ -> i
  in
  let stop = numeric_end 0 in
  if stop = 0 then failwith ("parse_value: " ^ s);
  let mantissa = float_of_string (String.sub s 0 stop) in
  let tail = String.sub s stop (n - stop) in
  let scale =
    if tail = "" then 1.0
    else if String.length tail >= 3 && String.sub tail 0 3 = "meg" then 1e6
    else
      match tail.[0] with
      | 'f' -> 1e-15
      | 'p' -> 1e-12
      | 'n' -> 1e-9
      | 'u' -> 1e-6
      | 'm' -> 1e-3
      | 'k' -> 1e3
      | 'g' -> 1e9
      | 't' -> 1e12
      | 'a' .. 'z' -> 1.0 (* bare unit like "v" or "hz" *)
      | _ -> failwith ("parse_value: bad suffix " ^ tail)
  in
  mantissa *. scale

let split_fields line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* key=value attributes on a MOS card *)
let parse_attrs line_no fields =
  List.map
    (fun f ->
      match String.index_opt f '=' with
      | Some i ->
        ( String.lowercase_ascii (String.sub f 0 i),
          String.sub f (i + 1) (String.length f - i - 1) )
      | None -> fail line_no ("expected key=value, got " ^ f))
    fields

let parse_mos line_no name fields =
  match fields with
  | d :: g :: s :: b :: model :: attrs ->
    let mtype =
      match String.lowercase_ascii model with
      | "nch" | "nmos" -> Technology.Electrical.Nmos
      | "pch" | "pmos" -> Technology.Electrical.Pmos
      | other -> fail line_no ("unknown model " ^ other)
    in
    let attrs = parse_attrs line_no attrs in
    let get key =
      match List.assoc_opt key attrs with
      | Some v -> Some (parse_value v)
      | None -> None
    in
    let require key =
      match get key with
      | Some v -> v
      | None -> fail line_no ("MOS card missing " ^ key)
    in
    let w = require "w" and l = require "l" in
    let nf =
      match List.assoc_opt "nf" attrs with
      | Some v -> int_of_float (parse_value v)
      | None -> 1
    in
    let style = { Device.Folding.nf; drain_internal = true } in
    let diffusion =
      match (get "ad", get "as", get "pd", get "ps") with
      | Some ad, Some as_, Some pd, Some ps ->
        Some
          { Device.Folding.ad; as_; pd; ps;
            finger_w = w /. float_of_int nf;
            drain_strips = max 1 (nf / 2);
            source_strips = (nf / 2) + 1 }
      | None, _, _, _ | _, None, _, _ | _, _, None, _ | _, _, _, None -> None
    in
    let dev = Device.Mos.make ~style ?diffusion ~name ~mtype ~w ~l () in
    Element.Mos { dev; d; g; s; b }
  | _ -> fail line_no "malformed MOS card"

let parse_two_terminal line_no name fields ~mk =
  match fields with
  | p :: n :: rest -> mk name p n rest
  | _ -> fail line_no "malformed two-terminal card"

let parse_source line_no rest =
  (* "DC v AC a" in any order, or a bare value *)
  let rec go dc ac = function
    | [] -> { Element.dc; ac; wave = None }
    | "dc" :: v :: tl | "DC" :: v :: tl -> go (parse_value v) ac tl
    | "ac" :: v :: tl | "AC" :: v :: tl -> go dc (parse_value v) tl
    | [ v ] -> go (parse_value v) ac []
    | tok :: _ -> fail line_no ("unexpected source token " ^ tok)
  in
  go 0.0 0.0 rest

let parse_card line_no line =
  match split_fields line with
  | [] -> None
  | card :: fields ->
    let kind = Char.lowercase_ascii card.[0] in
    let name = String.sub card 1 (String.length card - 1) in
    (match kind with
     | 'm' -> Some (parse_mos line_no name fields)
     | 'r' ->
       Some
         (parse_two_terminal line_no name fields ~mk:(fun name p n rest ->
            match rest with
            | [ v ] -> Element.Resistor { name; p; n; r = parse_value v }
            | _ -> fail line_no "resistor needs exactly one value"))
     | 'c' ->
       Some
         (parse_two_terminal line_no name fields ~mk:(fun name p n rest ->
            match rest with
            | [ v ] -> Element.Capacitor { name; p; n; c = parse_value v }
            | _ -> fail line_no "capacitor needs exactly one value"))
     | 'i' ->
       Some
         (parse_two_terminal line_no name fields ~mk:(fun name p n rest ->
            Element.Isource { name; p; n; i = parse_source line_no rest }))
     | 'v' ->
       Some
         (parse_two_terminal line_no name fields ~mk:(fun name p n rest ->
            Element.Vsource { name; p; n; v = parse_source line_no rest }))
     | _ -> fail line_no ("unknown card type " ^ card))

let parse_lines lines =
  match lines with
  | [] -> Circuit.create ~title:""
  | first :: rest ->
    let title =
      let t = String.trim first in
      if String.length t > 0 && t.[0] = '*' then
        String.trim (String.sub t 1 (String.length t - 1))
      else t
    in
    let circuit = ref (Circuit.create ~title) in
    List.iteri
      (fun i line ->
        let line_no = i + 2 in
        let t = String.trim line in
        if t = "" || t.[0] = '*' then ()
        else if String.lowercase_ascii t = ".end" then ()
        else if t.[0] = '.' then () (* other directives ignored *)
        else
          match parse_card line_no t with
          | Some e -> circuit := Circuit.add !circuit e
          | None -> ())
      rest;
    !circuit

let parse text = parse_lines (String.split_on_char '\n' text)
let roundtrip c = parse (Circuit.to_spice c)

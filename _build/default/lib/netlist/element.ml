let ground = "0"

type source = {
  dc : float;
  ac : float;
  wave : (float -> float) option;
}

let dc_source dc = { dc; ac = 0.0; wave = None }
let ac_source ?(dc = 0.0) ac = { dc; ac; wave = None }
let wave_source ?(dc = 0.0) w = { dc; ac = 0.0; wave = Some w }

type t =
  | Mos of { dev : Device.Mos.t; d : string; g : string; s : string; b : string }
  | Resistor of { name : string; p : string; n : string; r : float }
  | Capacitor of { name : string; p : string; n : string; c : float }
  | Isource of { name : string; p : string; n : string; i : source }
  | Vsource of { name : string; p : string; n : string; v : source }

let name = function
  | Mos { dev; _ } -> dev.Device.Mos.name
  | Resistor { name; _ } | Capacitor { name; _ }
  | Isource { name; _ } | Vsource { name; _ } -> name

let nodes_of = function
  | Mos { d; g; s; b; _ } -> [ d; g; s; b ]
  | Resistor { p; n; _ } | Capacitor { p; n; _ }
  | Isource { p; n; _ } | Vsource { p; n; _ } -> [ p; n ]

let pp_spice fmt t =
  match t with
  | Mos { dev; d; g; s; b } ->
    let module M = Device.Mos in
    let mtype =
      match dev.M.mtype with
      | Technology.Electrical.Nmos -> "nch"
      | Technology.Electrical.Pmos -> "pch"
    in
    Format.fprintf fmt "M%s %s %s %s %s %s W=%.4gu L=%.4gu NF=%d"
      dev.M.name d g s b mtype
      (dev.M.w *. 1e6) (dev.M.l *. 1e6) dev.M.style.Device.Folding.nf;
    begin match dev.M.diffusion with
    | None -> ()
    | Some geom ->
      let module F = Device.Folding in
      Format.fprintf fmt " AD=%.4gp AS=%.4gp PD=%.4gu PS=%.4gu"
        (geom.F.ad *. 1e12) (geom.F.as_ *. 1e12)
        (geom.F.pd *. 1e6) (geom.F.ps *. 1e6)
    end
  | Resistor { name; p; n; r } ->
    Format.fprintf fmt "R%s %s %s %.6g" name p n r
  | Capacitor { name; p; n; c } ->
    Format.fprintf fmt "C%s %s %s %.6gf" name p n (c *. 1e15)
  | Isource { name; p; n; i } ->
    Format.fprintf fmt "I%s %s %s DC %.6g AC %.6g" name p n i.dc i.ac
  | Vsource { name; p; n; v } ->
    Format.fprintf fmt "V%s %s %s DC %.6g AC %.6g" name p n v.dc v.ac

type t = {
  title : string;
  rev_elements : Element.t list;  (* reversed insertion order *)
}

let create ~title = { title; rev_elements = [] }
let title t = t.title
let elements t = List.rev t.rev_elements
let add t e = { t with rev_elements = e :: t.rev_elements }

let add_mos t ~dev ~d ~g ~s ~b = add t (Element.Mos { dev; d; g; s; b })
let add_resistor t ~name ~p ~n ~r = add t (Element.Resistor { name; p; n; r })
let add_capacitor t ~name ~p ~n ~c = add t (Element.Capacitor { name; p; n; c })
let add_isource t ~name ~p ~n i = add t (Element.Isource { name; p; n; i })
let add_vsource t ~name ~p ~n v = add t (Element.Vsource { name; p; n; v })

let nodes t =
  let module S = Set.Make (String) in
  let all =
    List.fold_left
      (fun acc e -> List.fold_left (fun acc n -> S.add n acc) acc (Element.nodes_of e))
      S.empty t.rev_elements
  in
  S.elements (S.remove Element.ground all)

let mos_devices t =
  List.filter_map
    (function
      | Element.Mos { dev; d; g; s; b } -> Some (dev, d, g, s, b)
      | Element.Resistor _ | Element.Capacitor _
      | Element.Isource _ | Element.Vsource _ -> None)
    (elements t)

let find_mos t name =
  match
    List.find_opt (fun (dev, _, _, _, _) -> dev.Device.Mos.name = name) (mos_devices t)
  with
  | Some (dev, _, _, _, _) -> dev
  | None -> raise Not_found

let map_mos f t =
  let rewrite = function
    | Element.Mos m -> Element.Mos { m with dev = f m.dev }
    | (Element.Resistor _ | Element.Capacitor _
      | Element.Isource _ | Element.Vsource _) as e -> e
  in
  { t with rev_elements = List.map rewrite t.rev_elements }

let update_mos name f t =
  map_mos (fun dev -> if dev.Device.Mos.name = name then f dev else dev) t

let add_node_cap t ~name ~node ~c =
  if c <= 0.0 then t
  else add_capacitor t ~name ~p:node ~n:Element.ground ~c

let total_cap_to_ground t node =
  List.fold_left
    (fun acc e ->
      match e with
      | Element.Capacitor { p; n; c; _ }
        when (p = node && n = Element.ground) || (n = node && p = Element.ground) ->
        acc +. c
      | Element.Capacitor _ | Element.Mos _ | Element.Resistor _
      | Element.Isource _ | Element.Vsource _ -> acc)
    0.0 (elements t)

let element_count t = List.length t.rev_elements

let pp_spice fmt t =
  Format.fprintf fmt "* %s@." t.title;
  List.iter (fun e -> Format.fprintf fmt "%a@." Element.pp_spice e) (elements t);
  Format.fprintf fmt ".end@."

let to_spice t = Format.asprintf "%a" pp_spice t

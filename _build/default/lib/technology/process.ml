type t = {
  name : string;
  lambda : float;
  rules : Rules.t;
  electrical : Electrical.t;
  vdd_nominal : float;
  temperature : float;
}

(* 0.6 um, 3.3 V CMOS-class parameters: tox 13 nm, VTH ~0.75 V, junction
   capacitances and interconnect values representative of that node.  The
   absolute values do not need to match any proprietary kit — they only need
   to keep diffusion, routing and gate capacitances in their realistic
   relative proportions, which is what the paper's methodology exploits. *)
let c06_nmos : Electrical.mos_params = {
  vto = 0.75;
  u0 = 0.046;
  tox = 13e-9;
  gamma = 0.55;
  phi = 0.70;
  clm_coeff = 0.08e-6;
  cj = 0.56e-3;
  cjsw = 0.35e-9;
  mj = 0.45;
  mjsw = 0.20;
  pb = 0.90;
  cgso = 0.30e-9;
  cgdo = 0.30e-9;
  cgbo = 0.15e-9;
  kf = 4.0e-28;
  af = 1.0;
  avt = 11e-9;      (* 11 mV.um: typical 0.6 um NMOS *)
  abeta = 0.018e-6; (* 1.8 %.um *)
  theta = 0.15;
  ecrit = 4.0e6;
  dvt_l = 0.06;
  lt = 0.30e-6;
}

let c06_pmos : Electrical.mos_params = {
  vto = 0.85;
  u0 = 0.016;
  tox = 13e-9;
  gamma = 0.45;
  phi = 0.70;
  clm_coeff = 0.09e-6;
  cj = 0.94e-3;
  cjsw = 0.32e-9;
  mj = 0.50;
  mjsw = 0.30;
  pb = 0.90;
  cgso = 0.30e-9;
  cgdo = 0.30e-9;
  cgbo = 0.15e-9;
  kf = 1.5e-28;
  af = 1.0;
  avt = 13e-9;
  abeta = 0.022e-6;
  theta = 0.12;
  ecrit = 1.0e7;
  dvt_l = 0.05;
  lt = 0.35e-6;
}

let c06_metal1 : Electrical.wire_params = {
  area_cap = 2.5e-5;
  fringe_cap = 4.0e-11;
  coupling_cap = 8.0e-11;
  sheet_res = 0.07;
  jmax = 1000.0;
}

let c06_metal2 : Electrical.wire_params = {
  area_cap = 1.5e-5;
  fringe_cap = 3.5e-11;
  coupling_cap = 8.0e-11;
  sheet_res = 0.05;
  jmax = 2000.0;
}

let c06_poly : Electrical.wire_params = {
  area_cap = 6.0e-5;
  fringe_cap = 3.0e-11;
  coupling_cap = 5.0e-11;
  sheet_res = 25.0;
  jmax = 300.0;
}

let c06 = {
  name = "c06";
  lambda = 0.3e-6;
  rules = Rules.scmos;
  electrical = {
    nmos = c06_nmos;
    pmos = c06_pmos;
    poly_wire = c06_poly;
    metal1_wire = c06_metal1;
    metal2_wire = c06_metal2;
    contact_imax = 0.6e-3;
    via_imax = 0.8e-3;
    nwell_cap_area = 1.0e-4;
    nwell_cap_perim = 4.0e-10;
  };
  vdd_nominal = 3.3;
  temperature = Phys.Const.room_temperature;
}

let c035 = {
  name = "c035";
  lambda = 0.2e-6;
  rules = Rules.scmos;
  electrical = {
    nmos = { c06_nmos with
             vto = 0.60; u0 = 0.040; tox = 7.6e-9; clm_coeff = 0.03e-6;
             cj = 0.90e-3; cjsw = 0.28e-9; cgso = 0.25e-9; cgdo = 0.25e-9;
             kf = 2.5e-28; avt = 8e-9; abeta = 0.015e-6;
             dvt_l = 0.08; lt = 0.20e-6 };
    pmos = { c06_pmos with
             vto = 0.65; u0 = 0.014; tox = 7.6e-9; clm_coeff = 0.04e-6;
             cj = 1.10e-3; cjsw = 0.30e-9; cgso = 0.25e-9; cgdo = 0.25e-9;
             kf = 1.0e-28; avt = 10e-9; abeta = 0.018e-6;
             dvt_l = 0.07; lt = 0.22e-6 };
    poly_wire = { c06_poly with area_cap = 7.0e-5; sheet_res = 8.0 };
    metal1_wire = { c06_metal1 with area_cap = 3.0e-5; coupling_cap = 1.0e-10 };
    metal2_wire = { c06_metal2 with area_cap = 1.8e-5; coupling_cap = 1.0e-10 };
    contact_imax = 0.4e-3;
    via_imax = 0.5e-3;
    nwell_cap_area = 1.2e-4;
    nwell_cap_perim = 4.5e-10;
  };
  vdd_nominal = 3.3;
  temperature = Phys.Const.room_temperature;
}

let builtin = [ c06; c035 ]

let find name =
  match List.find_opt (fun p -> p.name = name) builtin with
  | Some p -> p
  | None -> raise Not_found

let um p n = float_of_int n *. p.lambda

let to_lambda p x =
  let g = p.rules.Rules.grid in
  let raw = x /. p.lambda in
  let snapped = int_of_float (Float.ceil (raw /. float_of_int g -. 1e-9)) * g in
  max g snapped

let lmin p = um p p.rules.Rules.poly_width
let wmin p = um p p.rules.Rules.active_width

type evaluation = {
  proc_name : string;
  kp_n : float;
  kp_p : float;
  cox_areal : float;
  ft_n_at_veff : float;
  ft_p_at_veff : float;
  gate_cap_min : float;
  diff_cap_per_width : float;
  metal1_cap_per_len : float;
}

let evaluate p =
  let e = p.electrical in
  let cox = Electrical.cox e.nmos in
  let l = lmin p in
  let veff = 0.2 in
  (* intrinsic f_T = gm / (2 pi Cgs), with Cgs = 2/3 W L Cox in saturation;
     W cancels out. *)
  let ft mp =
    mp.Electrical.u0 *. veff /. (2.0 *. Float.pi *. (2.0 /. 3.0) *. l *. l)
  in
  let w = wmin p in
  let sd = um p (Rules.sd_contacted p.rules) in
  let diff_cap_per_w =
    (* junction cap of a contacted drain per metre of transistor width:
       area term plus the two lateral sidewalls (the width-side sidewall is
       amortised over W and ignored here). *)
    e.nmos.Electrical.cj *. sd +. 2.0 *. e.nmos.Electrical.cjsw
  in
  let m1w = um p p.rules.Rules.metal1_width in
  {
    proc_name = p.name;
    kp_n = Electrical.kp e.nmos;
    kp_p = Electrical.kp e.pmos;
    cox_areal = cox;
    ft_n_at_veff = ft e.nmos;
    ft_p_at_veff = ft e.pmos;
    gate_cap_min = cox *. w *. l;
    diff_cap_per_width = diff_cap_per_w;
    metal1_cap_per_len =
      e.metal1_wire.Electrical.area_cap *. m1w
      +. 2.0 *. e.metal1_wire.Electrical.fringe_cap;
  }

let pp_evaluation fmt ev =
  let si = Phys.Units.to_si_string in
  Format.fprintf fmt
    "@[<v>technology %s:@,\
     \  KPn = %s   KPp = %s@,\
     \  Cox = %.3g F/m^2@,\
     \  fT(n, Veff=0.2V, Lmin) = %s   fT(p) = %s@,\
     \  min gate cap = %s@,\
     \  contacted drain cap = %s per um of W@,\
     \  metal1 wire cap = %s per um@]"
    ev.proc_name
    (si "A/V^2" ev.kp_n) (si "A/V^2" ev.kp_p)
    ev.cox_areal
    (si "Hz" ev.ft_n_at_veff) (si "Hz" ev.ft_p_at_veff)
    (si "F" ev.gate_cap_min)
    (si "F" (ev.diff_cap_per_width *. 1e-6))
    (si "F" (ev.metal1_cap_per_len *. 1e-6))

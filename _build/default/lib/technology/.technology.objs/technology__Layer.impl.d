lib/technology/layer.ml: Format Stdlib

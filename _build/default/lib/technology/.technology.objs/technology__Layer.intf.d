lib/technology/layer.mli: Format

lib/technology/electrical.ml: Format Layer Phys

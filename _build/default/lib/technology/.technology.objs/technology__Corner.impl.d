lib/technology/corner.ml: Electrical Process

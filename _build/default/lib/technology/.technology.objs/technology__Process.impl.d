lib/technology/process.ml: Electrical Float Format List Phys Rules

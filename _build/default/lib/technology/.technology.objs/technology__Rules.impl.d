lib/technology/rules.ml: List Printf

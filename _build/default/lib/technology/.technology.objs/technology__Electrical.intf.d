lib/technology/electrical.mli: Format Layer

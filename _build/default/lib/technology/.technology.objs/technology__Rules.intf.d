lib/technology/rules.mli:

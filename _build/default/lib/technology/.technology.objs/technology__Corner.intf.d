lib/technology/corner.mli: Process

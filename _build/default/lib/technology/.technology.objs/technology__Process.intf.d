lib/technology/process.mli: Electrical Format Rules

type t =
  | Nwell
  | Active
  | Pplus
  | Nplus
  | Poly
  | Contact
  | Metal1
  | Via1
  | Metal2

let all = [ Nwell; Active; Pplus; Nplus; Poly; Contact; Metal1; Via1; Metal2 ]

let to_string = function
  | Nwell -> "nwell"
  | Active -> "active"
  | Pplus -> "pplus"
  | Nplus -> "nplus"
  | Poly -> "poly"
  | Contact -> "contact"
  | Metal1 -> "metal1"
  | Via1 -> "via1"
  | Metal2 -> "metal2"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ascii_char = function
  | Nwell -> 'w'
  | Active -> '#'
  | Pplus -> 'p'
  | Nplus -> 'n'
  | Poly -> '|'
  | Contact -> 'x'
  | Metal1 -> '='
  | Via1 -> 'o'
  | Metal2 -> '%'

let drawing_order = function
  | Nwell -> 0
  | Pplus -> 1
  | Nplus -> 2
  | Active -> 3
  | Poly -> 4
  | Contact -> 5
  | Metal1 -> 6
  | Via1 -> 7
  | Metal2 -> 8

let compare a b = Stdlib.compare (drawing_order a) (drawing_order b)

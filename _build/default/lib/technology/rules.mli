(** Symbolic (lambda-based) design rules.  All distances are expressed in
    lambda so that the layout procedures are technology independent; a
    process fixes the lambda value in metres (see {!Process}).  The rule set
    follows the scalable-CMOS style (contact 2x2 lambda, metal1 width 3
    lambda, ...). *)

type t = {
  poly_width : int;            (** minimum gate length, lambda *)
  poly_space : int;
  poly_gate_extension : int;   (** poly endcap past active *)
  active_width : int;
  active_space : int;
  contact_size : int;          (** square contact side *)
  contact_space : int;
  contact_to_gate : int;       (** contact cut to poly gate spacing *)
  active_contact_enclosure : int; (** active ring around a contact *)
  poly_contact_enclosure : int;
  metal1_width : int;
  metal1_space : int;
  metal1_contact_enclosure : int;
  metal2_width : int;
  metal2_space : int;
  via1_size : int;
  via1_space : int;
  metal_via_enclosure : int;
  well_active_enclosure : int; (** n-well ring around p-active *)
  well_space : int;
  select_active_enclosure : int;
  grid : int;                  (** placement grid for device widths, lambda *)
}

val scmos : t
(** The scalable-CMOS-like rule set used by both built-in processes. *)

val sd_contacted : t -> int
(** Length (along the channel direction) of a contacted source/drain
    diffusion at the *edge* of a transistor stack:
    contact_to_gate + contact_size + active_contact_enclosure. *)

val sd_shared_contacted : t -> int
(** Length of a contacted diffusion *shared* between two gates of a folded
    transistor: contact_to_gate + contact_size + contact_to_gate. *)

val sd_shared_plain : t -> int
(** Length of an uncontacted shared diffusion (minimum poly spacing over
    active). *)

val check_positive : t -> unit
(** Sanity check: every rule is strictly positive.  Raises
    [Invalid_argument] otherwise. *)

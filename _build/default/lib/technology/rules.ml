type t = {
  poly_width : int;
  poly_space : int;
  poly_gate_extension : int;
  active_width : int;
  active_space : int;
  contact_size : int;
  contact_space : int;
  contact_to_gate : int;
  active_contact_enclosure : int;
  poly_contact_enclosure : int;
  metal1_width : int;
  metal1_space : int;
  metal1_contact_enclosure : int;
  metal2_width : int;
  metal2_space : int;
  via1_size : int;
  via1_space : int;
  metal_via_enclosure : int;
  well_active_enclosure : int;
  well_space : int;
  select_active_enclosure : int;
  grid : int;
}

let scmos = {
  poly_width = 2;
  poly_space = 3;
  poly_gate_extension = 2;
  active_width = 3;
  active_space = 3;
  contact_size = 2;
  contact_space = 2;
  contact_to_gate = 2;
  active_contact_enclosure = 1;
  poly_contact_enclosure = 1;
  metal1_width = 3;
  metal1_space = 3;
  metal1_contact_enclosure = 1;
  metal2_width = 3;
  metal2_space = 4;
  via1_size = 2;
  via1_space = 3;
  metal_via_enclosure = 1;
  well_active_enclosure = 5;
  well_space = 6;
  select_active_enclosure = 2;
  grid = 1;
}

let sd_contacted r = r.contact_to_gate + r.contact_size + r.active_contact_enclosure
let sd_shared_contacted r = r.contact_to_gate + r.contact_size + r.contact_to_gate
let sd_shared_plain r = r.poly_space

let check_positive r =
  let fields = [
    ("poly_width", r.poly_width); ("poly_space", r.poly_space);
    ("poly_gate_extension", r.poly_gate_extension);
    ("active_width", r.active_width); ("active_space", r.active_space);
    ("contact_size", r.contact_size); ("contact_space", r.contact_space);
    ("contact_to_gate", r.contact_to_gate);
    ("active_contact_enclosure", r.active_contact_enclosure);
    ("poly_contact_enclosure", r.poly_contact_enclosure);
    ("metal1_width", r.metal1_width); ("metal1_space", r.metal1_space);
    ("metal1_contact_enclosure", r.metal1_contact_enclosure);
    ("metal2_width", r.metal2_width); ("metal2_space", r.metal2_space);
    ("via1_size", r.via1_size); ("via1_space", r.via1_space);
    ("metal_via_enclosure", r.metal_via_enclosure);
    ("well_active_enclosure", r.well_active_enclosure);
    ("well_space", r.well_space);
    ("select_active_enclosure", r.select_active_enclosure);
    ("grid", r.grid);
  ] in
  let bad = List.filter (fun (_, v) -> v <= 0) fields in
  match bad with
  | [] -> ()
  | (name, _) :: _ -> invalid_arg (Printf.sprintf "Rules.check_positive: %s" name)

type mos_type = Nmos | Pmos

let pp_mos_type fmt = function
  | Nmos -> Format.pp_print_string fmt "nmos"
  | Pmos -> Format.pp_print_string fmt "pmos"

let mos_type_sign = function Nmos -> 1.0 | Pmos -> -1.0

type mos_params = {
  vto : float;
  u0 : float;
  tox : float;
  gamma : float;
  phi : float;
  clm_coeff : float;
  cj : float;
  cjsw : float;
  mj : float;
  mjsw : float;
  pb : float;
  cgso : float;
  cgdo : float;
  cgbo : float;
  kf : float;
  af : float;
  avt : float;
  abeta : float;
  theta : float;
  ecrit : float;
  dvt_l : float;
  lt : float;
}

let cox p = Phys.Const.eps_sio2 /. p.tox
let kp p = p.u0 *. cox p

type wire_params = {
  area_cap : float;
  fringe_cap : float;
  coupling_cap : float;
  sheet_res : float;
  jmax : float;
}

type t = {
  nmos : mos_params;
  pmos : mos_params;
  poly_wire : wire_params;
  metal1_wire : wire_params;
  metal2_wire : wire_params;
  contact_imax : float;
  via_imax : float;
  nwell_cap_area : float;
  nwell_cap_perim : float;
}

let wire_of_layer t = function
  | Layer.Poly -> Some t.poly_wire
  | Layer.Metal1 -> Some t.metal1_wire
  | Layer.Metal2 -> Some t.metal2_wire
  | Layer.Nwell | Layer.Active | Layer.Pplus | Layer.Nplus
  | Layer.Contact | Layer.Via1 -> None

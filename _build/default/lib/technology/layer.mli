(** Mask layers of the symbolic layout.  The layout generator works on a
    lambda grid and emits rectangles tagged with these layers; the design
    rules of {!Rules} are keyed on them. *)

type t =
  | Nwell
  | Active        (** diffusion (source/drain) *)
  | Pplus         (** p+ select *)
  | Nplus         (** n+ select *)
  | Poly
  | Contact       (** active/poly to metal1 cut *)
  | Metal1
  | Via1
  | Metal2

val all : t list
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val ascii_char : t -> char
(** One-character code used by the ASCII layout renderer. *)

val compare : t -> t -> int

val drawing_order : t -> int
(** Painter's order for rendering: wells first, metals last. *)

(** Electrical parameters of a process: MOS model cards, interconnect
    capacitances and electromigration limits.  All values in SI units
    (F/m^2, F/m, A/m, ...). *)

type mos_type = Nmos | Pmos

val pp_mos_type : Format.formatter -> mos_type -> unit
val mos_type_sign : mos_type -> float
(** +1.0 for NMOS, -1.0 for PMOS: polarity of terminal voltages and
    currents in the model equations. *)

type mos_params = {
  vto : float;       (** zero-bias threshold, V (positive for both types) *)
  u0 : float;        (** low-field mobility, m^2/Vs *)
  tox : float;       (** gate oxide thickness, m *)
  gamma : float;     (** body-effect coefficient, sqrt(V) *)
  phi : float;       (** surface potential, V *)
  clm_coeff : float; (** channel-length modulation: lambda = clm_coeff / L, m/V *)
  cj : float;        (** zero-bias junction area capacitance, F/m^2 *)
  cjsw : float;      (** zero-bias junction sidewall capacitance, F/m *)
  mj : float;        (** area grading coefficient *)
  mjsw : float;      (** sidewall grading coefficient *)
  pb : float;        (** junction built-in potential, V *)
  cgso : float;      (** gate-source overlap capacitance, F/m *)
  cgdo : float;      (** gate-drain overlap capacitance, F/m *)
  cgbo : float;      (** gate-bulk overlap capacitance, F/m *)
  kf : float;        (** flicker noise coefficient *)
  af : float;        (** flicker noise current exponent *)
  avt : float;       (** Pelgrom threshold matching coefficient, V.m *)
  abeta : float;     (** Pelgrom current-factor matching coefficient, m *)
  (* BSIM-lite second-order parameters *)
  theta : float;     (** vertical-field mobility degradation, 1/V *)
  ecrit : float;     (** velocity-saturation critical field, V/m *)
  dvt_l : float;     (** Vth roll-off amplitude with L, V *)
  lt : float;        (** Vth roll-off characteristic length, m *)
}

val cox : mos_params -> float
(** Oxide capacitance per unit area, F/m^2. *)

val kp : mos_params -> float
(** Process transconductance u0 * cox, A/V^2. *)

type wire_params = {
  area_cap : float;      (** to substrate, F/m^2 *)
  fringe_cap : float;    (** per edge length, F/m *)
  coupling_cap : float;  (** to a parallel neighbour at minimum spacing, F/m *)
  sheet_res : float;     (** ohm / square *)
  jmax : float;          (** electromigration limit, A per metre of width *)
}

type t = {
  nmos : mos_params;
  pmos : mos_params;
  poly_wire : wire_params;
  metal1_wire : wire_params;
  metal2_wire : wire_params;
  contact_imax : float;     (** max DC current per contact cut, A *)
  via_imax : float;
  nwell_cap_area : float;   (** floating-well junction capacitance, F/m^2 *)
  nwell_cap_perim : float;  (** F/m *)
}

val wire_of_layer : t -> Layer.t -> wire_params option
(** Interconnect parameters of a routing layer; [None] for non-routing
    layers. *)

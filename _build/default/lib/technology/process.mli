(** A complete process description: symbolic rules plus the lambda value
    that instantiates them, electrical parameters and supply limits.  Two
    built-in processes are provided: {!c06} (0.6 um, 3.3 V — the paper's
    technology class) and {!c035} (0.35 um, 3.3 V) to demonstrate
    technology independence. *)

type t = {
  name : string;
  lambda : float;          (** metres per lambda *)
  rules : Rules.t;
  electrical : Electrical.t;
  vdd_nominal : float;
  temperature : float;     (** K *)
}

val c06 : t
val c035 : t
val builtin : t list
val find : string -> t
(** [find name] looks a built-in process up by name.  Raises [Not_found]. *)

val um : t -> int -> float
(** [um p n] converts [n] lambda to metres. *)

val to_lambda : t -> float -> int
(** [to_lambda p x] converts a length in metres to lambda, rounding up to
    the placement grid.  This is the layout-grid snapping that slightly
    modifies transistor widths during generation (source of the residual
    offset in Table 1, case 2). *)

val lmin : t -> float
(** Minimum gate length in metres (poly_width * lambda). *)

val wmin : t -> float
(** Minimum gate width in metres (active_width * lambda). *)

(** {2 Technology evaluation interface}

    COMDIAC provides a "technology evaluation interface [that] allows to
    easily characterize different technologies"; these helpers reproduce
    it. *)

type evaluation = {
  proc_name : string;
  kp_n : float;            (** A/V^2 *)
  kp_p : float;
  cox_areal : float;       (** F/m^2 *)
  ft_n_at_veff : float;    (** intrinsic f_T of min-L NMOS at Veff=0.2 V, Hz *)
  ft_p_at_veff : float;
  gate_cap_min : float;    (** gate cap of a min-size device, F *)
  diff_cap_per_width : float; (** contacted drain junction cap per metre of W, F/m *)
  metal1_cap_per_len : float; (** min-width metal1 cap per metre, F/m *)
}

val evaluate : t -> evaluation
val pp_evaluation : Format.formatter -> evaluation -> unit

lib/device/folding.ml: Technology

lib/device/op.mli: Caps Folding Format Model Mos Technology

lib/device/noise.ml: Float Phys Technology

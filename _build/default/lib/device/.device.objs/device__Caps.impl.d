lib/device/caps.ml: Float Folding Format Model Phys Technology

lib/device/noise.mli: Technology

lib/device/model.mli: Technology

lib/device/folding.mli: Technology

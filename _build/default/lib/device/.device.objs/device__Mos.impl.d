lib/device/mos.ml: Folding Format Phys Technology

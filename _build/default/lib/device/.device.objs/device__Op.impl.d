lib/device/op.ml: Caps Float Folding Format Model Mos Phys Technology

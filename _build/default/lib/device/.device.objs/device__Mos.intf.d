lib/device/mos.mli: Folding Format Technology

lib/device/caps.mli: Folding Format Model Technology

lib/device/model.ml: Float Phys Technology

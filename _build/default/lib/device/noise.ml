module E = Technology.Electrical

let thermal_current_psd ?(temperature = Phys.Const.room_temperature) gm =
  8.0 /. 3.0 *. Phys.Const.boltzmann *. temperature *. gm

let flicker_current_psd p ~l ~ids ~freq =
  assert (freq > 0.0);
  let cox = E.cox p in
  p.E.kf *. (Float.abs ids ** p.E.af) /. (cox *. l *. l *. freq)

let total_current_psd ?temperature p ~l ~ids ~gm ~freq =
  thermal_current_psd ?temperature gm +. flicker_current_psd p ~l ~ids ~freq

let input_referred_psd ?temperature p ~l ~ids ~gm ~freq =
  total_current_psd ?temperature p ~l ~ids ~gm ~freq /. (gm *. gm)

let corner_frequency ?temperature p ~l ~ids ~gm =
  let thermal = thermal_current_psd ?temperature gm in
  (* flicker(f) = thermal  =>  f = flicker(1 Hz) / thermal *)
  flicker_current_psd p ~l ~ids ~freq:1.0 /. thermal

(** Transistor folding geometry and the diffusion capacitance reduction
    factor F of the paper (Section 3, "Parasitic constraints" and Fig. 2).

    A transistor of width W folded into [nf] fingers has [nf + 1] diffusion
    strips alternating source/drain.  Sharing strips between fingers reduces
    the total diffusion width attached to each net: the effective width is
    [F . W] with

    - F = 1/2                 if [nf] even and the net is on *internal* strips
    - F = (nf + 2) / (2 nf)   if [nf] even and the net is on *external* strips
    - F = (nf + 1) / (2 nf)   if [nf] odd.

    This module computes both the closed-form F and the full strip-accurate
    diffusion geometry (areas and perimeters) used for junction
    capacitances; the two are cross-checked in the test suite. *)

type diffusion_case =
  | Even_internal  (** even fold count, net on internal diffusions (case a) *)
  | Even_external  (** even fold count, net on external diffusions (case b) *)
  | Odd            (** odd fold count (case c) *)

val reduction_factor : diffusion_case -> int -> float
(** [reduction_factor case nf] is F as defined above.  [nf >= 1]; for
    [nf = 1] every case degenerates to F = 1. *)

val case_of : nf:int -> drain_internal:bool -> drain:bool -> diffusion_case
(** The diffusion case seen by the drain ([drain = true]) or source net of a
    transistor folded [nf] times with the drain placed on internal strips
    when [drain_internal]. *)

type style = {
  nf : int;              (** number of fingers, >= 1 *)
  drain_internal : bool; (** drain on internal (shared) strips when possible *)
}

val default : style
(** One unfolded finger: [{ nf = 1; drain_internal = true }]. *)

type geom = {
  ad : float;  (** drain diffusion area, m^2 *)
  as_ : float; (** source diffusion area, m^2 *)
  pd : float;  (** drain perimeter excluding the gate edge, m *)
  ps : float;  (** source perimeter excluding the gate edge, m *)
  finger_w : float;      (** width of one finger, m *)
  drain_strips : int;    (** number of diffusion strips on the drain net *)
  source_strips : int;
}

val geometry : Technology.Process.t -> w:float -> style -> geom
(** Strip-accurate diffusion geometry for a device of total width [w]
    folded per [style], using the process source/drain extension rules.
    External strips use the contacted-edge length, internal strips the
    shared-contacted length. *)

val effective_width : Technology.Process.t -> w:float -> style -> drain:bool -> float
(** Sum of strip widths on the given net — equals [F . w] by construction
    (up to the layout grid, which this function does not snap). *)

val stack_pitch : Technology.Process.t -> l:float -> style -> float
(** Horizontal extent of the folded stack (diffusion strips plus [nf]
    gates), m.  Used by the area optimiser. *)

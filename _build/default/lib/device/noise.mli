(** MOS noise models: channel thermal noise and flicker (1/f) noise, both
    expressed as drain current power spectral densities [A^2/Hz]. *)

val thermal_current_psd : ?temperature:float -> float -> float
(** [thermal_current_psd gm] — long-channel channel thermal noise:
    S_id = (8/3) k T gm. *)

val flicker_current_psd :
  Technology.Electrical.mos_params ->
  l:float -> ids:float -> freq:float -> float
(** SPICE-style flicker noise: S_id = KF . Ids^AF / (Cox . L^2 . f). *)

val total_current_psd :
  ?temperature:float ->
  Technology.Electrical.mos_params ->
  l:float -> ids:float -> gm:float -> freq:float -> float
(** Thermal plus flicker drain-current PSD at [freq]. *)

val input_referred_psd :
  ?temperature:float ->
  Technology.Electrical.mos_params ->
  l:float -> ids:float -> gm:float -> freq:float -> float
(** Gate-referred voltage PSD: total current PSD divided by gm^2 [V^2/Hz]. *)

val corner_frequency :
  ?temperature:float ->
  Technology.Electrical.mos_params ->
  l:float -> ids:float -> gm:float -> float
(** Frequency at which flicker and thermal contributions are equal. *)

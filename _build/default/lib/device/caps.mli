(** Small-signal device capacitances at a DC operating point: Meyer
    intrinsic gate capacitances, overlap capacitances and bias-dependent
    junction capacitances computed from the strip-accurate diffusion
    geometry of {!Folding}. *)

type t = {
  cgs : float;
  cgd : float;
  cgb : float;
  cdb : float;
  csb : float;
}

val zero : t
val total_gate : t -> float
val add : t -> t -> t
val scale : float -> t -> t
val pp : Format.formatter -> t -> unit

val junction_cap :
  cj:float -> cjsw:float -> mj:float -> mjsw:float -> pb:float ->
  area:float -> perim:float -> vrev:float -> float
(** Reverse-biased junction capacitance: area and sidewall terms with their
    grading coefficients.  [vrev >= 0] is the reverse bias; forward bias is
    clamped to the zero-bias value. *)

val meyer :
  Technology.Electrical.mos_params ->
  w:float -> l:float -> nf:int -> region:Model.region -> t
(** Intrinsic (Meyer) gate capacitances plus overlaps for a device of [nf]
    fingers; junction terms are zero here. *)

val of_operating_point :
  Technology.Process.t -> Technology.Electrical.mos_type ->
  w:float -> l:float -> style:Folding.style ->
  region:Model.region -> vdb_rev:float -> vsb_rev:float -> t
(** Full capacitance set: Meyer + overlap + junction capacitances, the
    latter from the folded diffusion geometry at the given reverse biases
    (both [>= 0], magnitudes). *)

module E = Technology.Electrical

type t = {
  cgs : float;
  cgd : float;
  cgb : float;
  cdb : float;
  csb : float;
}

let zero = { cgs = 0.0; cgd = 0.0; cgb = 0.0; cdb = 0.0; csb = 0.0 }
let total_gate c = c.cgs +. c.cgd +. c.cgb

let add a b = {
  cgs = a.cgs +. b.cgs;
  cgd = a.cgd +. b.cgd;
  cgb = a.cgb +. b.cgb;
  cdb = a.cdb +. b.cdb;
  csb = a.csb +. b.csb;
}

let scale k c = {
  cgs = k *. c.cgs;
  cgd = k *. c.cgd;
  cgb = k *. c.cgb;
  cdb = k *. c.cdb;
  csb = k *. c.csb;
}

let pp fmt c =
  let si = Phys.Units.to_si_string "F" in
  Format.fprintf fmt "cgs=%s cgd=%s cgb=%s cdb=%s csb=%s"
    (si c.cgs) (si c.cgd) (si c.cgb) (si c.cdb) (si c.csb)

let junction_cap ~cj ~cjsw ~mj ~mjsw ~pb ~area ~perim ~vrev =
  let vrev = Float.max 0.0 vrev in
  let denom_a = (1.0 +. vrev /. pb) ** mj in
  let denom_p = (1.0 +. vrev /. pb) ** mjsw in
  (cj *. area /. denom_a) +. (cjsw *. perim /. denom_p)

let meyer p ~w ~l ~nf ~region =
  let cox = E.cox p in
  let cgate = cox *. w *. l in
  let cgs_i, cgd_i, cgb_i =
    match region with
    | Model.Cutoff -> (0.0, 0.0, cgate)
    | Model.Weak -> (cgate /. 3.0, 0.0, cgate /. 2.0)
    | Model.Triode -> (cgate /. 2.0, cgate /. 2.0, 0.0)
    | Model.Saturation -> (2.0 *. cgate /. 3.0, 0.0, 0.0)
  in
  (* Overlap capacitances scale with the total gated width; the gate-bulk
     overlap runs along the poly endcaps of each finger. *)
  let cgso = p.E.cgso *. w in
  let cgdo = p.E.cgdo *. w in
  let cgbo = p.E.cgbo *. l *. float_of_int (2 * nf) in
  {
    cgs = cgs_i +. cgso;
    cgd = cgd_i +. cgdo;
    cgb = cgb_i +. cgbo;
    cdb = 0.0;
    csb = 0.0;
  }

let of_operating_point proc mtype ~w ~l ~style ~region ~vdb_rev ~vsb_rev =
  let p =
    match mtype with
    | E.Nmos -> proc.Technology.Process.electrical.E.nmos
    | E.Pmos -> proc.Technology.Process.electrical.E.pmos
  in
  let gate = meyer p ~w ~l ~nf:style.Folding.nf ~region in
  let geom = Folding.geometry proc ~w style in
  let junction ~area ~perim ~vrev =
    junction_cap ~cj:p.E.cj ~cjsw:p.E.cjsw ~mj:p.E.mj ~mjsw:p.E.mjsw
      ~pb:p.E.pb ~area ~perim ~vrev
  in
  {
    gate with
    cdb = junction ~area:geom.Folding.ad ~perim:geom.Folding.pd ~vrev:vdb_rev;
    csb = junction ~area:geom.Folding.as_ ~perim:geom.Folding.ps ~vrev:vsb_rev;
  }

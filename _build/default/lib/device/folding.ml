type diffusion_case = Even_internal | Even_external | Odd

let reduction_factor case nf =
  assert (nf >= 1);
  let nff = float_of_int nf in
  match case with
  | Even_internal ->
    assert (nf mod 2 = 0);
    0.5
  | Even_external ->
    assert (nf mod 2 = 0);
    (nff +. 2.0) /. (2.0 *. nff)
  | Odd ->
    assert (nf mod 2 = 1);
    (nff +. 1.0) /. (2.0 *. nff)

let case_of ~nf ~drain_internal ~drain =
  if nf mod 2 = 1 then Odd
  else begin
    (* The net placed on internal strips is the drain iff [drain_internal];
       the other net gets the external strips. *)
    let internal = if drain then drain_internal else not drain_internal in
    if internal then Even_internal else Even_external
  end

type style = { nf : int; drain_internal : bool }

let default = { nf = 1; drain_internal = true }

type geom = {
  ad : float;
  as_ : float;
  pd : float;
  ps : float;
  finger_w : float;
  drain_strips : int;
  source_strips : int;
}

type strip_counts = {
  d_internal : int;
  d_external : int;
  s_internal : int;
  s_external : int;
}

(* A folded transistor has nf + 1 alternating diffusion strips; strips 0 and
   nf are external (contact plus enclosure), the others are shared between
   two gates.  For even nf both ends carry the same net: the net on internal
   strips gets nf/2 strips, the other gets nf/2 + 1 of which 2 external.
   For odd nf the two ends carry different nets and each net gets exactly
   (nf + 1) / 2 strips of which one external — the paper's Odd case for both
   nets.  Strip-width sums therefore reproduce Eq. 1 exactly. *)
let strip_counts ~nf ~drain_internal =
  assert (nf >= 1);
  if nf = 1 then { d_internal = 0; d_external = 1; s_internal = 0; s_external = 1 }
  else if nf mod 2 = 0 then
    if drain_internal then
      { d_internal = nf / 2; d_external = 0;
        s_internal = (nf / 2) - 1; s_external = 2 }
    else
      { d_internal = (nf / 2) - 1; d_external = 2;
        s_internal = nf / 2; s_external = 0 }
  else
    let per_net = (nf + 1) / 2 in
    { d_internal = per_net - 1; d_external = 1;
      s_internal = per_net - 1; s_external = 1 }

let geometry proc ~w style =
  let { nf; drain_internal } = style in
  assert (nf >= 1 && w > 0.0);
  let rules = proc.Technology.Process.rules in
  let lam = proc.Technology.Process.lambda in
  let ext_len = float_of_int (Technology.Rules.sd_contacted rules) *. lam in
  let int_len = float_of_int (Technology.Rules.sd_shared_contacted rules) *. lam in
  let finger_w = w /. float_of_int nf in
  let c = strip_counts ~nf ~drain_internal in
  let area ni ne =
    (float_of_int ni *. int_len +. float_of_int ne *. ext_len) *. finger_w
  in
  (* Perimeter excludes gate-facing edges: an internal strip exposes its two
     ends (2 * len); an external strip exposes two ends and its outer side
     (2 * len + finger_w). *)
  let perim ni ne =
    2.0 *. (float_of_int ni *. int_len +. float_of_int ne *. ext_len)
    +. float_of_int ne *. finger_w
  in
  {
    ad = area c.d_internal c.d_external;
    as_ = area c.s_internal c.s_external;
    pd = perim c.d_internal c.d_external;
    ps = perim c.s_internal c.s_external;
    finger_w;
    drain_strips = c.d_internal + c.d_external;
    source_strips = c.s_internal + c.s_external;
  }

let effective_width proc ~w style ~drain =
  let g = geometry proc ~w style in
  let strips = if drain then g.drain_strips else g.source_strips in
  float_of_int strips *. g.finger_w

let stack_pitch proc ~l style =
  let rules = proc.Technology.Process.rules in
  let lam = proc.Technology.Process.lambda in
  let ext_len = float_of_int (Technology.Rules.sd_contacted rules) *. lam in
  let int_len = float_of_int (Technology.Rules.sd_shared_contacted rules) *. lam in
  float_of_int style.nf *. l
  +. 2.0 *. ext_len
  +. float_of_int (style.nf - 1) *. int_len

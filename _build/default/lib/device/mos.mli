(** A sized MOS device instance: the unit shared by the netlist, the sizing
    tool and the layout generator.  Geometry (W, L) is in metres; the
    folding style determines the diffusion parasitics unless explicit
    diffusion areas are given (as the extractor does after layout). *)

type t = {
  name : string;
  mtype : Technology.Electrical.mos_type;
  w : float;
  l : float;
  style : Folding.style;
  diffusion : Folding.geom option;
  (** When [Some g], overrides the geometry derived from [style] — used by
      the layout extractor to annotate as-drawn diffusions. *)
  vto_shift : float;
  (** additive threshold mismatch, V (Monte Carlo analysis; default 0) *)
  beta_scale : float;
  (** multiplicative current-factor mismatch (default 1) *)
}

val make :
  ?style:Folding.style -> ?diffusion:Folding.geom ->
  name:string -> mtype:Technology.Electrical.mos_type ->
  w:float -> l:float -> unit -> t

val params : Technology.Process.t -> t -> Technology.Electrical.mos_params
(** Model card of the device's polarity in the given process, with the
    device's mismatch perturbations folded in (vto shifted, u0 scaled) —
    every analysis that reads the card sees the perturbed device. *)

val with_mismatch : vto_shift:float -> beta_scale:float -> t -> t

val mismatch_sigma :
  Technology.Process.t -> t -> float * float
(** Pelgrom standard deviations [(sigma_vt, sigma_beta_rel)] of this
    device: avt / sqrt(W L) and abeta / sqrt(W L). *)

val diffusion_geom : Technology.Process.t -> t -> Folding.geom
(** The effective diffusion geometry: the override if present, otherwise
    derived from the folding style. *)

val with_style : Folding.style -> t -> t
(** Replace the folding style and drop any diffusion override (the
    geometry will be re-derived). *)

val snap_to_grid : Technology.Process.t -> t -> t
(** Snap W and L to the layout grid (ceil to whole lambda per finger).
    This is the small width modification "needed by layout grid" that the
    paper identifies as the source of residual offset after folding. *)

val pp : Format.formatter -> t -> unit

module E = Technology.Electrical
module P = Technology.Process

type t = {
  name : string;
  mtype : E.mos_type;
  w : float;
  l : float;
  style : Folding.style;
  diffusion : Folding.geom option;
  vto_shift : float;
  beta_scale : float;
}

let make ?(style = Folding.default) ?diffusion ~name ~mtype ~w ~l () =
  assert (w > 0.0 && l > 0.0);
  { name; mtype; w; l; style; diffusion; vto_shift = 0.0; beta_scale = 1.0 }

let params proc t =
  let card =
    match t.mtype with
    | E.Nmos -> proc.P.electrical.E.nmos
    | E.Pmos -> proc.P.electrical.E.pmos
  in
  if t.vto_shift = 0.0 && t.beta_scale = 1.0 then card
  else
    { card with
      E.vto = card.E.vto +. t.vto_shift;
      u0 = card.E.u0 *. t.beta_scale }

let with_mismatch ~vto_shift ~beta_scale t = { t with vto_shift; beta_scale }

let mismatch_sigma proc t =
  let card = params proc t in
  let area = sqrt (t.w *. t.l) in
  (card.E.avt /. area, card.E.abeta /. area)

let diffusion_geom proc t =
  match t.diffusion with
  | Some g -> g
  | None -> Folding.geometry proc ~w:t.w t.style

let with_style style t = { t with style; diffusion = None }

let snap_to_grid proc t =
  let nf = t.style.Folding.nf in
  (* Snap the per-finger width and the length, then rebuild the totals. *)
  let wf_lambda = P.to_lambda proc (t.w /. float_of_int nf) in
  let l_lambda = P.to_lambda proc t.l in
  let rules = proc.P.rules in
  let wf_lambda = max wf_lambda rules.Technology.Rules.active_width in
  let l_lambda = max l_lambda rules.Technology.Rules.poly_width in
  { t with
    w = P.um proc (wf_lambda * nf);
    l = P.um proc l_lambda;
    diffusion = None }

let pp fmt t =
  let si = Phys.Units.to_si_string in
  Format.fprintf fmt "%s %a W=%s L=%s nf=%d%s"
    t.name E.pp_mos_type t.mtype
    (si "m" t.w) (si "m" t.l) t.style.Folding.nf
    (if t.style.Folding.drain_internal then " (drain internal)" else "")

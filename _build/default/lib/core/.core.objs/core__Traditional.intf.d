lib/core/traditional.mli: Comdiac Device Layout_bridge Technology

lib/core/flow.mli: Cairo_layout Comdiac Device Layout_bridge Technology

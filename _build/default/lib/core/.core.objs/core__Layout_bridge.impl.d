lib/core/layout_bridge.ml: Cairo_layout Comdiac Device Float List Netlist Technology

lib/core/traditional.ml: Cairo_layout Comdiac Float Flow Layout_bridge List Sys

lib/core/layout_bridge.mli: Cairo_layout Comdiac Technology

lib/core/flow.ml: Cairo_layout Comdiac Device Float Layout_bridge List Netlist Printf Sys

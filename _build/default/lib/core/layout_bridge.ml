module FC = Comdiac.Folded_cascode
module Plan = Cairo_layout.Plan
module Motif = Cairo_layout.Motif
module Pair = Cairo_layout.Pair
module Stack = Cairo_layout.Stack
module Route = Cairo_layout.Route
module Slicing = Cairo_layout.Slicing
module E = Technology.Electrical

type options = {
  pair_style : Pair.style;
  allowed_folds : int list;
  max_w : int option;
  max_h : int option;
  aspect : (float * float) option;
}

let default_options = {
  pair_style = Pair.Common_centroid;
  allowed_folds = [ 2; 4; 6; 8; 10; 12; 14; 16; 20 ];
  max_w = None;
  max_h = None;
  aspect = Some (0.5, 2.0);
}

let terminals design name =
  let amp = design.FC.amp in
  let dev = Comdiac.Amp.find_device amp name in
  let rec find = function
    | [] -> invalid_arg ("Layout_bridge.terminals: " ^ name)
    | Netlist.Element.Mos { dev = d; d = dn; g; s; b } :: _
      when d.Device.Mos.name = name -> (dev, dn, g, s, b)
    | _ :: rest -> find rest
  in
  find amp.Comdiac.Amp.devices

let motif_spec design name =
  let dev, d, g, s, b = terminals design name in
  let current =
    match List.assoc_opt name (FC.drain_currents design) with
    | Some i -> i
    | None -> 0.0
  in
  { Motif.dev; d_net = d; g_net = g; s_net = s; b_net = b; i_drain = current }

let floorplan _proc design options =
  let currents = FC.drain_currents design in
  let current name = List.assoc name currents in
  let dev name =
    let d, _, _, _, _ = terminals design name in
    d
  in
  (* input pair: matched group with dummies *)
  let p1 = dev "P1" in
  let pair_group =
    Plan.Matched_pair
      {
        spec =
          {
            Pair.a_name = "P1"; b_name = "P2"; mtype = E.Pmos;
            w = p1.Device.Mos.w; l = p1.Device.Mos.l;
            nf = 4;
            tail_net = "tail"; a_drain = "n1"; b_drain = "n2";
            a_gate = "inp"; b_gate = "inn"; bulk_net = "tail";
            current = current "P1";
            style = options.pair_style;
          };
        allowed_folds = options.allowed_folds;
      }
  in
  (* 1:1 mirror-style stacks for the matched sink and source pairs *)
  let mirror names mtype source_net gate_net bulk_net =
    match names with
    | [ a; b ] ->
      let da = dev a in
      Plan.Mirror
        {
          spec =
            {
              Stack.elements =
                [
                  { Stack.el_name = a; units = 1; drain_net = FC.net_of_drain a;
                    current = current a };
                  { Stack.el_name = b; units = 1; drain_net = FC.net_of_drain b;
                    current = current b };
                ];
              mtype;
              unit_w = da.Device.Mos.w;
              l = da.Device.Mos.l;
              source_net;
              gate = Stack.Common gate_net;
              bulk_net;
              dummies = true;
            };
          unit_scales = [ 2; 3; 4; 6; 8; 10; 12; 14 ];
        }
    | _ -> invalid_arg "Layout_bridge.floorplan: mirror expects two devices"
  in
  let sink_group = mirror [ "N5"; "N6" ] E.Nmos "0" "vp2" "0" in
  let psrc_group = mirror [ "P3"; "P4" ] E.Pmos "vdd" "n3" "vdd" in
  (* cascodes: fold-locked matched singles (their sources differ, so they
     cannot share diffusion) *)
  let matched names =
    Plan.Matched_singles
      { specs = List.map (motif_spec design) names;
        allowed_folds = options.allowed_folds }
  in
  let ncasc_group = matched [ "N1C"; "N2C" ] in
  let pcasc_group = matched [ "P3C"; "P4C" ] in
  let tail_group =
    Plan.Single
      { spec = motif_spec design "TAIL"; allowed_folds = options.allowed_folds }
  in
  (* slicing structure mirroring the schematic's vertical signal flow:
     NMOS sinks and cascodes at the bottom, input pair and tail in the
     middle, PMOS cascodes and sources on top *)
  Slicing.V
    ( Slicing.V
        (Slicing.Leaf (sink_group, []), Slicing.Leaf (ncasc_group, [])),
      Slicing.V
        ( Slicing.H (Slicing.Leaf (pair_group, []), Slicing.Leaf (tail_group, [])),
          Slicing.V
            (Slicing.Leaf (pcasc_group, []), Slicing.Leaf (psrc_group, [])) ) )

let net_requests design =
  let currents = FC.drain_currents design in
  let nets =
    [ "n1"; "n2"; "n3"; "n4l"; "n4r"; "out"; "tail"; "inp"; "inn";
      "vp1"; "vp2"; "vc1"; "vc3"; "vdd"; "0" ]
  in
  let current_of net =
    List.fold_left
      (fun acc (name, i) ->
        if FC.net_of_drain name = net then Float.max acc i else acc)
      0.0 currents
  in
  let special = function
    | "vdd" | "0" ->
      (* supply rails carry the full quiescent current *)
      Some (List.fold_left (fun acc (_, i) -> acc +. i) 0.0 currents /. 2.0)
    | "tail" -> Some (List.assoc "TAIL" currents)
    | _ -> None
  in
  List.map
    (fun net ->
      let current =
        match special net with Some i -> i | None -> current_of net
      in
      { Route.net; current })
    nets

let call_layout ~mode proc design options =
  Plan.run ?max_w:options.max_w ?max_h:options.max_h ?aspect:options.aspect
    ~mode ~nets:(net_requests design) proc
    (floorplan proc design options)

let parasitics_of_report ?(include_routing = true) report =
  let node_caps =
    if include_routing then
      List.map
        (fun (s : Plan.net_summary) -> (s.Plan.net, Plan.net_total s))
        report.Plan.nets
    else []
  in
  Comdiac.Parasitics.exact ~node_caps ~styles:report.Plan.device_styles
    ~drains:report.Plan.device_drains ()

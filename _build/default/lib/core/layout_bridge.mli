(** Bridge between the sizing tool and the layout tool: what the sizing
    tool *sends* (transistor sizes, currents, device-style options, shape
    constraint — paper Section 2) and what it *receives back* (folding
    styles, exact diffusion geometry, routing/coupling/well capacitances).

    The floorplan encodes the folded cascode's matched-device knowledge:
    the input pair as a common-centroid (or interdigitated) group with end
    dummies, the sink and mirror pairs as 1:1 stacks, the cascodes as
    fold-locked matched singles. *)

type options = {
  pair_style : Cairo_layout.Pair.style;
      (** implementation of the input differential pair *)
  allowed_folds : int list;
      (** candidate fold counts offered to the area optimiser (even
          counts keep drains internal) *)
  max_w : int option;  (** shape constraint, lambda *)
  max_h : int option;
  aspect : (float * float) option;
}

val default_options : options

val floorplan :
  Technology.Process.t ->
  Comdiac.Folded_cascode.design ->
  options ->
  Cairo_layout.Plan.floorplan

val net_requests :
  Comdiac.Folded_cascode.design -> Cairo_layout.Route.net_request list
(** One request per amp net, carrying the worst-case DC current for the
    electromigration rules. *)

val call_layout :
  mode:Cairo_layout.Plan.mode ->
  Technology.Process.t ->
  Comdiac.Folded_cascode.design ->
  options ->
  Cairo_layout.Plan.report
(** One call of the layout tool (parasitic-calculation or generation
    mode). *)

val parasitics_of_report :
  ?include_routing:bool ->
  Cairo_layout.Plan.report ->
  Comdiac.Parasitics.t
(** Translate a layout report into the sizing tool's parasitic knowledge.
    [include_routing = false] keeps only the exact diffusion information
    (Table 1 case 3); [true] adds routing, coupling and well capacitances
    (case 4). *)

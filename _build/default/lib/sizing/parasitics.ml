module F = Device.Folding

type diffusion_mode =
  | No_diffusion
  | Assume_single_fold
  | Layout_exact

type t = {
  diffusion : diffusion_mode;
  styles : (string * F.style) list;
  drains : (string * F.geom) list;
  node_caps : (string * float) list;
}

let none = { diffusion = No_diffusion; styles = []; drains = []; node_caps = [] }

let single_fold =
  { diffusion = Assume_single_fold; styles = []; drains = []; node_caps = [] }

let exact ?(node_caps = []) ~styles ~drains () =
  { diffusion = Layout_exact; styles; drains; node_caps }

let style_of t name =
  match t.diffusion with
  | No_diffusion | Assume_single_fold -> F.default
  | Layout_exact ->
    (match List.assoc_opt name t.styles with
     | Some s -> s
     | None -> F.default)

let drain_of t name =
  match t.diffusion with
  | No_diffusion | Assume_single_fold -> None
  | Layout_exact -> List.assoc_opt name t.drains

let node_cap t net =
  match List.assoc_opt net t.node_caps with Some c -> c | None -> 0.0

let apply_to_device t dev =
  let name = dev.Device.Mos.name in
  let style = style_of t name in
  let dev = Device.Mos.with_style style dev in
  match drain_of t name with
  | None -> dev
  | Some g -> { dev with Device.Mos.diffusion = Some g }

let rel_diff a b =
  if a = 0.0 && b = 0.0 then 0.0
  else Float.abs (a -. b) /. Float.max 1e-18 (Float.max (Float.abs a) (Float.abs b))

let max_distance a b =
  let nets =
    List.sort_uniq compare (List.map fst a.node_caps @ List.map fst b.node_caps)
  in
  let cap_dist =
    List.fold_left
      (fun acc net -> Float.max acc (rel_diff (node_cap a net) (node_cap b net)))
      0.0 nets
  in
  let devs =
    List.sort_uniq compare (List.map fst a.drains @ List.map fst b.drains)
  in
  let area_of t name =
    match List.assoc_opt name t.drains with
    | Some g -> g.F.ad
    | None -> 0.0
  in
  List.fold_left
    (fun acc d -> Float.max acc (rel_diff (area_of a d) (area_of b d)))
    cap_dist devs

lib/sizing/two_stage.mli: Amp Device Format Parasitics Spec Technology

lib/sizing/simple_ota.ml: Amp Device Float Format Netlist Parasitics Phys Spec Technology

lib/sizing/folded_cascode.ml: Amp Device Float Format List Netlist Parasitics Phys Spec Technology

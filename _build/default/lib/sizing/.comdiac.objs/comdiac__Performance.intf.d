lib/sizing/performance.mli: Format

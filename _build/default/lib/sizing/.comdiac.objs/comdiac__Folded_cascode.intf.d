lib/sizing/folded_cascode.mli: Amp Device Format Parasitics Spec Technology

lib/sizing/amp.ml: Device Format List Netlist

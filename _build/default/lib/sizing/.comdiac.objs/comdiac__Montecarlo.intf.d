lib/sizing/montecarlo.mli: Amp Device Format Spec Technology

lib/sizing/performance.ml: Format List Printf

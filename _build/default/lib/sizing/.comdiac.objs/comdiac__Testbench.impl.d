lib/sizing/testbench.ml: Amp Array Device Float Netlist Performance Phys Sim Spec Technology

lib/sizing/robustness.mli: Amp Device Format Spec Technology

lib/sizing/parasitics.ml: Device Float List

lib/sizing/two_stage.ml: Amp Device Float Format Netlist Parasitics Phys Spec Technology Testbench

lib/sizing/testbench.mli: Amp Device Performance Sim Spec Technology

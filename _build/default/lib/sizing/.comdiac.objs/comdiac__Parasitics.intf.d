lib/sizing/parasitics.mli: Device

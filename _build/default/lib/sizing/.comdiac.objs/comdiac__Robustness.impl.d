lib/sizing/robustness.ml: Float Format List Phys Sim Spec Technology Testbench

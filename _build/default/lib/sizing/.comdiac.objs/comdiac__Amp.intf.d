lib/sizing/amp.mli: Device Format Netlist

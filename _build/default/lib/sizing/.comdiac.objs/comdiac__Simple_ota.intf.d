lib/sizing/simple_ota.mli: Amp Device Format Parasitics Spec Technology

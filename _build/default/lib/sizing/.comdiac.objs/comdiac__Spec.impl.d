lib/sizing/spec.ml: Float Format Phys

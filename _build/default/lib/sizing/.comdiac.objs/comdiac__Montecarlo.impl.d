lib/sizing/montecarlo.ml: Amp Device Float Format Fun List Netlist Phys Random Sim Testbench

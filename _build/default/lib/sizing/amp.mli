(** A sized amplifier: the output of a topology design plan.  Amp netlists
    use canonical net names ([inp], [inn], [out], [vdd], ground ["0"]);
    testbenches attach sources to those nets. *)

type t = {
  topology : string;
  devices : Netlist.Element.t list;
      (** MOS elements on canonical nets, fully sized and styled *)
  bias_sources : (string * float) list;
      (** ideal bias voltages (net, value) the design plan computed *)
  node_caps : (string * float) list;
      (** parasitic node capacitances assumed by the sizing (F) *)
  guess : (string * float) list;
      (** DC node-voltage guesses, including internal nodes *)
  quiescent_out : float;
  tail_current : float;          (** slewing current available at the output *)
  supply_current : float;        (** predicted quiescent current from VDD *)
  gm1 : float;                   (** input-pair transconductance *)
  internal_nets : string list;
}

val add_to : t -> Netlist.Circuit.t -> Netlist.Circuit.t
(** Add the amp devices, bias sources and assumed parasitic capacitors to a
    circuit. *)

val guess_fn : t -> extra:(string * float) list -> string -> float option
(** Newton seed combining the amp's internal guesses with testbench
    nodes. *)

val mos_devices : t -> Device.Mos.t list
val find_device : t -> string -> Device.Mos.t
val map_devices : (Device.Mos.t -> Device.Mos.t) -> t -> t
val with_node_caps : (string * float) list -> t -> t
val pp_sizes : Format.formatter -> t -> unit

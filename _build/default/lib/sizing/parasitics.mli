(** The parasitic knowledge available to the sizing tool — the independent
    variable of the paper's Table 1 experiment.

    - {!none}: no layout capacitances at all (case 1);
    - {!single_fold}: junction capacitances assuming one fold per
      transistor, no routing (case 2 — over-estimates diffusion);
    - {!exact}: fold-exact diffusion from a layout-tool report, optionally
      with routing/coupling/well capacitances (cases 3 and 4). *)

type diffusion_mode =
  | No_diffusion            (** ignore junction capacitances entirely *)
  | Assume_single_fold      (** nf = 1 geometry regardless of layout *)
  | Layout_exact            (** use the styles/geometry below *)

type t = {
  diffusion : diffusion_mode;
  styles : (string * Device.Folding.style) list;
      (** folding per device, from the layout tool *)
  drains : (string * Device.Folding.geom) list;
      (** as-drawn diffusion override per device *)
  node_caps : (string * float) list;
      (** routing + coupling + well capacitance per amp net (amp-local
          net names), F *)
}

val none : t
val single_fold : t

val exact :
  ?node_caps:(string * float) list ->
  styles:(string * Device.Folding.style) list ->
  drains:(string * Device.Folding.geom) list -> unit -> t

val style_of : t -> string -> Device.Folding.style
(** Folding style the sizing tool assumes for a device (single fold unless
    [Layout_exact] supplies one). *)

val drain_of : t -> string -> Device.Folding.geom option
val node_cap : t -> string -> float

val apply_to_device : t -> Device.Mos.t -> Device.Mos.t
(** Rewrite a device's folding style and diffusion override according to
    this parasitic knowledge ([No_diffusion] leaves geometry alone — the
    *evaluation* decides to ignore junction caps, see
    {!Folded_cascode}). *)

val max_distance : t -> t -> float
(** Largest relative difference between the node capacitances (and drain
    areas) of two parasitic states — the layout-oriented loop's
    convergence measure. *)

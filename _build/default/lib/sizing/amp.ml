module El = Netlist.Element

type t = {
  topology : string;
  devices : El.t list;
  bias_sources : (string * float) list;
  node_caps : (string * float) list;
  guess : (string * float) list;
  quiescent_out : float;
  tail_current : float;
  supply_current : float;
  gm1 : float;
  internal_nets : string list;
}

let add_to t circuit =
  let circuit = List.fold_left Netlist.Circuit.add circuit t.devices in
  let circuit =
    List.fold_left
      (fun c (net, v) ->
        Netlist.Circuit.add_vsource c ~name:("b_" ^ net) ~p:net ~n:El.ground
          (El.dc_source v))
      circuit t.bias_sources
  in
  List.fold_left
    (fun c (net, cap) ->
      Netlist.Circuit.add_node_cap c ~name:("par_" ^ net) ~node:net ~c:cap)
    circuit t.node_caps

let guess_fn t ~extra name =
  match List.assoc_opt name t.guess with
  | Some v -> Some v
  | None -> List.assoc_opt name extra

let mos_devices t =
  List.filter_map
    (function
      | El.Mos { dev; _ } -> Some dev
      | El.Resistor _ | El.Capacitor _ | El.Isource _ | El.Vsource _ -> None)
    t.devices

let find_device t name =
  match List.find_opt (fun d -> d.Device.Mos.name = name) (mos_devices t) with
  | Some d -> d
  | None -> raise Not_found

let map_devices f t =
  let devices =
    List.map
      (function
        | El.Mos m -> El.Mos { m with dev = f m.dev }
        | (El.Resistor _ | El.Capacitor _ | El.Isource _ | El.Vsource _) as e -> e)
      t.devices
  in
  { t with devices }

let with_node_caps node_caps t = { t with node_caps }

let pp_sizes fmt t =
  Format.fprintf fmt "@[<v>%s:@," t.topology;
  List.iter
    (fun d -> Format.fprintf fmt "  %a@," Device.Mos.pp d)
    (mos_devices t);
  List.iter
    (fun (net, v) -> Format.fprintf fmt "  bias %-6s = %.4f V@," net v)
    t.bias_sources;
  Format.fprintf fmt "@]"

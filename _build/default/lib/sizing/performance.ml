type t = {
  dc_gain_db : float;
  gbw : float;
  phase_margin : float;
  slew_rate : float;
  cmrr_db : float;
  offset : float;
  output_resistance : float;
  input_noise : float;
  thermal_noise_density : float;
  flicker_noise_density : float;
  power : float;
}

let row_labels = [
  "DC gain (dB)";
  "GBW (MHz)";
  "Phase margin (deg)";
  "Slew rate (V/us)";
  "CMRR (dB)";
  "Offset voltage (mV)";
  "Output resistance (Mohm)";
  "Input noise voltage (uV)";
  "Thermal noise density (nV/rtHz)";
  "Flicker noise at 1 Hz (uV/rtHz)";
  "Power dissipation (mW)";
]

let values t = [
  t.dc_gain_db;
  t.gbw /. 1e6;
  t.phase_margin;
  t.slew_rate /. 1e6;
  t.cmrr_db;
  t.offset /. 1e-3;
  t.output_resistance /. 1e6;
  t.input_noise /. 1e-6;
  t.thermal_noise_density /. 1e-9;
  t.flicker_noise_density /. 1e-6;
  t.power /. 1e-3;
]

let rows t =
  List.map2 (fun l v -> (l, Printf.sprintf "%.2f" v)) row_labels (values t)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (l, v) -> Format.fprintf fmt "%-32s %10s@," l v) (rows t);
  Format.fprintf fmt "@]"

let pp_pair fmt (synth, extracted) =
  Format.fprintf fmt "@[<v>";
  List.iter2
    (fun label (vs, ve) ->
      Format.fprintf fmt "%-32s %10.2f (%.2f)@," label vs ve)
    row_labels
    (List.combine (values synth) (values extracted));
  Format.fprintf fmt "@]"

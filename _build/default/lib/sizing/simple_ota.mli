(** Third topology: the classic single-stage five-transistor OTA (NMOS
    input pair, PMOS mirror load, NMOS tail).  Small gain, single pole —
    useful as a quickstart example and as the baseline topology in the
    design-space exploration example. *)

type design = {
  amp : Amp.t;
  i1 : float;
  predicted_gbw : float;
  predicted_gain_db : float;
}

val size :
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Spec.t ->
  parasitics:Parasitics.t ->
  design

val device_names : string list
val pp_design : Format.formatter -> design -> unit

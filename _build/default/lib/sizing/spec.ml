type t = {
  vdd : float;
  gbw : float;
  phase_margin : float;
  cload : float;
  icmr : float * float;
  output_range : float * float;
}

let paper_ota = {
  vdd = 3.3;
  gbw = 65e6;
  phase_margin = 65.0;
  cload = 3e-12;
  icmr = (-0.55, 1.84);
  output_range = (0.51, 2.31);
}

let input_common_mode t =
  let lo, hi = t.icmr in
  Float.min t.vdd (Float.max 0.0 ((lo +. hi) /. 2.0))

let output_quiescent t =
  let lo, hi = t.output_range in
  (lo +. hi) /. 2.0

let validate t =
  let lo_i, hi_i = t.icmr and lo_o, hi_o = t.output_range in
  if t.vdd <= 0.0 then Error "vdd must be positive"
  else if t.gbw <= 0.0 then Error "gbw must be positive"
  else if t.phase_margin <= 0.0 || t.phase_margin >= 90.0 then
    Error "phase margin must be in (0, 90) degrees"
  else if t.cload <= 0.0 then Error "cload must be positive"
  else if lo_i >= hi_i then Error "empty input common-mode range"
  else if lo_o >= hi_o then Error "empty output range"
  else if hi_o > t.vdd then Error "output range exceeds supply"
  else Ok ()

let pp fmt t =
  let si = Phys.Units.to_si_string in
  let lo_i, hi_i = t.icmr and lo_o, hi_o = t.output_range in
  Format.fprintf fmt
    "VDD=%.2f V  GBW=%s  PM=%.1f deg  CL=%s  ICMR=[%.2f, %.2f] V  \
     out=[%.2f, %.2f] V"
    t.vdd (si "Hz" t.gbw) t.phase_margin (si "F" t.cload) lo_i hi_i lo_o hi_o

(** The measured performance record — one column of the paper's Table 1
    (eleven rows). *)

type t = {
  dc_gain_db : float;
  gbw : float;                   (** unity-gain frequency, Hz *)
  phase_margin : float;          (** degrees *)
  slew_rate : float;             (** V/s (printed as V/us) *)
  cmrr_db : float;
  offset : float;                (** input-referred, V *)
  output_resistance : float;     (** ohm *)
  input_noise : float;           (** integrated RMS input noise, V *)
  thermal_noise_density : float; (** white-region input density, V/sqrt(Hz) *)
  flicker_noise_density : float; (** input density at 1 Hz, V/sqrt(Hz) *)
  power : float;                 (** quiescent dissipation, W *)
}

val row_labels : string list
(** The Table-1 row names, in order. *)

val rows : t -> (string * string) list
(** Label and pretty-printed value per row. *)

val pp : Format.formatter -> t -> unit

val pp_pair : Format.formatter -> t * t -> unit
(** Print [synthesized (extracted)] pairs like the paper's table cells. *)

(** Second topology: a two-stage Miller-compensated OTA (NMOS input pair
    with PMOS mirror load, PMOS common-source second stage, Miller
    capacitor with nulling resistor).  Demonstrates the hierarchical
    design-plan structure: adding a topology reuses the same blocks
    (pair, mirror, bias inversion) and the same {!Testbench}. *)

type design = {
  amp : Amp.t;
  i1 : float;          (** first-stage branch current, A *)
  i6 : float;          (** second-stage current, A *)
  cc : float;          (** Miller capacitor, F *)
  rz : float;          (** nulling resistor, ohm *)
  predicted_gbw : float;
}

val size :
  proc:Technology.Process.t ->
  kind:Device.Model.kind ->
  spec:Spec.t ->
  parasitics:Parasitics.t ->
  design

val device_names : string list
val pp_design : Format.formatter -> design -> unit

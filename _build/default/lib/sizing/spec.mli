(** Op-amp performance specification — the inputs of the sizing tool
    (paper Table 1 header): supply, gain-bandwidth product, phase margin,
    load, input common-mode range and output range. *)

type t = {
  vdd : float;                    (** supply voltage, V *)
  gbw : float;                    (** gain-bandwidth product target, Hz *)
  phase_margin : float;           (** degrees *)
  cload : float;                  (** load capacitance, F *)
  icmr : float * float;           (** input common-mode range, V *)
  output_range : float * float;   (** output swing, V *)
}

val paper_ota : t
(** The paper's folded cascode OTA specification: VDD = 3.3 V,
    GBW = 65 MHz, PM = 65 deg, CL = 3 pF, ICMR = [-0.55, 1.84] V,
    output range = [0.51, 2.31] V. *)

val input_common_mode : t -> float
(** Mid input common-mode voltage used for the testbenches, clamped to
    [0, vdd]. *)

val output_quiescent : t -> float
(** Mid output-range voltage: the quiescent output target. *)

val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit

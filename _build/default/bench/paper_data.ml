(* Reference values transcribed from the paper (DATE 2000, Table 1).
   Each case cell is (synthesized, extracted); [None] where the scanned
   text lost the number (the thermal-noise-density row). *)

type row = {
  label : string;
  cases : (float * float) option array;  (* 4 cases *)
}

let table1 : row list =
  [
    { label = "DC gain (dB)";
      cases = [| Some (70.1, 70.1); Some (55.0, 56.59); Some (66.1, 66.1);
                 Some (64.7, 64.7) |] };
    { label = "GBW (MHz)";
      cases = [| Some (64.9, 58.1); Some (66.5, 71.2); Some (65.0, 62.6);
                 Some (65.8, 66.1) |] };
    { label = "Phase margin (deg)";
      cases = [| Some (65.3, 56.3); Some (65.4, 72.4); Some (65.4, 64.4);
                 Some (65.15, 65.4) |] };
    { label = "Slew rate (V/us)";
      cases = [| Some (94.0, 86.5); Some (103.0, 98.1); Some (93.3, 93.3);
                 Some (93.0, 94.4) |] };
    { label = "CMRR (dB)";
      cases = [| Some (100.7, 100.7); Some (76.9, 79.6); Some (93.9, 93.9);
                 Some (91.6, 91.6) |] };
    { label = "Offset voltage (mV)";
      cases = [| Some (0.0, 0.0); Some (0.0, -0.1); Some (0.0, 0.0);
                 Some (0.0, 0.0) |] };
    { label = "Output resistance (Mohm)";
      cases = [| Some (2.4, 2.4); Some (0.38, 0.47); Some (1.5, 1.47);
                 Some (1.23, 1.23) |] };
    { label = "Input noise voltage (uV)";
      cases = [| Some (83.9, 96.1); Some (101.6, 85.6); Some (83.3, 87.8);
                 Some (82.7, 85.8) |] };
    { label = "Thermal noise density (nV/rtHz)";
      cases = [| None; None; None; None |] };
    { label = "Flicker noise at 1 Hz (uV/rtHz)";
      cases = [| Some (1.95, 3.64); Some (1.4, 8.1); Some (2.59, 4.85);
                 Some (2.82, 5.28) |] };
    { label = "Power dissipation (mW)";
      cases = [| Some (2.0, 2.0); Some (2.4, 2.2); Some (2.1, 2.1);
                 Some (2.1, 2.1) |] };
  ]

(* Paper flow statements used by the fig1 and timing experiments. *)
let paper_layout_calls_case4 = 3
let paper_sizing_time_bound_s = 120.0

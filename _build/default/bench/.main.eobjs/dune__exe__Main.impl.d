bench/main.ml: Analyze Array Bechamel Benchmark Cairo_layout Comdiac Core Device Format Hashtbl Lazy List Measure Netlist Paper_data Phys Printf Sim Staged String Sys Technology Test Time Toolkit

bench/main.mli:

(* The full layout-oriented synthesis flow (paper Fig. 1b) with a visible
   convergence trace.  The loop itself lives in [Core.Flow.run]; this
   example turns on the telemetry subsystem and reads the convergence
   trajectory, per-stage costs and Newton totals back out of it instead of
   instrumenting the loop by hand.

     dune exec examples/ota_flow.exe *)

module FC = Comdiac.Folded_cascode
module Plan = Cairo_layout.Plan
module Flow = Core.Flow

let proc = Technology.Process.c06
let kind = Device.Model.Bsim_lite
let spec = Comdiac.Spec.paper_ota

let () =
  Format.printf "layout-oriented synthesis of: %a@.@." Comdiac.Spec.pp spec;
  (* one execution context instead of loose ?jobs/?cache flags; telemetry
     turned on through it so the trajectory can be read back out below *)
  let ctx = Core.Ctx.make ~telemetry:true proc in
  let r = Flow.run ~ctx ~kind ~spec Flow.Case4 in
  (* the convergence trajectory, as telemetry recorded it: relative
     movement of the parasitic vector at each parasitic-mode layout call *)
  let deltas = Obs.Metrics.values "flow.parasitic_delta" in
  Format.printf "parasitic convergence trajectory (%d layout-tool calls):@."
    r.Flow.layout_calls;
  List.iteri
    (fun i d ->
      Format.printf "  call %d: parasitic movement vs previous estimate %5.1f%%%s@."
        (i + 1) (100.0 *. d)
        (if d < 0.02 then "  <- converged" else ""))
    deltas;
  Format.printf
    "sizing passes: %.0f  Newton iterations: %.0f  AC factorizations: %.0f@.@."
    (Obs.Metrics.counter "flow.sizing_passes")
    (Obs.Metrics.counter "sim.dcop.newton_iters")
    (Obs.Metrics.counter "sim.acs.factorizations");
  let report = r.Flow.report in
  Format.printf "floorplan %d x %d lambda@." report.Plan.total_w
    report.Plan.total_h;
  (match report.Plan.cell with
   | Some cell ->
     let path = "ota_layout.svg" in
     Out_channel.with_open_text path (fun oc ->
       output_string oc (Cairo_layout.Render.svg cell));
     Format.printf "wrote %s@." path
   | None -> ());
  (* verify the extracted netlist - the bracketed Table-1 values *)
  Format.printf "@.synthesized (extracted):@.%a@." Comdiac.Performance.pp_pair
    (r.Flow.synthesized, r.Flow.extracted);
  (* where the time went, straight from the span roll-up *)
  Format.printf "@.where the %.2f s went:@.%s" r.Flow.elapsed
    (Obs.Reporter.spans_table ())

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe table1     -- one experiment
     experiments: table1 fig1 fig2 fig3 fig4 fig5 ablation statistics timing
                  cache kernels sparse scaling serve
   [--backend NAME] selects the default linear-solver backend for every
   analysis (kernel | reference | sparse | sparse-natural); [sparse]
   compares dense vs CSR refactorization and dumps [--sparse-json FILE]
   (CI keeps it as BENCH_sparse.json).

   [timing] additionally compares sequential vs domain-pool wall-clock
   for the embarrassingly parallel workloads (Monte Carlo, corner sweep,
   flow cases); pass [--json FILE] to dump those measurements as a
   machine-readable file (used by CI as BENCH_timing.json).

   [scaling] sweeps jobs = 1..cores over the same workloads and measures
   the jobs=1 forced-pool overhead against the inline sequential path;
   [--scaling-json FILE] dumps the sweep (CI keeps BENCH_scaling.json)
   and the overhead fraction is gated against bench/baselines with an
   absolute band.

   Absolute numbers come from this repository's synthetic 0.6 um process
   and in-house simulator, so only the *shape* of each result is expected
   to match the paper (see EXPERIMENTS.md). *)

let proc = Technology.Process.c06
let kind = Device.Model.Bsim_lite
let spec = Comdiac.Spec.paper_ota

let hr () = Format.printf "%s@." (String.make 78 '-')

let section title =
  hr ();
  Format.printf "%s@." title;
  hr ()

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let flow_results = lazy (Core.Flow.run_all ~proc ~kind ~spec ())

let table1 () =
  section "Table 1 - sizing, layout and simulation results (paper vs this repo)";
  Format.printf "input spec: %a@." Comdiac.Spec.pp spec;
  let results = Lazy.force flow_results in
  List.iter
    (fun (r : Core.Flow.result) ->
      Format.printf "%s: %s -- %d layout call(s), %.1f s@."
        (Core.Flow.case_label r.Core.Flow.case)
        (Core.Flow.case_description r.Core.Flow.case)
        r.Core.Flow.layout_calls r.Core.Flow.elapsed)
    results;
  Format.printf
    "@.cells: synthesized (extracted); 'paper' row from DATE 2000 Table 1, \
     'ours' row measured here@.@.";
  let ours_values (p : Comdiac.Performance.t) =
    [
      p.Comdiac.Performance.dc_gain_db;
      p.Comdiac.Performance.gbw /. 1e6;
      p.Comdiac.Performance.phase_margin;
      p.Comdiac.Performance.slew_rate /. 1e6;
      p.Comdiac.Performance.cmrr_db;
      p.Comdiac.Performance.offset /. 1e-3;
      p.Comdiac.Performance.output_resistance /. 1e6;
      p.Comdiac.Performance.input_noise /. 1e-6;
      p.Comdiac.Performance.thermal_noise_density /. 1e-9;
      p.Comdiac.Performance.flicker_noise_density /. 1e-6;
      p.Comdiac.Performance.power /. 1e-3;
    ]
  in
  Format.printf "%-34s %-6s" "specification" "";
  List.iter
    (fun (r : Core.Flow.result) ->
      Format.printf " %16s" (Core.Flow.case_label r.Core.Flow.case))
    results;
  Format.printf "@.";
  List.iteri
    (fun row_i (row : Paper_data.row) ->
      Format.printf "%-34s %-6s" row.Paper_data.label "paper";
      Array.iter
        (fun cell ->
          match cell with
          | Some (s, e) -> Format.printf " %7.2f (%6.2f)" s e
          | None -> Format.printf " %16s" "n/a")
        row.Paper_data.cases;
      Format.printf "@.%-34s %-6s" "" "ours";
      List.iter
        (fun (r : Core.Flow.result) ->
          let s = List.nth (ours_values r.Core.Flow.synthesized) row_i in
          let e = List.nth (ours_values r.Core.Flow.extracted) row_i in
          Format.printf " %7.2f (%6.2f)" s e)
        results;
      Format.printf "@.")
    Paper_data.table1

(* ------------------------------------------------------------------ *)
(* Figure 1 - design flow comparison                                    *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Figure 1 - traditional flow (a) vs layout-oriented flow (b)";
  let trad = Core.Traditional.run ~proc ~kind ~spec () in
  Format.printf
    "traditional flow: %d full layout generations, %d extracted-netlist \
     verifications, converged: %b, %.2f s@."
    trad.Core.Traditional.full_layouts
    trad.Core.Traditional.extracted_simulations trad.Core.Traditional.converged
    trad.Core.Traditional.elapsed;
  List.iter
    (fun (it : Core.Traditional.iteration) ->
      Format.printf "  iteration %d: extracted GBW %.1f MHz, PM %.1f deg%s@."
        it.Core.Traditional.index
        (it.Core.Traditional.gbw /. 1e6)
        it.Core.Traditional.pm
        (if it.Core.Traditional.met then "  <- meets spec" else ""))
    trad.Core.Traditional.iterations;
  let r4 = List.nth (Lazy.force flow_results) 3 in
  Format.printf
    "layout-oriented flow: %d parasitic-mode calls + 1 generation, %.2f s \
     (paper: %d layout-tool calls before convergence)@."
    r4.Core.Flow.layout_calls r4.Core.Flow.elapsed
    Paper_data.paper_layout_calls_case4;
  Format.printf
    "first-silicon quality: layout-oriented extracted GBW %.1f MHz / PM %.1f \
     deg without any full-layout iteration@."
    (r4.Core.Flow.extracted.Comdiac.Performance.gbw /. 1e6)
    r4.Core.Flow.extracted.Comdiac.Performance.phase_margin

(* ------------------------------------------------------------------ *)
(* Figure 2 - capacitance reduction factor                              *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "Figure 2 - capacitance reduction factor F vs number of folds";
  Format.printf
    "%4s  %-22s %-22s %-22s@." "Nf" "(a) even, internal" "(b) even, external"
    "(c) odd";
  Format.printf "%4s  %-10s %-11s %-10s %-11s %-10s %-11s@." "" "formula"
    "geometry" "formula" "geometry" "formula" "geometry";
  let module F = Device.Folding in
  let geometry_f nf ~drain_internal ~drain =
    let w = 60e-6 in
    F.effective_width proc ~w { F.nf; drain_internal } ~drain /. w
  in
  for nf = 1 to 20 do
    let cell case ~drain_internal ~drain =
      let odd_case = case = F.Odd in
      if odd_case <> (nf mod 2 = 1) then None
      else Some (F.reduction_factor case nf, geometry_f nf ~drain_internal ~drain)
    in
    let a = cell F.Even_internal ~drain_internal:true ~drain:true in
    let b = cell F.Even_external ~drain_internal:true ~drain:false in
    let c = cell F.Odd ~drain_internal:true ~drain:true in
    let pp = function
      | Some (f, g) -> Printf.sprintf "%-10.4f %-11.4f" f g
      | None -> Printf.sprintf "%-10s %-11s" "-" "-"
    in
    Format.printf "%4d  %s %s %s@." nf (pp a) (pp b) (pp c)
  done;
  Format.printf
    "@.shape check: F(a) is flat at 1/2; F(b) and F(c) drop steeply over \
     the first few folds, as in the paper's Fig. 2.@."

(* ------------------------------------------------------------------ *)
(* Figure 3 - current mirror M1:M2:M3 = 1:3:6                           *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "Figure 3 - matched current mirror, ratios M1:M2:M3 = 1:3:6";
  let module Stack = Cairo_layout.Stack in
  let mk_spec current =
    {
      Stack.elements =
        [
          { Stack.el_name = "1"; units = 1; drain_net = "d1";
            current = 1.0 *. current };
          { Stack.el_name = "2"; units = 3; drain_net = "d2";
            current = 3.0 *. current };
          { Stack.el_name = "3"; units = 6; drain_net = "d3";
            current = 6.0 *. current };
        ];
      mtype = Technology.Electrical.Nmos;
      unit_w = 12e-6;
      l = 2e-6;
      source_net = "vss";
      gate = Stack.Common "bias";
      bulk_net = "vss";
      dummies = true;
    }
  in
  (* high current density, as in the paper's example *)
  let r = Stack.generate proc (mk_spec 1.0e-3) in
  Format.printf "unit placement (D = dummy): %a@." Stack.pp_placement
    r.Stack.placement;
  List.iter
    (fun name ->
      Format.printf
        "  M%s: centroid offset %.2f unit pitches, current-direction \
         imbalance %d@."
        name
        (Stack.centroid_offset r.Stack.placement name)
        (Stack.orientation_imbalance r.Stack.placement name))
    [ "1"; "2"; "3" ];
  List.iter
    (fun (name, w) ->
      Format.printf "  M%s: EM-driven drain strap width %d lambda (%.2f um)@."
        name w
        (float_of_int w *. proc.Technology.Process.lambda *. 1e6))
    r.Stack.strap_widths;
  Format.printf "  contacts per diffusion strip: %d@." r.Stack.contacts_per_strip;
  let low = Stack.generate proc (mk_spec 0.05e-3) in
  Format.printf
    "  reliability check: at 20x lower current the M3 strap shrinks from %d \
     to %d lambda@."
    (List.assoc "3" r.Stack.strap_widths)
    (List.assoc "3" low.Stack.strap_widths);
  Format.printf "@.layout (ASCII; %s):@.%s@." Cairo_layout.Render.legend
    (Cairo_layout.Render.ascii ~max_cols:110 r.Stack.cell)

(* ------------------------------------------------------------------ *)
(* Figure 4 - the folded cascode OTA schematic                          *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Figure 4 - folded cascode OTA (case 4 sizing, SPICE deck)";
  let r4 = List.nth (Lazy.force flow_results) 3 in
  let amp = r4.Core.Flow.design.Comdiac.Folded_cascode.amp in
  let circuit =
    Comdiac.Amp.add_to amp (Netlist.Circuit.create ~title:"folded cascode OTA")
  in
  Format.printf "%s@." (Netlist.Circuit.to_spice circuit);
  Format.printf "%a@." Comdiac.Folded_cascode.pp_design r4.Core.Flow.design

(* ------------------------------------------------------------------ *)
(* Figure 5 - the generated layout                                      *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "Figure 5 - generated layout of the case-4 OTA";
  let r4 = List.nth (Lazy.force flow_results) 3 in
  let report = r4.Core.Flow.report in
  let module Plan = Cairo_layout.Plan in
  Format.printf "floorplan: %d x %d lambda (%.0f x %.0f um), area %.3f mm^2@."
    report.Plan.total_w report.Plan.total_h
    (float_of_int report.Plan.total_w *. proc.Technology.Process.lambda *. 1e6)
    (float_of_int report.Plan.total_h *. proc.Technology.Process.lambda *. 1e6)
    (float_of_int (report.Plan.total_w * report.Plan.total_h)
     *. proc.Technology.Process.lambda *. proc.Technology.Process.lambda *. 1e6);
  List.iter
    (fun (name, style) ->
      Format.printf "  %-5s nf = %-2d drains %s@." name style.Device.Folding.nf
        (if style.Device.Folding.drain_internal then "internal" else "external"))
    report.Plan.device_styles;
  List.iter
    (fun (s : Plan.net_summary) ->
      if Plan.net_total s > 1e-15 then
        Format.printf "  net %-5s parasitic %s (well %s)@." s.Plan.net
          (Phys.Units.to_si_string "F" (Plan.net_total s))
          (Phys.Units.to_si_string "F" s.Plan.well_cap))
    report.Plan.nets;
  match report.Plan.cell with
  | None -> Format.printf "no cell (parasitic mode)@."
  | Some cell ->
    Format.printf "@.%s@.%s@." Cairo_layout.Render.legend
      (Cairo_layout.Render.ascii ~max_cols:110 cell)

(* ------------------------------------------------------------------ *)
(* Ablation - the design choices DESIGN.md calls out                    *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation - pair style, model kind and shape constraint";
  let run_with options =
    Core.Flow.run ~options ~proc ~kind ~spec Core.Flow.Case4
  in
  let cc = List.nth (Lazy.force flow_results) 3 in
  let inter =
    run_with
      { Core.Layout_bridge.default_options with
        Core.Layout_bridge.pair_style = Cairo_layout.Pair.Interdigitated }
  in
  Format.printf
    "pair style      : common centroid GBW %.2f MHz / interdigitated %.2f MHz \
     (extracted)@."
    (cc.Core.Flow.extracted.Comdiac.Performance.gbw /. 1e6)
    (inter.Core.Flow.extracted.Comdiac.Performance.gbw /. 1e6);
  let lvl1 = Core.Flow.run ~proc ~kind:Device.Model.Level1 ~spec Core.Flow.Case4 in
  Format.printf
    "model kind      : bsim-lite power %.2f mW / level1 power %.2f mW \
     (same spec)@."
    (cc.Core.Flow.extracted.Comdiac.Performance.power /. 1e-3)
    (lvl1.Core.Flow.extracted.Comdiac.Performance.power /. 1e-3);
  let flat =
    run_with
      { Core.Layout_bridge.default_options with
        Core.Layout_bridge.aspect = None; max_h = Some 360 }
  in
  let module Plan = Cairo_layout.Plan in
  Format.printf
    "shape constraint: aspect [0.5,2.0] -> %dx%d lambda; module stack \
     capped at 360 -> %dx%d lambda incl. routing channel (folds re-chosen \
     by the optimiser)@."
    cc.Core.Flow.report.Plan.total_w cc.Core.Flow.report.Plan.total_h
    flat.Core.Flow.report.Plan.total_w flat.Core.Flow.report.Plan.total_h;
  let nf r name =
    (List.assoc name r.Core.Flow.report.Plan.device_styles).Device.Folding.nf
  in
  Format.printf "                  TAIL folds: %d (square) vs %d (flat)@."
    (nf cc "TAIL") (nf flat "TAIL")

(* ------------------------------------------------------------------ *)
(* Timing - bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

let bechamel_run name fn =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage fn) in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun _key v ->
      match Analyze.OLS.estimates v with
      | Some [ est ] ->
        Format.printf "  %-36s %10.3f ms/run@." name (est /. 1e6)
      | Some _ | None -> Format.printf "  %-36s (no estimate)@." name)
    results

(* seq-vs-parallel wall-clock records accumulated by [timing], dumped by
   [--json FILE] *)
let timing_records : Obs.Json.t list ref = ref []

let compare_seq_par ~name ~jobs run =
  let wall f =
    (* cold-start each measurement: a warm memo cache would otherwise let
       the second (parallel) run answer from the first run's results and
       inflate the apparent speedup *)
    Cache.Memo.clear_all ();
    let t0 = Obs.Clock.monotonic_s () in
    ignore (f ());
    Obs.Clock.monotonic_s () -. t0
  in
  let seq_s = wall (fun () -> run 1) in
  let par_s = wall (fun () -> run jobs) in
  let speedup = seq_s /. Float.max 1e-9 par_s in
  Format.printf "  %-28s seq %7.2f s   par(%d jobs) %7.2f s   speedup %.2fx@."
    name seq_s jobs par_s speedup;
  timing_records :=
    Obs.Json.Obj
      [
        ("name", Obs.Json.Str name);
        (* machine-shape stamp: [--check] refuses to compare records made
           with a different core count or pool width *)
        ("cores",
         Obs.Json.Num (float_of_int (Domain.recommended_domain_count ())));
        ("jobs", Obs.Json.Num (float_of_int jobs));
        ("seq_s", Obs.Json.Num seq_s);
        ("par_s", Obs.Json.Num par_s);
        ("speedup", Obs.Json.Num speedup);
      ]
    :: !timing_records

let timing_parallel () =
  section "Timing - sequential vs parallel (domain pool)";
  let jobs = max 2 (Par.Pool.default_jobs ()) in
  Format.printf
    "pool: %d jobs (LOSAC_JOBS to override); %d core(s) recommended by the \
     runtime@."
    jobs
    (Domain.recommended_domain_count ());
  let design =
    Comdiac.Folded_cascode.size ~proc ~kind ~spec
      ~parasitics:Comdiac.Parasitics.single_fold
  in
  let amp = design.Comdiac.Folded_cascode.amp in
  compare_seq_par ~name:"monte carlo (n=200)" ~jobs (fun j ->
    Comdiac.Montecarlo.run ~n:200 ~ctx:(Core.Ctx.make ~jobs:j proc) ~kind
      ~spec amp);
  let temperatures =
    List.map Technology.Corner.celsius [ -40.0; 0.0; 27.0; 55.0; 85.0 ]
  in
  compare_seq_par ~name:"corner sweep (25 points)" ~jobs (fun j ->
    Comdiac.Robustness.run ~corners:Technology.Corner.all ~temperatures
      ~ctx:(Core.Ctx.make ~jobs:j proc) ~kind ~spec amp);
  compare_seq_par ~name:"flow cases (table 1)" ~jobs (fun j ->
    Core.Flow.run_all ~ctx:(Core.Ctx.make ~jobs:j proc) ~kind ~spec ());
  Format.printf
    "@.pool after warm-up: %d worker domain(s), queue depth %d@."
    (Par.Pool.num_workers ()) (Par.Pool.queue_depth ());
  Format.printf
    "determinism: the parallel runs above return bit-identical results \
     to the sequential ones (per-sample SplitMix64 streams; ordered \
     chunk reassembly).@."

(* ------------------------------------------------------------------ *)
(* Scaling - per-core efficiency sweep                                 *)
(* ------------------------------------------------------------------ *)

(* per-workload scaling records accumulated by [scaling], dumped by
   [--scaling-json FILE] *)
let scaling_records : Obs.Json.t list ref = ref []
let scaling_jobs_swept = ref 1

(* Sweep jobs = 1 .. max(2, cores) over the three timing workloads.  The
   sequential reference is the jobs=1 inline fast path; the jobs=1
   *point* is measured with the fast path disabled ([with_pool_forced])
   so the record captures the honest single-job pool overhead — the
   number the gate watches so the old 0.37x regression cannot silently
   return. *)
let scaling () =
  section "Scaling - per-core speedup sweep (jobs = 1 .. cores)";
  let cores = Domain.recommended_domain_count () in
  let max_jobs = max 2 cores in
  scaling_jobs_swept := max_jobs;
  Format.printf "sweeping jobs 1..%d on %d recommended core(s)@." max_jobs
    cores;
  let design =
    Comdiac.Folded_cascode.size ~proc ~kind ~spec
      ~parasitics:Comdiac.Parasitics.single_fold
  in
  let amp = design.Comdiac.Folded_cascode.amp in
  let temperatures =
    List.map Technology.Corner.celsius [ -40.0; 0.0; 27.0; 55.0; 85.0 ]
  in
  let workloads =
    [
      ( "monte carlo (n=200)",
        fun j ->
          ignore
            (Comdiac.Montecarlo.run ~n:200 ~ctx:(Core.Ctx.make ~jobs:j proc)
               ~kind ~spec amp) );
      ( "corner sweep (25 points)",
        fun j ->
          ignore
            (Comdiac.Robustness.run ~corners:Technology.Corner.all
               ~temperatures ~ctx:(Core.Ctx.make ~jobs:j proc) ~kind ~spec amp)
      );
      ( "flow cases (table 1)",
        fun j ->
          ignore (Core.Flow.run_all ~ctx:(Core.Ctx.make ~jobs:j proc) ~kind
                    ~spec ()) );
    ]
  in
  List.iter
    (fun (name, run) ->
      let wall f =
        (* cold caches for every measurement, as in [timing] *)
        Cache.Memo.clear_all ();
        let t0 = Obs.Clock.monotonic_s () in
        f ();
        Obs.Clock.monotonic_s () -. t0
      in
      let seq_s = wall (fun () -> run 1) in
      let forced_s =
        wall (fun () -> Par.Pool.with_pool_forced (fun () -> run 1))
      in
      let overhead = (forced_s -. seq_s) /. Float.max 1e-9 seq_s in
      Format.printf "  %-28s seq %7.2f s   jobs=1 pool overhead %+5.1f%%@."
        name seq_s (100.0 *. overhead);
      let points =
        List.init max_jobs (fun i ->
          let j = i + 1 in
          let w = if j = 1 then forced_s else wall (fun () -> run j) in
          let speedup = seq_s /. Float.max 1e-9 w in
          Format.printf "  %-28s jobs %2d  %7.2f s   speedup %.2fx@." name j w
            speedup;
          Obs.Json.Obj
            [
              ("jobs", Obs.Json.Num (float_of_int j));
              ("wall_s", Obs.Json.Num w);
              ("speedup", Obs.Json.Num speedup);
            ])
      in
      scaling_records :=
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str name);
            ("seq_s", Obs.Json.Num seq_s);
            ("jobs1_pool_overhead_frac", Obs.Json.Num overhead);
            ("points", Obs.Json.Arr points);
          ]
        :: !scaling_records)
    workloads

let scaling_doc () =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "losac.bench.scaling/1");
      (* machine-shape stamp: [--check] refuses cross-machine comparison *)
      ("cores",
       Obs.Json.Num (float_of_int (Domain.recommended_domain_count ())));
      ("jobs", Obs.Json.Num (float_of_int !scaling_jobs_swept));
      ("experiments", Obs.Json.Arr (List.rev !scaling_records));
    ]

(* folded-cascode OTA testbench shared by [timing] and [kernels]: the
   sized amplifier under its intended bias, with supply and differential
   AC inputs *)
let solver_testbench () =
  let design =
    Comdiac.Folded_cascode.size ~proc ~kind ~spec
      ~parasitics:Comdiac.Parasitics.single_fold
  in
  let amp = design.Comdiac.Folded_cascode.amp in
  let circuit =
    let c = Netlist.Circuit.create ~title:"tb" in
    let c = Comdiac.Amp.add_to amp c in
    let c =
      Netlist.Circuit.add_vsource c ~name:"dd" ~p:"vdd" ~n:"0"
        (Netlist.Element.dc_source spec.Comdiac.Spec.vdd)
    in
    let vcm = Comdiac.Spec.input_common_mode spec in
    let c =
      Netlist.Circuit.add_vsource c ~name:"ip" ~p:"inp" ~n:"0"
        (Netlist.Element.ac_source ~dc:vcm 0.5)
    in
    Netlist.Circuit.add_vsource c ~name:"in" ~p:"inn" ~n:"0"
      (Netlist.Element.ac_source ~dc:vcm (-0.5))
  in
  let guess =
    Comdiac.Amp.guess_fn amp ~extra:[ ("vdd", spec.Comdiac.Spec.vdd) ]
  in
  (design, circuit, guess)

let timing () =
  section "Timing - tool performance (paper bound: sizing < 2 minutes)";
  let design, bench_circuit, guess = solver_testbench () in
  let dc = Sim.Dcop.solve ~guess ~proc ~kind bench_circuit in
  let net = Sim.Acs.prepare dc in
  (* micro-benchmarks run with the memo caches off so they keep measuring
     the cost of the actual computation; the caches get their own [cache]
     experiment *)
  Cache.Config.with_enabled false @@ fun () ->
  bechamel_run "COMDIAC sizing (one pass)" (fun () ->
    Comdiac.Folded_cascode.size ~proc ~kind ~spec
      ~parasitics:Comdiac.Parasitics.single_fold);
  bechamel_run "CAIRO parasitic-calculation call" (fun () ->
    Core.Layout_bridge.call_layout ~mode:Cairo_layout.Plan.Parasitic_only proc
      design Core.Layout_bridge.default_options);
  bechamel_run "CAIRO generation call" (fun () ->
    Core.Layout_bridge.call_layout ~mode:Cairo_layout.Plan.Generation proc
      design Core.Layout_bridge.default_options);
  bechamel_run "DC operating point (Newton)" (fun () ->
    Sim.Dcop.solve ~guess ~proc ~kind bench_circuit);
  bechamel_run "AC solve at one frequency" (fun () ->
    Sim.Acs.transfer net ~freq:1e6 ~out:"out");
  bechamel_run "transistor motif generation" (fun () ->
    Cairo_layout.Motif.generate proc
      {
        Cairo_layout.Motif.dev =
          Device.Mos.make ~name:"m" ~mtype:Technology.Electrical.Nmos ~w:100e-6
            ~l:1.2e-6
            ~style:{ Device.Folding.nf = 8; drain_internal = true } ();
        d_net = "d"; g_net = "g"; s_net = "s"; b_net = "b"; i_drain = 1e-4;
      });
  let r4 = List.nth (Lazy.force flow_results) 3 in
  Format.printf
    "@.full case-4 synthesis (loop + generation + both verifications): %.2f s \
     -- paper bound %.0f s@."
    r4.Core.Flow.elapsed Paper_data.paper_sizing_time_bound_s;
  (* the same synthesis once more with telemetry on: where the time and
     the Newton iterations actually go (the bechamel numbers above ran
     with telemetry disabled, its default) *)
  Obs.Config.with_enabled true (fun () ->
    Obs.Trace.reset ();
    Obs.Metrics.reset ();
    let r = Core.Flow.run ~proc ~kind ~spec Core.Flow.Case4 in
    Format.printf
      "@.telemetry for one instrumented case-4 synthesis (%.2f s):@.%s"
      r.Core.Flow.elapsed
      (Obs.Reporter.metrics_table ());
    Format.printf "@.span roll-up:@.%s" (Obs.Reporter.spans_table ());
    Obs.Trace.reset ();
    Obs.Metrics.reset ());
  timing_parallel ()

(* ------------------------------------------------------------------ *)
(* Statistics - the paper's reliability verification interface          *)
(* ------------------------------------------------------------------ *)

let statistics () =
  section
    "Statistics - mismatch Monte Carlo and corner/temperature verification";
  let design =
    Comdiac.Folded_cascode.size ~proc ~kind ~spec
      ~parasitics:Comdiac.Parasitics.single_fold
  in
  let amp = design.Comdiac.Folded_cascode.amp in
  let mc = Comdiac.Montecarlo.run ~n:40 ~proc ~kind ~spec amp in
  Format.printf "%a@.@." Comdiac.Montecarlo.pp mc;
  let frozen = Comdiac.Robustness.run ~proc ~kind ~spec amp in
  Format.printf "frozen bias voltages:@.%a@.@." Comdiac.Robustness.pp frozen;
  let rebias p = Comdiac.Folded_cascode.rebias ~proc:p ~kind ~spec design in
  let tracking = Comdiac.Robustness.run ~rebias ~proc ~kind ~spec amp in
  Format.printf "tracking bias generator:@.%a@.@." Comdiac.Robustness.pp
    tracking;
  let tb = Comdiac.Testbench.make ~proc ~kind ~spec amp in
  Format.printf "PSRR %.1f dB@." (Sim.Measure.db (Comdiac.Testbench.psrr tb));
  let lo, hi = Comdiac.Testbench.common_mode_range tb in
  let slo, shi = spec.Comdiac.Spec.icmr in
  Format.printf
    "measured input common-mode range [%.2f, %.2f] V (spec [%.2f, %.2f] V;      the negative spec bound needs inputs below the rail, outside this      single-supply bench)@."
    lo hi slo shi

(* ------------------------------------------------------------------ *)
(* Cache - cold vs warm wall-clock, hit rates, bit-identity, LUT        *)
(* ------------------------------------------------------------------ *)

(* records dumped by [--cache-json FILE] (CI keeps it as BENCH_cache.json) *)
let cache_records : Obs.Json.t list ref = ref []
let lut_record : Obs.Json.t option ref = ref None

(* Warm-run hit rate of the memo registry: hits gained between two
   snapshots over lookups gained. *)
let registry_delta_hit_rate before after =
  let totals stats =
    List.fold_left
      (fun (h, l) (s : Cache.Memo.stats) ->
        (h + s.Cache.Memo.hits, l + s.Cache.Memo.hits + s.Cache.Memo.misses))
      (0, 0) stats
  in
  let h0, l0 = totals before and h1, l1 = totals after in
  if l1 = l0 then 0.0 else float_of_int (h1 - h0) /. float_of_int (l1 - l0)

let cache_workload ~name ~strip run =
  let wall f =
    let t0 = Obs.Clock.monotonic_s () in
    let v = f () in
    (v, Obs.Clock.monotonic_s () -. t0)
  in
  Cache.Memo.clear_all ();
  let cold, cold_s = wall run in
  let before_warm = Cache.Memo.registry () in
  let warm, warm_s = wall run in
  let warm_hit_rate = registry_delta_hit_rate before_warm (Cache.Memo.registry ()) in
  let uncached, uncached_s =
    Cache.Config.with_enabled false (fun () -> wall run)
  in
  let identical_warm = compare (strip cold) (strip warm) = 0 in
  let identical_nocache = compare (strip cold) (strip uncached) = 0 in
  let speedup = uncached_s /. Float.max 1e-9 warm_s in
  Format.printf
    "  %-28s cold %6.2f s   warm %6.2f s   uncached %6.2f s   warm hits \
     %5.1f%%   speedup %6.2fx   identical %b/%b@."
    name cold_s warm_s uncached_s (100.0 *. warm_hit_rate) speedup
    identical_warm identical_nocache;
  cache_records :=
    Obs.Json.Obj
      [
        ("name", Obs.Json.Str name);
        ("cold_s", Obs.Json.Num cold_s);
        ("warm_s", Obs.Json.Num warm_s);
        ("uncached_s", Obs.Json.Num uncached_s);
        ("warm_hit_rate", Obs.Json.Num warm_hit_rate);
        ("warm_speedup", Obs.Json.Num speedup);
        ("identical_warm", Obs.Json.Bool identical_warm);
        ("identical_nocache", Obs.Json.Bool identical_nocache);
      ]
    :: !cache_records

let lut_bench () =
  let dev =
    Device.Mos.make ~name:"m" ~mtype:Technology.Electrical.Nmos ~w:60e-6
      ~l:1.2e-6 ()
  in
  let biases =
    List.concat_map
      (fun vgs ->
        List.map
          (fun vds -> { Device.Model.vgs; vds; vbs = 0.0 })
          [ 0.8; 1.2; 1.65; 2.4 ])
      [ 0.9; 1.0; 1.1; 1.3; 1.6; 2.0 ]
  in
  let t0 = Obs.Clock.monotonic_s () in
  let table = Device.Lut.table proc kind Technology.Electrical.Nmos in
  let build_s = Obs.Clock.monotonic_s () -. t0 in
  let nx, ny = Cache.Lut.grid_size table in
  let p = Device.Mos.params proc dev in
  let rel a b = Float.abs (a -. b) /. Float.max 1e-30 (Float.abs b) in
  let max_err field =
    List.fold_left
      (fun acc bias ->
        let exact =
          Device.Model.evaluate_exact kind p ~w:dev.Device.Mos.w
            ~l:dev.Device.Mos.l bias
        in
        let approx = Device.Lut.eval proc kind dev bias in
        Float.max acc (rel (field approx) (field exact)))
      0.0 biases
  in
  let err_ids = max_err (fun e -> e.Device.Model.ids) in
  let err_gm = max_err (fun e -> e.Device.Model.gm) in
  let reps = 20_000 in
  let time_per_eval f =
    let t0 = Obs.Clock.monotonic_s () in
    for _ = 1 to reps do
      List.iter (fun b -> ignore (f b)) biases
    done;
    (Obs.Clock.monotonic_s () -. t0)
    /. float_of_int (reps * List.length biases) *. 1e9
  in
  let exact_ns =
    time_per_eval (fun b ->
      Device.Model.evaluate_exact kind p ~w:dev.Device.Mos.w
        ~l:dev.Device.Mos.l b)
  in
  let lut_ns = time_per_eval (fun b -> Device.Lut.eval proc kind dev b) in
  Format.printf
    "  LUT (opt-in, approximate)    %dx%d grid built in %.3f s   exact \
     %.0f ns/eval   lut %.0f ns/eval (%.1fx)   max rel err: ids %.2e  gm \
     %.2e (saturation)@."
    nx ny build_s exact_ns lut_ns
    (exact_ns /. Float.max 1e-9 lut_ns)
    err_ids err_gm;
  lut_record :=
    Some
      (Obs.Json.Obj
         [
           ("grid", Obs.Json.Arr
              [ Obs.Json.Num (float_of_int nx); Obs.Json.Num (float_of_int ny) ]);
           ("build_s", Obs.Json.Num build_s);
           ("exact_ns_per_eval", Obs.Json.Num exact_ns);
           ("lut_ns_per_eval", Obs.Json.Num lut_ns);
           ("max_rel_err_ids", Obs.Json.Num err_ids);
           ("max_rel_err_gm", Obs.Json.Num err_gm);
         ])

let cache_bench () =
  section "Cache - cold vs warm wall-clock, hit rates and bit-identity";
  let ctx = Core.Ctx.make proc in
  let design =
    Comdiac.Folded_cascode.size ~proc ~kind ~spec
      ~parasitics:Comdiac.Parasitics.single_fold
  in
  let amp = design.Comdiac.Folded_cascode.amp in
  (* identical statistics are the acceptance criterion, so strip nothing
     from the MC / corner results; flow results carry wall-clock, which
     legitimately differs between runs *)
  cache_workload ~name:"monte carlo (n=200)" ~strip:Fun.id (fun () ->
    Comdiac.Montecarlo.run ~n:200 ~ctx ~kind ~spec amp);
  let temperatures =
    List.map Technology.Corner.celsius [ -40.0; 0.0; 27.0; 55.0; 85.0 ]
  in
  cache_workload ~name:"corner sweep (25 points)" ~strip:Fun.id (fun () ->
    Comdiac.Robustness.run ~corners:Technology.Corner.all ~temperatures ~ctx
      ~kind ~spec amp);
  cache_workload ~name:"flow cases (table 1)"
    ~strip:
      (List.map (fun (r : Core.Flow.result) ->
         { r with Core.Flow.elapsed = 0.0 }))
    (fun () -> Core.Flow.run_all ~ctx ~kind ~spec ());
  lut_bench ();
  Format.printf "@.cache state after the warm runs:@.";
  List.iter
    (fun (s : Cache.Memo.stats) ->
      Format.printf
        "  %-22s %8d hits %8d misses %6d evictions  %5.1f%% hit rate  \
         %d/%d entries@."
        s.Cache.Memo.name s.Cache.Memo.hits s.Cache.Memo.misses
        s.Cache.Memo.evictions
        (100.0 *. Cache.Memo.hit_rate s)
        s.Cache.Memo.entries s.Cache.Memo.capacity)
    (Cache.Memo.registry ())

let cache_doc () =
  let registry =
    List.map
      (fun (s : Cache.Memo.stats) ->
        Obs.Json.Obj
          [
            ("name", Obs.Json.Str s.Cache.Memo.name);
            ("hits", Obs.Json.Num (float_of_int s.Cache.Memo.hits));
            ("misses", Obs.Json.Num (float_of_int s.Cache.Memo.misses));
            ("evictions", Obs.Json.Num (float_of_int s.Cache.Memo.evictions));
            ("entries", Obs.Json.Num (float_of_int s.Cache.Memo.entries));
            ("capacity", Obs.Json.Num (float_of_int s.Cache.Memo.capacity));
            ("hit_rate", Obs.Json.Num (Cache.Memo.hit_rate s));
          ])
      (Cache.Memo.registry ())
  in
  Obs.Json.Obj
    ([
       ("schema", Obs.Json.Str "losac.bench.cache/1");
       ("workloads", Obs.Json.Arr (List.rev !cache_records));
       ("caches", Obs.Json.Arr registry);
     ]
     @ match !lut_record with None -> [] | Some l -> [ ("lut", l) ])

let write_doc ~what doc path =
  Out_channel.with_open_text path (fun oc ->
    output_string oc (Obs.Json.to_string doc);
    output_char oc '\n');
  Format.printf "wrote %s records to %s@." what path

let write_cache_json path = write_doc ~what:"cache" (cache_doc ()) path

(* ------------------------------------------------------------------ *)
(* Kernels - unboxed in-place LU vs the boxed functor reference        *)
(* ------------------------------------------------------------------ *)

(* top-level sections dumped by [--kernels-json FILE] (CI keeps it as
   BENCH_kernels.json) *)
let kernel_records : (string * Obs.Json.t) list ref = ref []

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* median-of-batch-means per-call latency: the mean inside a batch keeps
   the GC work a backend's own allocation causes (a real, recurring cost);
   the median across batches discards one-off scheduler interference *)
let time_per ?(batches = 5) ~reps f =
  ignore (f ());
  let means =
    Array.init batches (fun _ ->
      let t0 = Obs.Clock.monotonic_s () in
      for _ = 1 to reps do
        ignore (f ())
      done;
      (Obs.Clock.monotonic_s () -. t0) /. float_of_int reps)
  in
  Array.sort compare means;
  means.(batches / 2)

let minor_words_per ~reps f =
  ignore (f ());
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Gc.minor_words () -. w0) /. float_of_int reps

let kernels_lu () =
  Format.printf "raw LU factor+solve, random diagonally dominant systems:@.";
  let module R = Linalg.Real in
  let module Df = Linalg.Dense_f in
  let recs =
    List.map
      (fun n ->
        let st = Random.State.make [| 0xC0FFEE; n |] in
        let rnd () = Random.State.float st 2.0 -. 1.0 in
        let rows =
          Array.init n (fun i ->
            Array.init n (fun j ->
              rnd () +. if i = j then float_of_int n else 0.0))
        in
        let b = Array.init n (fun _ -> rnd ()) in
        let boxed = R.of_arrays (Array.map Array.copy rows) in
        let template = Df.of_arrays rows in
        let ws = Linalg.Ws.real n in
        let kernel_solve () =
          Df.blit ~src:template ~dst:ws.Linalg.Ws.jac;
          Array.blit b 0 ws.Linalg.Ws.rhs 0 n;
          Df.lu_factor_in_place ws.Linalg.Ws.jac ~piv:ws.Linalg.Ws.piv;
          Df.lu_solve_into ws.Linalg.Ws.jac ~piv:ws.Linalg.Ws.piv
            ~b:ws.Linalg.Ws.rhs ~x:ws.Linalg.Ws.delta
        in
        let functor_solve () = R.solve boxed b in
        let xf = functor_solve () in
        kernel_solve ();
        let identical = ref true in
        for i = 0 to n - 1 do
          if not (bits_eq xf.(i) ws.Linalg.Ws.delta.(i)) then identical := false
        done;
        let reps = max 500 (2_000_000 / (n * n)) in
        let kernel_s = time_per ~reps kernel_solve in
        let functor_s = time_per ~reps functor_solve in
        let kernel_w = minor_words_per ~reps kernel_solve in
        let functor_w = minor_words_per ~reps functor_solve in
        let speedup = functor_s /. Float.max 1e-12 kernel_s in
        Format.printf
          "  n=%-3d functor %8.2f us/solve  kernel %8.2f us/solve  speedup \
           %6.2fx   alloc %8.0f -> %3.0f words/solve   identical %b@."
          n (functor_s *. 1e6) (kernel_s *. 1e6) speedup functor_w kernel_w
          !identical;
        Obs.Json.Obj
          [
            ("n", Obs.Json.Num (float_of_int n));
            ("functor_s_per_solve", Obs.Json.Num functor_s);
            ("kernel_s_per_solve", Obs.Json.Num kernel_s);
            ("speedup", Obs.Json.Num speedup);
            ("functor_words_per_solve", Obs.Json.Num functor_w);
            ("kernel_words_per_solve", Obs.Json.Num kernel_w);
            ("identical_bits", Obs.Json.Bool !identical);
          ])
      [ 8; 16; 32; 64 ]
  in
  kernel_records := ("lu", Obs.Json.Arr recs) :: !kernel_records

let kernels_sim () =
  let _, bench_circuit, guess = solver_testbench () in
  let solve backend () =
    Sim.Dcop.solve ~backend ~guess ~proc ~kind bench_circuit
  in
  let dc_k = solve Sim.Stamps.Kernel () in
  let dc_r = solve Sim.Stamps.Reference () in
  let nodes = Sim.Indexing.node_names (Sim.Dcop.indexing dc_k) in
  let dc_identical =
    Sim.Dcop.iterations dc_k = Sim.Dcop.iterations dc_r
    && Array.for_all
         (fun nd ->
           bits_eq (Sim.Dcop.voltage dc_k nd) (Sim.Dcop.voltage dc_r nd))
         nodes
  in
  let reps = 100 in
  let kernel_s = time_per ~reps (solve Sim.Stamps.Kernel) in
  let ref_s = time_per ~reps (solve Sim.Stamps.Reference) in
  let kernel_w = minor_words_per ~reps:5 (solve Sim.Stamps.Kernel) in
  let ref_w = minor_words_per ~reps:5 (solve Sim.Stamps.Reference) in
  let dc_speedup = ref_s /. Float.max 1e-12 kernel_s in
  Format.printf
    "@.full Newton DC operating point (folded-cascode OTA, %d unknowns, %d \
     iterations):@.  functor %8.2f ms  kernel %8.2f ms  speedup %.2fx   \
     alloc %.2e -> %.2e words/solve   identical %b@."
    (Array.length nodes)
    (Sim.Dcop.iterations dc_k)
    (ref_s *. 1e3) (kernel_s *. 1e3) dc_speedup ref_w kernel_w dc_identical;
  kernel_records :=
    ( "dcop",
      Obs.Json.Obj
        [
          ("unknowns", Obs.Json.Num (float_of_int (Array.length nodes)));
          ("newton_iterations",
           Obs.Json.Num (float_of_int (Sim.Dcop.iterations dc_k)));
          ("functor_s_per_solve", Obs.Json.Num ref_s);
          ("kernel_s_per_solve", Obs.Json.Num kernel_s);
          ("speedup", Obs.Json.Num dc_speedup);
          ("functor_words_per_solve", Obs.Json.Num ref_w);
          ("kernel_words_per_solve", Obs.Json.Num kernel_w);
          ("identical_bits", Obs.Json.Bool dc_identical);
        ] )
    :: !kernel_records;
  let net = Sim.Acs.prepare dc_k in
  let freqs =
    (* 50 log-spaced points, 1 Hz .. 10 GHz *)
    Array.init 50 (fun i -> 10.0 ** (float_of_int i *. (10.0 /. 49.0)))
  in
  let sweep backend () =
    Array.map
      (fun freq -> Sim.Acs.transfer ~backend net ~freq ~out:"out")
      freqs
  in
  let sweep_k = sweep Sim.Stamps.Kernel () in
  let sweep_r = sweep Sim.Stamps.Reference () in
  let ac_identical =
    Array.for_all2
      (fun (a : Complex.t) (b : Complex.t) ->
        bits_eq a.Complex.re b.Complex.re && bits_eq a.Complex.im b.Complex.im)
      sweep_k sweep_r
  in
  let reps = 40 in
  let kernel_s = time_per ~reps (sweep Sim.Stamps.Kernel) in
  let ref_s = time_per ~reps (sweep Sim.Stamps.Reference) in
  let kernel_w = minor_words_per ~reps:10 (sweep Sim.Stamps.Kernel) in
  let ref_w = minor_words_per ~reps:10 (sweep Sim.Stamps.Reference) in
  let ac_speedup = ref_s /. Float.max 1e-12 kernel_s in
  Format.printf
    "@.50-point AC sweep (1 Hz - 10 GHz, same OTA):@.  functor %8.2f ms  \
     kernel %8.2f ms  speedup %.2fx   alloc %.2e -> %.2e words/sweep   \
     identical %b@."
    (ref_s *. 1e3) (kernel_s *. 1e3) ac_speedup ref_w kernel_w ac_identical;
  kernel_records :=
    ( "ac_sweep",
      Obs.Json.Obj
        [
          ("points", Obs.Json.Num (float_of_int (Array.length freqs)));
          ("functor_s_per_sweep", Obs.Json.Num ref_s);
          ("kernel_s_per_sweep", Obs.Json.Num kernel_s);
          ("speedup", Obs.Json.Num ac_speedup);
          ("functor_words_per_sweep", Obs.Json.Num ref_w);
          ("kernel_words_per_sweep", Obs.Json.Num kernel_w);
          ("identical_bits", Obs.Json.Bool ac_identical);
        ] )
    :: !kernel_records

let kernels () =
  section "Kernels - unboxed in-place LU vs boxed functor reference";
  (* caches off: repeated identical solves must measure the solver, not
     the memo layer (which gets its own [cache] experiment) *)
  Cache.Config.with_enabled false @@ fun () ->
  kernels_lu ();
  kernels_sim ();
  Format.printf
    "@.bit-identity here is exact (Int64.bits_of_float); the kernel path is \
     the default backend everywhere, the functor remains as reference.@."

let kernels_doc () =
  Obs.Json.Obj
    (("schema", Obs.Json.Str "losac.bench.kernels/1")
     :: List.rev !kernel_records)

let write_kernels_json path = write_doc ~what:"kernel" (kernels_doc ()) path

(* ------------------------------------------------------------------ *)
(* Sparse - CSR symbolic/numeric split vs the dense kernel             *)
(* ------------------------------------------------------------------ *)

(* top-level sections dumped by [--sparse-json FILE] (CI keeps it as
   BENCH_sparse.json) *)
let sparse_records : (string * Obs.Json.t) list ref = ref []

(* RC ladder: [sections] series resistors with a shunt capacitor per
   internal node, driven by a voltage source — the canonical banded
   workload (unknowns = sections + 2) *)
let rc_ladder sections =
  let node i = Printf.sprintf "s%d" i in
  let c = Netlist.Circuit.create ~title:"rc ladder" in
  let c =
    Netlist.Circuit.add_vsource c ~name:"in" ~p:(node 0) ~n:"0"
      (Netlist.Element.dc_source 1.0)
  in
  let rec go c i =
    if i >= sections then c
    else
      let c =
        Netlist.Circuit.add_resistor c ~name:(Printf.sprintf "r%d" i)
          ~p:(node i) ~n:(node (i + 1)) ~r:1e3
      in
      let c =
        Netlist.Circuit.add_capacitor c ~name:(Printf.sprintf "c%d" i)
          ~p:(node (i + 1)) ~n:"0" ~c:1e-12
      in
      go c (i + 1)
  in
  (go c 0, fun (_ : string) -> Some 1.0)

(* [copies] independent instances of the folded-cascode testbench, nodes
   and names suffixed per copy — the "many cells on one die" workload
   whose Jacobian is block-diagonal with dense 14-unknown blocks *)
let ota_array (base, base_guess) copies =
  let module El = Netlist.Element in
  let remap sfx el =
    let rn n = if n = El.ground then n else n ^ "." ^ sfx in
    match el with
    | El.Resistor { name; p; n; r } ->
      El.Resistor { name = name ^ "." ^ sfx; p = rn p; n = rn n; r }
    | El.Capacitor { name; p; n; c } ->
      El.Capacitor { name = name ^ "." ^ sfx; p = rn p; n = rn n; c }
    | El.Isource { name; p; n; i } ->
      El.Isource { name = name ^ "." ^ sfx; p = rn p; n = rn n; i }
    | El.Vsource { name; p; n; v } ->
      El.Vsource { name = name ^ "." ^ sfx; p = rn p; n = rn n; v }
    | El.Mos { dev; d; g; s; b } ->
      El.Mos
        {
          dev = { dev with Device.Mos.name = dev.Device.Mos.name ^ "." ^ sfx };
          d = rn d;
          g = rn g;
          s = rn s;
          b = rn b;
        }
  in
  let c = ref (Netlist.Circuit.create ~title:"ota array") in
  for k = 1 to copies do
    let sfx = string_of_int k in
    List.iter
      (fun el -> c := Netlist.Circuit.add !c (remap sfx el))
      (Netlist.Circuit.elements base)
  done;
  let guess name =
    match String.rindex_opt name '.' with
    | Some i -> base_guess (String.sub name 0 i)
    | None -> None
  in
  (!c, guess)

let time_once f =
  let t0 = Obs.Clock.monotonic_s () in
  let v = f () in
  (v, Obs.Clock.monotonic_s () -. t0)

(* One workload size: stamp the DC Jacobian at the intended bias once
   into the dense workspace and the CSR slot array, then compare a dense
   blit+factor+solve against a sparse refactor+solve over the frozen
   symbolic analysis (reported separately, as its cost amortises over a
   whole Newton/transient/AC run). *)
let sparse_point ~label circuit guess =
  let idx = Sim.Indexing.build circuit in
  let n = Sim.Indexing.size idx in
  let prog = Sim.Stamps.compile proc idx circuit in
  let x = Array.make n 0.0 in
  Array.iteri
    (fun i nm -> match guess nm with Some v -> x.(i) <- v | None -> ())
    (Sim.Indexing.node_names idx);
  let ws = Linalg.Ws.real n in
  let dctx = Sim.Stamps.make_ws idx ws x in
  Sim.Stamps.run kind prog dctx ~gmin:1e-12 ~alpha:1.0;
  let template = Linalg.Dense_f.create n n in
  Linalg.Dense_f.blit ~src:ws.Linalg.Ws.jac ~dst:template;
  let pat = Sim.Stamps.dc_pattern idx prog in
  let sp = Sim.Stamps.compile_slots pat idx prog in
  let sm = Sim.Stamps.smat_of_pattern pat in
  let sctx =
    Sim.Stamps.make_sparse idx sm ~f:(Linalg.Ws.sparse_real n).Linalg.Ws.srhs x
  in
  Sim.Stamps.run_sparse kind sp sctx ~gmin:1e-12 ~alpha:1.0;
  (* symbolic analyses: the first build is the real (uncached) cost *)
  let sym_md, symbolic_s =
    time_once (fun () ->
      Linalg.Sparse.symbolic Linalg.Sparse.Min_degree pat)
  in
  let sym_nat, _ =
    time_once (fun () -> Linalg.Sparse.symbolic Linalg.Sparse.Natural pat)
  in
  let fact_md = Linalg.Sparse.Real.create sym_md in
  let fact_nat = Linalg.Sparse.Real.create sym_nat in
  let b = Array.init n (fun i -> Float.cos (float_of_int (i + 1))) in
  let xs = Array.make n 0.0 and xn = Array.make n 0.0 in
  let dense_solve () =
    Linalg.Dense_f.blit ~src:template ~dst:ws.Linalg.Ws.jac;
    Array.blit b 0 ws.Linalg.Ws.rhs 0 n;
    Linalg.Dense_f.lu_factor_in_place ws.Linalg.Ws.jac ~piv:ws.Linalg.Ws.piv;
    Linalg.Dense_f.lu_solve_into ws.Linalg.Ws.jac ~piv:ws.Linalg.Ws.piv
      ~b:ws.Linalg.Ws.rhs ~x:ws.Linalg.Ws.delta
  in
  let sparse_solve () =
    Linalg.Sparse.Real.refactor fact_md ~vals:sm.Sim.Stamps.svals;
    Linalg.Sparse.Real.solve_into fact_md ~b ~x:xs
  in
  let natural_solve () =
    Linalg.Sparse.Real.refactor fact_nat ~vals:sm.Sim.Stamps.svals;
    Linalg.Sparse.Real.solve_into fact_nat ~b ~x:xn
  in
  dense_solve ();
  natural_solve ();
  let identical = ref true in
  for i = 0 to n - 1 do
    if not (bits_eq ws.Linalg.Ws.delta.(i) xn.(i)) then identical := false
  done;
  let fill_md = Linalg.Sparse.fill_nnz sym_md in
  (* pick reps so one timing batch costs ~20 ms whatever the solver *)
  let calibrated f =
    let _, once = time_once f in
    max 2 (min 20_000 (int_of_float (0.02 /. Float.max 1e-7 once)))
  in
  let reps_d = calibrated dense_solve in
  let dense_s = time_per ~reps:reps_d dense_solve in
  let md_s = time_per ~reps:(calibrated sparse_solve) sparse_solve in
  let nat_s = time_per ~reps:(calibrated natural_solve) natural_solve in
  let dense_w = minor_words_per ~reps:reps_d dense_solve in
  let md_w = minor_words_per ~reps:(calibrated sparse_solve) sparse_solve in
  let speedup = dense_s /. Float.max 1e-12 md_s in
  Format.printf
    "  %-10s n=%-5d nnz %6d fill %6d  dense %9.2f us  sparse %8.2f us \
     (natural %8.2f us)  speedup %6.2fx  symbolic %7.1f us  alloc %6.0f -> \
     %3.0f words  identical %b@."
    label n (Linalg.Sparse.nnz pat) fill_md (dense_s *. 1e6) (md_s *. 1e6)
    (nat_s *. 1e6) speedup (symbolic_s *. 1e6) dense_w md_w !identical;
  ( speedup >= 1.0,
    !identical,
    Obs.Json.Obj
      [
        ("n", Obs.Json.Num (float_of_int n));
        ("nnz", Obs.Json.Num (float_of_int (Linalg.Sparse.nnz pat)));
        ("fill_nnz", Obs.Json.Num (float_of_int fill_md));
        ("dense_s_per_solve", Obs.Json.Num dense_s);
        ("sparse_s_per_solve", Obs.Json.Num md_s);
        ("sparse_natural_s_per_solve", Obs.Json.Num nat_s);
        ("symbolic_s", Obs.Json.Num symbolic_s);
        ("speedup", Obs.Json.Num speedup);
        ("dense_words_per_solve", Obs.Json.Num dense_w);
        ("sparse_words_per_solve", Obs.Json.Num md_w);
        ("natural_identical_bits", Obs.Json.Bool !identical);
      ] )

let sparse_sizes = [ 16; 64; 256; 1024 ]

let sparse_workload ~label make =
  Format.printf "@.%s:@." label;
  let recs =
    List.map
      (fun target ->
        let circuit, guess = make target in
        sparse_point ~label circuit guess)
      sparse_sizes
  in
  let crossover =
    List.fold_left2
      (fun acc target (wins, _, _) ->
        match acc with Some _ -> acc | None -> if wins then Some target else None)
      None sparse_sizes recs
  in
  (match crossover with
   | Some t -> Format.printf "  -> sparse beats dense from n ~ %d up@." t
   | None -> Format.printf "  -> dense still ahead at every measured size@.");
  let all_identical = List.for_all (fun (_, ok, _) -> ok) recs in
  if not all_identical then
    failwith (label ^ ": sparse-natural diverged from the dense kernel");
  sparse_records :=
    ( label,
      Obs.Json.Obj
        [
          ("points", Obs.Json.Arr (List.map (fun (_, _, j) -> j) recs));
          ("crossover_n",
           match crossover with
           | Some t -> Obs.Json.Num (float_of_int t)
           | None -> Obs.Json.Null);
        ] )
    :: !sparse_records

let strip_flow_elapsed (r : Core.Flow.result) =
  { r with Core.Flow.elapsed = 0.0 }

(* The headline identity claim: the whole Table-1 flow (sizing, layout
   loop, full performance extraction) under [Sparse Natural] returns the
   same results as under the dense kernel, field for field.  Caches off so
   the second run cannot answer from the first run's memos. *)
let sparse_flow_identity () =
  let flow_under backend =
    Sim.Stamps.with_default_backend backend @@ fun () ->
    Cache.Config.with_enabled false @@ fun () ->
    List.map strip_flow_elapsed (Core.Flow.run_all ~proc ~kind ~spec ())
  in
  let k, kernel_s = time_once (fun () -> flow_under Sim.Stamps.Kernel) in
  let s, sparse_s =
    time_once (fun () ->
      flow_under (Sim.Stamps.Sparse Linalg.Sparse.Min_degree))
  in
  let nat =
    flow_under (Sim.Stamps.Sparse Linalg.Sparse.Natural)
  in
  let identical = compare k nat = 0 in
  Format.printf
    "@.full Table-1 flow (4 cases): kernel %.1f s, sparse %.1f s; \
     sparse-natural identical to kernel: %b@."
    kernel_s sparse_s identical;
  ignore s;
  if not identical then
    failwith "table-1 flow: sparse-natural diverged from the dense kernel";
  sparse_records :=
    ( "flow",
      Obs.Json.Obj
        [
          ("kernel_s", Obs.Json.Num kernel_s);
          ("sparse_s", Obs.Json.Num sparse_s);
          ("natural_identical", Obs.Json.Bool identical);
        ] )
    :: !sparse_records

let sparse_bench () =
  section
    "Sparse - CSR LU (symbolic/numeric split) vs dense kernel, \
     refactor+solve per iterate";
  (* caches off: repeated identical solves must measure the solver *)
  (Cache.Config.with_enabled false @@ fun () ->
   let tb = lazy (let _, c, g = solver_testbench () in (c, g)) in
   sparse_workload ~label:"rc-ladder" (fun n -> rc_ladder (max 1 (n - 2)));
   (* one testbench copy is 21 MNA unknowns (14 nodes + 7 source rows) *)
   sparse_workload ~label:"ota-array" (fun n ->
     ota_array (Lazy.force tb) (max 1 (n / 21))));
  sparse_flow_identity ();
  Format.printf
    "@.symbolic analysis runs once per circuit structure and is reported \
     separately: every Newton iterate, transient step and AC point pays \
     only the numeric refactor.@."

let sparse_doc () =
  Obs.Json.Obj
    (("schema", Obs.Json.Str "losac.bench.sparse/1")
     :: List.rev !sparse_records)

let write_sparse_json path = write_doc ~what:"sparse" (sparse_doc ()) path

(* ------------------------------------------------------------------ *)
(* Serve - job-daemon load test                                        *)
(* ------------------------------------------------------------------ *)

(* top-level records dumped by [--serve-json FILE] (CI keeps it as
   BENCH_server.json) *)
let serve_records : Obs.Json.t list ref = ref []
let serve_clients = ref 8
let serve_requests = ref 1000
let serve_socket : string option ref = ref None

(* A realistic request mix: mostly cheap probes, a sizing-heavy Monte
   Carlo or corner job every 16th request.  Seven distinct MC seeds so
   the shared comdiac.mc_sample memo warms up across *different*
   clients — the whole point of a long-running daemon. *)
let serve_mixed_workload i =
  match i mod 32 with
  | 0 -> Serve.Protocol.Mc { n = 2; seed = i mod 7 }
  | 16 -> Serve.Protocol.Corners
  | 8 | 24 -> Serve.Protocol.Sleep { seconds = 0.001 }
  | k when k mod 3 = 0 -> Serve.Protocol.Ping
  | k when k mod 3 = 1 -> Serve.Protocol.Tech
  | _ -> Serve.Protocol.Stats

let serve_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let serve_bench () =
  section "Serve - daemon load test (losac.job/1 over a Unix socket)";
  let in_process = !serve_socket = None in
  let path =
    match !serve_socket with
    | Some p -> p
    | None ->
      let p = Filename.temp_file "losac-bench" ".sock" in
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      p
  in
  let server =
    if in_process then
      Some
        (Serve.Server.start
           { Serve.Server.default_config with
             socket_path = Some path;
             queue_limit = 4096 })
    else None
  in
  (* Cold vs warm flow job: the memo caches are process-wide in the
     daemon, so the first client pays the synthesis and every later
     request is answered from the warm flow.sizing / parasitic_plan /
     mc_sample entries — with byte-identical canonical responses. *)
  if in_process then begin
    Cache.Memo.clear_all ();
    let c = Serve.Client.connect path in
    let time req =
      let t0 = Obs.Clock.monotonic_s () in
      let r = Serve.Client.call c req in
      (r, Obs.Clock.monotonic_s () -. t0)
    in
    (* same id both times: the id echoes into the response, and the
       point is that cold and warm canonical bytes are equal *)
    let req =
      Serve.Protocol.request ~id:1
        (Serve.Protocol.Synth { case = Core.Flow.Case4 })
    in
    let r1, cold_s = time req in
    let r2, warm_s = time req in
    Serve.Client.close c;
    let identical =
      String.equal (Serve.Protocol.canonical r1) (Serve.Protocol.canonical r2)
    in
    let speedup = cold_s /. warm_s in
    Format.printf
      "flow case-4 job: cold %.2f s, warm %.4f s (%.0fx; responses \
       byte-identical: %b)@."
      cold_s warm_s speedup identical;
    serve_records :=
      Obs.Json.Obj
        [
          ("experiment", Obs.Json.Str "flow_warm");
          ("cold_s", Obs.Json.Num cold_s);
          ("warm_s", Obs.Json.Num warm_s);
          ("speedup", Obs.Json.Num speedup);
          ("identical", Obs.Json.Bool identical);
        ]
      :: !serve_records
  end;
  let clients = max 1 !serve_clients in
  let per_client = max 1 (!serve_requests / clients) in
  let latencies = Array.make clients [||] in
  let failures = Atomic.make 0 in
  let t0 = Obs.Clock.monotonic_s () in
  let threads =
    List.init clients (fun k ->
      Thread.create
        (fun () ->
          let c = Serve.Client.connect path in
          let lats = Array.make per_client nan in
          for j = 0 to per_client - 1 do
            let i = (k * per_client) + j in
            let req = Serve.Protocol.request ~id:i (serve_mixed_workload i) in
            let s0 = Obs.Clock.monotonic_s () in
            (match (Serve.Client.call c req).Serve.Protocol.status with
             | Serve.Protocol.Done -> ()
             | _ -> Atomic.incr failures);
            lats.(j) <- Obs.Clock.monotonic_s () -. s0
          done;
          Serve.Client.close c;
          latencies.(k) <- lats)
        ())
  in
  List.iter Thread.join threads;
  let wall_s = Obs.Clock.monotonic_s () -. t0 in
  (match server with
   | Some s ->
     Serve.Server.stop s;
     (try Unix.unlink path with Unix.Unix_error _ -> ())
   | None -> ());
  let all = Array.concat (Array.to_list latencies) in
  Array.sort compare all;
  let total = Array.length all in
  let rps = float_of_int total /. wall_s in
  let ms q = 1e3 *. serve_quantile all q in
  Format.printf
    "%d client(s) x %d request(s): %.1f req/s over %.2f s; latency p50 \
     %.2f ms  p90 %.2f ms  p99 %.2f ms  max %.2f ms; %d failure(s)@."
    clients per_client rps wall_s (ms 0.5) (ms 0.9) (ms 0.99) (ms 1.0)
    (Atomic.get failures);
  serve_records :=
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.Str "mixed_load");
        ("clients", Obs.Json.Num (float_of_int clients));
        ("requests", Obs.Json.Num (float_of_int total));
        ("wall_s", Obs.Json.Num wall_s);
        ("throughput_rps", Obs.Json.Num rps);
        ("p50_ms", Obs.Json.Num (ms 0.5));
        ("p90_ms", Obs.Json.Num (ms 0.9));
        ("p99_ms", Obs.Json.Num (ms 0.99));
        ("max_ms", Obs.Json.Num (ms 1.0));
        ("failures", Obs.Json.Num (float_of_int (Atomic.get failures)));
      ]
    :: !serve_records;
  (* Executor sweep: the same daemon, 1 vs 2 vs 4 executor domains,
     under a mixed load whose requests pin pairwise-conflicting context
     flags (cache on/off x backend kernel/sparse-natural) — concurrent
     jobs with contradictory switches are exactly what the context-local
     bindings must isolate.  Every other request is a short sleep so
     executor overlap shows even on a single-core box: a sleeping job
     parks its executor domain while another executes compute. *)
  if in_process then begin
    let conflict_request i =
      let workload =
        if i mod 2 = 0 then Serve.Protocol.Sleep { seconds = 0.02 }
        else
          match i mod 8 with
          | 1 | 5 -> Serve.Protocol.Mc { n = 2; seed = i mod 7 }
          | 3 -> Serve.Protocol.Tech
          | _ -> Serve.Protocol.Ping
      in
      let backend =
        if i mod 2 = 0 then Sim.Stamps.Kernel
        else Sim.Stamps.Sparse Linalg.Sparse.Natural
      in
      (* conflicting cache flags ride on the cheap workloads so the
         sweep measures executor overlap, not cold recomputation *)
      let cache = i mod 4 < 2 in
      Serve.Protocol.request ~id:i ~cache ~backend workload
    in
    (* warm the process-wide memos once so the 1-executor baseline is
       not charged for cold synthesis the later sweep points skip *)
    for s = 0 to 6 do
      ignore
        (Serve.Api.execute
           (Serve.Protocol.request (Serve.Protocol.Mc { n = 2; seed = s })))
    done;
    ignore (Serve.Api.execute (Serve.Protocol.request Serve.Protocol.Corners));
    let clients = 4 and per_client = 16 in
    let measure n_exec =
      let path = Filename.temp_file "losac-bench-ex" ".sock" in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let server =
        Serve.Server.start
          { Serve.Server.default_config with
            socket_path = Some path;
            queue_limit = 4096;
            executors = n_exec }
      in
      let latencies = Array.make clients [||] in
      let failures = Atomic.make 0 in
      let t0 = Obs.Clock.monotonic_s () in
      let threads =
        List.init clients (fun k ->
          Thread.create
            (fun () ->
              let c = Serve.Client.connect path in
              let lats = Array.make per_client nan in
              for j = 0 to per_client - 1 do
                let i = (k * per_client) + j in
                let s0 = Obs.Clock.monotonic_s () in
                (match
                   (Serve.Client.call c (conflict_request i))
                     .Serve.Protocol.status
                 with
                 | Serve.Protocol.Done -> ()
                 | _ -> Atomic.incr failures);
                lats.(j) <- Obs.Clock.monotonic_s () -. s0
              done;
              Serve.Client.close c;
              latencies.(k) <- lats)
            ())
      in
      List.iter Thread.join threads;
      let wall_s = Obs.Clock.monotonic_s () -. t0 in
      Serve.Server.stop server;
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let all = Array.concat (Array.to_list latencies) in
      Array.sort compare all;
      (wall_s, all, Atomic.get failures)
    in
    let base_rps = ref nan in
    List.iter
      (fun n_exec ->
        let wall_s, all, fails = measure n_exec in
        let total = Array.length all in
        let rps = float_of_int total /. wall_s in
        if n_exec = 1 then base_rps := rps;
        let speedup = rps /. !base_rps in
        let ms q = 1e3 *. serve_quantile all q in
        Format.printf
          "executors=%d: %d conflicting-ctx request(s) in %.2f s — %.1f \
           req/s (%.2fx vs 1 executor); p50 %.2f ms  p99 %.2f ms; %d \
           failure(s)@."
          n_exec total wall_s rps speedup (ms 0.5) (ms 0.99) fails;
        serve_records :=
          Obs.Json.Obj
            [
              ("experiment", Obs.Json.Str "executor_sweep");
              ("executors", Obs.Json.Num (float_of_int n_exec));
              ("clients", Obs.Json.Num (float_of_int clients));
              ("requests", Obs.Json.Num (float_of_int total));
              ("wall_s", Obs.Json.Num wall_s);
              ("throughput_rps", Obs.Json.Num rps);
              ("speedup_vs_1", Obs.Json.Num speedup);
              ("p50_ms", Obs.Json.Num (ms 0.5));
              ("p99_ms", Obs.Json.Num (ms 0.99));
              ("failures", Obs.Json.Num (float_of_int fails));
            ]
          :: !serve_records)
      [ 1; 2; 4 ]
  end

let serve_doc () =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "losac.bench.serve/1");
      ("experiments", Obs.Json.Arr (List.rev !serve_records));
    ]

let write_serve_json path = write_doc ~what:"serve" (serve_doc ()) path

(* ------------------------------------------------------------------ *)
(* Optimizer engine: LUT-tier screening vs naive exact-only search     *)

let opt_records = ref []

(* Points-evaluated/second of the optimizer's evaluation tiers, plus the
   engine-level determinism and cross-tier agreement flags the gate
   holds.  The naive baseline is what a search without the two-tier
   split must pay: the full sizing→parasitic→verify loop
   (Objective.Simulated) on every candidate it looks at.  Candidates
   that fail the sizing plan short-circuit the naive path long before
   the testbench, so the throughput contrast that matters is on the
   candidates that complete — the feasible stream is timed separately
   and carries the ≥5x acceptance flag. *)
let opt_bench () =
  section "Optimizer: LUT-tier screening vs exact-only verification";
  let module O = Opt.Objective in
  let obj = O.make ~proc ~kind ~spec () in
  let seed = 2 in
  (* tier timings: memo off so every evaluation is really computed *)
  let mixed_lut_s, mixed_naive_s, lut_s, sim_s, n_mixed, n_feas =
    Cache.Config.with_enabled false @@ fun () ->
    let st = Par.Splitmix.create ~stream:0 42 in
    let probes = List.init 400 (fun _ -> O.sample_vec st) in
    ignore (O.eval obj ~mode:O.Lut_plan (List.hd probes));  (* build grids *)
    let time_tier mode vecs =
      let t0 = Obs.Clock.monotonic_s () in
      List.iter (fun v -> ignore (O.eval obj ~mode v)) vecs;
      (Obs.Clock.monotonic_s () -. t0) /. float_of_int (List.length vecs)
    in
    let mixed_lut_s = time_tier O.Lut_plan probes in
    let mixed_naive_s = time_tier O.Simulated probes in
    let feasible =
      List.filter (fun v -> (O.eval obj ~mode:O.Exact_plan v).O.feasible)
        probes
    in
    ( mixed_lut_s, mixed_naive_s,
      time_tier O.Lut_plan feasible, time_tier O.Simulated feasible,
      List.length probes, List.length feasible )
  in
  let speedup = sim_s /. lut_s in
  let target_met = speedup >= 5.0 in
  Format.printf
    "screening tier (LUT plan): %.0f us/point mixed stream, %.0f us/point \
     feasible@."
    (1e6 *. mixed_lut_s) (1e6 *. lut_s);
  Format.printf
    "naive exact-only (simulate every candidate): %.0f us/point mixed, \
     %.0f us/point feasible@."
    (1e6 *. mixed_naive_s) (1e6 *. sim_s);
  Format.printf
    "feasible stream (%d of %d probes): %.0f vs %.0f points/s — %.1fx \
     (target >= 5x: %s)@."
    n_feas n_mixed (1.0 /. lut_s) (1.0 /. sim_s) speedup
    (if target_met then "met" else "NOT MET");
  opt_records :=
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.Str "tiers");
        ("probes", Obs.Json.Num (float_of_int n_mixed));
        ("feasible", Obs.Json.Num (float_of_int n_feas));
        ("mixed_screen_point_us", Obs.Json.Num (1e6 *. mixed_lut_s));
        ("mixed_naive_point_us", Obs.Json.Num (1e6 *. mixed_naive_s));
        ("screen_point_us", Obs.Json.Num (1e6 *. lut_s));
        ("naive_point_us", Obs.Json.Num (1e6 *. sim_s));
        ("screen_points_per_sec", Obs.Json.Num (1.0 /. lut_s));
        ("naive_points_per_sec", Obs.Json.Num (1.0 /. sim_s));
        ("lut_vs_exact_speedup", Obs.Json.Num speedup);
        ("target_5x_met", Obs.Json.Bool target_met);
      ]
    :: !opt_records;
  (* engine throughput and jobs-identity: the same optimization at
     jobs = 1 / 2 / default must return the identical result.  The memo
     is off so every run pays for every evaluation — otherwise the first
     run warms the candidate cache and the later rates measure cache
     hits, not the engine *)
  let engine ~jobs ~lut =
    Cache.Config.with_enabled false @@ fun () ->
    let ctx = Exec.Ctx.make ?jobs proc in
    Opt.Search.run ~ctx ~starts:6 ~budget:240 ~seed ~lut ~measure:false
      ~kind ~spec ()
  in
  let r1 = engine ~jobs:(Some 1) ~lut:true in
  let r2 = engine ~jobs:(Some 2) ~lut:true in
  let rn = engine ~jobs:None ~lut:true in
  let same (a : Opt.Search.result) (b : Opt.Search.result) =
    Stdlib.compare
      (a.Opt.Search.survivors, a.Opt.Search.front, a.Opt.Search.best)
      (b.Opt.Search.survivors, b.Opt.Search.front, b.Opt.Search.best)
    = 0
  in
  let jobs_identical = same r1 r2 && same r1 rn in
  Format.printf
    "engine (6 starts, 240-eval budget): %.0f / %.0f / %.0f points/s at \
     jobs 1/2/default; results identical across jobs: %b@."
    (Opt.Search.points_per_second r1)
    (Opt.Search.points_per_second r2)
    (Opt.Search.points_per_second rn)
    jobs_identical;
  opt_records :=
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.Str "engine");
        ("starts", Obs.Json.Num 6.0);
        ("budget", Obs.Json.Num 240.0);
        ("points_per_sec_jobs1",
         Obs.Json.Num (Opt.Search.points_per_second r1));
        ("points_per_sec_jobs2",
         Obs.Json.Num (Opt.Search.points_per_second r2));
        ("identical_across_jobs", Obs.Json.Bool jobs_identical);
      ]
    :: !opt_records;
  (* cross-tier agreement at equal verified quality, plus the LUT trust
     guard over the cells this run actually interpolated from *)
  let re = engine ~jobs:None ~lut:false in
  let front_identical =
    Stdlib.compare rn.Opt.Search.front re.Opt.Search.front = 0
  in
  let best_identical =
    Stdlib.compare rn.Opt.Search.best re.Opt.Search.best = 0
  in
  let trust = Device.Lut.trust_check () in
  let trust_ok = trust.Device.Lut.max_rel_err < 0.05 in
  Format.printf
    "LUT toggle at seed %d: front identical %b, best identical %b (verified \
     best %.4f vs %.4f)@."
    seed front_identical best_identical rn.Opt.Search.best.O.score
    re.Opt.Search.best.O.score;
  Format.printf
    "LUT trust guard: %d cell(s) visited, max rel err %.2e (< 5%%: %b)@."
    trust.Device.Lut.cells_visited trust.Device.Lut.max_rel_err trust_ok;
  opt_records :=
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.Str "lut_agreement");
        ("seed", Obs.Json.Num (float_of_int seed));
        ("front_identical_lut", Obs.Json.Bool front_identical);
        ("best_identical_lut", Obs.Json.Bool best_identical);
        ("best_score_lut", Obs.Json.Num rn.Opt.Search.best.O.score);
        ("best_score_exact", Obs.Json.Num re.Opt.Search.best.O.score);
        ("lut_trust_ok", Obs.Json.Bool trust_ok);
      ]
    :: !opt_records

let opt_doc () =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "losac.bench.opt/1");
      ("cores",
       Obs.Json.Num (float_of_int (Domain.recommended_domain_count ())));
      ("jobs", Obs.Json.Num (float_of_int (Par.Pool.default_jobs ())));
      ("experiments", Obs.Json.Arr (List.rev !opt_records));
    ]

let write_opt_json path = write_doc ~what:"opt" (opt_doc ()) path

let experiments =
  [
    ("table1", table1);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("ablation", ablation);
    ("statistics", statistics);
    ("timing", timing);
    ("scaling", scaling);
    ("cache", cache_bench);
    ("kernels", kernels);
    ("sparse", sparse_bench);
    ("serve", serve_bench);
    ("opt", opt_bench);
  ]

let timing_doc () =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "losac.bench.timing/1");
      ("cores",
       Obs.Json.Num (float_of_int (Domain.recommended_domain_count ())));
      ("jobs", Obs.Json.Num (float_of_int (Par.Pool.default_jobs ())));
      ("experiments", Obs.Json.Arr (List.rev !timing_records));
    ]

let write_timing_json path = write_doc ~what:"timing" (timing_doc ()) path
let write_scaling_json path = write_doc ~what:"scaling" (scaling_doc ()) path

(* --- perf-regression gate --------------------------------------------- *)

(* Every experiment that produced records is checked against its committed
   baseline; experiments that did not run this invocation are skipped, so
   [bench kernels --check] gates kernels only.  Exit status: 0 pass,
   1 regression, 2 not comparable — unless [--check-report] turns every
   outcome into a report (1-core CI runners can never match a committed
   multi-core baseline). *)
let run_check ~baselines ~report_only =
  let candidates =
    [
      ("timing", (!timing_records <> []), timing_doc);
      ("scaling", (!scaling_records <> []), scaling_doc);
      ("cache", (!cache_records <> []), cache_doc);
      ("kernels", (!kernel_records <> []), kernels_doc);
      ("sparse", (!sparse_records <> []), sparse_doc);
      ("opt", (!opt_records <> []), opt_doc);
    ]
  in
  section "Perf-regression gate";
  let worst = ref 0 in
  List.iter
    (fun (name, ran, doc) ->
      if ran then begin
        let baseline_path =
          Filename.concat baselines ("BENCH_" ^ name ^ ".json")
        in
        let fresh = doc () in
        let verdict = Bench_gate.Gate.check_file ~baseline_path fresh in
        Format.printf "  %-8s vs %s: %a@." name baseline_path
          Bench_gate.Gate.pp_verdict verdict;
        let rank =
          match verdict with
          | Bench_gate.Gate.Pass -> 0
          | Bench_gate.Gate.Regression _ -> 1
          | Bench_gate.Gate.Refusal _ -> 2
        in
        (* a regression outranks a refusal: 1 beats 2 as "worst" *)
        if rank = 1 then worst := 1
        else if rank = 2 && !worst <> 1 then worst := 2
      end)
    candidates;
  if report_only && !worst <> 0 then begin
    Format.printf
      "  (report-only mode: outcome above is informational, exiting 0)@.";
    0
  end
  else !worst

let () =
  let names = ref [] in
  let json = ref None and cache_json = ref None in
  let kernels_json = ref None and sparse_json = ref None in
  let scaling_json = ref None and serve_json = ref None in
  let opt_json = ref None in
  let check = ref false and check_report = ref false in
  let baselines = ref "bench/baselines" in
  let rec split = function
    | [] -> ()
    | "--json" :: path :: rest -> json := Some path; split rest
    | "--cache-json" :: path :: rest -> cache_json := Some path; split rest
    | "--kernels-json" :: path :: rest -> kernels_json := Some path; split rest
    | "--sparse-json" :: path :: rest -> sparse_json := Some path; split rest
    | "--scaling-json" :: path :: rest -> scaling_json := Some path; split rest
    | "--serve-json" :: path :: rest -> serve_json := Some path; split rest
    | "--opt-json" :: path :: rest -> opt_json := Some path; split rest
    | "--serve-socket" :: path :: rest -> serve_socket := Some path; split rest
    | "--serve-clients" :: n :: rest ->
      serve_clients := max 1 (int_of_string n); split rest
    | "--serve-requests" :: n :: rest ->
      serve_requests := max 1 (int_of_string n); split rest
    | "--baselines" :: dir :: rest -> baselines := dir; split rest
    | "--check" :: rest -> check := true; split rest
    | "--check-report" :: rest -> check := true; check_report := true; split rest
    | "--backend" :: name :: rest ->
      (match Sim.Stamps.backend_of_string name with
       | Ok b -> Sim.Stamps.set_default_backend b
       | Error msg ->
         prerr_endline ("bench: " ^ msg);
         exit 2);
      split rest
    | [ ("--json" | "--cache-json" | "--kernels-json" | "--sparse-json"
        | "--scaling-json" | "--serve-json" | "--opt-json" | "--serve-socket"
        | "--serve-clients" | "--serve-requests" | "--backend"
        | "--baselines") ] ->
      prerr_endline
        "bench: --json/--cache-json/--kernels-json/--sparse-json/\
         --scaling-json/--serve-json/--opt-json/--serve-socket/\
         --serve-clients/--serve-requests/--backend/--baselines need an \
         argument";
      exit 2
    | name :: rest -> names := name :: !names; split rest
  in
  split (List.tl (Array.to_list Sys.argv));
  let requested =
    if !names = [] then List.map fst experiments else List.rev !names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Format.printf "unknown experiment %s (have: %s)@." name
          (String.concat " " (List.map fst experiments)))
    requested;
  Option.iter write_timing_json !json;
  Option.iter write_scaling_json !scaling_json;
  Option.iter write_cache_json !cache_json;
  Option.iter write_kernels_json !kernels_json;
  Option.iter write_sparse_json !sparse_json;
  Option.iter write_serve_json !serve_json;
  Option.iter write_opt_json !opt_json;
  if !check then
    exit (run_check ~baselines:!baselines ~report_only:!check_report)

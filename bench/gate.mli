(** Perf-regression gate over the machine-readable bench dumps.

    [bench --check] regenerates the BENCH_*.json documents and compares
    them against the committed copies under [bench/baselines/].  Leaf
    metrics are judged by key class: time-like keys get a generous
    lower-is-better band, [speedup]/[hit_rate] a higher-is-better band,
    allocation counts a relative band plus absolute slack, [identical*]
    flags must never flip to [false], and structural values must match
    exactly.  Runs from machines with a different [cores]/[jobs] stamp
    are {e refused} rather than compared — the numbers mean nothing
    across machine shapes. *)

type tolerances = {
  time_rel : float;  (** allowed relative slowdown on time-like keys *)
  better_rel : float;  (** allowed relative drop on [speedup]/[hit_rate] *)
  alloc_rel : float;
  alloc_abs : float;  (** absolute words of slack on allocation counts *)
  overhead_abs : float;
      (** absolute slack on [*overhead*] fractions (they hover near
          zero, so relative bands are meaningless): the jobs=1 pool
          overhead may drift at most this many fractional points above
          its baseline, with negative baselines floored at zero so a
          lucky run never tightens the gate *)
}

val default_tolerances : tolerances
(** [{time_rel = 0.60; better_rel = 0.40; alloc_rel = 0.25; alloc_abs = 64.0;
     overhead_abs = 0.05}]
    — wide on purpose: shared CI runners jitter; the gate exists to catch
    cliffs, not noise. *)

type verdict =
  | Pass
  | Regression of string list  (** one message per regressed metric *)
  | Refusal of string
      (** the runs are not comparable (different machine shape, schema or
          missing baseline) — neither pass nor fail *)

val compare_docs :
  ?tol:tolerances -> baseline:Obs.Json.t -> fresh:Obs.Json.t -> unit -> verdict

val compared_count : baseline:Obs.Json.t -> fresh:Obs.Json.t -> int
(** Leaf metrics the walk actually judged — lets callers assert a
    comparison had teeth (a pass over zero metrics is meaningless). *)

val check_file : ?tol:tolerances -> baseline_path:string -> Obs.Json.t -> verdict
(** Load and parse the baseline file, then {!compare_docs}.  A missing or
    unparsable baseline is a {!Refusal}. *)

val pp_verdict : Format.formatter -> verdict -> unit

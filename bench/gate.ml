(* Perf-regression gate: compare a freshly measured BENCH_*.json document
   against a committed baseline.

   The comparison is a recursive walk over both documents.  Leaf numbers
   are judged by what their key *means*, not by exact equality:

   - time-like keys ([*_s], [*_us], [*_ms], [*_ns], [*_s_per_*],
     [*_ns_per_*]) are lower-is-better within a generous relative band —
     CI machines are noisy and the gate must only catch real cliffs;
   - [speedup*], [*hit_rate] and throughput rates ([*per_sec*]) are
     higher-is-better;
   - allocation counts ([*words_per*]) get a relative band plus a small
     absolute slack so a constant few-word change never trips the gate;
   - [identical*] booleans are the bit-identity acceptance flags: a
     [true] baseline must stay [true], full stop;
   - [cores]/[jobs] are compatibility stamps: a mismatch makes the whole
     comparison meaningless (different machine shape), so the gate
     *refuses* instead of passing or failing;
   - [crossover*] values are derived from which side of a noisy race won
     and are reported as informational only;
   - everything else (sizes, iteration counts, error bounds) is
     deterministic by construction and must match exactly.

   Arrays of records that carry ["name"] fields are matched by name, so
   reordering experiments never shows up as a regression; other arrays
   match positionally.  Metrics present only in the fresh run are fine
   (new instrumentation); metrics missing from the fresh run are
   regressions (lost coverage). *)

type tolerances = {
  time_rel : float;  (* allowed relative slowdown on time-like keys *)
  better_rel : float;  (* allowed relative drop on higher-is-better keys *)
  alloc_rel : float;
  alloc_abs : float;  (* words of absolute slack on allocation counts *)
  overhead_abs : float;  (* absolute slack on overhead fractions *)
}

let default_tolerances =
  {
    time_rel = 0.60;
    better_rel = 0.40;
    alloc_rel = 0.25;
    alloc_abs = 64.0;
    overhead_abs = 0.05;
  }

type clazz =
  | Time
  | Higher
  | Alloc
  | Bool_flag
  | Compat
  | Info
  | Exact
  | Overhead

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ends ~suffix s =
  let n = String.length suffix and m = String.length s in
  n <= m && String.sub s (m - n) n = suffix

let classify key =
  if key = "cores" || key = "jobs" then Compat
  else if contains ~sub:"crossover" key then Info
  else if contains ~sub:"overhead" key then Overhead
  else if contains ~sub:"identical" key then Bool_flag
  else if
    contains ~sub:"speedup" key || contains ~sub:"hit_rate" key
    || contains ~sub:"per_sec" key
  then Higher
  else if contains ~sub:"words_per" key then Alloc
  else if
    ends ~suffix:"_s" key || ends ~suffix:"_us" key || ends ~suffix:"_ms" key
    || ends ~suffix:"_ns" key
    || contains ~sub:"_s_per_" key
    || contains ~sub:"_ns_per_" key
  then Time
  else Exact

type verdict = Pass | Regression of string list | Refusal of string

type state = {
  mutable regressions : string list;  (* newest first *)
  mutable refusal : string option;
  mutable info : string list;
  mutable compared : int;  (* leaf metrics judged *)
}

let regress st msg = st.regressions <- msg :: st.regressions

let refuse st msg = if st.refusal = None then st.refusal <- Some msg

let pct x = 100.0 *. x

let judge st ~tol path key base fresh =
  st.compared <- st.compared + 1;
  match classify key with
  | Info -> ()
  | Compat ->
    if base <> fresh then
      refuse st
        (Printf.sprintf
           "%s: baseline ran with %s=%g, this machine has %g — runs are not \
            comparable (re-baseline on matching hardware)"
           path key base fresh)
  | Time ->
    if fresh > base *. (1.0 +. tol.time_rel) +. 1e-12 then
      regress st
        (Printf.sprintf "%s: %g -> %g (+%.0f%%, budget +%.0f%%)" path base
           fresh
           (pct ((fresh -. base) /. Float.max 1e-30 base))
           (pct tol.time_rel))
  | Higher ->
    if fresh < base *. (1.0 -. tol.better_rel) -. 1e-12 then
      regress st
        (Printf.sprintf "%s: %g -> %g (-%.0f%%, budget -%.0f%%)" path base
           fresh
           (pct ((base -. fresh) /. Float.max 1e-30 base))
           (pct tol.better_rel))
  | Alloc ->
    if fresh > (base *. (1.0 +. tol.alloc_rel)) +. tol.alloc_abs then
      regress st
        (Printf.sprintf "%s: %g -> %g words (budget +%.0f%% + %g)" path base
           fresh (pct tol.alloc_rel) tol.alloc_abs)
  | Overhead ->
    (* overhead fractions hover near zero, so a relative band is
       meaningless; allow an absolute drift instead.  A negative
       baseline (the pool path got lucky and beat sequential) is floored
       at zero so noise in the lucky direction never tightens the gate. *)
    if fresh > Float.max base 0.0 +. tol.overhead_abs then
      regress st
        (Printf.sprintf "%s: %.1f%% -> %.1f%% (budget +%.1f points)" path
           (pct base) (pct fresh) (pct tol.overhead_abs))
  | Bool_flag | Exact ->
    if base <> fresh then
      regress st (Printf.sprintf "%s: %g -> %g (must match exactly)" path base fresh)

let name_of json =
  match Obs.Json.member "name" json with
  | Some (Obs.Json.Str n) -> Some n
  | _ -> None

let rec walk st ~tol path key base fresh =
  match (base, fresh) with
  | Obs.Json.Obj bs, Obs.Json.Obj fs ->
    List.iter
      (fun (k, bv) ->
        let path' = if path = "" then k else path ^ "." ^ k in
        match List.assoc_opt k fs with
        | Some fv -> walk st ~tol path' k bv fv
        | None -> regress st (path' ^ ": missing from the fresh run"))
      bs
  | Obs.Json.Arr bs, Obs.Json.Arr fs ->
    let by_name = List.for_all (fun j -> name_of j <> None) bs && bs <> [] in
    if by_name then
      List.iter
        (fun bv ->
          let n = Option.get (name_of bv) in
          let path' = Printf.sprintf "%s[%s]" path n in
          match List.find_opt (fun fv -> name_of fv = Some n) fs with
          | Some fv -> walk st ~tol path' key bv fv
          | None -> regress st (path' ^ ": missing from the fresh run"))
        bs
    else begin
      if List.length fs < List.length bs then
        regress st
          (Printf.sprintf "%s: %d entries, baseline has %d" path
             (List.length fs) (List.length bs));
      List.iteri
        (fun i bv ->
          match List.nth_opt fs i with
          | Some fv ->
            walk st ~tol (Printf.sprintf "%s[%d]" path i) key bv fv
          | None -> ())
        bs
    end
  | Obs.Json.Num b, Obs.Json.Num f -> judge st ~tol path key b f
  | Obs.Json.Bool b, Obs.Json.Bool f ->
    st.compared <- st.compared + 1;
    (match classify key with
     | Info -> ()
     | _ ->
       (* only a good->bad flip is a regression; a flag turning true is
          an improvement *)
       if b && not f then
         regress st (path ^ ": true -> false (acceptance flag lost)"))
  | Obs.Json.Str b, Obs.Json.Str f ->
    if key = "schema" && b <> f then
      refuse st
        (Printf.sprintf "%s: schema %S vs %S — re-baseline after format \
                         changes" path b f)
    else if b <> f then
      regress st (Printf.sprintf "%s: %S -> %S" path b f)
  | Obs.Json.Null, _ | _, Obs.Json.Null ->
    if base <> fresh then
      st.info <- (path ^ ": null/value change (informational)") :: st.info
  | _ ->
    regress st (path ^ ": type changed between baseline and fresh run")

let compare_docs ?(tol = default_tolerances) ~baseline ~fresh () =
  let st = { regressions = []; refusal = None; info = []; compared = 0 } in
  walk st ~tol "" "" baseline fresh;
  match st.refusal with
  | Some msg -> Refusal msg
  | None ->
    if st.regressions = [] then Pass else Regression (List.rev st.regressions)

let compared_count ~baseline ~fresh =
  let st = { regressions = []; refusal = None; info = []; compared = 0 } in
  walk st ~tol:default_tolerances "" "" baseline fresh;
  st.compared

(* --- file-level driver ------------------------------------------------ *)

let load path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such baseline" path)
  else
    let s = In_channel.with_open_text path In_channel.input_all in
    Result.map_error (fun e -> Printf.sprintf "%s: %s" path e)
      (Obs.Json.parse s)

let check_file ?tol ~baseline_path fresh =
  match load baseline_path with
  | Error msg -> Refusal msg
  | Ok baseline -> compare_docs ?tol ~baseline ~fresh ()

let pp_verdict fmt = function
  | Pass -> Format.fprintf fmt "pass"
  | Refusal msg -> Format.fprintf fmt "not comparable: %s" msg
  | Regression msgs ->
    Format.fprintf fmt "%d regression(s):" (List.length msgs);
    List.iter (fun m -> Format.fprintf fmt "@.  - %s" m) msgs

open Helpers
module G = Cairo_layout.Geometry
module Cl = Cairo_layout.Cell
module Motif = Cairo_layout.Motif
module Shape = Cairo_layout.Shape
module Slicing = Cairo_layout.Slicing
module Stack = Cairo_layout.Stack
module Pair = Cairo_layout.Pair
module Drc = Cairo_layout.Drc
module Route = Cairo_layout.Route
module Plan = Cairo_layout.Plan
module Render = Cairo_layout.Render
module P = Technology.Process
module E = Technology.Electrical
module L = Technology.Layer
module F = Device.Folding

(* --- geometry --------------------------------------------------------- *)

let test_rect_basics () =
  let r = G.rect L.Poly ~x0:5 ~y0:1 ~x1:2 ~y1:4 in
  Alcotest.(check int) "normalised width" 3 (G.width r);
  Alcotest.(check int) "area" 9 (G.area r);
  let t = G.translate ~dx:10 ~dy:0 r in
  Alcotest.(check int) "translated x0" 12 t.G.x0

let test_spacing () =
  let a = G.rect L.Metal1 ~x0:0 ~y0:0 ~x1:4 ~y1:4 in
  let b = G.rect L.Metal1 ~x0:6 ~y0:0 ~x1:10 ~y1:4 in
  Alcotest.(check int) "gap 2" 2 (G.spacing a b);
  let c = G.rect L.Metal1 ~x0:4 ~y0:0 ~x1:8 ~y1:4 in
  Alcotest.(check int) "touching = 0" 0 (G.spacing a c);
  Alcotest.(check bool) "touching not intersecting" false (G.intersects a c);
  let d = G.rect L.Metal1 ~x0:3 ~y0:3 ~x1:5 ~y1:5 in
  Alcotest.(check bool) "overlap intersects" true (G.intersects a d)

let test_mirror () =
  let r = G.rect L.Poly ~x0:2 ~y0:0 ~x1:5 ~y1:1 in
  let m = G.mirror_x ~axis:5 r in
  Alcotest.(check int) "mirrored x0" 5 m.G.x0;
  Alcotest.(check int) "mirrored x1" 8 m.G.x1

let test_cell_ops () =
  let c =
    Cl.empty "t"
    |> fun c -> Cl.add_rect c (G.rect L.Active ~x0:2 ~y0:3 ~x1:10 ~y1:8)
    |> fun c -> Cl.add_port c ~net:"a" (G.rect L.Metal1 ~x0:4 ~y0:3 ~x1:6 ~y1:8)
  in
  let n = Cl.normalize c in
  let x0, y0, _, _ = Cl.bbox n in
  Alcotest.(check (pair int int)) "origin after normalize" (0, 0) (x0, y0);
  Alcotest.(check int) "ports preserved" 1 (List.length (Cl.ports_of_net n "a"));
  let w, h = Cl.size n in
  Alcotest.(check (pair int int)) "size" (8, 5) (w, h)

(* --- motif ------------------------------------------------------------ *)

let motif_spec ?(mtype = E.Nmos) ?(nf = 2) ?(w = 20e-6) ?(i = 100e-6) () =
  let dev =
    Device.Mos.make ~name:"m" ~mtype ~w ~l:1e-6
      ~style:{ F.nf; drain_internal = true } ()
  in
  { Motif.dev; d_net = "d"; g_net = "g"; s_net = "s"; b_net = "b"; i_drain = i }

let test_motif_ports () =
  let r = Motif.generate P.c06 (motif_spec ()) in
  List.iter
    (fun net ->
      Alcotest.(check bool) (net ^ " port present") true
        (Cl.ports_of_net r.Motif.cell net <> []))
    [ "d"; "g"; "s"; "b" ];
  (* strips are merged by the module strap: one exposed port per net *)
  Alcotest.(check int) "one drain port" 1
    (List.length (Cl.ports_of_net r.Motif.cell "d"));
  Alcotest.(check int) "one source port" 1
    (List.length (Cl.ports_of_net r.Motif.cell "s"))

let test_motif_pmos_has_well () =
  let r = Motif.generate P.c06 (motif_spec ~mtype:E.Pmos ()) in
  Alcotest.(check bool) "nwell drawn" true
    (Cl.layer_area r.Motif.cell L.Nwell > 0);
  let rn = Motif.generate P.c06 (motif_spec ~mtype:E.Nmos ()) in
  Alcotest.(check int) "no well on nmos" 0 (Cl.layer_area rn.Motif.cell L.Nwell)

let test_motif_em () =
  let low = Motif.generate P.c06 (motif_spec ~i:50e-6 ()) in
  let high = Motif.generate P.c06 (motif_spec ~i:5e-3 ()) in
  Alcotest.(check bool) "high current widens straps" true
    (high.Motif.strap_width_lambda > low.Motif.strap_width_lambda);
  Alcotest.(check bool) "low current EM clean" false low.Motif.em_violation

let test_required_widths () =
  (* 1 mA on metal1 at jmax 1000 A/m -> 1 um -> 4 lambda (ceil of 3.33) *)
  Alcotest.(check int) "EM width at 1 mA" 4
    (Motif.required_strap_width P.c06 L.Metal1 ~current:1e-3);
  Alcotest.(check int) "minimum at tiny current" 3
    (Motif.required_strap_width P.c06 L.Metal1 ~current:1e-6);
  Alcotest.(check int) "contacts at 2 mA" 4
    (Motif.required_contacts P.c06 ~current:2e-3)

let prop_motif_area_matches_folding =
  QCheck.Test.make ~name:"motif drawn diffusion equals folding model"
    ~count:60
    QCheck.(pair (int_range 1 10) (float_range 5.0 60.0))
    (fun (nf, w_um) ->
      let w = w_um *. 1e-6 in
      let spec = motif_spec ~nf ~w () in
      let r = Motif.generate P.c06 spec in
      (* the motif snaps to grid first; recompute the reference on the
         snapped device *)
      let snapped = Device.Mos.snap_to_grid P.c06 spec.Motif.dev in
      let expect = F.geometry P.c06 ~w:snapped.Device.Mos.w snapped.Device.Mos.style in
      Phys.Numerics.close ~rel:1e-9 expect.F.ad r.Motif.drawn_geom.F.ad
      && Phys.Numerics.close ~rel:1e-9 expect.F.as_ r.Motif.drawn_geom.F.as_)

let test_motif_drc_clean () =
  List.iter
    (fun nf ->
      let r = Motif.generate P.c06 (motif_spec ~nf ()) in
      let violations = Drc.check P.c06 r.Motif.cell in
      if violations <> [] then
        Alcotest.failf "nf=%d: %d DRC violations, first: %s" nf
          (List.length violations)
          (Format.asprintf "%a" Drc.pp_violation (List.hd violations)))
    [ 1; 2; 4 ]

(* --- shape functions and slicing -------------------------------------- *)

let test_shape_pareto () =
  let s = Shape.of_variants [ (10, 10); (5, 20); (20, 5); (12, 12) ] in
  Alcotest.(check bool) "pareto" true (Shape.is_pareto s);
  (* (12,12) dominated by (10,10) *)
  Alcotest.(check int) "three points survive" 3 (List.length (Shape.points s))

let test_shape_combine () =
  let a = Shape.of_variants [ (2, 8); (8, 2) ] in
  let b = Shape.of_variants [ (3, 3) ] in
  let h = Shape.combine_h a b in
  (* candidates: (5, 8) and (11, 3) *)
  Alcotest.(check int) "two h points" 2 (List.length (Shape.points h));
  let v = Shape.combine_v a b in
  (* candidates: (3, 11) and (8, 5) *)
  Alcotest.(check int) "two v points" 2 (List.length (Shape.points v));
  match Shape.best ~max_h:6 v with
  | None -> Alcotest.fail "expected a fit"
  | Some i -> Alcotest.(check int) "picks (8,5)" 5 ((Shape.points v |> Array.of_list).(i)).Shape.h

(* Oracle for the linear Stockmeyer merge: the original O(n*m) all-pairs
   cross product followed by Pareto pruning, reimplemented here verbatim.
   The merge must reproduce it structurally — points and recorded choice
   pairs alike. *)
let oracle_pareto pts =
  let sorted =
    List.sort
      (fun a b ->
        if a.Shape.w = b.Shape.w then compare a.Shape.h b.Shape.h
        else compare a.Shape.w b.Shape.w)
      pts
  in
  let rec keep acc best_h = function
    | [] -> List.rev acc
    | p :: rest ->
      if p.Shape.h < best_h then keep (p :: acc) p.Shape.h rest
      else keep acc best_h rest
  in
  Array.of_list (keep [] max_int sorted)

let oracle_cross f a b =
  let pts = ref [] in
  Array.iteri
    (fun i pa -> Array.iteri (fun j pb -> pts := f i pa j pb :: !pts) b)
    a;
  oracle_pareto !pts

let gen_variants =
  QCheck.(list_of_size Gen.(int_range 1 8) (pair (int_range 1 30) (int_range 1 30)))

let prop_shape_merge_matches_cross =
  QCheck.Test.make ~name:"shape merge equals all-pairs cross + pareto"
    ~count:300
    (QCheck.pair gen_variants gen_variants)
    (fun (va, vb) ->
      let a = Shape.of_variants va and b = Shape.of_variants vb in
      let h_ref =
        oracle_cross
          (fun i pa j pb ->
            { Shape.w = pa.Shape.w + pb.Shape.w;
              h = max pa.Shape.h pb.Shape.h;
              choice = Shape.Compose (i, j) })
          a b
      and v_ref =
        oracle_cross
          (fun i pa j pb ->
            { Shape.w = max pa.Shape.w pb.Shape.w;
              h = pa.Shape.h + pb.Shape.h;
              choice = Shape.Compose (i, j) })
          a b
      in
      Shape.combine_h a b = h_ref && Shape.combine_v a b = v_ref)

let gen_tree =
  (* random small slicing trees with random variants *)
  let open QCheck.Gen in
  let leaf_gen =
    list_size (int_range 1 3) (pair (int_range 1 30) (int_range 1 30))
    >|= fun vs -> Slicing.Leaf ((), vs)
  in
  let rec tree n =
    if n <= 1 then leaf_gen
    else
      frequency
        [
          (1, leaf_gen);
          (2, map2 (fun a b -> Slicing.H (a, b)) (tree (n / 2)) (tree (n / 2)));
          (2, map2 (fun a b -> Slicing.V (a, b)) (tree (n / 2)) (tree (n / 2)));
        ]
  in
  tree 4

let prop_stockmeyer_optimal =
  QCheck.Test.make ~name:"slicing optimiser matches brute force" ~count:150
    (QCheck.make gen_tree)
    (fun t ->
      match Slicing.optimize t with
      | None -> false
      | Some (_, (w, h)) -> w * h = Slicing.enumerate_area_brute_force t)

let prop_placements_inside_box =
  QCheck.Test.make ~name:"realised placements stay inside the bounding box"
    ~count:150 (QCheck.make gen_tree)
    (fun t ->
      match Slicing.optimize t with
      | None -> false
      | Some (ps, (w, h)) ->
        List.for_all
          (fun p ->
            p.Slicing.x >= 0 && p.Slicing.y >= 0
            && p.Slicing.x + p.Slicing.w <= w
            && p.Slicing.y + p.Slicing.h <= h)
          ps)

let test_slicing_aspect_constraint () =
  let t =
    Slicing.H
      (Slicing.Leaf ("a", [ (10, 40); (20, 20); (40, 10) ]),
       Slicing.Leaf ("b", [ (10, 40); (20, 20); (40, 10) ]))
  in
  (match Slicing.optimize ~max_h:25 t with
   | None -> Alcotest.fail "fit expected"
   | Some (ps, (_, h)) ->
     Alcotest.(check bool) "height respected" true (h <= 25);
     Alcotest.(check int) "two leaves" 2 (List.length ps));
  match Slicing.optimize ~max_h:5 t with
  | None -> ()
  | Some _ -> Alcotest.fail "impossible constraint accepted"

(* --- stacks and pairs -------------------------------------------------- *)

let mirror_spec ?(units = [ 1; 3; 6 ]) ?(current = 1e-3) () =
  {
    Stack.elements =
      List.mapi
        (fun i u ->
          { Stack.el_name = Printf.sprintf "M%d" (i + 1); units = u;
            drain_net = Printf.sprintf "d%d" (i + 1);
            current = current *. float_of_int u })
        units;
    mtype = E.Nmos;
    unit_w = 10e-6;
    l = 2e-6;
    source_net = "vss";
    gate = Stack.Common "bias";
    bulk_net = "vss";
    dummies = true;
  }

let test_interleave_conserves_units () =
  let spec = mirror_spec () in
  let p = Stack.interleave spec in
  Alcotest.(check int) "length with dummies" 12 (Array.length p);
  List.iteri
    (fun i u ->
      let name = Printf.sprintf "M%d" (i + 1) in
      let count =
        Array.to_list p
        |> List.filter (fun s -> s = Stack.Unit name)
        |> List.length
      in
      Alcotest.(check int) (name ^ " count") u count)
    [ 1; 3; 6 ]

let test_mirror_centroids () =
  let spec = mirror_spec () in
  let p = Stack.interleave spec in
  (* M3 (6 units, even) should be perfectly centred; odd-count elements at
     most half a pitch off *)
  check_close ~abs_tol:1e-9 "M3 centred" 0.0 (Stack.centroid_offset p "M3");
  Alcotest.(check bool) "M2 within 1 pitch" true
    (Stack.centroid_offset p "M2" <= 1.0);
  Alcotest.(check bool) "M1 within 1 pitch" true
    (Stack.centroid_offset p "M1" <= 1.0)

let test_mirror_orientation_balance () =
  let spec = mirror_spec () in
  let p = Stack.interleave spec in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " orientation imbalance <= 1")
        true
        (Stack.orientation_imbalance p name <= 1))
    [ "M1"; "M2"; "M3" ]

let test_mirror_generate () =
  let spec = mirror_spec () in
  let r = Stack.generate P.c06 spec in
  List.iter
    (fun (name, a) ->
      Alcotest.(check bool) (name ^ " drain area positive") true (a > 0.0))
    r.Stack.drain_areas;
  (* EM: M3 carries 6 mA; its strap must be wider than M1's (1 mA) *)
  let sw name = List.assoc name r.Stack.strap_widths in
  Alcotest.(check bool) "M3 strap wider than M1" true (sw "M3" >= sw "M1");
  Alcotest.(check bool) "gate port present" true
    (Cl.ports_of_net r.Stack.cell "bias" <> [])

let test_mirror_drc () =
  let r = Stack.generate P.c06 (mirror_spec ~current:0.2e-3 ()) in
  let violations = Drc.check P.c06 r.Stack.cell in
  if violations <> [] then
    Alcotest.failf "%d DRC violations, first: %s" (List.length violations)
      (Format.asprintf "%a" Drc.pp_violation (List.hd violations))

let pair_spec style nf =
  {
    Pair.a_name = "ma"; b_name = "mb"; mtype = E.Pmos;
    w = 40e-6; l = 1e-6; nf;
    tail_net = "tail"; a_drain = "outp"; b_drain = "outn";
    a_gate = "inp"; b_gate = "inn"; bulk_net = "vdd";
    current = 100e-6; style;
  }

let test_pair_interdigitated () =
  let r = Pair.generate P.c06 (pair_spec Pair.Interdigitated 4) in
  Alcotest.(check int) "one row" 1 (List.length r.Pair.rows);
  check_close ~rel:1e-9 "matched drain areas" r.Pair.drain_area_a
    r.Pair.drain_area_b;
  Alcotest.(check bool) "a centred within half pitch" true
    (r.Pair.metrics.Pair.centroid_offset_a <= 0.5)

let test_pair_common_centroid () =
  let r = Pair.generate P.c06 (pair_spec Pair.Common_centroid 4) in
  Alcotest.(check int) "two rows" 2 (List.length r.Pair.rows);
  check_close ~abs_tol:1e-9 "a centroid exact" 0.0
    r.Pair.metrics.Pair.centroid_offset_a;
  check_close ~abs_tol:1e-9 "b centroid exact" 0.0
    r.Pair.metrics.Pair.centroid_offset_b;
  check_close ~rel:1e-9 "matched drain areas" r.Pair.drain_area_a
    r.Pair.drain_area_b;
  Alcotest.(check bool) "pmos pair has well" true
    (Cl.layer_area r.Pair.cell L.Nwell > 0)

let test_pair_odd_cc_rejected () =
  Alcotest.check_raises "odd nf rejected"
    (Invalid_argument "Pair.generate: common centroid requires an even finger count")
    (fun () -> ignore (Pair.generate P.c06 (pair_spec Pair.Common_centroid 3)))

(* --- drc --------------------------------------------------------------- *)

let test_drc_detects_narrow_wire () =
  let c =
    Cl.add_rect (Cl.empty "bad") (G.rect L.Metal1 ~x0:0 ~y0:0 ~x1:1 ~y1:10)
  in
  Alcotest.(check bool) "narrow metal flagged" true (Drc.check P.c06 c <> [])

let test_drc_detects_close_wires () =
  let c =
    Cl.empty "bad2"
    |> fun c -> Cl.add_rect c (G.rect L.Metal1 ~x0:0 ~y0:0 ~x1:3 ~y1:10)
    |> fun c -> Cl.add_rect c (G.rect L.Metal1 ~x0:4 ~y0:0 ~x1:7 ~y1:10)
  in
  Alcotest.(check bool) "1-lambda gap flagged" true (Drc.check P.c06 c <> [])

let test_drc_allows_touching () =
  let c =
    Cl.empty "ok"
    |> fun c -> Cl.add_rect c (G.rect L.Metal1 ~x0:0 ~y0:0 ~x1:3 ~y1:10)
    |> fun c -> Cl.add_rect c (G.rect L.Metal1 ~x0:3 ~y0:0 ~x1:6 ~y1:10)
  in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Drc.rule) (Drc.check P.c06 c))

(* --- routing ------------------------------------------------------------ *)

let two_port_cell () =
  Cl.empty "mods"
  |> fun c ->
  Cl.add_port c ~net:"n1" (G.rect L.Metal1 ~x0:0 ~y0:0 ~x1:4 ~y1:10)
  |> fun c ->
  Cl.add_port c ~net:"n1" (G.rect L.Metal1 ~x0:100 ~y0:0 ~x1:104 ~y1:10)
  |> fun c ->
  Cl.add_port c ~net:"n2" (G.rect L.Metal1 ~x0:20 ~y0:0 ~x1:24 ~y1:10)
  |> fun c ->
  Cl.add_port c ~net:"n2" (G.rect L.Metal1 ~x0:80 ~y0:0 ~x1:84 ~y1:10)
  |> fun c -> Cl.add_rect c (G.rect L.Active ~x0:0 ~y0:0 ~x1:104 ~y1:10)

let test_route_basics () =
  let placed = two_port_cell () in
  let nets = [ { Route.net = "n1"; current = 1e-4 };
               { Route.net = "n2"; current = 1e-4 } ] in
  let r = Route.route P.c06 ~placed ~nets in
  Alcotest.(check int) "two wires" 2 (List.length r.Route.wires);
  List.iter
    (fun w ->
      Alcotest.(check bool) (w.Route.net ^ " has cap") true
        (w.Route.cap_ground > 0.0))
    r.Route.wires;
  (* adjacent tracks with overlapping spans couple *)
  let n1 = List.find (fun w -> w.Route.net = "n1") r.Route.wires in
  Alcotest.(check bool) "coupling to n2 present" true
    (List.mem_assoc "n2" n1.Route.coupling)

let test_route_em_width () =
  let placed = two_port_cell () in
  let narrow =
    Route.route P.c06 ~placed ~nets:[ { Route.net = "n1"; current = 1e-5 } ]
  in
  let wide =
    Route.route P.c06 ~placed ~nets:[ { Route.net = "n1"; current = 10e-3 } ]
  in
  let width r =
    (List.find (fun w -> w.Route.net = "n1") r.Route.wires).Route.width
  in
  Alcotest.(check bool) "EM widens trunk" true (width wide > width narrow)

let test_cap_of_wire () =
  (* 100 lambda (30 um) of minimum-width metal1: ~ a few fF *)
  let c = Route.cap_of_wire P.c06 ~layer:L.Metal1 ~length:100 ~width:3 in
  check_in_range "wire cap plausible" 1e-15 2e-14 c

(* --- plan ---------------------------------------------------------------- *)

let simple_floorplan () =
  let single name nf_opts =
    Plan.Single
      {
        spec =
          {
            Motif.dev =
              Device.Mos.make ~name ~mtype:E.Nmos ~w:30e-6 ~l:1e-6 ();
            d_net = "d_" ^ name; g_net = "g"; s_net = "vss"; b_net = "vss";
            i_drain = 100e-6;
          };
        allowed_folds = nf_opts;
      }
  in
  Slicing.H
    (Slicing.Leaf (single "m1" [ 1; 2; 4; 6 ], []),
     Slicing.Leaf (single "m2" [ 1; 2; 4; 6 ], []))

let test_plan_parasitic_mode () =
  let nets = [ { Route.net = "d_m1"; current = 1e-4 };
               { Route.net = "d_m2"; current = 1e-4 };
               { Route.net = "g"; current = 0.0 } ] in
  let r =
    Plan.run ~mode:Plan.Parasitic_only ~nets P.c06 (simple_floorplan ())
  in
  Alcotest.(check bool) "no cell in parasitic mode" true (r.Plan.cell = None);
  Alcotest.(check int) "two device styles" 2 (List.length r.Plan.device_styles);
  List.iter
    (fun (_, s) ->
      Alcotest.(check bool) "drain internal" true s.F.drain_internal)
    r.Plan.device_styles;
  match Plan.find_net r "d_m1" with
  | None -> Alcotest.fail "net summary missing"
  | Some s -> Alcotest.(check bool) "routing cap positive" true (s.Plan.routing_cap > 0.0)

let test_plan_shape_constraint_changes_folds () =
  let nets = [ { Route.net = "d_m1"; current = 1e-4 } ] in
  let tall =
    Plan.run ~mode:Plan.Parasitic_only ~nets ~max_w:60 P.c06 (simple_floorplan ())
  in
  let flat =
    Plan.run ~mode:Plan.Parasitic_only ~nets ~max_h:60 P.c06 (simple_floorplan ())
  in
  let nf r name = (List.assoc name r.Plan.device_styles).F.nf in
  (* a narrow box forces more folds (wider transistor stacks are shorter) *)
  Alcotest.(check bool) "constraints influence folding" true
    (nf tall "m1" <> nf flat "m1" || tall.Plan.total_w <> flat.Plan.total_w)

let test_plan_generation_mode () =
  let nets = [ { Route.net = "d_m1"; current = 1e-4 } ] in
  let r = Plan.run ~mode:Plan.Generation ~nets P.c06 (simple_floorplan ()) in
  match r.Plan.cell with
  | None -> Alcotest.fail "generation mode must emit a cell"
  | Some cell ->
    Alcotest.(check bool) "cell populated" true (Cl.rect_count cell > 10);
    let art = Render.ascii cell in
    Alcotest.(check bool) "ascii non-trivial" true (String.length art > 100);
    let svg = Render.svg cell in
    Alcotest.(check bool) "svg has rects" true
      (String.length svg > 200 && String.sub svg 0 4 = "<svg")

let suite =
  ( "layout",
    [
      case "rect basics" test_rect_basics;
      case "spacing and intersection" test_spacing;
      case "mirror" test_mirror;
      case "cell operations" test_cell_ops;
      case "motif ports" test_motif_ports;
      case "pmos gets a well" test_motif_pmos_has_well;
      case "EM strap widths" test_motif_em;
      case "required widths and contacts" test_required_widths;
      case "motif DRC clean" test_motif_drc_clean;
      case "shape pareto" test_shape_pareto;
      case "shape combine" test_shape_combine;
      case "slicing aspect constraint" test_slicing_aspect_constraint;
      case "interleave conserves units" test_interleave_conserves_units;
      case "mirror centroids (Fig. 3)" test_mirror_centroids;
      case "current-direction balance" test_mirror_orientation_balance;
      case "mirror generation" test_mirror_generate;
      case "mirror DRC" test_mirror_drc;
      case "interdigitated pair" test_pair_interdigitated;
      case "common-centroid pair" test_pair_common_centroid;
      case "odd common centroid rejected" test_pair_odd_cc_rejected;
      case "drc narrow wire" test_drc_detects_narrow_wire;
      case "drc close wires" test_drc_detects_close_wires;
      case "drc touching ok" test_drc_allows_touching;
      case "routing basics" test_route_basics;
      case "routing EM width" test_route_em_width;
      case "wire capacitance" test_cap_of_wire;
      case "plan parasitic mode" test_plan_parasitic_mode;
      case "plan shape constraint" test_plan_shape_constraint_changes_folds;
      case "plan generation mode" test_plan_generation_mode;
    ]
    @ qcheck_cases
        [
          prop_motif_area_matches_folding;
          prop_shape_merge_matches_cross;
          prop_stockmeyer_optimal;
          prop_placements_inside_box;
        ] )

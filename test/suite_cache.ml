open Helpers
module Memo = Cache.Memo
module Flow = Core.Flow

let proc = Technology.Process.c06
let kind = Device.Model.Bsim_lite
let spec = Comdiac.Spec.paper_ota

(* --- hit/miss semantics --------------------------------------------------- *)

let test_hit_miss () =
  Cache.Config.with_enabled true @@ fun () ->
  let calls = ref 0 in
  let m = Memo.create ~shards:1 ~capacity:16 ~name:"test.hitmiss" () in
  let f k =
    Memo.find_or_compute m k (fun () ->
      incr calls;
      k * k)
  in
  Alcotest.(check int) "first lookup computes" 9 (f 3);
  Alcotest.(check int) "second lookup returns the same value" 9 (f 3);
  Alcotest.(check int) "the computation ran once" 1 !calls;
  let s = Memo.stats m in
  Alcotest.(check int) "one hit" 1 s.Memo.hits;
  Alcotest.(check int) "one miss" 1 s.Memo.misses;
  ignore (f 4);
  Alcotest.(check int) "a distinct key misses" 2 (Memo.stats m).Memo.misses;
  Alcotest.(check int) "two entries stored" 2 (Memo.stats m).Memo.entries;
  check_close "hit rate is hits/(hits+misses)" (1.0 /. 3.0)
    (Memo.hit_rate (Memo.stats m));
  Memo.clear m;
  let s = Memo.stats m in
  Alcotest.(check int) "clear zeroes the counters" 0 (s.Memo.hits + s.Memo.misses);
  Alcotest.(check int) "clear drops the entries" 0 s.Memo.entries

let test_nan_key_hits () =
  (* equality is [compare k1 k2 = 0], so a nan inside a key still hits *)
  Cache.Config.with_enabled true @@ fun () ->
  let m = Memo.create ~shards:1 ~capacity:4 ~name:"test.nan" () in
  let calls = ref 0 in
  let f k =
    Memo.find_or_compute m k (fun () ->
      incr calls;
      !calls)
  in
  Alcotest.(check int) "nan key computes once" (f (Float.nan, 1)) (f (Float.nan, 1));
  Alcotest.(check int) "one compute for the nan key" 1 !calls

let test_disabled_bypasses () =
  Cache.Config.with_enabled false @@ fun () ->
  let m = Memo.create ~shards:1 ~capacity:4 ~name:"test.disabled" () in
  let calls = ref 0 in
  let f k =
    Memo.find_or_compute m k (fun () ->
      incr calls;
      k)
  in
  ignore (f 1);
  ignore (f 1);
  Alcotest.(check int) "disabled cache recomputes every time" 2 !calls;
  let s = Memo.stats m in
  Alcotest.(check int) "no counters touched" 0 (s.Memo.hits + s.Memo.misses);
  Alcotest.(check int) "no entries stored" 0 s.Memo.entries;
  Alcotest.(check bool) "nothing cached" false (Memo.mem m 1)

(* --- LRU eviction order --------------------------------------------------- *)

let test_lru_eviction_order () =
  Cache.Config.with_enabled true @@ fun () ->
  (* one shard so the LRU list is global and the order fully observable *)
  let m = Memo.create ~shards:1 ~capacity:4 ~name:"test.lru" () in
  let touch k = ignore (Memo.find_or_compute m k (fun () -> k)) in
  List.iter touch [ 0; 1; 2; 3 ];
  (* key 0 is now least recently used; promote it with a hit *)
  touch 0;
  (* a fifth key must evict key 1, the oldest untouched entry *)
  touch 4;
  Alcotest.(check bool) "promoted key survives" true (Memo.mem m 0);
  Alcotest.(check bool) "least recently used key evicted" false (Memo.mem m 1);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d retained" k)
        true (Memo.mem m k))
    [ 2; 3; 4 ];
  let s = Memo.stats m in
  Alcotest.(check int) "exactly one eviction" 1 s.Memo.evictions;
  Alcotest.(check int) "size pinned at capacity" 4 s.Memo.entries;
  (* evicted key recomputes: a miss, then hits again *)
  touch 1;
  Alcotest.(check int) "re-inserting the evicted key misses" 6
    (Memo.stats m).Memo.misses

(* --- cache-on == cache-off bit-identity for a flow case ------------------- *)

let strip_elapsed r = { r with Flow.elapsed = 0.0 }

let test_flow_bit_identity () =
  (* same end-to-end synthesis with every memo active and with caching
     globally disabled: results must compare structurally equal (only the
     wall-clock field may differ) *)
  Memo.clear_all ();
  let cached =
    Cache.Config.with_enabled true @@ fun () ->
    Flow.run ~proc ~kind ~spec Flow.Case2
  in
  (* a second cached run, now answered from warm memos *)
  let warm =
    Cache.Config.with_enabled true @@ fun () ->
    Flow.run ~proc ~kind ~spec Flow.Case2
  in
  let uncached =
    Cache.Config.with_enabled false @@ fun () ->
    Flow.run ~proc ~kind ~spec Flow.Case2
  in
  Alcotest.(check bool) "warm rerun is bit-identical" true
    (compare (strip_elapsed cached) (strip_elapsed warm) = 0);
  Alcotest.(check bool) "cache on == cache off" true
    (compare (strip_elapsed cached) (strip_elapsed uncached) = 0)

(* --- concurrent access from pool workers ---------------------------------- *)

(* a pure, deliberately repetition-heavy function to memoize *)
let mix x =
  let r = ref (x land 1023) in
  for _ = 1 to 50 do
    r := ((!r * 31) + 7) mod 1000003
  done;
  !r

let pool_memo = Memo.create ~shards:4 ~capacity:1024 ~name:"test.pool" ()

let prop_pool_workers_consistent =
  QCheck.Test.make ~count:25 ~name:"memo shared by 4 pool workers stays exact"
    QCheck.(list_of_size Gen.(return 64) (int_bound 40))
    (fun xs ->
      Cache.Config.with_enabled true @@ fun () ->
      let via_memo x = Memo.find_or_compute pool_memo x (fun () -> mix x) in
      let from_pool = Par.Pool.map ~jobs:4 via_memo xs in
      (* every worker must observe the exact sequential value, racing
         inserts included *)
      from_pool = List.map mix xs
      && (Memo.stats pool_memo).Memo.entries <= 1024)

let test_cache_off_propagates_to_workers () =
  (* a context-local cache-off binding must follow the batch onto pool
     worker domains: no entries may appear while it is in force *)
  let m = Memo.create ~shards:4 ~capacity:64 ~name:"test.pool-off" () in
  Cache.Config.set_enabled true;
  (Cache.Config.with_enabled false @@ fun () ->
   let r =
     Par.Pool.map ~jobs:4
       (fun x -> Memo.find_or_compute m x (fun () -> mix x))
       (List.init 64 Fun.id)
   in
   Alcotest.(check bool) "values still exact" true
     (r = List.map mix (List.init 64 Fun.id));
   Alcotest.(check int) "workers honoured the cache-off binding" 0
     (Memo.stats m).Memo.entries);
  (* the binding ended with the scope: the same batch now populates *)
  ignore
    (Par.Pool.map ~jobs:4
       (fun x -> Memo.find_or_compute m x (fun () -> mix x))
       (List.init 8 Fun.id));
  Alcotest.(check bool) "workers cache again after the scope" true
    ((Memo.stats m).Memo.entries > 0)

(* --- execution context ---------------------------------------------------- *)

let test_ctx_resolution () =
  let ctx = Exec.Ctx.make ~jobs:3 proc in
  Alcotest.(check bool) "ctx supplies the process" true
    (Exec.Ctx.proc (Some ctx) == proc);
  Alcotest.(check bool) "explicit process overrides the context" true
    (Exec.Ctx.proc ~override:Technology.Process.c035 (Some ctx)
     == Technology.Process.c035);
  Alcotest.(check (option int)) "ctx supplies jobs" (Some 3)
    (Exec.Ctx.jobs (Some ctx));
  Alcotest.(check (option int)) "explicit jobs override the context" (Some 8)
    (Exec.Ctx.jobs ~override:8 (Some ctx));
  Alcotest.(check (option int)) "no context, no jobs" None (Exec.Ctx.jobs None);
  (match Exec.Ctx.proc None with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "proc with neither context nor override must raise");
  (* scope restores the cache flag even when the body raises *)
  let before = Cache.Config.enabled () in
  let ctx = Exec.Ctx.make ~cache:(not before) proc in
  (match Exec.Ctx.run (Some ctx) (fun () -> failwith "boom") with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "run must re-raise");
  Alcotest.(check bool) "cache flag restored after exception" before
    (Cache.Config.enabled ())

let suite =
  ( "cache",
    [
      case "hit/miss semantics and counters" test_hit_miss;
      case "nan inside a key still hits" test_nan_key_hits;
      case "disabled cache bypasses table and counters" test_disabled_bypasses;
      case "LRU eviction order" test_lru_eviction_order;
      case "flow case: cache on == cache off" test_flow_bit_identity;
      case "cache-off binding propagates to pool workers"
        test_cache_off_propagates_to_workers;
      case "ctx resolution and scoped flags" test_ctx_resolution;
    ]
    @ qcheck_cases [ prop_pool_workers_consistent ] )

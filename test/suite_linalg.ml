open Helpers
module R = Linalg.Real
module C = Linalg.Cx

let test_identity_solve () =
  let a = R.identity 4 in
  let b = [| 1.0; 2.0; 3.0; 4.0 |] in
  let x = R.solve a b in
  Array.iteri (fun i v -> check_close "identity solve" b.(i) v) x

let test_known_system () =
  (* [[2,1],[1,3]] x = [3,5]  =>  x = [4/5, 7/5] *)
  let a = R.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = R.solve a [| 3.0; 5.0 |] in
  check_close "x0" 0.8 x.(0);
  check_close "x1" 1.4 x.(1)

let test_pivoting () =
  (* zero leading pivot requires a row swap *)
  let a = R.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = R.solve a [| 2.0; 3.0 |] in
  check_close "swap x0" 3.0 x.(0);
  check_close "swap x1" 2.0 x.(1)

let test_singular () =
  let a = R.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match R.solve a [| 1.0; 1.0 |] with
  | exception Linalg.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_matmul_identity () =
  let a = R.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let p = R.matmul a (R.identity 2) in
  check_close "a*I = a" 4.0 (R.get p 1 1);
  check_close "a*I = a (0,1)" 2.0 (R.get p 0 1)

let test_transpose () =
  let a = R.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = R.transpose a in
  Alcotest.(check int) "rows" 3 (R.rows t);
  check_close "t(2,1)" 6.0 (R.get t 2 1)

let test_complex_solve () =
  (* (1 + j) x = 2  =>  x = 1 - j *)
  let a = C.of_arrays [| [| { Complex.re = 1.0; im = 1.0 } |] |] in
  let x = C.solve a [| { Complex.re = 2.0; im = 0.0 } |] in
  check_close "re" 1.0 x.(0).Complex.re;
  check_close "im" (-1.0) x.(0).Complex.im

let test_complex_rc () =
  (* voltage divider: series R, shunt 1/(jwC): H = 1/(1 + jwRC) *)
  let r = 1e3 and c = 1e-9 and w = 1e6 in
  let g = 1.0 /. r in
  let yc = { Complex.re = 0.0; im = w *. c } in
  let y = C.of_arrays [| [| Complex.add { Complex.re = g; im = 0.0 } yc |] |] in
  let x = C.solve y [| { Complex.re = g; im = 0.0 } |] in
  let expect = Complex.div Complex.one { Complex.re = 1.0; im = w *. r *. c } in
  check_close ~rel:1e-9 "rc re" expect.Complex.re x.(0).Complex.re;
  check_close ~rel:1e-9 "rc im" expect.Complex.im x.(0).Complex.im

(* --- unboxed kernel backend ------------------------------------------- *)

module Df = Linalg.Dense_f
module Dc = Linalg.Dense_c
module Ws = Linalg.Ws

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* random square system with no diagonal dominance, so partial pivoting
   actually has to reorder rows *)
let random_general_system n seed =
  let st = Random.State.make [| seed |] in
  let a =
    Array.init n (fun _ ->
      Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0))
  in
  let b = Array.init n (fun _ -> Random.State.float st 10.0 -. 5.0) in
  (a, b)

(* solve through the workspace kernel path, exactly as the analyses do *)
let kernel_real_solve rows b =
  let n = Array.length b in
  let ws = Ws.real n in
  Df.blit ~src:(Df.of_arrays rows) ~dst:ws.Ws.jac;
  Array.blit b 0 ws.Ws.rhs 0 n;
  Df.lu_factor_in_place ws.Ws.jac ~piv:ws.Ws.piv;
  Df.lu_solve_into ws.Ws.jac ~piv:ws.Ws.piv ~b:ws.Ws.rhs ~x:ws.Ws.delta;
  Array.copy ws.Ws.delta

let prop_kernel_real_bit_identical =
  QCheck.Test.make
    ~name:"unboxed real kernel bit-identical to functor backend" ~count:200
    QCheck.(pair (int_range 1 24) (int_range 0 100000))
    (fun (n, seed) ->
      let rows, b = random_general_system n seed in
      match R.solve (R.of_arrays rows) b with
      | x -> (
        match kernel_real_solve rows b with
        | y -> Array.for_all2 bits_eq x y
        | exception Linalg.Singular _ -> false)
      | exception Linalg.Singular k -> (
        match kernel_real_solve rows b with
        | _ -> false
        | exception Linalg.Singular k' -> k = k'))

let random_complex_system n seed =
  let st = Random.State.make [| seed |] in
  let e () = Random.State.float st 2.0 -. 1.0 in
  let a =
    Array.init n (fun _ ->
      Array.init n (fun _ ->
        let re = e () in
        { Complex.re; im = e () }))
  in
  let b =
    Array.init n (fun _ ->
      let re = e () in
      { Complex.re; im = e () })
  in
  (a, b)

let kernel_cx_solve rows b =
  let n = Array.length b in
  let ws = Ws.cx n in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> Dc.set ws.Ws.y i j v) row)
    rows;
  (* the workspace matrix no longer holds whatever factorisation a live
     Acs handle might expect: invalidate them *)
  ws.Ws.serial <- ws.Ws.serial + 1;
  Array.iteri
    (fun i (v : Complex.t) ->
      ws.Ws.b_re.(i) <- v.Complex.re;
      ws.Ws.b_im.(i) <- v.Complex.im)
    b;
  Dc.lu_factor_in_place ws.Ws.y ~piv:ws.Ws.cpiv;
  Dc.lu_solve_into ws.Ws.y ~piv:ws.Ws.cpiv ~b_re:ws.Ws.b_re
    ~b_im:ws.Ws.b_im ~x_re:ws.Ws.x_re ~x_im:ws.Ws.x_im;
  Array.init n (fun i -> { Complex.re = ws.Ws.x_re.(i); im = ws.Ws.x_im.(i) })

let prop_kernel_cx_bit_identical =
  QCheck.Test.make
    ~name:"unboxed complex kernel bit-identical to functor backend"
    ~count:200
    QCheck.(pair (int_range 1 16) (int_range 0 100000))
    (fun (n, seed) ->
      let rows, b = random_complex_system n seed in
      let eq (u : Complex.t) (v : Complex.t) =
        bits_eq u.Complex.re v.Complex.re && bits_eq u.Complex.im v.Complex.im
      in
      match C.solve (C.of_arrays rows) b with
      | x -> (
        match kernel_cx_solve rows b with
        | y -> Array.for_all2 eq x y
        | exception Linalg.Singular _ -> false)
      | exception Linalg.Singular k -> (
        match kernel_cx_solve rows b with
        | _ -> false
        | exception Linalg.Singular k' -> k = k'))

let test_kernel_singular_identical () =
  let rows = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  let k_ref =
    match R.solve (R.of_arrays rows) [| 1.0; 1.0 |] with
    | _ -> Alcotest.fail "functor: expected Singular"
    | exception Linalg.Singular k -> k
  in
  match kernel_real_solve rows [| 1.0; 1.0 |] with
  | _ -> Alcotest.fail "kernel: expected Singular"
  | exception Linalg.Singular k ->
    Alcotest.(check int) "same failing column" k_ref k

let test_matvec_into () =
  let m = Df.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Array.make 2 0.0 in
  Df.matvec_into m [| 5.0; 6.0 |] ~y;
  check_close "y0" 17.0 y.(0);
  check_close "y1" 39.0 y.(1)

(* Re-solving through a reused workspace must leave the minor heap alone:
   the factor/solve path of both kernels is allocation-free once the
   buffers exist.  The small slack absorbs the boxed floats of the
   [Gc.minor_words] bookkeeping itself — a backend that boxed matrix
   elements would allocate thousands of words per solve. *)
let test_workspace_zero_alloc () =
  Obs.Config.with_enabled false @@ fun () ->
  let n = 16 in
  let st = Random.State.make [| 7 |] in
  let rows =
    Array.init n (fun i ->
      Array.init n (fun j ->
        let v = Random.State.float st 2.0 -. 1.0 in
        if i = j then v +. float_of_int n +. 1.0 else v))
  in
  let b = Array.init n (fun i -> float_of_int (i + 1)) in
  let template = Df.of_arrays rows in
  let ws = Ws.real n in
  let cws = Ws.cx n in
  let ctemplate = Dc.create n in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          Dc.set ctemplate i j
            { Complex.re = v; im = if i = j then 0.0 else 0.1 })
        row)
    rows;
  cws.Ws.serial <- cws.Ws.serial + 1;
  let real_solve () =
    Df.blit ~src:template ~dst:ws.Ws.jac;
    Array.blit b 0 ws.Ws.rhs 0 n;
    Df.lu_factor_in_place ws.Ws.jac ~piv:ws.Ws.piv;
    Df.lu_solve_into ws.Ws.jac ~piv:ws.Ws.piv ~b:ws.Ws.rhs ~x:ws.Ws.delta
  in
  let cx_solve () =
    Dc.blit ~src:ctemplate ~dst:cws.Ws.y;
    Array.blit b 0 cws.Ws.b_re 0 n;
    Array.fill cws.Ws.b_im 0 n 0.0;
    Dc.lu_factor_in_place cws.Ws.y ~piv:cws.Ws.cpiv;
    Dc.lu_solve_into cws.Ws.y ~piv:cws.Ws.cpiv ~b_re:cws.Ws.b_re
      ~b_im:cws.Ws.b_im ~x_re:cws.Ws.x_re ~x_im:cws.Ws.x_im
  in
  real_solve ();
  cx_solve ();
  (* warmed up; now measure *)
  let before = Gc.minor_words () in
  for _ = 1 to 100 do
    real_solve ();
    cx_solve ()
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "solve path allocated %.0f minor words in 200 solves"
       words)
    true (words <= 64.0)

(* --- CSR sparse solver ------------------------------------------------- *)

module Sp = Linalg.Sparse

(* random sparse system over an explicit pattern; the dense twin holds
   exact zeros outside the pattern, so the natural-order sparse solve
   must reproduce the dense kernel bit for bit.  [dominant] forces a
   dominant full diagonal (always solvable, which is what the statically
   pivoted min-degree mode is specified for). *)
let random_sparse_system ?(dominant = false) n seed =
  let st = Random.State.make [| 0x5A; seed; n |] in
  let entries = ref [] in
  let add i j v = entries := ((i, j), v) :: !entries in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i = j then begin
        if dominant then
          add i j (float_of_int n +. 1.0 +. Random.State.float st 1.0)
        else if Random.State.float st 1.0 < 0.8 then
          add i j (Random.State.float st 2.0 -. 1.0)
      end
      else if Random.State.float st 1.0 < 0.35 then
        add i j (Random.State.float st 2.0 -. 1.0)
    done;
    (* keep every row structurally non-empty *)
    if not (List.exists (fun ((r, _), _) -> r = i) !entries) then
      add i i (1.0 +. Random.State.float st 1.0)
  done;
  let pat = Sp.of_coords ~n (List.map fst !entries) in
  let sv = Array.make (Sp.nnz pat) 0.0 in
  let rows = Array.make_matrix n n 0.0 in
  List.iter
    (fun ((i, j), v) ->
      sv.(Sp.slot_exn pat i j) <- v;
      rows.(i).(j) <- v)
    !entries;
  let b = Array.init n (fun _ -> Random.State.float st 10.0 -. 5.0) in
  (pat, sv, rows, b)

let sparse_real_solve ordering pat sv b =
  let fact = Sp.Real.create (Sp.symbolic ordering pat) in
  Sp.Real.refactor fact ~vals:sv;
  let x = Array.make (Array.length b) 0.0 in
  Sp.Real.solve_into fact ~b ~x;
  x

let prop_sparse_natural_bit_identical =
  QCheck.Test.make
    ~name:"sparse natural ordering bit-identical to dense kernel" ~count:200
    QCheck.(pair (int_range 1 20) (int_range 0 100000))
    (fun (n, seed) ->
      let pat, sv, rows, b = random_sparse_system n seed in
      match kernel_real_solve rows b with
      | x -> (
        match sparse_real_solve Sp.Natural pat sv b with
        | y -> Array.for_all2 bits_eq x y
        | exception Linalg.Singular _ -> false)
      | exception Linalg.Singular k -> (
        match sparse_real_solve Sp.Natural pat sv b with
        | _ -> false
        | exception Linalg.Singular k' -> k = k'))

let close_rel a b =
  Float.abs (a -. b)
  <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let prop_sparse_min_degree_close =
  QCheck.Test.make
    ~name:"sparse min-degree within 1e-9 of dense kernel" ~count:200
    QCheck.(pair (int_range 1 20) (int_range 0 100000))
    (fun (n, seed) ->
      let pat, sv, rows, b = random_sparse_system ~dominant:true n seed in
      let x = kernel_real_solve rows b in
      match sparse_real_solve Sp.Min_degree pat sv b with
      | y -> Array.for_all2 close_rel x y
      | exception Linalg.Singular _ ->
        (* the static order rejected the pivot sequence (growth guard);
           the contract is fallback to the natural order, which must then
           reproduce the dense kernel exactly *)
        let y = sparse_real_solve Sp.Natural pat sv b in
        Array.for_all2 bits_eq x y)

let random_sparse_cx_system n seed =
  let st = Random.State.make [| 0xC5; seed; n |] in
  let e () = Random.State.float st 2.0 -. 1.0 in
  let entries = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let p = if i = j then 0.8 else 0.35 in
      if Random.State.float st 1.0 < p then begin
        let re = e () in
        entries := ((i, j), { Complex.re; im = e () }) :: !entries
      end
    done;
    if not (List.exists (fun ((r, _), _) -> r = i) !entries) then begin
      let re = 1.0 +. Random.State.float st 1.0 in
      entries := ((i, i), { Complex.re; im = e () }) :: !entries
    end
  done;
  let pat = Sp.of_coords ~n (List.map fst !entries) in
  let re = Array.make (Sp.nnz pat) 0.0 in
  let im = Array.make (Sp.nnz pat) 0.0 in
  let rows = Array.make_matrix n n Complex.zero in
  List.iter
    (fun ((i, j), (v : Complex.t)) ->
      let s = Sp.slot_exn pat i j in
      re.(s) <- v.Complex.re;
      im.(s) <- v.Complex.im;
      rows.(i).(j) <- v)
    !entries;
  let b =
    Array.init n (fun _ ->
      let bre = e () in
      { Complex.re = bre; im = e () })
  in
  (pat, re, im, rows, b)

let sparse_cx_solve ordering pat re im b =
  let n = Array.length b in
  let fact = Sp.Cx.create (Sp.symbolic ordering pat) in
  Sp.Cx.refactor fact ~re ~im;
  let b_re = Array.map (fun (v : Complex.t) -> v.Complex.re) b in
  let b_im = Array.map (fun (v : Complex.t) -> v.Complex.im) b in
  let x_re = Array.make n 0.0 and x_im = Array.make n 0.0 in
  Sp.Cx.solve_into fact ~b_re ~b_im ~x_re ~x_im;
  Array.init n (fun i -> { Complex.re = x_re.(i); im = x_im.(i) })

let prop_sparse_cx_natural_bit_identical =
  QCheck.Test.make
    ~name:"sparse complex natural ordering bit-identical to dense kernel"
    ~count:100
    QCheck.(pair (int_range 1 14) (int_range 0 100000))
    (fun (n, seed) ->
      let pat, re, im, rows, b = random_sparse_cx_system n seed in
      let eq (u : Complex.t) (v : Complex.t) =
        bits_eq u.Complex.re v.Complex.re && bits_eq u.Complex.im v.Complex.im
      in
      match kernel_cx_solve rows b with
      | x -> (
        match sparse_cx_solve Sp.Natural pat re im b with
        | y -> Array.for_all2 eq x y
        | exception Linalg.Singular _ -> false)
      | exception Linalg.Singular k -> (
        match sparse_cx_solve Sp.Natural pat re im b with
        | _ -> false
        | exception Linalg.Singular k' -> k = k'))

let test_sparse_slots () =
  let pat = Sp.of_coords ~n:2 [ (1, 0); (0, 1); (0, 1); (1, 1) ] in
  Alcotest.(check int) "duplicates merged" 3 (Sp.nnz pat);
  Alcotest.(check bool) "present entry found" true (Sp.slot pat 0 1 >= 0);
  Alcotest.(check int) "absent entry" (-1) (Sp.slot pat 0 0);
  match Sp.slot_exn pat 0 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "slot_exn: expected Invalid_argument"

let test_sparse_pivoting () =
  (* zero diagonal everywhere: natural must virtually row-swap exactly
     like the dense kernel; min-degree's maximum transversal finds the
     off-diagonal pivots structurally *)
  let pat = Sp.of_coords ~n:2 [ (0, 1); (1, 0) ] in
  let sv = Array.make 2 0.0 in
  sv.(Sp.slot_exn pat 0 1) <- 1.0;
  sv.(Sp.slot_exn pat 1 0) <- 1.0;
  let b = [| 2.0; 3.0 |] in
  let x = sparse_real_solve Sp.Natural pat sv b in
  check_close "natural x0" 3.0 x.(0);
  check_close "natural x1" 2.0 x.(1);
  let y = sparse_real_solve Sp.Min_degree pat sv b in
  check_close "min-degree x0" 3.0 y.(0);
  check_close "min-degree x1" 2.0 y.(1)

let test_sparse_singular_identical () =
  let rows = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  let pat = Sp.of_coords ~n:2 [ (0, 0); (0, 1); (1, 0); (1, 1) ] in
  let sv = Array.make 4 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> sv.(Sp.slot_exn pat i j) <- v) row)
    rows;
  let k_ref =
    match kernel_real_solve rows [| 1.0; 1.0 |] with
    | _ -> Alcotest.fail "dense: expected Singular"
    | exception Linalg.Singular k -> k
  in
  match sparse_real_solve Sp.Natural pat sv [| 1.0; 1.0 |] with
  | _ -> Alcotest.fail "sparse: expected Singular"
  | exception Linalg.Singular k ->
    Alcotest.(check int) "same failing column" k_ref k

(* Refactoring and solving over live handles must stay off the minor
   heap up to a small per-call bookkeeping constant — a backend boxing
   matrix elements would allocate tens of thousands of words here. *)
let test_sparse_refactor_zero_alloc () =
  Obs.Config.with_enabled false @@ fun () ->
  let n = 16 in
  let pat, sv, _rows, b = random_sparse_system ~dominant:true n 7 in
  let nat = Sp.Real.create (Sp.symbolic Sp.Natural pat) in
  let md = Sp.Real.create (Sp.symbolic Sp.Min_degree pat) in
  let cx = Sp.Cx.create (Sp.symbolic Sp.Natural pat) in
  let im = Array.map (fun _ -> 0.1) sv in
  let b_im = Array.make n 0.0 in
  let x = Array.make n 0.0 and x_im = Array.make n 0.0 in
  let step () =
    Sp.Real.refactor nat ~vals:sv;
    Sp.Real.solve_into nat ~b ~x;
    Sp.Real.refactor md ~vals:sv;
    Sp.Real.solve_into md ~b ~x;
    Sp.Cx.refactor cx ~re:sv ~im;
    Sp.Cx.solve_into cx ~b_re:b ~b_im ~x_re:x ~x_im
  in
  step ();
  (* warmed up; now measure *)
  let before = Gc.minor_words () in
  for _ = 1 to 100 do
    step ()
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf
       "sparse refactor/solve allocated %.0f minor words in 600 calls" words)
    true
    (words <= 8192.0)

let random_spd_system n seed =
  (* diagonally dominant random system: always solvable *)
  let st = Random.State.make [| seed |] in
  let a = R.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      R.set a i j (Random.State.float st 2.0 -. 1.0)
    done;
    R.set a i i (float_of_int n +. Random.State.float st 1.0)
  done;
  let b = Array.init n (fun _ -> Random.State.float st 10.0 -. 5.0) in
  (a, b)

let prop_lu_residual =
  QCheck.Test.make ~name:"LU solve residual small on random dominant systems"
    ~count:100
    QCheck.(pair (int_range 1 20) (int_range 0 10000))
    (fun (n, seed) ->
      let a, b = random_spd_system n seed in
      let x = R.solve a b in
      R.residual_norm a x b < 1e-8)

let prop_matvec_linear =
  QCheck.Test.make ~name:"matvec is linear" ~count:100
    QCheck.(triple (int_range 1 8) (int_range 0 1000) (float_range (-3.0) 3.0))
    (fun (n, seed, k) ->
      let a, b = random_spd_system n seed in
      let scaled = R.matvec a (Array.map (fun v -> k *. v) b) in
      let plain = R.matvec a b in
      Array.for_all2
        (fun s p -> Float.abs (s -. (k *. p)) < 1e-6 *. (1.0 +. Float.abs s))
        scaled plain)

let suite =
  ( "linalg",
    [
      case "identity solve" test_identity_solve;
      case "2x2 known system" test_known_system;
      case "partial pivoting" test_pivoting;
      case "singular detection" test_singular;
      case "matmul with identity" test_matmul_identity;
      case "transpose" test_transpose;
      case "complex 1x1 solve" test_complex_solve;
      case "complex RC divider" test_complex_rc;
      case "kernel singular agrees with functor" test_kernel_singular_identical;
      case "kernel matvec_into" test_matvec_into;
      case "workspace solves allocate nothing" test_workspace_zero_alloc;
      case "sparse pattern slots" test_sparse_slots;
      case "sparse pivoting" test_sparse_pivoting;
      case "sparse singular agrees with dense" test_sparse_singular_identical;
      case "sparse refactor allocates nothing" test_sparse_refactor_zero_alloc;
    ]
    @ qcheck_cases
        [
          prop_lu_residual;
          prop_matvec_linear;
          prop_kernel_real_bit_identical;
          prop_kernel_cx_bit_identical;
          prop_sparse_natural_bit_identical;
          prop_sparse_cx_natural_bit_identical;
          prop_sparse_min_degree_close;
        ] )

open Helpers
module MC = Comdiac.Montecarlo

let proc = Technology.Process.c06
let kind = Device.Model.Bsim_lite
let spec = Comdiac.Spec.paper_ota

(* --- pool combinators --------------------------------------------------- *)

let test_map_matches_sequential () =
  let xs = List.init 1000 (fun i -> i - 500) in
  let f x = (x * 7919) + (x mod 13) in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map with %d jobs" jobs)
        expected
        (Par.Pool.map ~jobs f xs))
    [ 1; 2; 8 ];
  Alcotest.(check (list int)) "empty input" [] (Par.Pool.map ~jobs:4 f []);
  Alcotest.(check (list int)) "singleton" [ f 3 ] (Par.Pool.map ~jobs:8 f [ 3 ])

let test_map_reduce () =
  let xs = List.init 501 Fun.id in
  let expected = List.fold_left (fun acc x -> acc + (x * x)) 0 xs in
  List.iter
    (fun jobs ->
      Alcotest.(check int)
        (Printf.sprintf "sum of squares with %d jobs" jobs)
        expected
        (Par.Pool.map_reduce ~jobs ~map:(fun x -> x * x) ~reduce:( + ) 0 xs))
    [ 1; 2; 8 ];
  Alcotest.(check int) "empty list is init" 42
    (Par.Pool.map_reduce ~jobs:4 ~map:Fun.id ~reduce:( + ) 42 [])

(* --- exception handling -------------------------------------------------- *)

exception Boom of int

let test_exception_propagation () =
  (match
     Par.Pool.map ~jobs:4
       (fun x -> if x = 17 then raise (Boom x) else x)
       (List.init 64 Fun.id)
   with
   | _ -> Alcotest.fail "expected the task exception to propagate"
   | exception Boom 17 -> ());
  (* the pool must survive a failed batch and keep serving *)
  Alcotest.(check (list int))
    "pool serves the next batch" [ 0; 2; 4; 6 ]
    (Par.Pool.map ~jobs:4 (fun x -> 2 * x) [ 0; 1; 2; 3 ])

(* --- monte carlo determinism --------------------------------------------- *)

let design =
  lazy
    (Comdiac.Folded_cascode.size ~proc ~kind ~spec
       ~parasitics:Comdiac.Parasitics.single_fold)

let test_montecarlo_schedule_independent () =
  let amp = (Lazy.force design).Comdiac.Folded_cascode.amp in
  let seq = MC.run ~seed:11 ~n:6 ~jobs:1 ~proc ~kind ~spec amp in
  let par = MC.run ~seed:11 ~n:6 ~jobs:4 ~proc ~kind ~spec amp in
  Alcotest.(check int) "same sample count"
    (List.length seq.MC.samples)
    (List.length par.MC.samples);
  (* bit-identical sample-for-sample; compare (not =) treats nan as equal *)
  Alcotest.(check bool) "samples bit-identical" true
    (compare seq.MC.samples par.MC.samples = 0);
  Alcotest.(check bool) "stats bit-identical" true
    (compare seq.MC.offset_stats par.MC.offset_stats = 0)

(* --- splitmix streams ----------------------------------------------------- *)

let test_splitmix_streams () =
  let drain st = List.init 8 (fun _ -> Par.Splitmix.float st) in
  let a = drain (Par.Splitmix.create ~stream:0 42) in
  let a' = drain (Par.Splitmix.create ~stream:0 42) in
  let b = drain (Par.Splitmix.create ~stream:1 42) in
  let c = drain (Par.Splitmix.create ~stream:0 43) in
  Alcotest.(check bool) "reproducible" true (a = a');
  Alcotest.(check bool) "streams differ" true (a <> b);
  Alcotest.(check bool) "seeds differ" true (a <> c);
  List.iter
    (fun u ->
      Alcotest.(check bool) "uniform draw in [0,1)" true (u >= 0.0 && u < 1.0))
    (a @ b @ c)

(* --- telemetry ------------------------------------------------------------ *)

let test_pool_telemetry () =
  Obs.Config.with_enabled true (fun () ->
    Obs.Trace.reset ();
    Obs.Metrics.reset ();
    let _ = Par.Pool.map ~jobs:4 (fun x -> x + 1) (List.init 32 Fun.id) in
    Alcotest.(check bool) "par.tasks counted" true
      (Obs.Metrics.counter "par.tasks" >= 1.0);
    Alcotest.(check bool) "queue depth observed" true
      (Obs.Metrics.hist_stats "par.queue_depth" <> None);
    let tasks =
      List.filter (fun s -> s.Obs.Trace.name = "par.task") (Obs.Trace.spans ())
    in
    Alcotest.(check bool) "par.task spans recorded" true (tasks <> []);
    (* per-task latency accounting: queue-wait and run-time histograms *)
    (match Obs.Metrics.hist_stats "par.task_run_us" with
     | None -> Alcotest.fail "par.task_run_us missing"
     | Some s -> Alcotest.(check bool) "one run sample per chunk" true
                   (s.Obs.Metrics.count >= 4));
    (match Obs.Metrics.hist_stats "par.queue_wait_us" with
     | None -> Alcotest.fail "par.queue_wait_us missing"
     | Some s ->
       Alcotest.(check bool) "queue wait is non-negative" true
         (s.Obs.Metrics.min >= 0.0));
    Alcotest.(check bool) "chunk sizes observed" true
      (Obs.Metrics.hist_stats "par.chunk_items" <> None);
    Alcotest.(check bool) "batch task counts observed" true
      (Obs.Metrics.hist_stats "par.batch_tasks" <> None);
    Obs.Trace.reset ();
    Obs.Metrics.reset ())

let test_pool_accounting () =
  (* utilization accounts work with telemetry off — they are always on *)
  Par.Pool.reset_stats ();
  let _ = Par.Pool.map ~jobs:4 (fun x -> x * x) (List.init 64 Fun.id) in
  let stats = Par.Pool.worker_stats () in
  Alcotest.(check bool) "at least the calling domain accounted" true
    (stats <> []);
  let total_tasks =
    List.fold_left (fun acc w -> acc + w.Par.Pool.ws_tasks) 0 stats
  in
  Alcotest.(check int) "every chunk accounted exactly once" 4 total_tasks;
  List.iter
    (fun (w : Par.Pool.worker_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d role" w.Par.Pool.ws_domain)
        true
        (w.Par.Pool.ws_role = "worker" || w.Par.Pool.ws_role = "caller");
      check_in_range "busy fraction" 0.0 1.0 w.Par.Pool.ws_busy_frac;
      Alcotest.(check bool) "busy time consistent with tasks" true
        (w.Par.Pool.ws_tasks = 0 || w.Par.Pool.ws_busy_us > 0.0))
    stats;
  (* sequential fast path never touches the pool or the accounts *)
  let _ = Par.Pool.map ~jobs:1 (fun x -> x + 1) (List.init 8 Fun.id) in
  Alcotest.(check int) "jobs=1 bypasses accounting" 4
    (List.fold_left (fun acc w -> acc + w.Par.Pool.ws_tasks) 0
       (Par.Pool.worker_stats ()));
  Par.Pool.reset_stats ();
  Alcotest.(check int) "reset zeroes tasks" 0
    (List.fold_left (fun acc w -> acc + w.Par.Pool.ws_tasks) 0
       (Par.Pool.worker_stats ()))

(* --- qcheck: chunked parallel_for covers every index exactly once --------- *)

let prop_parallel_for_exact_cover =
  QCheck.Test.make ~count:60 ~name:"parallel_for covers every index exactly once"
    QCheck.(
      triple (int_range 0 300) (int_range 1 8) (int_range 1 37))
    (fun (n, jobs, chunk) ->
      let hits = Array.make (max n 1) 0 in
      (* chunks are disjoint index ranges, so each cell has one writer *)
      Par.Pool.parallel_for ~jobs ~chunk n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.for_all (fun c -> c = 1) (Array.sub hits 0 n))

let suite =
  ( "par",
    [
      case "pool map matches sequential map" test_map_matches_sequential;
      case "map_reduce matches sequential fold" test_map_reduce;
      case "exceptions propagate without wedging" test_exception_propagation;
      case "monte carlo is schedule independent"
        test_montecarlo_schedule_independent;
      case "splitmix streams are independent" test_splitmix_streams;
      case "pool telemetry" test_pool_telemetry;
      case "pool utilization accounting" test_pool_accounting;
    ]
    @ qcheck_cases [ prop_parallel_for_exact_cover ] )
